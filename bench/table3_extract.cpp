// Reproduces Table 3 of the paper: "Extract Precision of ADL Step".
//
// Paper setup (§3.1): 320 samples of the two ADLs, on average 40 per tool.
// One sample is a single manipulation of a tool; it counts as extracted when
// the sensing subsystem (synthetic signal -> PAVENET 3-of-10 vote -> radio
// -> base station) reports that tool's StepID.
//
// Paper reference values: toothpaste 90 %, toothbrush 100 %, gargle cup
// 100 %, towel 85 %, tea box 100 %, electronic pot 80 %, kettle 100 %,
// tea cup 90 %. We reproduce the *shape*: short/gentle manipulations
// (towel, pot) extract worst; vigorous ones are near-perfect.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "pavenet/node_config.hpp"
#include "trace/sensing_pipeline.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

struct Row {
  const adl::Adl* adl;
  const adl::AdlStep* step;
  double paper_precision;
};

void print_hardware() {
  const pavenet::HardwareSpec& hw = pavenet::kPavenetHardware;
  util::TextTable t("Table 1. Hardware of PAVENET (simulated)");
  t.set_header({"Component", "Value"});
  t.add_row({"CPU", std::string(hw.cpu)});
  t.add_row({"RAM", std::to_string(hw.ram_bytes / 1024) + " KB"});
  t.add_row({"ROM", std::to_string(hw.rom_bytes / 1024) + " KB"});
  t.add_row({"Wireless", std::string(hw.wireless)});
  t.add_row({"I/O", std::string(hw.io)});
  t.add_row({"Peripherals", std::string(hw.peripherals)});
  t.add_row({"Sensors", std::string(hw.sensors)});
  std::fputs(t.render().c_str(), stdout);
}

void print_table2(const adl::AdlLibrary& library) {
  util::TextTable t("Table 2. Sensor and tool of ADL Step");
  t.set_header({"ADL", "ADL Step", "Sensor & Tool"});
  for (const char* name : {"Tooth-brushing", "Tea-making"}) {
    const adl::Adl& adl = library.by_name(name);
    for (const adl::AdlStep& step : adl.primary_routine().steps()) {
      const adl::Tool& tool = library.tools().at(step.tool);
      t.add_row({adl.name(), step.name,
                 std::string(to_string(tool.sensor)) + " on " + tool.name});
    }
  }
  std::fputs(t.render().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));

  adl::AdlLibrary library;
  print_hardware();
  std::puts("");
  print_table2(library);
  std::puts("");

  constexpr int kSamplesPerTool = 40;  // paper: "averagely 40 samples"
  const double paper[] = {0.90, 1.00, 1.00, 0.85, 1.00, 0.80, 1.00, 0.90};

  struct RowSpec {
    const adl::Adl* adl;
    const adl::AdlStep* step;
  };
  std::vector<RowSpec> rows;
  for (const char* name : {"Tooth-brushing", "Tea-making"}) {
    const adl::Adl& adl = library.by_name(name);
    for (const adl::AdlStep& step : adl.primary_routine().steps()) {
      rows.push_back({&adl, &step});
    }
  }

  // One trial per tool row. Seeds are per-tool constants, so the table is
  // byte-identical at any --jobs value.
  const exec::Stopwatch timer;
  const std::vector<double> measured = runner.run(
      rows.size(), 0, [&](exec::TrialContext& ctx) {
        const adl::Tool& tool = library.tools().at(rows[ctx.index].step->tool);
        trace::SensingPipeline pipeline(library.tools(), {tool.id},
                                        1000 + tool.id);
        util::Rng durations(7777 + tool.id);
        util::PrecisionCounter precision;
        for (int i = 0; i < kSamplesPerTool; ++i) {
          const double mean = tool.typical_usage_mean.to_seconds();
          const double drawn = std::max(
              mean * 0.4,
              durations.normal(mean, tool.typical_usage_stddev.to_seconds()));
          precision.record(pipeline.single_tool_trial(
              tool.id, sim::Duration::seconds(drawn)));
        }
        return precision.precision();
      });
  exec::append_timing_record(flags.get("timing-json"), "table3_extract",
                             runner.jobs(), rows.size(), timer.seconds());

  util::TextTable t(
      "Table 3. Extract Precision of ADL Step (40 samples per tool)");
  t.set_header({"ADL", "ADL Step", "Paper", "Measured"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.add_row({rows[i].adl->name(), rows[i].step->name,
               util::format_percent(paper[i]),
               util::format_percent(measured[i])});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nTotal samples: %d (paper: 320)\n",
              static_cast<int>(rows.size()) * kSamplesPerTool);
  return 0;
}
