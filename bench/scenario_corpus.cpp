// Gated scenario regression corpus: every committed tests/scenarios/
// *.scenario plan executed end-to-end through the multi-ADL serving tier
// (ScenarioRunner over a HomePool) and reported as exact metrics.
//
// Each scenario is one behavioural contract: interleaved ADL segments with
// per-ADL progress resumed from one bundle record, recognition-gated
// switches, caregiver interruptions probing the idle-gap boundary from
// both sides, severity drift, compliance decay, forced wrong-tool storms.
// The per-scenario metric block (sessions, completions, prompts, praises,
// recoveries, switches, idle closes, pool residency, hexfloat derived
// rates, checksum) is byte-identical at any --jobs — the runner executes
// one trial per pool slot and every source of variation derives from the
// plan's one seed.
//
// Wall-clock goes only to --timing-json (BENCH_scenarios.json), where
// tools/check_bench_regression.py EXACT-gates every counter and the
// checksum per (scenario, jobs): any metric moving by 1 is a behaviour
// change, not noise.
//
// Usage:
//   bench_scenario_corpus [--dir=tests/scenarios] [--jobs=N]
//       [--timing-json=BENCH_scenarios.json]

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exec/trial_runner.hpp"
#include "serve/scenario_runner.hpp"
#include "util/flags.hpp"

#ifndef COREDA_SCENARIO_DIR
#define COREDA_SCENARIO_DIR "tests/scenarios"
#endif

namespace {

using namespace coreda;

std::string metrics_json(const serve::ScenarioSummary& sum) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "\"sessions\": %llu, \"completed_sessions\": %llu, "
      "\"segments\": %llu, \"segments_completed\": %llu, "
      "\"prompts\": %llu, \"praises\": %llu, "
      "\"wrong_tool_recoveries\": %llu, \"segment_switches\": %llu, "
      "\"idle_episodes\": %llu, \"pool_hits\": %llu, \"pool_swaps\": %llu, "
      "\"rejected_bundles\": %llu, \"checksum\": %llu",
      static_cast<unsigned long long>(sum.sessions),
      static_cast<unsigned long long>(sum.completed_sessions),
      static_cast<unsigned long long>(sum.segments),
      static_cast<unsigned long long>(sum.segments_completed),
      static_cast<unsigned long long>(sum.prompts),
      static_cast<unsigned long long>(sum.praises),
      static_cast<unsigned long long>(sum.wrong_tool_recoveries),
      static_cast<unsigned long long>(sum.segment_switches),
      static_cast<unsigned long long>(sum.idle_episodes),
      static_cast<unsigned long long>(sum.pool_hits),
      static_cast<unsigned long long>(sum.pool_swaps),
      static_cast<unsigned long long>(sum.rejected_bundles),
      static_cast<unsigned long long>(sum.checksum));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const std::size_t jobs = exec::jobs_from_flags(flags);
  const std::string dir = flags.get("dir").empty() ? COREDA_SCENARIO_DIR
                                                   : flags.get("dir");
  const std::string timing_json = flags.get("timing-json");

  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".scenario") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "scenario corpus: no *.scenario files in %s\n",
                 dir.c_str());
    return 2;
  }

  std::printf("Scenario corpus: %zu plans from %s (jobs=%zu)\n\n",
              files.size(), dir.c_str(), jobs);

  const serve::ScenarioRunner runner;
  bool all_parsed = true;
  for (const std::filesystem::path& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "scenario corpus: cannot read %s\n",
                   file.string().c_str());
      all_parsed = false;
      continue;
    }
    const sim::ScenarioPlan plan = sim::ScenarioPlan::parse(in);
    const exec::Stopwatch watch;
    const serve::ScenarioSummary sum = runner.run(plan, jobs);
    const double seconds = watch.seconds();
    std::fputs(
        serve::format_scenario_report(file.stem().string(), plan, sum)
            .c_str(),
        stdout);
    std::printf("\n");
    exec::append_timing_record(timing_json,
                               "scenario/" + file.stem().string(), jobs,
                               sum.sessions, seconds, metrics_json(sum));
  }
  return all_parsed ? 0 : 2;
}
