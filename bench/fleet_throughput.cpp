// Fleet-scale training throughput: the millions-of-users serving shape,
// exercised end to end for the first time.
//
// The paper trains ONE personal TD(λ) learner per user per ADL (§2.2); the
// ROADMAP's north star is a service hosting that loop for millions of
// users. This bench simulates a fleet of N users, each with a *perturbed
// personal routine* (their own step order for the ADL plus their own
// sensing-noise profile), and retrains every user's learner concurrently
// via exec::TrialRunner — the serving-shaped workload the zero-allocation
// training hot path exists for.
//
// Reported: episodes/sec across the fleet and allocations/episode (global
// operator-new counter), written to the --timing-json side channel
// (BENCH_fleet.json). Stdout stays byte-identical at any --jobs so the
// determinism contract of the trial runner can be checked by diffing.
//
// With --lanes=N (N > 1) the fleet is grouped by routine signature and
// stepped through planning::LaneTrainer in lockstep batches of N users —
// the SoA lane engine's batched kernels replace N independent learners.
// Per-user RNG streams, ε schedules and tables are preserved exactly, so
// stdout stays byte-identical to the scalar path (and to any --jobs);
// only the wall-clock side channel changes.
//
// Usage:
//   bench_fleet_throughput --users=1000 --episodes=120 --jobs=4
//       --lanes=8 --timing-json=BENCH_fleet.json

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <span>
#include <sstream>
#include <vector>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "planning/lane_trainer.hpp"
#include "planning/learner.hpp"
#include "util/alloc_counter.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

/// One user's personal setup: their own routine order for the ADL and the
/// noise profile of their home's sensing installation.
struct UserSpec {
  std::vector<adl::StepId> routine;  ///< personal step order
  double p_drop = 0.0;               ///< per-step extraction miss
  double p_repeat = 0.0;             ///< per-step sensor re-trigger
  double p_spurious = 0.0;           ///< per-step foreign-tool glitch
  /// Joint cumulative table of the three independent per-step events, so
  /// sensed_episode spends one uniform() per routine step instead of three.
  /// Outcome order: clean, drop, repeat, spurious+clean, spurious+drop
  /// (spurious+repeat is the implied tail). Same joint distribution as the
  /// three Bernoulli draws it replaces — only the stream mapping differs,
  /// and it is shared by the scalar and lane paths alike.
  std::array<double, 5> cum{};
};

/// Derives user `rng`'s personal routine: the reference order with up to
/// one adjacent transposition of intermediate steps — enough to make every
/// user's optimal policy genuinely personal without breaking the ADL's
/// terminal step.
UserSpec make_user(const adl::AdlRoutine& reference, util::Rng& rng) {
  UserSpec user;
  for (const adl::AdlStep& step : reference.steps()) {
    user.routine.push_back(step.step_id());
  }
  // Keep the terminal step in place (it defines ADL completion); swap one
  // adjacent intermediate pair for roughly half the fleet.
  if (user.routine.size() > 3 && rng.uniform() < 0.5) {
    const std::size_t i =
        1 + static_cast<std::size_t>(rng.uniform() *
                                     static_cast<double>(
                                         user.routine.size() - 3));
    std::swap(user.routine[i - 1], user.routine[i]);
  }
  const double severity = rng.uniform();
  user.p_drop = 0.05 + 0.15 * severity;     // the electronic-pot regime
  user.p_repeat = 0.05 * severity;
  user.p_spurious = 0.05 * severity;
  const double ps = user.p_spurious, pd = user.p_drop, pr = user.p_repeat;
  user.cum[0] = (1.0 - ps) * (1.0 - pd) * (1.0 - pr);     // clean
  user.cum[1] = user.cum[0] + (1.0 - ps) * pd;            // drop
  user.cum[2] = user.cum[1] + (1.0 - ps) * (1.0 - pd) * pr;  // repeat
  user.cum[3] = user.cum[2] + ps * (1.0 - pd) * (1.0 - pr);  // spur+clean
  user.cum[4] = user.cum[3] + ps * pd;                    // spur+drop
  return user;
}

/// One recorded ADL process of this user: their personal order passed
/// through a cheap StepId-level sensing-noise model. (The full synthetic
/// signal stack costs ~0.2 ms per episode — three orders of magnitude more
/// than the training step this bench isolates — and adds nothing to the
/// training-path load; the noise *pattern* is what the learner sees.)
void sensed_episode(const UserSpec& user, adl::StepId foreign_tool,
                    util::Rng& rng, std::vector<adl::StepId>& out) {
  out.clear();
  for (const adl::StepId step : user.routine) {
    // One draw through the user's joint cumulative table; the first compare
    // resolves the clean case (p >= 0.76 at worst severity).
    const double u = rng.uniform();
    if (u < user.cum[0]) {
      out.push_back(step);
      continue;
    }
    if (u < user.cum[1]) continue;
    if (u < user.cum[2]) {
      out.push_back(step);
      out.push_back(step);
      continue;
    }
    out.push_back(foreign_tool);
    if (u < user.cum[3]) {
      out.push_back(step);
    } else if (u >= user.cum[4]) {
      out.push_back(step);
      out.push_back(step);
    }
  }
}

struct UserResult {
  double final_accuracy = 0.0;
  double q_checksum = 0.0;
  std::uint64_t episodes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const auto users =
      static_cast<std::size_t>(flags.get_int("users", 1000));
  const auto episodes =
      static_cast<std::size_t>(flags.get_int("episodes", 120));
  const auto lanes = static_cast<std::size_t>(flags.get_int("lanes", 1));

  adl::AdlLibrary library;
  const adl::Adl& reference = library.tea_making();
  // A tooth-brushing tool id: guaranteed outside the tea-making vocabulary,
  // so spurious glitches exercise the learner's skip path.
  const adl::StepId foreign_tool = adl::tools::kToothbrush;

  std::printf("Fleet training throughput: %zu users x %zu episodes "
              "(tea-making, personal routines)\n\n",
              users, episodes);

  // Steady-state allocation contract, measured single-user before the fleet
  // run so pool bookkeeping cannot be misattributed to the training path.
  double steady_allocs_per_episode = 0.0;
  {
    util::Rng rng(4242);
    const UserSpec user = make_user(reference.primary_routine(), rng);
    planning::RoutineLearner learner(reference, util::Rng(17));
    std::vector<adl::StepId> episode;
    // Worst case: spurious + step + repeat per routine position. Feeding it
    // once up front warms the learner's scratch to the maximum length any
    // real episode can reach, so steady state is genuinely allocation-free.
    episode.reserve(user.routine.size() * 3);
    for (const adl::StepId step : user.routine) {
      episode.push_back(foreign_tool);
      episode.push_back(step);
      episode.push_back(step);
    }
    learner.train_episode(episode);
    for (int i = 0; i < 16; ++i) {
      sensed_episode(user, foreign_tool, rng, episode);
      learner.train_episode(episode);
    }
    constexpr int kProbe = 1000;
    const std::uint64_t before = util::allocation_count();
    for (int i = 0; i < kProbe; ++i) {
      sensed_episode(user, foreign_tool, rng, episode);
      learner.train_episode(episode);
    }
    steady_allocs_per_episode =
        static_cast<double>(util::allocation_count() - before) / kProbe;
  }

  const std::uint64_t fleet_allocs_before = util::allocation_count();
  const exec::Stopwatch timer;
  std::vector<UserResult> results;
  if (lanes <= 1) {
    results = runner.run(users, 777, [&](exec::TrialContext& ctx) {
      const UserSpec user = make_user(reference.primary_routine(), ctx.rng);
      // The user's personal ADL: same tool set, their own order — the
      // learner's reference routine IS the personal one, so accuracy
      // scores personalization, not conformance to the factory default.
      std::vector<adl::AdlStep> steps;
      for (const adl::StepId id : user.routine) {
        steps.push_back(adl::AdlStep{std::string(), id});
      }
      const adl::Adl personal(
          reference.name(),
          {adl::AdlRoutine(reference.name(), std::move(steps))});

      planning::RoutineLearner learner(
          personal, util::Rng(exec::trial_seed(778, ctx.index)));
      std::vector<adl::StepId> episode;
      episode.reserve(user.routine.size() * 3);
      UserResult result;
      for (std::size_t e = 0; e < episodes; ++e) {
        sensed_episode(user, foreign_tool, ctx.rng, episode);
        learner.train_episode(episode);
        ++result.episodes;
      }
      result.final_accuracy = learner.greedy_accuracy();
      const rl::QTable& q = learner.q();
      for (rl::StateId s = 0; s < q.num_states(); ++s) {
        for (rl::ActionId a = 0; a < q.num_actions(); ++a) {
          result.q_checksum += q.get(s, a);
        }
      }
      return result;
    });
  } else {
    // Lane path: identical per-user streams (env rng = the trial rng the
    // scalar path would get, learner rng = trial_seed(778, user)), batched
    // through the SoA engine. Results land user-indexed, so the summary
    // below accumulates in the same order as the scalar path — the stdout
    // byte-identity check covers --lanes as well as --jobs.
    results.assign(users, UserResult{});
    std::vector<UserSpec> specs;
    specs.reserve(users);
    std::vector<util::Rng> env;
    env.reserve(users);
    for (std::size_t u = 0; u < users; ++u) {
      env.emplace_back(exec::trial_seed(777, u));
      specs.push_back(make_user(reference.primary_routine(), env.back()));
    }
    // Lane slots must share the codec (tool set and first-seen order), so
    // batches are drawn from same-routine-signature groups only.
    std::map<std::vector<adl::StepId>, std::vector<std::size_t>> groups;
    for (std::size_t u = 0; u < users; ++u) {
      groups[specs[u].routine].push_back(u);
    }
    struct Batch {
      const std::vector<adl::StepId>* routine = nullptr;
      std::span<const std::size_t> members;
    };
    std::vector<Batch> batches;
    for (const auto& [routine, members] : groups) {
      for (std::size_t base = 0; base < members.size(); base += lanes) {
        const std::size_t n = std::min(lanes, members.size() - base);
        batches.push_back(Batch{&routine, {members.data() + base, n}});
      }
    }
    // Batches touch disjoint users, so fanning them across the pool keeps
    // --jobs determinism for free.
    runner.run(batches.size(), 0, [&](exec::TrialContext& ctx) {
      const Batch& b = batches[ctx.index];
      std::vector<adl::AdlStep> steps;
      for (const adl::StepId id : *b.routine) {
        steps.push_back(adl::AdlStep{std::string(), id});
      }
      const adl::Adl personal(
          reference.name(),
          {adl::AdlRoutine(reference.name(), std::move(steps))});

      planning::LaneTrainer trainer(personal, b.members.size());
      std::vector<std::vector<adl::StepId>> episode(b.members.size());
      for (std::size_t i = 0; i < b.members.size(); ++i) {
        trainer.reset_slot(
            i, util::Rng(exec::trial_seed(778, b.members[i])));
        episode[i].reserve(b.routine->size() * 3);
      }
      for (std::size_t e = 0; e < episodes; ++e) {
        for (std::size_t i = 0; i < b.members.size(); ++i) {
          sensed_episode(specs[b.members[i]], foreign_tool,
                         env[b.members[i]], episode[i]);
          trainer.queue_episode(i, episode[i]);
        }
        trainer.train_queued();
      }
      for (std::size_t i = 0; i < b.members.size(); ++i) {
        UserResult& r = results[b.members[i]];
        r.final_accuracy = trainer.greedy_accuracy(i);
        r.q_checksum = trainer.q_sum(i);
        r.episodes = episodes;
      }
      return char{0};
    });
  }
  const double seconds = timer.seconds();
  const std::uint64_t fleet_allocs =
      util::allocation_count() - fleet_allocs_before;

  double accuracy_sum = 0.0;
  double checksum = 0.0;
  std::uint64_t trained = 0;
  std::size_t converged = 0;
  for (const UserResult& r : results) {
    accuracy_sum += r.final_accuracy;
    checksum += r.q_checksum;
    trained += r.episodes;
    if (r.final_accuracy >= 0.95) ++converged;
  }

  util::TextTable table("Fleet summary (timing in --timing-json only)");
  table.set_header({"metric", "value"});
  table.add_row({"users", std::to_string(users)});
  table.add_row({"episodes/user", std::to_string(episodes)});
  table.add_row({"episodes trained", std::to_string(trained)});
  table.add_row(
      {"mean final greedy accuracy",
       util::format_percent(accuracy_sum / static_cast<double>(users), 1)});
  table.add_row({"users at >=95% accuracy",
                 std::to_string(converged) + "/" + std::to_string(users)});
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6e", checksum);
    table.add_row({"fleet Q checksum", buf});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nThe summary is byte-identical at any --jobs (seed-split\n"
            "TrialRunner); only the wall-clock side channel may differ.");

  const double eps_per_sec =
      seconds > 0.0 ? static_cast<double>(trained) / seconds : 0.0;
  // Scaling sanity for bench_parallel.sh: with a jobs=1 reference rate
  // supplied, parallel_efficiency = eps/sec / (jobs x reference) — 1.0 is
  // perfect scaling, < 1/jobs means adding workers *lost* throughput.
  const double ref_eps = flags.get_double("ref-eps-per-sec", 0.0);
  const double parallel_efficiency =
      ref_eps > 0.0
          ? eps_per_sec / (static_cast<double>(runner.jobs()) * ref_eps)
          : 1.0;
  std::ostringstream extra;
  extra << "\"users\": " << users << ", \"episodes_per_user\": " << episodes
        << ", \"lanes\": " << lanes
        << ", \"episodes_per_sec\": " << eps_per_sec
        << ", \"parallel_efficiency\": " << parallel_efficiency
        << ", \"allocs_per_episode\": "
        << (trained > 0
                ? static_cast<double>(fleet_allocs) /
                      static_cast<double>(trained)
                : 0.0)
        << ", \"steady_state_allocs_per_episode\": "
        << steady_allocs_per_episode;
  exec::append_timing_record(flags.get("timing-json"), "fleet_throughput",
                             runner.jobs(), users, seconds, extra.str());
  return 0;
}
