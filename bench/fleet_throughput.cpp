// Fleet-scale training throughput: the millions-of-users serving shape,
// exercised end to end for the first time.
//
// The paper trains ONE personal TD(λ) learner per user per ADL (§2.2); the
// ROADMAP's north star is a service hosting that loop for millions of
// users. This bench simulates a fleet of N users, each with a *perturbed
// personal routine* (their own step order for the ADL plus their own
// sensing-noise profile), and retrains every user's learner concurrently
// via exec::TrialRunner — the serving-shaped workload the zero-allocation
// training hot path exists for.
//
// Reported: episodes/sec across the fleet and allocations/episode (global
// operator-new counter), written to the --timing-json side channel
// (BENCH_fleet.json). Stdout stays byte-identical at any --jobs so the
// determinism contract of the trial runner can be checked by diffing.
//
// Usage:
//   bench_fleet_throughput --users=1000 --episodes=120 --jobs=4
//       --timing-json=BENCH_fleet.json

#include <cstdio>
#include <sstream>
#include <vector>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "planning/learner.hpp"
#include "util/alloc_counter.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

/// One user's personal setup: their own routine order for the ADL and the
/// noise profile of their home's sensing installation.
struct UserSpec {
  std::vector<adl::StepId> routine;  ///< personal step order
  double p_drop = 0.0;               ///< per-step extraction miss
  double p_repeat = 0.0;             ///< per-step sensor re-trigger
  double p_spurious = 0.0;           ///< per-step foreign-tool glitch
};

/// Derives user `rng`'s personal routine: the reference order with up to
/// one adjacent transposition of intermediate steps — enough to make every
/// user's optimal policy genuinely personal without breaking the ADL's
/// terminal step.
UserSpec make_user(const adl::AdlRoutine& reference, util::Rng& rng) {
  UserSpec user;
  for (const adl::AdlStep& step : reference.steps()) {
    user.routine.push_back(step.step_id());
  }
  // Keep the terminal step in place (it defines ADL completion); swap one
  // adjacent intermediate pair for roughly half the fleet.
  if (user.routine.size() > 3 && rng.uniform() < 0.5) {
    const std::size_t i =
        1 + static_cast<std::size_t>(rng.uniform() *
                                     static_cast<double>(
                                         user.routine.size() - 3));
    std::swap(user.routine[i - 1], user.routine[i]);
  }
  const double severity = rng.uniform();
  user.p_drop = 0.05 + 0.15 * severity;     // the electronic-pot regime
  user.p_repeat = 0.05 * severity;
  user.p_spurious = 0.05 * severity;
  return user;
}

/// One recorded ADL process of this user: their personal order passed
/// through a cheap StepId-level sensing-noise model. (The full synthetic
/// signal stack costs ~0.2 ms per episode — three orders of magnitude more
/// than the training step this bench isolates — and adds nothing to the
/// training-path load; the noise *pattern* is what the learner sees.)
void sensed_episode(const UserSpec& user, adl::StepId foreign_tool,
                    util::Rng& rng, std::vector<adl::StepId>& out) {
  out.clear();
  for (const adl::StepId step : user.routine) {
    if (rng.uniform() < user.p_spurious) out.push_back(foreign_tool);
    if (rng.uniform() < user.p_drop) continue;
    out.push_back(step);
    if (rng.uniform() < user.p_repeat) out.push_back(step);
  }
}

struct UserResult {
  double final_accuracy = 0.0;
  double q_checksum = 0.0;
  std::uint64_t episodes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const auto users =
      static_cast<std::size_t>(flags.get_int("users", 1000));
  const auto episodes =
      static_cast<std::size_t>(flags.get_int("episodes", 120));

  adl::AdlLibrary library;
  const adl::Adl& reference = library.tea_making();
  // A tooth-brushing tool id: guaranteed outside the tea-making vocabulary,
  // so spurious glitches exercise the learner's skip path.
  const adl::StepId foreign_tool = adl::tools::kToothbrush;

  std::printf("Fleet training throughput: %zu users x %zu episodes "
              "(tea-making, personal routines)\n\n",
              users, episodes);

  // Steady-state allocation contract, measured single-user before the fleet
  // run so pool bookkeeping cannot be misattributed to the training path.
  double steady_allocs_per_episode = 0.0;
  {
    util::Rng rng(4242);
    const UserSpec user = make_user(reference.primary_routine(), rng);
    planning::RoutineLearner learner(reference, util::Rng(17));
    std::vector<adl::StepId> episode;
    // Worst case: spurious + step + repeat per routine position. Feeding it
    // once up front warms the learner's scratch to the maximum length any
    // real episode can reach, so steady state is genuinely allocation-free.
    episode.reserve(user.routine.size() * 3);
    for (const adl::StepId step : user.routine) {
      episode.push_back(foreign_tool);
      episode.push_back(step);
      episode.push_back(step);
    }
    learner.train_episode(episode);
    for (int i = 0; i < 16; ++i) {
      sensed_episode(user, foreign_tool, rng, episode);
      learner.train_episode(episode);
    }
    constexpr int kProbe = 1000;
    const std::uint64_t before = util::allocation_count();
    for (int i = 0; i < kProbe; ++i) {
      sensed_episode(user, foreign_tool, rng, episode);
      learner.train_episode(episode);
    }
    steady_allocs_per_episode =
        static_cast<double>(util::allocation_count() - before) / kProbe;
  }

  const std::uint64_t fleet_allocs_before = util::allocation_count();
  const exec::Stopwatch timer;
  const std::vector<UserResult> results =
      runner.run(users, 777, [&](exec::TrialContext& ctx) {
        const UserSpec user = make_user(reference.primary_routine(), ctx.rng);
        // The user's personal ADL: same tool set, their own order — the
        // learner's reference routine IS the personal one, so accuracy
        // scores personalization, not conformance to the factory default.
        std::vector<adl::AdlStep> steps;
        for (const adl::StepId id : user.routine) {
          steps.push_back(adl::AdlStep{std::string(), id});
        }
        const adl::Adl personal(
            reference.name(),
            {adl::AdlRoutine(reference.name(), std::move(steps))});

        planning::RoutineLearner learner(
            personal, util::Rng(exec::trial_seed(778, ctx.index)));
        std::vector<adl::StepId> episode;
        episode.reserve(user.routine.size() * 3);
        UserResult result;
        for (std::size_t e = 0; e < episodes; ++e) {
          sensed_episode(user, foreign_tool, ctx.rng, episode);
          learner.train_episode(episode);
          ++result.episodes;
        }
        result.final_accuracy = learner.greedy_accuracy();
        const rl::QTable& q = learner.q();
        for (rl::StateId s = 0; s < q.num_states(); ++s) {
          for (rl::ActionId a = 0; a < q.num_actions(); ++a) {
            result.q_checksum += q.get(s, a);
          }
        }
        return result;
      });
  const double seconds = timer.seconds();
  const std::uint64_t fleet_allocs =
      util::allocation_count() - fleet_allocs_before;

  double accuracy_sum = 0.0;
  double checksum = 0.0;
  std::uint64_t trained = 0;
  std::size_t converged = 0;
  for (const UserResult& r : results) {
    accuracy_sum += r.final_accuracy;
    checksum += r.q_checksum;
    trained += r.episodes;
    if (r.final_accuracy >= 0.95) ++converged;
  }

  util::TextTable table("Fleet summary (timing in --timing-json only)");
  table.set_header({"metric", "value"});
  table.add_row({"users", std::to_string(users)});
  table.add_row({"episodes/user", std::to_string(episodes)});
  table.add_row({"episodes trained", std::to_string(trained)});
  table.add_row(
      {"mean final greedy accuracy",
       util::format_percent(accuracy_sum / static_cast<double>(users), 1)});
  table.add_row({"users at >=95% accuracy",
                 std::to_string(converged) + "/" + std::to_string(users)});
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6e", checksum);
    table.add_row({"fleet Q checksum", buf});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nThe summary is byte-identical at any --jobs (seed-split\n"
            "TrialRunner); only the wall-clock side channel may differ.");

  std::ostringstream extra;
  extra << "\"users\": " << users << ", \"episodes_per_user\": " << episodes
        << ", \"episodes_per_sec\": "
        << (seconds > 0.0 ? static_cast<double>(trained) / seconds : 0.0)
        << ", \"allocs_per_episode\": "
        << (trained > 0
                ? static_cast<double>(fleet_allocs) /
                      static_cast<double>(trained)
                : 0.0)
        << ", \"steady_state_allocs_per_episode\": "
        << steady_allocs_per_episode;
  exec::append_timing_record(flags.get("timing-json"), "fleet_throughput",
                             runner.jobs(), users, seconds, extra.str());
  return 0;
}
