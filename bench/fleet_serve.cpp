// Million-user fleet tier: sharded FleetEngine over the mmap segment store.
//
// bench_serve_throughput prices multi-tenancy with every user's table
// resident in RAM (a PolicyStore entry per user). This bench prices the
// next order of magnitude: `--users` registered patients (default 1M)
// whose tables live in the memory-mapped segment store, with only
// shards x slots-per-shard warm systems and <16 bytes of resident RAM per
// registered user (one packed u32 in the engine plus the store's
// open-addressed index slab). Each round draws a sparse active set from a
// seed-deterministic arrival stream and drains it shard-parallel; a serve
// is pool hit -> run, or evict -> append -> mmap load -> import -> run.
//
// Two traffic shapes run the same fleet size:
//   * fleet_serve_uniform — every patient equally active: residency almost
//     never pays off, nearly every serve cold-loads from the store;
//   * fleet_serve         — Zipf(`--zipf`) skew, the clinically realistic
//     shape: a hot head of heavy users keeps slots resident.
//
// Stdout (session counts, hit/cold split, store counters, the checksum,
// the steady-state allocation probe) is byte-identical at any --jobs: one
// trial per shard, users statically owned by shards, latency never printed.
// Wall-clock AND the p50/p99/p999 serve-latency percentiles go only to
// --timing-json (BENCH_fleet_serve.json), where the regression checker
// gates sessions_per_sec, the percentiles, and the allocation contract.
//
// With --lanes=N (off by default, so the serving baselines are untouched)
// an extra *nightly lane replay* phase runs after the serving rounds: a
// cohort of fleet users is retrained in lockstep batches of N through the
// SoA lane engine — the batch-maintenance shape (every user, off-peak)
// that complements the scheduler's targeted drift retrains. Fleet users
// share the reference routine, so the whole cohort is one signature group.
//
// After each traffic shape the store directory is reopened once and the
// scan-on-open is timed (cold_start_scan_ms, --timing-json only): the
// restart cost of the whole fleet, which the regression checker gates.
//
// Usage:
//   bench_fleet_serve --users=1000000 --active=1500 --rounds=3 --shards=4
//       --slots-per-shard=2 --zipf=1.1 --jobs=4 --lanes=8
//       --timing-json=BENCH_fleet_serve.json

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "planning/lane_trainer.hpp"
#include "serve/arrivals.hpp"
#include "serve/fleet_engine.hpp"
#include "util/alloc_counter.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

/// Same severity band as the serve/session benches, a pure function of the
/// user index: every traffic shape (and job count) serves one population.
double user_severity(std::uint64_t user) {
  util::Rng rng(exec::trial_seed(9001, user));
  return 0.1 + 0.4 * rng.uniform();
}

/// Chain cap for every store this bench opens (--rebase-every). 32 keeps
/// the per-retrain append traffic well past the 4x gate while staying
/// under the 63-record format cap a chain walk tolerates.
std::size_t g_rebase_every = 32;

struct ShapeRun {
  serve::FleetReport report;   ///< cumulative over the timed rounds
  std::uint64_t sessions = 0;  ///< timed sessions only
  double seconds = 0.0;
  double allocs_per_session = 0.0;
  double steady_state_allocs = 0.0;
  std::size_t segments = 0;
  std::uint64_t live = 0;
  std::uint64_t dead = 0;
  std::uint64_t compactions = 0;
  std::uint64_t appends = 0;
  std::uint64_t appended_bytes = 0;
  std::uint64_t anchors_written = 0;
  std::uint64_t deltas_written = 0;
  std::size_t anchor_record_bytes = 0;
  std::size_t index_slab_bytes = 0;
  std::size_t resident_state_bytes = 0;
  double cold_start_ms = 0.0;          ///< reopen scan wall-clock (JSON only)
  std::uint64_t cold_scanned = 0;      ///< records the reopen scan accepted
};

template <typename Arrivals>
ShapeRun run_shape(const adl::AdlLibrary& library, const adl::Adl& adl,
                   const planning::RoutineLearner& donor,
                   const std::string& dir, std::size_t users,
                   std::size_t active, std::size_t rounds,
                   const serve::FleetEngineParams& params,
                   Arrivals& arrivals, exec::TrialRunner& runner) {
  std::filesystem::remove_all(dir);
  serve::SegmentStoreParams store_params;
  store_params.dir = dir;
  store_params.writers = params.shards;
  store_params.rebase_every = g_rebase_every;
  serve::SegmentStore store(donor.state_codec().symbols(),
                            donor.action_codec().tools(),
                            donor.q().num_states(), donor.q().num_actions(),
                            store_params);
  serve::FleetEngine fleet(library, adl, store, donor.q(), params);
  fleet.reserve_users(users);  // one slab + one index table, no doubling
  for (std::size_t u = 0; u < users; ++u) {
    fleet.register_user(user_severity(u));
  }

  // Warm-up round: pays the reference starts, first-touch page faults and
  // queue growth, and seeds the store so the timed rounds cold-load real
  // records out of the mapping.
  for (std::size_t i = 0; i < active; ++i) fleet.enqueue(arrivals.next());
  fleet.drain(runner);
  fleet.reset_latency();

  ShapeRun run;
  const std::uint64_t allocs_before = util::allocation_count();
  const exec::Stopwatch timer;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < active; ++i) fleet.enqueue(arrivals.next());
    run.report = fleet.drain(runner);
  }
  run.seconds = timer.seconds();
  run.sessions = run.report.sessions - active;  // minus the warm-up round
  run.allocs_per_session =
      static_cast<double>(util::allocation_count() - allocs_before) /
      static_cast<double>(run.sessions);

  // Steady-state probe on a serial runner so the number is independent of
  // --jobs: everything is warm, so the only allowed heap traffic is the
  // runner's per-drain results vector (amortized across 64 sessions) and
  // whatever segment roll / compaction the deterministic append sequence
  // happens to schedule here.
  exec::TrialRunner probe_runner(1);
  constexpr std::size_t kProbe = 64;
  for (std::size_t i = 0; i < kProbe; ++i) fleet.enqueue(arrivals.next());
  const std::uint64_t probe_before = util::allocation_count();
  fleet.drain(probe_runner);
  run.steady_state_allocs =
      static_cast<double>(util::allocation_count() - probe_before) / kProbe;

  fleet.flush_residents();
  run.segments = store.num_segments();
  run.live = store.live_records();
  run.dead = store.dead_records();
  run.compactions = store.compactions();
  run.appends = store.appends();
  run.appended_bytes = store.appended_bytes();
  run.anchors_written = store.anchor_records_written();
  run.deltas_written = store.delta_records_written();
  run.anchor_record_bytes = store.anchor_record_bytes();
  run.index_slab_bytes = store.index_slab_bytes();
  run.resident_state_bytes = fleet.resident_state_bytes();
  return run;
}

/// The retrain write-back shape the storage gate prices: every cohort
/// member is served (and appended) once per round, so after the warm-up
/// round's anchors the write-backs ride the delta chain until the
/// rebase_every cap forces the next anchor. `segment_bytes_per_retrain`
/// and the reduction vs full v2 anchor records are measured over the
/// timed rounds only — the steady state of a fleet whose patients are
/// retrained daily.
ShapeRun run_retrain(const adl::AdlLibrary& library, const adl::Adl& adl,
                     const planning::RoutineLearner& donor,
                     const std::string& dir, std::size_t cohort,
                     std::size_t rounds,
                     const serve::FleetEngineParams& params,
                     exec::TrialRunner& runner) {
  std::filesystem::remove_all(dir);
  serve::SegmentStoreParams store_params;
  store_params.dir = dir;
  store_params.writers = params.shards;
  store_params.rebase_every = g_rebase_every;
  serve::SegmentStore store(donor.state_codec().symbols(),
                            donor.action_codec().tools(),
                            donor.q().num_states(), donor.q().num_actions(),
                            store_params);
  serve::FleetEngine fleet(library, adl, store, donor.q(), params);
  fleet.reserve_users(cohort);
  for (std::size_t u = 0; u < cohort; ++u) {
    fleet.register_user(user_severity(u));
  }
  // Warm-up: the first write-back per user is necessarily a full anchor.
  for (std::size_t u = 0; u < cohort; ++u) fleet.enqueue(u);
  fleet.drain(runner);

  ShapeRun run;
  const std::uint64_t appends0 = store.appends();
  const std::uint64_t bytes0 = store.appended_bytes();
  const std::uint64_t anchors0 = store.anchor_records_written();
  const std::uint64_t deltas0 = store.delta_records_written();
  const exec::Stopwatch timer;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t u = 0; u < cohort; ++u) fleet.enqueue(u);
    run.report = fleet.drain(runner);
  }
  run.seconds = timer.seconds();
  run.sessions = cohort * rounds;
  run.appends = store.appends() - appends0;
  run.appended_bytes = store.appended_bytes() - bytes0;
  run.anchors_written = store.anchor_records_written() - anchors0;
  run.deltas_written = store.delta_records_written() - deltas0;
  run.anchor_record_bytes = store.anchor_record_bytes();
  run.segments = store.num_segments();
  run.compactions = store.compactions();
  return run;
}

/// Times one reopen of a just-closed store directory: the fleet restart
/// cost. The scan is the dominant term (map + validate every record and
/// rebuild the user index); wall-clock, so JSON side-channel only.
void time_cold_start(const planning::RoutineLearner& donor,
                     const std::string& dir, std::size_t writers,
                     ShapeRun& run) {
  serve::SegmentStoreParams store_params;
  store_params.dir = dir;
  store_params.writers = writers;
  const exec::Stopwatch timer;
  serve::SegmentStore reopened(donor.state_codec().symbols(),
                               donor.action_codec().tools(),
                               donor.q().num_states(),
                               donor.q().num_actions(), store_params);
  run.cold_start_ms = timer.seconds() * 1e3;
  run.cold_scanned = reopened.scanned_records();
}

std::string format2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const auto users =
      static_cast<std::size_t>(flags.get_int("users", 1000000));
  const auto active = static_cast<std::size_t>(flags.get_int("active", 1500));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 3));
  const double zipf = flags.get_double("zipf", 1.1);

  serve::FleetEngineParams params;
  params.shards = static_cast<std::size_t>(flags.get_int("shards", 4));
  params.slots_per_shard =
      static_cast<std::size_t>(flags.get_int("slots-per-shard", 2));
  params.system.learn_from_sessions = true;  // write-backs carry real deltas
  params.write_back_every =
      static_cast<std::size_t>(flags.get_int("write-back-every", 1));
  g_rebase_every =
      static_cast<std::size_t>(flags.get_int("rebase-every", 32));

  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();
  std::vector<adl::StepId> routine;
  for (const adl::AdlStep& s : tea.primary_routine().steps()) {
    routine.push_back(s.step_id());
  }
  planning::RoutineLearner donor(tea, util::Rng(17));
  for (int i = 0; i < 80; ++i) donor.train_episode(routine);

  const std::string base_dir =
      flags.get("dir").empty()
          ? (std::filesystem::temp_directory_path() / "coreda_fleet_serve")
                .string()
          : flags.get("dir");

  std::printf("Fleet tier: %zu registered users, %zu shards x %zu slots, "
              "%zu active sessions/round over %zu timed rounds\n\n",
              users, params.shards, params.slots_per_shard, active, rounds);

  serve::UniformArrivals uniform(users, 777);
  serve::ZipfianArrivals skewed(users, zipf, 777);
  ShapeRun flat = run_shape(library, tea, donor, base_dir + "_uniform",
                            users, active, rounds, params, uniform, runner);
  time_cold_start(donor, base_dir + "_uniform", params.shards, flat);
  ShapeRun hot = run_shape(library, tea, donor, base_dir + "_zipf", users,
                           active, rounds, params, skewed, runner);
  time_cold_start(donor, base_dir + "_zipf", params.shards, hot);

  const auto rate = [](const ShapeRun& r) {
    return static_cast<double>(r.report.pool_hits) /
           static_cast<double>(r.report.sessions);
  };
  util::TextTable table("Fleet serving (timing/percentiles in --timing-json "
                        "only)");
  table.set_header({"metric", "uniform", std::string("zipf(") +
                                             format2(zipf) + ")"});
  table.add_row({"sessions (incl. warm-up)",
                 std::to_string(flat.report.sessions),
                 std::to_string(hot.report.sessions)});
  table.add_row({"completed", std::to_string(flat.report.completed),
                 std::to_string(hot.report.completed)});
  table.add_row({"prompts", std::to_string(flat.report.prompts),
                 std::to_string(hot.report.prompts)});
  table.add_row({"pool hit rate", format2(rate(flat)), format2(rate(hot))});
  table.add_row({"cold loads (mmap)", std::to_string(flat.report.cold_loads),
                 std::to_string(hot.report.cold_loads)});
  table.add_row({"reference starts",
                 std::to_string(flat.report.reference_starts),
                 std::to_string(hot.report.reference_starts)});
  table.add_row({"store appends", std::to_string(flat.report.appends),
                 std::to_string(hot.report.appends)});
  table.add_row({"store segments", std::to_string(flat.segments),
                 std::to_string(hot.segments)});
  table.add_row({"live/dead records",
                 std::to_string(flat.live) + "/" + std::to_string(flat.dead),
                 std::to_string(hot.live) + "/" + std::to_string(hot.dead)});
  table.add_row({"compactions", std::to_string(flat.compactions),
                 std::to_string(hot.compactions)});
  const auto bytes_per_append = [](const ShapeRun& r) {
    return r.appends > 0 ? static_cast<double>(r.appended_bytes) /
                               static_cast<double>(r.appends)
                         : 0.0;
  };
  const auto reduction = [&](const ShapeRun& r) {
    const double per = bytes_per_append(r);
    return per > 0.0 ? static_cast<double>(r.anchor_record_bytes) / per : 0.0;
  };
  table.add_row({"anchors/deltas written",
                 std::to_string(flat.anchors_written) + "/" +
                     std::to_string(flat.deltas_written),
                 std::to_string(hot.anchors_written) + "/" +
                     std::to_string(hot.deltas_written)});
  table.add_row({"bytes/append", format2(bytes_per_append(flat)),
                 format2(bytes_per_append(hot))});
  table.add_row({"append reduction vs anchors", format2(reduction(flat)),
                 format2(reduction(hot))});
  table.add_row({"drift flagged", std::to_string(flat.report.drift_flagged),
                 std::to_string(hot.report.drift_flagged)});
  const auto resident_per_user = [users](const ShapeRun& r) {
    return static_cast<double>(r.resident_state_bytes + r.index_slab_bytes) /
           static_cast<double>(users);
  };
  table.add_row({"resident B/user (engine+index)",
                 format2(resident_per_user(flat)),
                 format2(resident_per_user(hot))});
  table.add_row({"reopen scan records", std::to_string(flat.cold_scanned),
                 std::to_string(hot.cold_scanned)});
  table.add_row({"fleet checksum", std::to_string(flat.report.checksum),
                 std::to_string(hot.report.checksum)});
  table.add_row({"steady-state allocs/serve",
                 format2(flat.steady_state_allocs),
                 format2(hot.steady_state_allocs)});
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nThe summary is byte-identical at any --jobs: users are owned\n"
            "by shards statically and each shard drains as one seed-split\n"
            "trial; serve latency goes only to the timing side-channel.");

  // The storage gate: per-retrain append traffic once every cohort member
  // has its anchor. This is where the delta encoding must buy >= 4x.
  const auto retrain_users =
      static_cast<std::size_t>(flags.get_int("retrain-users", 256));
  const auto retrain_rounds =
      static_cast<std::size_t>(flags.get_int("retrain-rounds", 32));
  const ShapeRun retrain =
      run_retrain(library, tea, donor, base_dir + "_retrain", retrain_users,
                  retrain_rounds, params, runner);
  std::printf("\nRetrain write-back: %zu users x %zu rounds, %s bytes/"
              "retrain vs %zu-byte full records (%sx reduction, %llu "
              "anchors / %llu deltas)\n",
              retrain_users, retrain_rounds,
              format2(bytes_per_append(retrain)).c_str(),
              retrain.anchor_record_bytes,
              format2(reduction(retrain)).c_str(),
              static_cast<unsigned long long>(retrain.anchors_written),
              static_cast<unsigned long long>(retrain.deltas_written));

  // Optional nightly lane replay (off by default): batch-maintenance
  // retraining of a user cohort through the SoA lane engine, 8 replay
  // passes each — the RetrainScheduler's ring budget, but for every cohort
  // member at once rather than drift-flagged users only. Deterministic
  // (fixed seeds, timing only in the JSON side channel).
  const auto lanes = static_cast<std::size_t>(flags.get_int("lanes", 0));
  double nightly_seconds = 0.0;
  std::uint64_t nightly_episodes = 0;
  std::size_t replay_users = 0;
  if (lanes > 0) {
    replay_users =
        static_cast<std::size_t>(flags.get_int("replay-users", 512));
    constexpr std::size_t kPasses = 8;
    planning::LaneTrainer trainer(tea, lanes);
    const exec::Stopwatch timer;
    for (std::size_t base = 0; base < replay_users; base += lanes) {
      const std::size_t n = std::min(lanes, replay_users - base);
      for (std::size_t i = 0; i < n; ++i) {
        trainer.reset_slot(i, util::Rng(exec::trial_seed(778, base + i)));
      }
      for (std::size_t pass = 0; pass < kPasses; ++pass) {
        for (std::size_t i = 0; i < n; ++i) {
          trainer.queue_episode(i, routine);
        }
        trainer.train_queued();
      }
      nightly_episodes += n * kPasses;
    }
    nightly_seconds = timer.seconds();
    std::printf("\nNightly lane replay: %zu users x %zu episodes in "
                "lockstep batches of %zu\n",
                replay_users, kPasses, lanes);
  }

  const std::string timing_path = flags.get("timing-json");
  const auto emit = [&](const char* name, const ShapeRun& run) {
    const util::LatencyHistogram& lat = run.report.latency;
    std::ostringstream extra;
    extra << "\"users\": " << users << ", \"shards\": " << params.shards
          << ", \"active_per_round\": " << active
          << ", \"sessions\": " << run.sessions << ", \"sessions_per_sec\": "
          << (run.seconds > 0.0
                  ? static_cast<double>(run.sessions) / run.seconds
                  : 0.0)
          << ", \"pool_hit_rate\": " << rate(run)
          << ", \"p50_ns\": " << lat.quantile(0.50)
          << ", \"p99_ns\": " << lat.quantile(0.99)
          << ", \"p999_ns\": " << lat.quantile(0.999)
          << ", \"allocs_per_session\": " << run.allocs_per_session
          << ", \"steady_state_allocs_per_session\": "
          << run.steady_state_allocs
          << ", \"segment_bytes_per_retrain\": " << bytes_per_append(run)
          << ", \"segment_full_record_bytes\": " << run.anchor_record_bytes
          << ", \"append_reduction\": " << reduction(run)
          << ", \"index_bytes_per_user\": "
          << (static_cast<double>(run.index_slab_bytes) /
              static_cast<double>(users))
          << ", \"resident_bytes_per_user\": " << resident_per_user(run)
          << ", \"cold_start_scan_ms\": " << run.cold_start_ms
          << ", \"cold_start_records\": " << run.cold_scanned;
    exec::append_timing_record(timing_path, name, runner.jobs(), rounds,
                               run.seconds, extra.str());
  };
  emit("fleet_serve_uniform", flat);
  emit("fleet_serve", hot);
  {
    std::ostringstream extra;
    extra << "\"retrain_users\": " << retrain_users
          << ", \"retrain_rounds\": " << retrain_rounds
          << ", \"sessions\": " << retrain.sessions
          << ", \"sessions_per_sec\": "
          << (retrain.seconds > 0.0
                  ? static_cast<double>(retrain.sessions) / retrain.seconds
                  : 0.0)
          << ", \"segment_bytes_per_retrain\": " << bytes_per_append(retrain)
          << ", \"segment_full_record_bytes\": "
          << retrain.anchor_record_bytes
          << ", \"append_reduction\": " << reduction(retrain)
          << ", \"anchors_written\": " << retrain.anchors_written
          << ", \"deltas_written\": " << retrain.deltas_written;
    exec::append_timing_record(timing_path, "fleet_retrain", runner.jobs(),
                               retrain_rounds, retrain.seconds, extra.str());
  }
  if (lanes > 0) {
    std::ostringstream extra;
    extra << "\"lanes\": " << lanes << ", \"replay_users\": " << replay_users
          << ", \"episodes\": " << nightly_episodes
          << ", \"episodes_per_sec\": "
          << (nightly_seconds > 0.0
                  ? static_cast<double>(nightly_episodes) / nightly_seconds
                  : 0.0);
    exec::append_timing_record(timing_path, "fleet_nightly_replay",
                               runner.jobs(), replay_users, nightly_seconds,
                               extra.str());
  }
  return 0;
}
