// Closed-loop session serving throughput: the fleet-of-homes shape.
//
// The fleet bench (fleet_throughput.cpp) isolates the *training* hot path;
// this bench exercises the *serving* hot path — the full Figure-2 loop
// (actor -> world -> nodes -> radio -> station -> planner -> reminder ->
// actor) run as a service. Each of N users gets one warm CoredaSystem that
// serves `sessions` closed-loop sessions back to back via
// run_session_inplace(): nothing is reconstructed between sessions, only
// reset, so a warm system serves a whole session with zero heap
// allocations.
//
// Two fleets run under identical seeds and policies:
//   * reuse mode — one system per user, sessions served in place (record
//     "session_throughput"): the serving-engine contract this PR adds;
//   * fresh mode — a brand-new system per session, policy stamped in via
//     import_policy (record "session_throughput_fresh"): the
//     construct-per-request shape every caller was forced into before, kept
//     as the in-bench baseline the reuse speedup is measured against.
//
// Reported: sessions/sec, allocs/session (global operator-new counter) and
// the single-user steady-state allocs/session probe, all written to the
// --timing-json side channel (BENCH_sessions.json). Stdout stays
// byte-identical at any --jobs (seed-split TrialRunner); wall-clock and
// allocation totals live only in the side channel.
//
// Usage:
//   bench_session_throughput --users=50 --sessions=20 --jobs=4
//       --timing-json=BENCH_sessions.json

#include <cstdio>
#include <sstream>
#include <vector>

#include "adl/library.hpp"
#include "core/system.hpp"
#include "exec/trial_runner.hpp"
#include "patient/profile.hpp"
#include "planning/learner.hpp"
#include "util/alloc_counter.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

struct FleetTotals {
  std::uint64_t checksum = 0;
  std::uint64_t completed = 0;
};

/// Per-user severity draw shared by both modes so they serve identical
/// patient populations.
patient::PatientProfile fleet_profile(util::Rng& rng) {
  return patient::PatientProfile::with_severity(
      "U", 0.1 + 0.4 * rng.uniform());
}

std::uint64_t session_checksum(const core::SessionResult& r) {
  std::uint64_t sum = r.prompts_total + r.steps_completed;
  for (adl::StepId id : r.observed_steps) sum += id;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const auto users = static_cast<std::size_t>(flags.get_int("users", 50));
  const auto sessions =
      static_cast<std::size_t>(flags.get_int("sessions", 20));

  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();

  // Train ONE donor policy offline; every serving system (both modes)
  // stamps it in via import_policy — the train-once / deploy-many split.
  std::vector<adl::StepId> routine;
  for (const adl::AdlStep& s : tea.primary_routine().steps()) {
    routine.push_back(s.step_id());
  }
  const std::vector<std::vector<adl::StepId>> training(80, routine);
  planning::RoutineLearner donor(tea, util::Rng(17));
  for (const auto& ep : training) donor.train_episode(ep);

  std::printf("Session serving throughput: %zu users x %zu sessions "
              "(tea-making, closed loop)\n\n",
              users, sessions);

  // Steady-state allocation contract: one warm system, scripted sessions
  // covering the wrong-tool and idle-reprompt branches (comply_minimal = 0
  // forces the escalation re-prompt path every session).
  double steady_allocs_per_session = 0.0;
  {
    core::SystemConfig config;
    config.seed = 99;
    core::CoredaSystem system(library, tea, config);
    system.import_policy(donor.q());
    patient::PatientProfile profile =
        patient::PatientProfile::with_severity("U", 0.0);
    profile.comply_minimal = 0.0;
    profile.comply_specific = 1.0;
    const std::function<void(patient::PatientActor&)> script =
        [](patient::PatientActor& actor) {
          using Kind = patient::PatientEvent::Kind;
          actor.force_next_decision(Kind::kStartedStep);
          actor.force_next_decision(Kind::kFroze);
          actor.force_next_decision(Kind::kWrongTool, adl::tools::kTeaCup);
        };
    core::SessionResult result;
    for (int i = 0; i < 16; ++i) {
      system.run_session_inplace(profile, sim::Duration::minutes(15.0),
                                 script, result);
    }
    constexpr int kProbe = 64;
    const std::uint64_t before = util::allocation_count();
    for (int i = 0; i < kProbe; ++i) {
      system.run_session_inplace(profile, sim::Duration::minutes(15.0),
                                 script, result);
    }
    steady_allocs_per_session =
        static_cast<double>(util::allocation_count() - before) / kProbe;
  }

  const double total_sessions = static_cast<double>(users * sessions);

  // Reuse mode: one warm system per user serves every session in place.
  const std::uint64_t reuse_allocs_before = util::allocation_count();
  const exec::Stopwatch reuse_timer;
  const std::vector<FleetTotals> reuse_results =
      runner.run(users, 4242, [&](exec::TrialContext& ctx) {
        core::SystemConfig config;
        config.seed = exec::trial_seed(4243, ctx.index);
        core::CoredaSystem system(library, tea, config);
        system.import_policy(donor.q());
        const patient::PatientProfile profile = fleet_profile(ctx.rng);
        FleetTotals totals;
        core::SessionResult result;
        for (std::size_t s = 0; s < sessions; ++s) {
          system.run_session_inplace(profile, sim::Duration::minutes(15.0),
                                     {}, result);
          totals.completed += result.completed;
          totals.checksum += session_checksum(result);
        }
        return totals;
      });
  const double reuse_seconds = reuse_timer.seconds();
  const std::uint64_t reuse_allocs =
      util::allocation_count() - reuse_allocs_before;

  // Fresh mode: the pre-serving-engine shape — a new system per session.
  const std::uint64_t fresh_allocs_before = util::allocation_count();
  const exec::Stopwatch fresh_timer;
  const std::vector<FleetTotals> fresh_results =
      runner.run(users, 4242, [&](exec::TrialContext& ctx) {
        const patient::PatientProfile profile = fleet_profile(ctx.rng);
        FleetTotals totals;
        for (std::size_t s = 0; s < sessions; ++s) {
          core::SystemConfig config;
          config.seed = exec::trial_seed(5243, ctx.index * sessions + s);
          core::CoredaSystem system(library, tea, config);
          system.import_policy(donor.q());
          const core::SessionResult result =
              system.run_session(profile, sim::Duration::minutes(15.0));
          totals.completed += result.completed;
          totals.checksum += session_checksum(result);
        }
        return totals;
      });
  const double fresh_seconds = fresh_timer.seconds();
  const std::uint64_t fresh_allocs =
      util::allocation_count() - fresh_allocs_before;

  FleetTotals reuse{}, fresh{};
  for (const FleetTotals& t : reuse_results) {
    reuse.checksum += t.checksum;
    reuse.completed += t.completed;
  }
  for (const FleetTotals& t : fresh_results) {
    fresh.checksum += t.checksum;
    fresh.completed += t.completed;
  }

  util::TextTable table("Serving summary (timing in --timing-json only)");
  table.set_header({"metric", "value"});
  table.add_row({"users", std::to_string(users)});
  table.add_row({"sessions/user", std::to_string(sessions)});
  table.add_row({"sessions served (reuse)",
                 std::to_string(users * sessions)});
  table.add_row({"completed (reuse)", std::to_string(reuse.completed)});
  table.add_row({"completed (fresh)", std::to_string(fresh.completed)});
  table.add_row({"fleet checksum (reuse)", std::to_string(reuse.checksum)});
  table.add_row({"fleet checksum (fresh)", std::to_string(fresh.checksum)});
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", steady_allocs_per_session);
    table.add_row({"steady-state allocs/session", buf});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nThe summary is byte-identical at any --jobs (seed-split\n"
            "TrialRunner); only the wall-clock side channel may differ.");

  const std::string timing_path = flags.get("timing-json");
  {
    std::ostringstream extra;
    extra << "\"users\": " << users << ", \"sessions_per_user\": " << sessions
          << ", \"sessions_per_sec\": "
          << (reuse_seconds > 0.0 ? total_sessions / reuse_seconds : 0.0)
          << ", \"allocs_per_session\": "
          << static_cast<double>(reuse_allocs) / total_sessions
          << ", \"steady_state_allocs_per_session\": "
          << steady_allocs_per_session << ", \"speedup_vs_fresh\": "
          << (reuse_seconds > 0.0 ? fresh_seconds / reuse_seconds : 0.0);
    exec::append_timing_record(timing_path, "session_throughput",
                               runner.jobs(), users, reuse_seconds,
                               extra.str());
  }
  {
    std::ostringstream extra;
    extra << "\"users\": " << users << ", \"sessions_per_user\": " << sessions
          << ", \"sessions_per_sec\": "
          << (fresh_seconds > 0.0 ? total_sessions / fresh_seconds : 0.0)
          << ", \"allocs_per_session\": "
          << static_cast<double>(fresh_allocs) / total_sessions;
    exec::append_timing_record(timing_path, "session_throughput_fresh",
                               runner.jobs(), users, fresh_seconds,
                               extra.str());
  }
  return 0;
}
