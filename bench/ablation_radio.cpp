// Ablation A3 (DESIGN.md): robustness to radio packet loss.
//
// The paper's CC1000 deployment reports no loss figures; this sweep shows
// how the pipeline degrades: per-tool extract precision, training-data
// completeness, and closed-loop session completion as the independent
// frame-loss probability rises.

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "exec/trial_runner.hpp"
#include "trace/dataset.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

double extract_precision_at_loss(const adl::AdlLibrary& library,
                                 adl::ToolId tool, double loss) {
  trace::SensingPipeline::Params params;
  params.radio.loss_probability = loss;
  trace::SensingPipeline pipeline(library.tools(), {tool}, 808, params);
  const adl::Tool& t = library.tools().at(tool);
  util::Rng durations(909);
  util::PrecisionCounter precision;
  for (int i = 0; i < 200; ++i) {
    const double mean = t.typical_usage_mean.to_seconds();
    const double drawn = std::max(
        mean * 0.4,
        durations.normal(mean, t.typical_usage_stddev.to_seconds()));
    precision.record(
        pipeline.single_tool_trial(tool, sim::Duration::seconds(drawn)));
  }
  return precision.precision();
}

double session_completion_at_loss(const adl::AdlLibrary& library,
                                  double loss) {
  core::SystemConfig config;
  config.seed = 515;
  config.radio.loss_probability = loss;
  core::CoredaSystem system(library, library.tea_making(), config);
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("User", 0.0), 616);
  system.pretrain(datasets.clean_training_set(library.tea_making(), 120));

  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("User", 0.5);
  profile.comply_minimal = 1.0;
  profile.comply_specific = 1.0;

  int completed = 0;
  constexpr int kSessions = 12;
  for (int i = 0; i < kSessions; ++i) {
    if (system.run_session(profile, sim::Duration::minutes(30.0))
            .completed) {
      ++completed;
    }
  }
  return static_cast<double>(completed) / kSessions;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const exec::Stopwatch timer;

  adl::AdlLibrary library;

  std::puts("Ablation A3: pipeline behaviour under radio frame loss");
  std::puts("(kettle = strong signal, electronic pot = weak signal)\n");

  const double losses[] = {0.0, 0.1, 0.2, 0.4, 0.6, 0.8};
  constexpr std::size_t kLosses = 6;

  // One trial per table cell; every cell is seeded by its own constants, so
  // the table is byte-identical at any --jobs value.
  const std::vector<double> cells = runner.run(
      kLosses * 3, 0, [&](exec::TrialContext& ctx) {
        const double loss = losses[ctx.index / 3];
        switch (ctx.index % 3) {
          case 0:
            return extract_precision_at_loss(library, adl::tools::kKettle,
                                             loss);
          case 1:
            return extract_precision_at_loss(library,
                                             adl::tools::kElectricPot, loss);
          default:
            return session_completion_at_loss(library, loss);
        }
      });
  exec::append_timing_record(flags.get("timing-json"), "ablation_radio",
                             runner.jobs(), kLosses * 3, timer.seconds());

  util::TextTable table;
  table.set_header({"Frame loss", "Extract (kettle)", "Extract (pot)",
                    "Closed-loop completion (sev 0.5)"});
  for (std::size_t li = 0; li < kLosses; ++li) {
    table.add_row({util::format_percent(losses[li]),
                   util::format_percent(cells[li * 3]),
                   util::format_percent(cells[li * 3 + 1]),
                   util::format_percent(cells[li * 3 + 2])});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: extraction degrades gracefully because a usage\n"
      "episode is announced repeatedly (one packet per detector window) —\n"
      "losing one frame rarely loses the episode. The closed loop holds up\n"
      "until loss removes whole episodes and prompts start mis-firing.");
  return 0;
}
