// Ablation A4 (DESIGN.md): the paper's TD(λ) planner vs the alternatives
// its related-work section discusses.
//
//   * markov-1   — first-order frequency model (no pair context)
//   * bigram     — frequency model over the paper's own <prev, cur> context
//   * mdp-vi     — model-based value iteration, after Boger et al. [1]
//   * td-lambda  — the paper's planner
//   * oracle     — reads the routine (upper bound)
//
// Evaluated on three regimes: clean recordings, sensed (noisy) recordings,
// and the multi-routine dressing data that motivates the paper's future
// work. Prediction accuracy is scored against the generating routine.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "adl/library.hpp"
#include "baselines/markov.hpp"
#include "baselines/mdp_planner.hpp"
#include "baselines/td_adapter.hpp"
#include "trace/dataset.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

double routine_accuracy(const baselines::NextStepPredictor& predictor,
                        const adl::AdlRoutine& routine) {
  std::size_t hits = 0;
  std::size_t total = 0;
  adl::StepId prev = adl::kIdleStep;
  const auto& steps = routine.steps();
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    const auto predicted = predictor.predict(prev, steps[i].step_id());
    ++total;
    if (predicted && *predicted == steps[i + 1].tool) ++hits;
    prev = steps[i].step_id();
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

double adl_accuracy(const baselines::NextStepPredictor& predictor,
                    const adl::Adl& adl) {
  double sum = 0.0;
  for (const adl::AdlRoutine& r : adl.routines()) {
    sum += routine_accuracy(predictor, r);
  }
  return sum / static_cast<double>(adl.routines().size());
}

std::vector<std::unique_ptr<baselines::NextStepPredictor>> make_predictors(
    const adl::Adl& adl, std::uint64_t seed) {
  std::vector<std::unique_ptr<baselines::NextStepPredictor>> out;
  out.push_back(std::make_unique<baselines::MarkovChainPredictor>());
  out.push_back(std::make_unique<baselines::BigramPredictor>());
  out.push_back(std::make_unique<baselines::MdpPlanner>(adl));
  out.push_back(
      std::make_unique<baselines::TdLambdaPredictor>(adl, util::Rng(seed)));
  out.push_back(
      std::make_unique<baselines::OraclePredictor>(adl.primary_routine()));
  return out;
}

}  // namespace

int main() {
  adl::AdlLibrary library;
  constexpr std::size_t kEpisodes = 120;

  struct Regime {
    const char* name;
    const adl::Adl* adl;
    bool sensed;
  };
  const Regime regimes[] = {
      {"Tea-making / clean", &library.tea_making(), false},
      {"Tea-making / sensed", &library.tea_making(), true},
      {"Dressing / two routines", &library.dressing(), false},
  };

  std::puts("Ablation A4: next-step predictors across data regimes");
  std::printf("(%zu training episodes per regime; accuracy vs generating "
              "routine)\n\n",
              kEpisodes);

  util::TextTable table;
  table.set_header({"Regime", "markov-1", "bigram", "mdp-vi", "td-lambda",
                    "oracle"});

  for (const Regime& regime : regimes) {
    trace::DatasetBuilder datasets(
        library, patient::PatientProfile::with_severity("User", 0.0), 404);
    const auto training =
        regime.sensed ? datasets.sensed_training_set(*regime.adl, kEpisodes)
                      : datasets.clean_training_set(*regime.adl, kEpisodes);

    auto predictors = make_predictors(*regime.adl, 505);
    std::vector<std::string> row{regime.name};
    for (auto& p : predictors) {
      for (const auto& ep : training) p->train(ep);
      row.push_back(util::format_percent(adl_accuracy(*p, *regime.adl)));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: every method solves the clean single routine;\n"
      "sensed noise is absorbed by all pair-context methods; the two-\n"
      "routine regime defeats markov-1 badly and caps every pair-context\n"
      "method (including the paper's planner) below 100% — the ambiguity\n"
      "bench_ext_multiroutine resolves with deeper history.");
  return 0;
}
