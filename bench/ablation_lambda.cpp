// Ablation A1 (DESIGN.md): does the eligibility-trace decay λ matter?
//
// The paper's future-work section asks for "fast learning". Traces are the
// paper's own lever: TD(λ) propagates the terminal reward down the episode
// in one sweep. This ablation separates two different questions:
//
//   1. value propagation — how quickly the big terminal reward (1000)
//      reaches the value of the routine's *first* decision context;
//   2. policy stability — episodes until the greedy policy matches the
//      routine and stays there, under pure trajectory sampling.
//
// In this 4-step MDP λ visibly accelerates (1) but does not help (2):
// policy stability is dominated by exploration churn, and aggressive
// no-cut traces even hurt by letting exploratory TD errors pollute earlier
// pairs. The production configuration therefore pairs a moderate λ with
// the counterfactual sweep (DESIGN.md), which removes the sampling
// bottleneck outright.

#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "planning/learner.hpp"
#include "trace/dataset.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

planning::LearnerConfig ablation_config(double lambda) {
  planning::LearnerConfig config;
  config.counterfactual_sweep = false;  // isolate trace-based learning
  config.td.lambda = lambda;
  config.td.alpha = 0.3;
  config.td.initial_q = 0.0;  // no optimism: value must *propagate* back
  // Watkins' cut clears traces after any tied/exploratory action; with a
  // zero-initialized table everything ties early, suppressing traces
  // exactly when they should help. The prompting MDP's transitions do not
  // depend on the action, which makes the no-cut variant sound — and it is
  // the variant where lambda can show its effect.
  config.td.watkins_cut = false;
  config.epsilon = 0.6;  // pure sampling needs real exploration
  config.epsilon_decay = 0.995;
  config.min_epsilon = 0.05;
  return config;
}

/// Episodes until V(first context) reaches half its final value, averaged
/// over seeds.
double episodes_to_half_value(const adl::AdlLibrary& library,
                              const adl::Adl& adl, double lambda) {
  constexpr std::size_t kEpisodes = 150;
  constexpr int kSeeds = 20;
  util::RunningStats stats;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    trace::DatasetBuilder datasets(
        library, patient::PatientProfile::with_severity("User", 0.0),
        seed * 7 + 1);
    const auto training = datasets.clean_training_set(adl, kEpisodes);

    planning::RoutineLearner learner(adl, util::Rng(seed * 53 + 5),
                                     ablation_config(lambda));
    const auto first_context = planning::PlannerState{
        adl::kIdleStep, adl.primary_routine().first_step()};
    const auto sid = learner.state_codec().encode(first_context);

    std::vector<double> value_curve;
    for (const auto& ep : training) {
      learner.train_episode(ep);
      value_curve.push_back(learner.q().max_q(*sid));
    }
    const double final_value = value_curve.back();
    if (final_value <= 0.0) continue;
    for (std::size_t i = 0; i < value_curve.size(); ++i) {
      if (value_curve[i] >= 0.5 * final_value) {
        stats.add(static_cast<double>(i + 1));
        break;
      }
    }
  }
  return stats.mean();
}

std::optional<std::size_t> episodes_to_stable_policy(
    const adl::AdlLibrary& library, const adl::Adl& adl, double lambda,
    std::uint64_t seed, std::size_t max_episodes) {
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("User", 0.0), seed);
  const auto training = datasets.clean_training_set(adl, max_episodes);

  planning::RoutineLearner learner(adl, util::Rng(seed * 131 + 17),
                                   ablation_config(lambda));
  std::optional<std::size_t> stable_at;
  for (std::size_t i = 0; i < training.size(); ++i) {
    learner.train_episode(training[i]);
    if (learner.greedy_accuracy() == 1.0) {
      if (!stable_at) stable_at = i + 1;
    } else {
      stable_at.reset();
    }
  }
  return stable_at;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const exec::Stopwatch timer;

  adl::AdlLibrary library;
  constexpr std::size_t kMaxEpisodes = 800;
  constexpr int kSeeds = 30;
  const double lambdas[] = {0.0, 0.3, 0.5, 0.7, 0.9};
  constexpr std::size_t kLambdas = 5;

  std::puts("Ablation A1: the role of the eligibility-trace decay lambda");
  std::puts("(pure trajectory TD(lambda), zero-initialized table)\n");

  // Every cell computation is seeded by explicit per-cell constants, so the
  // tables below are byte-identical at any --jobs value.

  // Table 1: one trial per (lambda, adl) cell.
  const std::vector<double> half_value = runner.run(
      kLambdas * 2, 0, [&](exec::TrialContext& ctx) {
        const double lambda = lambdas[ctx.index / 2];
        const adl::Adl& adl = (ctx.index % 2 == 0) ? library.tooth_brushing()
                                                   : library.tea_making();
        return episodes_to_half_value(library, adl, lambda);
      });

  util::TextTable value_table(
      "1. Value propagation: episodes until V(first context) reaches half\n"
      "   its final value (mean over 20 seeds)");
  value_table.set_header({"lambda", "Tooth-brushing", "Tea-making"});
  for (std::size_t li = 0; li < kLambdas; ++li) {
    value_table.add_row({util::format_fixed(lambdas[li], 1),
                         util::format_fixed(half_value[li * 2], 1),
                         util::format_fixed(half_value[li * 2 + 1], 1)});
  }
  std::fputs(value_table.render().c_str(), stdout);
  std::puts("");

  // Table 2: one trial per (lambda, seed); reduction re-walks seed order, so
  // the Welford accumulators see the exact additions of the serial loop.
  using Stability =
      std::pair<std::optional<std::size_t>, std::optional<std::size_t>>;
  const std::vector<Stability> stability = runner.run(
      kLambdas * kSeeds, 0, [&](exec::TrialContext& ctx) {
        const double lambda = lambdas[ctx.index / kSeeds];
        const int seed = static_cast<int>(ctx.index % kSeeds) + 1;
        return Stability{
            episodes_to_stable_policy(library, library.tooth_brushing(),
                                      lambda, seed, kMaxEpisodes),
            episodes_to_stable_policy(library, library.tea_making(), lambda,
                                      seed + 1000, kMaxEpisodes)};
      });

  util::TextTable policy_table(
      "2. Policy stability: episodes until the greedy policy stays correct\n"
      "   (mean +/- stddev over 30 seeds)");
  policy_table.set_header({"lambda", "Tooth-brushing", "Tea-making",
                           "unconverged runs"});
  for (std::size_t li = 0; li < kLambdas; ++li) {
    util::RunningStats tooth;
    util::RunningStats tea;
    int unconverged = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const auto& [t1, t2] = stability[li * kSeeds + seed - 1];
      if (t1) tooth.add(static_cast<double>(*t1));
      if (t2) tea.add(static_cast<double>(*t2));
      unconverged += !t1 + !t2;
    }
    const auto fmt = [](const util::RunningStats& s) {
      if (s.count() == 0) return std::string("n/a");
      return util::format_fixed(s.mean(), 0) + " +/- " +
             util::format_fixed(s.stddev(), 0);
    };
    policy_table.add_row({util::format_fixed(lambdas[li], 1), fmt(tooth),
                          fmt(tea), std::to_string(unconverged)});
  }
  exec::append_timing_record(flags.get("timing-json"), "ablation_lambda",
                             runner.jobs(), kLambdas * (2 + kSeeds),
                             timer.seconds());
  std::fputs(policy_table.render().c_str(), stdout);
  std::puts(
      "\nReading: lambda accelerates reward propagation (table 1) but the\n"
      "tiny 4-step MDP converges its *policy* at the pace of exploration,\n"
      "which lambda cannot fix (table 2) — the honest answer to the\n"
      "paper's 'fast learning' future work is the counterfactual sweep\n"
      "(enabled in the production config; see DESIGN.md).");
  return 0;
}
