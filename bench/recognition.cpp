// Extension (DESIGN.md): activity recognition over the usage stream — the
// capability the paper's related work cites from Philipose et al. [2]
// ("inferring activities from interactions with objects") and that a
// multi-ADL CoReDA home needs before it can route StepIDs to the right
// planner.
//
// Two measurements:
//   1. offline recognition — confusion matrix and accuracy as a function
//      of how many steps have been observed (prefixes of sensed episodes);
//   2. closed-loop — the HomeDeployment recognizing and assisting
//      residents across all ADLs on one shared radio.

#include <cstdio>
#include <map>
#include <string>

#include "core/home.hpp"
#include "recognition/recognizer.hpp"
#include "trace/dataset.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

}  // namespace

int main() {
  adl::AdlLibrary library;

  // ---- offline: train on sensed recordings, test on held-out ones ----
  recognition::AdlRecognizer recognizer;
  trace::DatasetBuilder train_data(
      library, patient::PatientProfile::with_severity("U", 0.0), 51);
  for (const adl::Adl& adl : library.adls()) {
    for (const auto& ep : train_data.sensed_training_set(adl, 120)) {
      recognizer.train(adl.name(), ep);
    }
  }

  trace::DatasetBuilder test_data(
      library, patient::PatientProfile::with_severity("U", 0.0), 52);
  constexpr int kTestEpisodes = 60;

  std::puts("Extension: ADL recognition from the tool-usage stream");
  std::puts("(trained on 120 sensed episodes per ADL; 60 held-out episodes "
            "per ADL)\n");

  util::TextTable accuracy_table(
      "Recognition accuracy vs observed prefix length");
  accuracy_table.set_header(
      {"ADL", "1 step", "2 steps", "3 steps", "full episode"});

  std::map<std::pair<std::string, std::string>, int> confusion;
  for (const adl::Adl& adl : library.adls()) {
    const auto episodes = test_data.sensed_training_set(adl, kTestEpisodes);
    std::vector<util::PrecisionCounter> by_prefix(4);
    for (const auto& ep : episodes) {
      if (ep.empty()) continue;
      for (std::size_t k = 1; k <= 3; ++k) {
        const std::size_t len = std::min(k, ep.size());
        const auto guess = recognizer.classify(
            std::span<const adl::StepId>(ep.data(), len));
        by_prefix[k - 1].record(guess == adl.name());
      }
      const auto full = recognizer.classify(ep);
      by_prefix[3].record(full == adl.name());
      ++confusion[{adl.name(), full.value_or("?")}];
    }
    accuracy_table.add_row(
        {adl.name(), util::format_percent(by_prefix[0].precision()),
         util::format_percent(by_prefix[1].precision()),
         util::format_percent(by_prefix[2].precision()),
         util::format_percent(by_prefix[3].precision())});
  }
  std::fputs(accuracy_table.render().c_str(), stdout);
  std::puts("");

  util::TextTable confusion_table(
      "Confusion matrix (rows: actual, full episodes)");
  std::vector<std::string> header{"actual \\ predicted"};
  for (const adl::Adl& adl : library.adls()) header.push_back(adl.name());
  confusion_table.set_header(header);
  for (const adl::Adl& actual : library.adls()) {
    std::vector<std::string> row{actual.name()};
    for (const adl::Adl& predicted : library.adls()) {
      const auto it = confusion.find({actual.name(), predicted.name()});
      row.push_back(std::to_string(it != confusion.end() ? it->second : 0));
    }
    confusion_table.add_row(row);
  }
  std::fputs(confusion_table.render().c_str(), stdout);
  std::puts("");

  // ---- closed loop: one home, every ADL ------------------------------
  core::SystemConfig config;
  config.seed = 61;
  core::HomeDeployment home(library, config);
  home.pretrain(120, 62);

  util::TextTable loop_table(
      "Closed loop: HomeDeployment recognizing + assisting (severity 0.5,\n"
      "8 sessions per ADL, no schedule hint)");
  loop_table.set_header({"ADL", "Recognized", "Completed",
                         "Steps to recognition", "Prompts/session"});

  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("Resident", 0.5);
  profile.comply_minimal = 1.0;
  profile.comply_specific = 1.0;

  for (const char* name :
       {"Tea-making", "Tooth-brushing", "Hand-washing"}) {
    int recognized = 0;
    int completed = 0;
    util::RunningStats steps_to_rec;
    std::size_t prompts = 0;
    constexpr int kSessions = 8;
    for (int i = 0; i < kSessions; ++i) {
      const auto result =
          home.run_session(name, profile, sim::Duration::minutes(40.0));
      recognized += result.recognized_correctly;
      completed += result.completed;
      prompts += result.prompts_total;
      if (result.recognized_correctly) {
        steps_to_rec.add(static_cast<double>(result.steps_to_recognition));
      }
    }
    loop_table.add_row(
        {name, std::to_string(recognized) + "/" + std::to_string(kSessions),
         std::to_string(completed) + "/" + std::to_string(kSessions),
         util::format_fixed(steps_to_rec.mean(), 1),
         util::format_fixed(static_cast<double>(prompts) / kSessions, 1)});
  }
  std::fputs(loop_table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: the catalog's tools are activity-specific, so one\n"
      "or two observed steps identify the ADL; misclassification happens\n"
      "only between activities sharing usage statistics. The closed loop\n"
      "assists without being told which ADL the resident started.");
  return 0;
}
