// Reproduces Figure 1 of the paper: "A typical scenario of CoReDA".
//
// Mr. Tanaka makes tea in four steps. He (1) takes tea-leaf correctly,
// (2) incorrectly takes the tea cup — CoReDA prompts the electronic pot
// with all four methods (text, red LED on the cup, green LED on the pot,
// tool picture), (3) uses the pot and is praised, pours tea correctly,
// then (4) does nothing for the waiting period — CoReDA prompts him to
// drink, he does, and is praised again.
//
// The timeline below is produced by the real closed loop: scripted patient
// decisions, synthetic sensor signals, PAVENET firmware votes, radio
// frames, TD(λ) predictions and rendered reminders.

#include <cstdio>
#include <iostream>

#include "core/scenario.hpp"
#include "util/table.hpp"

int main() {
  coreda::adl::AdlLibrary library;
  coreda::core::ScenarioPlayer player(library);

  std::puts("Figure 1. A typical scenario of CoReDA (closed-loop replay)");
  std::puts("");
  player.play_figure1(&std::cout);

  const auto& result = player.last_result();
  std::puts("");
  coreda::util::TextTable summary("Session summary");
  summary.set_header({"Metric", "Value"});
  summary.add_row({"ADL completed", result.completed ? "yes" : "no"});
  summary.add_row({"Steps completed", std::to_string(result.steps_completed)});
  summary.add_row({"Elapsed (s)",
                   coreda::util::format_fixed(result.elapsed.to_seconds(), 1)});
  summary.add_row({"Wrong-tool reminders",
                   std::to_string(result.prompts_wrong_tool)});
  summary.add_row({"Idle reminders", std::to_string(result.prompts_idle)});
  summary.add_row({"Praises", std::to_string(result.praises)});
  std::fputs(summary.render().c_str(), stdout);
  return result.completed ? 0 : 1;
}
