// Extension: node energy budget — the WSN concern PAVENET's own
// publication targets ("a hardware and software framework for wireless
// sensor networks", ref [5]) and that any real deployment of CoReDA has
// to answer: how long do the tool nodes last on a battery, and what
// dominates the drain?
//
// We simulate a realistic day (8 assisted ADL sessions spread over 16
// waking hours, the node otherwise idle) and report the energy split and
// the projected lifetime per tool, then sweep the firmware sampling rate —
// the knob the paper fixes at 10 Hz.

#include <cstdio>
#include <string>

#include "core/system.hpp"
#include "pavenet/energy.hpp"
#include "trace/dataset.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

/// A simulated day: nodes on, periodic assisted sessions, long idle gaps.
void run_day(core::CoredaSystem& system,
             const patient::PatientProfile& profile, int sessions) {
  for (int i = 0; i < sessions; ++i) {
    // ~2 h of idle home time between activities.
    system.scheduler().run_for(sim::Duration::minutes(110.0));
    system.run_session(profile, sim::Duration::minutes(10.0));
  }
}

}  // namespace

int main() {
  adl::AdlLibrary library;
  const pavenet::EnergyProfile energy_profile;

  std::puts("Extension: PAVENET node energy budget");
  std::puts("(one simulated day: 8 assisted tea-making sessions over ~15 h;"
            "\n battery 6 kJ; datasheet-order per-operation costs)\n");

  core::SystemConfig config;
  config.seed = 77;
  core::CoredaSystem system(library, library.tea_making(), config);
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("R", 0.0), 78);
  system.pretrain(datasets.sensed_training_set(library.tea_making(), 120));

  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("R", 0.5);
  profile.comply_minimal = 1.0;
  profile.comply_specific = 1.0;

  const sim::TimePoint day_start = system.scheduler().now();
  run_day(system, profile, 8);
  const sim::Duration day = system.scheduler().now() - day_start;

  util::TextTable table("Per-node energy after one day");
  table.set_header({"Tool", "Sampling", "Radio", "EEPROM", "LED", "Sleep",
                    "Total (J)", "Lifetime (days)"});
  for (adl::ToolId id : library.tea_making().tools()) {
    const pavenet::PavenetNode& node = system.node(id);
    const pavenet::EnergyReport report =
        estimate_energy(node, day, energy_profile);
    const auto pct = [&report](double j) {
      return util::format_percent(j / report.total_j());
    };
    table.add_row({library.tools().at(id).name, pct(report.sampling_j),
                   pct(report.radio_j), pct(report.eeprom_j),
                   pct(report.led_j), pct(report.sleep_j),
                   util::format_fixed(report.total_j(), 2),
                   util::format_fixed(
                       report.projected_lifetime_days(
                           energy_profile.battery_j, day),
                       0)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("");

  // --- sampling-rate sweep (isolated node, one hour with 6 min of use) --
  util::TextTable sweep("Sampling-rate sweep (kettle node, 1 h with 6 "
                        "one-minute manipulations)");
  sweep.set_header({"Rate (Hz)", "Samples", "Total (J)", "Lifetime (days)",
                    "Detected manipulations"});
  for (std::uint32_t hz : {2u, 5u, 10u, 20u, 50u}) {
    sim::Scheduler scheduler;
    sensors::ManipulationWorld world;
    pavenet::RadioChannel channel(scheduler, util::Rng(5));
    pavenet::BaseStation station(scheduler, channel);
    pavenet::FirmwareConfig firmware;
    firmware.sampling_hz = hz;
    pavenet::PavenetNode node(library.tools().at(adl::tools::kKettle),
                              scheduler, world, channel, util::Rng(6),
                              firmware);
    node.power_on();
    for (int i = 0; i < 6; ++i) {
      // Scheduled at manipulation time: ManipulationWorld keeps one live
      // episode per tool, so writing them all up front would overwrite.
      const auto start = sim::TimePoint::from_seconds(300.0 + i * 500.0);
      scheduler.schedule_at(start, [&world, start] {
        world.begin(adl::tools::kKettle, start,
                    sim::Duration::seconds(60.0));
      });
    }
    scheduler.run_until(sim::TimePoint::from_seconds(3600.0));
    const pavenet::EnergyReport report = estimate_energy(
        node, sim::Duration::seconds(3600.0), energy_profile);
    sweep.add_row(
        {std::to_string(hz), std::to_string(node.samples()),
         util::format_fixed(report.total_j(), 2),
         util::format_fixed(report.projected_lifetime_days(
                                energy_profile.battery_j,
                                sim::Duration::seconds(3600.0)),
                            0),
         std::to_string(station.episodes().size())});
  }
  std::fputs(sweep.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: sampling dominates the budget at the paper's\n"
      "10 Hz duty cycle (the radio only fires during manipulation), so\n"
      "lifetime scales roughly inversely with the sampling rate. Below\n"
      "~5 Hz the vote window outgrows the base station's merge gap and\n"
      "each manipulation fragments into many episodes (the 2 Hz row) —\n"
      "the paper's 10 Hz buys detection margin for short, weak steps\n"
      "while keeping episodes coherent.");
  return 0;
}
