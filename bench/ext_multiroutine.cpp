// Extension A5 (DESIGN.md): multi-routine planning — the paper's future-
// work item #1 ("for some ADLs, such as dressing, one user may have
// multiple routines to complete it").
//
// The dressing ADL has two acceptable routines that share the
// trousers -> socks transition and then diverge. The paper's prototype
// state <StepID_{i-1}, StepID_i> (history depth 2) cannot represent which
// routine the user is in at that shared context; widening the state to the
// last k observed steps disambiguates any two routines that differ within
// the horizon. This bench sweeps the history depth.

#include <cstdio>
#include <string>

#include "adl/library.hpp"
#include "planning/multi_routine.hpp"
#include "trace/dataset.hpp"
#include "util/table.hpp"

int main() {
  using namespace coreda;
  adl::AdlLibrary library;
  const adl::Adl& dressing = library.dressing();

  constexpr std::size_t kEpisodes = 300;
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("User", 0.0), 717);
  const auto training = datasets.clean_training_set(dressing, kEpisodes);

  std::puts("Extension A5: multi-routine dressing vs planner history depth");
  std::printf("(%zu training episodes, both routines sampled uniformly)\n\n",
              kEpisodes);

  util::TextTable table;
  table.set_header({"History depth", "States", "Accuracy shirt-first",
                    "Accuracy trousers-first", "Overall"});

  for (std::size_t depth : {1u, 2u, 3u, 4u}) {
    planning::MultiRoutineLearner learner(dressing, depth,
                                          util::Rng(818 + depth));
    for (const auto& ep : training) learner.train_episode(ep);

    table.add_row(
        {std::to_string(depth), std::to_string(learner.codec().num_states()),
         util::format_percent(
             learner.routine_accuracy(dressing.routines()[0])),
         util::format_percent(
             learner.routine_accuracy(dressing.routines()[1])),
         util::format_percent(learner.routine_accuracy())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: depth 2 (the paper's encoding) mis-prompts at the\n"
      "shared trousers->socks context, capping one routine at 2/3; depth 3\n"
      "separates the two routines completely at a modest state-count cost.");
  return 0;
}
