// Extension: routine drift — the paper's "always learning" discussion
// (§3.2: "we can set the parameters ... to make the learning update all
// the while instead of converging. By doing this, CoReDA can always learn
// the newest routines of a user").
//
// A user changes their tea-making routine mid-deployment (swaps the order
// of two middle steps). We compare a frozen policy against the
// always-learning configuration (learn_from_sessions) on how quickly the
// planner's prompts track the *new* routine.

#include <cstdio>
#include <string>

#include "adl/library.hpp"
#include "planning/learner.hpp"
#include "trace/dataset.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;
namespace T = adl::tools;

/// Accuracy of the greedy policy against an explicit routine.
double accuracy_vs(const planning::RoutineLearner& learner,
                   const std::vector<adl::StepId>& routine) {
  std::size_t hits = 0;
  std::size_t total = 0;
  adl::StepId prev = adl::kIdleStep;
  for (std::size_t i = 0; i + 1 < routine.size(); ++i) {
    const auto prompt = learner.predict(prev, routine[i]);
    ++total;
    if (prompt && prompt->action.tool == routine[i + 1]) ++hits;
    prev = routine[i];
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

int main() {
  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();

  // Old routine: box -> pot -> kettle -> cup (the paper's).
  const std::vector<adl::StepId> old_routine{T::kTeaBox, T::kElectricPot,
                                             T::kKettle, T::kTeaCup};
  // New habit: the user now pre-heats the kettle before fetching leaves.
  const std::vector<adl::StepId> new_routine{T::kElectricPot, T::kTeaBox,
                                             T::kKettle, T::kTeaCup};

  std::puts("Extension: adapting to routine drift "
            "(always-learning mode, paper §3.2)");
  std::puts("(120 old-routine episodes, then the user switches; accuracy "
            "of the\n greedy prompts against the NEW routine, per "
            "post-switch episode)\n");

  util::TextTable table;
  table.set_header({"Episodes after switch", "frozen policy",
                    "always-learning"});

  planning::RoutineLearner frozen(tea, util::Rng(11));
  planning::RoutineLearner adaptive(tea, util::Rng(12));
  for (int i = 0; i < 120; ++i) {
    frozen.train_episode(old_routine);
    adaptive.train_episode(old_routine);
  }

  const int checkpoints[] = {0, 5, 10, 20, 40, 80};
  int trained_after = 0;
  for (int checkpoint : checkpoints) {
    for (; trained_after < checkpoint; ++trained_after) {
      adaptive.train_episode(new_routine);  // frozen learns nothing
    }
    table.add_row({std::to_string(checkpoint),
                   util::format_percent(accuracy_vs(frozen, new_routine)),
                   util::format_percent(accuracy_vs(adaptive, new_routine))});
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts(
      "\nExpected shape: the frozen policy keeps prompting the old order\n"
      "(scoring only the steps the two routines share), while the\n"
      "always-learning policy converges to the new routine within a few\n"
      "dozen sessions. The paper rejects always-on learning for users\n"
      "whose dementia worsens — the system would learn the *mistakes* —\n"
      "which is why CoredaSystem ships with learn_from_sessions off and\n"
      "gates it on completed sessions only.");
  return 0;
}
