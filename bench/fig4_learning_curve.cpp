// Reproduces Figure 4 of the paper: the TD(λ) Q-Learning learning curve
// for Tooth-brushing and Tea-making, plus the convergence iterations at
// the 95 % and 98 % "converging conditions".
//
// Paper setup (§3.2): 120 training samples per ADL, one sample = one
// complete ADL process. Paper reference values: 95 % at 49 iterations
// (tooth-brushing) / 56 (tea-making); 98 % at 91 / 98.
//
// Our training samples flow through the full sensing stack (so the
// tea-making data carries the electronic pot's ~20 % extraction misses,
// exactly like the paper's recorded data would). The curve plots the
// behaviour policy's expected per-prompt accuracy — smooth in the ε-greedy
// exploration residue, the quantity whose threshold crossings the paper's
// converging conditions describe.

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "planning/learner.hpp"
#include "trace/dataset.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

struct CurveResult {
  std::vector<double> accuracy;  // per training iteration
  std::optional<std::size_t> it95;
  std::optional<std::size_t> it98;
};

CurveResult run_curve(const adl::AdlLibrary& library, const adl::Adl& adl,
                      std::size_t episodes, std::uint64_t seed,
                      exec::TrialRunner& runner) {
  // Dataset generation is the expensive stage (120 full sensing-stack
  // episodes); fan it across the runner. TD training itself is inherently
  // sequential and stays in this thread.
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("User", 0.0), seed);
  const auto training =
      datasets.sensed_training_set_parallel(adl, episodes, runner);

  planning::RoutineLearner learner(adl, util::Rng(seed * 31 + 7));
  CurveResult result;
  for (const auto& episode : training) {
    learner.train_episode(episode);
    const double acc = learner.behaviour_accuracy();
    result.accuracy.push_back(acc);
    if (acc >= 0.95) {
      if (!result.it95) result.it95 = result.accuracy.size();
    } else {
      result.it95.reset();
    }
    if (acc >= 0.98) {
      if (!result.it98) result.it98 = result.accuracy.size();
    } else {
      result.it98.reset();
    }
  }
  return result;
}

std::string ascii_sparkline(const std::vector<double>& values,
                            std::size_t width) {
  static const char* kLevels = " .:-=+*#%@";
  std::string out;
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t idx = i * values.size() / width;
    const int level =
        static_cast<int>(values[idx] * 9.0 + 0.5);
    out += kLevels[std::clamp(level, 0, 9)];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const exec::Stopwatch timer;

  adl::AdlLibrary library;
  constexpr std::size_t kEpisodes = 120;  // paper: 120 training samples

  struct PaperRef {
    const char* adl;
    int it95;
    int it98;
  };
  const PaperRef refs[] = {{"Tooth-brushing", 49, 91},
                           {"Tea-making", 56, 98}};

  std::puts("Figure 4. Learning curve (TD(lambda) Q-Learning, 120 samples)");
  std::puts("");

  util::TextTable summary("Convergence iterations");
  summary.set_header({"ADL", "95% (paper)", "95% (measured)",
                      "98% (paper)", "98% (measured)"});

  for (const PaperRef& ref : refs) {
    const adl::Adl& adl = library.by_name(ref.adl);
    const CurveResult curve = run_curve(library, adl, kEpisodes, 99, runner);

    std::printf("%s curve (x: iteration 1..%zu, y: accuracy 0..100%%):\n",
                ref.adl, curve.accuracy.size());
    std::printf("  [%s]\n", ascii_sparkline(curve.accuracy, 60).c_str());
    std::printf("  points:");
    for (std::size_t i = 9; i < curve.accuracy.size(); i += 10) {
      std::printf(" (%zu, %s)", i + 1,
                  util::format_percent(curve.accuracy[i], 1).c_str());
    }
    std::puts("\n");

    const auto fmt = [](std::optional<std::size_t> it) {
      return it ? std::to_string(*it) : std::string("not reached");
    };
    summary.add_row({ref.adl, std::to_string(ref.it95), fmt(curve.it95),
                     std::to_string(ref.it98), fmt(curve.it98)});
  }

  exec::append_timing_record(flags.get("timing-json"), "fig4_learning_curve",
                             runner.jobs(), 2 * kEpisodes, timer.seconds());
  std::fputs(summary.render().c_str(), stdout);
  std::puts(
      "\nNote: with the converging condition disabled the learner keeps\n"
      "updating indefinitely (always-learning mode, discussed and rejected\n"
      "by the paper for worsening dementia).");
  return 0;
}
