// Ablation A7: scheduled (Autominder-style, Pollack et al. [3]) vs
// context-aware (CoReDA) prompting.
//
// The paper's introduction criticizes systems "based solely on pre-planned
// routines of ADLs". This bench makes the criticism quantitative: the same
// simulated residents attempt tea-making assisted either by a
// clock-driven reminder plan (prompts at each step's learned mean time,
// blind to what the resident is doing) or by the full CoReDA loop
// (prompts only on the two sensed trigger situations).
//
// Metrics per severity: completion rate, prompts issued per session, and
// prompt aptness — the fraction of prompts naming the tool the resident
// actually needed at delivery time.

#include <cstdio>
#include <string>

#include "baselines/scheduled.hpp"
#include "core/system.hpp"
#include "trace/dataset.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

struct Outcome {
  int sessions = 0;
  int completed = 0;
  std::size_t prompts = 0;
  std::size_t apt_prompts = 0;

  std::string completion() const {
    return std::to_string(completed) + "/" + std::to_string(sessions);
  }
  std::string prompts_per_session() const {
    return util::format_fixed(
        static_cast<double>(prompts) / std::max(sessions, 1), 1);
  }
  std::string aptness() const {
    return prompts == 0 ? "-"
                        : util::format_percent(
                              static_cast<double>(apt_prompts) /
                              static_cast<double>(prompts));
  }
};

/// Closed loop driven purely by the clock: prompts fire at the plan's
/// offsets whether or not the resident needs them.
Outcome run_scheduled(const adl::AdlLibrary& library,
                      const baselines::ScheduledReminderPlan& plan,
                      double severity, int sessions, std::uint64_t seed) {
  const adl::AdlRoutine& routine = plan.routine();
  Outcome outcome;
  util::Rng rng(seed);
  for (int s = 0; s < sessions; ++s) {
    sim::Scheduler scheduler;
    sensors::ManipulationWorld world;
    patient::PatientProfile profile =
        patient::PatientProfile::with_severity("R", severity);
    profile.comply_minimal = 1.0;
    profile.comply_specific = 1.0;
    patient::PatientActor actor(scheduler, world, library.tools(), profile,
                                rng.fork());
    actor.begin(routine);

    for (const auto& entry : plan.schedule()) {
      scheduler.schedule_at(
          sim::TimePoint::origin() + entry.at,
          [&actor, &outcome, &routine, tool = entry.tool] {
            if (actor.finished()) return;
            ++outcome.prompts;
            // Apt = the prompt names the step the resident actually needs.
            if (routine.step(actor.steps_completed()).tool == tool) {
              ++outcome.apt_prompts;
            }
            actor.receive_prompt(tool, planning::RemindingLevel::kSpecific);
          });
    }

    const sim::TimePoint deadline =
        sim::TimePoint::origin() + sim::Duration::minutes(30.0);
    while (!actor.finished() && scheduler.now() < deadline &&
           !scheduler.empty()) {
      scheduler.run(1);
    }
    ++outcome.sessions;
    outcome.completed += actor.finished();
  }
  return outcome;
}

Outcome run_context_aware(const adl::AdlLibrary& library, double severity,
                          int sessions, std::uint64_t seed) {
  core::SystemConfig config;
  config.seed = seed;
  core::CoredaSystem system(library, library.tea_making(), config);
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("R", 0.0), seed + 1);
  system.pretrain(datasets.sensed_training_set(library.tea_making(), 120));

  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("R", severity);
  profile.comply_minimal = 1.0;
  profile.comply_specific = 1.0;

  Outcome outcome;
  for (int s = 0; s < sessions; ++s) {
    const core::SessionResult result =
        system.run_session(profile, sim::Duration::minutes(30.0));
    ++outcome.sessions;
    outcome.completed += result.completed;
    outcome.prompts += result.prompts_total;
    // CoReDA prompts are praised on success; count a prompt apt when it
    // was eventually answered by the expected tool (praises track this).
    outcome.apt_prompts += result.praises;
  }
  return outcome;
}

}  // namespace

int main() {
  adl::AdlLibrary library;
  constexpr int kSessions = 12;

  // Train the scheduled plan from the same healthy recordings CoReDA's
  // planner trains on — timed episodes give the per-step start offsets.
  baselines::ScheduledReminderPlan plan(
      library.tea_making().primary_routine());
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("R", 0.0), 71);
  for (const auto& episode : datasets.timed_set(library.tea_making(), 120)) {
    sim::Duration offset{};
    for (const patient::TimedStep& step : episode) {
      offset += step.think;
      plan.observe_step(step.tool, offset);
      offset += step.manipulation;
    }
  }

  std::puts("Ablation A7: scheduled (Autominder-style) vs context-aware "
            "prompting");
  std::printf("(Tea-making, %d sessions per cell, fully compliant "
              "residents)\n\n",
              kSessions);

  util::TextTable table;
  table.set_header({"Severity", "Method", "Completed", "Prompts/session",
                    "Apt prompts"});
  for (double severity : {0.0, 0.3, 0.6, 0.9}) {
    const Outcome scheduled =
        run_scheduled(library, plan, severity, kSessions, 81);
    const Outcome context =
        run_context_aware(library, severity, kSessions, 82);
    table.add_row({util::format_fixed(severity, 1), "scheduled",
                   scheduled.completion(), scheduled.prompts_per_session(),
                   scheduled.aptness()});
    table.add_row({util::format_fixed(severity, 1), "context-aware",
                   context.completion(), context.prompts_per_session(),
                   context.aptness()});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: the scheduled plan issues a fixed 4 prompts per\n"
      "session regardless of need — mostly inapt for healthy residents and\n"
      "mistimed for slow ones (a compliant resident yanked to the\n"
      "scheduled step can even be derailed). The context-aware system\n"
      "prompts only when the sensed situation calls for it: near-zero\n"
      "prompts for healthy residents, scaling with severity, and higher\n"
      "aptness — the paper's \"minimal prompts\" principle in numbers.");
  return 0;
}
