// Extension: threshold auto-calibration.
//
// The paper says tools are detected against "a pre-defined threshold" but
// not where it comes from. A deployment derives it from an idle recording:
// a high quantile of the untouched sensor's excitation times a safety
// margin. This bench compares the hand-picked model thresholds against
// auto-calibrated ones, per tool, on the Table 3 protocol.

#include <cstdio>
#include <string>

#include "adl/library.hpp"
#include "pavenet/calibration.hpp"
#include "trace/sensing_pipeline.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

double false_episodes_per_hour(const adl::AdlLibrary& library,
                               const adl::Tool& tool, double threshold) {
  trace::SensingPipeline::Params params;
  params.firmware.excitation_threshold = threshold;
  trace::SensingPipeline pipeline(library.tools(), {tool.id},
                                  6000 + tool.id, params);
  // Four 15-minute idle stretches; the scripted step is another tool.
  const adl::ToolId other = tool.id == adl::tools::kKettle
                                ? adl::tools::kTeaBox
                                : adl::tools::kKettle;
  double spurious = 0.0;
  for (int i = 0; i < 4; ++i) {
    spurious += static_cast<double>(
        pipeline
            .run({patient::TimedStep{other, sim::Duration::minutes(15.0),
                                     sim::Duration::seconds(5.0)}})
            .spurious);
  }
  return spurious;  // already per hour (4 x 15 min)
}

double precision_with_threshold(const adl::AdlLibrary& library,
                                const adl::Tool& tool, double threshold) {
  trace::SensingPipeline::Params params;
  params.firmware.excitation_threshold = threshold;
  trace::SensingPipeline pipeline(library.tools(), {tool.id},
                                  3000 + tool.id, params);
  util::Rng durations(4000 + tool.id);
  util::PrecisionCounter precision;
  for (int i = 0; i < 150; ++i) {
    const double mean = tool.typical_usage_mean.to_seconds();
    const double drawn = std::max(
        mean * 0.4,
        durations.normal(mean, tool.typical_usage_stddev.to_seconds()));
    precision.record(pipeline.single_tool_trial(
        tool.id, sim::Duration::seconds(drawn)));
  }
  return precision.precision();
}

}  // namespace

int main() {
  adl::AdlLibrary library;

  std::puts("Extension: idle-recording threshold calibration vs the\n"
            "hand-picked per-sensor defaults (Table 3 protocol, 150 trials "
            "per cell)\n");

  util::TextTable table;
  table.set_header({"Tool", "Default thr", "Auto thr", "Extract (default)",
                    "Extract (auto)", "False/h (auto)"});

  for (const char* name : {"Tooth-brushing", "Tea-making"}) {
    for (const adl::AdlStep& step :
         library.by_name(name).primary_routine().steps()) {
      const adl::Tool& tool = library.tools().at(step.tool);

      const auto probe = sensors::make_sensor_model(tool.sensor);
      util::Rng rng(5000 + tool.id);
      const pavenet::CalibrationResult calibrated =
          pavenet::calibrate_threshold(*probe, rng);
      const double default_threshold = probe->recommended_threshold();

      table.add_row(
          {tool.name, util::format_fixed(default_threshold, 3),
           util::format_fixed(calibrated.threshold, 3),
           util::format_percent(
               precision_with_threshold(library, tool, default_threshold)),
           util::format_percent(
               precision_with_threshold(library, tool,
                                        calibrated.threshold)),
           util::format_fixed(
               false_episodes_per_hour(library, tool,
                                       calibrated.threshold),
               1)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: the derived thresholds sit closer to the idle\n"
      "noise floor than the conservative hand-picked defaults, which buys\n"
      "extract precision on the weak tools at no false-positive cost —\n"
      "the 3-of-10 vote, not the threshold, is what rejects accidental\n"
      "bumps. A new tool deploys from a few minutes of idle recording\n"
      "with no manual tuning, the paper's generalization story made\n"
      "concrete.");
  return 0;
}
