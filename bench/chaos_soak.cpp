// Gated chaos soak: both serving tiers under the standard fault plan.
//
// Every other bench proves the serving tiers fast; this one proves them
// *unkillable*. Phase 1 drives the million-user tier's scaled-down twin
// (FleetEngine over the mmap segment store) through `--rounds` rounds
// inside FaultPlan::standard_chaos — crashed and corrupted appends, node
// dropouts, shard stalls, Gilbert–Elliott radio loss bursts — checking
// after EVERY round that no committed policy version ever regressed and
// that a store reopened on the same directory recovers byte-exactly the
// live store's view (the power-cut contract, replayed dozens of times
// instead of once per crash test). Phase 2 closes the drift loop under the
// same plan: users on stale tables must be flagged, retrained through
// injected aborts and crashed flushes, and recover — then the snapshot
// directory must restore every user at the flushed version.
//
// After the fault window closes, `--tail-rounds` clean rounds prove the
// fleet settles: the soak ends with a serial steady-state probe whose
// allocations-per-session must stay 0.
//
// Stdout (round tables, invariant counters, the per-site injection log) is
// byte-identical at any --jobs: fault decisions are pure (site, user, tick)
// hashes and both engines shard statically. Wall-clock goes only to
// --timing-json (BENCH_chaos.json), where the regression checker
// exact-gates invariant_violations=0, committed_versions_lost=0,
// recovered_users and the allocation contract.
//
// Usage:
//   bench_chaos_soak --users=512 --active=192 --rounds=6 --tail-rounds=2
//       --serve-users=24 --drifted=6 --jobs=4 --timing-json=BENCH_chaos.json

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include "serve/chaos.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

std::string format2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

void print_injection_log(const faults::Injector& injector) {
  std::ostringstream log;
  injector.report(log);
  std::fputs(log.str().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));

  serve::ChaosFleetParams fp;
  fp.users = static_cast<std::size_t>(flags.get_int("users", 512));
  fp.active = static_cast<std::size_t>(flags.get_int("active", 192));
  fp.chaos_rounds = static_cast<std::size_t>(flags.get_int("rounds", 6));
  fp.tail_rounds =
      static_cast<std::size_t>(flags.get_int("tail-rounds", 2));
  fp.shards = static_cast<std::size_t>(flags.get_int("shards", 4));
  fp.slots_per_shard =
      static_cast<std::size_t>(flags.get_int("slots-per-shard", 2));
  fp.rebase_every =
      static_cast<std::size_t>(flags.get_int("rebase-every", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string base_dir =
      flags.get("dir").empty()
          ? (std::filesystem::temp_directory_path() / "coreda_chaos").string()
          : flags.get("dir");
  fp.dir = base_dir + "_fleet";

  std::printf("Chaos soak: %zu fleet users (%zu shards x %zu slots), "
              "%zu chaos + %zu tail rounds x %zu sessions,\n"
              "standard fault plan seed %llu\n\n",
              fp.users, fp.shards, fp.slots_per_shard, fp.chaos_rounds,
              fp.tail_rounds, fp.active,
              static_cast<unsigned long long>(seed));

  serve::ChaosFleetSoak fleet_soak(
      fp, faults::FaultPlan::standard_chaos(seed, fp.chaos_rounds));
  const serve::ChaosFleetResult fleet = fleet_soak.run(runner);

  util::TextTable rounds("Fleet soak per round (cumulative counters)");
  rounds.set_header({"round", "epoch", "sessions", "dropped", "crashed",
                     "radio lost", "committed", "lost", "reopen bad"});
  for (std::size_t r = 0; r < fleet.rounds.size(); ++r) {
    const serve::ChaosRoundStats& rs = fleet.rounds[r];
    rounds.add_row({std::to_string(r), std::to_string(rs.epoch),
                    std::to_string(rs.sessions), std::to_string(rs.dropped),
                    std::to_string(rs.crashed_appends),
                    std::to_string(rs.radio_lost),
                    std::to_string(rs.committed_users),
                    std::to_string(rs.round_versions_lost),
                    std::to_string(rs.round_reopen_mismatches +
                                   rs.round_reopen_load_failures)});
  }
  std::fputs(rounds.render().c_str(), stdout);

  util::TextTable summary("Fleet soak invariants");
  summary.set_header({"metric", "value"});
  summary.add_row({"injected crashes (pre-publish)",
                   std::to_string(fleet.injected_crashes)});
  summary.add_row({"injected corruptions",
                   std::to_string(fleet.injected_corruptions)});
  summary.add_row({"dropped sessions",
                   std::to_string(fleet.report.dropped_sessions)});
  summary.add_row({"crashed appends",
                   std::to_string(fleet.report.crashed_appends)});
  summary.add_row({"radio frames lost to bursts",
                   std::to_string(fleet.report.radio_lost_frames)});
  summary.add_row({"committed versions lost",
                   std::to_string(fleet.committed_versions_lost)});
  summary.add_row({"reopen mismatches",
                   std::to_string(fleet.reopen_mismatches)});
  summary.add_row({"reopen load failures",
                   std::to_string(fleet.reopen_load_failures)});
  summary.add_row({"invariant violations",
                   std::to_string(fleet.invariant_violations)});
  summary.add_row({"fleet checksum",
                   std::to_string(fleet.report.checksum)});
  summary.add_row({"steady-state allocs/session (post-chaos)",
                   format2(fleet.steady_state_allocs)});
  std::fputs(summary.render().c_str(), stdout);
  std::puts("");
  print_injection_log(fleet_soak.injector());

  serve::ChaosServeParams sp;
  sp.users = static_cast<std::size_t>(flags.get_int("serve-users", 24));
  sp.drifted = static_cast<std::size_t>(flags.get_int("drifted", 6));
  sp.slots = static_cast<std::size_t>(flags.get_int("slots", 4));
  sp.chaos_rounds =
      static_cast<std::size_t>(flags.get_int("serve-rounds", 6));
  sp.tail_rounds =
      static_cast<std::size_t>(flags.get_int("serve-tail-rounds", 8));
  sp.burst = static_cast<std::size_t>(flags.get_int("burst", 2));
  sp.lane_width = static_cast<std::size_t>(flags.get_int("lane-width", 2));
  sp.dir = base_dir + "_serve";

  std::printf("\nDrift-recovery soak: %zu users (%zu stale) on %zu slots, "
              "%zu chaos + %zu tail rounds x %zu sessions/user\n\n",
              sp.users, sp.drifted, sp.slots, sp.chaos_rounds,
              sp.tail_rounds, sp.burst);

  serve::ChaosServeSoak serve_soak(
      sp, faults::FaultPlan::standard_chaos(seed, sp.chaos_rounds));
  const serve::ChaosServeResult drift = serve_soak.run(runner);

  util::TextTable loop("Drift recovery under faults");
  loop.set_header({"metric", "value"});
  loop.add_row({"drifted users", std::to_string(sp.drifted)});
  loop.add_row({"recovered (flag cleared)",
                std::to_string(drift.recovered_users)});
  loop.add_row({"unrecovered", std::to_string(drift.unrecovered_users)});
  loop.add_row({"max flag->clear sessions",
                std::to_string(drift.recovery_sessions_max)});
  loop.add_row({"retrain jobs", std::to_string(drift.report.retrain.jobs)});
  loop.add_row({"injected retrain aborts",
                std::to_string(drift.aborted_retrains)});
  loop.add_row({"crashed stage flushes",
                std::to_string(drift.crashed_stages)});
  loop.add_row({"committed versions lost",
                std::to_string(drift.committed_versions_lost)});
  loop.add_row({"reopen mismatches",
                std::to_string(drift.reopen_mismatches)});
  loop.add_row({"invariant violations",
                std::to_string(drift.invariant_violations)});
  loop.add_row({"serve checksum", std::to_string(drift.report.checksum)});
  std::fputs(loop.render().c_str(), stdout);
  std::puts("");
  print_injection_log(serve_soak.injector());

  std::puts("\nAll tables are byte-identical at any --jobs: fault decisions\n"
            "are pure (site, user, tick) hashes and both engines shard\n"
            "statically; wall-clock goes only to --timing-json.");

  const std::string timing_path = flags.get("timing-json");
  {
    std::ostringstream extra;
    extra << "\"users\": " << fp.users
          << ", \"active_per_round\": " << fp.active
          << ", \"chaos_rounds\": " << fp.chaos_rounds
          << ", \"tail_rounds\": " << fp.tail_rounds
          << ", \"sessions\": " << fleet.report.sessions
          << ", \"sessions_per_sec\": "
          << (fleet.serve_seconds > 0.0
                  ? static_cast<double>(fleet.report.sessions) /
                        fleet.serve_seconds
                  : 0.0)
          << ", \"invariant_violations\": " << fleet.invariant_violations
          << ", \"committed_versions_lost\": "
          << fleet.committed_versions_lost
          << ", \"reopen_mismatches\": " << fleet.reopen_mismatches
          << ", \"reopen_load_failures\": " << fleet.reopen_load_failures
          << ", \"injected_crashes\": " << fleet.injected_crashes
          << ", \"injected_corruptions\": " << fleet.injected_corruptions
          << ", \"dropped_sessions\": " << fleet.report.dropped_sessions
          << ", \"crashed_appends\": " << fleet.report.crashed_appends
          << ", \"radio_lost_frames\": " << fleet.report.radio_lost_frames
          << ", \"steady_state_allocs_per_session\": "
          << fleet.steady_state_allocs;
    exec::append_timing_record(timing_path, "chaos_fleet", runner.jobs(),
                               fp.chaos_rounds + fp.tail_rounds,
                               fleet.serve_seconds, extra.str());
  }
  {
    std::ostringstream extra;
    extra << "\"users\": " << sp.users << ", \"drifted\": " << sp.drifted
          << ", \"chaos_rounds\": " << sp.chaos_rounds
          << ", \"tail_rounds\": " << sp.tail_rounds
          << ", \"sessions_per_sec\": "
          << (drift.serve_seconds > 0.0
                  ? static_cast<double>(drift.report.sessions) /
                        drift.serve_seconds
                  : 0.0)
          << ", \"invariant_violations\": " << drift.invariant_violations
          << ", \"committed_versions_lost\": "
          << drift.committed_versions_lost
          << ", \"reopen_mismatches\": " << drift.reopen_mismatches
          << ", \"recovered_users\": " << drift.recovered_users
          << ", \"recovery_sessions_max\": " << drift.recovery_sessions_max
          << ", \"aborted_retrains\": " << drift.aborted_retrains
          << ", \"crashed_stages\": " << drift.crashed_stages
          << ", \"retrain_jobs\": " << drift.report.retrain.jobs;
    exec::append_timing_record(timing_path, "chaos_serve", runner.jobs(),
                               sp.chaos_rounds + sp.tail_rounds,
                               drift.serve_seconds, extra.str());
  }
  return fleet.invariant_violations + drift.invariant_violations == 0 ? 0
                                                                      : 1;
}
