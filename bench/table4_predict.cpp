// Reproduces Table 4 of the paper: "Predict Precision of ADL Step".
//
// Paper setup (§3.3): after training, 30 test samples per ADL in which the
// two reminder-triggering situations are equally examined — (1) the user
// does not use the expected tool for the waiting period, (2) the user
// incorrectly uses another tool. A prediction is correct when the planner
// names the routine's actual next tool for the context in which the
// trigger fired. The paper reports 100 % for every step except the first,
// which has no entry "because we need them to trigger the start of
// prediction".
//
// Neither trigger situation changes the planner's context (an idle wait
// keeps <prev, cur>; a wrong tool is reported but does not advance the
// context), so the measured quantity is the trained policy's prompt for
// each in-routine context — which we draw 30 times per ADL with the two
// situations alternating, exactly like the paper's protocol.
//
// A second table goes beyond the paper: the same faults injected into the
// *closed loop* (sensing noise, radio, compliance), reporting how reliably
// the deployed system still walks the user to completion.

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "trace/dataset.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;
using Kind = patient::PatientEvent::Kind;

}  // namespace

int main() {
  adl::AdlLibrary library;
  constexpr int kTestSamples = 30;  // paper: 30 test samples per ADL

  util::TextTable table(
      "Table 4. Predict Precision of ADL Step (30 test samples per ADL,\n"
      "idle-timeout and wrong-tool situations equally examined)");
  table.set_header({"ADL", "ADL Step", "Paper", "Measured", "Cases"});

  util::TextTable closed_loop(
      "Beyond the paper: the same faults injected into the closed loop");
  closed_loop.set_header({"ADL", "Sessions", "Completed", "Prompts/session"});

  for (const char* name : {"Tooth-brushing", "Tea-making"}) {
    const adl::Adl& adl = library.by_name(name);
    const adl::AdlRoutine& routine = adl.primary_routine();

    // Train exactly like the deployment: 120 sensed recordings.
    planning::RoutineLearner learner(adl, util::Rng(777));
    trace::DatasetBuilder datasets(
        library, patient::PatientProfile::with_severity("User", 0.0), 2005);
    for (const auto& ep : datasets.sensed_training_set(adl, 120)) {
      learner.train_episode(ep);
    }

    // ---- the paper's offline protocol --------------------------------
    std::vector<util::PrecisionCounter> per_step(routine.size());
    std::vector<std::size_t> idle_cases(routine.size(), 0);
    std::vector<std::size_t> wrong_cases(routine.size(), 0);
    util::Rng sampler(4242);

    for (int sample = 0; sample < kTestSamples; ++sample) {
      // Predicting step `target` from the context of step target-1.
      const std::size_t target = 1 + sampler.pick_index(routine.size() - 1);
      const bool idle_case = sample % 2 == 0;

      const adl::StepId prev = target >= 2
                                   ? routine.step(target - 2).step_id()
                                   : adl::kIdleStep;
      const adl::StepId cur = routine.step(target - 1).step_id();
      // Situation 2 reports a wrong tool; the paper's planner keeps the
      // context and prompts from it (the wrong usage does not become the
      // current step). Both situations therefore query the same state.
      const auto prompt = learner.predict(prev, cur);

      const bool correct =
          prompt && prompt->action.tool == routine.step(target).tool;
      per_step[target].record(correct);
      (idle_case ? idle_cases : wrong_cases)[target] += 1;
    }

    for (std::size_t i = 0; i < routine.size(); ++i) {
      std::string measured = "-";
      std::string cases = "-";
      if (i > 0) {
        measured = per_step[i].total() > 0
                       ? util::format_percent(per_step[i].precision())
                       : std::string("(not drawn)");
        cases = std::to_string(idle_cases[i]) + " idle + " +
                std::to_string(wrong_cases[i]) + " wrong";
      }
      table.add_row({adl.name(), routine.step(i).name, i == 0 ? "-" : "100%",
                     measured, cases});
    }

    // ---- beyond the paper: closed-loop fault injection ----------------
    core::SystemConfig config;
    config.seed = 3000;
    core::CoredaSystem system(library, adl, config);
    system.pretrain(datasets.sensed_training_set(adl, 120));

    patient::PatientProfile profile =
        patient::PatientProfile::with_severity("User", 0.0);
    profile.comply_minimal = 1.0;
    profile.comply_specific = 1.0;

    int completed = 0;
    std::size_t prompts = 0;
    util::Rng fault_sampler(99);
    constexpr int kSessions = 20;
    for (int s = 0; s < kSessions; ++s) {
      const std::size_t target =
          1 + fault_sampler.pick_index(routine.size() - 1);
      const bool idle_case = s % 2 == 0;
      adl::ToolId wrong = adl::kNoTool;
      if (!idle_case) {
        const auto tools = adl.tools();
        do {
          wrong = tools[fault_sampler.pick_index(tools.size())];
        } while (wrong == routine.step(target).tool);
      }
      const auto result = system.run_session(
          profile, sim::Duration::minutes(20.0),
          [&](patient::PatientActor& actor) {
            for (std::size_t i = 0; i < target; ++i) {
              actor.force_next_decision(Kind::kStartedStep);
            }
            actor.force_next_decision(
                idle_case ? Kind::kFroze : Kind::kWrongTool, wrong);
          });
      completed += result.completed;
      prompts += result.prompts_total;
    }
    closed_loop.add_row(
        {adl.name(), std::to_string(kSessions),
         std::to_string(completed) + "/" + std::to_string(kSessions),
         util::format_fixed(static_cast<double>(prompts) / kSessions, 1)});
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nNote: like the paper, the first step of each ADL has no entry —\n"
      "prediction starts from the first observed step. (Our extension of\n"
      "training the <idle, idle> context does let the deployed system\n"
      "prompt the first step; see bench_fig1_scenario and DESIGN.md.)\n");
  std::fputs(closed_loop.render().c_str(), stdout);
  return 0;
}
