// Extension: personalization — the paper's first design criterion.
//
//   "keep the dementia patients do ADLs as they did before. Therefore, a
//    guidance system must have the capability to learn different patients'
//    routines of ADLs."
//
// Two residents make tea differently: Mr. Tanaka fetches the tea leaves
// first; Mrs. Aoki pre-heats with the electronic pot before fetching
// leaves. Each gets their own planner trained on their own recordings.
// The bench shows the two converged policies prompting *differently* from
// the same observed context — and that swapping the policies (giving
// Tanaka's prompts to Aoki) breaks assistance, which is exactly why a
// one-size pre-planned model cannot serve both.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "planning/learner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;
namespace T = adl::tools;

double accuracy_vs(const planning::RoutineLearner& learner,
                   const std::vector<adl::StepId>& routine) {
  std::size_t hits = 0;
  adl::StepId prev = adl::kIdleStep;
  adl::StepId cur = adl::kIdleStep;
  std::size_t total = 0;
  for (adl::StepId next : routine) {
    const auto prompt = learner.predict(prev, cur);
    ++total;
    if (prompt && prompt->action.tool == next) ++hits;
    prev = cur;
    cur = next;
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const exec::Stopwatch timer;

  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();

  const std::vector<adl::StepId> tanaka{T::kTeaBox, T::kElectricPot,
                                        T::kKettle, T::kTeaCup};
  const std::vector<adl::StepId> aoki{T::kElectricPot, T::kTeaBox,
                                      T::kKettle, T::kTeaCup};

  // One trial per resident: each planner trains on its own recordings with
  // its own fixed seed, so the tables are byte-identical at any --jobs.
  const std::vector<const std::vector<adl::StepId>*> routines{&tanaka, &aoki};
  auto planners = runner.run(
      routines.size(), 0, [&](exec::TrialContext& ctx) {
        auto planner = std::make_unique<planning::RoutineLearner>(
            tea, util::Rng(ctx.index + 1));
        for (int i = 0; i < 120; ++i) {
          planner->train_episode(*routines[ctx.index]);
        }
        return planner;
      });
  exec::append_timing_record(flags.get("timing-json"), "personalization",
                             runner.jobs(), routines.size(), timer.seconds());
  planning::RoutineLearner& tanaka_planner = *planners[0];
  planning::RoutineLearner& aoki_planner = *planners[1];

  std::puts("Extension: personalized routines (paper design criterion #1)");
  std::puts("(two residents, two tea-making orders, one planner each;\n"
            " prompts for the same observed context)\n");

  util::TextTable prompts;
  prompts.set_header({"Observed context", "Tanaka's planner",
                      "Aoki's planner"});
  const auto name = [&library](adl::ToolId id) {
    return id == adl::kNoTool ? std::string("(idle)")
                              : library.tools().at(id).name;
  };
  const std::pair<adl::StepId, adl::StepId> contexts[] = {
      {adl::kIdleStep, adl::kIdleStep},
      {adl::kIdleStep, T::kTeaBox},
      {adl::kIdleStep, T::kElectricPot},
      {T::kTeaBox, T::kElectricPot},
      {T::kElectricPot, T::kTeaBox},
  };
  for (const auto& [prev, cur] : contexts) {
    const auto pt = tanaka_planner.predict(prev, cur);
    const auto pa = aoki_planner.predict(prev, cur);
    prompts.add_row({"<" + name(prev) + ", " + name(cur) + ">",
                     pt ? name(pt->action.tool) : "-",
                     pa ? name(pa->action.tool) : "-"});
  }
  std::fputs(prompts.render().c_str(), stdout);
  std::puts("");

  util::TextTable cross("Prompt accuracy against each resident's routine");
  cross.set_header({"Planner \\ resident", "Tanaka", "Aoki"});
  cross.add_row({"Tanaka's planner",
                 util::format_percent(accuracy_vs(tanaka_planner, tanaka)),
                 util::format_percent(accuracy_vs(tanaka_planner, aoki))});
  cross.add_row({"Aoki's planner",
                 util::format_percent(accuracy_vs(aoki_planner, tanaka)),
                 util::format_percent(accuracy_vs(aoki_planner, aoki))});
  std::fputs(cross.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: each planner is perfect for its own resident and\n"
      "poor for the other — the diagonal dominates. A single pre-planned\n"
      "routine (the related-work approach the paper criticizes) could at\n"
      "best match one row.");
  return 0;
}
