// Ablation A6 (DESIGN.md): the firmware's k-of-n usage vote.
//
// The paper uses "3 of these 10 samples" to declare a tool in use,
// explicitly "to protect detection against accidental operation". This
// sweep varies the vote threshold k and measures both sides of the trade:
// extract precision on genuine manipulations (weak tools suffer first) and
// false usage episodes per hour from accidental bumps on an idle table.

#include <cstdio>
#include <string>
#include <vector>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "trace/sensing_pipeline.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

double genuine_precision(const adl::AdlLibrary& library, adl::ToolId tool,
                         std::uint32_t votes) {
  trace::SensingPipeline::Params params;
  params.firmware.vote_threshold = votes;
  trace::SensingPipeline pipeline(library.tools(), {tool}, 111, params);
  const adl::Tool& t = library.tools().at(tool);
  util::Rng durations(222);
  util::PrecisionCounter precision;
  for (int i = 0; i < 150; ++i) {
    const double mean = t.typical_usage_mean.to_seconds();
    const double drawn = std::max(
        mean * 0.4,
        durations.normal(mean, t.typical_usage_stddev.to_seconds()));
    precision.record(
        pipeline.single_tool_trial(tool, sim::Duration::seconds(drawn)));
  }
  return precision.precision();
}

double false_episodes_per_hour(const adl::AdlLibrary& library,
                               adl::ToolId tool, std::uint32_t votes) {
  trace::SensingPipeline::Params params;
  params.firmware.vote_threshold = votes;
  trace::SensingPipeline pipeline(library.tools(), {tool}, 333, params);
  // An hour of idle time: one scripted manipulation of a *different* tool
  // far away keeps the run alive; every extraction of `tool` is spurious.
  double spurious = 0.0;
  constexpr int kRuns = 4;
  for (int i = 0; i < kRuns; ++i) {
    const trace::SensedResult result = pipeline.run(
        {patient::TimedStep{tool == adl::tools::kKettle
                                ? adl::tools::kTeaBox
                                : adl::tools::kKettle,
                            sim::Duration::minutes(15.0),
                            sim::Duration::seconds(5.0)}});
    spurious += static_cast<double>(result.spurious);
  }
  return spurious / kRuns * 4.0;  // 15 min runs -> per hour
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const exec::Stopwatch timer;

  adl::AdlLibrary library;

  std::puts("Ablation A6: the k-of-10 usage vote (paper default: k = 3)");
  std::puts("");

  const std::uint32_t votes[] = {1u, 2u, 3u, 4u, 5u, 7u};
  constexpr std::size_t kVotes = 6;

  // One trial per table cell; seeds are per-cell constants, so the table is
  // byte-identical at any --jobs value.
  const std::vector<double> cells = runner.run(
      kVotes * 4, 0, [&](exec::TrialContext& ctx) {
        const std::uint32_t k = votes[ctx.index / 4];
        switch (ctx.index % 4) {
          case 0:
            return genuine_precision(library, adl::tools::kKettle, k);
          case 1:
            return genuine_precision(library, adl::tools::kElectricPot, k);
          case 2:
            return genuine_precision(library, adl::tools::kTowel, k);
          default:
            return false_episodes_per_hour(library, adl::tools::kKettle, k);
        }
      });
  exec::append_timing_record(flags.get("timing-json"), "ablation_detector",
                             runner.jobs(), kVotes * 4, timer.seconds());

  util::TextTable table;
  table.set_header({"Votes k", "Extract (kettle)", "Extract (pot)",
                    "Extract (towel)", "False episodes/hour"});
  for (std::size_t vi = 0; vi < kVotes; ++vi) {
    table.add_row({std::to_string(votes[vi]),
                   util::format_percent(cells[vi * 4]),
                   util::format_percent(cells[vi * 4 + 1]),
                   util::format_percent(cells[vi * 4 + 2]),
                   util::format_fixed(cells[vi * 4 + 3], 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: k = 1 fires on accidental bumps (the failure the\n"
      "paper designed the vote against); very high k loses the weak tools\n"
      "(pot, towel). k = 3 sits at the paper's operating point: near-zero\n"
      "false episodes at the Table 3 precisions.");
  return 0;
}
