// Multi-tenant serving throughput: many users, few warm systems.
//
// bench_session_throughput gave every user a dedicated warm CoredaSystem;
// this bench serves the same kind of workload through the serve/ frontend:
// a fixed SystemPool of `slots` warm systems (10x fewer than users by
// default), a versioned PolicyStore the per-user Q-tables live in, and a
// ServeEngine draining a queue of per-user session requests across the
// exec thread pool. Every session is checkout -> import_policy (skipped on
// a pool hit) -> run_session_inplace -> policy write-back, so the bench
// prices exactly what multi-tenancy adds on top of PR 3's warm serving
// path: the policy swaps.
//
// Requests arrive in bursts (`--burst` sessions per user per round): a
// resident keeps their slot for a burst (pool hits), then nine other
// tenants cycle through before their next one (policy swaps). Two engines
// run the identical workload:
//   * pooled    — `slots` systems shared by all users ("serve_throughput"):
//                 the multi-tenant configuration this PR adds;
//   * dedicated — one slot per user ("serve_throughput_dedicated"): the
//                 PR-3 shape, kept in-run as the swap-cost reference.
//
// Stdout (request counts, hit/swap split, wear counters, drift flags,
// fleet checksum, the steady-state allocation probe) is byte-identical at
// any --jobs — slots are sharded statically and fanned as TrialRunner
// trials. Wall-clock goes only to --timing-json (BENCH_serve.json).
//
// Usage:
//   bench_serve_throughput --users=50 --slots=5 --sessions=20 --burst=4
//       --jobs=4 --timing-json=BENCH_serve.json

#include <cstdio>
#include <sstream>
#include <vector>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "patient/profile.hpp"
#include "planning/learner.hpp"
#include "serve/arrivals.hpp"
#include "serve/engine.hpp"
#include "util/alloc_counter.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

/// Same per-user severity band as bench_session_throughput, derived from
/// the user index alone so every engine (and job count) serves the
/// identical population.
patient::PatientProfile user_profile(std::size_t user) {
  util::Rng rng(exec::trial_seed(9001, user));
  return patient::PatientProfile::with_severity(
      "U" + std::to_string(user), 0.1 + 0.4 * rng.uniform());
}

struct EngineRun {
  serve::ServeReport report;
  double seconds = 0.0;
  double allocs_per_session = 0.0;
};

EngineRun run_workload(const adl::AdlLibrary& library, const adl::Adl& adl,
                       const planning::RoutineLearner& donor,
                       std::size_t users, std::size_t slots,
                       std::size_t sessions, std::size_t burst,
                       exec::TrialRunner& runner) {
  serve::PolicyStore store(donor);  // memory-only: the pure serving tier
  serve::ServeEngineParams params;
  params.pool.slots = slots;
  params.pool.seed = 4242;
  serve::ServeEngine engine(library, adl, store, params);
  for (std::size_t u = 0; u < users; ++u) {
    engine.add_user("U" + std::to_string(u), user_profile(u));
  }
  // Burst arrival: each round hands every user `burst` back-to-back
  // sessions, so residency pays off within a burst and swaps dominate
  // across rounds — the daily-routine shape of a reminding deployment.
  std::size_t queued_per_user = 0;
  while (queued_per_user < sessions) {
    const std::size_t take = std::min(burst, sessions - queued_per_user);
    for (std::size_t u = 0; u < users; ++u) {
      engine.enqueue(static_cast<serve::UserId>(u), take);
    }
    queued_per_user += take;
  }

  EngineRun run;
  const std::uint64_t allocs_before = util::allocation_count();
  const exec::Stopwatch timer;
  run.report = engine.drain(runner);
  run.seconds = timer.seconds();
  run.allocs_per_session =
      static_cast<double>(util::allocation_count() - allocs_before) /
      static_cast<double>(run.report.sessions);
  return run;
}

/// Arrival-stream variant: the same pooled engine, but the enqueue order
/// comes from a seed-deterministic arrival generator instead of per-user
/// bursts — uniform traffic (residency almost never pays) vs Zipf-skewed
/// traffic (a hot head of heavy users keeps slots resident). The hit-rate
/// spread between the two is the residency win the pool buys under the
/// clinically realistic load shape.
template <typename Arrivals>
EngineRun run_arrival_workload(const adl::AdlLibrary& library,
                               const adl::Adl& adl,
                               const planning::RoutineLearner& donor,
                               std::size_t users, std::size_t slots,
                               std::size_t total_sessions, Arrivals& arrivals,
                               exec::TrialRunner& runner) {
  serve::PolicyStore store(donor);
  serve::ServeEngineParams params;
  params.pool.slots = slots;
  params.pool.seed = 4242;
  serve::ServeEngine engine(library, adl, store, params);
  for (std::size_t u = 0; u < users; ++u) {
    engine.add_user("U" + std::to_string(u), user_profile(u));
  }
  for (std::size_t i = 0; i < total_sessions; ++i) {
    engine.enqueue(static_cast<serve::UserId>(arrivals.next()), 1);
  }

  EngineRun run;
  const std::uint64_t allocs_before = util::allocation_count();
  const exec::Stopwatch timer;
  run.report = engine.drain(runner);
  run.seconds = timer.seconds();
  run.allocs_per_session =
      static_cast<double>(util::allocation_count() - allocs_before) /
      static_cast<double>(run.report.sessions);
  return run;
}

/// Steady-state allocation probe: a single-slot pool serving two tenants
/// alternately, so EVERY serve is a policy swap (import + write-back).
/// After warm-up the whole serve must not touch the heap.
double steady_state_allocs(const adl::AdlLibrary& library,
                           const adl::Adl& adl,
                           const planning::RoutineLearner& donor) {
  serve::PolicyStore store(donor);
  serve::SystemPoolParams params;
  params.slots = 1;
  params.seed = 99;
  serve::SystemPool pool(library, adl, store, params);
  store.add_user("A");
  store.add_user("B");

  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("U", 0.0);
  profile.comply_minimal = 0.0;
  profile.comply_specific = 1.0;
  const std::function<void(patient::PatientActor&)> script =
      [](patient::PatientActor& actor) {
        using Kind = patient::PatientEvent::Kind;
        actor.force_next_decision(Kind::kStartedStep);
        actor.force_next_decision(Kind::kFroze);
        actor.force_next_decision(Kind::kWrongTool, adl::tools::kTeaCup);
      };

  core::SessionResult result;
  for (int i = 0; i < 16; ++i) {
    pool.serve_session(static_cast<serve::UserId>(i % 2), profile,
                       sim::Duration::minutes(15.0), script, result);
  }
  constexpr int kProbe = 64;
  const std::uint64_t before = util::allocation_count();
  for (int i = 0; i < kProbe; ++i) {
    pool.serve_session(static_cast<serve::UserId>(i % 2), profile,
                       sim::Duration::minutes(15.0), script, result);
  }
  return static_cast<double>(util::allocation_count() - before) / kProbe;
}

std::string format2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const auto users = static_cast<std::size_t>(flags.get_int("users", 50));
  const auto slots = static_cast<std::size_t>(flags.get_int("slots", 5));
  const auto sessions =
      static_cast<std::size_t>(flags.get_int("sessions", 20));
  const auto burst = static_cast<std::size_t>(flags.get_int("burst", 4));

  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();

  // One donor policy trained offline; the store stamps it into every new
  // tenant — train-once / deploy-many, as in bench_session_throughput.
  std::vector<adl::StepId> routine;
  for (const adl::AdlStep& s : tea.primary_routine().steps()) {
    routine.push_back(s.step_id());
  }
  planning::RoutineLearner donor(tea, util::Rng(17));
  for (int i = 0; i < 80; ++i) donor.train_episode(routine);

  std::printf("Multi-tenant serving: %zu users on %zu warm systems, "
              "%zu sessions/user (bursts of %zu)\n\n",
              users, slots, sessions, burst);

  const double probe = steady_state_allocs(library, tea, donor);

  const EngineRun pooled = run_workload(library, tea, donor, users, slots,
                                        sessions, burst, runner);
  const EngineRun dedicated = run_workload(library, tea, donor, users, users,
                                           sessions, burst, runner);

  // Traffic-shape comparison on the pooled configuration: identical session
  // volume, arrival order drawn uniformly vs Zipf-skewed.
  const double zipf_s = flags.get_double("zipf", 1.1);
  serve::UniformArrivals uniform_arrivals(users, 777);
  serve::ZipfianArrivals zipf_arrivals(users, zipf_s, 777);
  const std::size_t total_sessions = users * sessions;
  const EngineRun uniform =
      run_arrival_workload(library, tea, donor, users, slots, total_sessions,
                           uniform_arrivals, runner);
  const EngineRun zipf =
      run_arrival_workload(library, tea, donor, users, slots, total_sessions,
                           zipf_arrivals, runner);

  const auto& rep = pooled.report;
  const double total = static_cast<double>(rep.sessions);
  util::TextTable table("Serving summary (timing in --timing-json only)");
  table.set_header({"metric", "pooled", "dedicated"});
  table.add_row({"pool slots", std::to_string(slots),
                 std::to_string(users)});
  table.add_row({"sessions served", std::to_string(rep.sessions),
                 std::to_string(dedicated.report.sessions)});
  table.add_row({"completed", std::to_string(rep.completed),
                 std::to_string(dedicated.report.completed)});
  table.add_row({"pool hits", std::to_string(rep.pool_hits),
                 std::to_string(dedicated.report.pool_hits)});
  table.add_row({"policy swaps", std::to_string(rep.policy_swaps),
                 std::to_string(dedicated.report.policy_swaps)});
  table.add_row({"hit rate",
                 format2(static_cast<double>(rep.pool_hits) / total),
                 format2(static_cast<double>(dedicated.report.pool_hits) /
                         total)});
  table.add_row({"policy writes staged", std::to_string(rep.staged_writes),
                 std::to_string(dedicated.report.staged_writes)});
  table.add_row({"policy writes to disk", std::to_string(rep.disk_writes),
                 std::to_string(dedicated.report.disk_writes)});
  table.add_row({"users flagged (drift)", std::to_string(rep.flagged_users),
                 std::to_string(dedicated.report.flagged_users)});
  table.add_row({"fleet checksum", std::to_string(rep.checksum),
                 std::to_string(dedicated.report.checksum)});
  table.add_row({"steady-state allocs/serve", format2(probe), "-"});
  std::fputs(table.render().c_str(), stdout);

  const auto hit_rate = [](const EngineRun& run) {
    return static_cast<double>(run.report.pool_hits) /
           static_cast<double>(run.report.sessions);
  };
  util::TextTable shapes("Traffic shape (pooled slots, arrival streams)");
  shapes.set_header({"metric", "uniform",
                     "zipf(" + format2(zipf_s) + ")"});
  shapes.add_row({"sessions served", std::to_string(uniform.report.sessions),
                  std::to_string(zipf.report.sessions)});
  shapes.add_row({"pool hit rate", format2(hit_rate(uniform)),
                  format2(hit_rate(zipf))});
  shapes.add_row({"policy swaps", std::to_string(uniform.report.policy_swaps),
                  std::to_string(zipf.report.policy_swaps)});
  shapes.add_row({"fleet checksum", std::to_string(uniform.report.checksum),
                  std::to_string(zipf.report.checksum)});
  std::fputs(shapes.render().c_str(), stdout);
  std::puts("\nThe summary is byte-identical at any --jobs: requests shard\n"
            "statically onto slots and each slot is one seed-split trial.");

  const std::string timing_path = flags.get("timing-json");
  const auto emit = [&](const char* name, const EngineRun& run,
                        std::size_t run_slots) {
    std::ostringstream extra;
    extra << "\"users\": " << users << ", \"slots\": " << run_slots
          << ", \"sessions_per_user\": " << sessions
          << ", \"sessions_per_sec\": "
          << (run.seconds > 0.0 ? total / run.seconds : 0.0)
          << ", \"pool_hit_rate\": "
          << static_cast<double>(run.report.pool_hits) / total
          << ", \"policy_swaps\": " << run.report.policy_swaps
          << ", \"allocs_per_session\": " << run.allocs_per_session
          << ", \"steady_state_allocs_per_session\": " << probe;
    exec::append_timing_record(timing_path, name, runner.jobs(), users,
                               run.seconds, extra.str());
  };
  emit("serve_throughput", pooled, slots);
  emit("serve_throughput_dedicated", dedicated, users);
  emit("serve_throughput_uniform", uniform, slots);
  emit("serve_throughput_zipf", zipf, slots);
  return 0;
}
