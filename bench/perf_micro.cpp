// P1 (DESIGN.md): micro-benchmarks of the hot paths, for the record the
// paper keeps implicitly ("running on IBM ThinkPad X32 with Pentium M
// 1.8 GHz") — absolute numbers differ on modern hardware, but the costs
// stay microscopic relative to the 10 Hz sensing cadence.

#include <benchmark/benchmark.h>

#include "adl/library.hpp"
#include "pavenet/detector.hpp"
#include "planning/learner.hpp"
#include "rl/td_lambda.hpp"
#include "sensors/models.hpp"
#include "trace/dataset.hpp"
#include "trace/sensing_pipeline.hpp"

namespace {

using namespace coreda;

void BM_QTableUpdate(benchmark::State& state) {
  rl::TdLambdaQLearning learner(25, 8);
  rl::Transition t{3, 2, 100.0, 7, false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(learner.observe(t));
  }
}
BENCHMARK(BM_QTableUpdate);

void BM_CounterfactualSweep(benchmark::State& state) {
  rl::TdLambdaQLearning learner(25, 8);
  for (auto _ : state) {
    for (rl::ActionId a = 0; a < 8; ++a) {
      benchmark::DoNotOptimize(
          learner.update_counterfactual(3, a, 100.0, 7, false));
    }
  }
}
BENCHMARK(BM_CounterfactualSweep);

void BM_TrainEpisode(benchmark::State& state) {
  adl::AdlLibrary library;
  planning::RoutineLearner learner(library.tea_making(), util::Rng(1));
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  for (auto _ : state) {
    learner.train_episode(steps);
  }
}
BENCHMARK(BM_TrainEpisode);

void BM_Predict(benchmark::State& state) {
  adl::AdlLibrary library;
  planning::RoutineLearner learner(library.tea_making(), util::Rng(1));
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  for (int i = 0; i < 120; ++i) learner.train_episode(steps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        learner.predict(adl::tools::kTeaBox, adl::tools::kElectricPot));
  }
}
BENCHMARK(BM_Predict);

void BM_DetectorSample(benchmark::State& state) {
  pavenet::ThresholdDetector detector(0.3, 10, 3);
  double x = 0.1;
  for (auto _ : state) {
    x = x > 0.5 ? 0.1 : x + 0.07;
    benchmark::DoNotOptimize(detector.add_sample(x));
  }
}
BENCHMARK(BM_DetectorSample);

void BM_SensorSample(benchmark::State& state) {
  sensors::AccelerometerModel model;
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.sample(sim::TimePoint::origin(), 0.7, 1.0, rng));
  }
}
BENCHMARK(BM_SensorSample);

void BM_FullSensedEpisode(benchmark::State& state) {
  adl::AdlLibrary library;
  trace::SensingPipeline pipeline(library.tools(),
                                  library.tea_making().tools(), 9);
  patient::BehaviorGenerator gen(
      library.tea_making(), library.tools(),
      patient::PatientProfile::with_severity("U", 0.0), util::Rng(10));
  const auto episode = gen.timed_episode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(episode));
  }
}
BENCHMARK(BM_FullSensedEpisode)->Unit(benchmark::kMillisecond);

}  // namespace
