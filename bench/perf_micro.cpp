// P1 (DESIGN.md): micro-benchmarks of the hot paths, for the record the
// paper keeps implicitly ("running on IBM ThinkPad X32 with Pentium M
// 1.8 GHz") — absolute numbers differ on modern hardware, but the costs
// stay microscopic relative to the 10 Hz sensing cadence.

#include <benchmark/benchmark.h>

#include "adl/library.hpp"
#include "pavenet/detector.hpp"
#include "pavenet/node.hpp"
#include "planning/learner.hpp"
#include "rl/td_lambda.hpp"
#include "sensors/models.hpp"
#include "sim/scheduler.hpp"
#include "trace/dataset.hpp"
#include "trace/sensing_pipeline.hpp"
// Global allocation counter (replaces this binary's operator new): the
// scheduler and train_episode benches assert their "zero allocations per
// event / episode at steady state" claims through it.
#include "util/alloc_counter.hpp"

namespace {

using namespace coreda;

void BM_QTableUpdate(benchmark::State& state) {
  rl::TdLambdaQLearning learner(25, 8);
  rl::Transition t{3, 2, 100.0, 7, false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(learner.observe(t));
  }
}
BENCHMARK(BM_QTableUpdate);

void BM_CounterfactualSweep(benchmark::State& state) {
  rl::TdLambdaQLearning learner(25, 8);
  for (auto _ : state) {
    for (rl::ActionId a = 0; a < 8; ++a) {
      benchmark::DoNotOptimize(
          learner.update_counterfactual(3, a, 100.0, 7, false));
    }
  }
}
BENCHMARK(BM_CounterfactualSweep);

void BM_TrainEpisode(benchmark::State& state) {
  adl::AdlLibrary library;
  planning::RoutineLearner learner(library.tea_making(), util::Rng(1));
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  // Warm the scratch buffers past their growth phase, then assert the
  // training hot path's contract: allocs_per_episode == 0 at steady state.
  for (int i = 0; i < 8; ++i) learner.train_episode(steps);
  std::uint64_t episodes = 0;
  const std::uint64_t allocs_before = util::allocation_count();
  for (auto _ : state) {
    learner.train_episode(steps);
    ++episodes;
  }
  state.counters["allocs_per_episode"] =
      static_cast<double>(util::allocation_count() - allocs_before) /
      static_cast<double>(episodes);
}
BENCHMARK(BM_TrainEpisode);

void BM_Predict(benchmark::State& state) {
  adl::AdlLibrary library;
  planning::RoutineLearner learner(library.tea_making(), util::Rng(1));
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  for (int i = 0; i < 120; ++i) learner.train_episode(steps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        learner.predict(adl::tools::kTeaBox, adl::tools::kElectricPot));
  }
}
BENCHMARK(BM_Predict);

void BM_DetectorSample(benchmark::State& state) {
  pavenet::ThresholdDetector detector(0.3, 10, 3);
  double x = 0.1;
  for (auto _ : state) {
    x = x > 0.5 ? 0.1 : x + 0.07;
    benchmark::DoNotOptimize(detector.add_sample(x));
  }
}
BENCHMARK(BM_DetectorSample);

void BM_SensorSample(benchmark::State& state) {
  sensors::AccelerometerModel model;
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.sample(sim::TimePoint::origin(), 0.7, 1.0, rng));
  }
}
BENCHMARK(BM_SensorSample);

// --- Scheduler hot paths ---------------------------------------------------
// Before the slot-pool rewrite every schedule_* call heap-allocated a
// shared_ptr<bool> control block and every periodic reschedule copied the
// std::function; the benches below record the rewrite's contract:
// allocs_per_event == 0 at steady state.

void BM_SchedulerOneShotScheduleFire(benchmark::State& state) {
  sim::Scheduler s;
  // Warm the slot pool and heap storage past their growth phase.
  for (int i = 0; i < 64; ++i) {
    s.schedule_after(sim::Duration::millis(1), [] {});
  }
  s.run();
  std::uint64_t events = 0;
  const std::uint64_t allocs_before = util::allocation_count();
  for (auto _ : state) {
    s.schedule_after(sim::Duration::millis(1), [] {});
    s.run(1);
    ++events;
  }
  state.counters["allocs_per_event"] =
      static_cast<double>(util::allocation_count() - allocs_before) /
      static_cast<double>(events);
}
BENCHMARK(BM_SchedulerOneShotScheduleFire);

void BM_SchedulerScheduleCancel(benchmark::State& state) {
  sim::Scheduler s;
  for (int i = 0; i < 64; ++i) {
    s.schedule_after(sim::Duration::millis(1), [] {}).cancel();
  }
  s.run();
  std::uint64_t events = 0;
  const std::uint64_t allocs_before = util::allocation_count();
  for (auto _ : state) {
    sim::EventHandle h = s.schedule_after(sim::Duration::millis(1), [] {});
    h.cancel();
    s.run_until(s.now());  // reaps the cancelled event without firing
    ++events;
  }
  state.counters["allocs_per_event"] =
      static_cast<double>(util::allocation_count() - allocs_before) /
      static_cast<double>(events);
}
BENCHMARK(BM_SchedulerScheduleCancel);

void BM_SchedulerPeriodicFire(benchmark::State& state) {
  // The dominant workload: a long-lived periodic series (a firmware task)
  // firing event after event. The series must reuse its slot and callback.
  sim::Scheduler s;
  std::uint64_t ticks = 0;
  s.schedule_periodic(sim::Duration::millis(100), [&ticks] { ++ticks; });
  s.run(64);  // steady state
  std::uint64_t events = 0;
  const std::uint64_t allocs_before = util::allocation_count();
  for (auto _ : state) {
    s.run(1);
    ++events;
  }
  benchmark::DoNotOptimize(ticks);
  state.counters["allocs_per_event"] =
      static_cast<double>(util::allocation_count() - allocs_before) /
      static_cast<double>(events);
}
BENCHMARK(BM_SchedulerPeriodicFire);

void BM_SchedulerManyPeriodicTasks(benchmark::State& state) {
  // Eight co-scheduled firmware tasks (one per instrumented tool) for one
  // virtual second per iteration — the per-trial scheduler load of a
  // deployment-sized simulation.
  sim::Scheduler s;
  std::uint64_t ticks = 0;
  for (int i = 0; i < 8; ++i) {
    s.schedule_periodic(sim::Duration::millis(100), [&ticks] { ++ticks; });
  }
  s.run_for(sim::Duration::seconds(1.0));
  for (auto _ : state) {
    s.run_for(sim::Duration::seconds(1.0));
  }
  benchmark::DoNotOptimize(ticks);
}
BENCHMARK(BM_SchedulerManyPeriodicTasks);

// --- Firmware sampling: per-tick vs batched --------------------------------
// 100 virtual seconds of one node with scripted manipulations; the batched
// task (FirmwareConfig::batch_sampling) takes the same samples with 10x
// fewer scheduler events.

void node_sampling_run(benchmark::State& state, bool batch) {
  adl::AdlLibrary library;
  for (auto _ : state) {
    sim::Scheduler scheduler;
    sensors::ManipulationWorld world;
    pavenet::RadioChannel channel(scheduler, util::Rng(1));
    pavenet::FirmwareConfig config;
    config.batch_sampling = batch;
    pavenet::PavenetNode node(library.tools().at(adl::tools::kKettle),
                              scheduler, world, channel, util::Rng(7),
                              config);
    node.power_on();
    for (int m = 0; m < 10; ++m) {
      scheduler.schedule_at(
          sim::TimePoint::from_seconds(m * 10.0 + 1.3), [&scheduler, &world] {
            world.begin(adl::tools::kKettle, scheduler.now(),
                        sim::Duration::seconds(6.0));
          });
    }
    scheduler.run_until(sim::TimePoint::from_seconds(100.0));
    node.power_off();
    benchmark::DoNotOptimize(node.samples());
  }
}

void BM_NodeSamplingPerTick(benchmark::State& state) {
  node_sampling_run(state, false);
}
BENCHMARK(BM_NodeSamplingPerTick)->Unit(benchmark::kMillisecond);

void BM_NodeSamplingBatched(benchmark::State& state) {
  node_sampling_run(state, true);
}
BENCHMARK(BM_NodeSamplingBatched)->Unit(benchmark::kMillisecond);

void BM_FullSensedEpisode(benchmark::State& state) {
  adl::AdlLibrary library;
  trace::SensingPipeline pipeline(library.tools(),
                                  library.tea_making().tools(), 9);
  patient::BehaviorGenerator gen(
      library.tea_making(), library.tools(),
      patient::PatientProfile::with_severity("U", 0.0), util::Rng(10));
  const auto episode = gen.timed_episode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(episode));
  }
}
BENCHMARK(BM_FullSensedEpisode)->Unit(benchmark::kMillisecond);

}  // namespace
