// P1 (DESIGN.md): micro-benchmarks of the hot paths, for the record the
// paper keeps implicitly ("running on IBM ThinkPad X32 with Pentium M
// 1.8 GHz") — absolute numbers differ on modern hardware, but the costs
// stay microscopic relative to the 10 Hz sensing cadence.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <numeric>
#include <sstream>

#include "adl/library.hpp"
#include "pavenet/detector.hpp"
#include "pavenet/node.hpp"
#include "planning/learner.hpp"
#include "planning/serialize.hpp"
#include "rl/lane_kernels.hpp"
#include "serve/segment_store.hpp"
#include "serve/user_index.hpp"
#include "rl/td_lambda.hpp"
#include "sensors/models.hpp"
#include "sim/scheduler.hpp"
#include "trace/dataset.hpp"
#include "trace/sensing_pipeline.hpp"
// Global allocation counter (replaces this binary's operator new): the
// scheduler and train_episode benches assert their "zero allocations per
// event / episode at steady state" claims through it.
#include "util/alloc_counter.hpp"

namespace {

using namespace coreda;

void BM_QTableUpdate(benchmark::State& state) {
  rl::TdLambdaQLearning learner(25, 8);
  rl::Transition t{3, 2, 100.0, 7, false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(learner.observe(t));
  }
}
BENCHMARK(BM_QTableUpdate);

void BM_CounterfactualSweep(benchmark::State& state) {
  rl::TdLambdaQLearning learner(25, 8);
  for (auto _ : state) {
    for (rl::ActionId a = 0; a < 8; ++a) {
      benchmark::DoNotOptimize(
          learner.update_counterfactual(3, a, 100.0, 7, false));
    }
  }
}
BENCHMARK(BM_CounterfactualSweep);

void BM_TrainEpisode(benchmark::State& state) {
  adl::AdlLibrary library;
  planning::RoutineLearner learner(library.tea_making(), util::Rng(1));
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  // Warm the scratch buffers past their growth phase, then assert the
  // training hot path's contract: allocs_per_episode == 0 at steady state.
  for (int i = 0; i < 8; ++i) learner.train_episode(steps);
  std::uint64_t episodes = 0;
  const std::uint64_t allocs_before = util::allocation_count();
  for (auto _ : state) {
    learner.train_episode(steps);
    ++episodes;
  }
  state.counters["allocs_per_episode"] =
      static_cast<double>(util::allocation_count() - allocs_before) /
      static_cast<double>(episodes);
}
BENCHMARK(BM_TrainEpisode);

void BM_Predict(benchmark::State& state) {
  adl::AdlLibrary library;
  planning::RoutineLearner learner(library.tea_making(), util::Rng(1));
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  for (int i = 0; i < 120; ++i) learner.train_episode(steps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        learner.predict(adl::tools::kTeaBox, adl::tools::kElectricPot));
  }
}
BENCHMARK(BM_Predict);

void BM_DetectorSample(benchmark::State& state) {
  pavenet::ThresholdDetector detector(0.3, 10, 3);
  double x = 0.1;
  for (auto _ : state) {
    x = x > 0.5 ? 0.1 : x + 0.07;
    benchmark::DoNotOptimize(detector.add_sample(x));
  }
}
BENCHMARK(BM_DetectorSample);

void BM_SensorSample(benchmark::State& state) {
  sensors::AccelerometerModel model;
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.sample(sim::TimePoint::origin(), 0.7, 1.0, rng));
  }
}
BENCHMARK(BM_SensorSample);

// --- Scheduler hot paths ---------------------------------------------------
// Before the slot-pool rewrite every schedule_* call heap-allocated a
// shared_ptr<bool> control block and every periodic reschedule copied the
// std::function; the benches below record the rewrite's contract:
// allocs_per_event == 0 at steady state.

void BM_SchedulerOneShotScheduleFire(benchmark::State& state) {
  sim::Scheduler s;
  // Warm the slot pool and heap storage past their growth phase.
  for (int i = 0; i < 64; ++i) {
    s.schedule_after(sim::Duration::millis(1), [] {});
  }
  s.run();
  std::uint64_t events = 0;
  const std::uint64_t allocs_before = util::allocation_count();
  for (auto _ : state) {
    s.schedule_after(sim::Duration::millis(1), [] {});
    s.run(1);
    ++events;
  }
  state.counters["allocs_per_event"] =
      static_cast<double>(util::allocation_count() - allocs_before) /
      static_cast<double>(events);
}
BENCHMARK(BM_SchedulerOneShotScheduleFire);

void BM_SchedulerScheduleCancel(benchmark::State& state) {
  sim::Scheduler s;
  for (int i = 0; i < 64; ++i) {
    s.schedule_after(sim::Duration::millis(1), [] {}).cancel();
  }
  s.run();
  std::uint64_t events = 0;
  const std::uint64_t allocs_before = util::allocation_count();
  for (auto _ : state) {
    sim::EventHandle h = s.schedule_after(sim::Duration::millis(1), [] {});
    h.cancel();
    s.run_until(s.now());  // reaps the cancelled event without firing
    ++events;
  }
  state.counters["allocs_per_event"] =
      static_cast<double>(util::allocation_count() - allocs_before) /
      static_cast<double>(events);
}
BENCHMARK(BM_SchedulerScheduleCancel);

void BM_SchedulerPeriodicFire(benchmark::State& state) {
  // The dominant workload: a long-lived periodic series (a firmware task)
  // firing event after event. The series must reuse its slot and callback.
  sim::Scheduler s;
  std::uint64_t ticks = 0;
  s.schedule_periodic(sim::Duration::millis(100), [&ticks] { ++ticks; });
  s.run(64);  // steady state
  std::uint64_t events = 0;
  const std::uint64_t allocs_before = util::allocation_count();
  for (auto _ : state) {
    s.run(1);
    ++events;
  }
  benchmark::DoNotOptimize(ticks);
  state.counters["allocs_per_event"] =
      static_cast<double>(util::allocation_count() - allocs_before) /
      static_cast<double>(events);
}
BENCHMARK(BM_SchedulerPeriodicFire);

void BM_SchedulerManyPeriodicTasks(benchmark::State& state) {
  // Eight co-scheduled firmware tasks (one per instrumented tool) for one
  // virtual second per iteration — the per-trial scheduler load of a
  // deployment-sized simulation.
  sim::Scheduler s;
  std::uint64_t ticks = 0;
  for (int i = 0; i < 8; ++i) {
    s.schedule_periodic(sim::Duration::millis(100), [&ticks] { ++ticks; });
  }
  s.run_for(sim::Duration::seconds(1.0));
  for (auto _ : state) {
    s.run_for(sim::Duration::seconds(1.0));
  }
  benchmark::DoNotOptimize(ticks);
}
BENCHMARK(BM_SchedulerManyPeriodicTasks);

// --- Firmware sampling: per-tick vs batched --------------------------------
// 100 virtual seconds of one node with scripted manipulations; the batched
// task (FirmwareConfig::batch_sampling) takes the same samples with 10x
// fewer scheduler events.

void node_sampling_run(benchmark::State& state, bool batch) {
  adl::AdlLibrary library;
  for (auto _ : state) {
    sim::Scheduler scheduler;
    sensors::ManipulationWorld world;
    pavenet::RadioChannel channel(scheduler, util::Rng(1));
    pavenet::FirmwareConfig config;
    config.batch_sampling = batch;
    pavenet::PavenetNode node(library.tools().at(adl::tools::kKettle),
                              scheduler, world, channel, util::Rng(7),
                              config);
    node.power_on();
    for (int m = 0; m < 10; ++m) {
      scheduler.schedule_at(
          sim::TimePoint::from_seconds(m * 10.0 + 1.3), [&scheduler, &world] {
            world.begin(adl::tools::kKettle, scheduler.now(),
                        sim::Duration::seconds(6.0));
          });
    }
    scheduler.run_until(sim::TimePoint::from_seconds(100.0));
    node.power_off();
    benchmark::DoNotOptimize(node.samples());
  }
}

void BM_NodeSamplingPerTick(benchmark::State& state) {
  node_sampling_run(state, false);
}
BENCHMARK(BM_NodeSamplingPerTick)->Unit(benchmark::kMillisecond);

void BM_NodeSamplingBatched(benchmark::State& state) {
  node_sampling_run(state, true);
}
BENCHMARK(BM_NodeSamplingBatched)->Unit(benchmark::kMillisecond);

// --- P7 lane-engine & v3 snapshot kernels ----------------------------------
// The batched trace-decay kernel is the only per-step lane operation that
// touches every trace entry; the v3 delta codec is the nightly flush path.

void BM_LaneTraceDecayBatch(benchmark::State& state) {
  // Eight lane slots of compact traces decayed in lockstep. Cutoff 0.0
  // keeps the entry count fixed so every iteration does identical work
  // (entries decay toward zero but are never compacted out).
  constexpr std::size_t kSlots = 8;
  constexpr std::uint32_t kEntries = 32;
  std::vector<double> vals(kSlots * kEntries, 1.0);
  std::vector<std::uint32_t> idxs(kSlots * kEntries);
  std::iota(idxs.begin(), idxs.end(), 0u);
  std::vector<std::uint32_t> lens(kSlots, kEntries);
  for (auto _ : state) {
    for (std::size_t s = 0; s < kSlots; ++s) {
      rl::kern::decay_compact(vals.data() + s * kEntries,
                              idxs.data() + s * kEntries, &lens[s],
                              0.9 * 0.7, 0.0);
    }
    benchmark::DoNotOptimize(vals.data());
    benchmark::DoNotOptimize(lens.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSlots * kEntries);
}
BENCHMARK(BM_LaneTraceDecayBatch);

void BM_LaneCfUpdateRow(benchmark::State& state) {
  // One fused counterfactual row backup — the kernel behind the lane
  // engine's per-step full-row sweep.
  constexpr std::size_t kActions = 8;
  double row[kActions];
  double rewards[kActions];
  for (std::size_t a = 0; a < kActions; ++a) {
    row[a] = 1000.0 - static_cast<double>(a);
    rewards[a] = a == 3 ? 100.0 : -10.0;
  }
  for (auto _ : state) {
    rl::kern::cf_update(row, rewards, 0.9 * 900.0, 0.1, 3, kActions);
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_LaneCfUpdateRow);

void BM_PolicyV3DeltaEncode(benchmark::State& state) {
  // Diff + serialize one nightly retrain's worth of changed rows (three of
  // the trained table's rows) against the last committed snapshot.
  adl::AdlLibrary library;
  planning::RoutineLearner learner(library.tea_making(), util::Rng(1));
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  for (int i = 0; i < 80; ++i) learner.train_episode(steps);
  const rl::QTable base = learner.q();
  rl::QTable next = base;
  for (rl::StateId s : {0, 2, 5}) {
    for (rl::ActionId a = 0;
         a < static_cast<rl::ActionId>(next.num_actions()); ++a) {
      next.set(s, a, next.get(s, a) + 0.25);
    }
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string record = planning::encode_policy_v3_delta(base, next,
                                                                2, 1);
    bytes += record.size();
    benchmark::DoNotOptimize(record.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PolicyV3DeltaEncode);

void BM_PolicyV3ChainDecode(benchmark::State& state) {
  // Restore an anchor + 8-delta chain (a week of nightly single-row
  // retrains between rebases) into a scratch table.
  adl::AdlLibrary library;
  planning::RoutineLearner learner(library.tea_making(), util::Rng(1));
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  for (int i = 0; i < 80; ++i) learner.train_episode(steps);
  const auto step_vocab = learner.state_codec().symbols();
  const auto tool_vocab = learner.action_codec().tools();
  rl::QTable cur = learner.q();
  std::ostringstream blob;
  planning::save_policy_v3_full(blob, step_vocab, tool_vocab, cur, 1);
  for (std::uint64_t d = 0; d < 8; ++d) {
    rl::QTable next = cur;
    const rl::StateId s = static_cast<rl::StateId>(d % cur.num_states());
    next.set(s, 0, next.get(s, 0) + 1.0);
    blob << planning::encode_policy_v3_delta(cur, next, d + 2, d + 1);
    cur = next;
  }
  const std::string bytes = blob.str();
  rl::QTable scratch(cur.num_states(), cur.num_actions());
  for (auto _ : state) {
    std::istringstream in(bytes);
    benchmark::DoNotOptimize(
        planning::load_policy_v3(in, step_vocab, tool_vocab, scratch));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_PolicyV3ChainDecode);

void BM_SegmentDeltaAppend(benchmark::State& state) {
  // One fleet write-back on the delta path: diff the session's touched row
  // against the user's previous record and append a CRDADEL2 record into
  // the mmap tail (anchor every rebase_every-th iteration, amortized in).
  adl::AdlLibrary library;
  planning::RoutineLearner learner(library.tea_making(), util::Rng(1));
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  for (int i = 0; i < 80; ++i) learner.train_episode(steps);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "coreda_micro_delta")
          .string();
  std::filesystem::remove_all(dir);
  serve::SegmentStoreParams params;
  params.dir = dir;
  params.compact_min_records = std::size_t{1} << 30;  // never compact
  serve::SegmentStore store(learner.state_codec().symbols(),
                            learner.action_codec().tools(),
                            learner.q().num_states(),
                            learner.q().num_actions(), params);
  store.reserve_users(1);
  rl::QTable q = learner.q();
  std::uint64_t version = 0;
  store.append(0, q, ++version);
  for (auto _ : state) {
    const auto s = static_cast<rl::StateId>(version % q.num_states());
    q.set(s, 0, q.get(s, 0) + 1.0);
    store.append(0, q, ++version);
    benchmark::DoNotOptimize(version);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(store.appended_bytes()));
  state.counters["bytes_per_append"] =
      static_cast<double>(store.appended_bytes()) /
      static_cast<double>(store.appends());
}
BENCHMARK(BM_SegmentDeltaAppend);

void BM_SegmentChainLoad(benchmark::State& state) {
  // Cold checkout of a user sitting at the deep end of a delta chain:
  // walk back-pointers to the anchor, then apply every delta forward.
  adl::AdlLibrary library;
  planning::RoutineLearner learner(library.tea_making(), util::Rng(1));
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  for (int i = 0; i < 80; ++i) learner.train_episode(steps);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "coreda_micro_chain")
          .string();
  std::filesystem::remove_all(dir);
  serve::SegmentStoreParams params;
  params.dir = dir;
  params.rebase_every = 16;
  serve::SegmentStore store(learner.state_codec().symbols(),
                            learner.action_codec().tools(),
                            learner.q().num_states(),
                            learner.q().num_actions(), params);
  store.reserve_users(1);
  rl::QTable q = learner.q();
  for (std::uint64_t v = 1; v <= 16; ++v) {  // anchor + 15 deltas
    store.append(0, q, v);
    const auto s = static_cast<rl::StateId>(v % q.num_states());
    q.set(s, 0, q.get(s, 0) + 1.0);
  }
  rl::QTable scratch(q.num_states(), q.num_actions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.load(0, scratch));
  }
}
BENCHMARK(BM_SegmentChainLoad);

void BM_UserIndexProbe(benchmark::State& state) {
  // The per-serve index lookup at fleet scale: 1M dense user ids in the
  // open-addressed robin-hood slab at 7/8 load, hit probes only.
  constexpr std::uint64_t kUsers = 1'000'000;
  serve::UserIndex index;
  index.reserve(kUsers);
  for (std::uint64_t u = 0; u < kUsers; ++u) {
    index.put(u, {static_cast<std::uint32_t>(u & 0x3FFF),
                  static_cast<std::uint32_t>(u & 0xFFFFF)});
  }
  serve::UserIndex::Loc loc;
  std::uint64_t u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.find(u, loc));
    u = (u + 777779) % kUsers;  // co-prime stride: visit every id
  }
  state.counters["slab_bytes_per_user"] =
      static_cast<double>(index.slab_bytes()) / static_cast<double>(kUsers);
}
BENCHMARK(BM_UserIndexProbe);

void BM_FullSensedEpisode(benchmark::State& state) {
  adl::AdlLibrary library;
  trace::SensingPipeline pipeline(library.tools(),
                                  library.tea_making().tools(), 9);
  patient::BehaviorGenerator gen(
      library.tea_making(), library.tools(),
      patient::PatientProfile::with_severity("U", 0.0), util::Rng(10));
  const auto episode = gen.timed_episode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(episode));
  }
}
BENCHMARK(BM_FullSensedEpisode)->Unit(benchmark::kMillisecond);

}  // namespace
