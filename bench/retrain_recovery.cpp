// Closed-loop drift recovery: detect -> retrain -> redeploy, end to end.
//
// bench_serve_throughput prices the serving tier and *detects* drift
// (prompt-EWMA flags); this bench closes the loop with the
// RetrainScheduler. A fleet of users is served from one donor policy, but
// a subset starts from a *stale* table — trained on yesterday's routine
// (the first two steps swapped, exactly the A10 / bench_drift_adaptation
// scenario) — while the simulated patients perform today's routine. The
// stale policies prompt the wrong tool at the wrong moment, re-prompt
// escalation kicks in, the prompt EWMA crosses the drift threshold and the
// users get flagged. From there the engine takes over: each drain enqueues
// retrain jobs for flagged users with enough recorded transcripts, replays
// their rings through a warm lane learner on the exec pool, stages the
// refreshed tables back through the PolicyStore and invalidates the slot
// residency. The bench measures how many sessions it takes every drifted
// user's EWMA to drop back under the threshold — the recovery the
// flag/retrain/redeploy loop exists to deliver.
//
// Stdout (per-round fleet state, recovery summary, allocation probes) is
// byte-identical at any --jobs: serving shards by slot, retraining by lane,
// and both fan out as seed-split TrialRunner trials. Wall-clock goes only
// to --timing-json (BENCH_retrain.json).
//
// Usage:
//   bench_retrain_recovery --users=24 --slots=4 --drifted=6 --rounds=10
//       --burst=2 --jobs=4 --lane-width=8 --timing-json=BENCH_retrain.json
//
// --lane-width=N replays retrain jobs N users at a time through the SoA
// lane engine (byte-identical outcome, a pure throughput knob). The bench
// also runs a deterministic disk probe pricing snapshot write-back per
// retrain in v2 (full rewrite) vs v3 (delta append) format; the v3 number
// is the gated flush_bytes_per_retrain metric.

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "patient/profile.hpp"
#include "planning/learner.hpp"
#include "serve/engine.hpp"
#include "util/alloc_counter.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

/// Same per-user severity band as the serving benches, derived from the
/// user index alone so every configuration serves the same population.
patient::PatientProfile user_profile(std::size_t user) {
  util::Rng rng(exec::trial_seed(9001, user));
  return patient::PatientProfile::with_severity(
      "U" + std::to_string(user), 0.1 + 0.4 * rng.uniform());
}

/// Steady-state allocation probe for the retrain path itself: one lane, one
/// user, a full ring. After the first job warms the lane learner, a retrain
/// (import + replay + stage) must not touch the heap.
double steady_state_allocs_per_retrain(const adl::Adl& adl,
                                       const planning::RoutineLearner& donor,
                                       std::span<const adl::StepId> routine) {
  serve::PolicyStore store(donor);
  serve::RetrainScheduler scheduler(adl, store, planning::LearnerConfig{},
                                    /*lanes=*/1, serve::RetrainParams{});
  store.add_user("A");
  scheduler.add_user();
  for (std::size_t i = 0; i < scheduler.params().ring_capacity; ++i) {
    scheduler.record(0, routine);
  }
  scheduler.retrain_user(0);  // warm-up
  constexpr int kProbe = 32;
  const std::uint64_t before = util::allocation_count();
  for (int i = 0; i < kProbe; ++i) scheduler.retrain_user(0);
  return static_cast<double>(util::allocation_count() - before) / kProbe;
}

std::string format2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// Deterministic disk probe: snapshot write-back bytes per retrain, for one
/// user whose every retrain is flushed (flush_every=1). v2 rewrites the
/// full snapshot each time; v3 appends a changed-rows delta (full anchor
/// every rebase_every-th flush). File sizes are a pure function of the
/// table shape and the replay stream, so the numbers are byte-identical
/// across runs and machines — they go in the gated summary, not the
/// wall-clock side channel.
double flush_bytes_per_retrain(const adl::Adl& adl,
                               const planning::RoutineLearner& donor,
                               std::span<const adl::StepId> routine,
                               serve::SnapshotFormat format) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       (format == serve::SnapshotFormat::kV3Delta ? "coreda_flushprobe_v3"
                                                  : "coreda_flushprobe_v2"))
          .string();
  std::filesystem::remove_all(dir);
  constexpr int kRetrains = 16;
  double per_retrain = 0.0;
  {
    serve::PolicyStoreParams store_params;
    store_params.dir = dir;
    store_params.flush_every = 1;
    store_params.format = format;
    serve::PolicyStore store(donor, store_params);
    serve::RetrainScheduler scheduler(adl, store, planning::LearnerConfig{},
                                      /*lanes=*/1, serve::RetrainParams{});
    store.add_user("A");
    scheduler.add_user();
    for (std::size_t i = 0; i < scheduler.params().ring_capacity; ++i) {
      scheduler.record(0, routine);
    }
    for (int i = 0; i < kRetrains; ++i) scheduler.retrain_user(0);
    per_retrain =
        static_cast<double>(store.flush_bytes()) / kRetrains;
  }
  std::filesystem::remove_all(dir);
  return per_retrain;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const auto users = static_cast<std::size_t>(flags.get_int("users", 24));
  const auto slots = static_cast<std::size_t>(flags.get_int("slots", 4));
  const auto drifted = static_cast<std::size_t>(flags.get_int("drifted", 6));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 10));
  const auto burst = static_cast<std::size_t>(flags.get_int("burst", 2));
  // Drifted users here run ~4 prompts/session against ~1 for calm ones (the
  // stale table mis-prompts once per swapped step plus escalations); the
  // threshold splits the two bands.
  const double threshold = flags.get_double("threshold", 2.5);
  const auto lane_width =
      static_cast<std::size_t>(flags.get_int("lane-width", 1));
  if (drifted > users) {
    std::fprintf(stderr, "--drifted must be <= --users\n");
    return 1;
  }
  if (lane_width == 0) {
    std::fprintf(stderr, "--lane-width must be >= 1\n");
    return 1;
  }

  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();

  // Today's routine (what every simulated patient performs)...
  std::vector<adl::StepId> routine;
  for (const adl::AdlStep& s : tea.primary_routine().steps()) {
    routine.push_back(s.step_id());
  }
  // ...and yesterday's, with the first two steps swapped — the stale
  // tables were converged on this one (A10's drift scenario).
  std::vector<adl::StepId> stale_routine = routine;
  std::swap(stale_routine[0], stale_routine[1]);

  planning::RoutineLearner donor(tea, util::Rng(17));
  planning::RoutineLearner stale(tea, util::Rng(18));
  for (int i = 0; i < 80; ++i) donor.train_episode(routine);
  for (int i = 0; i < 120; ++i) stale.train_episode(stale_routine);

  serve::PolicyStore store(donor);
  serve::ServeEngineParams params;
  params.pool.slots = slots;
  params.pool.seed = 4242;
  params.drift.threshold = threshold;
  params.retrain.enabled = true;
  params.retrain.lane_width = lane_width;
  // Every `drifted`-th user starts from the stale table; ids are spread
  // across slots/lanes so recovery is not an artifact of one shard.
  std::vector<bool> is_drifted(users, false);
  for (std::size_t u = 0; u < users; ++u) {
    const bool drift = drifted > 0 && u % (users / drifted) == 0 &&
                       u / (users / drifted) < drifted;
    is_drifted[u] = drift;
    store.add_user("U" + std::to_string(u), drift ? stale.q() : donor.q());
  }
  serve::ServeEngine engine(library, tea, store, params);
  for (std::size_t u = 0; u < users; ++u) {
    engine.add_user("U" + std::to_string(u), user_profile(u));
  }

  std::printf("Closed-loop drift recovery: %zu users (%zu on stale tables) "
              "on %zu slots,\n%zu rounds x %zu sessions/user "
              "(EWMA threshold %.1f, retrain after %zu transcripts)\n\n",
              users, drifted, slots, rounds, burst,
              engine.params().drift.threshold,
              engine.params().retrain.min_transcripts);

  // Per-round fleet state. All numbers come out of the (deterministic)
  // report, so the table is byte-identical at any --jobs.
  util::TextTable table("Fleet state per round (drifted-user means)");
  table.set_header({"round", "flagged", "retrains", "drift EWMA",
                    "drift prompts/s", "calm EWMA"});
  std::vector<std::uint64_t> prompts_before(users, 0);
  std::vector<std::size_t> flagged_round(users, rounds + 1);
  std::vector<std::size_t> recovered_round(users, rounds + 1);
  double post_retrain_prompts = 0.0;
  double bench_seconds = 0.0;
  serve::ServeReport report;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t u = 0; u < users; ++u) {
      engine.enqueue(static_cast<serve::UserId>(u), burst);
    }
    const exec::Stopwatch timer;
    report = engine.drain(runner);
    bench_seconds += timer.seconds();

    double drift_ewma = 0.0;
    double calm_ewma = 0.0;
    double drift_prompts = 0.0;
    for (std::size_t u = 0; u < users; ++u) {
      const serve::ServeUserStats& s = report.users[u];
      if (is_drifted[u]) {
        drift_ewma += s.prompt_ewma;
        drift_prompts += static_cast<double>(s.prompts - prompts_before[u]) /
                         static_cast<double>(burst);
        if (s.needs_retraining && flagged_round[u] > rounds) {
          flagged_round[u] = round;
        }
        if (!s.needs_retraining && s.retrains > 0 &&
            recovered_round[u] > rounds) {
          recovered_round[u] = round;
        }
      } else {
        calm_ewma += s.prompt_ewma;
      }
      prompts_before[u] = s.prompts;
    }
    const auto n_drift = static_cast<double>(drifted);
    const auto n_calm = static_cast<double>(users - drifted);
    if (round + 1 == rounds) post_retrain_prompts = drift_prompts / n_drift;
    table.add_row({std::to_string(round),
                   std::to_string(report.flagged_users),
                   std::to_string(report.retrain.jobs),
                   format2(drifted > 0 ? drift_ewma / n_drift : 0.0),
                   format2(drifted > 0 ? drift_prompts / n_drift : 0.0),
                   format2(n_calm > 0 ? calm_ewma / n_calm : 0.0)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Recovery summary: sessions from the drain that first saw the flag to
  // the drain that first saw it cleared again (post-retrain EWMA back under
  // the threshold).
  std::size_t recovered = 0;
  std::size_t recovery_sessions_max = 0;
  for (std::size_t u = 0; u < users; ++u) {
    if (!is_drifted[u]) continue;
    if (recovered_round[u] <= rounds) {
      ++recovered;
      const std::size_t sessions =
          (recovered_round[u] - flagged_round[u]) * burst;
      recovery_sessions_max = std::max(recovery_sessions_max, sessions);
    }
  }
  const double retrain_probe =
      steady_state_allocs_per_retrain(tea, donor, routine);
  const double flush_v2 = flush_bytes_per_retrain(
      tea, donor, routine, serve::SnapshotFormat::kV2);
  const double flush_v3 = flush_bytes_per_retrain(
      tea, donor, routine, serve::SnapshotFormat::kV3Delta);

  util::TextTable summary("Recovery summary");
  summary.set_header({"metric", "value"});
  summary.add_row({"drifted users", std::to_string(drifted)});
  summary.add_row({"recovered (flag cleared)", std::to_string(recovered)});
  summary.add_row({"max flag->clear sessions",
                   std::to_string(recovery_sessions_max)});
  summary.add_row({"retrain jobs", std::to_string(report.retrain.jobs)});
  summary.add_row({"episodes replayed",
                   std::to_string(report.retrain.episodes)});
  summary.add_row({"slot invalidations",
                   std::to_string(engine.pool().invalidations())});
  summary.add_row({"policy writes staged",
                   std::to_string(report.staged_writes)});
  summary.add_row({"drift prompts/session (final round)",
                   format2(post_retrain_prompts)});
  summary.add_row({"fleet checksum", std::to_string(report.checksum)});
  summary.add_row({"steady-state allocs/retrain", format2(retrain_probe)});
  summary.add_row({"flush bytes/retrain (v2 full)", format2(flush_v2)});
  summary.add_row({"flush bytes/retrain (v3 delta)", format2(flush_v3)});
  std::fputs(summary.render().c_str(), stdout);
  std::puts("\nThe tables are byte-identical at any --jobs: sessions shard\n"
            "by slot and retrain jobs by lane, each a seed-split trial.");

  const std::string timing_path = flags.get("timing-json");
  std::ostringstream extra;
  extra << "\"users\": " << users << ", \"slots\": " << slots
        << ", \"drifted\": " << drifted << ", \"rounds\": " << rounds
        << ", \"sessions_per_round\": " << burst
        << ", \"lane_width\": " << lane_width
        << ", \"sessions_per_sec\": "
        << (bench_seconds > 0.0
                ? static_cast<double>(report.sessions) / bench_seconds
                : 0.0)
        << ", \"recovered_users\": " << recovered
        << ", \"recovery_sessions_max\": " << recovery_sessions_max
        << ", \"post_retrain_prompts_per_session\": " << post_retrain_prompts
        << ", \"retrain_jobs\": " << report.retrain.jobs
        << ", \"retrain_episodes\": " << report.retrain.episodes
        << ", \"steady_state_allocs_per_retrain\": " << retrain_probe
        << ", \"flush_bytes_per_retrain\": " << flush_v3
        << ", \"flush_bytes_per_retrain_v2\": " << flush_v2;
  exec::append_timing_record(timing_path, "retrain_recovery", runner.jobs(),
                             users, bench_seconds, extra.str());
  return 0;
}
