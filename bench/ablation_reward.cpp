// Ablation A2 (DESIGN.md): the reward shaping of §2.2.
//
// The paper pays 100 for an intermediate step reached via a *minimal*
// prompt and 50 via a *specific* one, "promoting the user to exercise
// his/her brain instead of depending on the system". This ablation checks
// which reward structures actually produce the minimal-prompt preference,
// and that the correct-tool preference never depends on the shaping.

#include <cstdio>
#include <string>

#include "adl/library.hpp"
#include "planning/learner.hpp"
#include "trace/dataset.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

struct Shaping {
  const char* name;
  planning::RewardConfig reward;
};

struct Outcome {
  double tool_accuracy = 0.0;    ///< greedy prompt names the right tool
  std::size_t minimal_prompts = 0;
  std::size_t specific_prompts = 0;
};

Outcome evaluate(const adl::AdlLibrary& library, const adl::Adl& adl,
                 const planning::RewardConfig& reward) {
  planning::LearnerConfig config;
  config.reward = reward;
  planning::RoutineLearner learner(adl, util::Rng(606), config);

  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("User", 0.0), 303);
  for (const auto& ep : datasets.sensed_training_set(adl, 150)) {
    learner.train_episode(ep);
  }

  Outcome out;
  out.tool_accuracy = learner.greedy_accuracy();
  for (const planning::PlannerState& s : learner.predicting_states()) {
    const auto prompt = learner.predict(s);
    if (!prompt) continue;
    if (prompt->action.level == planning::RemindingLevel::kMinimal) {
      ++out.minimal_prompts;
    } else {
      ++out.specific_prompts;
    }
  }
  return out;
}

}  // namespace

int main() {
  adl::AdlLibrary library;

  Shaping shapings[4];
  shapings[0].name = "paper (1000/100/50)";
  // defaults already match the paper
  shapings[1].name = "flat levels (1000/75/75)";
  shapings[1].reward.intermediate_minimal = 75.0;
  shapings[1].reward.intermediate_specific = 75.0;
  shapings[2].name = "inverted levels (1000/50/100)";
  shapings[2].reward.intermediate_minimal = 50.0;
  shapings[2].reward.intermediate_specific = 100.0;
  shapings[3].name = "no terminal bonus (100/100/50)";
  shapings[3].reward.terminal = 100.0;

  std::puts("Ablation A2: reward shaping vs learned prompting policy");
  std::puts("(Tea-making, 150 sensed training samples)\n");

  util::TextTable table;
  table.set_header({"Reward structure", "Tool accuracy", "Minimal prompts",
                    "Specific prompts"});
  for (const Shaping& s : shapings) {
    const Outcome out = evaluate(library, library.tea_making(), s.reward);
    table.add_row({s.name, util::format_percent(out.tool_accuracy),
                   std::to_string(out.minimal_prompts),
                   std::to_string(out.specific_prompts)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: the correct-tool preference survives every\n"
      "shaping (it only needs correct > mismatch), but the minimal-prompt\n"
      "preference exists exactly when minimal pays more than specific —\n"
      "inverting the two flips the learned reminding level.");
  return 0;
}
