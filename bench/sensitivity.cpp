// Extension: the system's operating envelope — completion rate over the
// severity x prompt-compliance grid.
//
// The paper evaluates one prototype on its authors; a care facility needs
// to know *for whom* the system works: how impaired can a resident be, and
// how reliably must prompts get through, before assisted completion
// degrades? Each cell runs closed-loop tea-making sessions and reports the
// completion rate.

#include <cstdio>
#include <string>

#include "core/system.hpp"
#include "trace/dataset.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

}  // namespace

int main() {
  adl::AdlLibrary library;
  constexpr int kSessions = 10;

  core::SystemConfig config;
  config.seed = 909;
  core::CoredaSystem system(library, library.tea_making(), config);
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("R", 0.0), 910);
  system.pretrain(datasets.sensed_training_set(library.tea_making(), 120));

  std::puts("Extension: completion envelope over severity x compliance");
  std::printf("(Tea-making, %d closed-loop sessions per cell; cell value =\n"
              " sessions completed within a 5-minute window — a healthy run takes\n about 1 minute; the budget is the patience a meal schedule allows)\n\n",
              kSessions);

  const double severities[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  const double compliances[] = {1.0, 0.8, 0.6, 0.4, 0.2};

  util::TextTable table;
  std::vector<std::string> header{"severity \\ compliance"};
  for (double c : compliances) header.push_back(util::format_fixed(c, 1));
  table.set_header(header);

  for (double severity : severities) {
    std::vector<std::string> row{util::format_fixed(severity, 1)};
    for (double compliance : compliances) {
      patient::PatientProfile profile =
          patient::PatientProfile::with_severity("R", severity);
      // Sweep the perception channel directly: both levels get through
      // with the same probability, so the sweep isolates perception
      // (escalation still helps by repeating).
      profile.comply_minimal = compliance;
      profile.comply_specific = compliance;

      int completed = 0;
      for (int i = 0; i < kSessions; ++i) {
        completed += system
                         .run_session(profile, sim::Duration::minutes(5.0))
                         .completed;
      }
      row.push_back(std::to_string(completed) + "/" +
                    std::to_string(kSessions));
    }
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: near-perfect completion across the top-left\n"
      "(mild impairment or reliable prompt perception); degradation grows\n"
      "toward the bottom-right corner where severe error rates meet\n"
      "prompts that rarely get through — the population for whom the\n"
      "paper's system would still need a human caregiver in the loop.");
  return 0;
}
