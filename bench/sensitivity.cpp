// Extension: the system's operating envelope — completion rate over the
// severity x prompt-compliance grid.
//
// The paper evaluates one prototype on its authors; a care facility needs
// to know *for whom* the system works: how impaired can a resident be, and
// how reliably must prompts get through, before assisted completion
// degrades? Each cell runs closed-loop tea-making sessions and reports the
// completion rate.

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "exec/trial_runner.hpp"
#include "trace/dataset.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  exec::TrialRunner runner(exec::jobs_from_flags(flags));

  adl::AdlLibrary library;
  constexpr int kSessions = 10;

  // The training set is generated once and shared read-only by every cell;
  // each cell then gets its own freshly pretrained system seeded by
  // (909, cell index), making cells independent of each other and of the
  // job count — a cell's sessions no longer inherit learner state from
  // whichever cells happened to run before it.
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("R", 0.0), 910);
  const auto training = datasets.sensed_training_set(library.tea_making(), 120);

  std::puts("Extension: completion envelope over severity x compliance");
  std::printf("(Tea-making, %d closed-loop sessions per cell; cell value =\n"
              " sessions completed within a 5-minute window — a healthy run takes\n about 1 minute; the budget is the patience a meal schedule allows)\n\n",
              kSessions);

  const double severities[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  const double compliances[] = {1.0, 0.8, 0.6, 0.4, 0.2};
  constexpr std::size_t kGrid = 5;

  const exec::Stopwatch timer;
  const std::vector<int> completions = runner.run(
      kGrid * kGrid, 0, [&](exec::TrialContext& ctx) {
        const double severity = severities[ctx.index / kGrid];
        const double compliance = compliances[ctx.index % kGrid];

        core::SystemConfig config;
        config.seed = exec::trial_seed(909, ctx.index);
        core::CoredaSystem system(library, library.tea_making(), config);
        system.pretrain(training);

        patient::PatientProfile profile =
            patient::PatientProfile::with_severity("R", severity);
        // Sweep the perception channel directly: both levels get through
        // with the same probability, so the sweep isolates perception
        // (escalation still helps by repeating).
        profile.comply_minimal = compliance;
        profile.comply_specific = compliance;

        int completed = 0;
        for (int i = 0; i < kSessions; ++i) {
          completed += system
                           .run_session(profile, sim::Duration::minutes(5.0))
                           .completed;
        }
        return completed;
      });
  exec::append_timing_record(flags.get("timing-json"), "sensitivity",
                             runner.jobs(), kGrid * kGrid, timer.seconds());

  util::TextTable table;
  std::vector<std::string> header{"severity \\ compliance"};
  for (double c : compliances) header.push_back(util::format_fixed(c, 1));
  table.set_header(header);

  for (std::size_t si = 0; si < kGrid; ++si) {
    std::vector<std::string> row{util::format_fixed(severities[si], 1)};
    for (std::size_t ci = 0; ci < kGrid; ++ci) {
      row.push_back(std::to_string(completions[si * kGrid + ci]) + "/" +
                    std::to_string(kSessions));
    }
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: near-perfect completion across the top-left\n"
      "(mild impairment or reliable prompt perception); degradation grows\n"
      "toward the bottom-right corner where severe error rates meet\n"
      "prompts that rarely get through — the population for whom the\n"
      "paper's system would still need a human caregiver in the loop.");
  return 0;
}
