#include "reminding/reminder.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "pavenet/node.hpp"
#include "sim/scheduler.hpp"

namespace coreda::reminding {
namespace {

namespace T = adl::tools;

struct ReminderFixture : ::testing::Test {
  adl::AdlLibrary library;
  sim::Scheduler scheduler;
  sensors::ManipulationWorld world;
  pavenet::RadioChannel channel{scheduler, util::Rng(1)};
  pavenet::BaseStation station{scheduler, channel};
  pavenet::PavenetNode pot_node{library.tools().at(T::kElectricPot),
                                scheduler, world, channel, util::Rng(2)};
  pavenet::PavenetNode cup_node{library.tools().at(T::kTeaCup), scheduler,
                                world, channel, util::Rng(3)};
  RemindingSubsystem reminder{station, library.tools(),
                              MessageCatalog("Tanaka")};
};

TEST_F(ReminderFixture, IdleReminderRendersAllModalities) {
  const DeliveredReminder& r = reminder.remind(
      scheduler.now(), Trigger::kIdleTimeout, T::kElectricPot,
      planning::RemindingLevel::kMinimal, std::nullopt);
  EXPECT_EQ(r.text, "Please use electronic pot.");
  EXPECT_EQ(r.picture, "assets/tools/electronic_pot.png");
  EXPECT_EQ(r.green_blinks, 3);
  EXPECT_FALSE(r.wrong_tool.has_value());
  scheduler.run();
  EXPECT_EQ(pot_node.led().blink_count(pavenet::LedColor::kGreen), 3u);
}

TEST_F(ReminderFixture, WrongToolAddsRedLed) {
  const DeliveredReminder& r = reminder.remind(
      scheduler.now(), Trigger::kWrongTool, T::kElectricPot,
      planning::RemindingLevel::kSpecific, T::kTeaCup);
  EXPECT_EQ(r.green_blinks, 8);
  ASSERT_TRUE(r.wrong_tool.has_value());
  EXPECT_EQ(*r.wrong_tool, T::kTeaCup);
  EXPECT_EQ(r.red_blinks, 8);
  scheduler.run();
  EXPECT_EQ(pot_node.led().blink_count(pavenet::LedColor::kGreen), 8u);
  EXPECT_EQ(cup_node.led().blink_count(pavenet::LedColor::kRed), 8u);
}

TEST_F(ReminderFixture, SpecificBlinksMoreThanMinimal) {
  const auto& minimal = reminder.remind(
      scheduler.now(), Trigger::kIdleTimeout, T::kTeaCup,
      planning::RemindingLevel::kMinimal, std::nullopt);
  const auto minimal_blinks = minimal.green_blinks;
  const auto& specific = reminder.remind(
      scheduler.now(), Trigger::kIdleTimeout, T::kTeaCup,
      planning::RemindingLevel::kSpecific, std::nullopt);
  EXPECT_GT(specific.green_blinks, minimal_blinks);
}

TEST_F(ReminderFixture, LogAccumulates) {
  reminder.remind(scheduler.now(), Trigger::kIdleTimeout, T::kTeaCup,
                  planning::RemindingLevel::kMinimal, std::nullopt);
  reminder.remind(scheduler.now(), Trigger::kWrongTool, T::kKettle,
                  planning::RemindingLevel::kMinimal, T::kTeaBox);
  ASSERT_EQ(reminder.log().size(), 2u);
  EXPECT_EQ(reminder.log()[0].trigger, Trigger::kIdleTimeout);
  EXPECT_EQ(reminder.log()[1].trigger, Trigger::kWrongTool);
}

TEST_F(ReminderFixture, UnknownToolThrows) {
  EXPECT_THROW(reminder.remind(scheduler.now(), Trigger::kIdleTimeout, 999,
                               planning::RemindingLevel::kMinimal,
                               std::nullopt),
               std::out_of_range);
  EXPECT_THROW(reminder.remind(scheduler.now(), Trigger::kWrongTool,
                               T::kTeaCup,
                               planning::RemindingLevel::kMinimal, 999),
               std::out_of_range);
}

TEST_F(ReminderFixture, PraiseShowsOnDisplayAndClearsLed) {
  reminder.remind(scheduler.now(), Trigger::kIdleTimeout, T::kTeaCup,
                  planning::RemindingLevel::kMinimal, std::nullopt);
  scheduler.run();
  reminder.praise(scheduler.now(), T::kTeaCup);
  scheduler.run();
  ASSERT_FALSE(reminder.display_lines().empty());
  EXPECT_EQ(reminder.display_lines().back(), "Excellent!");
  EXPECT_FALSE(cup_node.led().is_on(pavenet::LedColor::kGreen));
}

TEST_F(ReminderFixture, CustomBlinkCounts) {
  RemindingSubsystem::Params params;
  params.minimal_blinks = 1;
  params.specific_blinks = 15;
  RemindingSubsystem custom(station, library.tools(),
                            MessageCatalog("Kim"), params);
  const auto& r = custom.remind(scheduler.now(), Trigger::kIdleTimeout,
                                T::kTeaCup,
                                planning::RemindingLevel::kSpecific,
                                std::nullopt);
  EXPECT_EQ(r.green_blinks, 15);
}

TEST(TriggerNamesTest, ToString) {
  EXPECT_EQ(to_string(Trigger::kIdleTimeout), "idle-timeout");
  EXPECT_EQ(to_string(Trigger::kWrongTool), "wrong-tool");
}

}  // namespace
}  // namespace coreda::reminding
