#include "reminding/catalog.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"

namespace coreda::reminding {
namespace {

TEST(MessageCatalogTest, MinimalIsShortImperative) {
  adl::AdlLibrary lib;
  MessageCatalog catalog("Kim");
  const auto& cup = lib.tools().at(adl::tools::kTeaCup);
  const std::string msg =
      catalog.message(cup, planning::RemindingLevel::kMinimal);
  EXPECT_EQ(msg, "Please use tea cup.");
}

TEST(MessageCatalogTest, SpecificAddressesUserByName) {
  adl::AdlLibrary lib;
  MessageCatalog catalog("Kim");
  const auto& box = lib.tools().at(adl::tools::kTeaBox);
  const std::string msg =
      catalog.message(box, planning::RemindingLevel::kSpecific);
  EXPECT_NE(msg.find("Kim"), std::string::npos);
  EXPECT_NE(msg.find("tea box"), std::string::npos);
  EXPECT_GT(msg.size(),
            catalog.message(box, planning::RemindingLevel::kMinimal).size());
}

TEST(MessageCatalogTest, PictureRefIsSluggedPath) {
  adl::AdlLibrary lib;
  MessageCatalog catalog("Kim");
  const auto& pot = lib.tools().at(adl::tools::kElectricPot);
  EXPECT_EQ(catalog.picture_ref(pot), "assets/tools/electronic_pot.png");
}

TEST(MessageCatalogTest, PraiseMatchesFigure1) {
  MessageCatalog catalog("Tanaka");
  EXPECT_EQ(catalog.praise(), "Excellent!");
}

TEST(MessageCatalogTest, UserNameAccessor) {
  MessageCatalog catalog("Tanaka");
  EXPECT_EQ(catalog.user_name(), "Tanaka");
}

}  // namespace
}  // namespace coreda::reminding
