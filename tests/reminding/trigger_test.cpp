#include "reminding/trigger.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "adl/library.hpp"
#include "sim/scheduler.hpp"

namespace coreda::reminding {
namespace {

using sim::Duration;
using sim::TimePoint;

struct TriggerFixture : ::testing::Test {
  sim::Scheduler scheduler;
  std::vector<std::pair<Trigger, adl::ToolId>> fired;
  // The monitor holds a non-owning FnRef, so the callable lives in the
  // fixture, outliving any monitor made from it.
  std::function<void(Trigger, adl::ToolId)> record =
      [this](Trigger t, adl::ToolId tool) { fired.emplace_back(t, tool); };

  TriggerMonitor make_monitor() {
    return TriggerMonitor(scheduler, record);
  }
};

TEST_F(TriggerFixture, NullCallbackThrows) {
  EXPECT_THROW(TriggerMonitor(scheduler, TriggerMonitor::Callback{}),
               std::invalid_argument);
}

TEST_F(TriggerFixture, IdleTimeoutFires) {
  TriggerMonitor monitor = make_monitor();
  monitor.arm(7, Duration::seconds(30.0));
  scheduler.run_until(TimePoint::from_seconds(31.0));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, Trigger::kIdleTimeout);
  EXPECT_EQ(monitor.idle_triggers(), 1u);
}

TEST_F(TriggerFixture, RepromptsWhileStillIdle) {
  TriggerMonitor monitor = make_monitor();
  monitor.arm(7, Duration::seconds(10.0));
  scheduler.run_until(TimePoint::from_seconds(35.0));
  EXPECT_EQ(fired.size(), 3u);  // 10 s, 20 s, 30 s
}

TEST_F(TriggerFixture, CorrectUsageDisarms) {
  TriggerMonitor monitor = make_monitor();
  monitor.arm(7, Duration::seconds(30.0));
  scheduler.run_until(TimePoint::from_seconds(5.0));
  EXPECT_TRUE(monitor.notify_usage(7));
  EXPECT_FALSE(monitor.armed());
  scheduler.run_until(TimePoint::from_seconds(120.0));
  EXPECT_TRUE(fired.empty());
}

TEST_F(TriggerFixture, WrongToolFiresImmediately) {
  TriggerMonitor monitor = make_monitor();
  monitor.arm(7, Duration::seconds(30.0));
  scheduler.run_until(TimePoint::from_seconds(5.0));
  EXPECT_FALSE(monitor.notify_usage(9));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, Trigger::kWrongTool);
  EXPECT_EQ(fired[0].second, 9);
  EXPECT_TRUE(monitor.armed());  // still waiting for the right tool
  EXPECT_EQ(monitor.wrong_tool_triggers(), 1u);
}

TEST_F(TriggerFixture, WrongToolRestartsIdleTimer) {
  TriggerMonitor monitor = make_monitor();
  monitor.arm(7, Duration::seconds(10.0));
  scheduler.run_until(TimePoint::from_seconds(8.0));
  monitor.notify_usage(9);  // wrong tool at t=8
  fired.clear();
  // The idle timer restarted at t=8: next idle prompt at t=18, not t=10.
  scheduler.run_until(TimePoint::from_seconds(15.0));
  EXPECT_TRUE(fired.empty());
  scheduler.run_until(TimePoint::from_seconds(19.0));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, Trigger::kIdleTimeout);
}

TEST_F(TriggerFixture, DisarmStopsEverything) {
  TriggerMonitor monitor = make_monitor();
  monitor.arm(7, Duration::seconds(10.0));
  monitor.disarm();
  scheduler.run_until(TimePoint::from_seconds(60.0));
  EXPECT_TRUE(fired.empty());
  EXPECT_FALSE(monitor.notify_usage(7));  // unarmed: inert
}

TEST_F(TriggerFixture, RearmReplacesExpectation) {
  TriggerMonitor monitor = make_monitor();
  monitor.arm(7, Duration::seconds(30.0));
  monitor.arm(8, Duration::seconds(30.0));
  EXPECT_EQ(monitor.expected(), 8);
  EXPECT_TRUE(monitor.notify_usage(8));
}

TEST_F(TriggerFixture, ArmZeroToolThrows) {
  TriggerMonitor monitor = make_monitor();
  EXPECT_THROW(monitor.arm(adl::kNoTool), std::invalid_argument);
}

TEST_F(TriggerFixture, DefaultTimeoutIsThirtySeconds) {
  // The paper's Figure 1 note: 30 s is the example waiting period.
  TriggerMonitor monitor = make_monitor();
  monitor.arm(7);  // no explicit timeout
  scheduler.run_until(TimePoint::from_seconds(29.0));
  EXPECT_TRUE(fired.empty());
  scheduler.run_until(TimePoint::from_seconds(31.0));
  EXPECT_EQ(fired.size(), 1u);
}

TEST_F(TriggerFixture, TimeoutForDerivesFromUsageStats) {
  // Footnote 1: the waiting period comes from the tool's usage statistics.
  adl::AdlLibrary library;
  TriggerMonitor monitor = make_monitor();
  const auto& brush = library.tools().at(adl::tools::kToothbrush);
  const auto& towel = library.tools().at(adl::tools::kTowel);
  EXPECT_GT(monitor.timeout_for(brush), monitor.timeout_for(towel));
  EXPECT_GT(monitor.timeout_for(towel), sim::Duration());
}

}  // namespace
}  // namespace coreda::reminding
