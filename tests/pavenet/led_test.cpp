#include "pavenet/led.hpp"

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"

namespace coreda::pavenet {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(LedTest, StartsOff) {
  sim::Scheduler s;
  Led led(s);
  EXPECT_FALSE(led.is_on(LedColor::kGreen));
  EXPECT_FALSE(led.is_on(LedColor::kRed));
}

TEST(LedTest, BlinkTurnsOnImmediately) {
  sim::Scheduler s;
  Led led(s);
  led.blink(LedColor::kGreen, 3);
  EXPECT_TRUE(led.is_on(LedColor::kGreen));
}

TEST(LedTest, CompletesRequestedCycles) {
  sim::Scheduler s;
  Led led(s);
  led.blink(LedColor::kGreen, 3, Duration::millis(100));
  s.run();
  EXPECT_FALSE(led.is_on(LedColor::kGreen));
  EXPECT_EQ(led.blink_count(LedColor::kGreen), 3u);
  // on/off transitions: 3 on + 3 off = 6 events
  EXPECT_EQ(led.history().size(), 6u);
}

TEST(LedTest, BlinkTimingMatchesHalfPeriod) {
  sim::Scheduler s;
  Led led(s);
  led.blink(LedColor::kRed, 2, Duration::millis(250));
  s.run();
  const auto& h = led.history();
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0].at, TimePoint::origin());
  EXPECT_EQ(h[1].at, TimePoint::origin() + Duration::millis(250));
  EXPECT_EQ(h[2].at, TimePoint::origin() + Duration::millis(500));
  EXPECT_EQ(h[3].at, TimePoint::origin() + Duration::millis(750));
  EXPECT_TRUE(h[0].on);
  EXPECT_FALSE(h[1].on);
  EXPECT_TRUE(h[2].on);
  EXPECT_FALSE(h[3].on);
}

TEST(LedTest, ZeroCountIsNoop) {
  sim::Scheduler s;
  Led led(s);
  led.blink(LedColor::kGreen, 0);
  s.run();
  EXPECT_TRUE(led.history().empty());
}

TEST(LedTest, NewCommandPreemptsOldSeries) {
  sim::Scheduler s;
  Led led(s);
  led.blink(LedColor::kGreen, 10, Duration::millis(100));
  s.run_until(TimePoint::origin() + Duration::millis(150));
  led.blink(LedColor::kRed, 1, Duration::millis(100));
  s.run();
  // The green series stopped early; red completed.
  EXPECT_FALSE(led.is_on(LedColor::kRed));
  EXPECT_EQ(led.blink_count(LedColor::kRed), 1u);
  EXPECT_LT(led.blink_count(LedColor::kGreen), 10u);
}

TEST(LedTest, AllOffCancelsAndExtinguishes) {
  sim::Scheduler s;
  Led led(s);
  led.blink(LedColor::kGreen, 5, Duration::millis(100));
  led.all_off();
  EXPECT_FALSE(led.is_on(LedColor::kGreen));
  const std::size_t events = led.history().size();
  s.run();
  EXPECT_EQ(led.history().size(), events);  // nothing fired afterwards
}

TEST(LedTest, IndependentColors) {
  sim::Scheduler s;
  Led led(s);
  led.blink(LedColor::kGreen, 1, Duration::millis(100));
  EXPECT_TRUE(led.is_on(LedColor::kGreen));
  EXPECT_FALSE(led.is_on(LedColor::kRed));
}

TEST(LedTest, ClearHistory) {
  sim::Scheduler s;
  Led led(s);
  led.blink(LedColor::kGreen, 1, Duration::millis(10));
  s.run();
  led.clear_history();
  EXPECT_TRUE(led.history().empty());
}

}  // namespace
}  // namespace coreda::pavenet
