#include "pavenet/detector.hpp"

#include <gtest/gtest.h>

namespace coreda::pavenet {
namespace {

TEST(ThresholdDetectorTest, VotePassesWithEnoughHits) {
  ThresholdDetector det(0.5, 10, 3);
  bool decided = false;
  for (int i = 0; i < 10; ++i) {
    decided = det.add_sample(i < 3 ? 1.0 : 0.0);
  }
  EXPECT_TRUE(decided);
}

TEST(ThresholdDetectorTest, VoteFailsBelowThresholdCount) {
  ThresholdDetector det(0.5, 10, 3);
  bool decided = false;
  for (int i = 0; i < 10; ++i) {
    decided = det.add_sample(i < 2 ? 1.0 : 0.0);
  }
  EXPECT_FALSE(decided);
}

TEST(ThresholdDetectorTest, DecisionOnlyAtWindowBoundary) {
  ThresholdDetector det(0.5, 10, 3);
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(det.add_sample(1.0));  // all hits, but window incomplete
  }
  EXPECT_TRUE(det.add_sample(1.0));
}

TEST(ThresholdDetectorTest, WindowResetsAfterDecision) {
  ThresholdDetector det(0.5, 10, 3);
  for (int i = 0; i < 10; ++i) det.add_sample(1.0);
  EXPECT_EQ(det.samples_in_window(), 0u);
  EXPECT_EQ(det.pending_hits(), 0u);
}

TEST(ThresholdDetectorTest, ExactThresholdIsNotAHit) {
  ThresholdDetector det(0.5, 10, 1);
  bool decided = false;
  for (int i = 0; i < 10; ++i) decided = det.add_sample(0.5);
  EXPECT_FALSE(decided);  // strict > comparison
}

TEST(ThresholdDetectorTest, SingleBumpRejected) {
  // The paper's motivation: an accidental knock produces one or two hot
  // samples, which the 3-of-10 vote must reject.
  ThresholdDetector det(0.5, 10, 3);
  bool decided = false;
  for (int i = 0; i < 10; ++i) {
    decided = det.add_sample(i == 4 ? 5.0 : 0.1);
  }
  EXPECT_FALSE(decided);
}

TEST(ThresholdDetectorTest, ResetDropsPartialWindow) {
  ThresholdDetector det(0.5, 10, 3);
  for (int i = 0; i < 5; ++i) det.add_sample(1.0);
  det.reset();
  EXPECT_EQ(det.samples_in_window(), 0u);
  bool decided = false;
  for (int i = 0; i < 10; ++i) decided = det.add_sample(0.0);
  EXPECT_FALSE(decided);
}

TEST(ThresholdDetectorTest, ConfigurableWindowAndVotes) {
  ThresholdDetector det(0.5, 4, 4);
  EXPECT_FALSE(det.add_sample(1.0));
  EXPECT_FALSE(det.add_sample(1.0));
  EXPECT_FALSE(det.add_sample(1.0));
  EXPECT_TRUE(det.add_sample(1.0));
}

TEST(ThresholdDetectorTest, InvalidConfigThrows) {
  EXPECT_THROW(ThresholdDetector(0.5, 0, 1), std::invalid_argument);
  EXPECT_THROW(ThresholdDetector(0.5, 10, 0), std::invalid_argument);
  EXPECT_THROW(ThresholdDetector(0.5, 10, 11), std::invalid_argument);
}

TEST(ThresholdDetectorTest, AccessorsReflectConfig) {
  ThresholdDetector det(0.42, 8, 2);
  EXPECT_DOUBLE_EQ(det.threshold(), 0.42);
  EXPECT_EQ(det.window(), 8u);
  EXPECT_EQ(det.votes_needed(), 2u);
}

}  // namespace
}  // namespace coreda::pavenet
