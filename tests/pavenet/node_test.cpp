#include "pavenet/node.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "pavenet/base_station.hpp"
#include "sim/scheduler.hpp"

namespace coreda::pavenet {
namespace {

using sim::Duration;
using sim::TimePoint;

struct NodeFixture : ::testing::Test {
  adl::AdlLibrary library;
  sim::Scheduler scheduler;
  sensors::ManipulationWorld world;
  RadioChannel channel{scheduler, util::Rng(1)};
  std::vector<Packet> uplink;

  NodeFixture() {
    channel.attach_receiver(
        0, [this](const Packet& p) { uplink.push_back(p); });
  }

  PavenetNode make_node(adl::ToolId tool) {
    return PavenetNode(library.tools().at(tool), scheduler, world, channel,
                       util::Rng(7));
  }
};

TEST_F(NodeFixture, IdleNodeStaysSilent) {
  PavenetNode node = make_node(adl::tools::kKettle);
  node.power_on();
  scheduler.run_until(TimePoint::from_seconds(20.0));
  EXPECT_TRUE(uplink.empty());
  EXPECT_EQ(node.announcements(), 0u);
}

TEST_F(NodeFixture, ManipulationTriggersAnnouncement) {
  PavenetNode node = make_node(adl::tools::kKettle);
  node.power_on();
  world.begin(adl::tools::kKettle, TimePoint::from_seconds(2.0),
              Duration::seconds(6.0));
  scheduler.run_until(TimePoint::from_seconds(12.0));
  ASSERT_FALSE(uplink.empty());
  EXPECT_EQ(uplink[0].source_uid, adl::tools::kKettle);
  EXPECT_EQ(uplink[0].kind, Packet::Kind::kToolUsage);
  EXPECT_GE(node.eeprom().size(), 1u);
}

TEST_F(NodeFixture, PowerOffStopsSampling) {
  PavenetNode node = make_node(adl::tools::kKettle);
  node.power_on();
  node.power_off();
  world.begin(adl::tools::kKettle, TimePoint::from_seconds(1.0),
              Duration::seconds(6.0));
  scheduler.run_until(TimePoint::from_seconds(10.0));
  EXPECT_TRUE(uplink.empty());
}

TEST_F(NodeFixture, PowerOnIsIdempotent) {
  PavenetNode node = make_node(adl::tools::kKettle);
  node.power_on();
  node.power_on();  // must not double the tick rate
  world.begin(adl::tools::kKettle, TimePoint::from_seconds(1.0),
              Duration::seconds(3.0));
  scheduler.run_until(TimePoint::from_seconds(6.0));
  // One manipulation: announcements throttled to ~1/second of usage.
  EXPECT_LE(node.announcements(), 4u);
}

TEST_F(NodeFixture, ReannounceThrottled) {
  PavenetNode node = make_node(adl::tools::kToothbrush);
  node.power_on();
  // A long vigorous manipulation: every window votes yes, but announcements
  // are rate-limited to one per reannounce_interval (1 s default).
  world.begin(adl::tools::kToothbrush, TimePoint::from_seconds(1.0),
              Duration::seconds(10.0));
  scheduler.run_until(TimePoint::from_seconds(15.0));
  EXPECT_LE(node.announcements(), 11u);
  EXPECT_GE(node.announcements(), 8u);
}

TEST_F(NodeFixture, DownlinkLedCommandBlinksGreen) {
  PavenetNode node = make_node(adl::tools::kTeaCup);
  node.power_on();
  Packet cmd;
  cmd.kind = Packet::Kind::kLedCommand;
  cmd.dest_uid = adl::tools::kTeaCup;
  cmd.led_color = LedColor::kGreen;
  cmd.blink_count = 3;
  channel.transmit(cmd);
  scheduler.run_until(TimePoint::from_seconds(5.0));
  EXPECT_EQ(node.led().blink_count(LedColor::kGreen), 3u);
}

TEST_F(NodeFixture, DownlinkZeroBlinksTurnsOff) {
  PavenetNode node = make_node(adl::tools::kTeaCup);
  node.power_on();
  node.led().blink(LedColor::kRed, 100);
  Packet cmd;
  cmd.kind = Packet::Kind::kLedCommand;
  cmd.dest_uid = adl::tools::kTeaCup;
  cmd.blink_count = 0;
  channel.transmit(cmd);
  scheduler.run_until(TimePoint::from_seconds(1.0));
  EXPECT_FALSE(node.led().is_on(LedColor::kRed));
}

TEST_F(NodeFixture, UsesRecommendedThresholdByDefault) {
  PavenetNode accel_node = make_node(adl::tools::kKettle);
  EXPECT_DOUBLE_EQ(accel_node.threshold(), 0.30);
  PavenetNode pressure_node = make_node(adl::tools::kElectricPot);
  EXPECT_DOUBLE_EQ(pressure_node.threshold(), 0.25);
}

TEST_F(NodeFixture, ExplicitThresholdOverrides) {
  FirmwareConfig config;
  config.excitation_threshold = 0.77;
  PavenetNode node(library.tools().at(adl::tools::kKettle), scheduler, world,
                   channel, util::Rng(7), config);
  EXPECT_DOUBLE_EQ(node.threshold(), 0.77);
}

TEST(NodeBatchingTest, BatchedSamplingMatchesPerTickBitExactly) {
  // The batched firmware task is a pure scheduling optimization: every
  // sampled value, EEPROM record, and announcement must be identical to the
  // literal per-tick loop, including partial windows flushed at power_off.
  adl::AdlLibrary library;
  struct Observed {
    std::uint64_t samples;
    std::uint64_t announcements;
    std::size_t uplink;
    std::vector<std::pair<std::int64_t, int>> records;
    bool operator==(const Observed&) const = default;
  };
  auto run_one = [&](bool batch) {
    sim::Scheduler scheduler;
    sensors::ManipulationWorld world;
    RadioChannel channel{scheduler, util::Rng(1)};
    std::size_t uplink = 0;
    channel.attach_receiver(0, [&](const Packet&) { ++uplink; });
    FirmwareConfig config;
    config.batch_sampling = batch;
    PavenetNode node(library.tools().at(adl::tools::kKettle), scheduler, world,
                     channel, util::Rng(7), config);
    node.power_on();
    // Episodes that start, truncate, and restart mid-window.
    scheduler.schedule_at(TimePoint::from_seconds(1.23), [&] {
      world.begin(adl::tools::kKettle, scheduler.now(), Duration::seconds(4.0));
    });
    scheduler.schedule_at(TimePoint::from_seconds(3.07), [&] {
      world.end(adl::tools::kKettle, scheduler.now());
    });
    scheduler.schedule_at(TimePoint::from_seconds(3.55), [&] {
      world.begin(adl::tools::kKettle, scheduler.now(), Duration::seconds(5.0));
    });
    scheduler.run_until(TimePoint::from_seconds(9.35));  // mid-window stop
    node.power_off();
    Observed obs{node.samples(), node.announcements(), uplink, {}};
    for (const EepromRecord& r : node.eeprom().dump()) {
      obs.records.emplace_back(r.at.total_micros(), r.hits);
    }
    return obs;
  };
  const Observed per_tick = run_one(false);
  const Observed batched = run_one(true);
  EXPECT_EQ(per_tick.samples, 93u);  // 9.35 s at 10 Hz, flushed to the tick
  EXPECT_GT(per_tick.records.size(), 0u);
  EXPECT_TRUE(per_tick == batched);
}

TEST_F(NodeFixture, UidMatchesTool) {
  PavenetNode node = make_node(adl::tools::kTeaBox);
  EXPECT_EQ(node.uid(), adl::tools::kTeaBox);
  EXPECT_EQ(node.tool().name, "tea box");
}

}  // namespace
}  // namespace coreda::pavenet
