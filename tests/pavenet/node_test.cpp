#include "pavenet/node.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "pavenet/base_station.hpp"
#include "sim/scheduler.hpp"

namespace coreda::pavenet {
namespace {

using sim::Duration;
using sim::TimePoint;

struct NodeFixture : ::testing::Test {
  adl::AdlLibrary library;
  sim::Scheduler scheduler;
  sensors::ManipulationWorld world;
  RadioChannel channel{scheduler, util::Rng(1)};
  std::vector<Packet> uplink;

  NodeFixture() {
    channel.attach_receiver(
        0, [this](const Packet& p) { uplink.push_back(p); });
  }

  PavenetNode make_node(adl::ToolId tool) {
    return PavenetNode(library.tools().at(tool), scheduler, world, channel,
                       util::Rng(7));
  }
};

TEST_F(NodeFixture, IdleNodeStaysSilent) {
  PavenetNode node = make_node(adl::tools::kKettle);
  node.power_on();
  scheduler.run_until(TimePoint::from_seconds(20.0));
  EXPECT_TRUE(uplink.empty());
  EXPECT_EQ(node.announcements(), 0u);
}

TEST_F(NodeFixture, ManipulationTriggersAnnouncement) {
  PavenetNode node = make_node(adl::tools::kKettle);
  node.power_on();
  world.begin(adl::tools::kKettle, TimePoint::from_seconds(2.0),
              Duration::seconds(6.0));
  scheduler.run_until(TimePoint::from_seconds(12.0));
  ASSERT_FALSE(uplink.empty());
  EXPECT_EQ(uplink[0].source_uid, adl::tools::kKettle);
  EXPECT_EQ(uplink[0].kind, Packet::Kind::kToolUsage);
  EXPECT_GE(node.eeprom().size(), 1u);
}

TEST_F(NodeFixture, PowerOffStopsSampling) {
  PavenetNode node = make_node(adl::tools::kKettle);
  node.power_on();
  node.power_off();
  world.begin(adl::tools::kKettle, TimePoint::from_seconds(1.0),
              Duration::seconds(6.0));
  scheduler.run_until(TimePoint::from_seconds(10.0));
  EXPECT_TRUE(uplink.empty());
}

TEST_F(NodeFixture, PowerOnIsIdempotent) {
  PavenetNode node = make_node(adl::tools::kKettle);
  node.power_on();
  node.power_on();  // must not double the tick rate
  world.begin(adl::tools::kKettle, TimePoint::from_seconds(1.0),
              Duration::seconds(3.0));
  scheduler.run_until(TimePoint::from_seconds(6.0));
  // One manipulation: announcements throttled to ~1/second of usage.
  EXPECT_LE(node.announcements(), 4u);
}

TEST_F(NodeFixture, ReannounceThrottled) {
  PavenetNode node = make_node(adl::tools::kToothbrush);
  node.power_on();
  // A long vigorous manipulation: every window votes yes, but announcements
  // are rate-limited to one per reannounce_interval (1 s default).
  world.begin(adl::tools::kToothbrush, TimePoint::from_seconds(1.0),
              Duration::seconds(10.0));
  scheduler.run_until(TimePoint::from_seconds(15.0));
  EXPECT_LE(node.announcements(), 11u);
  EXPECT_GE(node.announcements(), 8u);
}

TEST_F(NodeFixture, DownlinkLedCommandBlinksGreen) {
  PavenetNode node = make_node(adl::tools::kTeaCup);
  node.power_on();
  Packet cmd;
  cmd.kind = Packet::Kind::kLedCommand;
  cmd.dest_uid = adl::tools::kTeaCup;
  cmd.led_color = LedColor::kGreen;
  cmd.blink_count = 3;
  channel.transmit(cmd);
  scheduler.run_until(TimePoint::from_seconds(5.0));
  EXPECT_EQ(node.led().blink_count(LedColor::kGreen), 3u);
}

TEST_F(NodeFixture, DownlinkZeroBlinksTurnsOff) {
  PavenetNode node = make_node(adl::tools::kTeaCup);
  node.power_on();
  node.led().blink(LedColor::kRed, 100);
  Packet cmd;
  cmd.kind = Packet::Kind::kLedCommand;
  cmd.dest_uid = adl::tools::kTeaCup;
  cmd.blink_count = 0;
  channel.transmit(cmd);
  scheduler.run_until(TimePoint::from_seconds(1.0));
  EXPECT_FALSE(node.led().is_on(LedColor::kRed));
}

TEST_F(NodeFixture, UsesRecommendedThresholdByDefault) {
  PavenetNode accel_node = make_node(adl::tools::kKettle);
  EXPECT_DOUBLE_EQ(accel_node.threshold(), 0.30);
  PavenetNode pressure_node = make_node(adl::tools::kElectricPot);
  EXPECT_DOUBLE_EQ(pressure_node.threshold(), 0.25);
}

TEST_F(NodeFixture, ExplicitThresholdOverrides) {
  FirmwareConfig config;
  config.excitation_threshold = 0.77;
  PavenetNode node(library.tools().at(adl::tools::kKettle), scheduler, world,
                   channel, util::Rng(7), config);
  EXPECT_DOUBLE_EQ(node.threshold(), 0.77);
}

TEST_F(NodeFixture, UidMatchesTool) {
  PavenetNode node = make_node(adl::tools::kTeaBox);
  EXPECT_EQ(node.uid(), adl::tools::kTeaBox);
  EXPECT_EQ(node.tool().name, "tea box");
}

}  // namespace
}  // namespace coreda::pavenet
