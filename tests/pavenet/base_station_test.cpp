#include "pavenet/base_station.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "sim/scheduler.hpp"

namespace coreda::pavenet {
namespace {

using sim::Duration;
using sim::TimePoint;

struct StationFixture : ::testing::Test {
  sim::Scheduler scheduler;
  RadioChannel channel{scheduler, util::Rng(3)};
  BaseStation station{scheduler, channel};
  std::vector<std::pair<adl::ToolId, TimePoint>> usages;
  // Listeners are non-owning FnRefs: the callable must outlive the station
  // hookup, so the fixture keeps it as a member.
  std::function<void(adl::ToolId, TimePoint)> record_usage =
      [this](adl::ToolId tool, TimePoint at) {
        usages.emplace_back(tool, at);
      };

  StationFixture() { station.add_listener(record_usage); }

  void announce(std::uint16_t uid, double at_seconds) {
    scheduler.schedule_at(TimePoint::from_seconds(at_seconds), [this, uid] {
      Packet p;
      p.kind = Packet::Kind::kToolUsage;
      p.source_uid = uid;
      p.dest_uid = 0;
      channel.transmit(p);
    });
  }
};

TEST_F(StationFixture, FirstAnnouncementOpensEpisode) {
  announce(7, 1.0);
  scheduler.run();
  ASSERT_EQ(usages.size(), 1u);
  EXPECT_EQ(usages[0].first, 7);
  EXPECT_EQ(station.episodes().size(), 1u);
  EXPECT_EQ(station.packets_received(), 1u);
}

TEST_F(StationFixture, BurstMergesIntoOneEpisode) {
  announce(7, 1.0);
  announce(7, 2.0);
  announce(7, 3.0);
  scheduler.run();
  EXPECT_EQ(usages.size(), 1u);
  ASSERT_EQ(station.episodes().size(), 1u);
  EXPECT_EQ(station.episodes()[0].reports, 3u);
}

TEST_F(StationFixture, SilenceGapOpensNewEpisode) {
  announce(7, 1.0);
  announce(7, 10.0);  // > 3 s default merge gap
  scheduler.run();
  EXPECT_EQ(usages.size(), 2u);
  EXPECT_EQ(station.episodes().size(), 2u);
}

TEST_F(StationFixture, DifferentToolsInterleave) {
  announce(7, 1.0);
  announce(8, 1.5);
  announce(7, 2.0);
  scheduler.run();
  // Tool 7's second report merges into its episode; tool 8 is separate.
  EXPECT_EQ(usages.size(), 2u);
  EXPECT_EQ(usages[0].first, 7);
  EXPECT_EQ(usages[1].first, 8);
}

TEST_F(StationFixture, CustomMergeGap) {
  BaseStation::Params params;
  params.merge_gap = Duration::seconds(0.5);
  BaseStation tight(scheduler, channel, params);
  int count = 0;
  auto bump = [&](adl::ToolId, TimePoint) { ++count; };
  tight.add_listener(bump);
  announce(9, 1.0);
  announce(9, 2.0);  // 1 s apart > 0.5 s gap -> two episodes
  scheduler.run();
  EXPECT_EQ(count, 2);
}

TEST_F(StationFixture, AnnouncementExactlyAtMergeGapMerges) {
  // Zero-latency channel so packets arrive exactly when announced and the
  // boundary lands dead-on: a report exactly merge_gap after the previous
  // one still MERGES (now - last_seen <= merge_gap); only exceeding the
  // gap opens a new episode.
  RadioChannel::Params radio;
  radio.latency = Duration();
  radio.latency_jitter = Duration();
  RadioChannel exact_channel(scheduler, util::Rng(5), radio);
  BaseStation exact(scheduler, exact_channel);  // default 3 s merge gap
  int count = 0;
  auto bump = [&](adl::ToolId, TimePoint) { ++count; };
  exact.add_listener(bump);
  auto send = [&](double at_seconds) {
    scheduler.schedule_at(TimePoint::from_seconds(at_seconds),
                          [&exact_channel] {
                            Packet p;
                            p.kind = Packet::Kind::kToolUsage;
                            p.source_uid = 7;
                            p.dest_uid = 0;
                            exact_channel.transmit(p);
                          });
  };
  send(1.0);
  send(4.0);       // exactly last_seen + 3 s: same episode
  send(7.000001);  // one microsecond past the gap: new episode
  scheduler.run();
  EXPECT_EQ(count, 2);
  ASSERT_EQ(exact.episodes().size(), 2u);
  EXPECT_EQ(exact.episodes()[0].reports, 2u);
  EXPECT_EQ(exact.episodes()[0].last_seen, TimePoint::from_seconds(4.0));
}

TEST_F(StationFixture, ResetUsageHistoryStartsFresh) {
  announce(7, 1.0);
  scheduler.run();
  ASSERT_EQ(usages.size(), 1u);
  station.reset_usage_history();
  EXPECT_TRUE(station.episodes().empty());
  // Within the merge gap of the pre-reset report, but the reset dropped the
  // open episode: the next report is a fresh usage edge, not a merge.
  announce(7, 1.5);
  scheduler.run();
  EXPECT_EQ(usages.size(), 2u);
  EXPECT_EQ(station.episodes().size(), 1u);
}

TEST_F(StationFixture, LedCommandGoesOut) {
  std::vector<Packet> node_rx;
  channel.attach_receiver(5,
                          [&](const Packet& p) { node_rx.push_back(p); });
  station.send_led_command(5, LedColor::kGreen, 3);
  scheduler.run();
  ASSERT_EQ(node_rx.size(), 1u);
  EXPECT_EQ(node_rx[0].kind, Packet::Kind::kLedCommand);
  EXPECT_EQ(node_rx[0].blink_count, 3);
}

TEST_F(StationFixture, IgnoresNonUsagePackets) {
  scheduler.schedule_at(TimePoint::from_seconds(1.0), [this] {
    Packet p;
    p.kind = Packet::Kind::kLedCommand;
    p.source_uid = 7;
    p.dest_uid = 0;
    channel.transmit(p);
  });
  scheduler.run();
  EXPECT_TRUE(usages.empty());
  EXPECT_EQ(station.packets_received(), 0u);
}

TEST_F(StationFixture, MultipleListenersAllNotified) {
  int second_count = 0;
  auto bump = [&](adl::ToolId, TimePoint) { ++second_count; };
  station.add_listener(bump);
  announce(7, 1.0);
  scheduler.run();
  EXPECT_EQ(usages.size(), 1u);
  EXPECT_EQ(second_count, 1);
}

TEST_F(StationFixture, EpisodeTimestampsTracked) {
  announce(7, 1.0);
  announce(7, 2.5);
  scheduler.run();
  const auto& ep = station.episodes()[0];
  EXPECT_NEAR(ep.first_seen.to_seconds(), 1.0, 0.05);
  EXPECT_NEAR(ep.last_seen.to_seconds(), 2.5, 0.05);
}

}  // namespace
}  // namespace coreda::pavenet
