#include "pavenet/base_station.hpp"

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"

namespace coreda::pavenet {
namespace {

using sim::Duration;
using sim::TimePoint;

struct StationFixture : ::testing::Test {
  sim::Scheduler scheduler;
  RadioChannel channel{scheduler, util::Rng(3)};
  BaseStation station{scheduler, channel};
  std::vector<std::pair<adl::ToolId, TimePoint>> usages;

  StationFixture() {
    station.add_listener([this](adl::ToolId tool, TimePoint at) {
      usages.emplace_back(tool, at);
    });
  }

  void announce(std::uint16_t uid, double at_seconds) {
    scheduler.schedule_at(TimePoint::from_seconds(at_seconds), [this, uid] {
      Packet p;
      p.kind = Packet::Kind::kToolUsage;
      p.source_uid = uid;
      p.dest_uid = 0;
      channel.transmit(p);
    });
  }
};

TEST_F(StationFixture, FirstAnnouncementOpensEpisode) {
  announce(7, 1.0);
  scheduler.run();
  ASSERT_EQ(usages.size(), 1u);
  EXPECT_EQ(usages[0].first, 7);
  EXPECT_EQ(station.episodes().size(), 1u);
  EXPECT_EQ(station.packets_received(), 1u);
}

TEST_F(StationFixture, BurstMergesIntoOneEpisode) {
  announce(7, 1.0);
  announce(7, 2.0);
  announce(7, 3.0);
  scheduler.run();
  EXPECT_EQ(usages.size(), 1u);
  ASSERT_EQ(station.episodes().size(), 1u);
  EXPECT_EQ(station.episodes()[0].reports, 3u);
}

TEST_F(StationFixture, SilenceGapOpensNewEpisode) {
  announce(7, 1.0);
  announce(7, 10.0);  // > 3 s default merge gap
  scheduler.run();
  EXPECT_EQ(usages.size(), 2u);
  EXPECT_EQ(station.episodes().size(), 2u);
}

TEST_F(StationFixture, DifferentToolsInterleave) {
  announce(7, 1.0);
  announce(8, 1.5);
  announce(7, 2.0);
  scheduler.run();
  // Tool 7's second report merges into its episode; tool 8 is separate.
  EXPECT_EQ(usages.size(), 2u);
  EXPECT_EQ(usages[0].first, 7);
  EXPECT_EQ(usages[1].first, 8);
}

TEST_F(StationFixture, CustomMergeGap) {
  BaseStation::Params params;
  params.merge_gap = Duration::seconds(0.5);
  BaseStation tight(scheduler, channel, params);
  int count = 0;
  tight.add_listener([&](adl::ToolId, TimePoint) { ++count; });
  announce(9, 1.0);
  announce(9, 2.0);  // 1 s apart > 0.5 s gap -> two episodes
  scheduler.run();
  EXPECT_EQ(count, 2);
}

TEST_F(StationFixture, LedCommandGoesOut) {
  std::vector<Packet> node_rx;
  channel.attach_receiver(5,
                          [&](const Packet& p) { node_rx.push_back(p); });
  station.send_led_command(5, LedColor::kGreen, 3);
  scheduler.run();
  ASSERT_EQ(node_rx.size(), 1u);
  EXPECT_EQ(node_rx[0].kind, Packet::Kind::kLedCommand);
  EXPECT_EQ(node_rx[0].blink_count, 3);
}

TEST_F(StationFixture, IgnoresNonUsagePackets) {
  scheduler.schedule_at(TimePoint::from_seconds(1.0), [this] {
    Packet p;
    p.kind = Packet::Kind::kLedCommand;
    p.source_uid = 7;
    p.dest_uid = 0;
    channel.transmit(p);
  });
  scheduler.run();
  EXPECT_TRUE(usages.empty());
  EXPECT_EQ(station.packets_received(), 0u);
}

TEST_F(StationFixture, MultipleListenersAllNotified) {
  int second_count = 0;
  station.add_listener([&](adl::ToolId, TimePoint) { ++second_count; });
  announce(7, 1.0);
  scheduler.run();
  EXPECT_EQ(usages.size(), 1u);
  EXPECT_EQ(second_count, 1);
}

TEST_F(StationFixture, EpisodeTimestampsTracked) {
  announce(7, 1.0);
  announce(7, 2.5);
  scheduler.run();
  const auto& ep = station.episodes()[0];
  EXPECT_NEAR(ep.first_seen.to_seconds(), 1.0, 0.05);
  EXPECT_NEAR(ep.last_seen.to_seconds(), 2.5, 0.05);
}

}  // namespace
}  // namespace coreda::pavenet
