#include "pavenet/calibration.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "pavenet/detector.hpp"
#include "trace/sensing_pipeline.hpp"

namespace coreda::pavenet {
namespace {

TEST(CalibrationTest, ThresholdAboveIdleNoise) {
  sensors::AccelerometerModel model;
  util::Rng rng(1);
  const CalibrationResult result = calibrate_threshold(model, rng);
  EXPECT_GT(result.threshold, result.idle_quantile);
  EXPECT_GT(result.idle_quantile, result.idle_mean);
  EXPECT_GT(result.idle_mean, 0.0);
}

TEST(CalibrationTest, NearRecommendedThresholdForAccelerometer) {
  // The hand-picked 0.30 of the sensor model and the derived threshold
  // must land in the same band — sanity that the defaults are coherent.
  sensors::AccelerometerModel model;
  util::Rng rng(2);
  const CalibrationResult result = calibrate_threshold(model, rng);
  EXPECT_GT(result.threshold, 0.1);
  EXPECT_LT(result.threshold, 0.6);
}

TEST(CalibrationTest, MarginMonotone) {
  util::Rng rng_a(3);
  util::Rng rng_b(3);
  sensors::PressureModel model_a;
  sensors::PressureModel model_b;
  CalibrationConfig tight;
  tight.margin = 1.2;
  CalibrationConfig loose;
  loose.margin = 2.5;
  const double low =
      calibrate_threshold(model_a, rng_a, tight).threshold;
  const double high =
      calibrate_threshold(model_b, rng_b, loose).threshold;
  EXPECT_LT(low, high);
}

TEST(CalibrationTest, InvalidConfigThrows) {
  sensors::AccelerometerModel model;
  util::Rng rng(4);
  CalibrationConfig bad;
  bad.idle_samples = 0;
  EXPECT_THROW(calibrate_threshold(model, rng, bad), std::invalid_argument);
  bad = CalibrationConfig{};
  bad.quantile = 0.0;
  EXPECT_THROW(calibrate_threshold(model, rng, bad), std::invalid_argument);
  bad = CalibrationConfig{};
  bad.margin = 0.0;
  EXPECT_THROW(calibrate_threshold(model, rng, bad), std::invalid_argument);
}

TEST(CalibrationTest, CalibratedNodeStillDetectsVigorousTools) {
  // End-to-end: use the auto-derived threshold in a firmware config and
  // check a strong tool still extracts reliably.
  adl::AdlLibrary library;
  sensors::AccelerometerModel probe;
  util::Rng rng(5);
  const double threshold = calibrate_threshold(probe, rng).threshold;

  trace::SensingPipeline::Params params;
  params.firmware.excitation_threshold = threshold;
  trace::SensingPipeline pipeline(library.tools(), {adl::tools::kKettle},
                                  6, params);
  int hits = 0;
  for (int i = 0; i < 60; ++i) {
    hits += pipeline.single_tool_trial(adl::tools::kKettle,
                                       sim::Duration::seconds(8.0));
  }
  EXPECT_GE(hits, 57);
}

TEST(CalibrationTest, CalibratedNodeRejectsIdleNoise) {
  adl::AdlLibrary library;
  sensors::AccelerometerModel probe;
  util::Rng rng(7);
  const double threshold = calibrate_threshold(probe, rng).threshold;

  trace::SensingPipeline::Params params;
  params.firmware.excitation_threshold = threshold;
  trace::SensingPipeline pipeline(library.tools(), {adl::tools::kKettle},
                                  8, params);
  // One hour-equivalent of idle time, scripted as a long "other tool"
  // manipulation far from the kettle's node.
  const trace::SensedResult result = pipeline.run(
      {patient::TimedStep{adl::tools::kTeaBox,
                          sim::Duration::minutes(20.0),
                          sim::Duration::seconds(5.0)}});
  std::size_t kettle_false = 0;
  for (adl::StepId s : result.extracted) {
    if (s == adl::tools::kKettle) ++kettle_false;
  }
  EXPECT_EQ(kettle_false, 0u);
}

}  // namespace
}  // namespace coreda::pavenet
