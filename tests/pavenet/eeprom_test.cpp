#include "pavenet/eeprom.hpp"

#include <gtest/gtest.h>

namespace coreda::pavenet {
namespace {

EepromRecord rec(std::uint16_t uid, std::int64_t us) {
  return EepromRecord{sim::TimePoint::from_micros(us), uid, 3};
}

TEST(EepromTest, CapacityFromBytes) {
  Eeprom e(16 * 1024);
  EXPECT_EQ(e.capacity_records(), 1024u);
}

TEST(EepromTest, TinyCapacityThrows) {
  EXPECT_THROW(Eeprom(8), std::invalid_argument);
}

TEST(EepromTest, EmptyState) {
  Eeprom e(1024);
  EXPECT_EQ(e.size(), 0u);
  EXPECT_FALSE(e.last().has_value());
  EXPECT_TRUE(e.dump().empty());
  EXPECT_FALSE(e.wrapped());
}

TEST(EepromTest, AppendAndDumpInOrder) {
  Eeprom e(1024);
  for (std::uint16_t i = 0; i < 5; ++i) e.append(rec(i, i * 10));
  const auto all = e.dump();
  ASSERT_EQ(all.size(), 5u);
  for (std::uint16_t i = 0; i < 5; ++i) {
    EXPECT_EQ(all[i].uid, i);
  }
  EXPECT_EQ(e.last()->uid, 4);
}

TEST(EepromTest, WrapsKeepingNewest) {
  Eeprom e(Eeprom::kRecordBytes * 4);  // capacity 4 records
  for (std::uint16_t i = 0; i < 10; ++i) e.append(rec(i, i));
  EXPECT_TRUE(e.wrapped());
  EXPECT_EQ(e.size(), 4u);
  const auto all = e.dump();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.front().uid, 6);
  EXPECT_EQ(all.back().uid, 9);
  EXPECT_EQ(e.total_writes(), 10u);
}

TEST(EepromTest, ExactCapacityNotWrapped) {
  Eeprom e(Eeprom::kRecordBytes * 4);
  for (std::uint16_t i = 0; i < 4; ++i) e.append(rec(i, i));
  EXPECT_FALSE(e.wrapped());
  EXPECT_EQ(e.dump().front().uid, 0);
}

TEST(EepromTest, RecordFieldsPreserved) {
  Eeprom e(1024);
  EepromRecord r;
  r.at = sim::TimePoint::from_seconds(12.5);
  r.uid = 42;
  r.hits = 7;
  e.append(r);
  const auto back = e.last();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->uid, 42);
  EXPECT_EQ(back->hits, 7);
  EXPECT_DOUBLE_EQ(back->at.to_seconds(), 12.5);
}

}  // namespace
}  // namespace coreda::pavenet
