#include "pavenet/energy.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "pavenet/base_station.hpp"
#include "sim/scheduler.hpp"

namespace coreda::pavenet {
namespace {

using sim::Duration;
using sim::TimePoint;

struct EnergyFixture : ::testing::Test {
  adl::AdlLibrary library;
  sim::Scheduler scheduler;
  sensors::ManipulationWorld world;
  RadioChannel channel{scheduler, util::Rng(1)};
  BaseStation station{scheduler, channel};
};

TEST_F(EnergyFixture, IdleNodeConsumesSamplingAndSleepOnly) {
  PavenetNode node(library.tools().at(adl::tools::kKettle), scheduler,
                   world, channel, util::Rng(2));
  node.power_on();
  scheduler.run_until(TimePoint::from_seconds(60.0));
  const EnergyReport report =
      estimate_energy(node, Duration::seconds(60.0));
  EXPECT_GT(report.sampling_j, 0.0);
  EXPECT_GT(report.sleep_j, 0.0);
  EXPECT_EQ(report.radio_j, 0.0);
  EXPECT_EQ(report.led_j, 0.0);
  EXPECT_NEAR(report.total_j(),
              report.sampling_j + report.sleep_j + report.eeprom_j, 1e-12);
}

TEST_F(EnergyFixture, SamplingCostMatchesRate) {
  PavenetNode node(library.tools().at(adl::tools::kKettle), scheduler,
                   world, channel, util::Rng(2));
  node.power_on();
  scheduler.run_until(TimePoint::from_seconds(100.0));
  // 10 Hz for 100 s = 1000 samples at 12 uJ plus 100 window votes.
  EXPECT_EQ(node.samples(), 1000u);
  const EnergyReport report =
      estimate_energy(node, Duration::seconds(100.0));
  EXPECT_NEAR(report.sampling_j, (1000 * 12.0 + 100 * 1.5) * 1e-6, 1e-9);
}

TEST_F(EnergyFixture, UsageAddsRadioAndEepromCost) {
  PavenetNode node(library.tools().at(adl::tools::kKettle), scheduler,
                   world, channel, util::Rng(2));
  node.power_on();
  world.begin(adl::tools::kKettle, TimePoint::from_seconds(5.0),
              Duration::seconds(10.0));
  scheduler.run_until(TimePoint::from_seconds(30.0));
  const EnergyReport report =
      estimate_energy(node, Duration::seconds(30.0));
  EXPECT_GT(report.radio_j, 0.0);
  EXPECT_GT(report.eeprom_j, 0.0);
}

TEST_F(EnergyFixture, LedBlinksCost) {
  PavenetNode node(library.tools().at(adl::tools::kKettle), scheduler,
                   world, channel, util::Rng(2));
  node.led().blink(LedColor::kGreen, 5, Duration::millis(50));
  scheduler.run();
  const EnergyReport report = estimate_energy(node, Duration::seconds(1.0));
  EXPECT_NEAR(report.led_j, 5 * 90.0 * 1e-6, 1e-9);
}

TEST_F(EnergyFixture, LifetimeProjectionScalesWithBattery) {
  PavenetNode node(library.tools().at(adl::tools::kKettle), scheduler,
                   world, channel, util::Rng(2));
  node.power_on();
  scheduler.run_until(TimePoint::from_seconds(600.0));
  const EnergyReport report =
      estimate_energy(node, Duration::seconds(600.0));
  const double small = report.projected_lifetime_days(
      3000.0, Duration::seconds(600.0));
  const double large = report.projected_lifetime_days(
      6000.0, Duration::seconds(600.0));
  EXPECT_GT(small, 0.0);
  EXPECT_NEAR(large, 2.0 * small, 1e-9);
}

TEST_F(EnergyFixture, ZeroWindowProjectionIsZero) {
  EnergyReport empty;
  EXPECT_EQ(empty.projected_lifetime_days(6000.0, Duration()), 0.0);
}

TEST_F(EnergyFixture, LowerSamplingRateSavesEnergy) {
  FirmwareConfig slow;
  slow.sampling_hz = 5;
  PavenetNode fast_node(library.tools().at(adl::tools::kKettle), scheduler,
                        world, channel, util::Rng(2));
  PavenetNode slow_node(library.tools().at(adl::tools::kTeaBox), scheduler,
                        world, channel, util::Rng(3), slow);
  fast_node.power_on();
  slow_node.power_on();
  scheduler.run_until(TimePoint::from_seconds(120.0));
  const EnergyReport fast =
      estimate_energy(fast_node, Duration::seconds(120.0));
  const EnergyReport slow_report =
      estimate_energy(slow_node, Duration::seconds(120.0));
  EXPECT_LT(slow_report.sampling_j, fast.sampling_j);
}

}  // namespace
}  // namespace coreda::pavenet
