#include "pavenet/radio.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"

namespace coreda::pavenet {
namespace {

using sim::Duration;
using sim::TimePoint;

Packet usage_packet(std::uint16_t from) {
  Packet p;
  p.kind = Packet::Kind::kToolUsage;
  p.source_uid = from;
  p.dest_uid = 0;
  return p;
}

TEST(RadioChannelTest, DeliversToRegisteredReceiver) {
  sim::Scheduler s;
  RadioChannel channel(s, util::Rng(1));
  std::vector<Packet> received;
  channel.attach_receiver(0, [&](const Packet& p) { received.push_back(p); });
  channel.transmit(usage_packet(7));
  s.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].source_uid, 7);
  EXPECT_EQ(channel.stats().delivered, 1u);
}

TEST(RadioChannelTest, DeliveryHasLatency) {
  sim::Scheduler s;
  RadioChannel::Params params;
  params.latency = Duration::millis(5);
  params.latency_jitter = Duration();
  RadioChannel channel(s, util::Rng(2), params);
  TimePoint delivered_at;
  channel.attach_receiver(0, [&](const Packet&) { delivered_at = s.now(); });
  channel.transmit(usage_packet(1));
  s.run();
  EXPECT_EQ(delivered_at, TimePoint::origin() + Duration::millis(5));
}

TEST(RadioChannelTest, UnknownDestinationCounted) {
  sim::Scheduler s;
  RadioChannel channel(s, util::Rng(3));
  Packet p = usage_packet(1);
  p.dest_uid = 99;
  channel.transmit(p);
  s.run();
  EXPECT_EQ(channel.stats().undeliverable, 1u);
  EXPECT_EQ(channel.stats().delivered, 0u);
}

TEST(RadioChannelTest, FullLossDropsEverything) {
  sim::Scheduler s;
  RadioChannel::Params params;
  params.loss_probability = 1.0;
  RadioChannel channel(s, util::Rng(4), params);
  int received = 0;
  channel.attach_receiver(0, [&](const Packet&) { ++received; });
  for (int i = 0; i < 20; ++i) channel.transmit(usage_packet(1));
  s.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(channel.stats().lost_noise, 20u);
  EXPECT_DOUBLE_EQ(channel.stats().delivery_ratio(), 0.0);
}

TEST(RadioChannelTest, PartialLossApproximatesRate) {
  sim::Scheduler s;
  RadioChannel::Params params;
  params.loss_probability = 0.3;
  params.model_collisions = false;
  RadioChannel channel(s, util::Rng(5), params);
  int received = 0;
  channel.attach_receiver(0, [&](const Packet&) { ++received; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    channel.transmit(usage_packet(1));
    s.run();  // drain so frames never collide
  }
  EXPECT_NEAR(static_cast<double>(received) / n, 0.7, 0.04);
}

TEST(RadioChannelTest, OverlappingTransmissionsCollide) {
  sim::Scheduler s;
  RadioChannel channel(s, util::Rng(6));
  int received = 0;
  channel.attach_receiver(0, [&](const Packet&) { ++received; });
  channel.transmit(usage_packet(1));
  channel.transmit(usage_packet(2));  // same instant: guaranteed overlap
  s.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(channel.stats().lost_collision, 2u);
}

TEST(RadioChannelTest, SpacedTransmissionsDoNotCollide) {
  sim::Scheduler s;
  RadioChannel channel(s, util::Rng(7));
  int received = 0;
  channel.attach_receiver(0, [&](const Packet&) { ++received; });
  channel.transmit(usage_packet(1));
  s.schedule_after(Duration::millis(100),
                   [&] { channel.transmit(usage_packet(2)); });
  s.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(channel.stats().lost_collision, 0u);
}

TEST(RadioChannelTest, CollisionsDisabledDeliversBoth) {
  sim::Scheduler s;
  RadioChannel::Params params;
  params.model_collisions = false;
  RadioChannel channel(s, util::Rng(8), params);
  int received = 0;
  channel.attach_receiver(0, [&](const Packet&) { ++received; });
  channel.transmit(usage_packet(1));
  channel.transmit(usage_packet(2));
  s.run();
  EXPECT_EQ(received, 2);
}

TEST(RadioChannelTest, SequenceNumbersIncrease) {
  sim::Scheduler s;
  RadioChannel channel(s, util::Rng(9));
  std::vector<std::uint64_t> seqs;
  channel.attach_receiver(0, [&](const Packet& p) { seqs.push_back(p.seq); });
  for (int i = 0; i < 3; ++i) {
    channel.transmit(usage_packet(1));
    s.run();
  }
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_LT(seqs[0], seqs[1]);
  EXPECT_LT(seqs[1], seqs[2]);
}

TEST(RadioChannelTest, ReceiverReplacement) {
  sim::Scheduler s;
  RadioChannel channel(s, util::Rng(10));
  int first = 0;
  int second = 0;
  channel.attach_receiver(0, [&](const Packet&) { ++first; });
  channel.attach_receiver(0, [&](const Packet&) { ++second; });
  channel.transmit(usage_packet(1));
  s.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(RadioChannelTest, LedCommandRoundTrip) {
  sim::Scheduler s;
  RadioChannel channel(s, util::Rng(11));
  Packet got;
  channel.attach_receiver(5, [&](const Packet& p) { got = p; });
  Packet cmd;
  cmd.kind = Packet::Kind::kLedCommand;
  cmd.source_uid = 0;
  cmd.dest_uid = 5;
  cmd.led_color = LedColor::kRed;
  cmd.blink_count = 8;
  channel.transmit(cmd);
  s.run();
  EXPECT_EQ(got.kind, Packet::Kind::kLedCommand);
  EXPECT_EQ(got.led_color, LedColor::kRed);
  EXPECT_EQ(got.blink_count, 8);
}

}  // namespace
}  // namespace coreda::pavenet
