// The flat user index under fault pressure. Two layers:
//
//   * UserIndex directly — the 7/8 load ceiling is a hard contract (put
//     throws std::length_error for a NEW key above it, updates always
//     succeed), duplicate registration is idempotent, and out-of-range
//     keys are rejected before they can alias the empty sentinel;
//   * SegmentStore — a crash/corruption storm across appends AND the
//     compactions they trigger must leave every committed chain loadable,
//     never grow the hot-path index slab (append uses the
//     allocation-free put), and keep enforcing the reserve_users()
//     ceiling afterwards.

#include "serve/user_index.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "serve/segment_store.hpp"
#include "util/rng.hpp"

namespace coreda::serve {
namespace {

namespace fs = std::filesystem;

TEST(UserIndex, SevenEighthsCeilingRejectsNewKeysButAcceptsUpdates) {
  UserIndex index;
  index.reserve(64);
  const std::size_t cap = index.capacity();
  const std::size_t limit = cap - cap / 8;  // the documented 7/8 ceiling
  ASSERT_GE(limit, 64u);

  for (std::uint64_t u = 0; u < limit; ++u) {
    index.put(u, UserIndex::Loc{1, static_cast<std::uint32_t>(u)});
  }
  EXPECT_EQ(index.size(), limit);

  // One more NEW key breaches the ceiling.
  EXPECT_THROW(index.put(limit, UserIndex::Loc{1, 0}), std::length_error);
  EXPECT_EQ(index.size(), limit);

  // Updates of resident keys still succeed at the ceiling — a full table
  // must never block the append hot path's in-place location flips.
  index.put(0, UserIndex::Loc{7, 42});
  UserIndex::Loc loc;
  ASSERT_TRUE(index.find(0, loc));
  EXPECT_EQ(loc.seg, 7u);
  EXPECT_EQ(loc.off8, 42u);
  EXPECT_EQ(index.size(), limit);

  // Every earlier key is still reachable after the robin-hood shuffling.
  for (std::uint64_t u = 1; u < limit; ++u) {
    ASSERT_TRUE(index.find(u, loc)) << u;
    EXPECT_EQ(loc.off8, static_cast<std::uint32_t>(u)) << u;
  }
}

TEST(UserIndex, DuplicateRegistrationIsIdempotentAndDeterministic) {
  UserIndex index;
  index.reserve(8);
  index.put(5, UserIndex::Loc{1, 10});
  index.put(5, UserIndex::Loc{2, 20});  // re-register: update, not insert
  EXPECT_EQ(index.size(), 1u);
  UserIndex::Loc loc;
  ASSERT_TRUE(index.find(5, loc));
  EXPECT_EQ(loc.seg, 2u);
  EXPECT_EQ(loc.off8, 20u);

  // put_grow shares the semantics: same key, still one entry.
  index.put_grow(5, UserIndex::Loc{3, 30});
  EXPECT_EQ(index.size(), 1u);
  ASSERT_TRUE(index.find(5, loc));
  EXPECT_EQ(loc.seg, 3u);

  std::size_t visited = 0;
  index.for_each([&](std::uint64_t user, UserIndex::Loc l) {
    ++visited;
    EXPECT_EQ(user, 5u);
    EXPECT_EQ(l.seg, 3u);
    EXPECT_EQ(l.off8, 30u);
  });
  EXPECT_EQ(visited, 1u);
}

TEST(UserIndex, RejectsKeysThatWouldAliasTheEmptySentinel) {
  UserIndex index;
  index.reserve(8);
  EXPECT_THROW(index.put(UserIndex::kMaxUsers, UserIndex::Loc{0, 0}),
               std::length_error);
  EXPECT_THROW(index.put(0, UserIndex::Loc{UserIndex::kMaxSegments, 0}),
               std::length_error);
  EXPECT_THROW(index.put(0, UserIndex::Loc{0, UserIndex::kMaxOff8}),
               std::length_error);
  EXPECT_EQ(index.size(), 0u);
}

TEST(UserIndex, PutGrowCarriesScanPathsPastAnyReserve) {
  UserIndex index;  // no reserve: the scan path cannot rely on one
  for (std::uint64_t u = 0; u < 1000; ++u) {
    index.put_grow(u, UserIndex::Loc{2, static_cast<std::uint32_t>(u)});
  }
  EXPECT_EQ(index.size(), 1000u);
  EXPECT_LE(index.size(), index.capacity() - index.capacity() / 8);
  UserIndex::Loc loc;
  for (std::uint64_t u = 0; u < 1000; ++u) {
    ASSERT_TRUE(index.find(u, loc)) << u;
    EXPECT_EQ(loc.off8, static_cast<std::uint32_t>(u)) << u;
  }
}

// ---------------------------------------------------------------------------
// SegmentStore: the index contract under injected crash-compactions.

struct UserIndexFaultsFixture : ::testing::Test {
  static constexpr std::size_t kStates = 6;
  static constexpr std::size_t kActions = 5;

  std::vector<adl::StepId> steps = [] {
    std::vector<adl::StepId> v(kStates);
    for (std::size_t i = 0; i < kStates; ++i) {
      v[i] = static_cast<adl::StepId>(i + 1);
    }
    return v;
  }();
  std::vector<adl::ToolId> tools = [] {
    std::vector<adl::ToolId> v(kActions);
    for (std::size_t i = 0; i < kActions; ++i) {
      v[i] = static_cast<adl::ToolId>(100 + i);
    }
    return v;
  }();

  std::string fresh_dir(const char* name) {
    const std::string dir = ::testing::TempDir() + "/coreda_uif_" + name;
    fs::remove_all(dir);
    return dir;
  }

  rl::QTable table(std::uint64_t seed) {
    rl::QTable q(kStates, kActions);
    util::Rng rng(seed);
    for (rl::StateId s = 0; s < kStates; ++s) {
      for (rl::ActionId a = 0; a < kActions; ++a) {
        q.set(s, a, rng.uniform(-1e3, 1e3));
      }
    }
    return q;
  }

  std::unique_ptr<SegmentStore> open(const SegmentStoreParams& p) {
    return std::make_unique<SegmentStore>(steps, tools, kStates, kActions, p);
  }

  static bool bit_equal(const rl::QTable& a, const rl::QTable& b) {
    for (rl::StateId s = 0; s < a.num_states(); ++s) {
      for (rl::ActionId act = 0; act < a.num_actions(); ++act) {
        if (a.get(s, act) != b.get(s, act)) return false;
      }
    }
    return true;
  }
};

TEST_F(UserIndexFaultsFixture, CeilingAndChainsSurviveCrashCompactionStorm) {
  const std::string dir = fresh_dir("storm");
  SegmentStoreParams p;
  p.dir = dir;
  p.writers = 2;
  p.segment_bytes = std::size_t{1} << 13;  // ~28 anchors: frequent rolls
  p.compact_min_records = 8;
  p.compact_dead_ratio = 0.3;
  p.rebase_every = 4;
  auto store = open(p);
  constexpr std::uint64_t kUsers = 32;
  store->reserve_users(kUsers);
  const std::size_t slab_after_reserve = store->index_slab_bytes();

  // Like every real soak, the plan is WINDOWED: chaos for eight epochs,
  // then silence. An unbounded window would livelock — fault decisions are
  // pure (user, version) hashes, so a compaction whose rebase of some user
  // deterministically crashes would crash again on every retry until that
  // user's version moves, which the crash itself prevents.
  constexpr std::uint64_t kChaosRounds = 8;
  constexpr std::uint64_t kRounds = 12;
  faults::FaultPlan plan;
  plan.seed = 99;
  plan.sites["segment_store.pre_publish"].rate = 0.15;
  plan.sites["segment_store.pre_publish"].epoch_end = kChaosRounds;
  plan.sites["segment_store.corrupt"].rate = 0.08;
  plan.sites["segment_store.corrupt"].epoch_end = kChaosRounds;
  faults::Injector injector(plan);
  store->attach_faults(injector);

  // Append storm: every crash (injected at the publish seam of appends and
  // of the compactions they trigger) aborts that one append; the user's
  // previous committed record must survive it.
  std::vector<std::uint64_t> committed(kUsers, 0);
  std::uint64_t crashes = 0;
  for (std::uint64_t round = 1; round <= kRounds; ++round) {
    for (std::uint64_t u = 0; u < kUsers; ++u) {
      try {
        store->append(u, table(round * 100 + u), round);
        committed[u] = round;
      } catch (const faults::InjectedCrash&) {
        ++crashes;
      }
      // Monotonicity after every single operation, crashed or not.
      ASSERT_EQ(store->latest_version(u).value_or(0), committed[u])
          << "round " << round << " user " << u;
    }
    injector.advance_epoch();
  }
  // The storm must actually have crashed appends, and once the window
  // closed the clean rounds' compactions (rebase_every=4 chains die
  // quickly at compact_dead_ratio=0.3) must have gone through.
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(store->compactions(), 0u);
  // Every user committed the final clean round.
  for (std::uint64_t u = 0; u < kUsers; ++u) {
    ASSERT_EQ(committed[u], kRounds) << u;
  }

  // The hot path never grew any lane's slab: appends go through the
  // allocation-free put(), and 32 reserved users stay under every ceiling.
  EXPECT_EQ(store->index_slab_bytes(), slab_after_reserve);

  // Every committed chain is loadable and bit-exact.
  rl::QTable q(kStates, kActions);
  for (std::uint64_t u = 0; u < kUsers; ++u) {
    ASSERT_EQ(store->load(u, q), std::optional<std::uint64_t>{committed[u]});
    EXPECT_TRUE(bit_equal(q, table(committed[u] * 100 + u))) << u;
  }

  // The reserve ceiling still holds after the storm.
  EXPECT_THROW(store->append(kUsers, table(1), 1), std::runtime_error);

  // A reopen (fresh index rebuilt by the scan) recovers the same view.
  store.reset();
  auto reopened = open(p);
  for (std::uint64_t u = 0; u < kUsers; ++u) {
    ASSERT_EQ(reopened->load(u, q), std::optional<std::uint64_t>{committed[u]})
        << u;
    EXPECT_TRUE(bit_equal(q, table(committed[u] * 100 + u))) << u;
  }
}

TEST_F(UserIndexFaultsFixture, ReRegisteringAUserKeepsOneIndexEntry) {
  const std::string dir = fresh_dir("reregister");
  SegmentStoreParams p;
  p.dir = dir;
  auto store = open(p);
  store->reserve_users(4);
  store->reserve_users(4);  // duplicate reserve is a no-op
  const std::size_t slab = store->index_slab_bytes();
  store->reserve_users(2);  // smaller reserve never shrinks
  EXPECT_EQ(store->index_slab_bytes(), slab);

  // Re-appending the same user updates its one location in place.
  store->append(1, table(1), 1);
  store->append(1, table(2), 2);
  store->append(1, table(3), 3);
  EXPECT_EQ(store->user_ids(), std::vector<std::uint64_t>{1});
  rl::QTable q(kStates, kActions);
  EXPECT_EQ(store->load(1, q), std::optional<std::uint64_t>{3});
  EXPECT_TRUE(bit_equal(q, table(3)));
}

}  // namespace
}  // namespace coreda::serve
