// The fault layer's own contract, before any component is wired to it:
//
//   * plans are data — text round-trips losslessly, parse errors carry
//     line numbers, standard_chaos windows every site to the chaos epochs;
//   * decisions are PURE functions of (plan seed, site name, user, tick):
//     same inputs fire identically in any call order and on any number of
//     sites, different seeds/names/streams decorrelate;
//   * the epoch window arms and disarms sites without touching their
//     streams — a windowed site fires the same schedule inside its window
//     whether or not other epochs were served around it;
//   * the crash seam keeps the legacy hook contract (hook first, then the
//     planned throw), corruption offsets sweep the record, stalls convert
//     to exact nanoseconds, and unattached sites are inert;
//   * the injector log is sorted, counted, and deterministic.

#include "faults/faults.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace coreda::faults {
namespace {

SiteConfig crash_cfg(double rate) {
  SiteConfig cfg;
  cfg.rate = rate;
  return cfg;
}

/// Collects the (user, tick) pairs a freshly-armed site fires on over a
/// users x ticks grid.
std::set<std::pair<std::uint64_t, std::uint64_t>> firing_set(
    const FaultPlan& plan, const std::string& site_name, std::uint64_t users,
    std::uint64_t ticks) {
  Injector injector(plan);
  Site site(site_name);
  injector.attach(site);
  std::set<std::pair<std::uint64_t, std::uint64_t>> fired;
  for (std::uint64_t u = 0; u < users; ++u) {
    for (std::uint64_t t = 0; t < ticks; ++t) {
      if (site.should_inject(u, t)) fired.insert({u, t});
    }
  }
  return fired;
}

TEST(FaultPlan, StandardChaosRoundTripsThroughText) {
  const FaultPlan plan = FaultPlan::standard_chaos(/*seed=*/42,
                                                   /*chaos_epochs=*/5);
  std::stringstream text;
  plan.save(text);
  const FaultPlan back = FaultPlan::parse(text);

  EXPECT_EQ(back.seed, plan.seed);
  ASSERT_EQ(back.sites.size(), plan.sites.size());
  for (const auto& [name, cfg] : plan.sites) {
    ASSERT_TRUE(back.sites.contains(name)) << name;
    const SiteConfig& b = back.sites.at(name);
    EXPECT_DOUBLE_EQ(b.rate, cfg.rate) << name;
    EXPECT_EQ(b.delay_us, cfg.delay_us) << name;
    EXPECT_EQ(b.epoch_begin, cfg.epoch_begin) << name;
    EXPECT_EQ(b.epoch_end, cfg.epoch_end) << name;
    EXPECT_DOUBLE_EQ(b.burst.p_enter, cfg.burst.p_enter) << name;
    EXPECT_DOUBLE_EQ(b.burst.p_exit, cfg.burst.p_exit) << name;
    EXPECT_DOUBLE_EQ(b.burst.loss_in_good, cfg.burst.loss_in_good) << name;
    EXPECT_DOUBLE_EQ(b.burst.loss_in_bad, cfg.burst.loss_in_bad) << name;
  }
}

TEST(FaultPlan, StandardChaosWindowsEverySiteToTheChaosEpochs) {
  const FaultPlan plan = FaultPlan::standard_chaos(1, 7);
  EXPECT_FALSE(plan.sites.empty());
  for (const auto& [name, cfg] : plan.sites) {
    EXPECT_EQ(cfg.epoch_begin, 0u) << name;
    EXPECT_EQ(cfg.epoch_end, 7u) << name;
    EXPECT_FALSE(cfg.trivial()) << name;
  }
}

TEST(FaultPlan, ParseRejectsGarbageWithLineNumbers) {
  {
    std::stringstream text("seed = 1\n[site a.b]\nrate = not-a-number\n");
    EXPECT_THROW(FaultPlan::parse(text), std::runtime_error);
  }
  {
    std::stringstream text("seed = 1\n[site a.b]\nbogus_key = 1\n");
    EXPECT_THROW(FaultPlan::parse(text), std::runtime_error);
  }
  {
    std::stringstream text("rate = 0.5\n");  // key outside a [site] block
    EXPECT_THROW(FaultPlan::parse(text), std::runtime_error);
  }
  {
    // The line number of the offending line is part of the message.
    std::stringstream text("seed = 1\n[site a.b]\nrate = x\n");
    try {
      FaultPlan::parse(text);
      FAIL() << "expected parse failure";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
          << e.what();
    }
  }
}

TEST(FaultPlan, ParseDiagnosticsUnchangedByPlanTextExtraction) {
  // The parser now delegates to util/plan_text; these messages predate the
  // extraction and are pinned byte-for-byte (replay scripts grep for them).
  const auto message = [](const std::string& plan) {
    std::stringstream text(plan);
    try {
      FaultPlan::parse(text);
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
    return std::string("<no throw>");
  };
  EXPECT_EQ(message("seed = 1\n[site a.b]\nrate = x\n"),
            "fault plan line 3: expected a number, got 'x'");
  EXPECT_EQ(message("seed = 1\n[site a.b]\ndelay_us = 1q\n"),
            "fault plan line 3: trailing junk in '1q'");
  EXPECT_EQ(message("[site a\n"), "fault plan line 1: unterminated section");
  EXPECT_EQ(message("[chunk a]\n"),
            "fault plan line 1: expected [site NAME], got [chunk a]");
  EXPECT_EQ(message("[site ]\n"),
            "fault plan line 1: expected [site NAME], got [site]");
  EXPECT_EQ(message("seed 1\n"),
            "fault plan line 1: expected key = value, got 'seed 1'");
  EXPECT_EQ(message("rate = 0.5\n"),
            "fault plan line 1: unknown top-level key 'rate'");
  EXPECT_EQ(message("seed = 1\n[site a.b]\nbogus = 1\n"),
            "fault plan line 3: unknown site key 'bogus'");
}

TEST(FaultPlan, ParseIgnoresCommentsAndBlankLines) {
  std::stringstream text(
      "# a comment\n"
      "seed = 9\n"
      "\n"
      "[site x.y]\n"
      "  rate = 0.25\n"
      "  delay_us = 40\n");
  const FaultPlan plan = FaultPlan::parse(text);
  EXPECT_EQ(plan.seed, 9u);
  ASSERT_TRUE(plan.sites.contains("x.y"));
  EXPECT_DOUBLE_EQ(plan.sites.at("x.y").rate, 0.25);
  EXPECT_EQ(plan.sites.at("x.y").delay_us, 40u);
}

TEST(Site, DecisionsArePureAndOrderIndependent) {
  FaultPlan plan;
  plan.seed = 77;
  plan.sites["seam"] = crash_cfg(0.2);

  const auto forward = firing_set(plan, "seam", 32, 64);
  EXPECT_FALSE(forward.empty());
  EXPECT_LT(forward.size(), 32u * 64u);

  // Same plan, reversed evaluation order, interleaved with decisions for a
  // second site: the firing set cannot move.
  Injector injector(plan);
  Site site("seam");
  Site other("other.seam");
  injector.attach(site);
  injector.attach(other);
  std::set<std::pair<std::uint64_t, std::uint64_t>> reversed;
  for (std::uint64_t u = 32; u-- > 0;) {
    for (std::uint64_t t = 64; t-- > 0;) {
      other.should_inject(t, u);  // must not perturb `site`'s stream
      if (site.should_inject(u, t)) reversed.insert({u, t});
    }
  }
  EXPECT_EQ(forward, reversed);
}

TEST(Site, StreamsSplitBySeedAndByName) {
  FaultPlan plan;
  plan.seed = 1;
  plan.sites["a"] = crash_cfg(0.3);
  plan.sites["b"] = crash_cfg(0.3);
  FaultPlan reseeded = plan;
  reseeded.seed = 2;

  const auto a1 = firing_set(plan, "a", 16, 64);
  const auto b1 = firing_set(plan, "b", 16, 64);
  const auto a2 = firing_set(reseeded, "a", 16, 64);
  EXPECT_NE(a1, b1);  // same seed, different site names
  EXPECT_NE(a1, a2);  // same site, different plan seeds
  EXPECT_EQ(a1, firing_set(plan, "a", 16, 64));  // and fully reproducible
}

TEST(Site, EpochWindowGatesWithoutShiftingTheSchedule) {
  FaultPlan windowed;
  windowed.seed = 5;
  windowed.sites["seam"] = crash_cfg(0.5);
  windowed.sites["seam"].epoch_begin = 1;
  windowed.sites["seam"].epoch_end = 2;

  Injector injector(windowed);
  Site site("seam");
  injector.attach(site);

  // Epoch 0: before the window — armed but silent.
  EXPECT_TRUE(site.armed());
  for (std::uint64_t t = 0; t < 100; ++t) {
    EXPECT_FALSE(site.should_inject(7, t));
  }
  EXPECT_EQ(site.injections(), 0u);

  // Epoch 1: inside the window the (user, tick) schedule fires.
  injector.advance_epoch();
  std::vector<std::uint64_t> fired_at;
  for (std::uint64_t t = 0; t < 100; ++t) {
    if (site.should_inject(7, t)) fired_at.push_back(t);
  }
  EXPECT_FALSE(fired_at.empty());

  // Epoch 2: past the window — silent again.
  injector.advance_epoch();
  for (std::uint64_t t = 0; t < 100; ++t) {
    EXPECT_FALSE(site.should_inject(7, t));
  }

  // The in-window schedule is the pure always-on schedule: the window only
  // gates, it never re-rolls.
  FaultPlan open_plan = windowed;
  open_plan.sites["seam"].epoch_begin = 0;
  open_plan.sites["seam"].epoch_end = SiteConfig{}.epoch_end;
  Injector open_injector(open_plan);
  Site open_site("seam");
  open_injector.attach(open_site);
  std::vector<std::uint64_t> always_fired;
  for (std::uint64_t t = 0; t < 100; ++t) {
    if (open_site.should_inject(7, t)) always_fired.push_back(t);
  }
  EXPECT_EQ(fired_at, always_fired);
}

TEST(Site, CrashPointRunsHookThenThrowsPlannedCrash) {
  FaultPlan plan;
  plan.seed = 3;
  plan.sites["seam"] = crash_cfg(1.0);  // every evaluation fires
  Injector injector(plan);
  Site site("seam");
  injector.attach(site);

  int hook_calls = 0;
  site.set_hook([&](const std::string& detail) {
    ++hook_calls;
    EXPECT_EQ(detail, "path");
  });
  EXPECT_TRUE(site.has_hook());
  EXPECT_THROW(site.crash_point(0, 0, "path"), InjectedCrash);
  EXPECT_EQ(hook_calls, 1);

  // A throwing hook preserves the legacy pre-publish contract: its
  // exception wins (the planned decision is never reached).
  site.set_hook([](const std::string&) { throw std::logic_error("legacy"); });
  EXPECT_THROW(site.crash_point(0, 1, "path"), std::logic_error);
}

TEST(Site, CorruptOffsetSweepsTheRecord) {
  FaultPlan plan;
  plan.seed = 11;
  plan.sites["seam"] = crash_cfg(1.0);
  Injector injector(plan);
  Site site("seam");
  injector.attach(site);

  constexpr std::size_t kLen = 37;
  std::set<std::size_t> offsets;
  for (std::uint64_t t = 0; t < 200; ++t) {
    const std::size_t off = site.corrupt_offset(/*user=*/1, t, kLen);
    ASSERT_NE(off, Site::kNoCorruption);
    ASSERT_LT(off, kLen);
    offsets.insert(off);
  }
  // The sampled sweep walks the record: 200 draws over 37 offsets must
  // cover most of it (policy_fuzz_test's every-offset sweep, online).
  EXPECT_GT(offsets.size(), kLen / 2);
}

TEST(Site, StallConvertsDelayAndRespectsRate) {
  FaultPlan plan;
  plan.seed = 4;
  plan.sites["always"] = crash_cfg(1.0);
  plan.sites["always"].delay_us = 200;
  plan.sites["never"] = crash_cfg(0.0);
  plan.sites["never"].delay_us = 200;
  // delay_us alone arms the site, but a zero rate means no stall ever fires.
  Injector injector(plan);
  Site always("always");
  Site never("never");
  injector.attach(always);
  injector.attach(never);
  EXPECT_EQ(always.stall_ns(0, 0), 200'000u);
  EXPECT_EQ(never.stall_ns(0, 0), 0u);
}

TEST(Site, UnattachedSiteIsInert) {
  Site site("floating");
  EXPECT_FALSE(site.armed());
  EXPECT_FALSE(site.should_inject(0, 0));
  EXPECT_EQ(site.corrupt_offset(0, 0, 64), Site::kNoCorruption);
  EXPECT_EQ(site.stall_ns(0, 0), 0u);
  int hook_calls = 0;
  site.set_hook([&](const std::string&) { ++hook_calls; });
  site.crash_point(0, 0, "detail");  // hook still runs, nothing throws
  EXPECT_EQ(hook_calls, 1);
}

TEST(Site, PlanWithoutEntryLeavesSiteDisarmed) {
  FaultPlan plan;
  plan.seed = 8;
  plan.sites["present"] = crash_cfg(0.5);
  Injector injector(plan);
  Site absent("absent");
  injector.attach(absent);
  EXPECT_FALSE(absent.armed());
  EXPECT_FALSE(absent.should_inject(0, 0));
}

TEST(BurstState, ChainsAreDeterministicPerLane) {
  FaultPlan plan;
  plan.seed = 21;
  SiteConfig cfg;
  cfg.burst = BurstConfig{0.1, 0.3, 0.01, 0.9};
  plan.sites["radio"] = cfg;

  const auto drops_for = [&plan](std::uint64_t lane) {
    Injector injector(plan);
    Site site("radio");
    injector.attach(site);
    BurstState chain;
    chain.arm(site, lane);
    std::vector<bool> drops;
    for (int f = 0; f < 500; ++f) drops.push_back(chain.drop_frame());
    return drops;
  };

  const std::vector<bool> lane0 = drops_for(0);
  EXPECT_EQ(lane0, drops_for(0));  // replay is exact
  EXPECT_NE(lane0, drops_for(1));  // lanes decorrelate
  std::size_t dropped = 0;
  for (const bool d : lane0) dropped += d ? 1 : 0;
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(dropped, lane0.size());
}

TEST(Injector, LogIsSortedCountedAndRendered) {
  FaultPlan plan;
  plan.seed = 6;
  plan.sites["b.seam"] = crash_cfg(1.0);
  plan.sites["a.seam"] = crash_cfg(0.0);  // trivial: stays disarmed
  Injector injector(plan);
  Site b("b.seam");
  Site a("a.seam");
  injector.attach(b);
  injector.attach(a);

  for (std::uint64_t t = 0; t < 10; ++t) b.should_inject(0, t);

  const std::vector<Injector::SiteLog> log = injector.log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].name, "a.seam");
  EXPECT_FALSE(log[0].armed);
  EXPECT_EQ(log[1].name, "b.seam");
  EXPECT_TRUE(log[1].armed);
  EXPECT_EQ(log[1].evaluations, 10u);
  EXPECT_EQ(log[1].injections, 10u);

  std::ostringstream out;
  injector.report(out);
  EXPECT_NE(out.str().find("b.seam"), std::string::npos);
  EXPECT_NE(out.str().find("10"), std::string::npos);
}

}  // namespace
}  // namespace coreda::faults
