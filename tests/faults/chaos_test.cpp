// The chaos-soak harnesses at test scale: a small fleet and a small serve
// loop under FaultPlan::standard_chaos must (a) actually get hurt — crash
// seams fire, records are corrupted, sessions are dropped — (b) hold every
// crash-consistency invariant the bench exact-gates at 0, and (c) produce
// byte-identical results at any TrialRunner job count, which is what makes
// `coreda faults replay --seed=S` a real debugging tool.

#include "serve/chaos.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <numeric>
#include <string>

#include "exec/trial_runner.hpp"
#include "faults/faults.hpp"

namespace coreda::serve {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/coreda_chaos_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ChaosFleetParams small_fleet(const std::string& dir) {
  ChaosFleetParams p;
  p.users = 96;
  p.active = 48;
  p.chaos_rounds = 3;
  p.tail_rounds = 1;
  p.shards = 4;
  p.slots_per_shard = 2;
  p.dir = dir;
  return p;
}

ChaosServeParams small_serve(const std::string& dir) {
  ChaosServeParams p;
  p.users = 12;
  p.drifted = 3;
  p.slots = 4;
  p.chaos_rounds = 3;
  p.tail_rounds = 6;
  p.burst = 2;
  p.dir = dir;
  return p;
}

std::uint64_t total_injections(const faults::Injector& injector) {
  std::uint64_t total = 0;
  for (const auto& entry : injector.log()) total += entry.injections;
  return total;
}

void expect_same_rounds(const ChaosFleetResult& a, const ChaosFleetResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    const ChaosRoundStats& ra = a.rounds[i];
    const ChaosRoundStats& rb = b.rounds[i];
    EXPECT_EQ(ra.epoch, rb.epoch) << "round " << i;
    EXPECT_EQ(ra.sessions, rb.sessions) << "round " << i;
    EXPECT_EQ(ra.dropped, rb.dropped) << "round " << i;
    EXPECT_EQ(ra.crashed_appends, rb.crashed_appends) << "round " << i;
    EXPECT_EQ(ra.radio_lost, rb.radio_lost) << "round " << i;
    EXPECT_EQ(ra.committed_users, rb.committed_users) << "round " << i;
  }
}

TEST(ChaosFleetSoak, HoldsInvariantsWhileSeamsFire) {
  ChaosFleetSoak soak(small_fleet(fresh_dir("fleet_inv")),
                      faults::FaultPlan::standard_chaos(7, 3));
  exec::TrialRunner runner(2);
  const ChaosFleetResult result = soak.run(runner);

  // The soak must actually have injected faults: an accidentally inert
  // plan would make the invariant checks vacuous.
  EXPECT_GT(result.injected_crashes, 0u);
  EXPECT_GT(result.injected_corruptions, 0u);
  EXPECT_GT(result.report.dropped_sessions, 0u);
  EXPECT_GT(result.report.radio_lost_frames, 0u);

  // ... and every crash-consistency invariant must still hold.
  EXPECT_EQ(result.committed_versions_lost, 0u);
  EXPECT_EQ(result.reopen_mismatches, 0u);
  EXPECT_EQ(result.reopen_load_failures, 0u);
  EXPECT_EQ(result.invariant_violations, 0u);

  // Round log shape: one entry per round, epochs advancing from 0, the
  // session counter cumulative.
  ASSERT_EQ(result.rounds.size(), 4u);
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    EXPECT_EQ(result.rounds[i].epoch, i);
  }
  // Every enqueued session was either served or dropped by an injected
  // dropout; the final report additionally covers the steady-state probe's
  // sessions, so it can only be larger.
  EXPECT_EQ(result.rounds.back().sessions + result.report.dropped_sessions,
            4u * 48u);
  EXPECT_GE(result.report.sessions, result.rounds.back().sessions);

  // The tail round runs with every site's window closed: the cumulative
  // fault counters must not move after the last chaos round.
  const ChaosRoundStats& last_chaos = result.rounds[2];
  const ChaosRoundStats& tail = result.rounds[3];
  EXPECT_EQ(tail.dropped, last_chaos.dropped);
  EXPECT_EQ(tail.crashed_appends, last_chaos.crashed_appends);
  EXPECT_EQ(tail.radio_lost, last_chaos.radio_lost);

  // And with the window closed the fleet settles back onto the
  // steady-state serving path.
  EXPECT_LT(result.steady_state_allocs, 0.1);
}

TEST(ChaosFleetSoak, ResultIsIdenticalAtAnyJobCount) {
  const faults::FaultPlan plan = faults::FaultPlan::standard_chaos(21, 3);
  ChaosFleetSoak serial_soak(small_fleet(fresh_dir("fleet_j1")), plan);
  ChaosFleetSoak parallel_soak(small_fleet(fresh_dir("fleet_j3")), plan);
  exec::TrialRunner serial(1);
  exec::TrialRunner parallel(3);
  const ChaosFleetResult a = serial_soak.run(serial);
  const ChaosFleetResult b = parallel_soak.run(parallel);

  expect_same_rounds(a, b);
  EXPECT_EQ(a.invariant_violations, b.invariant_violations);
  EXPECT_EQ(a.injected_crashes, b.injected_crashes);
  EXPECT_EQ(a.injected_corruptions, b.injected_corruptions);
  EXPECT_EQ(a.report.sessions, b.report.sessions);
  EXPECT_EQ(a.report.dropped_sessions, b.report.dropped_sessions);
  EXPECT_EQ(a.report.crashed_appends, b.report.crashed_appends);
  EXPECT_EQ(a.report.radio_lost_frames, b.report.radio_lost_frames);

  // The full injector logs agree site by site — the replay contract.
  const auto log_a = serial_soak.injector().log();
  const auto log_b = parallel_soak.injector().log();
  ASSERT_EQ(log_a.size(), log_b.size());
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].name, log_b[i].name);
    EXPECT_EQ(log_a[i].armed, log_b[i].armed);
    EXPECT_EQ(log_a[i].evaluations, log_b[i].evaluations) << log_a[i].name;
    EXPECT_EQ(log_a[i].injections, log_b[i].injections) << log_a[i].name;
  }
}

TEST(ChaosFleetSoak, DifferentSeedsInjectDifferentSchedules) {
  ChaosFleetSoak soak_a(small_fleet(fresh_dir("fleet_s1")),
                        faults::FaultPlan::standard_chaos(1, 3));
  ChaosFleetSoak soak_b(small_fleet(fresh_dir("fleet_s2")),
                        faults::FaultPlan::standard_chaos(2, 3));
  exec::TrialRunner runner(2);
  const ChaosFleetResult a = soak_a.run(runner);
  const ChaosFleetResult b = soak_b.run(runner);
  EXPECT_EQ(a.invariant_violations, 0u);
  EXPECT_EQ(b.invariant_violations, 0u);
  // Same plan shape, different seed: the schedules must decorrelate.
  EXPECT_NE(a.injected_crashes + a.report.dropped_sessions +
                a.report.radio_lost_frames,
            b.injected_crashes + b.report.dropped_sessions +
                b.report.radio_lost_frames);
}

TEST(ChaosServeSoak, EveryDriftedUserRecoversThroughFaults) {
  ChaosServeSoak soak(small_serve(fresh_dir("serve_inv")),
                      faults::FaultPlan::standard_chaos(7, 3));
  exec::TrialRunner runner(2);
  const ChaosServeResult result = soak.run(runner);

  EXPECT_GT(total_injections(soak.injector()), 0u);
  EXPECT_EQ(result.recovered_users, 3u);
  EXPECT_EQ(result.unrecovered_users, 0u);
  EXPECT_EQ(result.committed_versions_lost, 0u);
  EXPECT_EQ(result.reopen_mismatches, 0u);
  EXPECT_EQ(result.invariant_violations, 0u);
  EXPECT_GT(result.report.retrain.jobs, 0u);
}

TEST(ChaosServeSoak, ResultIsIdenticalAtAnyJobCount) {
  const faults::FaultPlan plan = faults::FaultPlan::standard_chaos(21, 3);
  ChaosServeSoak serial_soak(small_serve(fresh_dir("serve_j1")), plan);
  ChaosServeSoak parallel_soak(small_serve(fresh_dir("serve_j3")), plan);
  exec::TrialRunner serial(1);
  exec::TrialRunner parallel(3);
  const ChaosServeResult a = serial_soak.run(serial);
  const ChaosServeResult b = parallel_soak.run(parallel);

  EXPECT_EQ(a.recovered_users, b.recovered_users);
  EXPECT_EQ(a.unrecovered_users, b.unrecovered_users);
  EXPECT_EQ(a.recovery_sessions_max, b.recovery_sessions_max);
  EXPECT_EQ(a.invariant_violations, b.invariant_violations);
  EXPECT_EQ(a.aborted_retrains, b.aborted_retrains);
  EXPECT_EQ(a.crashed_stages, b.crashed_stages);
  EXPECT_EQ(a.report.sessions, b.report.sessions);
  EXPECT_EQ(a.report.retrain.jobs, b.report.retrain.jobs);

  const auto log_a = serial_soak.injector().log();
  const auto log_b = parallel_soak.injector().log();
  ASSERT_EQ(log_a.size(), log_b.size());
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].name, log_b[i].name);
    EXPECT_EQ(log_a[i].evaluations, log_b[i].evaluations) << log_a[i].name;
    EXPECT_EQ(log_a[i].injections, log_b[i].injections) << log_a[i].name;
  }
}

}  // namespace
}  // namespace coreda::serve
