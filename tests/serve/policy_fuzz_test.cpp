// Property tests for the v2 policy snapshot format and the PolicyStore's
// corruption handling:
//
//   * round-trip bit-fidelity over randomized tables — every finite f64
//     pattern (negative zero, denormals, huge magnitudes) survives
//     save -> load byte-for-byte, across table shapes from 1x1 to larger
//     than production;
//   * a crafted zero-dimension snapshot is rejected (QTable itself cannot
//     even represent it);
//   * the exhaustive corruption sweep: flipping one byte at EVERY offset of
//     a valid snapshot file makes PolicyStore::restore throw, and the
//     resident table is byte-unchanged after each rejected load. The
//     trailing FNV-1a checksum guarantees any single-byte flip is caught —
//     flips in the body change the digest, flips in the stored digest
//     mismatch the recomputed one.

#include "serve/policy_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "adl/library.hpp"
#include "planning/serialize.hpp"
#include "util/rng.hpp"

namespace coreda::serve {
namespace {

namespace fs = std::filesystem;

/// Bit-exact table comparison (operator== on doubles would conflate +0.0
/// with -0.0 and choke on any future NaN).
bool bit_equal(const rl::QTable& a, const rl::QTable& b) {
  if (a.num_states() != b.num_states() ||
      a.num_actions() != b.num_actions()) {
    return false;
  }
  for (rl::StateId s = 0; s < a.num_states(); ++s) {
    const std::span<const double> ra = a.row(s);
    const std::span<const double> rb = b.row(s);
    if (std::memcmp(ra.data(), rb.data(), ra.size_bytes()) != 0) {
      return false;
    }
  }
  return true;
}

/// Fills the table with adversarial finite doubles: mixed signs and
/// magnitudes, exact and negative zero, denormals, near-overflow values.
void randomize(rl::QTable& q, util::Rng& rng) {
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    for (rl::ActionId a = 0; a < q.num_actions(); ++a) {
      double v = 0.0;
      switch (static_cast<int>(rng.uniform() * 8.0)) {
        case 0: v = 0.0; break;
        case 1: v = -0.0; break;
        case 2: v = 5e-324; break;  // smallest denormal
        case 3: v = -4.9e-324; break;
        case 4: v = 1.7e308 * (rng.uniform() - 0.5); break;
        default: v = (rng.uniform() * 2.0 - 1.0) * 1e3; break;
      }
      q.set(s, a, v);
    }
  }
}

std::vector<adl::StepId> iota_steps(std::size_t n) {
  std::vector<adl::StepId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<adl::StepId>(i + 1);
  return v;
}

std::vector<adl::ToolId> iota_tools(std::size_t n) {
  std::vector<adl::ToolId> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<adl::ToolId>(100 + i);
  }
  return v;
}

TEST(PolicyFuzzTest, RoundTripIsBitExactAcrossShapesAndValuePatterns) {
  util::Rng rng(20260807);
  const struct { std::size_t states, actions; } shapes[] = {
      {1, 1}, {1, 7}, {9, 1}, {6, 5}, {40, 17}, {97, 31}};
  for (const auto& shape : shapes) {
    const std::vector<adl::StepId> steps = iota_steps(shape.states);
    const std::vector<adl::ToolId> tools = iota_tools(shape.actions);
    for (int trial = 0; trial < 8; ++trial) {
      rl::QTable q(shape.states, shape.actions);
      randomize(q, rng);

      std::ostringstream out(std::ios::binary);
      planning::save_policy_v2(out, steps, tools, q, /*version=*/trial + 1);
      const std::string bytes = out.str();

      rl::QTable restored(shape.states, shape.actions, /*initial=*/7.5);
      std::istringstream in(bytes, std::ios::binary);
      ASSERT_EQ(planning::load_policy_v2(in, steps, tools, restored),
                static_cast<std::uint64_t>(trial + 1))
          << shape.states << "x" << shape.actions << " trial " << trial;
      EXPECT_TRUE(bit_equal(q, restored))
          << shape.states << "x" << shape.actions << " trial " << trial;

      // Saving the restored table reproduces the original stream exactly —
      // round-tripping is idempotent at the byte level, not just value
      // level.
      std::ostringstream again(std::ios::binary);
      planning::save_policy_v2(again, steps, tools, restored, trial + 1);
      EXPECT_EQ(again.str(), bytes);
    }
  }
}

/// Appends a little-endian u64 (the v2 wire encoding).
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

TEST(PolicyFuzzTest, ZeroDimensionSnapshotIsRejected) {
  // A QTable cannot even be constructed with a zero dimension, so a
  // zero-dim snapshot can only come from a corrupted or hostile file —
  // craft one by hand, with a *correct* checksum, and make sure the loader
  // rejects the dimensions themselves.
  std::string bytes(planning::kPolicyV2Magic,
                    sizeof(planning::kPolicyV2Magic));
  put_u64(bytes, 3);  // version
  put_u64(bytes, 0);  // n_steps
  put_u64(bytes, 0);  // n_tools
  put_u64(bytes, 0);  // n_states
  put_u64(bytes, 0);  // n_actions
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a 64
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  put_u64(bytes, h);

  const std::vector<adl::StepId> steps = iota_steps(2);
  const std::vector<adl::ToolId> tools = iota_tools(2);
  rl::QTable victim(2, 2, 1.25);
  const rl::QTable before = victim;
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(planning::load_policy_v2(in, steps, tools, victim),
               std::runtime_error);
  EXPECT_TRUE(bit_equal(victim, before));
}

TEST(PolicyFuzzTest, EveryOneByteCorruptionIsRejectedAndTableUntouched) {
  adl::AdlLibrary library;
  planning::RoutineLearner donor(library.tea_making(), util::Rng(5));
  const std::vector<adl::StepId> routine{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  for (int i = 0; i < 40; ++i) donor.train_episode(routine);

  const std::string dir = ::testing::TempDir() + "/coreda_fuzz_sweep";
  fs::remove_all(dir);
  PolicyStoreParams params;
  params.dir = dir;
  params.flush_every = 1;
  PolicyStore store(donor, params);
  const UserId u = store.add_user("victim");
  store.stage(u, donor.q());  // flushes: version-2 snapshot on disk

  const std::string path = store.path_for(u);
  std::string valid;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf(std::ios::binary);
    buf << in.rdbuf();
    valid = buf.str();
  }
  ASSERT_GT(valid.size(), 48u);  // magic + header + some payload

  const rl::QTable resident_before = store.q(u);
  const std::uint64_t version_before = store.version(u);
  for (std::size_t offset = 0; offset < valid.size(); ++offset) {
    std::string corrupt = valid;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x5A);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << corrupt;
    }
    EXPECT_THROW(store.restore(u), std::runtime_error)
        << "offset " << offset << " of " << valid.size();
    EXPECT_TRUE(bit_equal(store.q(u), resident_before))
        << "offset " << offset;
    EXPECT_EQ(store.version(u), version_before) << "offset " << offset;
  }

  // Control: the uncorrupted file still restores, so the sweep failed on
  // the corruption and not on some unrelated I/O problem.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << valid;
  }
  EXPECT_EQ(store.restore(u), std::optional<std::uint64_t>{2});
}

}  // namespace
}  // namespace coreda::serve
