// SystemPool: checkout/residency accounting, policy import on swap,
// write-back versioning, and static user->slot sharding.

#include "serve/system_pool.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"

namespace coreda::serve {
namespace {

namespace T = adl::tools;

struct SystemPoolFixture : ::testing::Test {
  adl::AdlLibrary library;

  planning::RoutineLearner trained() {
    planning::RoutineLearner learner(library.tea_making(), util::Rng(5));
    const std::vector<adl::StepId> steps{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
    for (int i = 0; i < 80; ++i) learner.train_episode(steps);
    return learner;
  }

  patient::PatientProfile mild() {
    return patient::PatientProfile::with_severity("U", 0.2);
  }
};

TEST_F(SystemPoolFixture, ServesTenTimesMoreUsersThanSlots) {
  planning::RoutineLearner donor = trained();
  PolicyStore store(donor);
  SystemPoolParams params;
  params.slots = 2;
  SystemPool pool(library, library.tea_making(), store, params);
  for (int u = 0; u < 20; ++u) {
    store.add_user("U" + std::to_string(u));
  }

  const patient::PatientProfile profile = mild();
  core::SessionResult result;
  std::uint64_t completed = 0;
  for (int round = 0; round < 2; ++round) {
    for (UserId u = 0; u < 20; ++u) {
      pool.serve_session(u, profile, sim::Duration::minutes(15.0), {},
                         result);
      completed += result.completed;
    }
  }
  EXPECT_EQ(pool.sessions(), 40u);
  EXPECT_EQ(pool.hits() + pool.swaps(), 40u);
  // Round-robin across 10 tenants per slot: the resident never matches.
  EXPECT_EQ(pool.swaps(), 40u);
  EXPECT_GT(completed, 35u);  // converged policy: nearly all complete
  EXPECT_EQ(store.staged_writes(), 40u);  // every serve wrote back
}

TEST_F(SystemPoolFixture, ResidencySkipsTheImport) {
  planning::RoutineLearner donor = trained();
  PolicyStore store(donor);
  SystemPoolParams params;
  params.slots = 2;
  SystemPool pool(library, library.tea_making(), store, params);
  const UserId a = store.add_user("a");  // slot 0
  const UserId b = store.add_user("b");  // slot 1
  const UserId c = store.add_user("c");  // slot 0 again

  const patient::PatientProfile profile = mild();
  core::SessionResult result;
  pool.serve_session(a, profile, sim::Duration::minutes(15.0), {}, result);
  pool.serve_session(a, profile, sim::Duration::minutes(15.0), {}, result);
  pool.serve_session(b, profile, sim::Duration::minutes(15.0), {}, result);
  EXPECT_EQ(pool.swaps(), 2u);  // a's first serve + b's first serve
  EXPECT_EQ(pool.hits(), 1u);   // a's burst stayed resident
  EXPECT_EQ(pool.resident(0), a);
  EXPECT_EQ(pool.resident(1), b);

  pool.serve_session(c, profile, sim::Duration::minutes(15.0), {}, result);
  EXPECT_EQ(pool.resident(0), c);  // c evicted a from their shared slot
  EXPECT_EQ(pool.swaps(), 3u);
  EXPECT_EQ(pool.slot_sessions(0), 3u);
  EXPECT_EQ(pool.slot_sessions(1), 1u);
}

TEST_F(SystemPoolFixture, SwapImportsTheUsersLatestTable) {
  planning::RoutineLearner donor = trained();
  PolicyStore store(donor);
  SystemPoolParams params;
  params.slots = 1;
  SystemPool pool(library, library.tea_making(), store, params);

  // User "blank" carries an untrained table, user "expert" the donor's:
  // after serving each, the slot learner must hold exactly that table.
  planning::RoutineLearner blank(library.tea_making(), util::Rng(1));
  const UserId expert = store.add_user("expert", donor.q());
  const UserId untrained = store.add_user("blank", blank.q());

  const patient::PatientProfile profile = mild();
  core::SessionResult result;
  pool.serve_session(expert, profile, sim::Duration::minutes(15.0), {},
                     result);
  EXPECT_DOUBLE_EQ(pool.system(0).learner().greedy_accuracy(), 1.0);

  pool.serve_session(untrained, profile, sim::Duration::minutes(15.0), {},
                     result);
  // The untrained table predicts no better than chance; its greedy
  // accuracy over the optimistic-init table is well below converged.
  EXPECT_LT(pool.system(0).learner().greedy_accuracy(), 1.0);

  // And the write-back bumped both versions past their initial 1.
  EXPECT_EQ(store.version(expert), 2u);
  EXPECT_EQ(store.version(untrained), 2u);
}

TEST_F(SystemPoolFixture, ShardingIsStatic) {
  planning::RoutineLearner donor = trained();
  PolicyStore store(donor);
  SystemPoolParams params;
  params.slots = 3;
  SystemPool pool(library, library.tea_making(), store, params);
  for (UserId u = 0; u < 9; ++u) {
    EXPECT_EQ(pool.slot_for(u), u % 3);
  }
  EXPECT_THROW((void)SystemPool(library, library.tea_making(), store,
                                SystemPoolParams{0, 1, {}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace coreda::serve
