// HomePool: multi-ADL session serving where each user's WHOLE policy set
// (every ADL) checks in and out of the pool as one checksummed bundle.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "serve/home_pool.hpp"
#include "serve/scenario_runner.hpp"

namespace coreda::serve {
namespace {

struct HomePoolFixture : ::testing::Test {
  adl::AdlLibrary library;

  static HomePoolParams pool_params() {
    HomePoolParams params;
    params.slots = 2;
    params.seed = 99;
    return params;
  }

  /// The interleaved shape: start the tea, brush teeth, come back.
  static core::SessionScript interleaved() {
    core::SessionScript script;
    script.hint = "Tea-making";
    script.parts.push_back(core::ScriptPart{.adl = "Tea-making", .steps = 2});
    script.parts.push_back(core::ScriptPart{.adl = "Tooth-brushing"});
    script.parts.push_back(
        core::ScriptPart{.adl = "Tea-making", .resume = true});
    return script;
  }

  static patient::PatientProfile mild() {
    patient::PatientProfile profile =
        patient::PatientProfile::with_severity("Tanaka", 0.3);
    profile.comply_minimal = 1.0;
    profile.comply_specific = 1.0;
    return profile;
  }

  static sim::Duration deadline() { return sim::Duration::minutes(45); }
};

TEST_F(HomePoolFixture, ServeRoundTripStagesABundle) {
  BundleStore store;
  const UserId user = store.add_user("Tanaka");
  HomePool pool(library, store, pool_params());

  EXPECT_FALSE(store.has_bundle(user));
  const core::HomeScriptResult result =
      pool.serve_script(user, interleaved(), mild(), deadline());

  // The interleaved script serves multiple ADLs inside one session...
  EXPECT_EQ(result.segments, 3u);
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.session.segment_switches, 2u);
  // ...and stages the user's whole policy set as ONE bundle record.
  EXPECT_TRUE(store.has_bundle(user));
  EXPECT_EQ(store.version(user), 1u);

  pool.serve_script(user, interleaved(), mild(), deadline());
  EXPECT_EQ(store.version(user), 2u);
  EXPECT_EQ(pool.rejected_bundles(), 0u);
}

TEST_F(HomePoolFixture, ResidencyCountersTrackHitsAndSwaps) {
  BundleStore store;
  const UserId a = store.add_user("A");  // slot 0
  store.add_user("B");
  const UserId c = store.add_user("C");  // slot 0: evicts A
  HomePool pool(library, store, pool_params());

  pool.serve_script(a, interleaved(), mild(), deadline());
  pool.serve_script(a, interleaved(), mild(), deadline());  // resident: hit
  pool.serve_script(c, interleaved(), mild(), deadline());  // evicts A
  pool.serve_script(a, interleaved(), mild(), deadline());  // restore bundle

  EXPECT_EQ(pool.sessions(), 4u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.swaps(), 3u);
  EXPECT_EQ(pool.rejected_bundles(), 0u);
  EXPECT_EQ(pool.resident(0), a);
}

TEST_F(HomePoolFixture, CorruptBundleFallsBackToBaseline) {
  BundleStore store;
  const UserId a = store.add_user("A");
  store.add_user("B");
  const UserId c = store.add_user("C");  // shares slot 0 with A
  HomePool pool(library, store, pool_params());

  pool.serve_script(a, interleaved(), mild(), deadline());
  std::string bad = store.bytes(a);
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x40);
  store.stage(a, bad);

  pool.serve_script(c, interleaved(), mild(), deadline());  // evict A
  const core::HomeScriptResult result =
      pool.serve_script(a, interleaved(), mild(), deadline());

  // The torn record was rejected as a whole; the session still ran (donor
  // baseline) and staged a fresh, valid bundle over the corrupt one.
  EXPECT_EQ(pool.rejected_bundles(), 1u);
  EXPECT_TRUE(result.completed);
  pool.serve_script(c, interleaved(), mild(), deadline());
  pool.serve_script(a, interleaved(), mild(), deadline());
  EXPECT_EQ(pool.rejected_bundles(), 1u);  // replacement loads cleanly
}

TEST_F(HomePoolFixture, RestartRestoresFromDisk) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "coreda_bundles")
          .string();
  std::filesystem::remove_all(dir);
  std::string staged;
  {
    BundleStore store(BundleStoreParams{.dir = dir});
    const UserId user = store.add_user("Tanaka");
    HomePool pool(library, store, pool_params());
    pool.serve_script(user, interleaved(), mild(), deadline());
    EXPECT_EQ(store.disk_writes(), 1u);
    staged = store.bytes(user);
  }

  // Cold restart: a new store over the same directory recovers the bundle
  // byte-for-byte, and a new pool serves from it without rejection.
  BundleStore store(BundleStoreParams{.dir = dir});
  const UserId user = store.add_user("Tanaka");
  store.restore_all();
  ASSERT_TRUE(store.has_bundle(user));
  EXPECT_EQ(store.bytes(user), staged);

  HomePool pool(library, store, pool_params());
  const core::HomeScriptResult result =
      pool.serve_script(user, interleaved(), mild(), deadline());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(pool.rejected_bundles(), 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(HomePoolFixture, ScenarioRunnerIsJobsInvariant) {
  sim::ScenarioPlan plan;
  plan.seed = 7;
  plan.users = 3;
  plan.rounds = 2;
  plan.severity = 0.3;
  plan.severity_drift = 0.05;
  plan.compliance_decay = 0.02;
  plan.hint = "Tea-making";
  plan.parts = {sim::ScenarioPart{.adl = "Tea-making", .steps = 2},
                sim::ScenarioPart{.adl = "Tooth-brushing"},
                sim::ScenarioPart{.adl = "Tea-making", .resume = true}};

  ScenarioRunnerParams params;
  params.slots = 2;
  const ScenarioRunner runner(params);
  const ScenarioSummary serial = runner.run(plan, 1);
  const ScenarioSummary parallel = runner.run(plan, 4);

  EXPECT_EQ(serial.sessions, 6u);
  EXPECT_GT(serial.prompts, 0u);
  EXPECT_GT(serial.segment_switches, 0u);
  EXPECT_EQ(serial.checksum, parallel.checksum);
  EXPECT_EQ(serial.prompts, parallel.prompts);
  EXPECT_EQ(serial.completed_sessions, parallel.completed_sessions);
  EXPECT_EQ(serial.wrong_tool_recoveries, parallel.wrong_tool_recoveries);
  EXPECT_EQ(serial.pool_swaps, parallel.pool_swaps);
}

}  // namespace
}  // namespace coreda::serve
