// Pins the multi-tenant serving allocation contract: once the pool is
// warm, a full serve — checkout, policy import (every serve is a swap
// here), run_session_inplace, and the write-back into the PolicyStore —
// touches the heap zero times. This is what PR 3's per-system guarantee
// (tests/core/session_alloc_test.cpp) buys the serving tier: tenancy
// churn adds Q-table copies, and same-shape QTable assignment must reuse
// capacity rather than reallocate.
//
// alloc_counter.hpp replaces the global allocation functions of this whole
// test binary; it must stay included in exactly one TU of test_serve.

#include "util/alloc_counter.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "adl/library.hpp"
#include "serve/fleet_engine.hpp"
#include "serve/retrain_scheduler.hpp"
#include "serve/system_pool.hpp"

namespace coreda::serve {
namespace {

namespace T = adl::tools;

TEST(ServeAllocTest, ServeWithPolicySwapIsAllocationFreeAtSteadyState) {
  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();
  planning::RoutineLearner donor(tea, util::Rng(17));
  const std::vector<adl::StepId> routine{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
  for (int i = 0; i < 80; ++i) donor.train_episode(routine);

  PolicyStore store(donor);  // memory-only: stage() must not allocate
  SystemPoolParams params;
  params.slots = 1;
  params.seed = 99;
  SystemPool pool(library, tea, store, params);
  store.add_user("A");
  store.add_user("B");

  // Same scripted session as the core allocation test: a correct step, a
  // freeze, and a wrong tool, with the minimal prompt always ignored so
  // the escalation branch fires too.
  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("U", 0.0);
  profile.comply_minimal = 0.0;
  profile.comply_specific = 1.0;
  const std::function<void(patient::PatientActor&)> script =
      [](patient::PatientActor& actor) {
        using Kind = patient::PatientEvent::Kind;
        actor.force_next_decision(Kind::kStartedStep);
        actor.force_next_decision(Kind::kFroze);
        actor.force_next_decision(Kind::kWrongTool, adl::tools::kTeaCup);
      };

  // Alternating tenants on one slot: the resident never matches, so every
  // single serve takes the expensive path (import + write-back).
  core::SessionResult result;
  for (int i = 0; i < 16; ++i) {
    pool.serve_session(static_cast<UserId>(i % 2), profile,
                       sim::Duration::minutes(15.0), script, result);
  }
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(pool.hits(), 0u);
  ASSERT_EQ(pool.swaps(), 16u);

  const std::uint64_t before = util::allocation_count();
  for (int i = 0; i < 64; ++i) {
    pool.serve_session(static_cast<UserId>(i % 2), profile,
                       sim::Duration::minutes(15.0), script, result);
  }
  EXPECT_EQ(util::allocation_count() - before, 0u);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(pool.swaps(), 80u);
}

// The retraining tier's side of the contract: recording a transcript into
// the provisioned ring never allocates, enqueueing a job is allocation-free
// once the lane queues are provisioned (add_user reserves them), and a
// retrain — import the user's table into the warm lane learner, replay the
// whole ring, stage the result back — touches the heap zero times after
// the first job has warmed the lane.
TEST(ServeAllocTest, TranscriptRecordingAndRetrainAreAllocationFreeWarm) {
  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();
  planning::RoutineLearner donor(tea, util::Rng(17));
  const std::vector<adl::StepId> routine{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
  for (int i = 0; i < 80; ++i) donor.train_episode(routine);

  PolicyStore store(donor);  // memory-only: stage() must not allocate
  RetrainScheduler scheduler(tea, store, planning::LearnerConfig{},
                             /*lanes=*/1, RetrainParams{});
  store.add_user("A");
  scheduler.add_user();

  for (std::size_t i = 0; i < scheduler.params().ring_capacity; ++i) {
    scheduler.record(0, routine);
  }
  scheduler.retrain_user(0);  // warms the lane learner

  const std::uint64_t before = util::allocation_count();
  for (int i = 0; i < 64; ++i) scheduler.record(0, routine);
  scheduler.enqueue(0);  // lane queue is pre-reserved to the user count
  for (int i = 0; i < 8; ++i) scheduler.retrain_user(0);
  EXPECT_EQ(util::allocation_count() - before, 0u);
  EXPECT_EQ(scheduler.queued(), 1u);
  EXPECT_EQ(store.version(0), 10u);  // warm-up + 8 probed retrains staged
}

// The fleet tier's side: a warm drain over the mmap segment store —
// enqueue, evict-with-append, cold load from the mapping, import, serve,
// write back, record latency — is allocation-free per session. Only the
// TrialRunner's per-drain results vector may touch the heap, so a 128-
// session drain is allowed a small constant, not a per-session rate.
// Compaction thresholds are pushed out of reach: a compaction pass
// legitimately allocates (fresh segments), and the bench gate measures
// steady state between compactions.
TEST(ServeAllocTest, FleetDrainIsAllocationFreePerSessionWarm) {
  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();
  planning::RoutineLearner donor(tea, util::Rng(17));
  const std::vector<adl::StepId> routine{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
  for (int i = 0; i < 80; ++i) donor.train_episode(routine);

  const std::string dir =
      ::testing::TempDir() + "/coreda_fleet_alloc";
  std::filesystem::remove_all(dir);
  SegmentStoreParams store_params;
  store_params.dir = dir;
  store_params.compact_min_records = std::size_t{1} << 20;  // never compact
  // Roomy segments: a mid-drain segment roll allocates (fresh mapping) and
  // would be noise here, exactly like compaction.
  store_params.segment_bytes = std::size_t{8} << 20;
  SegmentStore store(donor.state_codec().symbols(),
                     donor.action_codec().tools(), donor.q().num_states(),
                     donor.q().num_actions(), store_params);
  FleetEngineParams params;
  params.shards = 1;
  params.slots_per_shard = 1;  // alternating users force the eviction path
  params.system.learn_from_sessions = true;
  FleetEngine fleet(library, tea, store, donor.q(), params);
  fleet.register_user(0.2);
  fleet.register_user(0.4);

  exec::TrialRunner runner(1);
  for (int i = 0; i < 128; ++i) fleet.enqueue(i % 2);  // warms the queue
  fleet.drain(runner);

  const std::uint64_t before = util::allocation_count();
  for (int i = 0; i < 128; ++i) fleet.enqueue(i % 2);
  const FleetReport report = fleet.drain(runner);
  EXPECT_LE(util::allocation_count() - before, 2u);
  EXPECT_EQ(report.sessions, 256u);
  EXPECT_EQ(report.appends, 256u);  // every session wrote back into the mmap
}

// Cold-start contract: the scan-on-open does per-SEGMENT work on the heap
// (mapping the file, one index-slab reserve sized by the header's advisory
// record count) but ZERO allocations per record — that is what keeps a
// million-user reopen inside the cold-start budget. Witness: two stores
// identical in everything but record count (10x) must allocate EXACTLY the
// same number of times while reopening.
TEST(ServeAllocTest, ReopenScanAllocatesPerSegmentNotPerRecord) {
  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();
  planning::RoutineLearner donor(tea, util::Rng(17));
  const std::vector<adl::StepId> routine{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
  for (int i = 0; i < 80; ++i) donor.train_episode(routine);

  SegmentStoreParams base;
  base.segment_bytes = std::size_t{4} << 20;  // everything fits one segment
  const auto build = [&](const std::string& dir, std::uint64_t users) {
    std::filesystem::remove_all(dir);
    SegmentStoreParams p = base;
    p.dir = dir;
    SegmentStore store(donor.state_codec().symbols(),
                       donor.action_codec().tools(), donor.q().num_states(),
                       donor.q().num_actions(), p);
    store.reserve_users(users);
    for (std::uint64_t u = 0; u < users; ++u) {
      store.append(u, donor.q(), 1);  // anchors
    }
    // Plus a short delta chain, so the scan's chain accounting is covered.
    rl::QTable q = donor.q();
    q.set(0, 0, 123.0);
    store.append(0, q, 2);
    q.set(1, 0, 456.0);
    store.append(0, q, 3);
  };
  const auto reopen_allocs = [&](const std::string& dir,
                                 std::uint64_t expect_records) {
    SegmentStoreParams p = base;
    p.dir = dir;
    const std::uint64_t before = util::allocation_count();
    SegmentStore reopened(donor.state_codec().symbols(),
                          donor.action_codec().tools(),
                          donor.q().num_states(), donor.q().num_actions(), p);
    const std::uint64_t allocs = util::allocation_count() - before;
    EXPECT_EQ(reopened.scanned_records(), expect_records);
    return allocs;
  };

  const std::string small_dir = ::testing::TempDir() + "/coreda_scan_small";
  const std::string large_dir = ::testing::TempDir() + "/coreda_scan_large";
  build(small_dir, 40);
  build(large_dir, 400);
  const std::uint64_t small = reopen_allocs(small_dir, 40 + 2);
  const std::uint64_t large = reopen_allocs(large_dir, 400 + 2);
  EXPECT_EQ(small, large) << "reopen allocations scale with record count";
}

}  // namespace
}  // namespace coreda::serve
