// The flat open-addressed user index: packing round-trips, robin-hood
// probing under adversarial collisions, the reserve()/put() growth
// contract, and the slab-size arithmetic the <16 B/user budget rests on.

#include "serve/user_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

namespace coreda::serve {
namespace {

TEST(UserIndexTest, PutFindRoundTripsAndUpdatesInPlace) {
  UserIndex idx;
  idx.reserve(100);
  for (std::uint64_t u = 0; u < 100; ++u) {
    idx.put(u, {static_cast<std::uint32_t>(u % 7),
                static_cast<std::uint32_t>(u * 11)});
  }
  EXPECT_EQ(idx.size(), 100u);
  UserIndex::Loc loc;
  for (std::uint64_t u = 0; u < 100; ++u) {
    ASSERT_TRUE(idx.find(u, loc)) << "user " << u;
    EXPECT_EQ(loc.seg, u % 7);
    EXPECT_EQ(loc.off8, u * 11);
  }
  // Updates replace the location without growing the table.
  idx.put(42, {3, 999});
  EXPECT_EQ(idx.size(), 100u);
  ASSERT_TRUE(idx.find(42, loc));
  EXPECT_EQ(loc.seg, 3u);
  EXPECT_EQ(loc.off8, 999u);
}

TEST(UserIndexTest, MissesReturnFalseWithoutTouchingOut) {
  UserIndex idx;
  UserIndex::Loc loc{77, 88};
  EXPECT_FALSE(idx.find(5, loc));  // empty table: no slab yet
  EXPECT_EQ(loc.seg, 77u);
  idx.reserve(10);
  idx.put(5, {1, 2});
  EXPECT_FALSE(idx.find(6, loc));
  EXPECT_EQ(loc.seg, 77u);
  EXPECT_EQ(loc.off8, 88u);
}

TEST(UserIndexTest, ExtremeFieldValuesPackAndUnpack) {
  UserIndex idx;
  idx.reserve(4);
  const std::uint64_t user = UserIndex::kMaxUsers - 1;
  const UserIndex::Loc in{UserIndex::kMaxSegments - 1, UserIndex::kMaxOff8 - 1};
  idx.put(user, in);
  idx.put(0, {0, 0});
  UserIndex::Loc out;
  ASSERT_TRUE(idx.find(user, out));
  EXPECT_EQ(out.seg, in.seg);
  EXPECT_EQ(out.off8, in.off8);
  ASSERT_TRUE(idx.find(0, out));
  EXPECT_EQ(out.seg, 0u);
  EXPECT_EQ(out.off8, 0u);
}

TEST(UserIndexTest, OutOfRangeFieldsThrow) {
  UserIndex idx;
  idx.reserve(4);
  EXPECT_THROW(idx.put(UserIndex::kMaxUsers, {0, 0}), std::length_error);
  EXPECT_THROW(idx.put(0, {UserIndex::kMaxSegments, 0}), std::length_error);
  EXPECT_THROW(idx.put(0, {0, UserIndex::kMaxOff8}), std::length_error);
  EXPECT_EQ(idx.size(), 0u);
}

TEST(UserIndexTest, PutThrowsAboveTheLoadCeilingButUpdatesStillLand) {
  UserIndex idx;
  idx.reserve(8);
  std::uint64_t u = 0;
  // Fill to the ceiling: put() itself must never grow the slab.
  const std::size_t cap_before = idx.capacity();
  try {
    for (;; ++u) idx.put(u, {1, static_cast<std::uint32_t>(u)});
  } catch (const std::length_error&) {
  }
  EXPECT_EQ(idx.capacity(), cap_before);
  EXPECT_GE(idx.size(), 8u);
  // At the ceiling, updating a resident key still succeeds...
  idx.put(0, {2, 777});
  UserIndex::Loc loc;
  ASSERT_TRUE(idx.find(0, loc));
  EXPECT_EQ(loc.seg, 2u);
  EXPECT_EQ(loc.off8, 777u);
  // ...and a new key keeps throwing without corrupting the residents.
  EXPECT_THROW(idx.put(u + 1, {0, 0}), std::length_error);
  for (std::uint64_t k = 1; k < idx.size(); ++k) {
    ASSERT_TRUE(idx.find(k, loc)) << "user " << k;
    EXPECT_EQ(loc.off8, k);
  }
  // put_grow() is the escape hatch: it rehashes and the insert lands.
  idx.put_grow(u + 1, {3, 44});
  ASSERT_TRUE(idx.find(u + 1, loc));
  EXPECT_EQ(loc.seg, 3u);
}

TEST(UserIndexTest, ReserveRehashKeepsEveryEntry) {
  UserIndex idx;
  idx.reserve(16);
  for (std::uint64_t u = 0; u < 14; ++u) {
    idx.put(u * 1000 + 3, {static_cast<std::uint32_t>(u),
                           static_cast<std::uint32_t>(100 + u)});
  }
  const std::size_t small_cap = idx.capacity();
  idx.reserve(100000);
  EXPECT_GT(idx.capacity(), small_cap);
  EXPECT_EQ(idx.size(), 14u);
  UserIndex::Loc loc;
  for (std::uint64_t u = 0; u < 14; ++u) {
    ASSERT_TRUE(idx.find(u * 1000 + 3, loc)) << "user " << u;
    EXPECT_EQ(loc.seg, u);
    EXPECT_EQ(loc.off8, 100 + u);
  }
  // reserve() never shrinks.
  const std::size_t big_cap = idx.capacity();
  idx.reserve(10);
  EXPECT_EQ(idx.capacity(), big_cap);
}

TEST(UserIndexTest, DenseSequentialIdsStayBelowSixteenBytesPerUser) {
  // The fleet registers users 0..N-1 — exactly the pattern a weak hash
  // would clump. The slab must stay ~9.15 B/user (and the robin-hood
  // probes must still find everything).
  UserIndex idx;
  const std::uint64_t kUsers = 50000;
  idx.reserve(kUsers);
  for (std::uint64_t u = 0; u < kUsers; ++u) {
    idx.put(u, {static_cast<std::uint32_t>(u % UserIndex::kMaxSegments),
                static_cast<std::uint32_t>(u % UserIndex::kMaxOff8)});
  }
  EXPECT_LT(static_cast<double>(idx.slab_bytes()) / kUsers, 10.0);
  UserIndex::Loc loc;
  for (std::uint64_t u = 0; u < kUsers; u += 17) {
    ASSERT_TRUE(idx.find(u, loc)) << "user " << u;
    EXPECT_EQ(loc.seg, u % UserIndex::kMaxSegments);
  }
}

TEST(UserIndexTest, ForEachVisitsEveryEntryExactlyOnce) {
  UserIndex idx;
  idx.reserve(64);
  std::map<std::uint64_t, std::uint32_t> expected;
  for (std::uint64_t u = 0; u < 50; ++u) {
    const std::uint64_t key = u * 7 + 1;
    idx.put(key, {0, static_cast<std::uint32_t>(u)});
    expected[key] = static_cast<std::uint32_t>(u);
  }
  std::map<std::uint64_t, std::uint32_t> seen;
  idx.for_each([&seen](std::uint64_t user, UserIndex::Loc loc) {
    EXPECT_TRUE(seen.emplace(user, loc.off8).second)
        << "user " << user << " visited twice";
  });
  EXPECT_EQ(seen, expected);
}

TEST(UserIndexTest, SurvivesLongCollisionRuns) {
  // Force a crowded neighbourhood: a small table at high load makes long
  // shared probe chains, exercising robin-hood displacement both on insert
  // and on the early-exit miss path.
  UserIndex idx;
  idx.reserve(32);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t u = 0; u < 28; ++u) keys.push_back(u * 131071 + 9);
  for (const std::uint64_t k : keys) {
    idx.put(k, {5, static_cast<std::uint32_t>(k & 0xFFFFF)});
  }
  UserIndex::Loc loc;
  for (const std::uint64_t k : keys) {
    ASSERT_TRUE(idx.find(k, loc)) << "key " << k;
    EXPECT_EQ(loc.off8, k & 0xFFFFF);
  }
  // Misses adjacent to residents terminate (early exit, not a full scan).
  for (const std::uint64_t k : keys) {
    EXPECT_FALSE(idx.find(k + 1, loc));
  }
}

}  // namespace
}  // namespace coreda::serve
