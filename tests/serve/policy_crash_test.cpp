// Crash injection for the snapshot flush path. The PolicyStore publishes
// atomically (write <path>.tmp, then rename), so the window that matters is
// between the completed temp write and the rename. The pre-publish hook
// throws right there, simulating a crash with a fully written temp file on
// disk:
//
//   * the committed snapshot is untouched — a reader (warm restart) still
//     loads the previous version;
//   * the entry still counts as unflushed, so the next flush retries and
//     publishes cleanly once the "crash" stops;
//   * a leftover garbage .tmp from a dead writer is simply overwritten by
//     the next flush, never read;
//   * the destructor's best-effort flush survives a throwing hook.

#include "serve/policy_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "adl/library.hpp"
#include "planning/serialize.hpp"

namespace coreda::serve {
namespace {

namespace T = adl::tools;
namespace fs = std::filesystem;

struct PolicyCrashFixture : ::testing::Test {
  adl::AdlLibrary library;

  planning::RoutineLearner trained(std::uint64_t seed = 5) {
    planning::RoutineLearner learner(library.tea_making(), util::Rng(seed));
    const std::vector<adl::StepId> steps{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
    for (int i = 0; i < 80; ++i) learner.train_episode(steps);
    return learner;
  }

  std::string fresh_dir(const char* name) {
    const std::string dir = ::testing::TempDir() + "/coreda_crash_" + name;
    fs::remove_all(dir);
    return dir;
  }

  std::uint64_t committed_version(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    const planning::PolicyV2Info info = planning::inspect_policy_v2(in);
    EXPECT_TRUE(info.checksum_ok);
    return info.version;
  }
};

TEST_F(PolicyCrashFixture, CrashBeforeRenameKeepsCommittedSnapshotReadable) {
  planning::RoutineLearner donor = trained();
  const std::string dir = fresh_dir("window");
  PolicyStoreParams params;
  params.dir = dir;
  params.flush_every = 1;
  PolicyStore store(donor, params);
  const UserId u = store.add_user("tanaka");

  store.stage(u, donor.q());  // clean flush: version 2 committed
  const std::string path = store.path_for(u);
  ASSERT_EQ(committed_version(path), 2u);

  // Arm the crash: the next flush dies after the temp file is fully
  // written, before the rename publishes it.
  store.pre_publish_site().set_hook([](const std::string&) {
    throw std::runtime_error("injected crash before rename");
  });
  EXPECT_THROW(store.stage(u, donor.q()), std::runtime_error);
  EXPECT_EQ(store.version(u), 3u);  // the in-memory entry did advance

  // The temp file is the crash debris; the committed file is still the
  // previous, complete snapshot.
  EXPECT_TRUE(fs::exists(path + ".tmp"));
  EXPECT_EQ(committed_version(path), 2u);

  // A reader restarting against the same directory sees version 2 — never
  // the torn write.
  {
    PolicyStoreParams reader_params;
    reader_params.dir = dir;
    PolicyStore reader(donor, reader_params);
    const UserId r = reader.add_user("tanaka");
    EXPECT_EQ(reader.restore(r), std::optional<std::uint64_t>{2});
  }

  // Crash over: the entry is still dirty, so an explicit flush retries,
  // publishes version 3 and clears the debris path by overwriting it.
  store.pre_publish_site().set_hook(nullptr);
  store.flush(u);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(committed_version(path), 3u);
  EXPECT_EQ(store.disk_writes(), 2u);  // the crashed attempt cost no wear
}

TEST_F(PolicyCrashFixture, LeftoverGarbageTempFileIsNeverReadAndGetsReplaced) {
  planning::RoutineLearner donor = trained();
  const std::string dir = fresh_dir("debris");
  PolicyStoreParams params;
  params.dir = dir;
  params.flush_every = 1;
  PolicyStore store(donor, params);
  const UserId u = store.add_user("tanaka");
  const std::string path = store.path_for(u);

  // A previous writer died mid-write: garbage under the temp name, no
  // committed snapshot at all.
  fs::create_directories(dir);
  {
    std::ofstream out(path + ".tmp", std::ios::binary);
    out << "half a snapshot, then the power went";
  }
  // restore() reads only the committed path — debris is invisible.
  EXPECT_EQ(store.restore(u), std::nullopt);

  // The next flush truncates the debris and publishes a valid snapshot.
  store.stage(u, donor.q());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(committed_version(path), 2u);
  EXPECT_EQ(store.restore(u), std::optional<std::uint64_t>{2});
}

TEST_F(PolicyCrashFixture, DestructorFlushSwallowsInjectedCrash) {
  planning::RoutineLearner donor = trained();
  const std::string dir = fresh_dir("dtor");
  {
    PolicyStoreParams params;
    params.dir = dir;
    params.flush_every = 100;  // keep the entry dirty until destruction
    PolicyStore store(donor, params);
    const UserId u = store.add_user("tanaka");
    store.stage(u, donor.q());
    store.pre_publish_site().set_hook([](const std::string&) {
      throw std::runtime_error("injected crash in destructor flush");
    });
  }  // ~PolicyStore must not terminate; the flush failure is swallowed

  // Nothing was published — only the temp debris of the dying flush.
  EXPECT_FALSE(fs::exists(dir + "/tanaka.policy"));
  EXPECT_TRUE(fs::exists(dir + "/tanaka.policy.tmp"));
}

}  // namespace
}  // namespace coreda::serve
