// RetrainScheduler: transcript-ring mechanics, the single-job retrain
// contract, the engine-level detect -> retrain -> redeploy loop (flag set,
// policy refreshed, EWMA recovered, flag cleared), and byte-identical
// closed-loop outcomes at any --jobs.

#include "serve/retrain_scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "adl/library.hpp"
#include "serve/engine.hpp"

namespace coreda::serve {
namespace {

struct RetrainFixture : ::testing::Test {
  adl::AdlLibrary library;

  std::vector<adl::StepId> routine() {
    std::vector<adl::StepId> steps;
    for (const adl::AdlStep& s :
         library.tea_making().primary_routine().steps()) {
      steps.push_back(s.step_id());
    }
    return steps;
  }

  /// Yesterday's habit: first two steps swapped (the A10 drift scenario).
  std::vector<adl::StepId> stale_routine() {
    std::vector<adl::StepId> steps = routine();
    std::swap(steps[0], steps[1]);
    return steps;
  }

  planning::RoutineLearner trained(const std::vector<adl::StepId>& steps,
                                   std::uint64_t seed, int episodes) {
    planning::RoutineLearner learner(library.tea_making(), util::Rng(seed));
    for (int i = 0; i < episodes; ++i) learner.train_episode(steps);
    return learner;
  }

  /// Greedy-prompt accuracy of a table against an explicit routine (the
  /// bench_drift_adaptation metric).
  double accuracy_vs(const rl::QTable& q,
                     const std::vector<adl::StepId>& steps) {
    planning::RoutineLearner probe(library.tea_making(), util::Rng(1));
    probe.begin_retraining(q, util::Rng(1));
    std::size_t hits = 0;
    std::size_t total = 0;
    adl::StepId prev = adl::kIdleStep;
    for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
      const auto prompt = probe.predict(prev, steps[i]);
      ++total;
      if (prompt && prompt->action.tool == steps[i + 1]) ++hits;
      prev = steps[i];
    }
    return static_cast<double>(hits) / static_cast<double>(total);
  }
};

TEST_F(RetrainFixture, TranscriptRingBoundsEvictsAndTruncates) {
  planning::RoutineLearner donor = trained(routine(), 5, 80);
  PolicyStore store(donor);
  RetrainParams params;
  params.ring_capacity = 3;
  params.max_transcript_steps = 4;
  params.min_transcripts = 2;
  RetrainScheduler scheduler(library.tea_making(), store,
                             planning::LearnerConfig{}, /*lanes=*/2, params);
  scheduler.add_user();
  scheduler.add_user();
  ASSERT_EQ(scheduler.num_users(), 2u);
  EXPECT_EQ(scheduler.transcripts(0), 0u);
  EXPECT_FALSE(scheduler.has_enough_transcripts(0));

  const auto steps = [](std::initializer_list<adl::StepId> ids) {
    return std::vector<adl::StepId>(ids);
  };
  scheduler.record(0, steps({1, 2}));
  EXPECT_EQ(scheduler.transcripts(0), 1u);
  EXPECT_FALSE(scheduler.has_enough_transcripts(0));
  scheduler.record(0, steps({3, 4, 5, 6, 7, 8}));  // truncated to 4
  EXPECT_TRUE(scheduler.has_enough_transcripts(0));
  scheduler.record(0, steps({9}));
  scheduler.record(0, steps({10, 11}));  // evicts the oldest ({1, 2})
  EXPECT_EQ(scheduler.transcripts(0), 3u);

  const auto transcript = [&](std::size_t i) {
    const std::span<const adl::StepId> t = scheduler.transcript(0, i);
    return std::vector<adl::StepId>(t.begin(), t.end());
  };
  EXPECT_EQ(transcript(0), steps({3, 4, 5, 6}));
  EXPECT_EQ(transcript(1), steps({9}));
  EXPECT_EQ(transcript(2), steps({10, 11}));

  // Rings are per user: recording for user 0 never touches user 1.
  EXPECT_EQ(scheduler.transcripts(1), 0u);

  EXPECT_THROW((void)scheduler.transcript(0, 3), std::out_of_range);
  EXPECT_THROW(scheduler.record(2, steps({1})), std::out_of_range);
  EXPECT_THROW(scheduler.enqueue(2), std::out_of_range);
  EXPECT_THROW((void)RetrainScheduler(library.tea_making(), store,
                                      planning::LearnerConfig{}, 0, {}),
               std::invalid_argument);
  RetrainParams bad;
  bad.ring_capacity = 0;
  EXPECT_THROW((void)RetrainScheduler(library.tea_making(), store,
                                      planning::LearnerConfig{}, 1, bad),
               std::invalid_argument);
}

TEST_F(RetrainFixture, RetrainUserRealignsAStaleTableToTheRecordedRoutine) {
  planning::RoutineLearner donor = trained(routine(), 5, 80);
  planning::RoutineLearner stale = trained(stale_routine(), 6, 120);
  PolicyStore store(donor);
  store.add_user("drifted", stale.q());

  RetrainParams params;  // defaults: ring 8, 8 replay passes
  RetrainScheduler scheduler(library.tea_making(), store,
                             planning::LearnerConfig{}, /*lanes=*/1, params);
  scheduler.add_user();
  for (std::size_t i = 0; i < params.ring_capacity; ++i) {
    scheduler.record(0, routine());
  }

  const double before = accuracy_vs(store.q(0), routine());
  const std::size_t episodes = scheduler.retrain_user(0);
  EXPECT_EQ(episodes, params.ring_capacity * params.replay_passes);
  EXPECT_EQ(store.version(0), 2u);  // the refreshed table was staged

  // The stale table prompted yesterday's order; the retrained one prompts
  // the routine the transcripts actually contain.
  const double after = accuracy_vs(store.q(0), routine());
  EXPECT_LT(before, 1.0);
  EXPECT_EQ(after, 1.0);
}

/// The bench_retrain_recovery scenario in miniature: 8 users on 2 slots,
/// two of them (ids 0 and 5 — different slots/lanes) starting from a table
/// converged on yesterday's routine.
struct ClosedLoopOutcome {
  std::vector<bool> flagged;
  std::vector<std::uint64_t> retrains;
  std::vector<std::uint64_t> versions;
  std::string q_hexdump;  ///< every user's table, hexfloat — bit-exact
  std::uint64_t checksum = 0;
  std::uint64_t jobs = 0;
};

constexpr std::size_t kUsers = 8;
constexpr UserId kDrifted[] = {0, 5};

ClosedLoopOutcome run_closed_loop(RetrainFixture& fix, std::size_t jobs,
                                  std::size_t rounds) {
  planning::RoutineLearner donor = fix.trained(fix.routine(), 5, 80);
  planning::RoutineLearner stale =
      fix.trained(fix.stale_routine(), 6, 120);
  PolicyStore store(donor);
  ServeEngineParams params;
  params.pool.slots = 2;
  params.pool.seed = 4242;
  params.drift.threshold = 2.5;
  params.retrain.enabled = true;
  for (std::size_t u = 0; u < kUsers; ++u) {
    const bool drifted = u == kDrifted[0] || u == kDrifted[1];
    store.add_user("U" + std::to_string(u),
                   drifted ? stale.q() : donor.q());
  }
  ServeEngine engine(fix.library, fix.library.tea_making(), store, params);
  for (std::size_t u = 0; u < kUsers; ++u) {
    util::Rng rng(exec::trial_seed(9001, u));
    engine.add_user("U" + std::to_string(u),
                    patient::PatientProfile::with_severity(
                        "U", 0.1 + 0.4 * rng.uniform()));
  }

  exec::TrialRunner runner(jobs);
  ServeReport report;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (UserId u = 0; u < kUsers; ++u) engine.enqueue(u, 2);
    report = engine.drain(runner);
  }

  ClosedLoopOutcome out;
  out.checksum = report.checksum;
  out.jobs = report.retrain.jobs;
  for (UserId u = 0; u < kUsers; ++u) {
    out.flagged.push_back(report.users[u].needs_retraining);
    out.retrains.push_back(report.users[u].retrains);
    out.versions.push_back(store.version(u));
    const rl::QTable& q = store.q(u);
    for (rl::StateId s = 0; s < q.num_states(); ++s) {
      for (rl::ActionId a = 0; a < q.num_actions(); ++a) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%a ", q.get(s, a));
        out.q_hexdump += buf;
      }
    }
    out.q_hexdump += "\n";
  }
  return out;
}

TEST_F(RetrainFixture, ClosedLoopFlagsRetrainsAndClearsTheFlag) {
  const ClosedLoopOutcome out = run_closed_loop(*this, 2, /*rounds=*/8);
  for (const UserId u : kDrifted) {
    EXPECT_GE(out.retrains[u], 1u) << "user " << u << " never retrained";
    EXPECT_FALSE(out.flagged[u])
        << "user " << u << " flag not cleared after retraining";
    // A retrain stages an extra version on top of the per-session
    // write-backs (1 initial + 16 sessions + retrains).
    EXPECT_EQ(out.versions[u], 1u + 16u + out.retrains[u]) << "user " << u;
  }
  EXPECT_GE(out.jobs, 2u);
}

TEST_F(RetrainFixture, ClosedLoopIsByteIdenticalAtAnyJobCount) {
  const ClosedLoopOutcome serial = run_closed_loop(*this, 1, 8);
  const ClosedLoopOutcome parallel = run_closed_loop(*this, 4, 8);
  EXPECT_EQ(serial.flagged, parallel.flagged);
  EXPECT_EQ(serial.retrains, parallel.retrains);
  EXPECT_EQ(serial.versions, parallel.versions);
  EXPECT_EQ(serial.checksum, parallel.checksum);
  EXPECT_EQ(serial.jobs, parallel.jobs);
  // Bit-exact tables, not just close ones: the hexfloat dump of every
  // user's final Q-table is the determinism witness.
  EXPECT_EQ(serial.q_hexdump, parallel.q_hexdump);
}

}  // namespace
}  // namespace coreda::serve
