// The segment store's contract, mirroring the per-file PolicyStore suite
// one storage generation up:
//
//   * append/load round-trips are bit-exact, latest version wins, and a
//     reopen rebuilds the index to exactly the pre-shutdown view;
//   * the exhaustive corruption sweep (policy_fuzz_test's) — a one-byte
//     flip at EVERY offset of a committed record is caught by the record
//     checksum: an open store's load() throws with the destination table
//     untouched, and a reopening store falls back to the newest *valid*
//     record for that user;
//   * crash injection between the record write and the magic publish
//     (policy_crash_test's window): the append aborts, the index keeps the
//     previous version, the half-written slot is invisible to a restart
//     and gets overwritten by the retry;
//   * compaction preserves every user's latest version and actually
//     returns disk space (segment files are unlinked);
//   * SegmentPolicyStore is a drop-in PolicyStore: the ServeEngine drains
//     the same sessions to the same checksums over either backend, and v2
//     per-file snapshots import.

#include "serve/segment_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "adl/library.hpp"
#include "serve/engine.hpp"
#include "util/rng.hpp"

namespace coreda::serve {
namespace {

namespace fs = std::filesystem;

// Format constants (segment_store.hpp): a 6x5 table gives a v2 anchor of
// 8 * (6 + 30) = 288 bytes after the 40-byte segment header. The tables in
// this suite differ in every row, so a changed-row delta (352 bytes here)
// is never profitable and every append lands as an anchor — the fixed
// record arithmetic below stays exact. segment_delta_test.cpp covers the
// delta chains.
constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kRecordBytes = 288;

bool bit_equal(const rl::QTable& a, const rl::QTable& b) {
  if (a.num_states() != b.num_states() ||
      a.num_actions() != b.num_actions()) {
    return false;
  }
  for (rl::StateId s = 0; s < a.num_states(); ++s) {
    const std::span<const double> ra = a.row(s);
    const std::span<const double> rb = b.row(s);
    if (std::memcmp(ra.data(), rb.data(), ra.size_bytes()) != 0) {
      return false;
    }
  }
  return true;
}

struct SegmentStoreFixture : ::testing::Test {
  static constexpr std::size_t kStates = 6;
  static constexpr std::size_t kActions = 5;

  std::vector<adl::StepId> steps = [] {
    std::vector<adl::StepId> v(kStates);
    for (std::size_t i = 0; i < kStates; ++i) {
      v[i] = static_cast<adl::StepId>(i + 1);
    }
    return v;
  }();
  std::vector<adl::ToolId> tools = [] {
    std::vector<adl::ToolId> v(kActions);
    for (std::size_t i = 0; i < kActions; ++i) {
      v[i] = static_cast<adl::ToolId>(100 + i);
    }
    return v;
  }();

  std::string fresh_dir(const char* name) {
    const std::string dir = ::testing::TempDir() + "/coreda_seg_" + name;
    fs::remove_all(dir);
    return dir;
  }

  SegmentStoreParams small_params(const std::string& dir) {
    SegmentStoreParams p;
    p.dir = dir;
    return p;
  }

  rl::QTable table(std::uint64_t seed) {
    rl::QTable q(kStates, kActions);
    util::Rng rng(seed);
    for (rl::StateId s = 0; s < kStates; ++s) {
      for (rl::ActionId a = 0; a < kActions; ++a) {
        q.set(s, a, rng.uniform(-1e3, 1e3));
      }
    }
    return q;
  }

  std::unique_ptr<SegmentStore> open(const SegmentStoreParams& p) {
    return std::make_unique<SegmentStore>(steps, tools, kStates, kActions, p);
  }

  std::size_t segment_files(const std::string& dir) {
    std::size_t n = 0;
    for (const fs::directory_entry& de : fs::directory_iterator(dir)) {
      if (de.path().extension() == ".seg") ++n;
    }
    return n;
  }
};

TEST_F(SegmentStoreFixture, AppendLoadRoundTripsAndLatestVersionWins) {
  const std::string dir = fresh_dir("roundtrip");
  auto store = open(small_params(dir));
  store->reserve_users(3);

  const rl::QTable q1 = table(1), q2 = table(2), q3 = table(3);
  store->append(0, q1, 1);
  store->append(1, q2, 1);
  store->append(0, q3, 2);  // supersedes user 0's first record

  EXPECT_EQ(store->latest_version(0), std::optional<std::uint64_t>{2});
  EXPECT_EQ(store->latest_version(1), std::optional<std::uint64_t>{1});
  EXPECT_EQ(store->latest_version(2), std::nullopt);

  rl::QTable out(kStates, kActions);
  EXPECT_EQ(store->load(0, out), std::optional<std::uint64_t>{2});
  EXPECT_TRUE(bit_equal(out, q3));
  EXPECT_EQ(store->load(1, out), std::optional<std::uint64_t>{1});
  EXPECT_TRUE(bit_equal(out, q2));
  EXPECT_EQ(store->load(2, out), std::nullopt);
  EXPECT_TRUE(bit_equal(out, q2));  // a miss never touches the destination

  EXPECT_EQ(store->appends(), 3u);
  EXPECT_EQ(store->live_records(), 2u);
  EXPECT_EQ(store->dead_records(), 1u);
}

TEST_F(SegmentStoreFixture, ReopenRebuildsTheIndexIdentically) {
  const std::string dir = fresh_dir("reopen");
  std::vector<rl::QTable> latest;
  {
    auto store = open(small_params(dir));
    store->reserve_users(8);
    for (std::uint64_t u = 0; u < 8; ++u) {
      for (std::uint64_t v = 1; v <= u % 3 + 1; ++v) {
        store->append(u, table(10 * u + v), v);
      }
      latest.push_back(table(10 * u + (u % 3 + 1)));
    }
  }  // destructor unmaps everything

  auto reopened = open(small_params(dir));
  rl::QTable out(kStates, kActions);
  for (std::uint64_t u = 0; u < 8; ++u) {
    ASSERT_EQ(reopened->load(u, out), std::optional<std::uint64_t>{u % 3 + 1})
        << "user " << u;
    EXPECT_TRUE(bit_equal(out, latest[u])) << "user " << u;
  }
  EXPECT_EQ(reopened->live_records(), 8u);
  // Appending after the reopen lands after the scanned tail, never on top
  // of an existing record.
  const std::uint64_t dead_before = reopened->dead_records();
  reopened->append(0, table(777), 9);
  EXPECT_EQ(reopened->latest_version(0), std::optional<std::uint64_t>{9});
  EXPECT_EQ(reopened->dead_records(), dead_before + 1);
}

TEST_F(SegmentStoreFixture, ReopenRejectsASchemaMismatch) {
  const std::string dir = fresh_dir("schema");
  { open(small_params(dir)); }
  SegmentStoreParams p = small_params(dir);
  EXPECT_THROW(SegmentStore(steps, tools, kStates + 1, kActions, p),
               std::runtime_error);
  std::vector<adl::ToolId> other_tools = tools;
  other_tools.back() = 999;
  EXPECT_THROW(SegmentStore(steps, other_tools, kStates, kActions, p),
               std::runtime_error);
}

TEST_F(SegmentStoreFixture, EveryOneByteFlipInACommittedRecordIsRejected) {
  const std::string dir = fresh_dir("sweep");
  const rl::QTable v1 = table(41), v2 = table(42);
  auto store = open(small_params(dir));
  store->reserve_users(1);
  store->append(0, v1, 1);
  store->append(0, v2, 2);
  // Both records live in writer 0's first segment: v1 at slot 0, v2 at
  // slot 1.
  const std::string seg_path = dir + "/seg-w0-000000.seg";
  ASSERT_TRUE(fs::exists(seg_path));
  const std::size_t rec_off = kHeaderBytes + 1 * kRecordBytes;

  const auto flip = [&](std::size_t offset) {
    std::fstream f(seg_path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(byte ^ 0x5A));
    f.flush();
  };

  rl::QTable out(kStates, kActions);
  ASSERT_EQ(store->load(0, out), std::optional<std::uint64_t>{2});
  for (std::size_t i = 0; i < kRecordBytes; ++i) {
    flip(rec_off + i);
    // The open store's index points at the now-corrupt v2 record: the load
    // must throw and leave the destination untouched (MAP_SHARED makes the
    // file flip visible through the mapping immediately).
    rl::QTable victim(kStates, kActions, 7.5);
    const rl::QTable before = victim;
    EXPECT_THROW(store->load(0, victim), std::runtime_error)
        << "offset " << i;
    EXPECT_TRUE(bit_equal(victim, before)) << "offset " << i;
    // A restarting reader scans past the bad record and falls back to the
    // newest valid one: version 1.
    {
      auto reader = open(small_params(dir));
      rl::QTable fallback(kStates, kActions);
      ASSERT_EQ(reader->load(0, fallback), std::optional<std::uint64_t>{1})
          << "offset " << i;
      EXPECT_TRUE(bit_equal(fallback, v1)) << "offset " << i;
    }
    flip(rec_off + i);  // restore
  }
  // Control: with every byte restored the record validates again.
  EXPECT_EQ(store->load(0, out), std::optional<std::uint64_t>{2});
  EXPECT_TRUE(bit_equal(out, v2));
}

TEST_F(SegmentStoreFixture, CrashBetweenAppendAndPublishLeavesStoreOnOld) {
  const std::string dir = fresh_dir("crash");
  const rl::QTable v1 = table(51), v2 = table(52);
  auto store = open(small_params(dir));
  store->reserve_users(1);
  store->append(0, v1, 1);

  store->pre_publish_site().set_hook([](const std::string&) {
    throw std::runtime_error("injected crash before the magic publish");
  });
  EXPECT_THROW(store->append(0, v2, 2), std::runtime_error);
  // The tail did not advance and the index still serves version 1.
  EXPECT_EQ(store->latest_version(0), std::optional<std::uint64_t>{1});
  rl::QTable out(kStates, kActions);
  EXPECT_EQ(store->load(0, out), std::optional<std::uint64_t>{1});
  EXPECT_TRUE(bit_equal(out, v1));
  EXPECT_EQ(store->appends(), 1u);

  // A restart over the crashed store sees only the committed record — the
  // half-written slot has no magic and is invisible to the scan.
  {
    auto reader = open(small_params(dir));
    EXPECT_EQ(reader->latest_version(0), std::optional<std::uint64_t>{1});
    EXPECT_EQ(reader->live_records(), 1u);
    EXPECT_EQ(reader->dead_records(), 0u);
  }

  // Crash over: the retry overwrites the abandoned slot and publishes.
  store->pre_publish_site().set_hook(nullptr);
  store->append(0, v2, 2);
  EXPECT_EQ(store->load(0, out), std::optional<std::uint64_t>{2});
  EXPECT_TRUE(bit_equal(out, v2));
  EXPECT_EQ(store->live_records(), 1u);
  EXPECT_EQ(store->dead_records(), 1u);  // v1, superseded
}

TEST_F(SegmentStoreFixture, CompactionKeepsLatestVersionsAndUnlinksSegments) {
  const std::string dir = fresh_dir("compact");
  SegmentStoreParams p = small_params(dir);
  p.segment_bytes = kHeaderBytes + 4 * kRecordBytes;  // 4 records per segment
  p.compact_min_records = 8;
  p.compact_dead_ratio = 0.5;
  auto store = open(p);
  store->reserve_users(3);

  // 3 users x 16 versions: all but the last 3 records are dead, so the
  // dead ratio crosses 0.5 over and over.
  for (std::uint64_t v = 1; v <= 16; ++v) {
    for (std::uint64_t u = 0; u < 3; ++u) {
      store->append(u, table(100 * u + v), v);
    }
  }
  EXPECT_GT(store->compactions(), 0u);
  EXPECT_EQ(store->live_records(), 3u);
  // Without compaction 48 appends at 4 records/segment would be 12
  // segments; reclamation must have unlinked most of them.
  EXPECT_LT(store->num_segments(), 6u);
  EXPECT_EQ(segment_files(dir), store->num_segments());

  rl::QTable out(kStates, kActions);
  for (std::uint64_t u = 0; u < 3; ++u) {
    ASSERT_EQ(store->load(u, out), std::optional<std::uint64_t>{16});
    EXPECT_TRUE(bit_equal(out, table(100 * u + 16))) << "user " << u;
  }

  // The compacted layout survives a restart bit-for-bit.
  store.reset();
  auto reopened = open(p);
  for (std::uint64_t u = 0; u < 3; ++u) {
    ASSERT_EQ(reopened->load(u, out), std::optional<std::uint64_t>{16});
    EXPECT_TRUE(bit_equal(out, table(100 * u + 16))) << "user " << u;
  }
}

TEST_F(SegmentStoreFixture, InspectSummarizesAStoreDirectory) {
  const std::string dir = fresh_dir("inspect");
  {
    auto store = open(small_params(dir));
    store->reserve_users(4);
    store->append(0, table(1), 1);
    store->append(0, table(2), 2);
    store->append(3, table(3), 5);
  }
  ASSERT_TRUE(SegmentStore::is_store_dir(dir));
  EXPECT_FALSE(SegmentStore::is_store_dir(::testing::TempDir()));

  const SegmentStore::Info info = SegmentStore::inspect(dir);
  EXPECT_TRUE(info.meta_ok);
  EXPECT_EQ(info.num_states, kStates);
  EXPECT_EQ(info.num_actions, kActions);
  EXPECT_EQ(info.records, 3u);
  EXPECT_EQ(info.anchors, 3u);  // full-row changes: deltas never profitable
  EXPECT_EQ(info.deltas, 0u);
  EXPECT_EQ(info.corrupt_records, 0u);
  EXPECT_EQ(info.users, 2u);
  EXPECT_EQ(info.live_records, 2u);
  EXPECT_EQ(info.max_version, 5u);
  EXPECT_DOUBLE_EQ(info.mean_chain_length, 1.0);
  ASSERT_EQ(info.segment_details.size(), info.segments);
}

// ---------------------------------------------------------------------------
// SegmentPolicyStore: the drop-in proof.
// ---------------------------------------------------------------------------

namespace T = adl::tools;

struct SegmentPolicyFixture : ::testing::Test {
  adl::AdlLibrary library;

  planning::RoutineLearner trained(std::uint64_t seed = 5) {
    planning::RoutineLearner learner(library.tea_making(), util::Rng(seed));
    const std::vector<adl::StepId> routine{T::kTeaBox, T::kElectricPot,
                                           T::kKettle, T::kTeaCup};
    for (int i = 0; i < 80; ++i) learner.train_episode(routine);
    return learner;
  }

  std::string fresh_dir(const char* name) {
    const std::string dir = ::testing::TempDir() + "/coreda_segpol_" + name;
    fs::remove_all(dir);
    return dir;
  }
};

TEST_F(SegmentPolicyFixture, ServeEngineDrainsIdenticallyOverEitherBackend) {
  planning::RoutineLearner donor = trained();
  PolicyStoreParams file_params;
  file_params.dir = fresh_dir("files");
  file_params.flush_every = 2;
  PolicyStore file_store(donor, file_params);

  SegmentPolicyStoreParams seg_params;
  seg_params.dir = fresh_dir("segments");
  seg_params.flush_every = 2;
  seg_params.writers = 3;
  SegmentPolicyStore seg_store(donor, seg_params);

  ServeEngineParams engine_params;
  engine_params.pool.slots = 3;
  ServeEngine file_engine(library, library.tea_making(), file_store,
                          engine_params);
  ServeEngine seg_engine(library, library.tea_making(), seg_store,
                         engine_params);
  for (int u = 0; u < 9; ++u) {
    const std::string name = "user" + std::to_string(u);
    patient::PatientProfile profile =
        patient::PatientProfile::with_severity(name, 0.1 * u / 9.0 + 0.2);
    file_engine.add_user(name, profile);
    seg_engine.add_user(name, profile);
  }
  for (int round = 0; round < 4; ++round) {
    for (UserId u = 0; u < 9; ++u) {
      file_engine.enqueue(u, 2);
      seg_engine.enqueue(u, 2);
    }
  }
  exec::TrialRunner runner(1);
  const ServeReport file_report = file_engine.drain(runner);
  const ServeReport seg_report = seg_engine.drain(runner);

  EXPECT_EQ(file_report.sessions, seg_report.sessions);
  EXPECT_EQ(file_report.checksum, seg_report.checksum);
  EXPECT_EQ(file_report.prompts, seg_report.prompts);
  EXPECT_EQ(file_report.pool_hits, seg_report.pool_hits);
  EXPECT_EQ(file_report.staged_writes, seg_report.staged_writes);
  EXPECT_EQ(file_report.disk_writes, seg_report.disk_writes);
  for (UserId u = 0; u < 9; ++u) {
    EXPECT_EQ(file_store.version(u), seg_store.version(u)) << "user " << u;
  }
  EXPECT_GT(seg_store.segments().appends(), 0u);
}

TEST_F(SegmentPolicyFixture, RestoreReadsTheNewestFlushedRecordAfterRestart) {
  planning::RoutineLearner donor = trained();
  const std::string dir = fresh_dir("restore");
  rl::QTable staged_q = donor.q();
  {
    SegmentPolicyStoreParams params;
    params.dir = dir;
    params.flush_every = 1;
    SegmentPolicyStore store(donor, params);
    const UserId u = store.add_user("tanaka");
    store.stage(u, staged_q);  // version 2, flushed immediately
    store.stage(u, staged_q);  // version 3
  }
  planning::RoutineLearner same_donor = trained();
  SegmentPolicyStoreParams params;
  params.dir = dir;
  SegmentPolicyStore reader(same_donor, params);
  const UserId u = reader.add_user("tanaka");
  EXPECT_EQ(reader.restore(u), std::optional<std::uint64_t>{3});
  EXPECT_TRUE(bit_equal(reader.q(u), staged_q));
  // An unknown user restores to nothing, exactly like the per-file store.
  const UserId fresh = reader.add_user("nobody");
  EXPECT_EQ(reader.restore(fresh), std::nullopt);
}

TEST_F(SegmentPolicyFixture, CrashInjectedStageKeepsCommittedVersionReadable) {
  planning::RoutineLearner donor = trained();
  const std::string dir = fresh_dir("crash");
  SegmentPolicyStoreParams params;
  params.dir = dir;
  params.flush_every = 1;
  SegmentPolicyStore store(donor, params);
  const UserId u = store.add_user("tanaka");
  store.stage(u, donor.q());  // version 2 committed
  ASSERT_EQ(store.segments().latest_version(u), std::optional<std::uint64_t>{2});

  store.pre_publish_site().set_hook([](const std::string&) {
    throw std::runtime_error("injected crash before the magic publish");
  });
  EXPECT_THROW(store.stage(u, donor.q()), std::runtime_error);
  EXPECT_EQ(store.version(u), 3u);  // the in-memory entry did advance
  EXPECT_EQ(store.segments().latest_version(u),
            std::optional<std::uint64_t>{2});

  // Crash over: the dirty entry flushes on the next attempt.
  store.pre_publish_site().set_hook(nullptr);
  store.flush(u);
  EXPECT_EQ(store.segments().latest_version(u),
            std::optional<std::uint64_t>{3});
  EXPECT_EQ(store.disk_writes(), 2u);  // the crashed attempt cost no wear
}

TEST_F(SegmentPolicyFixture, ImportV2DirAdoptsPerFileSnapshots) {
  planning::RoutineLearner donor = trained();
  const std::string v2_dir = fresh_dir("v2files");
  rl::QTable staged_q = donor.q();
  staged_q.set(0, 0, 1234.5);
  {
    PolicyStoreParams params;
    params.dir = v2_dir;
    params.flush_every = 1;
    PolicyStore legacy(donor, params);
    legacy.add_user("alice");
    legacy.add_user("bob");
    legacy.stage(0, staged_q);  // alice: version 2 on disk
    legacy.stage(1, donor.q());
    legacy.stage(1, donor.q());  // bob: version 3 on disk
  }

  SegmentPolicyStoreParams params;
  params.dir = fresh_dir("migrated");
  SegmentPolicyStore store(donor, params);
  store.add_user("alice");
  store.add_user("bob");
  store.add_user("carol");  // no snapshot: untouched by the import
  EXPECT_EQ(store.import_v2_dir(v2_dir), 2u);

  EXPECT_EQ(store.version(0), 2u);
  EXPECT_EQ(store.version(1), 3u);
  EXPECT_EQ(store.version(2), 1u);
  EXPECT_TRUE(bit_equal(store.q(0), staged_q));
  EXPECT_EQ(store.segments().latest_version(0),
            std::optional<std::uint64_t>{2});
  EXPECT_EQ(store.segments().latest_version(2), std::nullopt);
}

}  // namespace
}  // namespace coreda::serve
