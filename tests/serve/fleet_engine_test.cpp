// The fleet tier's contract: a sharded drain over the mmap segment store is
// byte-identical at any --jobs (the acceptance witness compares hexfloat
// Q-table dumps AND the raw segment files between a 1-job and a 4-job
// fleet), cold starts come out of the store (or the donor table exactly
// once), eviction never loses a learning user's updates, and write-back
// batching trades appends for bounded staleness the same way the per-file
// store's flush_every does.

#include "serve/fleet_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "adl/library.hpp"

namespace coreda::serve {
namespace {

namespace fs = std::filesystem;
namespace T = adl::tools;

planning::RoutineLearner make_donor(const adl::AdlLibrary& library) {
  planning::RoutineLearner learner(library.tea_making(), util::Rng(5));
  const std::vector<adl::StepId> routine{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
  for (int i = 0; i < 80; ++i) learner.train_episode(routine);
  return learner;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf(std::ios::binary);
  buf << in.rdbuf();
  return buf.str();
}

struct FleetFixture : ::testing::Test {
  adl::AdlLibrary library;
  planning::RoutineLearner donor = make_donor(library);

  std::string fresh_dir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/coreda_fleet_" + name;
    fs::remove_all(dir);
    return dir;
  }

  std::unique_ptr<SegmentStore> open_store(const std::string& dir,
                                           std::size_t writers) {
    SegmentStoreParams p;
    p.dir = dir;
    p.writers = writers;
    return std::make_unique<SegmentStore>(
        donor.state_codec().symbols(), donor.action_codec().tools(),
        donor.q().num_states(), donor.q().num_actions(), p);
  }
};

TEST_F(FleetFixture, ConstructorRejectsAWriterShardMismatch) {
  auto store = open_store(fresh_dir("mismatch"), 2);
  FleetEngineParams params;
  params.shards = 3;  // != store writers: the lock-free partitioning breaks
  EXPECT_THROW(FleetEngine(library, library.tea_making(), *store, donor.q(),
                           params),
               std::invalid_argument);
}

// The acceptance witness: two fleets with identical configuration and
// enqueue history, one drained on 1 job and one on 4, must leave
// byte-identical stores — same hexfloat dump of every stored table, same
// raw segment file bytes — and identical deterministic report fields.
// learn_from_sessions is ON so the tables actually diverge per user and a
// scheduling-order leak anywhere would show up in the dumped mantissas.
TEST_F(FleetFixture, DrainIsByteIdenticalAtOneAndFourJobs) {
  const std::string dir1 = fresh_dir("jobs1");
  const std::string dir4 = fresh_dir("jobs4");
  FleetEngineParams params;
  params.shards = 3;
  params.slots_per_shard = 2;
  params.system.learn_from_sessions = true;
  auto store1 = open_store(dir1, params.shards);
  auto store4 = open_store(dir4, params.shards);
  FleetEngine fleet1(library, library.tea_making(), *store1, donor.q(),
                     params);
  FleetEngine fleet4(library, library.tea_making(), *store4, donor.q(),
                     params);

  constexpr std::size_t kUsers = 13;  // not a multiple of shards on purpose
  for (std::size_t u = 0; u < kUsers; ++u) {
    const double severity = 0.15 + 0.05 * static_cast<double>(u % 7);
    ASSERT_EQ(fleet1.register_user(severity), u);
    ASSERT_EQ(fleet4.register_user(severity), u);
  }

  exec::TrialRunner serial(1);
  exec::TrialRunner pooled(4);
  FleetReport r1, r4;
  for (int round = 0; round < 3; ++round) {
    // A sparse, uneven active set: some users hammer, some never show.
    for (std::size_t u = 0; u < kUsers; ++u) {
      for (std::size_t s = 0; s < (u * (round + 1)) % 4; ++s) {
        fleet1.enqueue(u);
        fleet4.enqueue(u);
      }
    }
    r1 = fleet1.drain(serial);
    r4 = fleet4.drain(pooled);
  }
  fleet1.flush_residents();
  fleet4.flush_residents();

  EXPECT_GT(r1.sessions, 0u);
  EXPECT_EQ(r1.sessions, r4.sessions);
  EXPECT_EQ(r1.completed, r4.completed);
  EXPECT_EQ(r1.prompts, r4.prompts);
  EXPECT_EQ(r1.checksum, r4.checksum);
  EXPECT_EQ(r1.pool_hits, r4.pool_hits);
  EXPECT_EQ(r1.cold_loads, r4.cold_loads);
  EXPECT_EQ(r1.reference_starts, r4.reference_starts);
  EXPECT_EQ(r1.appends, r4.appends);
  EXPECT_EQ(r1.drift_flagged, r4.drift_flagged);
  for (std::size_t u = 0; u < kUsers; ++u) {
    EXPECT_EQ(fleet1.version(u), fleet4.version(u)) << "user " << u;
    EXPECT_EQ(fleet1.prompt_ewma(u), fleet4.prompt_ewma(u)) << "user " << u;
  }

  // Hexfloat dump: every stored table, every mantissa bit.
  std::ostringstream dump1, dump4;
  fleet1.dump_policies(dump1);
  fleet4.dump_policies(dump4);
  EXPECT_FALSE(dump1.str().empty());
  EXPECT_EQ(dump1.str(), dump4.str());

  // And the stores themselves: same file names, same bytes.
  std::vector<std::string> names1, names4;
  for (const fs::directory_entry& de : fs::directory_iterator(dir1)) {
    names1.push_back(de.path().filename().string());
  }
  for (const fs::directory_entry& de : fs::directory_iterator(dir4)) {
    names4.push_back(de.path().filename().string());
  }
  std::sort(names1.begin(), names1.end());
  std::sort(names4.begin(), names4.end());
  ASSERT_EQ(names1, names4);
  for (const std::string& name : names1) {
    EXPECT_EQ(read_file(fs::path(dir1) / name), read_file(fs::path(dir4) / name))
        << name;
  }
}

TEST_F(FleetFixture, ColdStartsLoadFromTheStoreAndDonorExactlyOnce) {
  const std::string dir = fresh_dir("cold");
  FleetEngineParams params;
  params.shards = 1;
  params.slots_per_shard = 1;  // one slot: users 0 and 1 evict each other
  params.system.learn_from_sessions = true;
  auto store = open_store(dir, params.shards);
  FleetEngine fleet(library, library.tea_making(), *store, donor.q(), params);
  fleet.register_user(0.2);
  fleet.register_user(0.4);

  exec::TrialRunner runner(1);
  fleet.enqueue(0);
  fleet.enqueue(0);  // back-to-back: the second serve is a pool hit
  fleet.enqueue(1);  // evicts user 0 — whose table must be appended first
  fleet.enqueue(0);  // cold again, now FROM THE STORE, not the donor
  const FleetReport report = fleet.drain(runner);

  EXPECT_EQ(report.sessions, 4u);
  EXPECT_EQ(report.pool_hits, 1u);
  EXPECT_EQ(report.reference_starts, 2u);  // first sight of users 0 and 1
  EXPECT_EQ(report.cold_loads, 1u);        // user 0's comeback
  EXPECT_EQ(fleet.version(0), 3u);
  EXPECT_EQ(fleet.version(1), 1u);
  // write_back_every=1 appends after every session (4) — eviction found
  // nothing unwritten to save.
  EXPECT_EQ(report.appends, 4u);
  EXPECT_EQ(store->latest_version(0), std::optional<std::uint64_t>{3});
  EXPECT_EQ(store->latest_version(1), std::optional<std::uint64_t>{1});
}

TEST_F(FleetFixture, WriteBackBatchingDefersAppendsUntilEvictionOrFlush) {
  const std::string dir = fresh_dir("batch");
  FleetEngineParams params;
  params.shards = 1;
  params.slots_per_shard = 1;
  params.system.learn_from_sessions = true;
  params.write_back_every = 4;
  auto store = open_store(dir, params.shards);
  FleetEngine fleet(library, library.tea_making(), *store, donor.q(), params);
  fleet.register_user(0.2);
  fleet.register_user(0.4);

  exec::TrialRunner runner(1);
  for (int i = 0; i < 3; ++i) fleet.enqueue(0);  // under the batch
  FleetReport report = fleet.drain(runner);
  EXPECT_EQ(report.appends, 0u);
  EXPECT_EQ(store->latest_version(0), std::nullopt);

  // Eviction must not lose the 3 unwritten sessions.
  fleet.enqueue(1);
  report = fleet.drain(runner);
  EXPECT_EQ(report.appends, 1u);
  EXPECT_EQ(store->latest_version(0), std::optional<std::uint64_t>{3});

  // And the post-drain flush persists the now-resident user 1.
  fleet.flush_residents();
  EXPECT_EQ(store->latest_version(1), std::optional<std::uint64_t>{1});
  EXPECT_EQ(store->appends(), 2u);
}

// A fleet restart: a fresh engine over the same store starts every comeback
// user from their stored table (cold_loads, no reference_starts), so the
// learning carried across the restart.
TEST_F(FleetFixture, RestartResumesFromStoredTables) {
  const std::string dir = fresh_dir("restart");
  FleetEngineParams params;
  params.shards = 2;
  params.slots_per_shard = 1;
  params.system.learn_from_sessions = true;
  std::ostringstream before;
  {
    auto store = open_store(dir, params.shards);
    FleetEngine fleet(library, library.tea_making(), *store, donor.q(),
                      params);
    fleet.register_user(0.2);
    fleet.register_user(0.5);
    exec::TrialRunner runner(1);
    for (int i = 0; i < 2; ++i) {
      fleet.enqueue(0);
      fleet.enqueue(1);
    }
    fleet.drain(runner);
    fleet.flush_residents();
    fleet.dump_policies(before);
  }

  auto store = open_store(dir, params.shards);
  FleetEngine fleet(library, library.tea_making(), *store, donor.q(), params);
  fleet.register_user(0.2);
  fleet.register_user(0.5);
  std::ostringstream after;
  fleet.dump_policies(after);
  EXPECT_EQ(before.str(), after.str());  // the restart changed nothing

  exec::TrialRunner runner(1);
  fleet.enqueue(0);
  fleet.enqueue(1);
  const FleetReport report = fleet.drain(runner);
  EXPECT_EQ(report.cold_loads, 2u);
  EXPECT_EQ(report.reference_starts, 0u);
  // Versions continue from the stored ones, not from 0.
  EXPECT_EQ(store->latest_version(0), std::optional<std::uint64_t>{3});
}

// The tentpole budget: a registered-but-idle user may cost at most 16
// bytes of resident RAM — the engine's packed u32 plus the store's index
// slab share. (An *active* user additionally borrows a pool slot, which is
// bounded by shards * slots_per_shard, not by fleet size.)
TEST_F(FleetFixture, ResidentStateStaysUnderSixteenBytesPerUser) {
  const std::string dir = fresh_dir("budget");
  FleetEngineParams params;
  params.shards = 4;
  auto store = open_store(dir, params.shards);
  FleetEngine fleet(library, library.tea_making(), *store, donor.q(), params);

  constexpr std::uint64_t kUsers = 20000;
  fleet.reserve_users(kUsers);
  for (std::uint64_t u = 0; u < kUsers; ++u) {
    fleet.register_user(0.1 + 0.8 * static_cast<double>(u % 100) / 100.0);
  }
  ASSERT_EQ(fleet.num_users(), kUsers);
  EXPECT_EQ(fleet.resident_state_bytes(), kUsers * 4);
  const double per_user =
      static_cast<double>(fleet.resident_state_bytes() +
                          store->index_slab_bytes()) /
      static_cast<double>(kUsers);
  EXPECT_LT(per_user, 16.0);

  // The derived version costs no resident bytes and still reads correctly
  // before any session.
  EXPECT_EQ(fleet.version(0), 0u);
  EXPECT_EQ(fleet.version(kUsers - 1), 0u);
}

// Drift flagging comes out of the packed EWMA: with the threshold at zero
// every session flags; with it unreachable none do; and the EWMA itself is
// readable (and zero before a user's first session).
TEST_F(FleetFixture, DriftFlaggingFollowsThePackedEwma) {
  const std::string dir = fresh_dir("drift");
  FleetEngineParams params;
  params.shards = 1;
  params.slots_per_shard = 1;
  params.drift_threshold = 0.0;
  auto store = open_store(dir, params.shards);
  FleetEngine fleet(library, library.tea_making(), *store, donor.q(), params);
  fleet.register_user(0.3);
  fleet.register_user(0.6);
  EXPECT_EQ(fleet.prompt_ewma(0), 0.0);  // unprimed

  exec::TrialRunner runner(1);
  for (int i = 0; i < 3; ++i) fleet.enqueue(0);
  fleet.enqueue(1);
  const FleetReport report = fleet.drain(runner);
  EXPECT_EQ(report.sessions, 4u);
  EXPECT_EQ(report.drift_flagged, 4u);  // threshold 0: every session flags
  EXPECT_GE(fleet.prompt_ewma(0), 0.0);
  EXPECT_LE(fleet.prompt_ewma(0), 255.0 / 8.0);

  // Same traffic, unreachable threshold: nothing flags (the EWMA tops out
  // at 31.875 prompts/session by construction).
  const std::string dir2 = fresh_dir("drift_quiet");
  FleetEngineParams quiet = params;
  quiet.drift_threshold = 1000.0;
  auto store2 = open_store(dir2, quiet.shards);
  FleetEngine fleet2(library, library.tea_making(), *store2, donor.q(),
                     quiet);
  fleet2.register_user(0.3);
  fleet2.register_user(0.6);
  for (int i = 0; i < 3; ++i) fleet2.enqueue(0);
  fleet2.enqueue(1);
  EXPECT_EQ(fleet2.drain(runner).drift_flagged, 0u);
}

}  // namespace
}  // namespace coreda::serve
