// ServeEngine: deterministic multi-tenant drains at any --jobs, serving
// report accounting, and the prompt-rate drift detector.

#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"

namespace coreda::serve {
namespace {

namespace T = adl::tools;

struct EngineFixture : ::testing::Test {
  adl::AdlLibrary library;

  planning::RoutineLearner trained() {
    planning::RoutineLearner learner(library.tea_making(), util::Rng(5));
    const std::vector<adl::StepId> steps{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
    for (int i = 0; i < 80; ++i) learner.train_episode(steps);
    return learner;
  }

  /// A standard 12-user engine over `store` with 3 pool slots; sessions
  /// are enqueued in two bursts per user.
  ServeReport standard_drain(PolicyStore& store, std::size_t jobs) {
    ServeEngineParams params;
    params.pool.slots = 3;
    params.pool.seed = 777;
    ServeEngine engine(library, library.tea_making(), store, params);
    for (std::size_t u = 0; u < 12; ++u) {
      util::Rng rng(exec::trial_seed(31, u));
      engine.add_user("U" + std::to_string(u),
                      patient::PatientProfile::with_severity(
                          "U", 0.1 + 0.4 * rng.uniform()));
    }
    for (int round = 0; round < 2; ++round) {
      for (UserId u = 0; u < 12; ++u) engine.enqueue(u, 3);
    }
    exec::TrialRunner runner(jobs);
    return engine.drain(runner);
  }
};

TEST_F(EngineFixture, DrainIsByteIdenticalAtAnyJobCount) {
  planning::RoutineLearner donor = trained();
  PolicyStore store1(donor);
  const ServeReport serial = standard_drain(store1, 1);
  PolicyStore store4(donor);
  const ServeReport parallel = standard_drain(store4, 4);

  EXPECT_EQ(serial.sessions, 72u);
  EXPECT_EQ(serial.sessions, parallel.sessions);
  EXPECT_EQ(serial.completed, parallel.completed);
  EXPECT_EQ(serial.prompts, parallel.prompts);
  EXPECT_EQ(serial.checksum, parallel.checksum);
  EXPECT_EQ(serial.pool_hits, parallel.pool_hits);
  EXPECT_EQ(serial.policy_swaps, parallel.policy_swaps);
  EXPECT_EQ(serial.flagged_users, parallel.flagged_users);
  ASSERT_EQ(serial.users.size(), parallel.users.size());
  for (std::size_t u = 0; u < serial.users.size(); ++u) {
    EXPECT_EQ(serial.users[u].checksum, parallel.users[u].checksum) << u;
    EXPECT_EQ(serial.users[u].sessions, parallel.users[u].sessions) << u;
    EXPECT_DOUBLE_EQ(serial.users[u].prompt_ewma,
                     parallel.users[u].prompt_ewma)
        << u;
  }
}

TEST_F(EngineFixture, ReportAccountingIsConsistent) {
  planning::RoutineLearner donor = trained();
  PolicyStore store(donor);
  const ServeReport report = standard_drain(store, 2);

  EXPECT_EQ(report.pool_hits + report.policy_swaps, report.sessions);
  // Bursts of 3 on 4 tenants per slot: each burst opens with a swap and
  // keeps residency for the remaining 2 sessions.
  EXPECT_EQ(report.policy_swaps, 24u);
  EXPECT_EQ(report.pool_hits, 48u);
  EXPECT_EQ(report.staged_writes, report.sessions);  // write-back per serve
  EXPECT_EQ(report.disk_writes, 0u);                 // memory-only store
  std::uint64_t sessions = 0;
  for (const ServeUserStats& u : report.users) sessions += u.sessions;
  EXPECT_EQ(sessions, report.sessions);
  // Every user's table was written back at least once per session.
  EXPECT_EQ(store.version(0), 1u + report.users[0].sessions);
}

TEST_F(EngineFixture, DriftDetectorFlagsThePromptStorm) {
  planning::RoutineLearner donor = trained();
  PolicyStore store(donor);
  ServeEngineParams params;
  params.pool.slots = 2;
  params.drift.threshold = 3.0;
  params.drift.warmup_sessions = 3;
  ServeEngine engine(library, library.tea_making(), store, params);

  // A mild user the converged policy barely prompts, and a drifted user
  // whose every decision stalls or grabs the wrong tool — the prompt-rate
  // spike the detector exists for.
  patient::PatientProfile drifted =
      patient::PatientProfile::with_severity("Drifted", 0.95);
  drifted.comply_minimal = 0.3;
  const UserId calm = engine.add_user(
      "Calm", patient::PatientProfile::with_severity("Calm", 0.05));
  const UserId stormy = engine.add_user("Stormy", drifted);

  engine.enqueue(calm, 8);
  engine.enqueue(stormy, 8);
  exec::TrialRunner runner(1);
  const ServeReport report = engine.drain(runner);

  EXPECT_FALSE(report.users[calm].needs_retraining);
  EXPECT_TRUE(report.users[stormy].needs_retraining);
  EXPECT_EQ(report.flagged_users, 1u);
  EXPECT_LT(report.users[calm].prompt_ewma, 3.0);
  EXPECT_GE(report.users[stormy].prompt_ewma, 3.0);
}

TEST_F(EngineFixture, DriftFlagNeedsWarmupAndSticks) {
  planning::RoutineLearner donor = trained();
  PolicyStore store(donor);
  ServeEngineParams params;
  params.pool.slots = 1;
  params.drift.threshold = 0.0;  // every session is "over threshold"...
  params.drift.warmup_sessions = 5;
  ServeEngine engine(library, library.tea_making(), store, params);
  const UserId u = engine.add_user(
      "U", patient::PatientProfile::with_severity("U", 0.3));

  exec::TrialRunner runner(1);
  engine.enqueue(u, 4);
  ServeReport report = engine.drain(runner);
  // ...but 4 sessions have not cleared the warm-up yet.
  EXPECT_FALSE(report.users[u].needs_retraining);

  engine.enqueue(u, 1);
  report = engine.drain(runner);
  EXPECT_TRUE(report.users[u].needs_retraining);
  EXPECT_EQ(engine.user_stats(u).sessions, 5u);
}

TEST_F(EngineFixture, EngineValidatesItsInputs) {
  planning::RoutineLearner donor = trained();
  PolicyStore store(donor);
  ServeEngine engine(library, library.tea_making(), store, {});
  EXPECT_THROW(engine.enqueue(0, 1), std::out_of_range);
  const UserId u = engine.add_user(
      "U", patient::PatientProfile::with_severity("U", 0.1));
  engine.enqueue(u, 0);  // zero sessions: a no-op, not an error
  EXPECT_EQ(engine.queued(), 0u);
  EXPECT_THROW(engine.user_stats(u + 1), std::out_of_range);
}

}  // namespace
}  // namespace coreda::serve
