// Delta-chain snapshot robustness ("coreda-policy v3"): anchor + delta
// round-trips, a corruption sweep over every byte of the delta region
// (the loader must hand back a valid committed prefix — never garbage),
// rebase-anchor recovery after a missing / mis-parented / torn delta,
// the pre-append crash seam, the store's rebase cadence, and transparent
// v2 <-> v3 restore (the migration seam `policy migrate --to=v3` drives).

#include "serve/policy_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "adl/library.hpp"
#include "planning/serialize.hpp"

namespace coreda::serve {
namespace {

namespace T = adl::tools;
namespace fs = std::filesystem;

struct PolicyV3Fixture : ::testing::Test {
  adl::AdlLibrary library;

  planning::RoutineLearner trained(std::uint64_t seed = 5) {
    planning::RoutineLearner learner(library.tea_making(), util::Rng(seed));
    const std::vector<adl::StepId> steps{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
    for (int i = 0; i < 80; ++i) learner.train_episode(steps);
    return learner;
  }

  std::string fresh_dir(const char* name) {
    const std::string dir = ::testing::TempDir() + "/coreda_v3_" + name;
    fs::remove_all(dir);
    return dir;
  }

  static std::string file_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  // Bitwise table comparison via the serializer: byte equality of the
  // canonical encoding implies bit equality of every Q cell.
  static std::string table_bytes(std::span<const adl::StepId> steps,
                                 std::span<const adl::ToolId> tools,
                                 const rl::QTable& q) {
    std::ostringstream out(std::ios::binary);
    planning::save_policy_v2(out, steps, tools, q, 1);
    return out.str();
  }
};

TEST_F(PolicyV3Fixture, FullRecordRoundTripIsByteIdentical) {
  planning::RoutineLearner source = trained();
  const auto steps = source.state_codec().symbols();
  const auto tools = source.action_codec().tools();

  std::ostringstream out(std::ios::binary);
  const std::size_t bytes =
      planning::save_policy_v3_full(out, steps, tools, source.q(), 7);
  EXPECT_EQ(out.str().size(), bytes);

  rl::QTable q(source.q().num_states(), source.q().num_actions());
  std::istringstream in(out.str(), std::ios::binary);
  const planning::PolicyV3Chain chain =
      planning::load_policy_v3(in, steps, tools, q);
  EXPECT_EQ(chain.version, 7u);
  EXPECT_EQ(chain.deltas_applied, 0u);
  EXPECT_FALSE(chain.tail_skipped);

  std::ostringstream again(std::ios::binary);
  planning::save_policy_v3_full(again, steps, tools, q, 7);
  EXPECT_EQ(again.str(), out.str());
}

TEST_F(PolicyV3Fixture, DeltaChainRoundTripAppliesEveryRecord) {
  planning::RoutineLearner source = trained();
  const auto steps = source.state_codec().symbols();
  const auto tools = source.action_codec().tools();

  const rl::QTable q0 = source.q();
  rl::QTable q1 = q0;
  q1.set(0, 0, q1.get(0, 0) + 1.5);
  q1.set(3, 1, -0.0);  // sign-of-zero must survive the trip bit-exactly
  rl::QTable q2 = q1;
  q2.set(2, 0, 42.0);

  std::ostringstream out(std::ios::binary);
  planning::save_policy_v3_full(out, steps, tools, q0, 10);
  std::string bytes = out.str();
  bytes += planning::encode_policy_v3_delta(q0, q1, 11, 10);
  bytes += planning::encode_policy_v3_delta(q1, q2, 12, 11);
  // An idle flush writes an empty (zero-row) delta; it must still chain.
  bytes += planning::encode_policy_v3_delta(q2, q2, 13, 12);

  rl::QTable q(q0.num_states(), q0.num_actions());
  std::istringstream in(bytes, std::ios::binary);
  const planning::PolicyV3Chain chain =
      planning::load_policy_v3(in, steps, tools, q);
  EXPECT_EQ(chain.version, 13u);
  EXPECT_EQ(chain.deltas_applied, 3u);
  EXPECT_FALSE(chain.tail_skipped);
  EXPECT_EQ(table_bytes(steps, tools, q), table_bytes(steps, tools, q2));

  // Shape mismatches are caller bugs, rejected before any bytes exist.
  rl::QTable wrong(q0.num_states() + 1, q0.num_actions());
  EXPECT_THROW(planning::encode_policy_v3_delta(wrong, q1, 14, 13),
               std::invalid_argument);
}

TEST_F(PolicyV3Fixture, CorruptAnchorRejectsTheFileOutright) {
  planning::RoutineLearner source = trained();
  const auto steps = source.state_codec().symbols();
  const auto tools = source.action_codec().tools();

  std::ostringstream out(std::ios::binary);
  planning::save_policy_v3_full(out, steps, tools, source.q(), 10);
  const std::string anchor = out.str();

  for (const std::size_t off :
       {std::size_t{0}, std::size_t{9}, std::size_t{30}, anchor.size() / 2,
        anchor.size() - 2}) {
    std::string mutated = anchor;
    mutated[off] ^= 0x20;
    rl::QTable q(source.q().num_states(), source.q().num_actions());
    const double before = q.get(1, 1);
    std::istringstream in(mutated, std::ios::binary);
    EXPECT_THROW(planning::load_policy_v3(in, steps, tools, q),
                 std::runtime_error)
        << "flipped anchor byte " << off;
    EXPECT_DOUBLE_EQ(q.get(1, 1), before);
  }
}

TEST_F(PolicyV3Fixture, CorruptionSweepOverEveryDeltaByteRecoversAPrefix) {
  planning::RoutineLearner source = trained();
  const auto steps = source.state_codec().symbols();
  const auto tools = source.action_codec().tools();

  const rl::QTable q0 = source.q();
  rl::QTable q1 = q0;
  q1.set(0, 0, q1.get(0, 0) + 1.5);
  q1.set(1, 2, -3.25);
  rl::QTable q2 = q1;
  q2.set(2, 0, 42.0);

  std::ostringstream out(std::ios::binary);
  planning::save_policy_v3_full(out, steps, tools, q0, 10);
  const std::size_t anchor_size = out.str().size();
  const std::string d1 = planning::encode_policy_v3_delta(q0, q1, 11, 10);
  const std::string d2 = planning::encode_policy_v3_delta(q1, q2, 12, 11);
  const std::string file = out.str() + d1 + d2;

  const std::string bytes0 = table_bytes(steps, tools, q0);
  const std::string bytes1 = table_bytes(steps, tools, q1);

  // Flip one bit at EVERY offset of the delta region. Whatever the damage
  // hits — magic, version, parent, row counts, row payload, checksum — the
  // loader must return the longest valid prefix (and exactly its table),
  // flagged as a skipped tail. Never a throw, never a garbled table.
  for (std::size_t off = anchor_size; off < file.size(); ++off) {
    std::string mutated = file;
    mutated[off] ^= 0x20;
    rl::QTable q(q0.num_states(), q0.num_actions());
    std::istringstream in(mutated, std::ios::binary);
    planning::PolicyV3Chain chain;
    ASSERT_NO_THROW(chain = planning::load_policy_v3(in, steps, tools, q))
        << "flipped delta byte " << off;
    EXPECT_TRUE(chain.tail_skipped) << "flipped delta byte " << off;
    const bool in_first = off < anchor_size + d1.size();
    EXPECT_EQ(chain.version, in_first ? 10u : 11u)
        << "flipped delta byte " << off;
    EXPECT_EQ(chain.deltas_applied, in_first ? 0u : 1u)
        << "flipped delta byte " << off;
    EXPECT_EQ(table_bytes(steps, tools, q), in_first ? bytes0 : bytes1)
        << "flipped delta byte " << off;
  }
}

TEST_F(PolicyV3Fixture, MissingDeltaEndsTheChainAtItsLastValidParent) {
  planning::RoutineLearner source = trained();
  const auto steps = source.state_codec().symbols();
  const auto tools = source.action_codec().tools();

  const rl::QTable q0 = source.q();
  rl::QTable q1 = q0;
  q1.set(0, 0, 7.0);
  rl::QTable q2 = q1;
  q2.set(1, 0, 8.0);
  rl::QTable q3 = q2;
  q3.set(2, 0, 9.0);

  // Delta 12 never made it to disk: 13's parent doesn't match the chain.
  std::ostringstream out(std::ios::binary);
  planning::save_policy_v3_full(out, steps, tools, q0, 10);
  std::string bytes = out.str();
  bytes += planning::encode_policy_v3_delta(q0, q1, 11, 10);
  bytes += planning::encode_policy_v3_delta(q2, q3, 13, 12);

  rl::QTable q(q0.num_states(), q0.num_actions());
  std::istringstream in(bytes, std::ios::binary);
  const planning::PolicyV3Chain chain =
      planning::load_policy_v3(in, steps, tools, q);
  EXPECT_EQ(chain.version, 11u);
  EXPECT_EQ(chain.deltas_applied, 1u);
  EXPECT_TRUE(chain.tail_skipped);
  EXPECT_EQ(table_bytes(steps, tools, q), table_bytes(steps, tools, q1));
}

TEST_F(PolicyV3Fixture, StoreAppendsDeltasRebasesOnCadenceAndRestores) {
  planning::RoutineLearner donor = trained();
  const std::string dir = fresh_dir("cadence");
  PolicyStoreParams params;
  params.dir = dir;
  params.flush_every = 1;
  params.format = SnapshotFormat::kV3Delta;
  params.rebase_every = 3;
  PolicyStore store(donor, params);
  const UserId u = store.add_user("tanaka");
  const std::string path = store.path_for(u);

  rl::QTable q = donor.q();
  store.stage(u, q);  // version 2: the first flush is always a full anchor
  const std::size_t anchor_size = fs::file_size(path);

  q.set(0, 0, q.get(0, 0) + 1.0);
  store.stage(u, q);  // version 3: delta #1
  const std::size_t after_delta = fs::file_size(path);
  EXPECT_GT(after_delta, anchor_size);
  // One changed row costs rows*(1 idx + A values) + 6 header/checksum words.
  const std::size_t delta_size =
      8 * (6 + 1 * (1 + donor.q().num_actions()));
  EXPECT_EQ(after_delta - anchor_size, delta_size);

  q.set(0, 1, q.get(0, 1) + 1.0);
  store.stage(u, q);  // version 4: delta #2
  q.set(0, 2, q.get(0, 2) + 1.0);
  store.stage(u, q);  // version 5: delta #3 fills the cadence
  EXPECT_EQ(fs::file_size(path), anchor_size + 3 * delta_size);

  q.set(1, 0, q.get(1, 0) + 1.0);
  store.stage(u, q);  // version 6: rebase — one fresh full anchor
  EXPECT_EQ(fs::file_size(path), anchor_size);
  {
    std::ifstream in(path, std::ios::binary);
    const planning::PolicyV3Info info = planning::inspect_policy_v3(in);
    EXPECT_EQ(info.anchor.version, 6u);
    EXPECT_EQ(info.delta_count, 0u);
    EXPECT_FALSE(info.tail_skipped);
  }

  // Deltas cost a fraction of the full-snapshot traffic the same staging
  // sequence pays in v2 mode: 2 anchors + 3 single-row deltas vs 5 fulls.
  EXPECT_EQ(store.flush_bytes(), 2 * anchor_size + 3 * delta_size);
  EXPECT_LT(store.flush_bytes(), 5 * anchor_size);
  EXPECT_EQ(store.disk_writes(), 5u);

  // A warm restart reconstructs the exact staged table and version.
  PolicyStoreParams reader_params = params;
  PolicyStore reader(donor, reader_params);
  const UserId r = reader.add_user("tanaka");
  EXPECT_EQ(reader.restore(r), std::optional<std::uint64_t>{6});
  EXPECT_EQ(table_bytes(store.steps(), store.tools(), reader.q(r)),
            table_bytes(store.steps(), store.tools(), q));
}

TEST_F(PolicyV3Fixture, TornAppendTailRecoversAndNextFlushRebases) {
  planning::RoutineLearner donor = trained();
  const std::string dir = fresh_dir("torn");
  PolicyStoreParams params;
  params.dir = dir;
  params.flush_every = 1;
  params.format = SnapshotFormat::kV3Delta;
  std::string path;
  rl::QTable q = donor.q();
  {
    PolicyStore store(donor, params);
    const UserId u = store.add_user("tanaka");
    path = store.path_for(u);
    store.stage(u, q);  // version 2: anchor
    q.set(0, 0, 5.0);
    store.stage(u, q);  // version 3: delta
    q.set(1, 0, 6.0);
    store.stage(u, q);  // version 4: delta
  }

  // The power died mid-append: the last delta is half on disk.
  fs::resize_file(path, fs::file_size(path) - 5);

  PolicyStore store(donor, params);
  const UserId u = store.add_user("tanaka");
  EXPECT_EQ(store.restore(u), std::optional<std::uint64_t>{3});
  {
    std::ifstream in(path, std::ios::binary);
    const planning::PolicyV3Info info = planning::inspect_policy_v3(in);
    EXPECT_TRUE(info.tail_skipped);
    EXPECT_EQ(info.version, 3u);
    EXPECT_EQ(info.delta_count, 1u);
  }

  // Restore dropped the diff base, so the next flush rewrites a clean full
  // anchor — the torn tail is truncated away, not appended after.
  rl::QTable q2 = store.q(u);
  q2.set(2, 0, 7.0);
  store.stage(u, q2);  // version 4 again, now durable
  {
    std::ifstream in(path, std::ios::binary);
    const planning::PolicyV3Info info = planning::inspect_policy_v3(in);
    EXPECT_FALSE(info.tail_skipped);
    EXPECT_EQ(info.anchor.version, 4u);
    EXPECT_EQ(info.delta_count, 0u);
    EXPECT_TRUE(info.anchor.checksum_ok);
  }
}

TEST_F(PolicyV3Fixture, CrashBeforeDeltaAppendLeavesCommittedChainIntact) {
  planning::RoutineLearner donor = trained();
  const std::string dir = fresh_dir("crash");
  PolicyStoreParams params;
  params.dir = dir;
  params.flush_every = 1;
  params.format = SnapshotFormat::kV3Delta;
  PolicyStore store(donor, params);
  const UserId u = store.add_user("tanaka");
  const std::string path = store.path_for(u);

  rl::QTable q = donor.q();
  store.stage(u, q);  // version 2: anchor
  q.set(0, 0, 5.0);
  store.stage(u, q);  // version 3: delta
  const std::string committed = file_bytes(path);

  // The crash seam fires before any append byte lands, so the committed
  // chain is byte-identical afterwards.
  store.pre_publish_site().set_hook([](const std::string&) {
    throw std::runtime_error("injected crash before append");
  });
  q.set(1, 0, 6.0);
  EXPECT_THROW(store.stage(u, q), std::runtime_error);
  EXPECT_EQ(file_bytes(path), committed);
  {
    PolicyStore reader(donor, params);
    const UserId r = reader.add_user("tanaka");
    EXPECT_EQ(reader.restore(r), std::optional<std::uint64_t>{3});
  }

  // Crash over: the entry is still dirty and the diff base still matches
  // the committed chain, so the retry appends the pending delta normally.
  store.pre_publish_site().set_hook(nullptr);
  store.flush(u);
  {
    std::ifstream in(path, std::ios::binary);
    const planning::PolicyV3Info info = planning::inspect_policy_v3(in);
    EXPECT_EQ(info.version, 4u);
    EXPECT_EQ(info.delta_count, 2u);
    EXPECT_FALSE(info.tail_skipped);
  }
}

TEST_F(PolicyV3Fixture, V2AndV3SnapshotsRestoreAcrossStoreModes) {
  planning::RoutineLearner donor = trained();
  const std::string dir = fresh_dir("migrate");
  rl::QTable q = donor.q();
  q.set(0, 0, 123.0);

  // A v2-mode store commits a v2 file...
  {
    PolicyStoreParams v2_params;
    v2_params.dir = dir;
    v2_params.flush_every = 1;
    PolicyStore store(donor, v2_params);
    store.stage(store.add_user("tanaka"), q);
  }
  const std::string path = dir + "/tanaka.policy";

  // ...which a v3-mode store restores transparently (format sniffing) and
  // rebases to a v3 anchor on its next flush — in-place migration.
  PolicyStoreParams v3_params;
  v3_params.dir = dir;
  v3_params.flush_every = 1;
  v3_params.format = SnapshotFormat::kV3Delta;
  {
    PolicyStore store(donor, v3_params);
    const UserId u = store.add_user("tanaka");
    EXPECT_EQ(store.restore(u), std::optional<std::uint64_t>{2});
    EXPECT_EQ(table_bytes(store.steps(), store.tools(), store.q(u)),
              table_bytes(store.steps(), store.tools(), q));
    store.stage(u, store.q(u));  // version 3, persisted as a v3 anchor
  }
  {
    std::ifstream in(path, std::ios::binary);
    EXPECT_EQ(planning::detect_policy_format(in),
              planning::PolicyFormat::kBinaryV3);
  }

  // And back: a v2-mode store reads the v3 chain just as transparently.
  PolicyStoreParams back_params;
  back_params.dir = dir;
  back_params.flush_every = 1;
  PolicyStore store(donor, back_params);
  const UserId u = store.add_user("tanaka");
  EXPECT_EQ(store.restore(u), std::optional<std::uint64_t>{3});
  EXPECT_EQ(table_bytes(store.steps(), store.tools(), store.q(u)),
            table_bytes(store.steps(), store.tools(), q));
}

}  // namespace
}  // namespace coreda::serve
