// Snapshot robustness for the serving tier: v2 round-trip byte equality,
// rejection of truncated / bit-flipped / wrong-ADL snapshots with the
// destination left untouched (the v1 contract), version monotonicity on
// repeated write-back, and the wear-aware disk batching.

#include "serve/policy_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "adl/library.hpp"
#include "planning/serialize.hpp"

namespace coreda::serve {
namespace {

namespace T = adl::tools;
namespace fs = std::filesystem;

struct PolicyStoreFixture : ::testing::Test {
  adl::AdlLibrary library;

  planning::RoutineLearner trained(std::uint64_t seed = 5) {
    planning::RoutineLearner learner(library.tea_making(), util::Rng(seed));
    const std::vector<adl::StepId> steps{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
    for (int i = 0; i < 80; ++i) learner.train_episode(steps);
    return learner;
  }

  std::string fresh_dir(const char* name) {
    const std::string dir = ::testing::TempDir() + "/coreda_store_" + name;
    fs::remove_all(dir);
    return dir;
  }

  std::string v2_bytes(const planning::RoutineLearner& learner,
                       std::uint64_t version = 7) {
    std::ostringstream out(std::ios::binary);
    planning::save_policy_v2(out, learner, version);
    return out.str();
  }
};

TEST_F(PolicyStoreFixture, V2RoundTripIsByteIdentical) {
  planning::RoutineLearner source = trained();
  const std::string first = v2_bytes(source, 7);

  planning::RoutineLearner restored(library.tea_making(), util::Rng(99));
  std::istringstream in(first, std::ios::binary);
  EXPECT_EQ(planning::load_policy_v2(in, restored), 7u);

  // Byte equality of the re-serialized snapshot implies bit equality of
  // every Q value — stronger than EXPECT_DOUBLE_EQ per cell.
  EXPECT_EQ(v2_bytes(restored, 7), first);
}

TEST_F(PolicyStoreFixture, V2TruncationRejectedEverywhereLearnerUnchanged) {
  planning::RoutineLearner source = trained();
  const std::string bytes = v2_bytes(source);

  // Chop at several depths: inside the magic, the header, the vocab, the Q
  // block, and inside the trailing checksum.
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{20}, std::size_t{60}, bytes.size() / 2,
        bytes.size() - 3}) {
    planning::RoutineLearner victim(library.tea_making(), util::Rng(2));
    const double before = victim.q().get(1, 1);
    std::istringstream in(bytes.substr(0, keep), std::ios::binary);
    EXPECT_THROW(planning::load_policy_v2(in, victim), std::runtime_error)
        << "kept " << keep << " of " << bytes.size() << " bytes";
    EXPECT_DOUBLE_EQ(victim.q().get(1, 1), before);
  }
}

TEST_F(PolicyStoreFixture, V2BitFlipRejectedByChecksum) {
  planning::RoutineLearner source = trained();
  std::string bytes = v2_bytes(source);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit deep in the Q block

  planning::RoutineLearner victim(library.tea_making(), util::Rng(2));
  const double before = victim.q().get(0, 0);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(planning::load_policy_v2(in, victim), std::runtime_error);
  EXPECT_DOUBLE_EQ(victim.q().get(0, 0), before);
}

TEST_F(PolicyStoreFixture, V2WrongAdlRejected) {
  planning::RoutineLearner source = trained();
  const std::string bytes = v2_bytes(source);

  planning::RoutineLearner other(library.tooth_brushing(), util::Rng(9));
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(planning::load_policy_v2(in, other), std::runtime_error);
}

TEST_F(PolicyStoreFixture, V2GarbageRejected) {
  planning::RoutineLearner victim(library.tea_making(), util::Rng(2));
  std::istringstream in("CRDAPOLX plus whatever follows",
                        std::ios::binary);
  EXPECT_THROW(planning::load_policy_v2(in, victim), std::runtime_error);
}

TEST_F(PolicyStoreFixture, InspectReadsHeaderWithoutLearner) {
  planning::RoutineLearner source = trained();
  std::istringstream in(v2_bytes(source, 42), std::ios::binary);
  const planning::PolicyV2Info info = planning::inspect_policy_v2(in);
  EXPECT_EQ(info.version, 42u);
  EXPECT_TRUE(info.checksum_ok);
  EXPECT_EQ(info.num_states, source.q().num_states());
  EXPECT_EQ(info.num_actions, source.q().num_actions());
  EXPECT_EQ(info.steps.size(), source.state_codec().symbols().size());
}

TEST_F(PolicyStoreFixture, InspectFlagsBadChecksumWithoutThrowing) {
  planning::RoutineLearner source = trained();
  std::string bytes = v2_bytes(source, 42);
  bytes[bytes.size() / 2] ^= 0x01;
  std::istringstream in(bytes, std::ios::binary);
  const planning::PolicyV2Info info = planning::inspect_policy_v2(in);
  EXPECT_EQ(info.version, 42u);
  EXPECT_FALSE(info.checksum_ok);
}

TEST_F(PolicyStoreFixture, DetectAndLoadAnyCoverBothFormats) {
  planning::RoutineLearner source = trained();

  std::stringstream v1;
  planning::save_policy(v1, source);
  EXPECT_EQ(planning::detect_policy_format(v1),
            planning::PolicyFormat::kTextV1);
  planning::RoutineLearner from_v1(library.tea_making(), util::Rng(3));
  EXPECT_EQ(planning::load_policy_any(v1, from_v1), 0u);  // v1: no version
  EXPECT_DOUBLE_EQ(from_v1.greedy_accuracy(), 1.0);

  std::stringstream v2(v2_bytes(source, 9));
  EXPECT_EQ(planning::detect_policy_format(v2),
            planning::PolicyFormat::kBinaryV2);
  planning::RoutineLearner from_v2(library.tea_making(), util::Rng(3));
  EXPECT_EQ(planning::load_policy_any(v2, from_v2), 9u);
  EXPECT_EQ(v2_bytes(from_v2, 9), v2_bytes(source, 9));

  std::stringstream junk("neither format");
  EXPECT_EQ(planning::detect_policy_format(junk),
            planning::PolicyFormat::kUnknown);
  planning::RoutineLearner victim(library.tea_making(), util::Rng(3));
  EXPECT_THROW(planning::load_policy_any(junk, victim), std::runtime_error);
}

TEST_F(PolicyStoreFixture, StoreVersionsAreMonotonicPerWriteBack) {
  planning::RoutineLearner donor = trained();
  PolicyStore store(donor);  // memory-only
  const UserId u = store.add_user("tanaka");
  EXPECT_EQ(store.version(u), 1u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const std::uint64_t before = store.version(u);
    store.stage(u, donor.q());
    EXPECT_EQ(store.version(u), before + 1);
  }
  EXPECT_EQ(store.version(u), 11u);
  EXPECT_EQ(store.staged_writes(), 10u);
  EXPECT_EQ(store.disk_writes(), 0u);  // memory-only: no wear at all
}

TEST_F(PolicyStoreFixture, WearBatchingWritesEveryNthStage) {
  planning::RoutineLearner donor = trained();
  PolicyStoreParams params;
  params.dir = fresh_dir("wear");
  params.flush_every = 4;
  PolicyStore store(donor, params);
  const UserId u = store.add_user("tanaka");

  for (int i = 0; i < 10; ++i) store.stage(u, donor.q());
  // Stages 4 and 8 hit the batch boundary; 10 staged writes cost 2 disk
  // writes — the EEPROM-style wear reduction.
  EXPECT_EQ(store.staged_writes(), 10u);
  EXPECT_EQ(store.disk_writes(), 2u);

  store.flush_all();  // the 2 unflushed stages go out now
  EXPECT_EQ(store.disk_writes(), 3u);
  store.flush_all();  // nothing dirty: no extra wear
  EXPECT_EQ(store.disk_writes(), 3u);
}

TEST_F(PolicyStoreFixture, AtomicWritePublishesNoTempFiles) {
  planning::RoutineLearner donor = trained();
  PolicyStoreParams params;
  params.dir = fresh_dir("atomic");
  params.flush_every = 1;  // every stage persists
  PolicyStore store(donor, params);
  const UserId u = store.add_user("tanaka");
  store.stage(u, donor.q());

  EXPECT_TRUE(fs::exists(store.path_for(u)));
  EXPECT_FALSE(fs::exists(store.path_for(u) + ".tmp"));

  std::ifstream in(store.path_for(u), std::ios::binary);
  const planning::PolicyV2Info info = planning::inspect_policy_v2(in);
  EXPECT_TRUE(info.checksum_ok);
  EXPECT_EQ(info.version, 2u);  // initial 1 + one stage
}

TEST_F(PolicyStoreFixture, RestoreResumesVersionAndValuesAfterRestart) {
  planning::RoutineLearner donor = trained();
  const std::string dir = fresh_dir("restart");
  {
    PolicyStoreParams params;
    params.dir = dir;
    params.flush_every = 100;  // force the dtor flush to do the persisting
    PolicyStore store(donor, params);
    const UserId u = store.add_user("tanaka");
    for (int i = 0; i < 5; ++i) store.stage(u, donor.q());
    EXPECT_EQ(store.version(u), 6u);
  }  // ~PolicyStore flushes

  planning::RoutineLearner blank(library.tea_making(), util::Rng(1));
  PolicyStoreParams params;
  params.dir = dir;
  PolicyStore store(blank, params);  // warm restart from an untrained ref
  const UserId u = store.add_user("tanaka");
  const auto version = store.restore(u);
  ASSERT_TRUE(version.has_value());
  EXPECT_EQ(*version, 6u);
  EXPECT_EQ(store.version(u), 6u);
  for (rl::StateId s = 0; s < donor.q().num_states(); ++s) {
    for (rl::ActionId a = 0; a < donor.q().num_actions(); ++a) {
      EXPECT_DOUBLE_EQ(store.q(u).get(s, a), donor.q().get(s, a));
    }
  }
}

TEST_F(PolicyStoreFixture, RestoreWithoutSnapshotReturnsNullopt) {
  planning::RoutineLearner donor = trained();
  PolicyStoreParams params;
  params.dir = fresh_dir("empty");
  PolicyStore store(donor, params);
  const UserId u = store.add_user("nobody");
  EXPECT_EQ(store.restore(u), std::nullopt);

  PolicyStore memory_only(donor);
  const UserId m = memory_only.add_user("nobody");
  EXPECT_EQ(memory_only.restore(m), std::nullopt);
}

TEST_F(PolicyStoreFixture, StoreRejectsMismatchedShapesAndUnknownUsers) {
  planning::RoutineLearner donor = trained();
  PolicyStore store(donor);
  EXPECT_THROW(store.add_user("x", rl::QTable(2, 2)),
               std::invalid_argument);
  const UserId u = store.add_user("ok");
  EXPECT_THROW(store.stage(u, rl::QTable(2, 2)), std::invalid_argument);
  EXPECT_THROW(store.q(u + 1), std::out_of_range);
  EXPECT_THROW((void)PolicyStore(donor, PolicyStoreParams{"", 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace coreda::serve
