// The v2 delta-chain segment format:
//
//   * small-change appends land as changed-row deltas and load back
//     bit-exact through the whole chain (including the empty delta for a
//     no-op retrain and the not-profitable fallback to an anchor);
//   * rebase_every bounds every chain; a segment roll forces an anchor
//     (chains never span segments);
//   * the exhaustive corruption sweep over a MIXED anchor/delta segment:
//     a one-byte flip at EVERY offset of the record region makes the open
//     store's load() of the affected user's chain throw, and a reopening
//     store recovers exactly the longest valid prefix — variable strides
//     make skip-and-continue unsound, so everything after the flip is gone;
//   * crash injection at the compaction-rebase publish seam: a mid-rebase
//     crash leaves every user readable at its latest version, a restart
//     agrees, and the retry completes the compaction;
//   * a hand-written legacy "CRDASEG1" segment imports: its records load
//     bit-exact, new appends land in v2 segments, and both generations
//     coexist across a reopen.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "serve/segment_store.hpp"
#include "util/rng.hpp"
#include "util/wire.hpp"

namespace coreda::serve {
namespace {

namespace fs = std::filesystem;
namespace wire = util::wire;

// 6x5 fixture arithmetic: v2 anchor = 8 * (6 + 30) = 288 bytes, a one-row
// delta = 8 * (8 + 1 * (1 + 5)) = 112 bytes, after the 40-byte header.
constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kAnchorBytes = 288;
constexpr std::size_t kOneRowDelta = 112;

bool bit_equal(const rl::QTable& a, const rl::QTable& b) {
  for (rl::StateId s = 0; s < a.num_states(); ++s) {
    const std::span<const double> ra = a.row(s);
    const std::span<const double> rb = b.row(s);
    if (std::memcmp(ra.data(), rb.data(), ra.size_bytes()) != 0) return false;
  }
  return true;
}

struct SegmentDeltaFixture : ::testing::Test {
  static constexpr std::size_t kStates = 6;
  static constexpr std::size_t kActions = 5;

  std::vector<adl::StepId> steps = [] {
    std::vector<adl::StepId> v(kStates);
    for (std::size_t i = 0; i < kStates; ++i) {
      v[i] = static_cast<adl::StepId>(i + 1);
    }
    return v;
  }();
  std::vector<adl::ToolId> tools = [] {
    std::vector<adl::ToolId> v(kActions);
    for (std::size_t i = 0; i < kActions; ++i) {
      v[i] = static_cast<adl::ToolId>(100 + i);
    }
    return v;
  }();

  std::string fresh_dir(const char* name) {
    const std::string dir = ::testing::TempDir() + "/coreda_delta_" + name;
    fs::remove_all(dir);
    return dir;
  }

  rl::QTable table(std::uint64_t seed) {
    rl::QTable q(kStates, kActions);
    util::Rng rng(seed);
    for (rl::StateId s = 0; s < kStates; ++s) {
      for (rl::ActionId a = 0; a < kActions; ++a) {
        q.set(s, a, rng.uniform(-1e3, 1e3));
      }
    }
    return q;
  }

  /// `base` with exactly one cell nudged — a one-row delta when appended.
  rl::QTable touched(const rl::QTable& base, rl::StateId s, double v) {
    rl::QTable q = base;
    q.set(s, 0, v);
    return q;
  }

  std::unique_ptr<SegmentStore> open(const SegmentStoreParams& p) {
    return std::make_unique<SegmentStore>(steps, tools, kStates, kActions, p);
  }
};

TEST_F(SegmentDeltaFixture, SmallChangesAppendAsDeltasAndLoadBitExact) {
  SegmentStoreParams p;
  p.dir = fresh_dir("roundtrip");
  auto store = open(p);
  store->reserve_users(1);

  std::vector<rl::QTable> history;
  history.push_back(table(7));
  store->append(0, history.back(), 1);  // first record: always an anchor
  for (std::uint64_t v = 2; v <= 6; ++v) {
    history.push_back(
        touched(history.back(), static_cast<rl::StateId>(v % kStates),
                static_cast<double>(1000 + v)));
    store->append(0, history.back(), v);
  }
  EXPECT_EQ(store->anchor_records_written(), 1u);
  EXPECT_EQ(store->delta_records_written(), 5u);
  EXPECT_EQ(store->appended_bytes(), kAnchorBytes + 5 * kOneRowDelta);

  rl::QTable out(kStates, kActions);
  ASSERT_EQ(store->load(0, out), std::optional<std::uint64_t>{6});
  EXPECT_TRUE(bit_equal(out, history.back()));

  // A no-op retrain (nothing changed) still advances the version, as the
  // cheapest possible record: an empty delta.
  const std::uint64_t bytes_before = store->appended_bytes();
  store->append(0, history.back(), 7);
  EXPECT_EQ(store->appended_bytes() - bytes_before, 64u);
  ASSERT_EQ(store->load(0, out), std::optional<std::uint64_t>{7});
  EXPECT_TRUE(bit_equal(out, history.back()));

  // A full-table change makes the delta cost more than the anchor: the
  // writer falls back to an anchor on its own.
  store->append(0, table(99), 8);
  EXPECT_EQ(store->anchor_records_written(), 2u);
  ASSERT_EQ(store->load(0, out), std::optional<std::uint64_t>{8});
  EXPECT_TRUE(bit_equal(out, table(99)));

  // The whole mixed chain survives a reopen, and a post-reopen append
  // keeps extending it as a delta (the rebuilt index knows the chain).
  store.reset();
  auto reopened = open(p);
  ASSERT_EQ(reopened->load(0, out), std::optional<std::uint64_t>{8});
  EXPECT_TRUE(bit_equal(out, table(99)));
  EXPECT_EQ(reopened->scanned_records(), 8u);
  reopened->append(0, touched(table(99), 1, -5.0), 9);
  EXPECT_EQ(reopened->delta_records_written(), 1u);
  ASSERT_EQ(reopened->load(0, out), std::optional<std::uint64_t>{9});
  EXPECT_TRUE(bit_equal(out, touched(table(99), 1, -5.0)));
}

TEST_F(SegmentDeltaFixture, RebaseEveryBoundsEveryChain) {
  SegmentStoreParams p;
  p.dir = fresh_dir("rebase");
  p.rebase_every = 4;  // 1 anchor + up to 3 deltas
  auto store = open(p);
  store->reserve_users(1);

  rl::QTable q = table(11);
  for (std::uint64_t v = 1; v <= 12; ++v) {
    store->append(0, q, v);
    q = touched(q, static_cast<rl::StateId>(v % kStates), 2000.0 + v);
  }
  // 12 appends at rebase_every=4: versions 1, 5, 9 are anchors.
  EXPECT_EQ(store->anchor_records_written(), 3u);
  EXPECT_EQ(store->delta_records_written(), 9u);

  const SegmentStore::Info info = SegmentStore::inspect(p.dir);
  EXPECT_EQ(info.anchors, 3u);
  EXPECT_EQ(info.deltas, 9u);
  // User 0's live chain: anchor v9 + deltas v10..v12.
  EXPECT_DOUBLE_EQ(info.mean_chain_length, 4.0);

  // rebase_every = 1 disables deltas outright.
  SegmentStoreParams p1;
  p1.dir = fresh_dir("rebase1");
  p1.rebase_every = 1;
  auto anchors_only = open(p1);
  anchors_only->reserve_users(1);
  rl::QTable r = table(12);
  for (std::uint64_t v = 1; v <= 5; ++v) {
    anchors_only->append(0, r, v);
    r = touched(r, 0, 3000.0 + v);
  }
  EXPECT_EQ(anchors_only->anchor_records_written(), 5u);
  EXPECT_EQ(anchors_only->delta_records_written(), 0u);
}

TEST_F(SegmentDeltaFixture, SegmentRollForcesAnchorSoChainsNeverSpanFiles) {
  SegmentStoreParams p;
  p.dir = fresh_dir("roll");
  // Room for an anchor plus two one-row deltas per segment, nothing more.
  p.segment_bytes = kHeaderBytes + kAnchorBytes + 2 * kOneRowDelta;
  auto store = open(p);
  store->reserve_users(1);

  rl::QTable q = table(21);
  for (std::uint64_t v = 1; v <= 9; ++v) {
    store->append(0, q, v);
    q = touched(q, static_cast<rl::StateId>(v % kStates), 4000.0 + v);
  }
  // Every third record starts a fresh segment and must be an anchor:
  // v1 A, v2 D, v3 D | v4 A, v5 D, v6 D | v7 A, v8 D, v9 D.
  EXPECT_EQ(store->anchor_records_written(), 3u);
  EXPECT_EQ(store->delta_records_written(), 6u);
  EXPECT_EQ(store->num_segments(), 3u);

  rl::QTable out(kStates, kActions);
  ASSERT_EQ(store->load(0, out), std::optional<std::uint64_t>{9});
  rl::QTable expect = table(21);
  for (std::uint64_t v = 1; v <= 8; ++v) {
    expect = touched(expect, static_cast<rl::StateId>(v % kStates),
                     4000.0 + v);
  }
  EXPECT_TRUE(bit_equal(out, expect));
}

TEST_F(SegmentDeltaFixture, EveryOffsetFlipRecoversTheLongestValidPrefix) {
  SegmentStoreParams p;
  p.dir = fresh_dir("sweep");
  auto store = open(p);
  store->reserve_users(2);

  // Build a mixed segment with interleaved users:
  //   rec0 @  40  u0 anchor v1   (288 B)
  //   rec1 @ 328  u1 anchor v1   (288 B)
  //   rec2 @ 616  u0 delta  v2   (112 B, parent rec0)
  //   rec3 @ 728  u0 delta  v3   (112 B, parent rec2)
  //   rec4 @ 840  u1 delta  v2   (112 B, parent rec1)  -> end 952
  const rl::QTable a1 = table(31);
  const rl::QTable b1 = table(32);
  const rl::QTable a2 = touched(a1, 2, 51.0);
  const rl::QTable a3 = touched(a2, 4, 52.0);
  const rl::QTable b2 = touched(b1, 1, 53.0);
  store->append(0, a1, 1);
  store->append(1, b1, 1);
  store->append(0, a2, 2);
  store->append(0, a3, 3);
  store->append(1, b2, 2);
  ASSERT_EQ(store->anchor_records_written(), 2u);
  ASSERT_EQ(store->delta_records_written(), 3u);
  ASSERT_EQ(store->num_segments(), 1u);

  const std::string seg_path = p.dir + "/seg-w0-000000.seg";
  ASSERT_TRUE(fs::exists(seg_path));
  const auto flip = [&](std::size_t offset) {
    std::fstream f(seg_path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(byte ^ 0x5A));
    f.flush();
  };

  // Per record: who owns it, and what a reopening scan recovers when it is
  // the first invalid record (everything after it is unreachable — that is
  // the longest-valid-prefix contract).
  struct Region {
    std::size_t begin, end;
    std::uint64_t owner;
    std::optional<std::uint64_t> u0_version;
    const rl::QTable* u0_table;
    std::optional<std::uint64_t> u1_version;
    const rl::QTable* u1_table;
  };
  const Region regions[] = {
      {40, 328, 0, std::nullopt, nullptr, std::nullopt, nullptr},
      {328, 616, 1, {1}, &a1, std::nullopt, nullptr},
      {616, 728, 0, {1}, &a1, {1}, &b1},
      {728, 840, 0, {2}, &a2, {1}, &b1},
      {840, 952, 1, {3}, &a3, {1}, &b1},
  };
  for (const Region& r : regions) {
    for (std::size_t off = r.begin; off < r.end; ++off) {
      flip(off);
      // The open store: the affected user's chain fails validation loudly
      // (destination untouched); the other user's chain is independent.
      rl::QTable victim(kStates, kActions, 7.5);
      const rl::QTable before = victim;
      EXPECT_THROW(store->load(r.owner, victim), std::runtime_error)
          << "offset " << off;
      EXPECT_TRUE(bit_equal(victim, before)) << "offset " << off;
      rl::QTable other(kStates, kActions);
      EXPECT_NO_THROW(store->load(1 - r.owner, other)) << "offset " << off;
      // A restart recovers the longest valid prefix.
      {
        auto reader = open(p);
        EXPECT_EQ(reader->latest_version(0), r.u0_version)
            << "offset " << off;
        EXPECT_EQ(reader->latest_version(1), r.u1_version)
            << "offset " << off;
        rl::QTable got(kStates, kActions);
        if (r.u0_table != nullptr) {
          ASSERT_EQ(reader->load(0, got), r.u0_version) << "offset " << off;
          EXPECT_TRUE(bit_equal(got, *r.u0_table)) << "offset " << off;
        }
        if (r.u1_table != nullptr) {
          ASSERT_EQ(reader->load(1, got), r.u1_version) << "offset " << off;
          EXPECT_TRUE(bit_equal(got, *r.u1_table)) << "offset " << off;
        }
      }
      flip(off);  // restore
    }
  }
  // Control: everything restored, both chains fully valid again.
  rl::QTable out(kStates, kActions);
  ASSERT_EQ(store->load(0, out), std::optional<std::uint64_t>{3});
  EXPECT_TRUE(bit_equal(out, a3));
  ASSERT_EQ(store->load(1, out), std::optional<std::uint64_t>{2});
  EXPECT_TRUE(bit_equal(out, b2));
}

TEST_F(SegmentDeltaFixture, CrashAtCompactionRebasePublishKeepsEveryUser) {
  SegmentStoreParams p;
  p.dir = fresh_dir("compact_crash");
  p.segment_bytes = kHeaderBytes + 4 * kAnchorBytes;
  p.compact_min_records = 8;
  p.compact_dead_ratio = 0.5;
  auto store = open(p);
  store->reserve_users(3);

  // Full-change tables -> all anchors: after v appends per user the dead
  // ratio is (v-1)/v, so the 9th record's append triggers compaction.
  std::uint64_t version = 0;
  const auto fill = [&](std::uint64_t rounds) {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      ++version;
      for (std::uint64_t u = 0; u < 3; ++u) {
        store->append(u, table(100 * u + version), version);
      }
    }
  };
  fill(2);  // 6 records, below compact_min_records
  ++version;
  store->append(0, table(version), version);        // 7 records
  store->append(1, table(100 + version), version);  // 8: at the threshold
  ASSERT_EQ(store->compactions(), 0u);

  // Arm the crash: the next append's compaction check fires (8 records,
  // 5 dead), and the rebase publishes through the same pre-publish seam as
  // a normal append. Let the first rebased user land, then die on the
  // second — a mid-compaction crash with part of the fleet already moved.
  int publishes = 0;
  store->pre_publish_site().set_hook([&publishes](const std::string&) {
    if (++publishes == 2) {
      throw std::runtime_error("injected crash mid-compaction");
    }
  });
  EXPECT_THROW(store->append(2, table(200 + version), version),
               std::runtime_error);
  EXPECT_EQ(store->compactions(), 0u);
  EXPECT_EQ(publishes, 2);

  // Every user still serves its pre-crash latest version — user 2's
  // crashed append wrote nothing — both through the surviving store
  // object...
  const std::uint64_t expect_v[3] = {version, version, version - 1};
  rl::QTable out(kStates, kActions);
  for (std::uint64_t u = 0; u < 3; ++u) {
    ASSERT_EQ(store->load(u, out), std::optional<std::uint64_t>{expect_v[u]})
        << "user " << u;
    EXPECT_TRUE(bit_equal(out, table(100 * u + expect_v[u]))) << "user " << u;
  }
  // ...and through a restart over the crashed directory (the rebased copy
  // of user 0 has the same version as its original; whichever the scan
  // publishes, the bytes are identical).
  {
    auto reader = open(p);
    for (std::uint64_t u = 0; u < 3; ++u) {
      ASSERT_EQ(reader->load(u, out), std::optional<std::uint64_t>{expect_v[u]})
          << "user " << u;
      EXPECT_TRUE(bit_equal(out, table(100 * u + expect_v[u]))) << "user " << u;
    }
  }

  // Crash over: the retry compacts and the fleet moves on.
  store->pre_publish_site().set_hook(nullptr);
  fill(2);
  EXPECT_GT(store->compactions(), 0u);
  EXPECT_EQ(store->live_records(), 3u);
  for (std::uint64_t u = 0; u < 3; ++u) {
    ASSERT_EQ(store->load(u, out), std::optional<std::uint64_t>{version})
        << "user " << u;
    EXPECT_TRUE(bit_equal(out, table(100 * u + version))) << "user " << u;
  }
  store.reset();
  auto reopened = open(p);
  for (std::uint64_t u = 0; u < 3; ++u) {
    ASSERT_EQ(reopened->load(u, out), std::optional<std::uint64_t>{version})
        << "user " << u;
  }
}

TEST_F(SegmentDeltaFixture, HandWrittenLegacySegmentImportsAndCoexists) {
  const std::string dir = fresh_dir("legacy");
  SegmentStoreParams p;
  p.dir = dir;
  { open(p); }  // writes store.meta, no segments yet

  // Write a v1 segment by hand: "CRDASEG1" header, two fixed-stride
  // "CRDAREC1" records (u64 magic, user, version, q_count, 30 x f64,
  // FNV-1a checksum), two never-published slots of zeros.
  const std::size_t rec_bytes = 8 * (4 + kStates * kActions) + 8;
  const rl::QTable q0 = table(61), q1 = table(62);
  {
    std::vector<unsigned char> buf(kHeaderBytes + 4 * rec_bytes, 0);
    std::memcpy(buf.data(), "CRDASEG1", 8);
    wire::store_u64(buf.data() + 8, 0);   // writer
    wire::store_u64(buf.data() + 16, 0);  // seq
    wire::store_u64(buf.data() + 24, rec_bytes);
    wire::store_u64(buf.data() + 32, 4);  // capacity
    const auto put_record = [&](std::size_t slot, std::uint64_t user,
                                std::uint64_t version, const rl::QTable& q) {
      unsigned char* rec = buf.data() + kHeaderBytes + slot * rec_bytes;
      std::memcpy(rec, "CRDAREC1", 8);
      wire::store_u64(rec + 8, user);
      wire::store_u64(rec + 16, version);
      wire::store_u64(rec + 24, kStates * kActions);
      unsigned char* qp = rec + 32;
      for (rl::StateId s = 0; s < kStates; ++s) {
        for (const double v : q.row(s)) {
          wire::store_f64(qp, v);
          qp += 8;
        }
      }
      wire::store_u64(rec + rec_bytes - 8,
                      wire::fnv1a(rec + 8, rec_bytes - 16));
    };
    put_record(0, 0, 3, q0);
    put_record(1, 1, 5, q1);
    std::ofstream out(dir + "/seg-w0-000000.seg",
                      std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    ASSERT_TRUE(out.flush());
  }

  // The v1 records are fully readable through the v2 store.
  auto store = open(p);
  EXPECT_EQ(store->scanned_records(), 2u);
  rl::QTable out(kStates, kActions);
  ASSERT_EQ(store->load(0, out), std::optional<std::uint64_t>{3});
  EXPECT_TRUE(bit_equal(out, q0));
  ASSERT_EQ(store->load(1, out), std::optional<std::uint64_t>{5});
  EXPECT_TRUE(bit_equal(out, q1));

  // New appends land in a fresh v2 segment — legacy segments are never
  // appended to — and supersede the legacy records.
  const rl::QTable q0b = touched(q0, 1, -9.0);
  store->append(0, q0b, 4);
  EXPECT_EQ(store->anchor_records_written(), 1u);  // new segment: anchor
  EXPECT_EQ(store->num_segments(), 2u);
  ASSERT_EQ(store->load(0, out), std::optional<std::uint64_t>{4});
  EXPECT_TRUE(bit_equal(out, q0b));
  ASSERT_EQ(store->load(1, out), std::optional<std::uint64_t>{5});

  // Both generations coexist across a reopen; inspect sees them too.
  store.reset();
  auto reopened = open(p);
  ASSERT_EQ(reopened->load(0, out), std::optional<std::uint64_t>{4});
  EXPECT_TRUE(bit_equal(out, q0b));
  ASSERT_EQ(reopened->load(1, out), std::optional<std::uint64_t>{5});
  EXPECT_TRUE(bit_equal(out, q1));
  const SegmentStore::Info info = SegmentStore::inspect(dir);
  ASSERT_EQ(info.segment_details.size(), 2u);
  EXPECT_TRUE(info.segment_details[0].legacy);
  EXPECT_FALSE(info.segment_details[1].legacy);
  EXPECT_EQ(info.users, 2u);
  EXPECT_EQ(info.max_version, 5u);
}

}  // namespace
}  // namespace coreda::serve
