// Cross-cutting invariant checks: conservation laws and monotonicity
// properties that must hold for any configuration.

#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "pavenet/base_station.hpp"
#include "pavenet/energy.hpp"
#include "pavenet/node.hpp"
#include "sim/scheduler.hpp"
#include "trace/sensing_pipeline.hpp"

namespace coreda {
namespace {

namespace T = adl::tools;

// ---------------------------------------------------------------------
// Radio conservation: every transmitted frame is accounted for exactly
// once across delivered / lost-to-noise / lost-to-collision /
// undeliverable, for any loss probability.
// ---------------------------------------------------------------------
struct RadioConservation : ::testing::TestWithParam<double> {};

TEST_P(RadioConservation, FramesAccountedExactlyOnce) {
  const double loss = GetParam();
  sim::Scheduler scheduler;
  pavenet::RadioChannel::Params params;
  params.loss_probability = loss;
  pavenet::RadioChannel channel(scheduler, util::Rng(7), params);
  int received = 0;
  channel.attach_receiver(0, [&](const pavenet::Packet&) { ++received; });

  util::Rng spacing(8);
  sim::TimePoint cursor;
  for (int i = 0; i < 500; ++i) {
    // Random spacing: some frames overlap (collide), most do not.
    cursor = cursor + sim::Duration::millis(spacing.uniform_int(0, 20));
    scheduler.schedule_at(cursor, [&channel, i] {
      pavenet::Packet p;
      p.kind = pavenet::Packet::Kind::kToolUsage;
      p.source_uid = static_cast<std::uint16_t>(1 + i % 5);
      p.dest_uid = 0;
      channel.transmit(p);
    });
  }
  scheduler.run();

  const pavenet::ChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.sent, 500u);
  EXPECT_EQ(stats.sent, stats.delivered + stats.lost_noise +
                            stats.lost_collision + stats.undeliverable);
  EXPECT_EQ(static_cast<std::uint64_t>(received), stats.delivered);
}

INSTANTIATE_TEST_SUITE_P(LossLevels, RadioConservation,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

// ---------------------------------------------------------------------
// Energy monotonicity: more activity can only cost more energy.
// ---------------------------------------------------------------------
TEST(EnergyInvariants, ActivityNeverReducesEnergy) {
  adl::AdlLibrary library;
  auto run_with_usage = [&](int manipulations) {
    sim::Scheduler scheduler;
    sensors::ManipulationWorld world;
    pavenet::RadioChannel channel(scheduler, util::Rng(3));
    pavenet::BaseStation station(scheduler, channel);
    pavenet::PavenetNode node(library.tools().at(T::kKettle), scheduler,
                              world, channel, util::Rng(4));
    node.power_on();
    for (int i = 0; i < manipulations; ++i) {
      const auto start = sim::TimePoint::from_seconds(10.0 + i * 30.0);
      scheduler.schedule_at(start, [&world, start] {
        world.begin(T::kKettle, start, sim::Duration::seconds(8.0));
      });
    }
    scheduler.run_until(sim::TimePoint::from_seconds(300.0));
    return estimate_energy(node, sim::Duration::seconds(300.0)).total_j();
  };
  const double idle = run_with_usage(0);
  const double some = run_with_usage(3);
  const double lots = run_with_usage(9);
  EXPECT_LE(idle, some);
  EXPECT_LE(some, lots);
}

// ---------------------------------------------------------------------
// Sensing pipeline: extracted steps never exceed scripted manipulations
// plus spurious count; missed + extracted episodes are consistent.
// ---------------------------------------------------------------------
struct PipelineAccounting : ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineAccounting, MissedPlusSeenCoversScript) {
  adl::AdlLibrary library;
  trace::SensingPipeline pipeline(library.tools(),
                                  library.tea_making().tools(), GetParam());
  std::vector<patient::TimedStep> script;
  for (adl::ToolId tool : library.tea_making().tools()) {
    script.push_back(patient::TimedStep{
        tool, sim::Duration::seconds(4.0),
        library.tools().at(tool).typical_usage_mean});
  }
  const trace::SensedResult result = pipeline.run(script);
  // Each scripted manipulation is either extracted or missed.
  EXPECT_LE(result.extracted.size(),
            script.size() + result.spurious);
  EXPECT_LE(result.missed, script.size());
  EXPECT_GE(result.extracted.size() + result.missed, script.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineAccounting,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------
// Base station: episodes only ever grow, reports >= episodes.
// ---------------------------------------------------------------------
TEST(BaseStationInvariants, ReportsAtLeastEpisodes) {
  adl::AdlLibrary library;
  sim::Scheduler scheduler;
  sensors::ManipulationWorld world;
  pavenet::RadioChannel channel(scheduler, util::Rng(9));
  pavenet::BaseStation station(scheduler, channel);
  pavenet::PavenetNode node(library.tools().at(T::kToothbrush), scheduler,
                            world, channel, util::Rng(10));
  node.power_on();
  const auto start = sim::TimePoint::from_seconds(5.0);
  scheduler.schedule_at(start, [&world, start] {
    world.begin(T::kToothbrush, start, sim::Duration::seconds(30.0));
  });
  scheduler.run_until(sim::TimePoint::from_seconds(60.0));

  std::uint64_t reports = 0;
  for (const auto& ep : station.episodes()) reports += ep.reports;
  EXPECT_GE(reports, station.episodes().size());
  EXPECT_EQ(reports, station.packets_received());
}

}  // namespace
}  // namespace coreda
