// End-to-end integration tests: the full pipeline from synthetic sensor
// signals through PAVENET firmware, radio, base station, TD(λ) planner and
// reminding subsystem, closed by the patient model — the complete Figure 2
// architecture exercised as one system.

#include <gtest/gtest.h>

#include <memory>

#include "core/system.hpp"
#include "trace/dataset.hpp"

namespace coreda {
namespace {

namespace T = adl::tools;
using Kind = patient::PatientEvent::Kind;

struct EndToEndFixture : ::testing::Test {
  adl::AdlLibrary library;

  std::unique_ptr<core::CoredaSystem> deploy(const adl::Adl& adl,
                                             core::SystemConfig config = {}) {
    auto system = std::make_unique<core::CoredaSystem>(library, adl, config);
    trace::DatasetBuilder datasets(
        library, patient::PatientProfile::with_severity("T", 0.0),
        config.seed + 7);
    system->pretrain(datasets.sensed_training_set(adl, 120));
    return system;
  }
};

TEST_F(EndToEndFixture, TrainOnSensedDataThenAssistTeaMaking) {
  const auto system = deploy(library.tea_making());
  EXPECT_DOUBLE_EQ(system->learner().greedy_accuracy(), 1.0);

  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("Tanaka", 0.5);
  profile.comply_specific = 1.0;
  profile.comply_minimal = 1.0;

  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    const auto result =
        system->run_session(profile, sim::Duration::minutes(30.0));
    if (result.completed) ++completed;
  }
  // A moderately impaired but compliant patient completes consistently
  // with CoReDA's help.
  EXPECT_GE(completed, 9);
}

TEST_F(EndToEndFixture, PromptsReduceWithHealthierPatients) {
  const auto system = deploy(library.tea_making());
  std::size_t severe_prompts = 0;
  std::size_t mild_prompts = 0;
  for (int i = 0; i < 8; ++i) {
    severe_prompts +=
        system
            ->run_session(patient::PatientProfile::with_severity("A", 0.8),
                          sim::Duration::minutes(30.0))
            .prompts_total;
    mild_prompts +=
        system
            ->run_session(patient::PatientProfile::with_severity("A", 0.1),
                          sim::Duration::minutes(30.0))
            .prompts_total;
  }
  EXPECT_GT(severe_prompts, mild_prompts);
}

TEST_F(EndToEndFixture, ToothBrushingWorksEndToEnd) {
  const auto system = deploy(library.tooth_brushing());
  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("Kim", 0.4);
  profile.comply_specific = 1.0;
  profile.comply_minimal = 1.0;
  const auto result =
      system->run_session(profile, sim::Duration::minutes(30.0));
  EXPECT_TRUE(result.completed);
}

TEST_F(EndToEndFixture, HandWashingExtensionAdlWorks) {
  const auto system = deploy(library.hand_washing());
  const auto result = system->run_session(
      patient::PatientProfile::with_severity("Lee", 0.0),
      sim::Duration::minutes(20.0));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.steps_completed, 3u);
}

TEST_F(EndToEndFixture, LedsActuallyBlinkOnNodesDuringPrompts) {
  const auto system = deploy(library.tea_making());
  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("Tanaka", 0.0);
  profile.comply_minimal = 1.0;
  profile.comply_specific = 1.0;
  system->run_session(profile, sim::Duration::minutes(20.0),
                      [](patient::PatientActor& actor) {
                        actor.force_next_decision(Kind::kStartedStep);
                        actor.force_next_decision(Kind::kWrongTool,
                                                  T::kTeaCup);
                      });
  // The green LED on the pot and red LED on the cup were driven over the
  // radio by the reminding subsystem.
  EXPECT_GT(
      system->node(T::kElectricPot).led().blink_count(pavenet::LedColor::kGreen),
      0u);
  EXPECT_GT(system->node(T::kTeaCup).led().blink_count(pavenet::LedColor::kRed),
            0u);
}

TEST_F(EndToEndFixture, RadioLossToleratedByClosedLoop) {
  core::SystemConfig config;
  config.radio.loss_probability = 0.2;
  const auto system = deploy(library.tea_making(), config);
  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("Tanaka", 0.3);
  profile.comply_specific = 1.0;
  profile.comply_minimal = 1.0;
  int completed = 0;
  for (int i = 0; i < 6; ++i) {
    if (system->run_session(profile, sim::Duration::minutes(30.0))
            .completed) {
      ++completed;
    }
  }
  EXPECT_GE(completed, 4);  // lossy but still mostly effective
}

TEST_F(EndToEndFixture, WholeStackDeterministicPerSeed) {
  auto run_once = [this] {
    core::SystemConfig config;
    config.seed = 2024;
    const auto system = deploy(library.tea_making(), config);
    patient::PatientProfile profile =
        patient::PatientProfile::with_severity("Tanaka", 0.6);
    const auto result =
        system->run_session(profile, sim::Duration::minutes(30.0));
    return std::make_tuple(result.completed, result.prompts_total,
                           result.observed_steps);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace coreda
