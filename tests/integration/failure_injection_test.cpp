// Failure-injection tests: the closed loop under degraded infrastructure —
// dead nodes, heavy radio loss, hostile configurations. The contract is
// graceful degradation: the system may prompt more or assist less, but it
// must never crash, deadlock the scheduler, or derail a healthy resident.

#include <gtest/gtest.h>

#include <memory>

#include "core/system.hpp"
#include "trace/dataset.hpp"

namespace coreda {
namespace {

namespace T = adl::tools;
using Kind = patient::PatientEvent::Kind;

struct FailureFixture : ::testing::Test {
  adl::AdlLibrary library;

  std::unique_ptr<core::CoredaSystem> deploy(
      core::SystemConfig config = {}) {
    auto system = std::make_unique<core::CoredaSystem>(
        library, library.tea_making(), config);
    trace::DatasetBuilder datasets(
        library, patient::PatientProfile::with_severity("T", 0.0),
        config.seed + 17);
    system->pretrain(datasets.clean_training_set(library.tea_making(), 120));
    return system;
  }

  patient::PatientProfile compliant(double severity) {
    patient::PatientProfile p =
        patient::PatientProfile::with_severity("T", severity);
    p.comply_minimal = 1.0;
    p.comply_specific = 1.0;
    return p;
  }
};

TEST_F(FailureFixture, DeadNodeDegradesButDoesNotCrash) {
  const auto system = deploy();
  // The pot's node dies (battery pulled) before the session.
  const_cast<pavenet::PavenetNode&>(system->node(T::kElectricPot))
      .power_off();
  const auto result =
      system->run_session(compliant(0.2), sim::Duration::minutes(20.0));
  // The pot step is invisible: the system will mis-track and re-prompt,
  // but the session must terminate cleanly either way.
  EXPECT_LE(result.steps_completed, 4u);
}

TEST_F(FailureFixture, DeadNodeStillAllowsSelfSufficientCompletion) {
  const auto system = deploy();
  const_cast<pavenet::PavenetNode&>(system->node(T::kElectricPot))
      .power_off();
  // A healthy resident needs no prompts; the dead node must not cause
  // the system to sabotage them (prompts may fire, but a healthy user
  // completing on their own must still be reported completed).
  const auto result =
      system->run_session(compliant(0.0), sim::Duration::minutes(20.0));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.steps_completed, 4u);
}

TEST_F(FailureFixture, TotalRadioBlackout) {
  core::SystemConfig config;
  config.radio.loss_probability = 1.0;
  const auto system = deploy(config);
  // No sensing at all: the system is blind. A healthy resident still
  // finishes; the run must not hang even though no events ever arrive.
  const auto result =
      system->run_session(compliant(0.0), sim::Duration::minutes(20.0));
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.observed_steps.empty());
}

TEST_F(FailureFixture, BlackoutPlusFrozenPatientTimesOutCleanly) {
  core::SystemConfig config;
  config.radio.loss_probability = 1.0;
  const auto system = deploy(config);
  const auto result = system->run_session(
      compliant(0.0), sim::Duration::minutes(5.0),
      [](patient::PatientActor& actor) {
        actor.force_next_decision(Kind::kFroze);
      });
  // The session-start prompt still fires (it is timer-driven), and the
  // compliant patient acts on the displayed message even though the
  // sensing uplink is dead.
  EXPECT_GE(result.prompts_total, 1u);
}

TEST_F(FailureFixture, ExtremeCollisionPressure) {
  core::SystemConfig config;
  // Slow, long frames: every concurrent transmission collides.
  config.radio.airtime = sim::Duration::millis(500);
  config.radio.latency = sim::Duration::millis(600);
  const auto system = deploy(config);
  const auto result =
      system->run_session(compliant(0.4), sim::Duration::minutes(30.0));
  EXPECT_GE(result.steps_completed, 1u);  // degraded, not dead
}

TEST_F(FailureFixture, ZeroTimeoutConfigStillTerminates) {
  core::SystemConfig config;
  config.trigger.default_timeout = sim::Duration::millis(1);
  config.trigger.allowance_base = sim::Duration::millis(1);
  config.trigger.allowance_factor = 0.0;
  const auto system = deploy(config);
  // Hyper-aggressive prompting spams the resident but must terminate.
  const auto result =
      system->run_session(compliant(0.0), sim::Duration::minutes(5.0));
  EXPECT_TRUE(result.completed || result.prompts_total > 0);
}

TEST_F(FailureFixture, UntrainedSystemDoesNotDerailHealthyResident) {
  // No pretraining at all: the policy is the optimistic initial table.
  core::SystemConfig config;
  core::CoredaSystem system(library, library.tea_making(), config);
  patient::PatientProfile profile = compliant(0.0);
  profile.comply_minimal = 0.0;   // resident ignores the random prompts
  profile.comply_specific = 0.0;
  const auto result =
      system.run_session(profile, sim::Duration::minutes(20.0));
  EXPECT_TRUE(result.completed);
}

TEST_F(FailureFixture, SessionAfterFailuresRecovers) {
  const auto system = deploy();
  // Session 1 under a dead node.
  const_cast<pavenet::PavenetNode&>(system->node(T::kElectricPot))
      .power_off();
  system->run_session(compliant(0.3), sim::Duration::minutes(20.0));
  // Node repaired: the next session works normally again.
  const_cast<pavenet::PavenetNode&>(system->node(T::kElectricPot))
      .power_on();
  const auto result =
      system->run_session(compliant(0.3), sim::Duration::minutes(20.0));
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace coreda
