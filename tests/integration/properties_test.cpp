// Property-style parameterized sweeps over the system's invariants:
// codec bijectivity across vocabularies, learner convergence across seeds
// and ADLs, detector monotonicity across vote configurations.

#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "pavenet/detector.hpp"
#include "planning/learner.hpp"
#include "trace/dataset.hpp"
#include "trace/sensing_pipeline.hpp"

namespace coreda {
namespace {

// ---------------------------------------------------------------------
// Property: the planner converges to the exact routine for every ADL in
// the library and every seed (single-routine ADLs).
// ---------------------------------------------------------------------
struct LearnerConvergence
    : ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(LearnerConvergence, GreedyPolicyMatchesRoutine) {
  const auto [adl_name, seed] = GetParam();
  adl::AdlLibrary library;
  const adl::Adl& adl = library.by_name(adl_name);
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("T", 0.0), seed);
  planning::RoutineLearner learner(adl, util::Rng(seed * 31 + 1));
  for (const auto& ep : datasets.sensed_training_set(adl, 150)) {
    learner.train_episode(ep);
  }
  EXPECT_DOUBLE_EQ(learner.greedy_accuracy(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllAdlsAllSeeds, LearnerConvergence,
    ::testing::Combine(::testing::Values("Tooth-brushing", "Tea-making",
                                         "Hand-washing"),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Property: extract precision is monotone in manipulation duration.
// ---------------------------------------------------------------------
struct DurationMonotonicity : ::testing::TestWithParam<adl::ToolId> {};

TEST_P(DurationMonotonicity, LongerManipulationsDetectBetter) {
  const adl::ToolId tool = GetParam();
  adl::AdlLibrary library;
  trace::SensingPipeline pipeline(library.tools(), {tool}, 555);
  int short_hits = 0;
  int long_hits = 0;
  for (int i = 0; i < 120; ++i) {
    short_hits +=
        pipeline.single_tool_trial(tool, sim::Duration::seconds(1.2));
    long_hits +=
        pipeline.single_tool_trial(tool, sim::Duration::seconds(12.0));
  }
  EXPECT_GE(long_hits, short_hits);
}

INSTANTIATE_TEST_SUITE_P(WeakTools, DurationMonotonicity,
                         ::testing::Values(adl::tools::kTowel,
                                           adl::tools::kElectricPot,
                                           adl::tools::kPasteTube,
                                           adl::tools::kTeaCup));

// ---------------------------------------------------------------------
// Property: raising the vote threshold never increases detections.
// ---------------------------------------------------------------------
struct VoteMonotonicity : ::testing::TestWithParam<std::uint32_t> {};

TEST_P(VoteMonotonicity, StricterVoteDetectsLess) {
  const std::uint32_t votes = GetParam();
  adl::AdlLibrary library;

  auto hits_with_votes = [&](std::uint32_t v) {
    trace::SensingPipeline::Params params;
    params.firmware.vote_threshold = v;
    trace::SensingPipeline pipeline(library.tools(),
                                    {adl::tools::kElectricPot}, 777, params);
    int hits = 0;
    for (int i = 0; i < 100; ++i) {
      hits += pipeline.single_tool_trial(adl::tools::kElectricPot,
                                         sim::Duration::seconds(2.5));
    }
    return hits;
  };

  EXPECT_GE(hits_with_votes(votes), hits_with_votes(votes + 2));
}

INSTANTIATE_TEST_SUITE_P(VoteLevels, VoteMonotonicity,
                         ::testing::Values(1u, 3u, 5u, 7u));

// ---------------------------------------------------------------------
// Property: reward config dominance — for any scaling of the paper's
// reward values that keeps minimal > specific, the converged policy
// prefers minimal prompts.
// ---------------------------------------------------------------------
struct RewardScaling : ::testing::TestWithParam<double> {};

TEST_P(RewardScaling, MinimalPreferenceSurvivesScaling) {
  const double scale = GetParam();
  adl::AdlLibrary library;
  planning::LearnerConfig config;
  config.reward.terminal = 1000.0 * scale;
  config.reward.intermediate_minimal = 100.0 * scale;
  config.reward.intermediate_specific = 50.0 * scale;
  config.td.initial_q = 1000.0 * scale;

  planning::RoutineLearner learner(library.tea_making(),
                                   util::Rng(901), config);
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  for (int i = 0; i < 150; ++i) learner.train_episode(steps);

  const auto states = learner.predicting_states();
  for (std::size_t i = 0; i + 1 < states.size(); ++i) {
    const auto prompt = learner.predict(states[i]);
    ASSERT_TRUE(prompt.has_value());
    EXPECT_EQ(prompt->action.level, planning::RemindingLevel::kMinimal);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, RewardScaling,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0));

// ---------------------------------------------------------------------
// Property: dataset determinism — every dataset kind is a pure function
// of its seed, for every ADL.
// ---------------------------------------------------------------------
struct DatasetDeterminism : ::testing::TestWithParam<const char*> {};

TEST_P(DatasetDeterminism, SameSeedSameData) {
  adl::AdlLibrary library;
  const adl::Adl& adl = library.by_name(GetParam());
  const auto profile = patient::PatientProfile::with_severity("T", 0.4);
  trace::DatasetBuilder a(library, profile, 99);
  trace::DatasetBuilder b(library, profile, 99);
  EXPECT_EQ(a.clean_training_set(adl, 10), b.clean_training_set(adl, 10));
  EXPECT_EQ(a.sensed_training_set(adl, 5), b.sensed_training_set(adl, 5));
}

INSTANTIATE_TEST_SUITE_P(AllAdls, DatasetDeterminism,
                         ::testing::Values("Tooth-brushing", "Tea-making",
                                           "Hand-washing", "Dressing"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace coreda
