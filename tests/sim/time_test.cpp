#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace coreda::sim {
namespace {

TEST(DurationTest, Factories) {
  EXPECT_EQ(Duration::micros(1500).total_micros(), 1500);
  EXPECT_EQ(Duration::millis(2).total_micros(), 2000);
  EXPECT_EQ(Duration::seconds(1.5).total_micros(), 1'500'000);
  EXPECT_EQ(Duration::minutes(2.0).total_micros(), 120'000'000);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::seconds(2.0);
  const Duration b = Duration::seconds(0.5);
  EXPECT_DOUBLE_EQ((a + b).to_seconds(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ((a * 3.0).to_seconds(), 6.0);
  EXPECT_DOUBLE_EQ((a / 4).to_seconds(), 0.5);
}

TEST(DurationTest, CompoundAssignment) {
  Duration d = Duration::seconds(1.0);
  d += Duration::seconds(2.0);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 3.0);
  d -= Duration::seconds(0.5);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 2.5);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::seconds(1.0), Duration::seconds(2.0));
  EXPECT_EQ(Duration::millis(1000), Duration::seconds(1.0));
  EXPECT_GT(Duration::micros(1), Duration());
}

TEST(DurationTest, DefaultIsZero) {
  EXPECT_EQ(Duration().total_micros(), 0);
}

TEST(TimePointTest, OriginAndOffsets) {
  const TimePoint t0 = TimePoint::origin();
  EXPECT_EQ(t0.total_micros(), 0);
  const TimePoint t1 = t0 + Duration::seconds(3.0);
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 3.0);
  EXPECT_DOUBLE_EQ((t1 - t0).to_seconds(), 3.0);
  EXPECT_EQ(t1 - Duration::seconds(3.0), t0);
}

TEST(TimePointTest, FromSeconds) {
  EXPECT_EQ(TimePoint::from_seconds(2.5).total_micros(), 2'500'000);
}

TEST(TimePointTest, Ordering) {
  const TimePoint a = TimePoint::from_micros(10);
  const TimePoint b = TimePoint::from_micros(20);
  EXPECT_LT(a, b);
  EXPECT_GE(b, a);
  EXPECT_EQ(a, TimePoint::from_micros(10));
}

TEST(TimePointTest, DifferenceCanBeNegative) {
  const TimePoint a = TimePoint::from_seconds(1.0);
  const TimePoint b = TimePoint::from_seconds(4.0);
  EXPECT_DOUBLE_EQ((a - b).to_seconds(), -3.0);
}

}  // namespace
}  // namespace coreda::sim
