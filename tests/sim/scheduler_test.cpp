#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace coreda::sim {
namespace {

TEST(SchedulerTest, StartsAtOrigin) {
  Scheduler s;
  EXPECT_EQ(s.now(), TimePoint::origin());
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(TimePoint::from_seconds(2.0), [&] { order.push_back(2); });
  s.schedule_at(TimePoint::from_seconds(1.0), [&] { order.push_back(1); });
  s.schedule_at(TimePoint::from_seconds(3.0), [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now().to_seconds(), 3.0);
}

TEST(SchedulerTest, EqualTimesFireInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  const TimePoint t = TimePoint::from_seconds(1.0);
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  double fired_at = -1.0;
  s.schedule_after(Duration::seconds(1.0), [&] {
    s.schedule_after(Duration::seconds(2.0),
                     [&] { fired_at = s.now().to_seconds(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(SchedulerTest, SchedulingInPastThrows) {
  Scheduler s;
  s.schedule_at(TimePoint::from_seconds(5.0), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(TimePoint::from_seconds(1.0), [] {}),
               std::invalid_argument);
}

TEST(SchedulerTest, CancelPreventsFiring) {
  Scheduler s;
  bool fired = false;
  EventHandle h = s.schedule_after(Duration::seconds(1.0),
                                   [&] { fired = true; });
  h.cancel();
  s.run();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, CancelAfterFiringIsSafe) {
  Scheduler s;
  EventHandle h = s.schedule_after(Duration::seconds(1.0), [] {});
  s.run();
  h.cancel();  // no-op
  EXPECT_TRUE(h.cancelled());
}

TEST(SchedulerTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  h.cancel();  // no crash
}

TEST(SchedulerTest, RunLimitStopsEarly) {
  Scheduler s;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    s.schedule_after(Duration::seconds(i + 1.0), [&] { ++fired; });
  }
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(SchedulerTest, RunUntilAdvancesClockToDeadline) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(Duration::seconds(1.0), [&] { ++fired; });
  s.schedule_after(Duration::seconds(10.0), [&] { ++fired; });
  s.run_until(TimePoint::from_seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now().to_seconds(), 5.0);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, RunUntilFiresEventAtExactDeadline) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(TimePoint::from_seconds(2.0), [&] { fired = true; });
  s.run_until(TimePoint::from_seconds(2.0));
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, PeriodicFiresRepeatedly) {
  Scheduler s;
  int count = 0;
  EventHandle h = s.schedule_periodic(Duration::seconds(1.0), [&] { ++count; });
  s.run_until(TimePoint::from_seconds(5.5));
  EXPECT_EQ(count, 5);
  h.cancel();
  s.run_until(TimePoint::from_seconds(20.0));
  EXPECT_EQ(count, 5);
}

TEST(SchedulerTest, PeriodicCancelFromInsideCallback) {
  Scheduler s;
  int count = 0;
  EventHandle h;
  h = s.schedule_periodic(Duration::seconds(1.0), [&] {
    if (++count == 3) h.cancel();
  });
  s.run_until(TimePoint::from_seconds(30.0));
  EXPECT_EQ(count, 3);
}

TEST(SchedulerTest, PeriodicRejectsNonPositivePeriod) {
  Scheduler s;
  EXPECT_THROW(s.schedule_periodic(Duration(), [] {}),
               std::invalid_argument);
}

TEST(SchedulerTest, EventsScheduledDuringRunAreHonored) {
  Scheduler s;
  std::vector<double> fire_times;
  s.schedule_after(Duration::seconds(1.0), [&] {
    fire_times.push_back(s.now().to_seconds());
    s.schedule_after(Duration::seconds(1.0), [&] {
      fire_times.push_back(s.now().to_seconds());
    });
  });
  s.run();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_DOUBLE_EQ(fire_times[1], 2.0);
}

TEST(SchedulerTest, PeriodicCallbackThrowPropagatesAndCancelsSeries) {
  Scheduler s;
  int count = 0;
  EventHandle h = s.schedule_periodic(Duration::seconds(1.0), [&] {
    if (++count == 2) throw std::runtime_error("firmware fault");
  });
  EXPECT_THROW(s.run_until(TimePoint::from_seconds(10.0)),
               std::runtime_error);
  EXPECT_EQ(count, 2);
  // The series is dead and observably so — not a silent stall.
  EXPECT_TRUE(h.cancelled());
  s.run_until(TimePoint::from_seconds(30.0));
  EXPECT_EQ(count, 2);
}

TEST(SchedulerTest, OneShotThrowPropagatesAndSpendsEvent) {
  Scheduler s;
  EventHandle h = s.schedule_after(Duration::seconds(1.0),
                                   [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(s.run(), std::runtime_error);
  EXPECT_TRUE(h.cancelled());
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, StaleHandleCancelDoesNotTouchRecycledSlot) {
  Scheduler s;
  bool first = false;
  bool second = false;
  EventHandle h1 = s.schedule_after(Duration::seconds(1.0),
                                    [&] { first = true; });
  s.run();
  // h1's event fired; its internal slot is free for reuse.
  EventHandle h2 = s.schedule_after(Duration::seconds(1.0),
                                    [&] { second = true; });
  h1.cancel();  // stale: must not cancel the recycled slot's new event
  s.run();
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
  EXPECT_TRUE(h1.cancelled());
}

TEST(SchedulerTest, CancelledPendingEventsAreReapedWithoutFiring) {
  Scheduler s;
  int fired = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(
        s.schedule_after(Duration::seconds(i + 1.0), [&] { ++fired; }));
  }
  for (int i = 0; i < 100; i += 2) handles[i].cancel();
  EXPECT_EQ(s.run(), 50u);
  EXPECT_EQ(fired, 50);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, HandleCopiesShareCancellation) {
  Scheduler s;
  bool fired = false;
  EventHandle a = s.schedule_after(Duration::seconds(1.0),
                                   [&] { fired = true; });
  EventHandle b = a;
  b.cancel();
  EXPECT_TRUE(a.cancelled());
  s.run();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, PeriodicSlotReuseSurvivesManyPeriods) {
  // The periodic fast path must reuse its slot and callback across
  // thousands of periods without drift in timing or order.
  Scheduler s;
  std::uint64_t count = 0;
  s.schedule_periodic(Duration::millis(100), [&] { ++count; });
  s.run_until(TimePoint::from_seconds(1000.0));
  EXPECT_EQ(count, 10000u);
  EXPECT_DOUBLE_EQ(s.now().to_seconds(), 1000.0);
}

TEST(SchedulerTest, ManyPeriodicTasksStayDeterministic) {
  // Two schedulers with identical task sets must produce identical
  // interleavings — the property all experiments rely on.
  auto run_one = [] {
    Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
      s.schedule_periodic(Duration::millis(100),
                          [&order, i] { order.push_back(i); });
    }
    s.run_until(TimePoint::from_seconds(1.0));
    return order;
  };
  EXPECT_EQ(run_one(), run_one());
}

}  // namespace
}  // namespace coreda::sim
