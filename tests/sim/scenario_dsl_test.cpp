// Parser tests for the scenario DSL.
//
// Diagnostics are goldened: every malformed-plan case below renders
// "input -> thrown message" into one text blob compared byte-for-byte
// against tests/sim/data/scenario_diagnostics.golden. Regenerate with
// COREDA_UPDATE_GOLDEN=1 (the test then rewrites the file and fails once,
// so a stale golden can never silently pass).
//
// The valid side is covered by a seeded parse→print→parse property test
// over randomized plans (the policy_fuzz_test idiom): canonical save()
// output must parse back to an identical plan, including doubles that
// have no short decimal form.
#include "sim/scenario_dsl.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace coreda::sim {
namespace {

std::string diagnostic_of(const std::string& plan_text) {
  std::istringstream in(plan_text);
  try {
    (void)ScenarioPlan::parse(in);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "<no throw>";
}

struct MalformedCase {
  const char* name;
  const char* text;
};

// One entry per parse_fail site in scenario_dsl.cpp (plus the shared
// number diagnostics, which gain a column here that FaultPlan's do not
// have).
const MalformedCase kMalformed[] = {
    {"unterminated-section", "seed = 1\n[segment Tea-making\n"},
    {"empty-segment-name", "[segment  ]\n"},
    {"unknown-section", "[chapter One]\n"},
    {"missing-equals", "seed = 1\nusers 4\n"},
    {"unknown-top-level-key", "speed = 3\n"},
    {"unknown-interrupt-key", "[interrupt]\nsteps = 2\n"},
    {"unknown-segment-key", "[segment Tea-making]\npause_s = 9\n"},
    {"not-a-number", "severity = warm\n"},
    {"number-trailing-junk", "max_minutes = 12q\n"},
    {"not-an-integer", "users = many\n"},
    {"integer-trailing-junk", "rounds = 3z\n"},
    {"number-out-of-range", "severity = 1e999\n"},
    {"users-zero", "users = 0\n"},
    {"rounds-zero", "rounds = 0\n"},
    {"severity-out-of-unit", "severity = 1.5\n"},
    {"severity-drift-out-of-unit", "severity_drift = -0.1\n"},
    {"compliance-decay-out-of-unit", "compliance_decay = 2\n"},
    {"bad-arrivals-mode", "arrivals = poisson\n"},
    {"max-minutes-nonpositive", "max_minutes = 0\n"},
    {"bad-bool", "[segment Tea-making]\nresume = yes\n"},
    {"resume-without-earlier-segment",
     "[segment Tea-making]\nresume = true\n"},
    {"interrupt-without-pause", "[segment Tea-making]\n\n[interrupt]\n"},
    {"no-segments", "seed = 1\n\n[interrupt]\npause_s = 10\n"},
    {"indented-error-keeps-raw-column", "    severity = hot\n"},
};

std::string render_diagnostics() {
  std::ostringstream out;
  out << "# scenario DSL diagnostics golden — every malformed-plan case and\n"
      << "# the exact message (with line/column) the parser throws for it.\n";
  for (const MalformedCase& c : kMalformed) {
    out << "\n=== " << c.name << "\n" << c.text << "--- diagnostic\n"
        << diagnostic_of(c.text) << "\n";
  }
  return out.str();
}

TEST(ScenarioDslGolden, EveryMalformedPlanDiagnosticMatchesGolden) {
  const std::string golden_path =
      std::string(COREDA_SIM_DATA_DIR) + "/scenario_diagnostics.golden";
  const std::string actual = render_diagnostics();
  if (std::getenv("COREDA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << actual;
    FAIL() << "golden rewritten (" << golden_path
           << "); rerun without COREDA_UPDATE_GOLDEN";
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden: " << golden_path;
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str());
}

TEST(ScenarioDslGolden, EveryMalformedCaseActuallyThrows) {
  for (const MalformedCase& c : kMalformed) {
    EXPECT_NE(diagnostic_of(c.text), "<no throw>") << c.name;
  }
}

// ---------------------------------------------------------------------------
// Round-trip property test.

ScenarioPlan random_plan(util::Rng& rng) {
  static const char* kAdls[] = {"Tea-making", "Tooth-brushing",
                                "Hand-washing", "Dressing"};
  ScenarioPlan plan;
  plan.seed = rng();
  plan.users = 1 + rng.pick_index(20);
  plan.rounds = 1 + rng.pick_index(5);
  plan.severity = rng.uniform();
  plan.severity_drift = rng.bernoulli(0.5) ? rng.uniform() : 0.0;
  plan.compliance_decay = rng.bernoulli(0.5) ? rng.uniform() : 0.0;
  plan.arrivals = rng.bernoulli(0.5) ? "all" : "roundrobin";
  plan.active = rng.bernoulli(0.5) ? rng.pick_index(8) : 0;
  plan.hint = rng.bernoulli(0.3) ? kAdls[rng.pick_index(4)] : "";
  plan.max_minutes = 1.0 + rng.uniform() * 120.0;
  const std::size_t n_parts = 1 + rng.pick_index(6);
  for (std::size_t i = 0; i < n_parts; ++i) {
    ScenarioPart part;
    if (i > 0 && rng.bernoulli(0.25)) {
      part.pause_s = 0.001 + rng.uniform() * 300.0;
    } else {
      part.adl = kAdls[rng.pick_index(4)];
      part.steps = rng.bernoulli(0.5) ? rng.pick_index(7) : 0;
      part.freeze = rng.bernoulli(0.3) ? 1 + rng.pick_index(2) : 0;
      part.wrong_tool = rng.bernoulli(0.3) ? 1 + rng.pick_index(2) : 0;
      if (rng.bernoulli(0.4)) {
        for (const ScenarioPart& earlier : plan.parts) {
          if (earlier.adl == part.adl) {
            part.resume = true;
            break;
          }
        }
      }
    }
    plan.parts.push_back(std::move(part));
  }
  // Guarantee at least one segment (an all-interrupt draw is invalid).
  bool any_segment = false;
  for (const ScenarioPart& part : plan.parts) {
    if (!part.is_interrupt()) any_segment = true;
  }
  if (!any_segment) {
    plan.parts.front() = ScenarioPart{};
    plan.parts.front().adl = kAdls[0];
  }
  return plan;
}

TEST(ScenarioDslRoundTrip, ParsePrintParseIsIdentityOverRandomPlans) {
  util::Rng rng(20260809);
  for (int i = 0; i < 200; ++i) {
    const ScenarioPlan plan = random_plan(rng);
    std::stringstream text;
    plan.save(text);
    ScenarioPlan back;
    ASSERT_NO_THROW(back = ScenarioPlan::parse(text)) << text.str();
    EXPECT_EQ(back, plan) << "iteration " << i << "\n" << text.str();
    // save() is canonical: printing the reparsed plan reproduces the text.
    std::ostringstream again;
    back.save(again);
    EXPECT_EQ(again.str(), text.str()) << "iteration " << i;
  }
}

TEST(ScenarioDslRoundTrip, DefaultsSurviveMinimalPlan) {
  std::istringstream in("[segment Tea-making]\n");
  const ScenarioPlan plan = ScenarioPlan::parse(in);
  EXPECT_EQ(plan.seed, 1u);
  EXPECT_EQ(plan.users, 1u);
  EXPECT_EQ(plan.rounds, 1u);
  EXPECT_EQ(plan.arrivals, "all");
  ASSERT_EQ(plan.parts.size(), 1u);
  EXPECT_EQ(plan.parts[0].adl, "Tea-making");
  EXPECT_EQ(plan.parts[0].steps, 0u);
  EXPECT_FALSE(plan.parts[0].resume);
}

TEST(ScenarioDslRoundTrip, CommentsAndBlankLinesAreSkipped) {
  std::istringstream in(
      "# header comment\n"
      "seed = 7\n"
      "\n"
      "  [segment Tea-making]\n"
      "  # indented comment\n"
      "  steps = 2\n");
  const ScenarioPlan plan = ScenarioPlan::parse(in);
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.parts.size(), 1u);
  EXPECT_EQ(plan.parts[0].steps, 2u);
}

}  // namespace
}  // namespace coreda::sim
