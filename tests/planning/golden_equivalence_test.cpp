// Golden-equivalence guard for the TD(λ) training hot path.
//
// The traces / learner internals are rewritten freely for speed (dense
// eligibility arrays, cached reward rows, fused counterfactual sweeps), but
// the *learning computation* must not move by a single bit: this test
// re-runs the Figure 4 pipeline (seed 99, 120 sensed training samples per
// ADL, exactly as bench_fig4_learning_curve does) and compares the
// per-episode behaviour-accuracy series and the final Q-table against a
// committed hexfloat CSV captured before the rewrite.
//
// Regenerate (only when the learning *semantics* intentionally change):
//   COREDA_UPDATE_GOLDEN=1 ./tests/test_planning --gtest_filter='GoldenEquivalence.*'

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "planning/learner.hpp"
#include "trace/dataset.hpp"

#ifndef COREDA_GOLDEN_DIR
#error "COREDA_GOLDEN_DIR must point at tests/planning/data"
#endif

namespace coreda::planning {
namespace {

std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// The exact fig4 training loop (bench/fig4_learning_curve.cpp run_curve),
/// serialized to CSV lines: accuracy per episode, then the final Q-table.
std::string render_adl(const adl::AdlLibrary& library, const adl::Adl& adl,
                       const char* name) {
  constexpr std::size_t kEpisodes = 120;
  exec::TrialRunner runner(1);
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("User", 0.0), 99);
  const auto training =
      datasets.sensed_training_set_parallel(adl, kEpisodes, runner);

  RoutineLearner learner(adl, util::Rng(99 * 31 + 7));
  std::ostringstream out;
  std::size_t episode = 0;
  for (const auto& steps : training) {
    learner.train_episode(steps);
    out << name << ",accuracy," << episode++ << ","
        << hexfloat(learner.behaviour_accuracy()) << "\n";
  }
  const rl::QTable& q = learner.q();
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    for (rl::ActionId a = 0; a < q.num_actions(); ++a) {
      out << name << ",q," << s << "," << a << "," << hexfloat(q.get(s, a))
          << "\n";
    }
  }
  out << name << ",skipped,0," << learner.skipped_steps() << "\n";
  return out.str();
}

TEST(GoldenEquivalence, Fig4SeriesAndQTableAreByteIdentical) {
  adl::AdlLibrary library;
  std::string rendered;
  rendered += render_adl(library, library.by_name("Tooth-brushing"),
                         "Tooth-brushing");
  rendered += render_adl(library, library.by_name("Tea-making"), "Tea-making");

  const std::string path = std::string(COREDA_GOLDEN_DIR) + "/fig4_golden.csv";
  if (std::getenv("COREDA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    GTEST_SKIP() << "golden regenerated at " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run once with COREDA_UPDATE_GOLDEN=1 and commit the CSV";
  std::ostringstream golden;
  golden << in.rdbuf();

  ASSERT_EQ(golden.str().size(), rendered.size())
      << "golden size mismatch: the training hot path changed the learning "
         "computation";
  // Diff line-by-line so a failure names the first diverging quantity
  // instead of dumping two ~8000-line blobs.
  std::istringstream got(rendered), want(golden.str());
  std::string got_line, want_line;
  std::size_t line = 0;
  while (std::getline(want, want_line)) {
    ASSERT_TRUE(std::getline(got, got_line)) << "rendered output truncated";
    ASSERT_EQ(want_line, got_line) << "first divergence at line " << line;
    ++line;
  }
  EXPECT_FALSE(std::getline(got, got_line)) << "rendered output has extra lines";
}

}  // namespace
}  // namespace coreda::planning
