#include "planning/reward.hpp"

#include <gtest/gtest.h>

namespace coreda::planning {
namespace {

TEST(RewardTest, PaperValues) {
  CoredaRewardFunction reward;
  const PlannerAction minimal{23, RemindingLevel::kMinimal};
  const PlannerAction specific{23, RemindingLevel::kSpecific};

  // Terminal step completed via the prompted tool: 1000 regardless of level.
  EXPECT_DOUBLE_EQ(reward(minimal, 23, /*completes_adl=*/true), 1000.0);
  EXPECT_DOUBLE_EQ(reward(specific, 23, true), 1000.0);

  // Intermediate step: 100 for minimal, 50 for specific.
  EXPECT_DOUBLE_EQ(reward(minimal, 23, false), 100.0);
  EXPECT_DOUBLE_EQ(reward(specific, 23, false), 50.0);
}

TEST(RewardTest, MismatchEarnsNothing) {
  CoredaRewardFunction reward;
  const PlannerAction prompt{23, RemindingLevel::kMinimal};
  EXPECT_DOUBLE_EQ(reward(prompt, 24, false), 0.0);
  EXPECT_DOUBLE_EQ(reward(prompt, 24, true), 0.0);
}

TEST(RewardTest, MinimalStrictlyDominatesSpecificOnIntermediates) {
  // The design principle: the system should wean the user off detailed
  // prompts, so minimal must earn strictly more.
  CoredaRewardFunction reward;
  EXPECT_GT(reward(PlannerAction{5, RemindingLevel::kMinimal}, 5, false),
            reward(PlannerAction{5, RemindingLevel::kSpecific}, 5, false));
}

TEST(RewardTest, ConfigurableValues) {
  RewardConfig config;
  config.terminal = 10.0;
  config.intermediate_minimal = 2.0;
  config.intermediate_specific = 1.0;
  config.mismatch = -5.0;
  CoredaRewardFunction reward(config);
  const PlannerAction a{7, RemindingLevel::kMinimal};
  EXPECT_DOUBLE_EQ(reward(a, 7, true), 10.0);
  EXPECT_DOUBLE_EQ(reward(a, 7, false), 2.0);
  EXPECT_DOUBLE_EQ(reward(a, 8, false), -5.0);
}

TEST(RewardTest, TerminalOutweighsAnyIntermediate) {
  CoredaRewardFunction reward;
  const PlannerAction a{7, RemindingLevel::kMinimal};
  EXPECT_GT(reward(a, 7, true), reward(a, 7, false));
}

}  // namespace
}  // namespace coreda::planning
