// "coreda-bundle v1": one checksummed record holding every ADL policy of
// one user, so interleaved multi-ADL serving restores them atomically.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "adl/library.hpp"
#include "planning/serialize.hpp"

namespace coreda::planning {
namespace {

namespace T = adl::tools;

struct BundleFixture : ::testing::Test {
  adl::AdlLibrary library;

  RoutineLearner trained(const adl::Adl& adl, std::uint64_t seed) {
    RoutineLearner learner(adl, util::Rng(seed));
    std::vector<adl::StepId> steps;
    for (std::size_t i = 0; i < adl.primary_routine().size(); ++i) {
      steps.push_back(adl.primary_routine().step(i).tool);
    }
    for (int i = 0; i < 80; ++i) learner.train_episode(steps);
    return learner;
  }

  static PolicyBundleItem item(const RoutineLearner& learner,
                               std::string_view name) {
    return PolicyBundleItem{name, learner.state_codec().symbols(),
                            learner.action_codec().tools(), &learner.q()};
  }

  static PolicyBundleSlot slot(const RoutineLearner& learner,
                               std::string_view name, rl::QTable& dst) {
    return PolicyBundleSlot{name, learner.state_codec().symbols(),
                            learner.action_codec().tools(), &dst};
  }

  static void expect_same(const rl::QTable& a, const rl::QTable& b) {
    ASSERT_EQ(a.num_states(), b.num_states());
    ASSERT_EQ(a.num_actions(), b.num_actions());
    for (rl::StateId s = 0; s < a.num_states(); ++s) {
      for (rl::ActionId x = 0; x < a.num_actions(); ++x) {
        EXPECT_DOUBLE_EQ(a.get(s, x), b.get(s, x));
      }
    }
  }
};

TEST_F(BundleFixture, RoundTripsEveryEntry) {
  const RoutineLearner tea = trained(library.tea_making(), 5);
  const RoutineLearner teeth = trained(library.tooth_brushing(), 6);

  std::stringstream buffer;
  const std::vector<PolicyBundleItem> items{item(tea, "Tea-making"),
                                            item(teeth, "Tooth-brushing")};
  const std::size_t bytes = save_policy_bundle(buffer, items, 7);
  EXPECT_EQ(bytes, buffer.str().size());

  rl::QTable tea_q(tea.q().num_states(), tea.q().num_actions());
  rl::QTable teeth_q(teeth.q().num_states(), teeth.q().num_actions());
  const std::vector<PolicyBundleSlot> slots{
      slot(tea, "Tea-making", tea_q),
      slot(teeth, "Tooth-brushing", teeth_q)};
  EXPECT_EQ(load_policy_bundle(buffer, slots), 7u);
  expect_same(tea_q, tea.q());
  expect_same(teeth_q, teeth.q());
}

TEST_F(BundleFixture, SlotOrderDoesNotMatter) {
  const RoutineLearner tea = trained(library.tea_making(), 5);
  const RoutineLearner teeth = trained(library.tooth_brushing(), 6);
  std::stringstream buffer;
  const std::vector<PolicyBundleItem> items{item(tea, "Tea-making"),
                                            item(teeth, "Tooth-brushing")};
  save_policy_bundle(buffer, items, 3);

  rl::QTable tea_q(tea.q().num_states(), tea.q().num_actions());
  rl::QTable teeth_q(teeth.q().num_states(), teeth.q().num_actions());
  // Slots listed in the opposite order of the entries: matching is by name.
  const std::vector<PolicyBundleSlot> slots{
      slot(teeth, "Tooth-brushing", teeth_q),
      slot(tea, "Tea-making", tea_q)};
  EXPECT_EQ(load_policy_bundle(buffer, slots), 3u);
  expect_same(tea_q, tea.q());
  expect_same(teeth_q, teeth.q());
}

TEST_F(BundleFixture, FlippedByteAnywhereRejectsTheWholeBundle) {
  const RoutineLearner tea = trained(library.tea_making(), 5);
  const RoutineLearner teeth = trained(library.tooth_brushing(), 6);
  std::stringstream buffer;
  const std::vector<PolicyBundleItem> items{item(tea, "Tea-making"),
                                            item(teeth, "Tooth-brushing")};
  save_policy_bundle(buffer, items, 1);
  const std::string good = buffer.str();

  // A handful of positions across header, entry names, embedded records,
  // and the outer checksum itself.
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{9}, std::size_t{30}, good.size() / 2,
        good.size() - 9, good.size() - 1}) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    rl::QTable tea_q(tea.q().num_states(), tea.q().num_actions());
    rl::QTable teeth_q(teeth.q().num_states(), teeth.q().num_actions());
    const double before = tea_q.get(0, 0);
    std::istringstream in(bad);
    EXPECT_THROW(load_policy_bundle(
                     in, std::vector<PolicyBundleSlot>{
                             slot(tea, "Tea-making", tea_q),
                             slot(teeth, "Tooth-brushing", teeth_q)}),
                 std::runtime_error)
        << "flipped byte at " << pos;
    // All-or-nothing: no slot table may have been touched.
    EXPECT_DOUBLE_EQ(tea_q.get(0, 0), before) << pos;
  }
}

TEST_F(BundleFixture, TruncationRejected) {
  const RoutineLearner tea = trained(library.tea_making(), 5);
  std::stringstream buffer;
  const std::vector<PolicyBundleItem> items{item(tea, "Tea-making")};
  save_policy_bundle(buffer, items, 1);
  const std::string good = buffer.str();

  rl::QTable tea_q(tea.q().num_states(), tea.q().num_actions());
  for (const std::size_t keep : {std::size_t{0}, std::size_t{7},
                                 std::size_t{24}, good.size() - 1}) {
    std::istringstream in(good.substr(0, keep));
    EXPECT_THROW(load_policy_bundle(
                     in, std::vector<PolicyBundleSlot>{
                             slot(tea, "Tea-making", tea_q)}),
                 std::runtime_error)
        << "kept " << keep << " bytes";
  }
}

TEST_F(BundleFixture, MissingAndUnknownEntriesRejected) {
  const RoutineLearner tea = trained(library.tea_making(), 5);
  const RoutineLearner teeth = trained(library.tooth_brushing(), 6);
  std::stringstream buffer;
  save_policy_bundle(
      buffer, std::vector<PolicyBundleItem>{item(tea, "Tea-making")}, 1);
  const std::string one_entry = buffer.str();

  rl::QTable tea_q(tea.q().num_states(), tea.q().num_actions());
  rl::QTable teeth_q(teeth.q().num_states(), teeth.q().num_actions());
  {
    // Two slots requested, bundle has one entry.
    std::istringstream in(one_entry);
    EXPECT_THROW(load_policy_bundle(
                     in, std::vector<PolicyBundleSlot>{
                             slot(tea, "Tea-making", tea_q),
                             slot(teeth, "Tooth-brushing", teeth_q)}),
                 std::runtime_error);
  }
  {
    // One slot requested under a name the bundle does not carry.
    std::istringstream in(one_entry);
    EXPECT_THROW(load_policy_bundle(
                     in, std::vector<PolicyBundleSlot>{
                             slot(teeth, "Tooth-brushing", teeth_q)}),
                 std::runtime_error);
  }
}

TEST_F(BundleFixture, WrongVocabularyInOneEntryRejectsAll) {
  const RoutineLearner tea = trained(library.tea_making(), 5);
  const RoutineLearner teeth = trained(library.tooth_brushing(), 6);
  std::stringstream buffer;
  const std::vector<PolicyBundleItem> items{item(tea, "Tea-making"),
                                            item(teeth, "Tooth-brushing")};
  save_policy_bundle(buffer, items, 1);

  rl::QTable tea_q(tea.q().num_states(), tea.q().num_actions());
  rl::QTable teeth_q(teeth.q().num_states(), teeth.q().num_actions());
  const double before = tea_q.get(0, 0);
  // Swap the slots' names: each entry then meets the other ADL's
  // vocabulary and must fail v2 validation.
  EXPECT_THROW(load_policy_bundle(
                   buffer, std::vector<PolicyBundleSlot>{
                               slot(tea, "Tooth-brushing", tea_q),
                               slot(teeth, "Tea-making", teeth_q)}),
               std::runtime_error);
  EXPECT_DOUBLE_EQ(tea_q.get(0, 0), before);
}

TEST_F(BundleFixture, DuplicateItemNamesRejectedOnSave) {
  const RoutineLearner tea = trained(library.tea_making(), 5);
  std::stringstream buffer;
  const std::vector<PolicyBundleItem> items{item(tea, "Tea-making"),
                                            item(tea, "Tea-making")};
  EXPECT_THROW(save_policy_bundle(buffer, items, 1), std::invalid_argument);
}

TEST_F(BundleFixture, SingleEntryBundleWorks) {
  const RoutineLearner wash = trained(library.hand_washing(), 9);
  std::stringstream buffer;
  save_policy_bundle(
      buffer, std::vector<PolicyBundleItem>{item(wash, "Hand-washing")}, 42);
  rl::QTable q(wash.q().num_states(), wash.q().num_actions());
  EXPECT_EQ(load_policy_bundle(buffer,
                               std::vector<PolicyBundleSlot>{
                                   slot(wash, "Hand-washing", q)}),
            42u);
  expect_same(q, wash.q());
}

}  // namespace
}  // namespace coreda::planning
