// Pins the training hot path's allocation contract: after the first episode
// has warmed the learner's scratch buffers, train_episode performs ZERO
// heap allocations — the property that lets a fleet host retrain millions
// of per-user learners without allocator contention (see DESIGN.md,
// "training hot path").
//
// alloc_counter.hpp replaces the global allocation functions of this whole
// test binary; it must stay included in exactly one TU of test_planning.

#include "util/alloc_counter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "adl/library.hpp"
#include "planning/learner.hpp"

namespace coreda::planning {
namespace {

TEST(LearnerAllocTest, TrainEpisodeIsAllocationFreeAtSteadyState) {
  adl::AdlLibrary library;
  RoutineLearner learner(library.tea_making(), util::Rng(1));
  const std::vector<adl::StepId> steps{
      adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
      adl::tools::kTeaCup};
  // Warm-up: first episodes may grow the scratch buffers once.
  for (int i = 0; i < 8; ++i) learner.train_episode(steps);

  const std::uint64_t before = util::allocation_count();
  for (int i = 0; i < 1000; ++i) learner.train_episode(steps);
  EXPECT_EQ(util::allocation_count() - before, 0u);
}

TEST(LearnerAllocTest, NoisySequencesStayAllocationFreeOnceWarm) {
  // Sequences with out-of-vocabulary glitches and varying lengths must not
  // re-trigger allocation either, as long as they fit the warmed capacity.
  adl::AdlLibrary library;
  RoutineLearner learner(library.tea_making(), util::Rng(3));
  const std::vector<adl::StepId> noisy{
      adl::tools::kTeaBox,   adl::tools::kToothbrush,  // other ADL's tool
      adl::tools::kTeaBox,   adl::tools::kElectricPot,
      adl::tools::kKettle,   adl::tools::kKettle,
      adl::tools::kTeaCup};
  const std::vector<adl::StepId> truncated{adl::tools::kTeaBox,
                                           adl::tools::kKettle};
  for (int i = 0; i < 8; ++i) {
    learner.train_episode(noisy);
    learner.train_episode(truncated);
  }

  const std::uint64_t before = util::allocation_count();
  for (int i = 0; i < 500; ++i) {
    learner.train_episode(noisy);
    learner.train_episode(truncated);
  }
  EXPECT_EQ(util::allocation_count() - before, 0u);
}

}  // namespace
}  // namespace coreda::planning
