#include "planning/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "adl/library.hpp"

namespace coreda::planning {
namespace {

namespace T = adl::tools;

struct SerializeFixture : ::testing::Test {
  adl::AdlLibrary library;

  RoutineLearner trained() {
    RoutineLearner learner(library.tea_making(), util::Rng(5));
    const std::vector<adl::StepId> steps{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
    for (int i = 0; i < 80; ++i) learner.train_episode(steps);
    return learner;
  }
};

TEST_F(SerializeFixture, RoundTripPreservesEveryQValue) {
  RoutineLearner source = trained();
  std::stringstream buffer;
  save_policy(buffer, source);

  RoutineLearner restored(library.tea_making(), util::Rng(99));
  load_policy(buffer, restored);

  for (rl::StateId s = 0; s < source.q().num_states(); ++s) {
    for (rl::ActionId a = 0; a < source.q().num_actions(); ++a) {
      EXPECT_DOUBLE_EQ(restored.q().get(s, a), source.q().get(s, a));
    }
  }
  EXPECT_DOUBLE_EQ(restored.greedy_accuracy(), 1.0);
}

TEST_F(SerializeFixture, RestoredLearnerPredictsIdentically) {
  RoutineLearner source = trained();
  std::stringstream buffer;
  save_policy(buffer, source);
  RoutineLearner restored(library.tea_making(), util::Rng(99));
  load_policy(buffer, restored);

  for (const PlannerState& state : source.predicting_states()) {
    const auto a = source.predict(state);
    const auto b = restored.predict(state);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->action, b->action);
  }
}

TEST_F(SerializeFixture, WrongAdlRejected) {
  RoutineLearner source = trained();
  std::stringstream buffer;
  save_policy(buffer, source);
  RoutineLearner other(library.tooth_brushing(), util::Rng(99));
  EXPECT_THROW(load_policy(buffer, other), std::runtime_error);
}

TEST_F(SerializeFixture, GarbageRejected) {
  std::stringstream buffer("not a policy at all\n");
  RoutineLearner learner(library.tea_making(), util::Rng(1));
  EXPECT_THROW(load_policy(buffer, learner), std::runtime_error);
}

TEST_F(SerializeFixture, TruncatedSnapshotLeavesLearnerUnchanged) {
  RoutineLearner source = trained();
  std::stringstream buffer;
  save_policy(buffer, source);
  std::string text = buffer.str();
  text.resize(text.size() * 2 / 3);  // chop the tail of the Q rows

  RoutineLearner victim(library.tea_making(), util::Rng(2));
  const double before = victim.q().get(0, 0);
  std::stringstream truncated(text);
  EXPECT_THROW(load_policy(truncated, victim), std::runtime_error);
  EXPECT_DOUBLE_EQ(victim.q().get(0, 0), before);
}

TEST_F(SerializeFixture, RestoredLearnerCanKeepTraining) {
  RoutineLearner source = trained();
  std::stringstream buffer;
  save_policy(buffer, source);
  RoutineLearner restored(library.tea_making(), util::Rng(99));
  load_policy(buffer, restored);

  const std::vector<adl::StepId> steps{T::kTeaBox, T::kElectricPot,
                                       T::kKettle, T::kTeaCup};
  for (int i = 0; i < 20; ++i) restored.train_episode(steps);
  EXPECT_DOUBLE_EQ(restored.greedy_accuracy(), 1.0);
}

TEST_F(SerializeFixture, ImportQRejectsWrongShape) {
  RoutineLearner learner(library.tea_making(), util::Rng(1));
  rl::QTable wrong(3, 3);
  EXPECT_THROW(learner.import_q(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace coreda::planning
