#include "planning/learner.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"

namespace coreda::planning {
namespace {

std::vector<adl::StepId> tea_steps() {
  return {adl::tools::kTeaBox, adl::tools::kElectricPot, adl::tools::kKettle,
          adl::tools::kTeaCup};
}

struct LearnerFixture : ::testing::Test {
  adl::AdlLibrary library;

  RoutineLearner trained(int episodes = 60, std::uint64_t seed = 5) {
    RoutineLearner learner(library.tea_making(), util::Rng(seed));
    const auto steps = tea_steps();
    for (int i = 0; i < episodes; ++i) learner.train_episode(steps);
    return learner;
  }
};

TEST_F(LearnerFixture, UntrainedPredictsSomething) {
  RoutineLearner learner(library.tea_making(), util::Rng(1));
  const auto prompt = learner.predict(adl::kIdleStep, adl::tools::kTeaBox);
  ASSERT_TRUE(prompt.has_value());  // random policy, but well-formed
}

TEST_F(LearnerFixture, LearnsFullRoutine) {
  RoutineLearner learner = trained();
  EXPECT_DOUBLE_EQ(learner.greedy_accuracy(), 1.0);
  for (const PlannerState& s : learner.predicting_states()) {
    EXPECT_TRUE(learner.greedy_correct(s));
  }
}

TEST_F(LearnerFixture, PredictsEachTransition) {
  RoutineLearner learner = trained();
  const auto steps = tea_steps();
  adl::StepId prev = adl::kIdleStep;
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    const auto prompt = learner.predict(prev, steps[i]);
    ASSERT_TRUE(prompt.has_value());
    EXPECT_EQ(prompt->action.tool, steps[i + 1]) << "at step " << i;
    prev = steps[i];
  }
}

TEST_F(LearnerFixture, ConvergedPolicyPrefersMinimalPrompts) {
  RoutineLearner learner = trained(200);
  // Intermediate prompts: minimal earns 100 vs 50, so the greedy level
  // must be minimal on every non-terminal prediction.
  const auto states = learner.predicting_states();
  for (std::size_t i = 0; i + 1 < states.size(); ++i) {
    const auto prompt = learner.predict(states[i]);
    ASSERT_TRUE(prompt.has_value());
    EXPECT_EQ(prompt->action.level, RemindingLevel::kMinimal)
        << "state " << i;
  }
}

TEST_F(LearnerFixture, UnknownContextReturnsNullopt) {
  RoutineLearner learner = trained();
  EXPECT_FALSE(learner.predict(999, 998).has_value());
  EXPECT_FALSE(learner.predict(adl::tools::kTeaBox, 999).has_value());
}

TEST_F(LearnerFixture, ForeignStepsSkippedNotFatal) {
  RoutineLearner learner(library.tea_making(), util::Rng(2));
  // A tooth-brushing tool id leaks into a tea-making episode.
  std::vector<adl::StepId> steps = tea_steps();
  steps.insert(steps.begin() + 1, adl::tools::kToothbrush);
  learner.train_episode(steps);
  EXPECT_EQ(learner.skipped_steps(), 1u);
}

TEST_F(LearnerFixture, ShortEpisodesAreHarmless) {
  RoutineLearner learner(library.tea_making(), util::Rng(3));
  learner.train_episode(std::vector<adl::StepId>{});
  learner.train_episode(std::vector<adl::StepId>{adl::tools::kTeaBox});
  EXPECT_EQ(learner.episodes_trained(), 2u);
}

TEST_F(LearnerFixture, EpsilonDecaysOverTraining) {
  RoutineLearner learner(library.tea_making(), util::Rng(4));
  const double eps0 = learner.epsilon();
  const auto steps = tea_steps();
  for (int i = 0; i < 50; ++i) learner.train_episode(steps);
  EXPECT_LT(learner.epsilon(), eps0);
}

TEST_F(LearnerFixture, BehaviourAccuracyApproachesOne) {
  RoutineLearner learner(library.tea_making(), util::Rng(6));
  const auto steps = tea_steps();
  for (int i = 0; i < 300; ++i) learner.train_episode(steps);
  EXPECT_GT(learner.behaviour_accuracy(), 0.98);
  EXPECT_LE(learner.behaviour_accuracy(), 1.0);
}

TEST_F(LearnerFixture, BehaviourAccuracyBelowGreedyWhileExploring) {
  RoutineLearner learner = trained(30);
  EXPECT_LE(learner.behaviour_accuracy(), 1.0);
  if (learner.greedy_accuracy() == 1.0) {
    EXPECT_LT(learner.behaviour_accuracy(), 1.0);  // epsilon > 0 still
  }
}

TEST_F(LearnerFixture, PredictingStatesMatchRoutineShape) {
  RoutineLearner learner(library.tea_making(), util::Rng(7));
  const auto states = learner.predicting_states();
  // 4 steps -> 3 in-routine predictions, plus the <idle, idle> context
  // that prompts the first step.
  ASSERT_EQ(states.size(), 4u);
  EXPECT_EQ(states[0].prev, adl::kIdleStep);
  EXPECT_EQ(states[0].cur, adl::kIdleStep);
  EXPECT_EQ(states[1].cur, adl::tools::kTeaBox);
  EXPECT_EQ(states[3].cur, adl::tools::kKettle);
}

TEST_F(LearnerFixture, LearnsToPromptFirstStepFromIdle) {
  RoutineLearner learner = trained();
  const auto prompt = learner.predict(adl::kIdleStep, adl::kIdleStep);
  ASSERT_TRUE(prompt.has_value());
  EXPECT_EQ(prompt->action.tool, adl::tools::kTeaBox);
}

TEST_F(LearnerFixture, TruncatedEpisodesDoNotDestroyPolicy) {
  // Missed terminal extraction must not be treated as ADL completion.
  RoutineLearner learner(library.tea_making(), util::Rng(8));
  const auto full = tea_steps();
  std::vector<adl::StepId> truncated(full.begin(), full.end() - 1);
  for (int i = 0; i < 100; ++i) {
    learner.train_episode(i % 5 == 0 ? truncated : full);
  }
  EXPECT_DOUBLE_EQ(learner.greedy_accuracy(), 1.0);
}

TEST_F(LearnerFixture, PureTdWithoutSweepStillLearnsCleanRoutine) {
  LearnerConfig config;
  config.counterfactual_sweep = false;
  config.epsilon = 0.5;            // pure sampling needs real exploration
  config.epsilon_decay = 0.995;
  RoutineLearner learner(library.tea_making(), util::Rng(9), config);
  const auto steps = tea_steps();
  for (int i = 0; i < 600; ++i) learner.train_episode(steps);
  EXPECT_DOUBLE_EQ(learner.greedy_accuracy(), 1.0);
}

TEST_F(LearnerFixture, DeterministicGivenSeed) {
  RoutineLearner a = trained(40, 77);
  RoutineLearner b = trained(40, 77);
  for (rl::StateId s = 0; s < a.q().num_states(); ++s) {
    for (rl::ActionId act = 0; act < a.q().num_actions(); ++act) {
      EXPECT_DOUBLE_EQ(a.q().get(s, act), b.q().get(s, act));
    }
  }
}

}  // namespace
}  // namespace coreda::planning
