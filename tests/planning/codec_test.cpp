#include "planning/codec.hpp"

#include <gtest/gtest.h>

#include <set>

namespace coreda::planning {
namespace {

TEST(StateCodecTest, NumStatesIncludesIdle) {
  StateCodec codec({11, 12, 13, 14});
  EXPECT_EQ(codec.num_states(), 25u);  // (4 + idle)^2
}

TEST(StateCodecTest, RoundTripAllStates) {
  StateCodec codec({11, 12});
  std::set<rl::StateId> seen;
  for (adl::StepId prev : {0, 11, 12}) {
    for (adl::StepId cur : {0, 11, 12}) {
      const auto id = codec.encode(PlannerState{prev, cur});
      ASSERT_TRUE(id.has_value());
      EXPECT_LT(*id, codec.num_states());
      EXPECT_TRUE(seen.insert(*id).second) << "duplicate encoding";
      const PlannerState back = codec.decode(*id);
      EXPECT_EQ(back.prev, prev);
      EXPECT_EQ(back.cur, cur);
    }
  }
  EXPECT_EQ(seen.size(), codec.num_states());
}

TEST(StateCodecTest, UnknownStepFailsEncoding) {
  StateCodec codec({11, 12});
  EXPECT_FALSE(codec.encode(PlannerState{11, 99}).has_value());
  EXPECT_FALSE(codec.encode(PlannerState{99, 11}).has_value());
}

TEST(StateCodecTest, DecodeOutOfRangeThrows) {
  StateCodec codec({11});
  EXPECT_THROW(codec.decode(100), std::out_of_range);
}

TEST(StateCodecTest, RejectsIdleInVocabulary) {
  EXPECT_THROW(StateCodec({0, 11}), std::invalid_argument);
}

TEST(StateCodecTest, RejectsDuplicates) {
  EXPECT_THROW(StateCodec({11, 11}), std::invalid_argument);
}

TEST(ActionCodecTest, TwoLevelsPerTool) {
  ActionCodec codec({11, 12, 13});
  EXPECT_EQ(codec.num_actions(), 6u);
}

TEST(ActionCodecTest, MinimalPrecedesSpecific) {
  // Deterministic greedy tie-breaks pick the lowest id, which must be the
  // minimal prompt — the paper's "minimal prompts" principle.
  ActionCodec codec({11, 12});
  const auto minimal = codec.encode(
      PlannerAction{11, RemindingLevel::kMinimal});
  const auto specific = codec.encode(
      PlannerAction{11, RemindingLevel::kSpecific});
  ASSERT_TRUE(minimal && specific);
  EXPECT_LT(*minimal, *specific);
}

TEST(ActionCodecTest, RoundTripAllActions) {
  ActionCodec codec({21, 22, 23, 24});
  for (rl::ActionId id = 0; id < codec.num_actions(); ++id) {
    const PlannerAction action = codec.decode(id);
    const auto back = codec.encode(action);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, id);
  }
}

TEST(ActionCodecTest, UnknownToolFailsEncoding) {
  ActionCodec codec({11});
  EXPECT_FALSE(
      codec.encode(PlannerAction{99, RemindingLevel::kMinimal}).has_value());
}

TEST(ActionCodecTest, DecodeOutOfRangeThrows) {
  ActionCodec codec({11});
  EXPECT_THROW(codec.decode(2), std::out_of_range);
}

TEST(ActionCodecTest, EmptyOrInvalidToolsThrow) {
  EXPECT_THROW(ActionCodec({}), std::invalid_argument);
  EXPECT_THROW(ActionCodec({0}), std::invalid_argument);
  EXPECT_THROW(ActionCodec({5, 5}), std::invalid_argument);
}

TEST(RemindingLevelTest, Names) {
  EXPECT_EQ(to_string(RemindingLevel::kMinimal), "minimal");
  EXPECT_EQ(to_string(RemindingLevel::kSpecific), "specific");
}

}  // namespace
}  // namespace coreda::planning
