// Byte-identity of LaneTrainer (lockstep SoA lanes) vs RoutineLearner.
//
// The fleet benches may only use the lane path because every user's result
// is bit-for-bit what the scalar path produces. This test replays the
// bench_fleet_throughput workload shape — personal noisy routines, the
// foreign-tool skip path, truncated episodes — through both paths across
// lane widths 1/4/8 with ragged tail batches, and compares final Q tables
// (bitwise), greedy accuracy, the fleet checksum sum, ε, and the skipped
// counter. Also covers the retrain-scheduler entry point
// (begin_retraining on an adopted table).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "adl/library.hpp"
#include "planning/lane_trainer.hpp"
#include "planning/learner.hpp"
#include "util/rng.hpp"

namespace coreda::planning {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// bench_fleet_throughput's StepId-level noise model.
struct NoiseProfile {
  double p_drop = 0.12;
  double p_repeat = 0.04;
  double p_spurious = 0.04;
};

void sensed_episode(const std::vector<adl::StepId>& routine,
                    const NoiseProfile& noise, adl::StepId foreign,
                    util::Rng& rng, std::vector<adl::StepId>& out) {
  out.clear();
  for (const adl::StepId step : routine) {
    if (rng.uniform() < noise.p_spurious) out.push_back(foreign);
    if (rng.uniform() < noise.p_drop) continue;
    out.push_back(step);
    if (rng.uniform() < noise.p_repeat) out.push_back(step);
  }
}

void expect_user_equal(const RoutineLearner& scalar, LaneTrainer& lane,
                       std::size_t slot, std::size_t user) {
  const rl::QTable& want = scalar.q();
  rl::QTable got(want.num_states(), want.num_actions(), 0.0);
  lane.export_q(slot, got);
  for (rl::StateId s = 0; s < want.num_states(); ++s) {
    for (rl::ActionId a = 0; a < want.num_actions(); ++a) {
      ASSERT_EQ(bits(got.get(s, a)), bits(want.get(s, a)))
          << "user " << user << " Q(" << s << "," << a << ")";
    }
  }
  EXPECT_EQ(bits(lane.greedy_accuracy(slot)), bits(scalar.greedy_accuracy()))
      << "user " << user;
  double sum = 0.0;
  for (rl::StateId s = 0; s < want.num_states(); ++s) {
    for (rl::ActionId a = 0; a < want.num_actions(); ++a) {
      sum += want.get(s, a);
    }
  }
  EXPECT_EQ(bits(lane.q_sum(slot)), bits(sum)) << "user " << user;
  EXPECT_EQ(bits(lane.epsilon(slot)), bits(scalar.epsilon()))
      << "user " << user;
  EXPECT_EQ(lane.skipped_steps(slot), scalar.skipped_steps())
      << "user " << user;
}

/// Trains `users` fleet members through scalar learners and through
/// width-`width` lanes (last batch ragged when width does not divide
/// users), asserting per-user bitwise identity.
void run_fleet_equivalence(std::size_t width, std::size_t users,
                           std::size_t episodes) {
  adl::AdlLibrary library;
  const adl::Adl& adl = library.tea_making();
  const adl::StepId foreign = adl::tools::kToothbrush;
  std::vector<adl::StepId> routine;
  for (const adl::AdlStep& step : adl.primary_routine().steps()) {
    routine.push_back(step.step_id());
  }

  LaneTrainer lane(adl, width);
  std::vector<adl::StepId> episode;
  for (std::size_t base = 0; base < users; base += width) {
    const std::size_t batch = std::min(width, users - base);

    // Scalar side first (independent instances, so order is irrelevant).
    std::vector<RoutineLearner> scalar;
    for (std::size_t i = 0; i < batch; ++i) {
      const std::size_t u = base + i;
      scalar.emplace_back(adl, util::Rng(5000 + u));
      NoiseProfile noise;
      noise.p_drop = 0.05 + 0.02 * static_cast<double>(u % 7);
      util::Rng env(9000 + u);
      // Users differ in episode count too (ragged within the batch).
      const std::size_t my_episodes = episodes - (u % 3);
      for (std::size_t e = 0; e < my_episodes; ++e) {
        sensed_episode(routine, noise, foreign, env, episode);
        scalar[i].train_episode(episode);
      }
    }

    // Lane side: same seeds, lockstep.
    std::vector<util::Rng> env;
    for (std::size_t i = 0; i < batch; ++i) {
      const std::size_t u = base + i;
      lane.reset_slot(i, util::Rng(5000 + u));
      env.emplace_back(9000 + u);
    }
    for (std::size_t e = 0; e < episodes; ++e) {
      bool any = false;
      for (std::size_t i = 0; i < batch; ++i) {
        const std::size_t u = base + i;
        if (e >= episodes - (u % 3)) continue;
        NoiseProfile noise;
        noise.p_drop = 0.05 + 0.02 * static_cast<double>(u % 7);
        sensed_episode(routine, noise, foreign, env[i], episode);
        lane.queue_episode(i, episode);
        any = true;
      }
      if (any) lane.train_queued();
    }

    for (std::size_t i = 0; i < batch; ++i) {
      expect_user_equal(scalar[i], lane, i, base + i);
    }
  }
}

TEST(LaneTrainer, Width1MatchesScalarLearner) {
  run_fleet_equivalence(1, 3, 40);
}

TEST(LaneTrainer, Width4MatchesScalarLearnerRaggedTail) {
  run_fleet_equivalence(4, 7, 40);  // 4 + ragged 3
}

TEST(LaneTrainer, Width8MatchesScalarLearnerRaggedTail) {
  run_fleet_equivalence(8, 13, 25);  // 8 + ragged 5
}

TEST(LaneTrainer, ShortAndForeignEpisodesMatchScalar) {
  adl::AdlLibrary library;
  const adl::Adl& adl = library.tea_making();
  RoutineLearner scalar(adl, util::Rng(1));
  LaneTrainer lane(adl, 2);
  lane.reset_slot(0, util::Rng(1));

  const std::vector<std::vector<adl::StepId>> episodes = {
      {},                                        // idle-only: ε decay path
      {adl::tools::kToothbrush},                 // all skipped
      {adl.primary_routine().first_step()},      // < 2 valid steps
      {adl.primary_routine().first_step(), adl::tools::kToothbrush,
       adl.primary_routine().steps()[1].step_id()},  // skip inside
  };
  for (const auto& e : episodes) {
    scalar.train_episode(e);
    lane.queue_episode(0, e);
    lane.train_queued();
  }
  expect_user_equal(scalar, lane, 0, 0);
  EXPECT_EQ(scalar.skipped_steps(), 2u);
}

TEST(LaneTrainer, BeginRetrainingMatchesScalar) {
  adl::AdlLibrary library;
  const adl::Adl& adl = library.tea_making();
  std::vector<adl::StepId> routine;
  for (const adl::AdlStep& step : adl.primary_routine().steps()) {
    routine.push_back(step.step_id());
  }

  // A warm table from a first training run.
  RoutineLearner warm(adl, util::Rng(77));
  {
    util::Rng env(78);
    std::vector<adl::StepId> episode;
    NoiseProfile noise;
    for (int e = 0; e < 30; ++e) {
      sensed_episode(routine, noise, adl::tools::kToothbrush, env, episode);
      warm.train_episode(episode);
    }
  }

  RoutineLearner scalar(adl, util::Rng(1));
  scalar.begin_retraining(warm.q(), util::Rng(314));
  LaneTrainer lane(adl, 4);
  lane.begin_retraining(2, warm.q(), util::Rng(314));

  util::Rng env_s(400);
  util::Rng env_l(400);
  std::vector<adl::StepId> episode;
  NoiseProfile noise;
  for (int e = 0; e < 20; ++e) {
    sensed_episode(routine, noise, adl::tools::kToothbrush, env_s, episode);
    scalar.train_episode(episode);
    sensed_episode(routine, noise, adl::tools::kToothbrush, env_l, episode);
    lane.queue_episode(2, episode);
    lane.train_queued();
  }
  expect_user_equal(scalar, lane, 2, 0);
}

TEST(LaneTrainer, RejectsDoubleQueueAndShapeMismatch) {
  adl::AdlLibrary library;
  const adl::Adl& adl = library.tea_making();
  LaneTrainer lane(adl, 2);
  lane.reset_slot(0, util::Rng(1));
  const std::vector<adl::StepId> e = {adl.primary_routine().first_step()};
  lane.queue_episode(0, e);
  EXPECT_THROW(lane.queue_episode(0, e), std::logic_error);
  lane.train_queued();

  rl::QTable wrong(2, 2, 0.0);
  EXPECT_THROW(lane.begin_retraining(0, wrong, util::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace coreda::planning
