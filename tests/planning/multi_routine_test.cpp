#include "planning/multi_routine.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "util/rng.hpp"

namespace coreda::planning {
namespace {

namespace T = adl::tools;

struct MultiRoutineFixture : ::testing::Test {
  adl::AdlLibrary library;

  std::vector<std::vector<adl::StepId>> dressing_episodes(int per_routine) {
    std::vector<std::vector<adl::StepId>> out;
    const std::vector<adl::StepId> shirt_first{T::kShirt, T::kTrousers,
                                               T::kSocks, T::kShoes};
    const std::vector<adl::StepId> trousers_first{T::kTrousers, T::kSocks,
                                                  T::kShirt, T::kShoes};
    for (int i = 0; i < per_routine; ++i) {
      out.push_back(shirt_first);
      out.push_back(trousers_first);
    }
    return out;
  }
};

TEST_F(MultiRoutineFixture, HistoryCodecRoundTrip) {
  HistoryCodec codec({11, 12, 13}, 3);
  EXPECT_EQ(codec.depth(), 3u);
  EXPECT_EQ(codec.num_states(), 64u);  // (3+idle)^3
  const std::vector<adl::StepId> h{11, 12, 13};
  const auto id = codec.encode(h);
  ASSERT_TRUE(id.has_value());
  EXPECT_LT(*id, codec.num_states());
}

TEST_F(MultiRoutineFixture, HistoryCodecPadsShortHistories) {
  HistoryCodec codec({11, 12}, 3);
  const std::vector<adl::StepId> short_h{11};
  const std::vector<adl::StepId> padded{0, 0, 11};
  EXPECT_EQ(codec.encode(short_h), codec.encode(padded));
}

TEST_F(MultiRoutineFixture, HistoryCodecUsesOnlyTrailingWindow) {
  HistoryCodec codec({11, 12, 13}, 2);
  const std::vector<adl::StepId> long_h{13, 11, 12};
  const std::vector<adl::StepId> window{11, 12};
  EXPECT_EQ(codec.encode(long_h), codec.encode(window));
}

TEST_F(MultiRoutineFixture, HistoryCodecRejectsUnknownSymbols) {
  HistoryCodec codec({11}, 2);
  const std::vector<adl::StepId> bad{99};
  EXPECT_FALSE(codec.encode(bad).has_value());
}

TEST_F(MultiRoutineFixture, HistoryCodecValidation) {
  EXPECT_THROW(HistoryCodec({11}, 0), std::invalid_argument);
  EXPECT_THROW(HistoryCodec({0}, 2), std::invalid_argument);
  EXPECT_THROW(HistoryCodec({11, 11}, 2), std::invalid_argument);
}

TEST_F(MultiRoutineFixture, Depth2MatchesPaperStateSpace) {
  MultiRoutineLearner learner(library.tea_making(), 2, util::Rng(1));
  // 4 tools + idle, squared.
  EXPECT_EQ(learner.codec().num_states(), 25u);
}

TEST_F(MultiRoutineFixture, Depth2AmbiguousOnDressing) {
  // The two dressing routines share <trousers, socks> but continue
  // differently; the paper's pair state cannot get both right.
  MultiRoutineLearner learner(library.dressing(), 2, util::Rng(2));
  for (const auto& ep : dressing_episodes(100)) learner.train_episode(ep);
  EXPECT_LT(learner.routine_accuracy(), 1.0);
  EXPECT_GE(learner.routine_accuracy(), 0.5);
}

TEST_F(MultiRoutineFixture, Depth3DisambiguatesDressing) {
  MultiRoutineLearner learner(library.dressing(), 3, util::Rng(3));
  for (const auto& ep : dressing_episodes(150)) learner.train_episode(ep);
  EXPECT_DOUBLE_EQ(learner.routine_accuracy(), 1.0);
  for (const adl::AdlRoutine& r : library.dressing().routines()) {
    EXPECT_DOUBLE_EQ(learner.routine_accuracy(r), 1.0) << r.name();
  }
}

TEST_F(MultiRoutineFixture, SingleRoutineAdlWorksAtAnyDepth) {
  for (std::size_t depth : {2u, 3u, 4u}) {
    MultiRoutineLearner learner(library.tea_making(), depth,
                                util::Rng(40 + depth));
    const std::vector<adl::StepId> tea{T::kTeaBox, T::kElectricPot,
                                       T::kKettle, T::kTeaCup};
    for (int i = 0; i < 120; ++i) learner.train_episode(tea);
    EXPECT_DOUBLE_EQ(learner.routine_accuracy(), 1.0) << "depth " << depth;
  }
}

TEST_F(MultiRoutineFixture, PredictUsesHistory) {
  MultiRoutineLearner learner(library.dressing(), 3, util::Rng(5));
  for (const auto& ep : dressing_episodes(150)) learner.train_episode(ep);
  // shirt, trousers, socks -> shoes (routine A)
  const std::vector<adl::StepId> ctx_a{T::kShirt, T::kTrousers, T::kSocks};
  // trousers, socks -> shirt (routine B)
  const std::vector<adl::StepId> ctx_b{T::kTrousers, T::kSocks};
  const auto pa = learner.predict(ctx_a);
  const auto pb = learner.predict(ctx_b);
  ASSERT_TRUE(pa && pb);
  EXPECT_EQ(pa->action.tool, T::kShoes);
  EXPECT_EQ(pb->action.tool, T::kShirt);
}

TEST_F(MultiRoutineFixture, ShortEpisodeIgnored) {
  MultiRoutineLearner learner(library.dressing(), 2, util::Rng(6));
  learner.train_episode(std::vector<adl::StepId>{T::kShirt});
  EXPECT_EQ(learner.episodes_trained(), 1u);
}

}  // namespace
}  // namespace coreda::planning
