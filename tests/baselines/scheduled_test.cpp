#include "baselines/scheduled.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"

namespace coreda::baselines {
namespace {

namespace T = adl::tools;
using sim::Duration;

struct ScheduledFixture : ::testing::Test {
  adl::AdlLibrary library;

  ScheduledReminderPlan trained_plan(double slack = 1.0) {
    ScheduledReminderPlan plan(library.tea_making().primary_routine(),
                               slack);
    // Tea box at ~5 s, pot at ~15 s, kettle at ~20 s, cup at ~30 s.
    for (int i = 0; i < 10; ++i) {
      plan.observe_step(T::kTeaBox, Duration::seconds(5.0 + i * 0.1));
      plan.observe_step(T::kElectricPot, Duration::seconds(15.0 + i * 0.1));
      plan.observe_step(T::kKettle, Duration::seconds(20.0 + i * 0.1));
      plan.observe_step(T::kTeaCup, Duration::seconds(30.0 + i * 0.1));
    }
    return plan;
  }
};

TEST_F(ScheduledFixture, ScheduleFollowsRoutineOrder) {
  const auto schedule = trained_plan().schedule();
  ASSERT_EQ(schedule.size(), 4u);
  EXPECT_EQ(schedule[0].tool, T::kTeaBox);
  EXPECT_EQ(schedule[1].tool, T::kElectricPot);
  EXPECT_EQ(schedule[2].tool, T::kKettle);
  EXPECT_EQ(schedule[3].tool, T::kTeaCup);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].at, schedule[i - 1].at);
  }
}

TEST_F(ScheduledFixture, OffsetsNearTrainedMeans) {
  const auto schedule = trained_plan(/*slack=*/0.0).schedule();
  EXPECT_NEAR(schedule[0].at.to_seconds(), 5.45, 0.1);
  EXPECT_NEAR(schedule[3].at.to_seconds(), 30.45, 0.1);
}

TEST_F(ScheduledFixture, SlackPushesPromptsLater) {
  const auto tight = trained_plan(0.0).schedule();
  const auto loose = trained_plan(3.0).schedule();
  for (std::size_t i = 0; i < tight.size(); ++i) {
    EXPECT_GE(loose[i].at, tight[i].at);
  }
}

TEST_F(ScheduledFixture, ForeignToolsIgnored) {
  ScheduledReminderPlan plan(library.tea_making().primary_routine());
  plan.observe_step(T::kToothbrush, Duration::seconds(5.0));
  EXPECT_EQ(plan.observations(), 0u);
}

TEST_F(ScheduledFixture, UntrainedStepsGetFallbackSpacing) {
  ScheduledReminderPlan plan(library.tea_making().primary_routine());
  plan.observe_step(T::kTeaBox, Duration::seconds(5.0));
  const auto schedule = plan.schedule();
  ASSERT_EQ(schedule.size(), 4u);
  // Untrained steps are spaced 30 s after the previous entry.
  EXPECT_NEAR(schedule[1].at.to_seconds() - schedule[0].at.to_seconds(),
              30.0, 1e-9);
  EXPECT_NEAR(schedule[3].at.to_seconds() - schedule[2].at.to_seconds(),
              30.0, 1e-9);
}

TEST_F(ScheduledFixture, FullyUntrainedStillProducesSchedule) {
  ScheduledReminderPlan plan(library.tea_making().primary_routine());
  const auto schedule = plan.schedule();
  ASSERT_EQ(schedule.size(), 4u);
  EXPECT_GT(schedule[0].at.to_seconds(), 0.0);
}

}  // namespace
}  // namespace coreda::baselines
