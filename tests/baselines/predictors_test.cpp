#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "baselines/markov.hpp"
#include "baselines/mdp_planner.hpp"
#include "baselines/predictor.hpp"
#include "baselines/td_adapter.hpp"

namespace coreda::baselines {
namespace {

namespace T = adl::tools;

std::vector<adl::StepId> tea() {
  return {T::kTeaBox, T::kElectricPot, T::kKettle, T::kTeaCup};
}

TEST(OraclePredictorTest, ReadsRoutine) {
  adl::AdlLibrary lib;
  OraclePredictor oracle(lib.tea_making().primary_routine());
  EXPECT_EQ(oracle.predict(0, T::kTeaBox), T::kElectricPot);
  EXPECT_EQ(oracle.predict(T::kKettle, T::kTeaCup), std::nullopt);
  EXPECT_EQ(oracle.name(), "oracle");
}

TEST(MarkovChainTest, LearnsFirstOrderTransitions) {
  MarkovChainPredictor markov;
  const auto steps = tea();
  for (int i = 0; i < 10; ++i) markov.train(steps);
  EXPECT_EQ(markov.predict(0, T::kTeaBox), T::kElectricPot);
  EXPECT_EQ(markov.predict(0, T::kKettle), T::kTeaCup);
  EXPECT_EQ(markov.transitions_seen(), 30u);
}

TEST(MarkovChainTest, UnseenContextHasNoOpinion) {
  MarkovChainPredictor markov;
  markov.train(tea());
  EXPECT_EQ(markov.predict(0, 99), std::nullopt);
}

TEST(MarkovChainTest, MajorityWinsOnConflict) {
  MarkovChainPredictor markov;
  const std::vector<adl::StepId> a{1, 2, 3};
  const std::vector<adl::StepId> b{1, 2, 4};
  markov.train(a);
  markov.train(a);
  markov.train(b);
  EXPECT_EQ(markov.predict(1, 2), 3);
}

TEST(MarkovChainTest, BlindToSecondOrderContext) {
  // Two interleaved routines sharing a state: first-order counts cannot
  // separate them — the structural weakness vs. the paper's pair state.
  MarkovChainPredictor markov;
  const std::vector<adl::StepId> r1{1, 2, 3};
  const std::vector<adl::StepId> r2{4, 2, 5};
  for (int i = 0; i < 10; ++i) {
    markov.train(r1);
    markov.train(r2);
  }
  // Whatever it answers from "2", it is wrong for one of the routines,
  // and the answer cannot depend on prev.
  EXPECT_EQ(markov.predict(1, 2), markov.predict(4, 2));
}

TEST(BigramTest, UsesPairContext) {
  BigramPredictor bigram;
  const std::vector<adl::StepId> r1{1, 2, 3};
  const std::vector<adl::StepId> r2{4, 2, 5};
  for (int i = 0; i < 10; ++i) {
    bigram.train(r1);
    bigram.train(r2);
  }
  EXPECT_EQ(bigram.predict(1, 2), 3);
  EXPECT_EQ(bigram.predict(4, 2), 5);
}

TEST(BigramTest, FirstTransitionUsesIdlePrev) {
  BigramPredictor bigram;
  bigram.train(tea());
  EXPECT_EQ(bigram.predict(adl::kIdleStep, T::kTeaBox), T::kElectricPot);
}

TEST(MdpPlannerTest, SolvesTeaRoutine) {
  adl::AdlLibrary lib;
  MdpPlanner mdp(lib.tea_making());
  const auto steps = tea();
  for (int i = 0; i < 30; ++i) mdp.train(steps);
  EXPECT_EQ(mdp.predict(0, T::kTeaBox), T::kElectricPot);
  EXPECT_EQ(mdp.predict(T::kTeaBox, T::kElectricPot), T::kKettle);
  EXPECT_EQ(mdp.predict(T::kElectricPot, T::kKettle), T::kTeaCup);
}

TEST(MdpPlannerTest, NoOpinionWithoutData) {
  adl::AdlLibrary lib;
  MdpPlanner mdp(lib.tea_making());
  EXPECT_EQ(mdp.predict(0, T::kTeaBox), std::nullopt);
}

TEST(MdpPlannerTest, ValueIterationConverges) {
  adl::AdlLibrary lib;
  MdpPlanner mdp(lib.tea_making());
  for (int i = 0; i < 10; ++i) mdp.train(tea());
  mdp.solve();
  EXPECT_GT(mdp.sweeps_last_solve(), 0u);
  EXPECT_LT(mdp.sweeps_last_solve(), 1000u);
}

TEST(MdpPlannerTest, HandlesNoisyMixture) {
  adl::AdlLibrary lib;
  MdpPlanner mdp(lib.tea_making());
  const auto full = tea();
  const std::vector<adl::StepId> noisy{T::kTeaBox, T::kKettle, T::kTeaCup};
  for (int i = 0; i < 8; ++i) mdp.train(full);
  for (int i = 0; i < 2; ++i) mdp.train(noisy);
  // The majority path must win.
  EXPECT_EQ(mdp.predict(0, T::kTeaBox), T::kElectricPot);
}

TEST(TdLambdaPredictorTest, MatchesLearnerBehaviour) {
  adl::AdlLibrary lib;
  TdLambdaPredictor td(lib.tea_making(), util::Rng(3));
  const auto steps = tea();
  for (int i = 0; i < 80; ++i) td.train(steps);
  EXPECT_EQ(td.predict(0, T::kTeaBox), T::kElectricPot);
  EXPECT_EQ(td.predict(T::kTeaBox, T::kElectricPot), T::kKettle);
  EXPECT_EQ(td.name(), "td-lambda");
}

TEST(AllPredictorsTest, AgreeOnCleanSingleRoutine) {
  adl::AdlLibrary lib;
  const auto& adl = lib.tea_making();
  MarkovChainPredictor markov;
  BigramPredictor bigram;
  MdpPlanner mdp(adl);
  TdLambdaPredictor td(adl, util::Rng(4));
  OraclePredictor oracle(adl.primary_routine());

  const auto steps = tea();
  std::vector<NextStepPredictor*> all{&markov, &bigram, &mdp, &td};
  for (int i = 0; i < 100; ++i) {
    for (auto* p : all) p->train(steps);
  }

  adl::StepId prev = adl::kIdleStep;
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    const auto expected = oracle.predict(prev, steps[i]);
    for (auto* p : all) {
      EXPECT_EQ(p->predict(prev, steps[i]), expected)
          << p->name() << " at step " << i;
    }
    prev = steps[i];
  }
}

}  // namespace
}  // namespace coreda::baselines
