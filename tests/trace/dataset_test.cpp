#include "trace/dataset.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"

namespace coreda::trace {
namespace {

namespace T = adl::tools;

struct DatasetFixture : ::testing::Test {
  adl::AdlLibrary library;

  DatasetBuilder make(double severity = 0.0, std::uint64_t seed = 9) {
    return DatasetBuilder(
        library, patient::PatientProfile::with_severity("T", severity),
        seed);
  }
};

TEST_F(DatasetFixture, CleanSetHasRequestedSize) {
  DatasetBuilder builder = make();
  const auto set = builder.clean_training_set(library.tea_making(), 120);
  EXPECT_EQ(set.size(), 120u);
  for (const auto& ep : set) {
    EXPECT_EQ(ep.size(), 4u);
    EXPECT_EQ(ep.front(), T::kTeaBox);
    EXPECT_EQ(ep.back(), T::kTeaCup);
  }
}

TEST_F(DatasetFixture, SensedSetOccasionallyMissesWeakSteps) {
  DatasetBuilder builder = make();
  const auto set = builder.sensed_training_set(library.tea_making(), 120);
  EXPECT_EQ(set.size(), 120u);
  std::size_t complete = 0;
  for (const auto& ep : set) {
    EXPECT_LE(ep.size(), 5u);
    if (ep.size() == 4) ++complete;
  }
  // The pot extraction (~80 %) dominates the incompleteness: roughly 70-85 %
  // of episodes survive fully.
  EXPECT_GT(complete, 60u);
  EXPECT_LT(complete, 115u);
}

TEST_F(DatasetFixture, TimedSetMatchesRoutineShape) {
  DatasetBuilder builder = make();
  const auto set = builder.timed_set(library.tooth_brushing(), 30);
  EXPECT_EQ(set.size(), 30u);
  for (const auto& ep : set) {
    ASSERT_EQ(ep.size(), 4u);
    EXPECT_EQ(ep[0].tool, T::kPasteTube);
    EXPECT_EQ(ep[3].tool, T::kTowel);
  }
}

TEST_F(DatasetFixture, DeterministicPerSeed) {
  DatasetBuilder a = make(0.0, 33);
  DatasetBuilder b = make(0.0, 33);
  EXPECT_EQ(a.sensed_training_set(library.tea_making(), 20),
            b.sensed_training_set(library.tea_making(), 20));
}

TEST_F(DatasetFixture, DifferentSeedsDiffer) {
  DatasetBuilder a = make(0.0, 1);
  DatasetBuilder b = make(0.0, 2);
  EXPECT_NE(a.sensed_training_set(library.tea_making(), 30),
            b.sensed_training_set(library.tea_making(), 30));
}

TEST_F(DatasetFixture, ParallelSensedSetIsIdenticalAtAnyJobCount) {
  DatasetBuilder a = make(0.0, 33);
  DatasetBuilder b = make(0.0, 33);
  exec::TrialRunner serial(1);
  exec::TrialRunner parallel(8);
  EXPECT_EQ(a.sensed_training_set_parallel(library.tea_making(), 24, serial),
            b.sensed_training_set_parallel(library.tea_making(), 24,
                                           parallel));
}

TEST_F(DatasetFixture, ParallelSensedSetLooksLikeTheSerialOne) {
  // Different streams, same distribution: sequences still mostly follow the
  // routine and are non-empty.
  DatasetBuilder builder = make(0.0, 5);
  exec::TrialRunner runner(2);
  const auto set =
      builder.sensed_training_set_parallel(library.tea_making(), 20, runner);
  ASSERT_EQ(set.size(), 20u);
  std::size_t nonempty = 0;
  for (const auto& ep : set) nonempty += !ep.empty();
  EXPECT_GE(nonempty, 18u);
}

TEST_F(DatasetFixture, MultiRoutineAdlSamplesBothRoutines) {
  DatasetBuilder builder = make();
  const auto set = builder.clean_training_set(library.dressing(), 40);
  bool shirt_first = false;
  bool trousers_first = false;
  for (const auto& ep : set) {
    if (ep.front() == T::kShirt) shirt_first = true;
    if (ep.front() == T::kTrousers) trousers_first = true;
  }
  EXPECT_TRUE(shirt_first);
  EXPECT_TRUE(trousers_first);
}

}  // namespace
}  // namespace coreda::trace
