#include "trace/sensing_pipeline.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"

namespace coreda::trace {
namespace {

namespace T = adl::tools;

struct PipelineFixture : ::testing::Test {
  adl::AdlLibrary library;

  std::vector<patient::TimedStep> tea_script() {
    std::vector<patient::TimedStep> script;
    for (adl::ToolId tool : library.tea_making().tools()) {
      const auto& t = library.tools().at(tool);
      script.push_back(patient::TimedStep{
          tool, sim::Duration::seconds(4.0), t.typical_usage_mean});
    }
    return script;
  }
};

TEST_F(PipelineFixture, ExtractsStrongToolReliably) {
  SensingPipeline pipeline(library.tools(), {T::kKettle}, 1);
  int hits = 0;
  for (int i = 0; i < 50; ++i) {
    if (pipeline.single_tool_trial(T::kKettle, sim::Duration::seconds(8.0))) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 48);  // kettle: paper reports 100 %
}

TEST_F(PipelineFixture, WeakToolMissesSometimes) {
  SensingPipeline pipeline(library.tools(), {T::kElectricPot}, 2);
  int hits = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    if (pipeline.single_tool_trial(T::kElectricPot,
                                   sim::Duration::seconds(2.5))) {
      ++hits;
    }
  }
  // Paper Table 3: 80 % for the pot. Allow a generous band.
  EXPECT_GT(hits, n * 60 / 100);
  EXPECT_LT(hits, n * 95 / 100);
}

TEST_F(PipelineFixture, FullEpisodeMostlyExtracted) {
  SensingPipeline pipeline(library.tools(), library.tea_making().tools(), 3);
  const SensedResult result = pipeline.run(tea_script());
  EXPECT_GE(result.extracted.size(), 3u);
  EXPECT_LE(result.extracted.size(), 4u);
  // Order of extracted steps must follow the script.
  std::size_t idx = 0;
  const std::vector<adl::StepId> routine{T::kTeaBox, T::kElectricPot,
                                         T::kKettle, T::kTeaCup};
  for (adl::StepId s : result.extracted) {
    while (idx < routine.size() && routine[idx] != s) ++idx;
    EXPECT_LT(idx, routine.size()) << "out-of-order extraction";
  }
}

TEST_F(PipelineFixture, MissedStepsCounted) {
  SensingPipeline pipeline(library.tools(), library.tea_making().tools(), 4);
  std::size_t total_missed = 0;
  for (int i = 0; i < 50; ++i) {
    total_missed += pipeline.run(tea_script()).missed;
  }
  // The pot misses ~20 % and the cup ~9 %, so some misses must appear.
  EXPECT_GT(total_missed, 0u);
  EXPECT_LT(total_missed, 50u);
}

TEST_F(PipelineFixture, RadioLossDegradesExtraction) {
  SensingPipeline::Params lossy;
  lossy.radio.loss_probability = 0.95;
  SensingPipeline good(library.tools(), {T::kKettle}, 5);
  SensingPipeline bad(library.tools(), {T::kKettle}, 5, lossy);
  int good_hits = 0;
  int bad_hits = 0;
  for (int i = 0; i < 40; ++i) {
    good_hits += good.single_tool_trial(T::kKettle,
                                        sim::Duration::seconds(8.0));
    bad_hits += bad.single_tool_trial(T::kKettle,
                                      sim::Duration::seconds(8.0));
  }
  EXPECT_GT(good_hits, bad_hits);
}

TEST_F(PipelineFixture, UninstrumentedToolNeverExtracted) {
  // Node on the kettle only; manipulating the tea box is invisible.
  SensingPipeline pipeline(library.tools(), {T::kKettle}, 6);
  const SensedResult result = pipeline.run(
      {patient::TimedStep{T::kTeaBox, sim::Duration::seconds(1.0),
                          sim::Duration::seconds(8.0)}});
  EXPECT_TRUE(result.extracted.empty());
  EXPECT_EQ(result.missed, 1u);
}

TEST_F(PipelineFixture, DeterministicPerSeed) {
  SensingPipeline a(library.tools(), library.tea_making().tools(), 7);
  SensingPipeline b(library.tools(), library.tea_making().tools(), 7);
  const auto script = tea_script();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.run(script).extracted, b.run(script).extracted);
  }
}

TEST_F(PipelineFixture, RadioStatsPopulated) {
  SensingPipeline pipeline(library.tools(), library.tea_making().tools(), 8);
  const SensedResult result = pipeline.run(tea_script());
  EXPECT_GT(result.radio.sent, 0u);
  EXPECT_GT(result.radio.delivered, 0u);
}

}  // namespace
}  // namespace coreda::trace
