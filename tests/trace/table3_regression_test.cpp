// Regression guard for the Table 3 calibration: every instrumented tool's
// extract precision must stay inside its calibrated band. These bands are
// wide enough for sampling noise (n = 200) but tight enough to catch a
// sensor-model or detector regression that would silently bend the
// headline reproduction.

#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "trace/sensing_pipeline.hpp"
#include "util/stats.hpp"

namespace coreda::trace {
namespace {

struct ToolBand {
  adl::ToolId tool;
  double low;
  double high;
};

struct Table3Band : ::testing::TestWithParam<ToolBand> {};

TEST_P(Table3Band, PrecisionInsideCalibratedBand) {
  const ToolBand band = GetParam();
  adl::AdlLibrary library;
  const adl::Tool& tool = library.tools().at(band.tool);

  SensingPipeline pipeline(library.tools(), {tool.id}, 12000 + tool.id);
  util::Rng durations(13000 + tool.id);
  util::PrecisionCounter precision;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    const double mean = tool.typical_usage_mean.to_seconds();
    const double drawn = std::max(
        mean * 0.4,
        durations.normal(mean, tool.typical_usage_stddev.to_seconds()));
    precision.record(pipeline.single_tool_trial(
        tool.id, sim::Duration::seconds(drawn)));
  }
  EXPECT_GE(precision.precision(), band.low) << tool.name;
  EXPECT_LE(precision.precision(), band.high) << tool.name;
}

// Bands: paper value +/- a generous-but-meaningful margin. The weak tools
// must stay weak (upper bounds below 1.0) — that asymmetry IS Table 3.
INSTANTIATE_TEST_SUITE_P(
    AllTools, Table3Band,
    ::testing::Values(
        ToolBand{adl::tools::kPasteTube, 0.80, 0.99},   // paper 90 %
        ToolBand{adl::tools::kToothbrush, 0.98, 1.00},  // paper 100 %
        ToolBand{adl::tools::kGargleCup, 0.98, 1.00},   // paper 100 %
        ToolBand{adl::tools::kTowel, 0.75, 0.96},       // paper 85 %
        ToolBand{adl::tools::kTeaBox, 0.98, 1.00},      // paper 100 %
        ToolBand{adl::tools::kElectricPot, 0.68, 0.92}, // paper 80 %
        ToolBand{adl::tools::kKettle, 0.98, 1.00},      // paper 100 %
        ToolBand{adl::tools::kTeaCup, 0.82, 0.99}),     // paper 90 %
    [](const auto& info) {
      adl::AdlLibrary library;
      std::string name = library.tools().at(info.param.tool).name;
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

// The structural inequality behind Table 3: within each ADL, the weak
// step extracts strictly worse than the strong ones.
TEST(Table3Shape, WeakStepsExtractWorst) {
  adl::AdlLibrary library;
  const auto precision_of = [&library](adl::ToolId id) {
    const adl::Tool& tool = library.tools().at(id);
    SensingPipeline pipeline(library.tools(), {id}, 14000 + id);
    util::Rng durations(15000 + id);
    util::PrecisionCounter counter;
    for (int i = 0; i < 300; ++i) {
      const double mean = tool.typical_usage_mean.to_seconds();
      const double drawn = std::max(
          mean * 0.4,
          durations.normal(mean, tool.typical_usage_stddev.to_seconds()));
      counter.record(pipeline.single_tool_trial(
          id, sim::Duration::seconds(drawn)));
    }
    return counter.precision();
  };
  EXPECT_LT(precision_of(adl::tools::kTowel),
            precision_of(adl::tools::kToothbrush));
  EXPECT_LT(precision_of(adl::tools::kElectricPot),
            precision_of(adl::tools::kKettle));
  EXPECT_LT(precision_of(adl::tools::kElectricPot),
            precision_of(adl::tools::kTeaBox));
}

}  // namespace
}  // namespace coreda::trace
