#include "trace/episode.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace coreda::trace {
namespace {

Episode sample_episode() {
  Episode ep;
  ep.adl_name = "Tea-making";
  ep.records.push_back(
      StepRecord{21, sim::TimePoint::from_seconds(1.0),
                 sim::Duration::seconds(5.0)});
  ep.records.push_back(
      StepRecord{22, sim::TimePoint::from_seconds(8.0),
                 sim::Duration::seconds(2.5)});
  return ep;
}

TEST(EpisodeTest, StepIds) {
  const Episode ep = sample_episode();
  EXPECT_EQ(ep.step_ids(), (std::vector<adl::StepId>{21, 22}));
}

TEST(EpisodeTest, TotalDuration) {
  const Episode ep = sample_episode();
  // From 1.0 s to 10.5 s.
  EXPECT_DOUBLE_EQ(ep.total_duration().to_seconds(), 9.5);
}

TEST(EpisodeTest, EmptyEpisode) {
  Episode ep;
  EXPECT_TRUE(ep.step_ids().empty());
  EXPECT_EQ(ep.total_duration().total_micros(), 0);
}

TEST(EpisodeCsvTest, RoundTrip) {
  std::vector<Episode> eps{sample_episode(), sample_episode()};
  eps[1].adl_name = "Tooth-brushing";
  eps[1].records.pop_back();

  std::ostringstream out;
  write_episodes_csv(out, eps);
  std::istringstream in(out.str());
  const auto back = read_episodes_csv(in);

  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].adl_name, "Tea-making");
  EXPECT_EQ(back[1].adl_name, "Tooth-brushing");
  ASSERT_EQ(back[0].records.size(), 2u);
  ASSERT_EQ(back[1].records.size(), 1u);
  EXPECT_EQ(back[0].records[1].tool, 22);
  EXPECT_DOUBLE_EQ(back[0].records[1].start.to_seconds(), 8.0);
  EXPECT_DOUBLE_EQ(back[0].records[1].duration.to_seconds(), 2.5);
}

TEST(EpisodeCsvTest, EmptyListWritesHeaderOnly) {
  std::ostringstream out;
  write_episodes_csv(out, {});
  EXPECT_EQ(out.str(), "adl,episode,tool,start_us,duration_us\n");
  std::istringstream in(out.str());
  EXPECT_TRUE(read_episodes_csv(in).empty());
}

TEST(EpisodeCsvTest, MalformedRowThrows) {
  std::istringstream in("adl,episode,tool,start_us,duration_us\nbad,row\n");
  EXPECT_THROW(read_episodes_csv(in), std::runtime_error);
}

}  // namespace
}  // namespace coreda::trace
