// Recognition-gated mid-episode switching (Params::switch_window > 0):
// after the first announcement the tracker keeps re-scoring the trailing
// window and hands the episode to a different ADL once it wins
// convincingly for switch_patience consecutive observations — without an
// idle gap ever opening. The boundary cases here mirror the idle-gap edge
// tests in tracker_test.cpp: a switch decided by tools that arrive exactly
// at the idle gap still happens inside one episode; one microsecond past
// the gap it becomes an episode close instead.
#include "recognition/tracker.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "adl/library.hpp"
#include "trace/dataset.hpp"

namespace coreda::recognition {
namespace {

namespace T = adl::tools;
using sim::Duration;
using sim::TimePoint;

struct SwitchFixture : ::testing::Test {
  adl::AdlLibrary library;
  AdlRecognizer recognizer;
  std::vector<std::string> announced;
  std::function<void(const std::string&, TimePoint)> record =
      [this](const std::string& name, TimePoint) {
        announced.push_back(name);
      };

  void SetUp() override {
    trace::DatasetBuilder datasets(
        library, patient::PatientProfile::with_severity("U", 0.0), 31);
    for (const adl::Adl& adl : library.adls()) {
      for (const auto& ep : datasets.clean_training_set(adl, 40)) {
        recognizer.train(adl.name(), ep);
      }
    }
  }

  ActivityTracker::Params switching_params() {
    ActivityTracker::Params params;
    params.switch_window = 3;
    params.switch_threshold = 0.8;
    params.switch_patience = 2;
    return params;
  }
};

TEST_F(SwitchFixture, SwitchingDisabledByDefault) {
  ActivityTracker tracker(recognizer, record);
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(20.0));
  // A solid run of tooth-brushing tools with no idle gap: the legacy
  // tracker stays on its one announcement.
  tracker.observe(T::kToothbrush, TimePoint::from_seconds(30.0));
  tracker.observe(T::kPasteTube, TimePoint::from_seconds(40.0));
  tracker.observe(T::kGargleCup, TimePoint::from_seconds(50.0));
  ASSERT_EQ(announced.size(), 1u);
  EXPECT_EQ(announced[0], "Tea-making");
  EXPECT_EQ(tracker.switches(), 0u);
}

TEST_F(SwitchFixture, SwitchesMidEpisodeWithoutIdleGap) {
  ActivityTracker tracker(recognizer, record, switching_params());
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(20.0));
  ASSERT_EQ(announced.size(), 1u);
  EXPECT_EQ(announced[0], "Tea-making");
  // Interleave: the resident walks to the bathroom mid-tea and brushes in
  // routine order. The first two observations still carry tea context in
  // the trailing window; the third and fourth are pure tooth-brushing
  // windows, and patience 2 announces the switch on the fourth.
  tracker.observe(T::kPasteTube, TimePoint::from_seconds(30.0));
  tracker.observe(T::kToothbrush, TimePoint::from_seconds(40.0));
  tracker.observe(T::kGargleCup, TimePoint::from_seconds(50.0));
  tracker.observe(T::kTowel, TimePoint::from_seconds(60.0));
  ASSERT_GE(announced.size(), 2u);
  EXPECT_EQ(announced.back(), "Tooth-brushing");
  EXPECT_EQ(tracker.switches(), 1u);
  EXPECT_EQ(tracker.episodes_seen(), 1u);  // one episode, no idle close
  ASSERT_NE(tracker.current_activity(), nullptr);
  EXPECT_EQ(*tracker.current_activity(), "Tooth-brushing");
}

TEST_F(SwitchFixture, LoneWrongToolDoesNotFlapTheActivity) {
  ActivityTracker::Params params = switching_params();
  params.switch_patience = 2;
  ActivityTracker tracker(recognizer, record, params);
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(20.0));
  // One stray toothbrush grab (the wrong-tool error mode), then back to
  // tea: patience 2 never sees two consecutive winning observations.
  tracker.observe(T::kToothbrush, TimePoint::from_seconds(30.0));
  tracker.observe(T::kKettle, TimePoint::from_seconds(40.0));
  tracker.observe(T::kTeaCup, TimePoint::from_seconds(50.0));
  EXPECT_EQ(tracker.switches(), 0u);
  ASSERT_NE(tracker.current_activity(), nullptr);
  EXPECT_EQ(*tracker.current_activity(), "Tea-making");
}

TEST_F(SwitchFixture, BackToBackSwitchAtExactlyTheIdleGapStaysOneEpisode) {
  ActivityTracker::Params params = switching_params();
  ActivityTracker tracker(recognizer, record, params);
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(20.0));
  // The switch-deciding observations arrive exactly idle_gap (3 min)
  // apart: the episode must NOT close (the gap closes only when strictly
  // exceeded), so this is a recognition-gated switch inside one episode.
  tracker.observe(T::kPasteTube, TimePoint::from_seconds(200.0));
  tracker.observe(T::kToothbrush, TimePoint::from_seconds(380.0));
  tracker.observe(T::kGargleCup, TimePoint::from_seconds(560.0));
  tracker.observe(T::kTowel, TimePoint::from_seconds(740.0));
  EXPECT_EQ(tracker.episodes_seen(), 1u);
  EXPECT_EQ(tracker.switches(), 1u);
  ASSERT_NE(tracker.current_activity(), nullptr);
  EXPECT_EQ(*tracker.current_activity(), "Tooth-brushing");
}

TEST_F(SwitchFixture, OneMicrosecondPastTheGapClosesInsteadOfSwitching) {
  ActivityTracker::Params params = switching_params();
  ActivityTracker tracker(recognizer, record, params);
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(20.0));
  ASSERT_EQ(announced.size(), 1u);
  // Same tool sequence, but the first bathroom tool lands one microsecond
  // past the idle gap: the tea episode closes and tooth-brushing is a
  // fresh episode's first announcement, not a switch.
  tracker.observe(T::kToothbrush,
                  TimePoint::from_micros(20'000'001 + 180'000'000));
  tracker.observe(T::kPasteTube,
                  TimePoint::from_micros(21'000'001 + 180'000'000));
  EXPECT_EQ(tracker.episodes_seen(), 2u);
  EXPECT_EQ(tracker.switches(), 0u);
  ASSERT_GE(announced.size(), 2u);
  EXPECT_EQ(announced.back(), "Tooth-brushing");
}

TEST_F(SwitchFixture, RetractClearsChallengerStreak) {
  ActivityTracker tracker(recognizer, record, switching_params());
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(20.0));
  tracker.observe(T::kPasteTube, TimePoint::from_seconds(30.0));
  tracker.observe(T::kToothbrush, TimePoint::from_seconds(40.0));
  tracker.observe(T::kGargleCup, TimePoint::from_seconds(50.0));
  // One winning observation accumulated (patience needs 2). retract()
  // (the consumer rejected the current announcement) must also clear the
  // challenger streak: without the reset, the pure-brush window at the
  // next observation would complete the streak and count a switch.
  tracker.retract();
  tracker.observe(T::kTowel, TimePoint::from_seconds(60.0));
  EXPECT_EQ(tracker.switches(), 0u);
}

TEST_F(SwitchFixture, SwitchBackCountsTwice) {
  ActivityTracker tracker(recognizer, record, switching_params());
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(20.0));
  tracker.observe(T::kPasteTube, TimePoint::from_seconds(30.0));
  tracker.observe(T::kToothbrush, TimePoint::from_seconds(40.0));
  tracker.observe(T::kGargleCup, TimePoint::from_seconds(50.0));
  tracker.observe(T::kTowel, TimePoint::from_seconds(60.0));
  EXPECT_EQ(tracker.switches(), 1u);
  // …and back to the kitchen to finish the tea, again in routine order.
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(70.0));
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(80.0));
  tracker.observe(T::kKettle, TimePoint::from_seconds(90.0));
  tracker.observe(T::kTeaCup, TimePoint::from_seconds(100.0));
  EXPECT_EQ(tracker.switches(), 2u);
  ASSERT_NE(tracker.current_activity(), nullptr);
  EXPECT_EQ(*tracker.current_activity(), "Tea-making");
}

}  // namespace
}  // namespace coreda::recognition
