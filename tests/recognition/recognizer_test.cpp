#include "recognition/recognizer.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "trace/dataset.hpp"

namespace coreda::recognition {
namespace {

namespace T = adl::tools;

struct RecognizerFixture : ::testing::Test {
  adl::AdlLibrary library;
  AdlRecognizer recognizer;

  void train_all(std::size_t per_adl = 60) {
    trace::DatasetBuilder datasets(
        library, patient::PatientProfile::with_severity("U", 0.0), 31);
    for (const adl::Adl& adl : library.adls()) {
      for (const auto& ep : datasets.clean_training_set(adl, per_adl)) {
        recognizer.train(adl.name(), ep);
      }
    }
  }
};

TEST_F(RecognizerFixture, UntrainedHasNoOpinion) {
  const std::vector<adl::StepId> seq{T::kTeaBox};
  EXPECT_FALSE(recognizer.classify(seq).has_value());
  EXPECT_EQ(recognizer.confidence(seq), 0.0);
  EXPECT_TRUE(recognizer.rank(seq).empty());
}

TEST_F(RecognizerFixture, EmptySequenceHasNoOpinion) {
  train_all();
  EXPECT_FALSE(
      recognizer.classify(std::vector<adl::StepId>{}).has_value());
}

TEST_F(RecognizerFixture, FullSequencesClassifyPerfectly) {
  train_all();
  for (const adl::Adl& adl : library.adls()) {
    for (const adl::AdlRoutine& routine : adl.routines()) {
      std::vector<adl::StepId> seq;
      for (const adl::AdlStep& s : routine.steps()) {
        seq.push_back(s.step_id());
      }
      EXPECT_EQ(recognizer.classify(seq), adl.name()) << routine.name();
    }
  }
}

TEST_F(RecognizerFixture, SingleDistinctiveStepSuffices) {
  train_all();
  // Tools are ADL-specific in this catalog, so one observation decides.
  const std::vector<adl::StepId> just_teabox{T::kTeaBox};
  EXPECT_EQ(recognizer.classify(just_teabox), "Tea-making");
  const std::vector<adl::StepId> just_brush{T::kToothbrush};
  EXPECT_EQ(recognizer.classify(just_brush), "Tooth-brushing");
  const std::vector<adl::StepId> just_soap{T::kSoap};
  EXPECT_EQ(recognizer.classify(just_soap), "Hand-washing");
}

TEST_F(RecognizerFixture, ConfidenceGrowsWithEvidence) {
  train_all();
  const std::vector<adl::StepId> one{T::kTeaBox};
  const std::vector<adl::StepId> two{T::kTeaBox, T::kElectricPot};
  const std::vector<adl::StepId> three{T::kTeaBox, T::kElectricPot,
                                       T::kKettle};
  const double c1 = recognizer.confidence(one);
  const double c3 = recognizer.confidence(three);
  EXPECT_GT(c1, 0.5);
  EXPECT_GE(c3, c1);
  EXPECT_LE(recognizer.confidence(two), 1.0);
}

TEST_F(RecognizerFixture, RankOrdersAllCandidates) {
  train_all();
  const std::vector<adl::StepId> seq{T::kShirt, T::kTrousers};
  const auto ranked = recognizer.rank(seq);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked.front().adl, "Dressing");
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].log_likelihood, ranked[i].log_likelihood);
  }
}

TEST_F(RecognizerFixture, NoisySequencesStillClassify) {
  train_all();
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("U", 0.0), 77);
  // Sensed sequences (with missing weak steps) must still classify.
  int correct = 0;
  const auto test_set =
      datasets.sensed_training_set(library.tea_making(), 40);
  for (const auto& seq : test_set) {
    if (!seq.empty() && recognizer.classify(seq) == "Tea-making") {
      ++correct;
    }
  }
  EXPECT_GE(correct, 38);
}

TEST_F(RecognizerFixture, BothDressingRoutinesRecognized) {
  train_all();
  const std::vector<adl::StepId> a{T::kShirt, T::kTrousers, T::kSocks,
                                   T::kShoes};
  const std::vector<adl::StepId> b{T::kTrousers, T::kSocks, T::kShirt,
                                   T::kShoes};
  EXPECT_EQ(recognizer.classify(a), "Dressing");
  EXPECT_EQ(recognizer.classify(b), "Dressing");
}

TEST(AdlRecognizerTest, InvalidSmoothingThrows) {
  EXPECT_THROW(AdlRecognizer(0.0), std::invalid_argument);
  EXPECT_THROW(AdlRecognizer(-1.0), std::invalid_argument);
}

TEST(AdlRecognizerTest, KnownAdlsCount) {
  AdlRecognizer r;
  EXPECT_EQ(r.known_adls(), 0u);
  const std::vector<adl::StepId> ep{1, 2};
  r.train("A", ep);
  r.train("B", ep);
  r.train("A", ep);
  EXPECT_EQ(r.known_adls(), 2u);
}

}  // namespace
}  // namespace coreda::recognition
