#include "recognition/tracker.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "adl/library.hpp"
#include "trace/dataset.hpp"

namespace coreda::recognition {
namespace {

namespace T = adl::tools;
using sim::Duration;
using sim::TimePoint;

struct TrackerFixture : ::testing::Test {
  adl::AdlLibrary library;
  AdlRecognizer recognizer;
  std::vector<std::string> announced;
  // The tracker holds a non-owning FnRef, so the callable lives in the
  // fixture, outliving any tracker made from it.
  std::function<void(const std::string&, TimePoint)> record =
      [this](const std::string& name, TimePoint) {
        announced.push_back(name);
      };

  void SetUp() override {
    trace::DatasetBuilder datasets(
        library, patient::PatientProfile::with_severity("U", 0.0), 31);
    for (const adl::Adl& adl : library.adls()) {
      for (const auto& ep : datasets.clean_training_set(adl, 40)) {
        recognizer.train(adl.name(), ep);
      }
    }
  }

  ActivityTracker make_tracker() {
    return ActivityTracker(recognizer, record);
  }
};

TEST_F(TrackerFixture, NullCallbackThrows) {
  EXPECT_THROW(
      ActivityTracker(recognizer, ActivityTracker::ActivityCallback{}),
      std::invalid_argument);
}

TEST_F(TrackerFixture, AnnouncesOncePerEpisode) {
  ActivityTracker tracker = make_tracker();
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(20.0));
  tracker.observe(T::kKettle, TimePoint::from_seconds(30.0));
  ASSERT_EQ(announced.size(), 1u);
  EXPECT_EQ(announced[0], "Tea-making");
  ASSERT_NE(tracker.current_activity(), nullptr);
  EXPECT_EQ(*tracker.current_activity(), "Tea-making");
  EXPECT_TRUE(tracker.episode_open());
}

TEST_F(TrackerFixture, IdleGapOpensNewEpisode) {
  ActivityTracker tracker = make_tracker();
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  // Default gap is 3 minutes; jump well past it.
  tracker.observe(T::kToothbrush, TimePoint::from_seconds(600.0));
  EXPECT_EQ(tracker.episodes_seen(), 2u);
  ASSERT_EQ(announced.size(), 2u);
  EXPECT_EQ(announced[0], "Tea-making");
  EXPECT_EQ(announced[1], "Tooth-brushing");
}

TEST_F(TrackerFixture, ObservationExactlyAtIdleGapStaysOpen) {
  ActivityTracker tracker = make_tracker();
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  // Default idle gap is 3 min: an observation exactly idle_gap after the
  // last event is still part of the episode (it closes only when the gap
  // is strictly exceeded).
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(190.0));
  EXPECT_EQ(tracker.episodes_seen(), 1u);
  EXPECT_EQ(tracker.episode_steps().size(), 2u);
  // One microsecond past the gap closes and re-opens in the same call.
  tracker.observe(T::kKettle,
                  TimePoint::from_micros(190'000'001 + 180'000'000));
  EXPECT_EQ(tracker.episodes_seen(), 2u);
  EXPECT_EQ(tracker.episode_steps().size(), 1u);
}

TEST_F(TrackerFixture, CloseEpisodeResetsState) {
  ActivityTracker tracker = make_tracker();
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  tracker.close_episode();
  EXPECT_FALSE(tracker.episode_open());
  EXPECT_EQ(tracker.current_activity(), nullptr);
  EXPECT_TRUE(tracker.episode_steps().empty());
}

TEST_F(TrackerFixture, ConsecutiveDuplicatesCollapsed) {
  ActivityTracker tracker = make_tracker();
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(12.0));
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(20.0));
  EXPECT_EQ(tracker.episode_steps().size(), 2u);
}

TEST_F(TrackerFixture, HighThresholdDelaysAnnouncement) {
  ActivityTracker::Params params;
  params.confidence_threshold = 0.999;
  ActivityTracker tracker(recognizer, record, params);
  tracker.observe(T::kTeaBox, TimePoint::from_seconds(10.0));
  const std::size_t after_one = announced.size();
  tracker.observe(T::kElectricPot, TimePoint::from_seconds(20.0));
  tracker.observe(T::kKettle, TimePoint::from_seconds(30.0));
  tracker.observe(T::kTeaCup, TimePoint::from_seconds(40.0));
  // May or may not reach 0.999, but never announces the wrong ADL and
  // never announces twice.
  EXPECT_LE(after_one, announced.size());
  EXPECT_LE(announced.size(), 1u);
  for (const std::string& name : announced) {
    EXPECT_EQ(name, "Tea-making");
  }
}

}  // namespace
}  // namespace coreda::recognition
