// Regression tests for session lifecycle: a session that hits its deadline
// leaves the patient actor's scheduled callbacks in the queue; destroying
// the actor (next session, or system teardown) must cancel them — this
// once crashed as a use-after-free when many timed-out sessions ran
// back-to-back on one system.

#include <gtest/gtest.h>

#include <memory>

#include "core/system.hpp"
#include "trace/dataset.hpp"

namespace coreda::core {
namespace {

using Kind = patient::PatientEvent::Kind;

struct LifecycleFixture : ::testing::Test {
  adl::AdlLibrary library;
};

TEST_F(LifecycleFixture, ManyTimedOutSessionsBackToBack) {
  CoredaSystem system(library, library.tea_making(), SystemConfig{});
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("T", 0.0), 1);
  system.pretrain(datasets.clean_training_set(library.tea_making(), 60));

  // Non-compliant and slow: most short sessions time out mid-action,
  // leaving the actor's next scheduled event pending at teardown.
  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("T", 1.0);
  profile.comply_minimal = 0.1;
  profile.comply_specific = 0.1;

  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    completed +=
        system.run_session(profile, sim::Duration::minutes(2.0)).completed;
  }
  // The point is surviving 40 teardown/restart cycles; completion under
  // these settings is incidental.
  EXPECT_LE(completed, 40);
}

TEST_F(LifecycleFixture, SystemDestructionWithPendingActorEvents) {
  auto system = std::make_unique<CoredaSystem>(
      library, library.tea_making(), SystemConfig{});
  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("T", 0.0);
  // Time out almost immediately: the actor's first think event is pending.
  system->run_session(profile, sim::Duration::seconds(1.0));
  system.reset();  // must not fire dangling callbacks
}

TEST_F(LifecycleFixture, FrozenTimeoutThenNormalSession) {
  CoredaSystem system(library, library.tea_making(), SystemConfig{});
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("T", 0.0), 2);
  system.pretrain(datasets.clean_training_set(library.tea_making(), 60));

  patient::PatientProfile stubborn =
      patient::PatientProfile::with_severity("T", 0.0);
  stubborn.comply_minimal = 0.0;
  stubborn.comply_specific = 0.0;
  system.run_session(stubborn, sim::Duration::minutes(2.0),
                     [](patient::PatientActor& actor) {
                       actor.force_next_decision(Kind::kFroze);
                     });

  patient::PatientProfile fine =
      patient::PatientProfile::with_severity("T", 0.0);
  fine.comply_minimal = 1.0;
  fine.comply_specific = 1.0;
  const SessionResult result =
      system.run_session(fine, sim::Duration::minutes(15.0));
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace coreda::core
