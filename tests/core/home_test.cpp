#include "core/home.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace coreda::core {
namespace {

struct HomeFixture : ::testing::Test {
  adl::AdlLibrary library;

  std::unique_ptr<HomeDeployment> deploy(std::uint64_t seed = 99) {
    SystemConfig config;
    config.seed = seed;
    auto home = std::make_unique<HomeDeployment>(library, config);
    home->pretrain(120, seed + 1);
    return home;
  }

  patient::PatientProfile compliant(double severity) {
    patient::PatientProfile p =
        patient::PatientProfile::with_severity("Resident", severity);
    p.comply_minimal = 1.0;
    p.comply_specific = 1.0;
    return p;
  }
};

TEST_F(HomeFixture, PretrainingConvergesEveryPlanner) {
  const auto home = deploy();
  for (const char* name :
       {"Tea-making", "Tooth-brushing", "Hand-washing"}) {
    EXPECT_DOUBLE_EQ(home->learner(name).greedy_accuracy(), 1.0) << name;
  }
  EXPECT_EQ(home->recognizer().known_adls(), 4u);
}

TEST_F(HomeFixture, RecognizesAndAssistsTeaMaking) {
  const auto home = deploy();
  const HomeSessionResult result = home->run_session(
      "Tea-making", compliant(0.4), sim::Duration::minutes(30.0));
  EXPECT_TRUE(result.recognized_correctly);
  EXPECT_EQ(result.recognized_adl, "Tea-making");
  EXPECT_LE(result.steps_to_recognition, 2u);
  EXPECT_TRUE(result.completed);
}

TEST_F(HomeFixture, RecognizesEachSingleRoutineAdl) {
  const auto home = deploy();
  for (const char* name :
       {"Tea-making", "Tooth-brushing", "Hand-washing"}) {
    const HomeSessionResult result = home->run_session(
        name, compliant(0.0), sim::Duration::minutes(30.0));
    EXPECT_TRUE(result.recognized_correctly) << name;
    EXPECT_TRUE(result.completed) << name;
  }
}

TEST_F(HomeFixture, AssistsAcrossConsecutiveDifferentAdls) {
  const auto home = deploy();
  const auto tea = home->run_session("Tea-making", compliant(0.3),
                                     sim::Duration::minutes(30.0));
  // The second session uses the care schedule's hint (the resident may
  // freeze before ever starting; see HomeDeployment::run_session docs).
  const auto teeth =
      home->run_session("Tooth-brushing", compliant(0.3),
                        sim::Duration::minutes(30.0), "Tooth-brushing");
  EXPECT_TRUE(tea.recognized_correctly);
  EXPECT_TRUE(teeth.recognized_correctly);
  EXPECT_TRUE(tea.completed);
  EXPECT_TRUE(teeth.completed);
}

TEST_F(HomeFixture, WrongHintOverriddenByRecognition) {
  const auto home = deploy();
  // Schedule says tooth-brushing, but the resident starts making tea; the
  // recognizer must override the provisional activation.
  const auto result =
      home->run_session("Tea-making", compliant(0.0),
                        sim::Duration::minutes(30.0), "Tooth-brushing");
  EXPECT_TRUE(result.recognized_correctly);
  EXPECT_TRUE(result.completed);
}

TEST_F(HomeFixture, HintRescuesFrozenStart) {
  const auto home = deploy(123);
  patient::PatientProfile stuck = compliant(0.0);
  stuck.p_idle = 1.0;  // freezes at every self-initiated decision
  const auto result =
      home->run_session("Tea-making", stuck, sim::Duration::minutes(30.0),
                        "Tea-making");
  // Every step happens via prompts; the hint supplies the first one.
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.prompts_total, 4u);
}

TEST_F(HomeFixture, UnknownAdlThrows) {
  const auto home = deploy();
  EXPECT_THROW(home->learner("Cooking"), std::out_of_range);
  EXPECT_THROW(home->run_session("Cooking", compliant(0.0),
                                 sim::Duration::minutes(1.0)),
               std::out_of_range);
  EXPECT_THROW(home->run_session("Tea-making", compliant(0.0),
                                 sim::Duration::minutes(1.0), "Cooking"),
               std::out_of_range);
}

TEST_F(HomeFixture, ImpairedResidentsStillMostlyComplete) {
  const auto home = deploy();
  int completed = 0;
  int recognized = 0;
  constexpr int kSessions = 8;
  for (int i = 0; i < kSessions; ++i) {
    const char* adl = i % 2 == 0 ? "Tea-making" : "Tooth-brushing";
    // Scheduled care: the daily plan names the expected activity.
    const auto result = home->run_session(adl, compliant(0.6),
                                          sim::Duration::minutes(40.0), adl);
    completed += result.completed;
    recognized += result.recognized_correctly;
  }
  EXPECT_GE(completed, kSessions - 1);
  // Recognition can stay pending when the hinted planner does all the
  // work before enough steps are observed; completion is the contract.
  EXPECT_GE(recognized, kSessions / 2);
}

}  // namespace
}  // namespace coreda::core
