// Pins the serving hot path's allocation contract: once a CoredaSystem has
// served enough sessions to warm every pool (scheduler slots, radio
// frames, station episode table, reminder strings, actor/event buffers),
// run_session_inplace serves a whole closed-loop session with ZERO heap
// allocations — the property that lets one host serve a fleet of homes
// without allocator contention (see DESIGN.md, "session serving engine").
//
// alloc_counter.hpp replaces the global allocation functions of this whole
// test binary; it must stay included in exactly one TU of test_core.

#include "util/alloc_counter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "adl/library.hpp"
#include "core/system.hpp"
#include "patient/profile.hpp"

namespace coreda::core {
namespace {

TEST(SessionAllocTest, RunSessionIsAllocationFreeAtSteadyState) {
  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();
  std::vector<adl::StepId> routine;
  for (const adl::AdlStep& s : tea.primary_routine().steps()) {
    routine.push_back(s.step_id());
  }
  const std::vector<std::vector<adl::StepId>> training(60, routine);

  SystemConfig config;
  config.seed = 99;
  CoredaSystem system(library, tea, config);
  system.pretrain(training);

  // Deterministic session covering every serving branch: a correct step,
  // a freeze (idle-timeout prompt), and a wrong tool (wrong-tool prompt +
  // red LED). comply_minimal = 0 means the first minimal prompt is always
  // ignored, so every prompt path re-fires and escalates to the specific
  // level — the idle-reprompt branch.
  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("U", 0.0);
  profile.comply_minimal = 0.0;
  profile.comply_specific = 1.0;
  const std::function<void(patient::PatientActor&)> script =
      [](patient::PatientActor& actor) {
        using Kind = patient::PatientEvent::Kind;
        actor.force_next_decision(Kind::kStartedStep);
        actor.force_next_decision(Kind::kFroze);
        actor.force_next_decision(Kind::kWrongTool, adl::tools::kTeaCup);
      };

  // Warm-up: the first sessions may grow the pools once.
  SessionResult result;
  for (int i = 0; i < 16; ++i) {
    system.run_session_inplace(profile, sim::Duration::minutes(15.0),
                               script, result);
  }
  ASSERT_TRUE(result.completed);
  ASSERT_GT(result.prompts_idle, 0u);
  ASSERT_GT(result.prompts_wrong_tool, 0u);
  ASSERT_GT(result.prompts_specific, 0u);  // the escalation branch ran

  const std::uint64_t before = util::allocation_count();
  for (int i = 0; i < 64; ++i) {
    system.run_session_inplace(profile, sim::Duration::minutes(15.0),
                               script, result);
  }
  EXPECT_EQ(util::allocation_count() - before, 0u);
  EXPECT_TRUE(result.completed);
}

TEST(SessionAllocTest, StochasticSessionsStayAllocationFreeOnceWarm) {
  // Unscripted sessions wander across branches (ignored prompts, random
  // wrong tools, collisions): none of them may re-trigger allocation once
  // the pools are warm.
  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();
  std::vector<adl::StepId> routine;
  for (const adl::AdlStep& s : tea.primary_routine().steps()) {
    routine.push_back(s.step_id());
  }
  const std::vector<std::vector<adl::StepId>> training(60, routine);

  SystemConfig config;
  config.seed = 77;
  CoredaSystem system(library, tea, config);
  system.pretrain(training);
  const patient::PatientProfile profile =
      patient::PatientProfile::with_severity("U", 0.4);

  SessionResult result;
  for (int i = 0; i < 24; ++i) {
    system.run_session_inplace(profile, sim::Duration::minutes(15.0), {},
                               result);
  }

  const std::uint64_t before = util::allocation_count();
  for (int i = 0; i < 64; ++i) {
    system.run_session_inplace(profile, sim::Duration::minutes(15.0), {},
                               result);
  }
  EXPECT_EQ(util::allocation_count() - before, 0u);
}

}  // namespace
}  // namespace coreda::core
