#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace coreda::core {
namespace {

struct ScenarioFixture : ::testing::Test {
  adl::AdlLibrary library;
};

TEST_F(ScenarioFixture, Figure1TimelineReproduced) {
  ScenarioPlayer player(library);
  const auto timeline = player.play_figure1();
  ASSERT_FALSE(timeline.empty());

  // The scenario completes the ADL.
  EXPECT_TRUE(player.last_result().completed);
  EXPECT_EQ(player.last_result().steps_completed, 4u);

  // The two prompts of Figure 1 appear: one wrong-tool (pot, after the
  // tea-cup mistake) and one idle (tea cup, after the freeze).
  EXPECT_EQ(player.last_result().prompts_wrong_tool, 1u);
  EXPECT_GE(player.last_result().prompts_idle, 1u);
  EXPECT_GE(player.last_result().praises, 2u);
}

TEST_F(ScenarioFixture, TimelineIsChronological) {
  ScenarioPlayer player(library);
  const auto timeline = player.play_figure1();
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LE(timeline[i - 1].at, timeline[i].at);
  }
}

TEST_F(ScenarioFixture, TimelineMentionsKeyMoments) {
  ScenarioPlayer player(library);
  std::ostringstream out;
  player.play_figure1(&out);
  const std::string text = out.str();
  EXPECT_NE(text.find("tea box"), std::string::npos);
  EXPECT_NE(text.find("incorrectly takes tea cup"), std::string::npos);
  EXPECT_NE(text.find("electronic pot"), std::string::npos);
  EXPECT_NE(text.find("red LED"), std::string::npos);
  EXPECT_NE(text.find("does nothing"), std::string::npos);
  EXPECT_NE(text.find("ADL complete"), std::string::npos);
}

TEST_F(ScenarioFixture, DeterministicReplay) {
  ScenarioPlayer a(library);
  ScenarioPlayer b(library);
  const auto ta = a.play_figure1();
  const auto tb = b.play_figure1();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].at, tb[i].at);
    EXPECT_EQ(ta[i].description, tb[i].description);
  }
}

TEST_F(ScenarioFixture, CustomUserNameAppearsInSpecificPrompts) {
  SystemConfig config;
  config.user_name = "Kim";
  // Force the specific level so the name shows: use a reminder params tweak
  // via the learner? Simpler: the minimal default hides names, so just
  // check the scenario still completes with a custom config.
  ScenarioPlayer player(library, config);
  player.play_figure1();
  EXPECT_TRUE(player.last_result().completed);
}

}  // namespace
}  // namespace coreda::core
