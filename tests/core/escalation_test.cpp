#include <gtest/gtest.h>

#include <memory>

#include "core/system.hpp"
#include "trace/dataset.hpp"

namespace coreda::core {
namespace {

using Kind = patient::PatientEvent::Kind;

struct EscalationFixture : ::testing::Test {
  adl::AdlLibrary library;

  std::unique_ptr<CoredaSystem> deploy(SystemConfig config) {
    auto system = std::make_unique<CoredaSystem>(
        library, library.tea_making(), config);
    trace::DatasetBuilder datasets(
        library, patient::PatientProfile::with_severity("T", 0.0),
        config.seed + 100);
    system->pretrain(datasets.clean_training_set(library.tea_making(), 120));
    return system;
  }

  /// Ignores minimal prompts entirely but always follows specific ones.
  patient::PatientProfile needs_specific() {
    patient::PatientProfile p =
        patient::PatientProfile::with_severity("Tanaka", 0.0);
    p.comply_minimal = 0.0;
    p.comply_specific = 1.0;
    return p;
  }
};

TEST_F(EscalationFixture, ReprompTEscalatesToSpecific) {
  SystemConfig config;
  config.escalate_reprompts = true;
  const auto system = deploy(config);
  const SessionResult result = system->run_session(
      needs_specific(), sim::Duration::minutes(20.0),
      [](patient::PatientActor& actor) {
        actor.force_next_decision(Kind::kStartedStep);
        actor.force_next_decision(Kind::kFroze);
      });
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.prompts_specific, 1u);
  // The first prompt per situation stays minimal (paper's principle).
  ASSERT_FALSE(system->reminder().log().empty());
  EXPECT_EQ(system->reminder().log()[0].level,
            planning::RemindingLevel::kMinimal);
}

TEST_F(EscalationFixture, WithoutEscalationStubbornUserStaysStuck) {
  SystemConfig config;
  config.escalate_reprompts = false;
  const auto system = deploy(config);
  const SessionResult result = system->run_session(
      needs_specific(), sim::Duration::minutes(10.0),
      [](patient::PatientActor& actor) {
        actor.force_next_decision(Kind::kStartedStep);
        actor.force_next_decision(Kind::kFroze);
      });
  // Minimal prompts are ignored forever; the session times out.
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.prompts_specific, 0u);
  EXPECT_GE(result.prompts_minimal, 2u);
}

TEST_F(EscalationFixture, EscalationSequenceMinimalThenSpecific) {
  SystemConfig config;
  config.escalate_reprompts = true;
  const auto system = deploy(config);
  system->run_session(needs_specific(), sim::Duration::minutes(20.0),
                      [](patient::PatientActor& actor) {
                        actor.force_next_decision(Kind::kStartedStep);
                        actor.force_next_decision(Kind::kFroze);
                      });
  const auto& log = system->reminder().log();
  ASSERT_GE(log.size(), 2u);
  EXPECT_EQ(log[0].level, planning::RemindingLevel::kMinimal);
  EXPECT_EQ(log[1].level, planning::RemindingLevel::kSpecific);
}

}  // namespace
}  // namespace coreda::core
