#include "core/system.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "trace/dataset.hpp"

namespace coreda::core {
namespace {

namespace T = adl::tools;
using Kind = patient::PatientEvent::Kind;

struct SystemFixture : ::testing::Test {
  adl::AdlLibrary library;

  std::unique_ptr<CoredaSystem> trained_system(
      SystemConfig config = SystemConfig()) {
    auto system =
        std::make_unique<CoredaSystem>(library, library.tea_making(), config);
    trace::DatasetBuilder datasets(
        library, patient::PatientProfile::with_severity("T", 0.0),
        config.seed + 100);
    const auto training =
        datasets.clean_training_set(library.tea_making(), 120);
    system->pretrain(training);
    return system;
  }

  patient::PatientProfile compliant(double severity) {
    patient::PatientProfile p =
        patient::PatientProfile::with_severity("Tanaka", severity);
    p.comply_minimal = 1.0;
    p.comply_specific = 1.0;
    return p;
  }
};

TEST_F(SystemFixture, PretrainingConvergesPolicy) {
  const auto system = trained_system();
  EXPECT_DOUBLE_EQ(system->learner().greedy_accuracy(), 1.0);
}

TEST_F(SystemFixture, HealthyPatientNeedsNoPrompts) {
  const auto system = trained_system();
  const SessionResult result =
      system->run_session(compliant(0.0), sim::Duration::minutes(15.0));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.steps_completed, 4u);
  EXPECT_EQ(result.prompts_total, 0u);
}

TEST_F(SystemFixture, FrozenPatientGetsIdlePromptAndFinishes) {
  // Seed chosen so the electronic pot's (deliberately weak, Table 3: 80 %)
  // extraction succeeds on the prompted step — the praise requires the
  // sensed usage edge to arrive.
  SystemConfig config;
  config.seed = 43;
  const auto system = trained_system(config);
  const SessionResult result = system->run_session(
      compliant(0.0), sim::Duration::minutes(15.0),
      [](patient::PatientActor& actor) {
        actor.force_next_decision(Kind::kStartedStep);
        actor.force_next_decision(Kind::kFroze);
      });
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.prompts_idle, 1u);
  EXPECT_GE(result.praises, 1u);
}

TEST_F(SystemFixture, WrongToolPatientGetsCorrectivePrompt) {
  const auto system = trained_system();
  const SessionResult result = system->run_session(
      compliant(0.0), sim::Duration::minutes(15.0),
      [](patient::PatientActor& actor) {
        actor.force_next_decision(Kind::kStartedStep);
        actor.force_next_decision(Kind::kWrongTool, T::kTeaCup);
      });
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.prompts_wrong_tool, 1u);
  // The corrective reminder carried the red-LED target.
  bool saw_red = false;
  for (const auto& r : system->reminder().log()) {
    if (r.wrong_tool.has_value()) saw_red = true;
  }
  EXPECT_TRUE(saw_red);
}

TEST_F(SystemFixture, PromptsNameTheRoutineNextTool) {
  const auto system = trained_system();
  system->run_session(compliant(0.0), sim::Duration::minutes(15.0),
                     [](patient::PatientActor& actor) {
                       actor.force_next_decision(Kind::kStartedStep);
                       actor.force_next_decision(Kind::kFroze);
                     });
  ASSERT_FALSE(system->reminder().log().empty());
  // After tea box, the correct next tool is the electronic pot.
  EXPECT_EQ(system->reminder().log()[0].target_tool, T::kElectricPot);
}

TEST_F(SystemFixture, SessionTimeoutReported) {
  const auto system = trained_system();
  patient::PatientProfile stubborn = compliant(0.0);
  stubborn.comply_minimal = 0.0;
  stubborn.comply_specific = 0.0;
  const SessionResult result = system->run_session(
      stubborn, sim::Duration::minutes(3.0),
      [](patient::PatientActor& actor) {
        actor.force_next_decision(Kind::kFroze);
      });
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.steps_completed, 0u);
}

TEST_F(SystemFixture, ObservedStepsRecordSensedSequence) {
  const auto system = trained_system();
  const SessionResult result =
      system->run_session(compliant(0.0), sim::Duration::minutes(15.0));
  ASSERT_TRUE(result.completed);
  EXPECT_GE(result.observed_steps.size(), 3u);
  EXPECT_EQ(result.observed_steps.front(), T::kTeaBox);
}

TEST_F(SystemFixture, ConsecutiveSessionsWork) {
  const auto system = trained_system();
  const SessionResult first =
      system->run_session(compliant(0.0), sim::Duration::minutes(15.0));
  const SessionResult second =
      system->run_session(compliant(0.0), sim::Duration::minutes(15.0));
  EXPECT_TRUE(first.completed);
  EXPECT_TRUE(second.completed);
}

TEST_F(SystemFixture, NodeAccessor) {
  const auto system = trained_system();
  EXPECT_EQ(system->node(T::kKettle).uid(), T::kKettle);
  EXPECT_THROW(system->node(999), std::out_of_range);
}

TEST_F(SystemFixture, LearnFromSessionsGrowsEpisodeCount) {
  SystemConfig config;
  config.learn_from_sessions = true;
  const auto system = trained_system(config);
  const std::size_t before = system->learner().episodes_trained();
  system->run_session(compliant(0.0), sim::Duration::minutes(15.0));
  EXPECT_GT(system->learner().episodes_trained(), before);
}

TEST_F(SystemFixture, MinimalPromptsAfterConvergence) {
  const auto system = trained_system();
  system->run_session(compliant(0.0), sim::Duration::minutes(15.0),
                     [](patient::PatientActor& actor) {
                       actor.force_next_decision(Kind::kStartedStep);
                       actor.force_next_decision(Kind::kFroze);
                     });
  ASSERT_FALSE(system->reminder().log().empty());
  EXPECT_EQ(system->reminder().log()[0].level,
            planning::RemindingLevel::kMinimal);
}

}  // namespace
}  // namespace coreda::core
