// Episode segmentation across scripted multi-ADL sessions: recognition-
// gated switching keeps one episode alive while the resident interleaves
// ADLs; caregiver interruptions close the episode only when they exceed
// the idle gap; planner context and step progress survive a switch-away
// and are restored from the deployment's per-ADL maps when a later
// segment returns. Exact idle-gap boundary timing (strictly greater
// closes, equal does not) is pinned at tracker level in
// recognition/tracker_switch_test.cpp — here the boundaries are exercised
// through the whole closed loop, where think/manipulation time pads the
// gap.
#include "core/home.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace coreda::core {
namespace {

namespace T = adl::tools;

struct SegmentationFixture : ::testing::Test {
  adl::AdlLibrary library;

  std::unique_ptr<HomeDeployment> deploy(std::uint64_t seed = 99) {
    SystemConfig config;
    config.seed = seed;
    auto home = std::make_unique<HomeDeployment>(library, config);
    home->pretrain(120, seed + 1);
    // Window 2 / patience 1: a switch fires on the second consecutive
    // routine-ordered tool of the challenger ADL. Short segments (a
    // 2-step return to the tea) can then still announce their switch,
    // and a lone wrong grab stays harmless — its window always mixes
    // the intruder with a current-ADL tool.
    recognition::ActivityTracker::Params params;
    params.switch_window = 2;
    params.switch_threshold = 0.8;
    params.switch_patience = 1;
    home->set_tracker_params(params);
    return home;
  }

  patient::PatientProfile compliant(double severity) {
    patient::PatientProfile p =
        patient::PatientProfile::with_severity("Resident", severity);
    p.comply_minimal = 1.0;
    p.comply_specific = 1.0;
    return p;
  }

  static ScriptPart segment(std::string adl, std::size_t steps = 0,
                            bool resume = false) {
    ScriptPart part;
    part.adl = std::move(adl);
    part.steps = steps;
    part.resume = resume;
    return part;
  }

  static ScriptPart interrupt(double pause_s) {
    ScriptPart part;
    part.pause = sim::Duration::seconds(pause_s);
    return part;
  }
};

TEST_F(SegmentationFixture, InterleavedAdlsServeInOneEpisode) {
  const auto home = deploy();
  // Start the tea, brush teeth while the kettle heats, come back for the
  // tea — one continuous episode, two recognition-gated switches.
  SessionScript script;
  script.parts = {segment("Tea-making", 2), segment("Tooth-brushing"),
                  segment("Tea-making", 0, /*resume=*/true)};
  const HomeScriptResult result =
      home->run_script(script, compliant(0.0), sim::Duration::minutes(45.0));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.segments, 3u);
  EXPECT_EQ(result.segments_completed, 3u);
  EXPECT_EQ(result.idle_episodes, 0u);
  EXPECT_GE(result.session.segment_switches, 2u);
}

TEST_F(SegmentationFixture, ResumeSkipsAlreadyCompletedSteps) {
  const auto home = deploy();
  SessionScript script;
  script.parts = {segment("Tea-making", 2),
                  segment("Tea-making", 0, /*resume=*/true)};
  const auto result =
      home->run_script(script, compliant(0.0), sim::Duration::minutes(45.0));
  EXPECT_TRUE(result.completed);
  // Without resume the second segment would restart the routine; with it,
  // both segments together perform the routine exactly once.
  EXPECT_EQ(result.segments_completed, 2u);
  EXPECT_EQ(result.idle_episodes, 0u);
}

TEST_F(SegmentationFixture, ShortInterruptionKeepsTheEpisodeOpen) {
  const auto home = deploy();
  SessionScript script;
  script.parts = {segment("Tea-making", 2), interrupt(30.0),
                  segment("Tea-making", 0, /*resume=*/true)};
  const auto result =
      home->run_script(script, compliant(0.0), sim::Duration::minutes(45.0));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.idle_episodes, 0u);
}

TEST_F(SegmentationFixture, LongInterruptionClosesTheEpisode) {
  const auto home = deploy();
  // Well past the 3-minute idle gap: the tracker must close the tea
  // episode during the pause and re-recognize on resumption.
  SessionScript script;
  script.parts = {segment("Tea-making", 2), interrupt(300.0),
                  segment("Tea-making", 0, /*resume=*/true)};
  const auto result =
      home->run_script(script, compliant(0.0), sim::Duration::minutes(45.0));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.idle_episodes, 1u);
  EXPECT_EQ(result.session.segment_switches, 0u);
}

TEST_F(SegmentationFixture, WrongToolBeforeSwitchingStillSwitchesCleanly) {
  const auto home = deploy();
  // The resident grabs the tea cup first (wrong: the routine starts at
  // the tea box). The hinted trigger prompts the correction, and the
  // intrusion must not stop the later recognition-gated switches: its
  // trailing window always mixes ADLs, so it never wins one.
  SessionScript script;
  ScriptPart tea = segment("Tea-making", 2);
  tea.wrong_tool = 1;
  tea.wrong_tool_id = T::kTeaCup;
  script.parts = {tea, segment("Tooth-brushing"),
                  segment("Tea-making", 0, /*resume=*/true)};
  script.hint = "Tea-making";
  const auto result =
      home->run_script(script, compliant(0.0), sim::Duration::minutes(45.0));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.idle_episodes, 0u);
  EXPECT_GE(result.session.segment_switches, 2u);
  EXPECT_GE(result.session.wrong_tool_recoveries, 1u);
}

TEST_F(SegmentationFixture, WrongToolRecoveryIsCounted) {
  const auto home = deploy();
  // Hinted single-segment script: the forced wrong grab (tea cup instead
  // of tea box) fires the wrong-tool trigger, the prompt corrects it, and
  // the praise that closes the prompt counts one recovery.
  SessionScript script;
  ScriptPart tea = segment("Tea-making");
  tea.wrong_tool = 1;
  tea.wrong_tool_id = T::kTeaCup;
  script.parts = {tea};
  script.hint = "Tea-making";
  const auto result =
      home->run_script(script, compliant(0.0), sim::Duration::minutes(45.0));
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.session.prompts_total, 1u);
  EXPECT_GE(result.session.wrong_tool_recoveries, 1u);
}

TEST_F(SegmentationFixture, FrozenStartRescuedByHintAcrossSegments) {
  const auto home = deploy(123);
  patient::PatientProfile stuck = compliant(0.0);
  SessionScript script;
  ScriptPart tea = segment("Tea-making", 2);
  tea.freeze = 1;  // freezes before the very first step
  script.parts = {tea, segment("Tea-making", 0, /*resume=*/true)};
  script.hint = "Tea-making";
  const auto result =
      home->run_script(script, stuck, sim::Duration::minutes(45.0));
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.session.prompts_total, 1u);
}

TEST_F(SegmentationFixture, DeadlineStopsTheScript) {
  const auto home = deploy();
  SessionScript script;
  script.parts = {segment("Tea-making", 2), interrupt(600.0),
                  segment("Tea-making", 0, /*resume=*/true)};
  // The deadline lands inside the 10-minute interruption: the final
  // segment never starts.
  const auto result =
      home->run_script(script, compliant(0.0), sim::Duration::minutes(4.0));
  EXPECT_FALSE(result.completed);
  EXPECT_LE(result.segments, 2u);
}

TEST_F(SegmentationFixture, UnknownAdlAnywhereInTheScriptThrows) {
  const auto home = deploy();
  SessionScript script;
  script.parts = {segment("Tea-making", 2), segment("Cooking")};
  EXPECT_THROW(home->run_script(script, compliant(0.0),
                                sim::Duration::minutes(5.0)),
               std::out_of_range);
  script.parts = {segment("Tea-making")};
  script.hint = "Cooking";
  EXPECT_THROW(home->run_script(script, compliant(0.0),
                                sim::Duration::minutes(5.0)),
               std::out_of_range);
}

}  // namespace
}  // namespace coreda::core
