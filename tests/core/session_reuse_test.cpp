// The serving-engine contract of CoredaSystem: one construction serves any
// number of back-to-back sessions, and reuse is observationally invisible —
// session N of a warm system matches session N of an identically configured
// fresh system, field for field.

#include <gtest/gtest.h>

#include <vector>

#include "adl/library.hpp"
#include "core/system.hpp"
#include "patient/profile.hpp"

namespace coreda::core {
namespace {

std::vector<std::vector<adl::StepId>> training_set(const adl::Adl& adl) {
  std::vector<adl::StepId> routine;
  for (const adl::AdlStep& s : adl.primary_routine().steps()) {
    routine.push_back(s.step_id());
  }
  return std::vector<std::vector<adl::StepId>>(60, routine);
}

void expect_equal(const SessionResult& a, const SessionResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.steps_completed, b.steps_completed);
  EXPECT_EQ(a.prompts_total, b.prompts_total);
  EXPECT_EQ(a.prompts_idle, b.prompts_idle);
  EXPECT_EQ(a.prompts_wrong_tool, b.prompts_wrong_tool);
  EXPECT_EQ(a.prompts_minimal, b.prompts_minimal);
  EXPECT_EQ(a.prompts_specific, b.prompts_specific);
  EXPECT_EQ(a.praises, b.praises);
  EXPECT_EQ(a.observed_steps, b.observed_steps);
}

struct SessionReuseTest : ::testing::Test {
  adl::AdlLibrary library;
  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("U", 0.3);

  CoredaSystem make_system(std::uint64_t seed) {
    SystemConfig config;
    config.seed = seed;
    return CoredaSystem(library, library.tea_making(), config);
  }
};

TEST_F(SessionReuseTest, WarmSystemMatchesFreshSystemSessionForSession) {
  const auto training = training_set(library.tea_making());
  CoredaSystem a = make_system(7);
  a.pretrain(training);
  CoredaSystem b = make_system(7);
  b.pretrain(training);

  // Two identically configured systems serve identical session streams —
  // in particular b's SECOND session (warm reuse: recycled actor, station
  // table, reminder pools) matches a's second, not just the first.
  for (int s = 0; s < 3; ++s) {
    const SessionResult ra =
        a.run_session(profile, sim::Duration::minutes(15.0));
    const SessionResult rb =
        b.run_session(profile, sim::Duration::minutes(15.0));
    expect_equal(ra, rb);
  }
}

TEST_F(SessionReuseTest, InplaceResultMatchesByValueResult) {
  const auto training = training_set(library.tea_making());
  CoredaSystem a = make_system(11);
  a.pretrain(training);
  CoredaSystem b = make_system(11);
  b.pretrain(training);

  SessionResult inplace;
  for (int s = 0; s < 2; ++s) {
    a.run_session_inplace(profile, sim::Duration::minutes(15.0), {},
                          inplace);
    const SessionResult by_value =
        b.run_session(profile, sim::Duration::minutes(15.0));
    expect_equal(inplace, by_value);
  }
}

TEST_F(SessionReuseTest, ReminderLogIsPerSession) {
  CoredaSystem system = make_system(13);
  system.pretrain(training_set(library.tea_making()));

  const SessionResult first =
      system.run_session(profile, sim::Duration::minutes(15.0));
  EXPECT_EQ(system.reminder().log().size(), first.prompts_total);

  // The second session starts with a rewound log: no stale entries from
  // the first session leak into its transcript.
  const SessionResult second =
      system.run_session(profile, sim::Duration::minutes(15.0));
  EXPECT_EQ(system.reminder().log().size(), second.prompts_total);
}

TEST_F(SessionReuseTest, ImportedPolicyMatchesPretrainedSystem) {
  const auto training = training_set(library.tea_making());
  CoredaSystem pretrained = make_system(19);
  pretrained.pretrain(training);

  // Train-once / deploy-many: stamping the donor's Q-table into a fresh
  // system reproduces the pretrained system's sessions exactly.
  CoredaSystem stamped = make_system(19);
  stamped.import_policy(pretrained.learner().q());

  for (int s = 0; s < 2; ++s) {
    const SessionResult ra =
        pretrained.run_session(profile, sim::Duration::minutes(15.0));
    const SessionResult rb =
        stamped.run_session(profile, sim::Duration::minutes(15.0));
    expect_equal(ra, rb);
  }
}

}  // namespace
}  // namespace coreda::core
