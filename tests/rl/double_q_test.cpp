#include "rl/double_q.hpp"

#include <gtest/gtest.h>

#include "rl/policy.hpp"
#include "rl/td_lambda.hpp"

namespace coreda::rl {
namespace {

TEST(DoubleQTest, ConfigValidation) {
  DoubleQLearning::Config bad;
  bad.alpha = 0.0;
  EXPECT_THROW(DoubleQLearning(2, 2, bad, util::Rng(1)),
               std::invalid_argument);
  bad = DoubleQLearning::Config{};
  bad.gamma = 1.1;
  EXPECT_THROW(DoubleQLearning(2, 2, bad, util::Rng(1)),
               std::invalid_argument);
}

TEST(DoubleQTest, TerminalBackupMovesOneTable) {
  DoubleQLearning::Config config;
  config.alpha = 0.5;
  DoubleQLearning learner(2, 2, config, util::Rng(2));
  learner.observe(Transition{0, 1, 8.0, 1, true});
  // Exactly one table moved; the blended value is half a single update.
  EXPECT_DOUBLE_EQ(learner.value(0, 1), 0.5 * 0.5 * 8.0);
  const double a = learner.table_a().get(0, 1);
  const double b = learner.table_b().get(0, 1);
  EXPECT_TRUE((a == 4.0 && b == 0.0) || (a == 0.0 && b == 4.0));
}

TEST(DoubleQTest, LearnsDeterministicChain) {
  // Same chain as the TD(λ) test: action 0 advances toward a terminal
  // reward of 10; action 1 wastes a step at -1.
  DoubleQLearning::Config config;
  config.alpha = 0.2;
  DoubleQLearning learner(5, 2, config, util::Rng(3));
  EpsilonGreedyPolicy policy(0.3);
  util::Rng rng(4);

  // A scratch table for the behaviour policy built from the blended values.
  for (int episode = 0; episode < 2000; ++episode) {
    StateId s = 0;
    for (int step = 0; step < 40; ++step) {
      // ε-greedy over the blended estimate.
      ActionId a;
      if (rng.bernoulli(0.3)) {
        a = static_cast<ActionId>(rng.pick_index(2));
      } else {
        a = learner.best_action(s);
      }
      Transition t;
      t.state = s;
      t.action = a;
      if (a == 0) {
        t.next_state = s + 1;
        t.terminal = t.next_state == 4;
        t.reward = t.terminal ? 10.0 : 0.0;
      } else {
        t.next_state = s;
        t.reward = -1.0;
      }
      learner.observe(t);
      if (t.terminal) break;
      s = t.next_state;
    }
  }
  for (StateId s = 0; s < 4; ++s) {
    EXPECT_EQ(learner.best_action(s), 0u) << "state " << s;
  }
  EXPECT_NEAR(learner.max_value(3), 10.0, 1.0);
}

TEST(DoubleQTest, LessOverestimationThanSingleQ) {
  // Classic bias probe (van Hasselt): from the start state, action 0 ends
  // with reward 0; action 1 leads to a state with many actions whose
  // rewards are noisy with mean -0.5. The optimal choice is action 0 with
  // value 0; single Q-Learning's max over noisy estimates makes action 1
  // look positive for a long time, Double Q much less so.
  constexpr StateId kStart = 0;
  constexpr StateId kNoisy = 1;
  constexpr std::size_t kNoisyActions = 8;

  TdLambdaConfig single_config;
  single_config.alpha = 0.1;
  single_config.lambda = 0.0;
  single_config.gamma = 1.0;
  TdLambdaQLearning single(2, kNoisyActions, single_config);

  DoubleQLearning::Config double_config;
  double_config.alpha = 0.1;
  double_config.gamma = 1.0;
  DoubleQLearning doubled(2, kNoisyActions, double_config, util::Rng(5));

  util::Rng env(6);
  for (int episode = 0; episode < 3000; ++episode) {
    // Forced exploration: always take action 1 into the noisy state,
    // then a random noisy action, so both learners see identical data.
    const auto noisy_action =
        static_cast<ActionId>(env.pick_index(kNoisyActions));
    const double reward = env.normal(-0.5, 1.0);
    single.observe(Transition{kStart, 1, 0.0, kNoisy, false});
    single.observe(Transition{kNoisy, noisy_action, reward, 0, true});
    doubled.observe(Transition{kStart, 1, 0.0, kNoisy, false});
    doubled.observe(Transition{kNoisy, noisy_action, reward, 0, true});
  }

  // True value of action 1 at the start is -0.5. Single Q overestimates
  // (its bootstrap maxes over noisy estimates); Double Q sits closer.
  const double single_estimate = single.q().get(kStart, 1);
  const double double_estimate = doubled.value(kStart, 1);
  EXPECT_GT(single_estimate, double_estimate);
  EXPECT_GT(single_estimate, -0.4);              // visibly biased up
  EXPECT_LT(double_estimate, single_estimate);   // bias reduced
}

TEST(DoubleQTest, TablesStayIndependentUntilBlended) {
  DoubleQLearning learner(2, 2, util::Rng(7));
  for (int i = 0; i < 100; ++i) {
    learner.observe(Transition{0, 0, 1.0, 1, true});
  }
  // Both tables get roughly half the updates.
  const double a = learner.table_a().get(0, 0);
  const double b = learner.table_b().get(0, 0);
  EXPECT_GT(a, 0.0);
  EXPECT_GT(b, 0.0);
  EXPECT_NEAR(learner.value(0, 0), (a + b) / 2.0, 1e-12);
}

}  // namespace
}  // namespace coreda::rl
