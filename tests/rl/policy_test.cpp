#include "rl/policy.hpp"

#include <gtest/gtest.h>

#include <map>

namespace coreda::rl {
namespace {

TEST(EpsilonGreedyTest, ZeroEpsilonIsGreedy) {
  QTable q(1, 3);
  q.set(0, 2, 5.0);
  EpsilonGreedyPolicy policy(0.0);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.select(q, 0, rng), 2u);
  }
}

TEST(EpsilonGreedyTest, FullEpsilonIsUniform) {
  QTable q(1, 4);
  q.set(0, 0, 100.0);
  EpsilonGreedyPolicy policy(1.0);
  util::Rng rng(2);
  std::map<ActionId, int> counts;
  for (int i = 0; i < 4000; ++i) ++counts[policy.select(q, 0, rng)];
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [a, n] : counts) {
    EXPECT_NEAR(n / 4000.0, 0.25, 0.05);
  }
}

TEST(EpsilonGreedyTest, IntermediateEpsilonMixes) {
  QTable q(1, 2);
  q.set(0, 1, 5.0);
  EpsilonGreedyPolicy policy(0.4);
  util::Rng rng(3);
  int greedy = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (policy.select(q, 0, rng) == 1u) ++greedy;
  }
  // P(greedy arm) = (1 - eps) + eps/2 = 0.8.
  EXPECT_NEAR(static_cast<double>(greedy) / n, 0.8, 0.02);
}

TEST(EpsilonGreedyTest, DecaySchedule) {
  EpsilonGreedyPolicy policy(0.5, 0.5, 0.1);
  EXPECT_DOUBLE_EQ(policy.epsilon(), 0.5);
  policy.decay_epsilon();
  EXPECT_DOUBLE_EQ(policy.epsilon(), 0.25);
  policy.decay_epsilon();
  EXPECT_DOUBLE_EQ(policy.epsilon(), 0.125);
  policy.decay_epsilon();
  EXPECT_DOUBLE_EQ(policy.epsilon(), 0.1);  // clamped at floor
  policy.decay_epsilon();
  EXPECT_DOUBLE_EQ(policy.epsilon(), 0.1);
}

TEST(EpsilonGreedyTest, InvalidParamsThrow) {
  EXPECT_THROW(EpsilonGreedyPolicy(-0.1), std::invalid_argument);
  EXPECT_THROW(EpsilonGreedyPolicy(1.1), std::invalid_argument);
  EXPECT_THROW(EpsilonGreedyPolicy(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(EpsilonGreedyPolicy(0.5, 1.1), std::invalid_argument);
  EXPECT_THROW(EpsilonGreedyPolicy(0.5, 0.9, 0.6), std::invalid_argument);
}

TEST(SoftmaxTest, LowTemperatureIsNearlyGreedy) {
  QTable q(1, 3);
  q.set(0, 1, 1.0);
  SoftmaxPolicy policy(0.01);
  util::Rng rng(4);
  int greedy = 0;
  for (int i = 0; i < 1000; ++i) {
    if (policy.select(q, 0, rng) == 1u) ++greedy;
  }
  EXPECT_GT(greedy, 990);
}

TEST(SoftmaxTest, HighTemperatureIsNearlyUniform) {
  QTable q(1, 2);
  q.set(0, 1, 1.0);
  SoftmaxPolicy policy(1000.0);
  util::Rng rng(5);
  int arm1 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (policy.select(q, 0, rng) == 1u) ++arm1;
  }
  EXPECT_NEAR(static_cast<double>(arm1) / n, 0.5, 0.03);
}

TEST(SoftmaxTest, ProbabilitiesFollowBoltzmann) {
  QTable q(1, 2);
  q.set(0, 0, 0.0);
  q.set(0, 1, 1.0);
  SoftmaxPolicy policy(1.0);
  util::Rng rng(6);
  int arm1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (policy.select(q, 0, rng) == 1u) ++arm1;
  }
  // P(1) = e / (1 + e) = 0.731.
  EXPECT_NEAR(static_cast<double>(arm1) / n, 0.731, 0.02);
}

TEST(SoftmaxTest, HandlesLargeValuesWithoutOverflow) {
  QTable q(1, 2);
  q.set(0, 0, 1e6);
  q.set(0, 1, 1e6 - 1.0);
  SoftmaxPolicy policy(1.0);
  util::Rng rng(7);
  EXPECT_NO_THROW(policy.select(q, 0, rng));
}

TEST(SoftmaxTest, InvalidTemperatureThrows) {
  EXPECT_THROW(SoftmaxPolicy(0.0), std::invalid_argument);
  EXPECT_THROW(SoftmaxPolicy(-1.0), std::invalid_argument);
  SoftmaxPolicy p(1.0);
  EXPECT_THROW(p.set_temperature(0.0), std::invalid_argument);
}

TEST(GreedyPolicyTest, AlwaysPicksMax) {
  QTable q(1, 3);
  q.set(0, 2, 1.0);
  GreedyPolicy policy;
  util::Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.select(q, 0, rng), 2u);
  }
}

}  // namespace
}  // namespace coreda::rl
