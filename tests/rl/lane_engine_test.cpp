// Byte-identity of the SoA LaneEngine against the scalar TD(λ) stack.
//
// Each slot of a lane must evolve its Q table exactly as an independent
// TdLambdaQLearning + EpsilonGreedyPolicy pair would — the same IEEE-754
// operation sequence, the same RNG draw order — regardless of lane width or
// how slot work is interleaved. The test drives both sides through the same
// randomized transition streams (aliased s == s' sweeps, terminal cuts,
// exploration, ragged per-slot episode lengths) and compares every Q cell
// bit-for-bit. Runs under whatever kernel path the host dispatches
// (COREDA_LANE_SIMD=0 forces scalar; the CI default on AVX2 machines
// exercises the vector kernels).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "rl/lane_engine.hpp"
#include "rl/policy.hpp"
#include "rl/td_lambda.hpp"
#include "util/rng.hpp"

namespace coreda::rl {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

struct ScalarSide {
  TdLambdaQLearning learner;
  EpsilonGreedyPolicy policy;
  util::Rng rng;

  ScalarSide(std::size_t S, std::size_t A, TdLambdaConfig td, double eps,
             std::uint64_t seed)
      : learner(S, A, td), policy(eps, 0.978, 0.005), rng(seed) {}
};

void expect_tables_equal(const QTable& scalar, const LaneEngine& engine,
                         std::size_t slot, const char* ctx) {
  const double* lane = engine.slot_q(slot);
  for (StateId s = 0; s < scalar.num_states(); ++s) {
    for (ActionId a = 0; a < scalar.num_actions(); ++a) {
      const std::size_t i =
          static_cast<std::size_t>(s) * scalar.num_actions() + a;
      ASSERT_EQ(bits(lane[i]), bits(scalar.get(s, a)))
          << ctx << ": slot " << slot << " Q(" << s << "," << a
          << ") lane=" << lane[i] << " scalar=" << scalar.get(s, a);
    }
  }
}

/// Drives `width` slots through `episodes` randomized episodes, scalar and
/// lane in lockstep, asserting bitwise equality after every episode.
void run_equivalence(std::size_t width, TdLambdaConfig td, bool sweep,
                     std::uint64_t seed, bool fused_step = false) {
  constexpr std::size_t S = 25;
  constexpr std::size_t A = 8;
  constexpr std::size_t kEpisodes = 30;
  const double eps0 = 0.2;

  LaneEngine engine(width, S, A, /*trace_capacity=*/4, td);
  std::vector<ScalarSide> scalar;
  std::vector<util::Rng> lane_rng;
  std::vector<double> lane_eps(width, eps0);
  std::vector<util::Rng> env;  // shared transition-stream generators
  for (std::size_t w = 0; w < width; ++w) {
    scalar.emplace_back(S, A, td, eps0, seed + w);
    lane_rng.emplace_back(seed + w);
    env.emplace_back(seed * 131 + w);
    engine.begin_episode(w);
  }

  std::vector<double> rewards(A);
  // Per-slot bootstrap carry for the fused path: valid only within one
  // slot's episode (the stream honors s_{t+1} == s'_t per slot), so it is
  // re-armed invalid at every episode start.
  std::vector<LaneEngine::MaxCarry> carry(width);
  for (std::size_t e = 0; e < kEpisodes; ++e) {
    // Ragged: each slot's episode has its own length this round.
    std::vector<std::size_t> len(width);
    std::vector<StateId> state(width);
    for (std::size_t w = 0; w < width; ++w) {
      len[w] = 1 + env[w].pick_index(9);
      state[w] = static_cast<StateId>(env[w].pick_index(S));
      scalar[w].learner.begin_episode();
      engine.begin_episode(w);
      carry[w] = LaneEngine::MaxCarry{};
    }
    if (10 > engine.trace_capacity()) engine.reserve_traces(10);

    std::size_t max_len = 0;
    for (const std::size_t l : len) max_len = std::max(max_len, l);

    for (std::size_t t = 0; t < max_len; ++t) {
      for (std::size_t w = 0; w < width; ++w) {
        if (t >= len[w]) continue;
        const bool terminal = t + 1 == len[w] && env[w].bernoulli(0.5);
        // ~1/5 transitions are aliased (s' == s) to hit the re-read sweep.
        const StateId s = state[w];
        const StateId s_next =
            env[w].bernoulli(0.2)
                ? s
                : static_cast<StateId>(env[w].pick_index(S));
        for (double& r : rewards) {
          r = (env[w].uniform() - 0.5) * 200.0;
        }
        if (env[w].bernoulli(0.1)) rewards[env[w].pick_index(A)] = -0.0;

        // Scalar side.
        const ActionId a_scalar =
            scalar[w].policy.select(scalar[w].learner.q(), s, scalar[w].rng);
        scalar[w].learner.observe(
            Transition{s, a_scalar, rewards[a_scalar], s_next, terminal});
        if (sweep) {
          scalar[w].learner.update_counterfactual_row(
              s, std::span<const double>(rewards), a_scalar, s_next,
              terminal);
        }

        // Lane side: same draws from an identically-seeded Rng. The fused
        // branch threads the MaxCarry hint exactly as LaneTrainer does.
        const LaneEngine::Selected sel =
            fused_step
                ? engine.select(w, s, lane_eps[w], lane_rng[w], carry[w])
                : engine.select(w, s, lane_eps[w], lane_rng[w]);
        ASSERT_EQ(sel.action, a_scalar) << "episode " << e << " t " << t;
        if (fused_step) {
          engine.step(w, sel, s, rewards.data(), s_next, terminal, sweep,
                      &carry[w]);
        } else {
          engine.observe(w, sel, s, rewards[sel.action], s_next, terminal);
          if (sweep) {
            engine.counterfactual_row(w, s, rewards.data(), sel.action,
                                      s_next, terminal);
          }
        }
        state[w] = s_next;
      }
      engine.decay_pending();
    }
    for (std::size_t w = 0; w < width; ++w) {
      scalar[w].policy.decay_epsilon();
      lane_eps[w] = std::max(0.005, lane_eps[w] * 0.978);
      expect_tables_equal(scalar[w].learner.q(), engine, w, "post-episode");
    }
  }
}

TdLambdaConfig planner_td() {
  TdLambdaConfig td;
  td.alpha = 0.1;
  td.initial_q = 1000.0;
  return td;
}

TEST(LaneEngine, Width1MatchesScalar) {
  run_equivalence(1, planner_td(), /*sweep=*/true, 42);
}

TEST(LaneEngine, Width4MatchesScalar) {
  run_equivalence(4, planner_td(), /*sweep=*/true, 43);
}

TEST(LaneEngine, Width8MatchesScalar) {
  run_equivalence(8, planner_td(), /*sweep=*/true, 44);
}

TEST(LaneEngine, NoSweepMatchesScalar) {
  run_equivalence(4, planner_td(), /*sweep=*/false, 45);
}

// The fused step() shares observe's bootstrap row scan with the sweep when
// the apply pass left the next state's row untouched; aliased (s == s'),
// touched-next and terminal transitions all appear in the stream, so this
// proves step() == observe() + counterfactual_row() bit for bit.
TEST(LaneEngine, FusedStepMatchesScalar) {
  run_equivalence(4, planner_td(), /*sweep=*/true, 48, /*fused_step=*/true);
}

TEST(LaneEngine, FusedStepNoSweepMatchesScalar) {
  run_equivalence(4, planner_td(), /*sweep=*/false, 49, /*fused_step=*/true);
}

TEST(LaneEngine, AccumulatingTracesMatchScalar) {
  TdLambdaConfig td = planner_td();
  td.trace_type = TraceType::kAccumulating;
  run_equivalence(4, td, /*sweep=*/true, 46);
}

TEST(LaneEngine, NoWatkinsCutMatchesScalar) {
  TdLambdaConfig td = planner_td();
  td.watkins_cut = false;
  run_equivalence(4, td, /*sweep=*/true, 47);
}

TEST(LaneEngine, LoadStoreRoundTripsBitwise) {
  LaneEngine engine(2, 5, 3, 4, planner_td());
  QTable q(5, 3, 0.0);
  util::Rng rng(9);
  for (StateId s = 0; s < 5; ++s) {
    for (ActionId a = 0; a < 3; ++a) {
      q.set(s, a, (rng.uniform() - 0.5) * 1e6);
    }
  }
  q.set(0, 0, -0.0);  // sign-of-zero must survive the round trip
  engine.load(1, q);
  QTable out(5, 3, 7.0);
  engine.store(1, out);
  for (StateId s = 0; s < 5; ++s) {
    for (ActionId a = 0; a < 3; ++a) {
      EXPECT_EQ(bits(out.get(s, a)), bits(q.get(s, a)));
    }
  }
}

TEST(LaneEngine, RejectsInvalidShapes) {
  EXPECT_THROW(LaneEngine(0, 5, 3, 4), std::invalid_argument);
  EXPECT_THROW(LaneEngine(2, 0, 3, 4), std::invalid_argument);
  EXPECT_THROW(LaneEngine(2, 5, 0, 4), std::invalid_argument);
  LaneEngine engine(2, 5, 3, 4);
  QTable wrong(4, 3, 0.0);
  EXPECT_THROW(engine.load(0, wrong), std::invalid_argument);
  EXPECT_THROW(engine.store(0, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace coreda::rl
