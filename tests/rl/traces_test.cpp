#include "rl/traces.hpp"

#include <gtest/gtest.h>

namespace coreda::rl {
namespace {

TEST(TracesTest, EmptyByDefault) {
  EligibilityTraces traces(8, 8);
  EXPECT_EQ(traces.active_count(), 0u);
  EXPECT_EQ(traces.get(1, 2), 0.0);
}

TEST(TracesTest, ReplacingVisitSetsOne) {
  EligibilityTraces traces(8, 8, TraceType::kReplacing);
  traces.visit(1, 2);
  traces.visit(1, 2);
  EXPECT_DOUBLE_EQ(traces.get(1, 2), 1.0);
}

TEST(TracesTest, AccumulatingVisitSums) {
  EligibilityTraces traces(8, 8, TraceType::kAccumulating);
  traces.visit(1, 2);
  traces.visit(1, 2);
  EXPECT_DOUBLE_EQ(traces.get(1, 2), 2.0);
}

TEST(TracesTest, DecayMultiplies) {
  EligibilityTraces traces(8, 8);
  traces.visit(1, 2);
  traces.decay(0.5);
  EXPECT_DOUBLE_EQ(traces.get(1, 2), 0.5);
  traces.decay(0.5);
  EXPECT_DOUBLE_EQ(traces.get(1, 2), 0.25);
}

TEST(TracesTest, DecayDropsTinyEntries) {
  EligibilityTraces traces(8, 8, TraceType::kReplacing, /*cutoff=*/0.1);
  traces.visit(1, 2);
  traces.decay(0.05);  // 0.05 < cutoff
  EXPECT_EQ(traces.active_count(), 0u);
  EXPECT_EQ(traces.get(1, 2), 0.0);
}

TEST(TracesTest, ClearRemovesAll) {
  EligibilityTraces traces(8, 8);
  traces.visit(1, 2);
  traces.visit(3, 4);
  traces.clear();
  EXPECT_EQ(traces.active_count(), 0u);
  EXPECT_EQ(traces.get(1, 2), 0.0);
  EXPECT_EQ(traces.get(3, 4), 0.0);
}

TEST(TracesTest, ClearStateActionsKeepsChosen) {
  EligibilityTraces traces(8, 8);
  traces.visit(1, 0);
  traces.visit(1, 1);
  traces.visit(2, 0);
  traces.clear_state_actions(1, 1);
  EXPECT_EQ(traces.get(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(traces.get(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(traces.get(2, 0), 1.0);  // other state untouched
}

TEST(TracesTest, ClearStateActionsOnEmptyStateIsNoop) {
  EligibilityTraces traces(8, 8);
  traces.visit(2, 0);
  traces.clear_state_actions(1, 1);
  EXPECT_EQ(traces.active_count(), 1u);
  EXPECT_DOUBLE_EQ(traces.get(2, 0), 1.0);
}

TEST(TracesTest, ForEachVisitsAllEntries) {
  EligibilityTraces traces(8, 8);
  traces.visit(1, 2);
  traces.visit(3, 4);
  double sum = 0.0;
  int count = 0;
  traces.for_each([&](StateId, ActionId, double e) {
    sum += e;
    ++count;
  });
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sum, 2.0);
}

TEST(TracesTest, EntriesSnapshot) {
  EligibilityTraces traces(8, 8);
  traces.visit(7, 3);
  const auto entries = traces.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].state, 7u);
  EXPECT_EQ(entries[0].action, 3u);
  EXPECT_DOUBLE_EQ(entries[0].value, 1.0);
}

TEST(TracesTest, OutOfRangeAccessThrows) {
  EligibilityTraces traces(4, 2);
  EXPECT_THROW(traces.visit(4, 0), std::out_of_range);
  EXPECT_THROW(traces.visit(0, 2), std::out_of_range);
  EXPECT_THROW(traces.get(4, 0), std::out_of_range);
  EXPECT_THROW(traces.clear_state_actions(4, 0), std::out_of_range);
}

TEST(TracesTest, NegativeCutoffThrows) {
  EXPECT_THROW(EligibilityTraces(8, 8, TraceType::kReplacing, -1.0),
               std::invalid_argument);
}

TEST(TracesTest, ZeroDimensionsThrow) {
  EXPECT_THROW(EligibilityTraces(0, 8), std::invalid_argument);
  EXPECT_THROW(EligibilityTraces(8, 0), std::invalid_argument);
}

// --- Regression: replacing vs accumulating semantics across orderings -----
// The dense rewrite must reproduce the sparse-map behaviour exactly for
// every interleaving of visit / decay / cutoff-compaction / clear. These
// pin the arithmetic, not just the shapes.

TEST(TracesTest, ReplacingVisitAfterDecayResetsToOne) {
  EligibilityTraces traces(8, 8, TraceType::kReplacing);
  traces.visit(1, 2);
  traces.decay(0.5);
  traces.visit(1, 2);  // replace: back to exactly 1, not 1.5
  EXPECT_DOUBLE_EQ(traces.get(1, 2), 1.0);
  EXPECT_EQ(traces.active_count(), 1u);
}

TEST(TracesTest, AccumulatingVisitAfterDecayAddsOne) {
  EligibilityTraces traces(8, 8, TraceType::kAccumulating);
  traces.visit(1, 2);
  traces.decay(0.5);
  traces.visit(1, 2);  // accumulate: 0.5 + 1
  EXPECT_DOUBLE_EQ(traces.get(1, 2), 1.5);
}

TEST(TracesTest, RevisitAfterCutoffDropStartsFresh) {
  // Once compaction dropped an entry, a revisit must behave like a first
  // visit under BOTH trace types (the accumulating sum restarts at 1).
  for (const TraceType type :
       {TraceType::kReplacing, TraceType::kAccumulating}) {
    EligibilityTraces traces(8, 8, type, /*cutoff=*/0.1);
    traces.visit(1, 2);
    traces.decay(0.01);  // dropped
    ASSERT_EQ(traces.active_count(), 0u);
    traces.visit(1, 2);
    EXPECT_DOUBLE_EQ(traces.get(1, 2), 1.0);
    EXPECT_EQ(traces.active_count(), 1u);
  }
}

TEST(TracesTest, ClearStateActionsThenVisitMatchesSinghSutton) {
  // The replacing-trace update order used by the learners: clear the other
  // actions of s, then visit (s, a). The kept action's trace must survive
  // the clear and then be *replaced*, not accumulated.
  EligibilityTraces traces(4, 3, TraceType::kReplacing);
  traces.visit(1, 0);
  traces.visit(1, 1);
  traces.decay(0.8);
  traces.clear_state_actions(1, 1);
  traces.visit(1, 1);
  EXPECT_EQ(traces.get(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(traces.get(1, 1), 1.0);
  EXPECT_EQ(traces.active_count(), 1u);
}

TEST(TracesTest, DecayCompactionKeepsSurvivorsIntact) {
  // Mixed-magnitude actives: compaction of the small ones must not disturb
  // the surviving values or lose entries during the swap-pop walk.
  EligibilityTraces traces(16, 4, TraceType::kAccumulating, /*cutoff=*/0.1);
  for (StateId s = 0; s < 8; ++s) traces.visit(s, s % 4);
  // Make entries at even states large (two visits), odd states small.
  for (StateId s = 0; s < 8; s += 2) traces.visit(s, s % 4);
  traces.decay(0.09);  // odd entries: 0.09 < cutoff; even: 0.18 survives
  EXPECT_EQ(traces.active_count(), 4u);
  for (StateId s = 0; s < 8; ++s) {
    if (s % 2 == 0) {
      EXPECT_DOUBLE_EQ(traces.get(s, s % 4), 2.0 * 0.09) << "state " << s;
    } else {
      EXPECT_EQ(traces.get(s, s % 4), 0.0) << "state " << s;
    }
  }
}

TEST(TracesTest, DecayVisitDecayOrderingIsExact) {
  // Full interleaving across both types: visit a, decay, visit b, decay,
  // revisit a. Every intermediate value is pinned.
  EligibilityTraces rep(4, 2, TraceType::kReplacing);
  EligibilityTraces acc(4, 2, TraceType::kAccumulating);
  for (EligibilityTraces* t : {&rep, &acc}) {
    t->visit(0, 0);
    t->decay(0.5);
    t->visit(1, 1);
    t->decay(0.5);
  }
  // Both types agree until a revisit happens.
  EXPECT_DOUBLE_EQ(rep.get(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(acc.get(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(rep.get(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(acc.get(1, 1), 0.5);
  rep.visit(0, 0);
  acc.visit(0, 0);
  EXPECT_DOUBLE_EQ(rep.get(0, 0), 1.0);   // replaced
  EXPECT_DOUBLE_EQ(acc.get(0, 0), 1.25);  // accumulated
}

}  // namespace
}  // namespace coreda::rl
