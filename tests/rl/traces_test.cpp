#include "rl/traces.hpp"

#include <gtest/gtest.h>

namespace coreda::rl {
namespace {

TEST(TracesTest, EmptyByDefault) {
  EligibilityTraces traces;
  EXPECT_EQ(traces.active_count(), 0u);
  EXPECT_EQ(traces.get(1, 2), 0.0);
}

TEST(TracesTest, ReplacingVisitSetsOne) {
  EligibilityTraces traces(TraceType::kReplacing);
  traces.visit(1, 2);
  traces.visit(1, 2);
  EXPECT_DOUBLE_EQ(traces.get(1, 2), 1.0);
}

TEST(TracesTest, AccumulatingVisitSums) {
  EligibilityTraces traces(TraceType::kAccumulating);
  traces.visit(1, 2);
  traces.visit(1, 2);
  EXPECT_DOUBLE_EQ(traces.get(1, 2), 2.0);
}

TEST(TracesTest, DecayMultiplies) {
  EligibilityTraces traces;
  traces.visit(1, 2);
  traces.decay(0.5);
  EXPECT_DOUBLE_EQ(traces.get(1, 2), 0.5);
  traces.decay(0.5);
  EXPECT_DOUBLE_EQ(traces.get(1, 2), 0.25);
}

TEST(TracesTest, DecayDropsTinyEntries) {
  EligibilityTraces traces(TraceType::kReplacing, /*cutoff=*/0.1);
  traces.visit(1, 2);
  traces.decay(0.05);  // 0.05 < cutoff
  EXPECT_EQ(traces.active_count(), 0u);
}

TEST(TracesTest, ClearRemovesAll) {
  EligibilityTraces traces;
  traces.visit(1, 2);
  traces.visit(3, 4);
  traces.clear();
  EXPECT_EQ(traces.active_count(), 0u);
}

TEST(TracesTest, ClearStateActionsKeepsChosen) {
  EligibilityTraces traces;
  traces.visit(1, 0);
  traces.visit(1, 1);
  traces.visit(2, 0);
  traces.clear_state_actions(1, 1);
  EXPECT_EQ(traces.get(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(traces.get(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(traces.get(2, 0), 1.0);  // other state untouched
}

TEST(TracesTest, ForEachVisitsAllEntries) {
  EligibilityTraces traces;
  traces.visit(1, 2);
  traces.visit(3, 4);
  double sum = 0.0;
  int count = 0;
  traces.for_each([&](StateId, ActionId, double e) {
    sum += e;
    ++count;
  });
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sum, 2.0);
}

TEST(TracesTest, EntriesSnapshot) {
  EligibilityTraces traces;
  traces.visit(7, 3);
  const auto entries = traces.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].state, 7u);
  EXPECT_EQ(entries[0].action, 3u);
  EXPECT_DOUBLE_EQ(entries[0].value, 1.0);
}

TEST(TracesTest, LargeIdsDoNotCollide) {
  EligibilityTraces traces;
  traces.visit(0xffffffff, 0);
  traces.visit(0, 0xffffffff);
  EXPECT_EQ(traces.active_count(), 2u);
  EXPECT_DOUBLE_EQ(traces.get(0xffffffff, 0), 1.0);
  EXPECT_DOUBLE_EQ(traces.get(0, 0xffffffff), 1.0);
}

TEST(TracesTest, NegativeCutoffThrows) {
  EXPECT_THROW(EligibilityTraces(TraceType::kReplacing, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace coreda::rl
