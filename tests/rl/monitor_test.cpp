#include "rl/monitor.hpp"

#include <gtest/gtest.h>

namespace coreda::rl {
namespace {

TEST(MonitorTest, ValidatesArguments) {
  EXPECT_THROW(LearningMonitor({}, [](StateId, ActionId) { return true; }),
               std::invalid_argument);
  EXPECT_THROW(LearningMonitor({0}, nullptr), std::invalid_argument);
}

TEST(MonitorTest, RecordsAccuracy) {
  QTable q(2, 2);
  q.set(0, 1, 1.0);  // greedy(0) = 1
  q.set(1, 0, 1.0);  // greedy(1) = 0
  LearningMonitor monitor({0, 1}, [](StateId s, ActionId a) {
    return (s == 0 && a == 1) || (s == 1 && a == 1);
  });
  const double acc = monitor.record(q);
  EXPECT_DOUBLE_EQ(acc, 0.5);
  ASSERT_EQ(monitor.curve().size(), 1u);
  EXPECT_EQ(monitor.curve()[0].iteration, 1u);
  EXPECT_DOUBLE_EQ(monitor.latest_accuracy(), 0.5);
}

TEST(MonitorTest, CurveGrows) {
  QTable q(1, 2);
  LearningMonitor monitor({0}, [](StateId, ActionId a) { return a == 1; });
  monitor.record(q);       // greedy = 0 (tie, lowest id) -> wrong
  q.set(0, 1, 5.0);
  monitor.record(q);       // greedy = 1 -> right
  ASSERT_EQ(monitor.curve().size(), 2u);
  EXPECT_DOUBLE_EQ(monitor.curve()[0].accuracy, 0.0);
  EXPECT_DOUBLE_EQ(monitor.curve()[1].accuracy, 1.0);
}

TEST(MonitorTest, ConvergenceRequiresSustainedAccuracy) {
  QTable q(1, 2);
  LearningMonitor monitor({0}, [](StateId, ActionId a) { return a == 1; });
  // Sequence: wrong, right, wrong, right, right.
  monitor.record(q);
  q.set(0, 1, 1.0);
  monitor.record(q);
  q.set(0, 0, 2.0);
  monitor.record(q);
  q.set(0, 1, 3.0);
  monitor.record(q);
  monitor.record(q);
  // The dip at iteration 3 resets the candidate: convergence is at 4.
  const auto it = monitor.convergence_iteration(1.0);
  ASSERT_TRUE(it.has_value());
  EXPECT_EQ(*it, 4u);
}

TEST(MonitorTest, NoConvergenceWhenNeverReached) {
  QTable q(1, 2);
  LearningMonitor monitor({0}, [](StateId, ActionId a) { return a == 1; });
  monitor.record(q);  // tie -> greedy 0 -> wrong
  EXPECT_FALSE(monitor.convergence_iteration(0.95).has_value());
}

TEST(MonitorTest, ThresholdBoundary) {
  QTable q(2, 2);
  q.set(0, 1, 1.0);
  LearningMonitor monitor({0, 1}, [](StateId s, ActionId a) {
    return s == 0 ? a == 1 : a == 1;  // state 1 stays wrong (tie -> 0)
  });
  monitor.record(q);  // accuracy 0.5
  EXPECT_TRUE(monitor.convergence_iteration(0.5).has_value());
  EXPECT_FALSE(monitor.convergence_iteration(0.51).has_value());
}

TEST(MonitorTest, EmptyCurveHasNoLatest) {
  QTable q(1, 1);
  LearningMonitor monitor({0}, [](StateId, ActionId) { return true; });
  EXPECT_DOUBLE_EQ(monitor.latest_accuracy(), 0.0);
}

}  // namespace
}  // namespace coreda::rl
