// Validates the TD(λ) learner against ground truth on a classic 4x4
// gridworld: value iteration (computed exactly here) provides Q*, and the
// sample-based learner must converge to the same greedy policy and values.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "rl/policy.hpp"
#include "rl/td_lambda.hpp"
#include "util/rng.hpp"

namespace coreda::rl {
namespace {

// 4x4 grid, start anywhere, goal at cell 15 (reward +10, terminal).
// Cell 5 is a pit (reward -10, terminal). Step cost -1. Actions:
// 0=up, 1=down, 2=left, 3=right; bumping a wall stays in place.
constexpr int kSide = 4;
constexpr int kStates = kSide * kSide;
constexpr int kActions = 4;
constexpr StateId kGoal = 15;
constexpr StateId kPit = 5;
constexpr double kGamma = 0.95;

StateId step_to(StateId s, ActionId a) {
  int row = static_cast<int>(s) / kSide;
  int col = static_cast<int>(s) % kSide;
  switch (a) {
    case 0: row = std::max(0, row - 1); break;
    case 1: row = std::min(kSide - 1, row + 1); break;
    case 2: col = std::max(0, col - 1); break;
    default: col = std::min(kSide - 1, col + 1); break;
  }
  return static_cast<StateId>(row * kSide + col);
}

Transition make_transition(StateId s, ActionId a) {
  Transition t;
  t.state = s;
  t.action = a;
  t.next_state = step_to(s, a);
  if (t.next_state == kGoal) {
    t.reward = 10.0;
    t.terminal = true;
  } else if (t.next_state == kPit) {
    t.reward = -10.0;
    t.terminal = true;
  } else {
    t.reward = -1.0;
    t.terminal = false;
  }
  return t;
}

/// Exact Q* by value iteration.
std::array<std::array<double, kActions>, kStates> solve_exact() {
  std::array<double, kStates> v{};
  for (int sweep = 0; sweep < 2000; ++sweep) {
    double delta = 0.0;
    for (StateId s = 0; s < kStates; ++s) {
      if (s == kGoal || s == kPit) continue;
      double best = -1e18;
      for (ActionId a = 0; a < kActions; ++a) {
        const Transition t = make_transition(s, a);
        const double q =
            t.reward + (t.terminal ? 0.0 : kGamma * v[t.next_state]);
        best = std::max(best, q);
      }
      delta = std::max(delta, std::abs(best - v[s]));
      v[s] = best;
    }
    if (delta < 1e-12) break;
  }
  std::array<std::array<double, kActions>, kStates> q{};
  for (StateId s = 0; s < kStates; ++s) {
    for (ActionId a = 0; a < kActions; ++a) {
      const Transition t = make_transition(s, a);
      q[s][a] = t.reward + (t.terminal ? 0.0 : kGamma * v[t.next_state]);
    }
  }
  return q;
}

TdLambdaQLearning train(double lambda, int episodes) {
  TdLambdaConfig config;
  config.alpha = 0.15;
  config.gamma = kGamma;
  config.lambda = lambda;
  TdLambdaQLearning learner(kStates, kActions, config);
  EpsilonGreedyPolicy policy(0.25);
  util::Rng rng(37);

  for (int episode = 0; episode < episodes; ++episode) {
    StateId s = static_cast<StateId>(rng.pick_index(kStates));
    if (s == kGoal || s == kPit) continue;
    learner.begin_episode();
    for (int step = 0; step < 200; ++step) {
      const ActionId a = policy.select(learner.q(), s, rng);
      const Transition t = make_transition(s, a);
      learner.observe(t);
      if (t.terminal) break;
      s = t.next_state;
    }
  }
  return learner;
}

TEST(GridworldTest, GreedyPolicyMatchesValueIteration) {
  const auto exact = solve_exact();
  const TdLambdaQLearning learner = train(/*lambda=*/0.7, 20000);
  for (StateId s = 0; s < kStates; ++s) {
    if (s == kGoal || s == kPit) continue;
    // The learned greedy action must be *an* optimal action (ties exist).
    double best = -1e18;
    for (ActionId a = 0; a < kActions; ++a) best = std::max(best, exact[s][a]);
    const ActionId learned = learner.q().best_action(s);
    EXPECT_NEAR(exact[s][learned], best, 1e-9)
        << "state " << s << " picked suboptimal action " << learned;
  }
}

TEST(GridworldTest, ValuesCloseToExact) {
  const auto exact = solve_exact();
  const TdLambdaQLearning learner = train(0.7, 20000);
  // Values along the optimal policy's actions converge tightly; off-policy
  // actions are visited less and get a looser bound.
  for (StateId s = 0; s < kStates; ++s) {
    if (s == kGoal || s == kPit) continue;
    const ActionId a = learner.q().best_action(s);
    EXPECT_NEAR(learner.q().get(s, a), exact[s][a], 0.8)
        << "state " << s;
  }
}

TEST(GridworldTest, LambdaVariantsAgreeOnPolicy) {
  const TdLambdaQLearning flat = train(0.0, 20000);
  const TdLambdaQLearning traced = train(0.9, 20000);
  for (StateId s = 0; s < kStates; ++s) {
    if (s == kGoal || s == kPit) continue;
    // Both must be optimal; compare against exact rather than each other
    // (multiple optimal actions may differ between runs).
    const auto exact = solve_exact();
    double best = -1e18;
    for (ActionId a = 0; a < kActions; ++a) best = std::max(best, exact[s][a]);
    EXPECT_NEAR(exact[s][flat.q().best_action(s)], best, 1e-9);
    EXPECT_NEAR(exact[s][traced.q().best_action(s)], best, 1e-9);
  }
}

}  // namespace
}  // namespace coreda::rl
