#include "rl/q_table.hpp"

#include <gtest/gtest.h>

#include <map>

namespace coreda::rl {
namespace {

TEST(QTableTest, InitialValueFillsTable) {
  QTable q(3, 4, 7.5);
  for (StateId s = 0; s < 3; ++s) {
    for (ActionId a = 0; a < 4; ++a) {
      EXPECT_DOUBLE_EQ(q.get(s, a), 7.5);
    }
  }
}

TEST(QTableTest, ZeroDimensionsThrow) {
  EXPECT_THROW(QTable(0, 4), std::invalid_argument);
  EXPECT_THROW(QTable(3, 0), std::invalid_argument);
}

TEST(QTableTest, SetAndAdd) {
  QTable q(2, 2);
  q.set(1, 1, 5.0);
  EXPECT_DOUBLE_EQ(q.get(1, 1), 5.0);
  q.add(1, 1, 2.5);
  EXPECT_DOUBLE_EQ(q.get(1, 1), 7.5);
  EXPECT_DOUBLE_EQ(q.get(0, 0), 0.0);  // others untouched
}

TEST(QTableTest, OutOfRangeThrows) {
  QTable q(2, 2);
  EXPECT_THROW(q.get(2, 0), std::out_of_range);
  EXPECT_THROW(q.get(0, 2), std::out_of_range);
  EXPECT_THROW(q.set(5, 0, 1.0), std::out_of_range);
}

TEST(QTableTest, MaxQAndBestAction) {
  QTable q(1, 3);
  q.set(0, 0, 1.0);
  q.set(0, 1, 5.0);
  q.set(0, 2, 3.0);
  EXPECT_DOUBLE_EQ(q.max_q(0), 5.0);
  EXPECT_EQ(q.best_action(0), 1u);
}

TEST(QTableTest, BestActionDeterministicTieBreak) {
  QTable q(1, 4);
  q.set(0, 1, 9.0);
  q.set(0, 3, 9.0);
  EXPECT_EQ(q.best_action(0), 1u);  // lowest index wins
}

TEST(QTableTest, BestActionRandomTieBreakIsUniform) {
  QTable q(1, 3);  // all zeros: three-way tie
  util::Rng rng(5);
  std::map<ActionId, int> counts;
  for (int i = 0; i < 3000; ++i) ++counts[q.best_action(0, rng)];
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [a, n] : counts) {
    EXPECT_NEAR(n / 3000.0, 1.0 / 3.0, 0.05);
  }
}

TEST(QTableTest, RandomTieBreakOnlyAmongMaxima) {
  QTable q(1, 3);
  q.set(0, 0, 1.0);
  q.set(0, 2, 1.0);
  util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const ActionId a = q.best_action(0, rng);
    EXPECT_NE(a, 1u);
  }
}

TEST(QTableTest, IsGreedy) {
  QTable q(1, 3);
  q.set(0, 1, 2.0);
  EXPECT_TRUE(q.is_greedy(0, 1));
  EXPECT_FALSE(q.is_greedy(0, 0));
}

TEST(QTableTest, IsUniquelyGreedy) {
  QTable q(1, 3);
  q.set(0, 1, 2.0);
  EXPECT_TRUE(q.is_uniquely_greedy(0, 1));
  q.set(0, 2, 2.0);
  EXPECT_FALSE(q.is_uniquely_greedy(0, 1));  // tie
  EXPECT_FALSE(q.is_uniquely_greedy(0, 0));  // not even maximal
}

TEST(QTableTest, RowSpan) {
  QTable q(2, 3);
  q.set(1, 2, 4.0);
  const auto row = q.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[2], 4.0);
}

TEST(QTableTest, Fill) {
  QTable q(2, 2);
  q.set(0, 0, 9.0);
  q.fill(1.5);
  EXPECT_DOUBLE_EQ(q.get(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(q.get(1, 1), 1.5);
}

}  // namespace
}  // namespace coreda::rl
