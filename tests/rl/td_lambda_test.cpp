#include "rl/td_lambda.hpp"

#include <gtest/gtest.h>

#include "rl/policy.hpp"
#include "util/rng.hpp"

namespace coreda::rl {
namespace {

/// A 5-state deterministic chain: action 0 moves right (reward 0, terminal
/// reward 10 entering the last state), action 1 stays put with reward -1.
/// Optimal policy: always move right.
struct ChainEnv {
  static constexpr std::size_t kStates = 5;
  static constexpr std::size_t kActions = 2;

  StateId state = 0;

  Transition step(ActionId a) {
    Transition t;
    t.state = state;
    t.action = a;
    if (a == 0) {
      t.next_state = state + 1;
      t.terminal = t.next_state == kStates - 1;
      t.reward = t.terminal ? 10.0 : 0.0;
    } else {
      t.next_state = state;
      t.reward = -1.0;
      t.terminal = false;
    }
    state = t.next_state;
    return t;
  }

  void reset() { state = 0; }
};

TEST(TdLambdaTest, ConfigValidation) {
  TdLambdaConfig bad;
  bad.alpha = 0.0;
  EXPECT_THROW(TdLambdaQLearning(2, 2, bad), std::invalid_argument);
  bad = TdLambdaConfig();
  bad.gamma = 1.5;
  EXPECT_THROW(TdLambdaQLearning(2, 2, bad), std::invalid_argument);
  bad = TdLambdaConfig();
  bad.lambda = -0.1;
  EXPECT_THROW(TdLambdaQLearning(2, 2, bad), std::invalid_argument);
}

TEST(TdLambdaTest, InitialQRespected) {
  TdLambdaConfig config;
  config.initial_q = 42.0;
  TdLambdaQLearning learner(3, 2, config);
  EXPECT_DOUBLE_EQ(learner.q().get(2, 1), 42.0);
}

TEST(TdLambdaTest, SingleTerminalBackup) {
  TdLambdaConfig config;
  config.alpha = 0.5;
  TdLambdaQLearning learner(2, 2, config);
  learner.begin_episode();
  const double delta =
      learner.observe(Transition{0, 1, 10.0, 1, /*terminal=*/true});
  EXPECT_DOUBLE_EQ(delta, 10.0);
  EXPECT_DOUBLE_EQ(learner.q().get(0, 1), 5.0);  // alpha * delta
}

TEST(TdLambdaTest, NonTerminalBootstraps) {
  TdLambdaConfig config;
  config.alpha = 1.0;
  config.gamma = 0.5;
  config.lambda = 0.0;
  TdLambdaQLearning learner(3, 1, config);
  learner.q().set(1, 0, 8.0);
  learner.begin_episode();
  learner.observe(Transition{0, 0, 2.0, 1, false});
  // Target = 2 + 0.5 * 8 = 6; alpha = 1 -> Q = 6.
  EXPECT_DOUBLE_EQ(learner.q().get(0, 0), 6.0);
}

TEST(TdLambdaTest, LearnsChainOptimalPolicy) {
  TdLambdaConfig config;
  config.alpha = 0.3;
  config.gamma = 0.9;
  config.lambda = 0.7;
  TdLambdaQLearning learner(ChainEnv::kStates, ChainEnv::kActions, config);
  EpsilonGreedyPolicy policy(0.3);
  util::Rng rng(11);

  ChainEnv env;
  for (int episode = 0; episode < 300; ++episode) {
    env.reset();
    learner.begin_episode();
    for (int step = 0; step < 50; ++step) {
      const ActionId a = policy.select(learner.q(), env.state, rng);
      const Transition t = env.step(a);
      learner.observe(t);
      if (t.terminal) break;
    }
  }
  for (StateId s = 0; s + 1 < ChainEnv::kStates; ++s) {
    EXPECT_EQ(learner.q().best_action(s), 0u) << "state " << s;
  }
  // Values follow the discounted terminal reward backwards.
  EXPECT_NEAR(learner.q().get(3, 0), 10.0, 0.5);
  EXPECT_NEAR(learner.q().get(2, 0), 9.0, 0.7);
}

TEST(TdLambdaTest, TracesPropagateRewardInOneEpisode) {
  // With lambda near 1, a single terminal reward updates the whole path.
  TdLambdaConfig with_traces;
  with_traces.alpha = 0.5;
  with_traces.lambda = 0.9;
  TdLambdaQLearning learner(4, 1, with_traces);
  learner.begin_episode();
  learner.observe(Transition{0, 0, 0.0, 1, false});
  learner.observe(Transition{1, 0, 0.0, 2, false});
  learner.observe(Transition{2, 0, 10.0, 3, true});
  // All three state-action pairs moved (single action => always uniquely
  // greedy, so traces survive).
  EXPECT_GT(learner.q().get(0, 0), 0.0);
  EXPECT_GT(learner.q().get(1, 0), 0.0);
  EXPECT_GT(learner.q().get(2, 0), 0.0);
}

TEST(TdLambdaTest, LambdaZeroDoesNotPropagate) {
  TdLambdaConfig config;
  config.alpha = 0.5;
  config.lambda = 0.0;
  TdLambdaQLearning learner(4, 1, config);
  learner.begin_episode();
  learner.observe(Transition{0, 0, 0.0, 1, false});
  learner.observe(Transition{1, 0, 0.0, 2, false});
  learner.observe(Transition{2, 0, 10.0, 3, true});
  // Only the last pair learned in this single pass.
  EXPECT_DOUBLE_EQ(learner.q().get(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(learner.q().get(1, 0), 0.0);
  EXPECT_GT(learner.q().get(2, 0), 0.0);
}

TEST(TdLambdaTest, ExploratoryActionDoesNotPolluteEarlierPairs) {
  // Two actions; make action 0 uniquely greedy everywhere, then take a
  // non-greedy action mid-episode: earlier pairs must not absorb its error.
  TdLambdaConfig config;
  config.alpha = 0.5;
  config.lambda = 0.9;
  TdLambdaQLearning learner(4, 2, config);
  for (StateId s = 0; s < 4; ++s) learner.q().set(s, 0, 1.0);

  learner.begin_episode();
  learner.observe(Transition{0, 0, 0.0, 1, false});
  const double q00_before = learner.q().get(0, 0);
  // Non-greedy (action 1) with a large negative reward.
  learner.observe(Transition{1, 1, -100.0, 2, false});
  EXPECT_DOUBLE_EQ(learner.q().get(0, 0), q00_before);
}

TEST(TdLambdaTest, CounterfactualUpdateBypassesTraces) {
  TdLambdaConfig config;
  config.alpha = 0.5;
  config.gamma = 0.5;
  TdLambdaQLearning learner(3, 2, config);
  learner.q().set(2, 0, 4.0);
  const double delta = learner.update_counterfactual(0, 1, 3.0, 2, false);
  // Target = 3 + 0.5 * 4 = 5.
  EXPECT_DOUBLE_EQ(delta, 5.0);
  EXPECT_DOUBLE_EQ(learner.q().get(0, 1), 2.5);
  EXPECT_EQ(learner.traces().active_count(), 0u);
}

TEST(TdLambdaTest, CounterfactualTerminalIgnoresNextState) {
  TdLambdaConfig config;
  config.alpha = 1.0;
  TdLambdaQLearning learner(3, 2, config);
  learner.q().set(2, 0, 1000.0);
  learner.update_counterfactual(0, 1, 7.0, 2, /*terminal=*/true);
  EXPECT_DOUBLE_EQ(learner.q().get(0, 1), 7.0);
}

TEST(TdLambdaTest, UpdateCounterIncrements) {
  TdLambdaQLearning learner(2, 2);
  learner.observe(Transition{0, 0, 1.0, 1, true});
  learner.update_counterfactual(0, 1, 1.0, 1, true);
  EXPECT_EQ(learner.updates(), 2u);
}

}  // namespace
}  // namespace coreda::rl
