#include "rl/sarsa.hpp"

#include <gtest/gtest.h>

#include "rl/policy.hpp"
#include "util/rng.hpp"

namespace coreda::rl {
namespace {

TEST(SarsaTest, ConfigValidation) {
  SarsaLambda::Config bad;
  bad.alpha = 2.0;
  EXPECT_THROW(SarsaLambda(2, 2, bad), std::invalid_argument);
  bad = SarsaLambda::Config();
  bad.lambda = 1.5;
  EXPECT_THROW(SarsaLambda(2, 2, bad), std::invalid_argument);
}

TEST(SarsaTest, TerminalBackup) {
  SarsaLambda::Config config;
  config.alpha = 0.5;
  SarsaLambda learner(2, 2, config);
  learner.begin_episode();
  const double delta =
      learner.observe(Transition{0, 1, 8.0, 1, /*terminal=*/true}, 0);
  EXPECT_DOUBLE_EQ(delta, 8.0);
  EXPECT_DOUBLE_EQ(learner.q().get(0, 1), 4.0);
}

TEST(SarsaTest, BootstrapsFromNextAction) {
  SarsaLambda::Config config;
  config.alpha = 1.0;
  config.gamma = 0.5;
  config.lambda = 0.0;
  SarsaLambda learner(3, 2, config);
  learner.q().set(1, 1, 6.0);  // value of the action actually taken next
  learner.q().set(1, 0, 100.0);  // max action — SARSA must NOT use this
  learner.begin_episode();
  learner.observe(Transition{0, 0, 1.0, 1, false}, /*next_action=*/1);
  EXPECT_DOUBLE_EQ(learner.q().get(0, 0), 1.0 + 0.5 * 6.0);
}

TEST(SarsaTest, LearnsSimpleChain) {
  // Same chain as the Q-learning test: action 0 advances, action 1 wastes.
  SarsaLambda::Config config;
  config.alpha = 0.3;
  SarsaLambda learner(5, 2, config);
  EpsilonGreedyPolicy policy(0.2);
  util::Rng rng(13);

  for (int episode = 0; episode < 400; ++episode) {
    StateId s = 0;
    learner.begin_episode();
    ActionId a = policy.select(learner.q(), s, rng);
    for (int step = 0; step < 60; ++step) {
      Transition t;
      t.state = s;
      t.action = a;
      if (a == 0) {
        t.next_state = s + 1;
        t.terminal = t.next_state == 4;
        t.reward = t.terminal ? 10.0 : 0.0;
      } else {
        t.next_state = s;
        t.reward = -1.0;
      }
      const ActionId next_a =
          t.terminal ? 0 : policy.select(learner.q(), t.next_state, rng);
      learner.observe(t, next_a);
      if (t.terminal) break;
      s = t.next_state;
      a = next_a;
    }
  }
  for (StateId s = 0; s < 4; ++s) {
    EXPECT_EQ(learner.q().best_action(s), 0u) << "state " << s;
  }
}

TEST(SarsaTest, TracesClearedAtTerminal) {
  SarsaLambda learner(3, 1);
  learner.begin_episode();
  learner.observe(Transition{0, 0, 0.0, 1, false}, 0);
  learner.observe(Transition{1, 0, 5.0, 2, true}, 0);
  // A new episode must not inherit old traces: a big reward in episode 2
  // must not move episode 1's first state more than its own decay allows.
  learner.begin_episode();
  const double q0 = learner.q().get(0, 0);
  learner.observe(Transition{2, 0, 100.0, 0, true}, 0);
  EXPECT_DOUBLE_EQ(learner.q().get(0, 0), q0);
}

}  // namespace
}  // namespace coreda::rl
