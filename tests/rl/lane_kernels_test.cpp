// Bit-exactness of the lane kernels against straight-line scalar models.
//
// On AVX2 hardware the dispatched kernels run the vector path, so these
// tests are the cross-path proof that SIMD == scalar to the bit (the ±0 and
// no-FMA hazards the kernels were written around). On non-AVX2 hardware (or
// under COREDA_LANE_SIMD=0) they degenerate to scalar self-consistency —
// still useful as a semantics pin. Comparisons are on bit patterns, never
// operator==, so a sign-flipped zero cannot hide.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "rl/lane_kernels.hpp"
#include "util/rng.hpp"

namespace coreda::rl {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_same_bits(const std::vector<double>& got,
                      const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(bits(got[i]), bits(want[i]))
        << what << " diverges at [" << i << "]: got " << got[i] << " want "
        << want[i];
  }
}

/// Random row mixing magnitudes, exact ties, and both zero signs.
std::vector<double> random_row(util::Rng& rng, std::size_t n) {
  std::vector<double> row(n);
  for (double& v : row) {
    const double r = rng.uniform();
    if (r < 0.1) {
      v = 0.0;
    } else if (r < 0.2) {
      v = -0.0;
    } else if (r < 0.3) {
      v = row[0];  // manufacture exact ties
    } else {
      v = (rng.uniform() - 0.5) * 2000.0;
    }
  }
  return row;
}

TEST(LaneKernels, RowMaxMatchesMaxElementBitwise) {
  util::Rng rng(2024);
  for (std::size_t n = 1; n <= 12; ++n) {
    for (int rep = 0; rep < 200; ++rep) {
      const std::vector<double> row = random_row(rng, n);
      const double want = *std::max_element(row.begin(), row.end());
      const double got = kern::row_max(row.data(), n);
      EXPECT_EQ(bits(got), bits(want)) << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(LaneKernels, RowMaxZeroSignTies) {
  // The AVX2 reduction may surface the wrong zero from a {+0.0, -0.0} tie;
  // the kernel must re-derive the first-max scan's answer.
  const std::vector<std::vector<double>> rows = {
      {-0.0, 0.0, -1.0, -2.0}, {0.0, -0.0, -0.0, 0.0},
      {-1.0, -0.0, 0.0, -0.0, -5.0}, {-0.0, -0.0, -0.0, -0.0},
      {0.0, 0.0, 0.0, -0.0, -0.0, 0.0, -0.0, 0.0}};
  for (const auto& row : rows) {
    const double want = *std::max_element(row.begin(), row.end());
    EXPECT_EQ(bits(kern::row_max(row.data(), row.size())), bits(want));
  }
}

TEST(LaneKernels, CountGeMatchesScalar) {
  util::Rng rng(7);
  for (std::size_t n = 1; n <= 12; ++n) {
    for (int rep = 0; rep < 200; ++rep) {
      const std::vector<double> row = random_row(rng, n);
      const double max = *std::max_element(row.begin(), row.end());
      const double threshold = max - 1e-12;
      std::size_t want = 0;
      for (const double v : row) {
        if (v >= threshold) ++want;
      }
      EXPECT_EQ(kern::count_ge(row.data(), threshold, n), want);
    }
  }
}

TEST(LaneKernels, CfUpdateMatchesScalarBitwise) {
  util::Rng rng(11);
  for (std::size_t n = 1; n <= 12; ++n) {
    for (int rep = 0; rep < 200; ++rep) {
      const std::vector<double> start = random_row(rng, n);
      std::vector<double> rewards = random_row(rng, n);
      const double bootstrap = (rng.uniform() - 0.5) * 1800.0;
      const double alpha = 0.1;
      const std::size_t taken = rng.pick_index(n);

      std::vector<double> want = start;
      for (std::size_t a = 0; a < n; ++a) {
        if (a == taken) continue;
        const double target = rewards[a] + bootstrap;
        const double delta = target - want[a];
        want[a] += alpha * delta;
      }

      std::vector<double> got = start;
      kern::cf_update(got.data(), rewards.data(), bootstrap, alpha, taken, n);
      expect_same_bits(got, want, "cf_update");
    }
  }
}

TEST(LaneKernels, CfUpdateTerminalPreservesNegativeZeroRewards) {
  util::Rng rng(13);
  for (std::size_t n = 1; n <= 12; ++n) {
    for (int rep = 0; rep < 200; ++rep) {
      const std::vector<double> start = random_row(rng, n);
      std::vector<double> rewards = random_row(rng, n);
      if (n > 1) rewards[rng.pick_index(n)] = -0.0;
      const double alpha = 0.1;
      const std::size_t taken = rng.pick_index(n);

      std::vector<double> want = start;
      for (std::size_t a = 0; a < n; ++a) {
        if (a == taken) continue;
        const double delta = rewards[a] - want[a];
        want[a] += alpha * delta;
      }

      std::vector<double> got = start;
      kern::cf_update_terminal(got.data(), rewards.data(), alpha, taken, n);
      expect_same_bits(got, want, "cf_update_terminal");
    }
  }
}

TEST(LaneKernels, CfUpdateLeavesTakenCellUntouchedBitwise) {
  // row[taken] must come through with its exact bits — including -0.0,
  // which an add-zero-delta implementation would flip to +0.0.
  for (std::size_t taken = 0; taken < 8; ++taken) {
    std::vector<double> row(8, 1.0);
    row[taken] = -0.0;
    std::vector<double> rewards(8, 5.0);
    kern::cf_update(row.data(), rewards.data(), 2.0, 0.1, taken, 8);
    EXPECT_EQ(bits(row[taken]), bits(-0.0)) << "taken=" << taken;
    std::vector<double> row2(8, 1.0);
    row2[taken] = -0.0;
    kern::cf_update_terminal(row2.data(), rewards.data(), 0.1, taken, 8);
    EXPECT_EQ(bits(row2[taken]), bits(-0.0)) << "taken=" << taken;
  }
}

TEST(LaneKernels, DecayCompactMatchesScalarModel) {
  util::Rng rng(17);
  const double factor = 0.9 * 0.7;
  const double cutoff = 1e-8;
  for (std::uint32_t n = 0; n <= 24; ++n) {
    for (int rep = 0; rep < 100; ++rep) {
      std::vector<double> vals(n + 4, 0.0);
      std::vector<std::uint32_t> idxs(n + 4, 0);
      for (std::uint32_t i = 0; i < n; ++i) {
        const double r = rng.uniform();
        vals[i] = r < 0.2 ? cutoff / factor * rng.uniform()  // will drop
                          : rng.uniform();
        idxs[i] = static_cast<std::uint32_t>(rng.pick_index(1000));
      }

      std::vector<double> want_vals;
      std::vector<std::uint32_t> want_idxs;
      for (std::uint32_t i = 0; i < n; ++i) {
        const double v = vals[i] * factor;
        if (v < cutoff) continue;
        want_vals.push_back(v);
        want_idxs.push_back(idxs[i]);
      }

      std::uint32_t len = n;
      kern::decay_compact(vals.data(), idxs.data(), &len, factor, cutoff);
      ASSERT_EQ(len, want_vals.size());
      for (std::uint32_t i = 0; i < len; ++i) {
        EXPECT_EQ(bits(vals[i]), bits(want_vals[i]));
        EXPECT_EQ(idxs[i], want_idxs[i]);
      }
    }
  }
}

TEST(LaneKernels, SimdFlagIsStable) {
  const bool first = kern::simd_enabled();
  EXPECT_EQ(kern::simd_enabled(), first);  // decided once per process
}

}  // namespace
}  // namespace coreda::rl
