#include "sensors/envelope.hpp"

#include <gtest/gtest.h>

namespace coreda::sensors {
namespace {

using sim::Duration;

TEST(UsageEnvelopeTest, ZeroOutsideInterval) {
  UsageEnvelope env(Duration::seconds(4.0), Duration::seconds(0.5));
  EXPECT_EQ(env.activation(Duration::seconds(-0.1)), 0.0);
  EXPECT_EQ(env.activation(Duration::seconds(4.1)), 0.0);
}

TEST(UsageEnvelopeTest, RampsFromZero) {
  UsageEnvelope env(Duration::seconds(4.0), Duration::seconds(1.0),
                    /*modulation_depth=*/0.0);
  EXPECT_NEAR(env.activation(Duration::seconds(0.0)), 0.0, 1e-9);
  EXPECT_NEAR(env.activation(Duration::seconds(0.5)), 0.5, 1e-9);
  EXPECT_NEAR(env.activation(Duration::seconds(1.0)), 1.0, 1e-9);
}

TEST(UsageEnvelopeTest, RampsBackDown) {
  UsageEnvelope env(Duration::seconds(4.0), Duration::seconds(1.0),
                    /*modulation_depth=*/0.0);
  EXPECT_NEAR(env.activation(Duration::seconds(3.5)), 0.5, 1e-9);
  EXPECT_NEAR(env.activation(Duration::seconds(4.0)), 0.0, 1e-9);
}

TEST(UsageEnvelopeTest, PlateauWithoutModulationIsFull) {
  UsageEnvelope env(Duration::seconds(10.0), Duration::seconds(1.0),
                    /*modulation_depth=*/0.0);
  for (double t = 1.0; t <= 9.0; t += 0.5) {
    EXPECT_DOUBLE_EQ(env.activation(Duration::seconds(t)), 1.0);
  }
}

TEST(UsageEnvelopeTest, ModulationStaysWithinDepth) {
  UsageEnvelope env(Duration::seconds(10.0), Duration::seconds(1.0),
                    /*modulation_depth=*/0.3, /*modulation_hz=*/2.0);
  for (double t = 1.0; t <= 9.0; t += 0.05) {
    const double a = env.activation(Duration::seconds(t));
    EXPECT_GE(a, 0.7 - 1e-9);
    EXPECT_LE(a, 1.0 + 1e-9);
  }
}

TEST(UsageEnvelopeTest, ShortGripNeverReachesPlateau) {
  // Ramp (1s each side) exceeds half the 1s duration; peak stays below 1.
  UsageEnvelope env(Duration::seconds(1.0), Duration::seconds(1.0),
                    /*modulation_depth=*/0.0);
  double peak = 0.0;
  for (double t = 0.0; t <= 1.0; t += 0.01) {
    peak = std::max(peak, env.activation(Duration::seconds(t)));
  }
  EXPECT_LE(peak, 1.0);
  EXPECT_NEAR(peak, 1.0, 0.05);  // trapezoid caps ramps at duration/2
  EXPECT_NEAR(env.activation(Duration::seconds(0.25)), 0.5, 1e-9);
}

TEST(UsageEnvelopeTest, ZeroRampIsRectangular) {
  UsageEnvelope env(Duration::seconds(2.0), Duration(),
                    /*modulation_depth=*/0.0);
  EXPECT_DOUBLE_EQ(env.activation(Duration::micros(1)), 1.0);
  EXPECT_DOUBLE_EQ(env.activation(Duration::seconds(1.999)), 1.0);
}

TEST(UsageEnvelopeTest, InvalidArgumentsThrow) {
  EXPECT_THROW(UsageEnvelope(Duration(), Duration::seconds(0.5)),
               std::invalid_argument);
  EXPECT_THROW(UsageEnvelope(Duration::seconds(-1.0), Duration()),
               std::invalid_argument);
  EXPECT_THROW(
      UsageEnvelope(Duration::seconds(1.0), Duration::seconds(-0.1)),
      std::invalid_argument);
  EXPECT_THROW(UsageEnvelope(Duration::seconds(1.0), Duration(), 1.5),
               std::invalid_argument);
  EXPECT_THROW(UsageEnvelope(Duration::seconds(1.0), Duration(), -0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace coreda::sensors
