#include "sensors/models.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace coreda::sensors {
namespace {

using sim::TimePoint;

TEST(Vec3Test, Magnitude) {
  EXPECT_DOUBLE_EQ((Vec3{3.0, 4.0, 0.0}).magnitude(), 5.0);
  EXPECT_DOUBLE_EQ((Vec3{}).magnitude(), 0.0);
}

TEST(AccelerometerModelTest, IdleExcitationIsLow) {
  AccelerometerModel model;
  util::Rng rng(1);
  util::RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.add(model.sample(TimePoint::origin(), 0.0, 1.0, rng));
  }
  // Idle excitation is dominated by sensor noise, well under the 0.30
  // recommended threshold on average.
  EXPECT_LT(stats.mean(), 0.15);
}

TEST(AccelerometerModelTest, ActiveExcitationExceedsThreshold) {
  AccelerometerModel model;
  util::Rng rng(2);
  util::RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.add(model.sample(TimePoint::origin(), 1.0, 1.2, rng));
  }
  EXPECT_GT(stats.mean(), model.recommended_threshold());
}

TEST(AccelerometerModelTest, ExcitationScalesWithIntensity) {
  AccelerometerModel model;
  util::Rng rng(3);
  util::RunningStats weak;
  util::RunningStats strong;
  for (int i = 0; i < 5000; ++i) {
    weak.add(model.sample(TimePoint::origin(), 1.0, 0.3, rng));
    strong.add(model.sample(TimePoint::origin(), 1.0, 1.3, rng));
  }
  EXPECT_LT(weak.mean(), strong.mean());
}

TEST(AccelerometerModelTest, IdleBumpsOccur) {
  AccelerometerModel::Params params;
  params.bump_probability = 0.05;
  AccelerometerModel model(params);
  util::Rng rng(4);
  int big = 0;
  for (int i = 0; i < 5000; ++i) {
    if (model.sample(TimePoint::origin(), 0.0, 1.0, rng) > 0.4) ++big;
  }
  EXPECT_GT(big, 50);  // bumps visible, but rare
  EXPECT_LT(big, 1000);
}

TEST(AccelerometerModelTest, LastReadingHasGravity) {
  AccelerometerModel model;
  util::Rng rng(5);
  util::RunningStats z;
  for (int i = 0; i < 2000; ++i) {
    model.sample(TimePoint::origin(), 0.0, 1.0, rng);
    z.add(model.last_reading().z);
  }
  EXPECT_NEAR(z.mean(), 1.0, 0.01);  // 1 g on the z axis at rest
}

TEST(PressureModelTest, MonotoneInActivation) {
  PressureModel model;
  util::Rng rng(6);
  util::RunningStats idle;
  util::RunningStats active;
  for (int i = 0; i < 5000; ++i) {
    idle.add(model.sample(TimePoint::origin(), 0.0, 0.5, rng));
    active.add(model.sample(TimePoint::origin(), 1.0, 0.5, rng));
  }
  EXPECT_LT(idle.mean(), active.mean());
}

TEST(PressureModelTest, NeverNegative) {
  PressureModel model;
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(model.sample(TimePoint::origin(), 0.3, 0.4, rng), 0.0);
  }
}

TEST(MotionModelTest, BinaryOutput) {
  MotionModel model;
  util::Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = model.sample(TimePoint::origin(), 0.5, 1.0, rng);
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(MotionModelTest, DetectionRateTracksActivation) {
  MotionModel model;
  util::Rng rng(9);
  int idle_hits = 0;
  int active_hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    idle_hits += model.sample(TimePoint::origin(), 0.0, 1.0, rng) > 0.5;
    active_hits += model.sample(TimePoint::origin(), 1.0, 1.0, rng) > 0.5;
  }
  EXPECT_LT(idle_hits, n / 50);
  EXPECT_GT(active_hits, n * 3 / 4);
}

TEST(BrightnessModelTest, UsageRaisesDeviation) {
  BrightnessModel model;
  util::Rng rng(10);
  util::RunningStats idle;
  util::RunningStats active;
  for (int i = 0; i < 3000; ++i) {
    idle.add(model.sample(TimePoint::origin(), 0.0, 1.0, rng));
    active.add(model.sample(TimePoint::origin(), 1.0, 1.0, rng));
  }
  EXPECT_LT(idle.mean(), active.mean());
}

TEST(TemperatureModelTest, LagsTowardTarget) {
  TemperatureModel model;
  util::Rng rng(11);
  // Sustained usage drives the state up over successive samples.
  double early = model.sample(TimePoint::origin(), 1.0, 1.0, rng);
  double late = early;
  for (int i = 0; i < 50; ++i) {
    late = model.sample(TimePoint::origin(), 1.0, 1.0, rng);
  }
  EXPECT_GT(late, early);
}

TEST(TemperatureModelTest, DecaysAfterUsage) {
  TemperatureModel model;
  util::Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    model.sample(TimePoint::origin(), 1.0, 1.0, rng);
  }
  double v = 1.0;
  for (int i = 0; i < 100; ++i) {
    v = model.sample(TimePoint::origin(), 0.0, 1.0, rng);
  }
  EXPECT_LT(v, 0.1);
}

TEST(MakeSensorModelTest, CoversEveryKind) {
  using enum adl::SensorKind;
  for (auto kind : {kAccelerometer, kPressure, kBrightness, kTemperature,
                    kMotion}) {
    const auto model = make_sensor_model(kind);
    ASSERT_NE(model, nullptr);
    EXPECT_GT(model->recommended_threshold(), 0.0);
  }
}

}  // namespace
}  // namespace coreda::sensors
