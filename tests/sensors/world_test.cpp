#include "sensors/world.hpp"

#include <gtest/gtest.h>

namespace coreda::sensors {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(ManipulationWorldTest, IdleByDefault) {
  ManipulationWorld world;
  EXPECT_EQ(world.activation(5, TimePoint::origin()), 0.0);
  EXPECT_FALSE(world.in_use(5, TimePoint::origin()));
}

TEST(ManipulationWorldTest, ActiveDuringEpisode) {
  ManipulationWorld world;
  world.begin(5, TimePoint::from_seconds(1.0), Duration::seconds(4.0));
  EXPECT_TRUE(world.in_use(5, TimePoint::from_seconds(3.0)));
  EXPECT_GT(world.activation(5, TimePoint::from_seconds(3.0)), 0.0);
  EXPECT_FALSE(world.in_use(5, TimePoint::from_seconds(0.5)));
  EXPECT_FALSE(world.in_use(5, TimePoint::from_seconds(5.5)));
}

TEST(ManipulationWorldTest, OtherToolsUnaffected) {
  ManipulationWorld world;
  world.begin(5, TimePoint::origin(), Duration::seconds(4.0));
  EXPECT_EQ(world.activation(6, TimePoint::from_seconds(2.0)), 0.0);
}

TEST(ManipulationWorldTest, EndTruncatesEpisode) {
  ManipulationWorld world;
  world.begin(5, TimePoint::origin(), Duration::seconds(10.0));
  world.end(5, TimePoint::from_seconds(2.0));
  EXPECT_FALSE(world.in_use(5, TimePoint::from_seconds(3.0)));
  EXPECT_TRUE(world.in_use(5, TimePoint::from_seconds(1.0)));
}

TEST(ManipulationWorldTest, EndOfUnknownToolIsNoop) {
  ManipulationWorld world;
  world.end(99, TimePoint::from_seconds(1.0));  // must not crash
}

TEST(ManipulationWorldTest, RestartReplacesEpisode) {
  ManipulationWorld world;
  world.begin(5, TimePoint::origin(), Duration::seconds(2.0));
  world.begin(5, TimePoint::from_seconds(10.0), Duration::seconds(2.0));
  EXPECT_FALSE(world.in_use(5, TimePoint::from_seconds(1.0)));
  EXPECT_TRUE(world.in_use(5, TimePoint::from_seconds(11.0)));
}

TEST(ManipulationWorldTest, ActivationFollowsEnvelope) {
  ManipulationWorld world;
  world.begin(5, TimePoint::origin(), Duration::seconds(10.0),
              Duration::seconds(1.0));
  const double early = world.activation(5, TimePoint::from_seconds(0.2));
  const double mid = world.activation(5, TimePoint::from_seconds(2.6));
  EXPECT_LT(early, mid);
}

TEST(ManipulationWorldTest, GarbageCollectDropsPastEpisodes) {
  ManipulationWorld world;
  world.begin(5, TimePoint::origin(), Duration::seconds(1.0));
  world.begin(6, TimePoint::origin(), Duration::seconds(100.0));
  world.garbage_collect(TimePoint::from_seconds(50.0));
  EXPECT_TRUE(world.in_use(6, TimePoint::from_seconds(50.0)));
  EXPECT_FALSE(world.in_use(5, TimePoint::from_seconds(0.5)));
}

}  // namespace
}  // namespace coreda::sensors
