#include "sensors/world.hpp"

#include <gtest/gtest.h>

namespace coreda::sensors {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(ManipulationWorldTest, IdleByDefault) {
  ManipulationWorld world;
  EXPECT_EQ(world.activation(5, TimePoint::origin()), 0.0);
  EXPECT_FALSE(world.in_use(5, TimePoint::origin()));
}

TEST(ManipulationWorldTest, ActiveDuringEpisode) {
  ManipulationWorld world;
  world.begin(5, TimePoint::from_seconds(1.0), Duration::seconds(4.0));
  EXPECT_TRUE(world.in_use(5, TimePoint::from_seconds(3.0)));
  EXPECT_GT(world.activation(5, TimePoint::from_seconds(3.0)), 0.0);
  EXPECT_FALSE(world.in_use(5, TimePoint::from_seconds(0.5)));
  EXPECT_FALSE(world.in_use(5, TimePoint::from_seconds(5.5)));
}

TEST(ManipulationWorldTest, OtherToolsUnaffected) {
  ManipulationWorld world;
  world.begin(5, TimePoint::origin(), Duration::seconds(4.0));
  EXPECT_EQ(world.activation(6, TimePoint::from_seconds(2.0)), 0.0);
}

TEST(ManipulationWorldTest, EndTruncatesEpisode) {
  ManipulationWorld world;
  world.begin(5, TimePoint::origin(), Duration::seconds(10.0));
  world.end(5, TimePoint::from_seconds(2.0));
  EXPECT_FALSE(world.in_use(5, TimePoint::from_seconds(3.0)));
  EXPECT_TRUE(world.in_use(5, TimePoint::from_seconds(1.0)));
}

TEST(ManipulationWorldTest, EndOfUnknownToolIsNoop) {
  ManipulationWorld world;
  world.end(99, TimePoint::from_seconds(1.0));  // must not crash
}

TEST(ManipulationWorldTest, RestartSupersedesButKeepsRecentHistory) {
  ManipulationWorld world;
  world.begin(5, TimePoint::origin(), Duration::seconds(2.0));
  world.begin(5, TimePoint::from_seconds(5.0), Duration::seconds(2.0));
  // The superseded episode stays answerable for instants before the
  // successor started (what a live 10 Hz reader saw at the time)...
  EXPECT_TRUE(world.in_use(5, TimePoint::from_seconds(1.0)));
  // ...while the gap between episodes and the new episode read normally.
  EXPECT_FALSE(world.in_use(5, TimePoint::from_seconds(3.0)));
  EXPECT_TRUE(world.in_use(5, TimePoint::from_seconds(6.0)));
}

TEST(ManipulationWorldTest, RestartClipsAnOverlappingPredecessor) {
  ManipulationWorld world;
  world.begin(5, TimePoint::origin(), Duration::seconds(10.0));
  world.begin(5, TimePoint::from_seconds(4.0), Duration::seconds(10.0));
  // From the restart onward only the new episode answers; its envelope
  // restarts from zero progress at t = 4.
  const double at_restart = world.activation(5, TimePoint::from_seconds(4.1));
  const double before = world.activation(5, TimePoint::from_seconds(3.9));
  EXPECT_GT(before, at_restart);
}

TEST(ManipulationWorldTest, HistoryRetentionBoundsEpisodeCount) {
  ManipulationWorld world;
  // Episodes older than kHistoryRetention are pruned on begin().
  world.begin(5, TimePoint::origin(), Duration::seconds(1.0));
  world.begin(5, TimePoint::from_seconds(100.0), Duration::seconds(1.0));
  EXPECT_FALSE(world.in_use(5, TimePoint::from_seconds(0.5)));
}

TEST(ManipulationWorldTest, ActivationBlockMatchesPointQueries) {
  ManipulationWorld world;
  world.begin(5, TimePoint::from_seconds(0.3), Duration::seconds(2.0));
  world.end(5, TimePoint::from_seconds(1.7));
  world.begin(5, TimePoint::from_seconds(2.1), Duration::seconds(3.0));
  const TimePoint first = TimePoint::from_seconds(0.05);
  const Duration step = Duration::millis(100);
  double block[40];
  world.activation_block(5, first, step, 40, block);
  for (std::size_t i = 0; i < 40; ++i) {
    const TimePoint at =
        first + Duration::micros(step.total_micros() *
                                 static_cast<std::int64_t>(i));
    EXPECT_DOUBLE_EQ(block[i], world.activation(5, at)) << "sample " << i;
  }
}

TEST(ManipulationWorldTest, ActivationBlockOfIdleToolIsZero) {
  ManipulationWorld world;
  double block[5] = {1.0, 1.0, 1.0, 1.0, 1.0};
  world.activation_block(7, TimePoint::origin(), Duration::millis(100), 5,
                         block);
  for (double v : block) EXPECT_EQ(v, 0.0);
}

TEST(ManipulationWorldTest, ActivationFollowsEnvelope) {
  ManipulationWorld world;
  world.begin(5, TimePoint::origin(), Duration::seconds(10.0),
              Duration::seconds(1.0));
  const double early = world.activation(5, TimePoint::from_seconds(0.2));
  const double mid = world.activation(5, TimePoint::from_seconds(2.6));
  EXPECT_LT(early, mid);
}

TEST(ManipulationWorldTest, GarbageCollectDropsPastEpisodes) {
  ManipulationWorld world;
  world.begin(5, TimePoint::origin(), Duration::seconds(1.0));
  world.begin(6, TimePoint::origin(), Duration::seconds(100.0));
  world.garbage_collect(TimePoint::from_seconds(50.0));
  EXPECT_TRUE(world.in_use(6, TimePoint::from_seconds(50.0)));
  EXPECT_FALSE(world.in_use(5, TimePoint::from_seconds(0.5)));
}

}  // namespace
}  // namespace coreda::sensors
