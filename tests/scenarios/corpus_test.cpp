// The committed scenario corpus, exact-gated: every tests/scenarios/
// *.scenario plan runs end-to-end through the ScenarioRunner and its full
// metric report is compared byte-for-byte against corpus.golden.
// Regenerate with COREDA_UPDATE_GOLDEN=1 (the test rewrites the file and
// fails once, so a stale golden can never silently pass).
//
// Determinism is gated alongside: each plan runs at jobs=1 and jobs=4 and
// the two reports must be byte-identical — the scenario-level version of
// the TrialRunner contract, across HomePool, BundleStore and run_script.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "serve/scenario_runner.hpp"

namespace coreda::serve {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(COREDA_SCENARIO_DIR)) {
    if (entry.path().extension() == ".scenario") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

sim::ScenarioPlan load_plan(const std::filesystem::path& file) {
  std::ifstream in(file);
  EXPECT_TRUE(in.good()) << file;
  return sim::ScenarioPlan::parse(in);
}

TEST(ScenarioCorpus, HasTheCommittedTenPlans) {
  EXPECT_GE(corpus_files().size(), 10u);
}

TEST(ScenarioCorpus, EveryPlanRoundTripsThroughItsCanonicalForm) {
  for (const std::filesystem::path& file : corpus_files()) {
    const sim::ScenarioPlan plan = load_plan(file);
    std::stringstream canonical;
    plan.save(canonical);
    EXPECT_EQ(sim::ScenarioPlan::parse(canonical), plan) << file;
  }
}

TEST(ScenarioCorpus, ReportsMatchGoldenAndAnyJobsCount) {
  const ScenarioRunner runner;
  std::string report;
  for (const std::filesystem::path& file : corpus_files()) {
    const sim::ScenarioPlan plan = load_plan(file);
    const std::string name = file.stem().string();
    const std::string serial =
        format_scenario_report(name, plan, runner.run(plan, 1));
    const std::string parallel =
        format_scenario_report(name, plan, runner.run(plan, 4));
    // jobs=1 is the pure-serial reference; jobs=4 must reproduce it
    // byte-for-byte (one trial per pool slot, one seed per plan).
    EXPECT_EQ(serial, parallel) << name;
    report += serial;
    report += '\n';
  }

  const std::string golden_path =
      std::string(COREDA_SCENARIO_DIR) + "/corpus.golden";
  if (std::getenv("COREDA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << report;
    FAIL() << "golden rewritten (" << golden_path
           << "); rerun without COREDA_UPDATE_GOLDEN";
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden: " << golden_path;
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(report, expected.str());
}

}  // namespace
}  // namespace coreda::serve
