#include "patient/profile.hpp"

#include <gtest/gtest.h>

namespace coreda::patient {
namespace {

TEST(ProfileTest, SeverityZeroNeverErrs) {
  const PatientProfile p = PatientProfile::with_severity("A", 0.0);
  EXPECT_EQ(p.p_idle, 0.0);
  EXPECT_EQ(p.p_wrong_tool, 0.0);
  EXPECT_DOUBLE_EQ(p.pace, 1.0);
}

TEST(ProfileTest, ErrorRatesScaleWithSeverity) {
  const PatientProfile mild = PatientProfile::with_severity("A", 0.2);
  const PatientProfile severe = PatientProfile::with_severity("A", 0.9);
  EXPECT_LT(mild.p_idle, severe.p_idle);
  EXPECT_LT(mild.p_wrong_tool, severe.p_wrong_tool);
  EXPECT_LT(mild.pace, severe.pace);
}

TEST(ProfileTest, SevereStillBoundedBelowHalf) {
  const PatientProfile p = PatientProfile::with_severity("A", 1.0);
  EXPECT_LE(p.p_idle + p.p_wrong_tool, 0.55);
}

TEST(ProfileTest, SpecificPromptsMoreReliable) {
  for (double s : {0.0, 0.3, 0.7, 1.0}) {
    const PatientProfile p = PatientProfile::with_severity("A", s);
    EXPECT_GT(p.comply_specific, p.comply_minimal) << "severity " << s;
  }
}

TEST(ProfileTest, ComplianceDegradesWithSeverity) {
  const PatientProfile mild = PatientProfile::with_severity("A", 0.1);
  const PatientProfile severe = PatientProfile::with_severity("A", 0.9);
  EXPECT_GT(mild.comply_minimal, severe.comply_minimal);
}

TEST(ProfileTest, InvalidSeverityThrows) {
  EXPECT_THROW(PatientProfile::with_severity("A", -0.1),
               std::invalid_argument);
  EXPECT_THROW(PatientProfile::with_severity("A", 1.1),
               std::invalid_argument);
}

TEST(ProfileTest, NamePreserved) {
  EXPECT_EQ(PatientProfile::with_severity("Tanaka", 0.5).name, "Tanaka");
}

}  // namespace
}  // namespace coreda::patient
