#include "patient/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "adl/library.hpp"

namespace coreda::patient {
namespace {

namespace T = adl::tools;

struct GeneratorFixture : ::testing::Test {
  adl::AdlLibrary library;

  BehaviorGenerator make(const adl::Adl& adl, double severity,
                         std::uint64_t seed) {
    return BehaviorGenerator(adl, library.tools(),
                             PatientProfile::with_severity("T", severity),
                             util::Rng(seed));
  }
};

TEST_F(GeneratorFixture, CleanStepsFollowRoutine) {
  BehaviorGenerator gen = make(library.tea_making(), 0.0, 1);
  const auto steps = gen.clean_steps();
  EXPECT_EQ(steps, (std::vector<adl::StepId>{T::kTeaBox, T::kElectricPot,
                                             T::kKettle, T::kTeaCup}));
}

TEST_F(GeneratorFixture, CleanStepsPickBothDressingRoutines) {
  BehaviorGenerator gen = make(library.dressing(), 0.0, 2);
  std::set<adl::StepId> first_steps;
  for (int i = 0; i < 50; ++i) {
    first_steps.insert(gen.clean_steps().front());
  }
  EXPECT_EQ(first_steps.size(), 2u);  // both routines sampled
}

TEST_F(GeneratorFixture, NoisyStepsAtZeroSeverityAreClean) {
  BehaviorGenerator gen = make(library.tea_making(), 0.0, 3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(gen.noisy_steps().size(), 4u);
  }
}

TEST_F(GeneratorFixture, NoisyStepsContainIntrusions) {
  BehaviorGenerator gen = make(library.tea_making(), 1.0, 4);
  bool saw_intrusion = false;
  for (int i = 0; i < 50 && !saw_intrusion; ++i) {
    if (gen.noisy_steps().size() > 4) saw_intrusion = true;
  }
  EXPECT_TRUE(saw_intrusion);
}

TEST_F(GeneratorFixture, NoisyStepsAlwaysEndWithFullRoutine) {
  // Intrusions are inserted, never replace the correct steps.
  BehaviorGenerator gen = make(library.tea_making(), 1.0, 5);
  for (int i = 0; i < 30; ++i) {
    const auto steps = gen.noisy_steps();
    // Filter to the routine's tools in order: must equal the routine.
    std::vector<adl::StepId> correct;
    const std::vector<adl::StepId> routine{T::kTeaBox, T::kElectricPot,
                                           T::kKettle, T::kTeaCup};
    std::size_t expect_idx = 0;
    for (adl::StepId s : steps) {
      if (expect_idx < routine.size() && s == routine[expect_idx]) {
        ++expect_idx;
      }
    }
    EXPECT_EQ(expect_idx, routine.size());
  }
}

TEST_F(GeneratorFixture, TimedEpisodeDurationsArePositive) {
  BehaviorGenerator gen = make(library.tooth_brushing(), 0.3, 6);
  const auto episode = gen.timed_episode();
  ASSERT_EQ(episode.size(), 4u);
  for (const TimedStep& step : episode) {
    EXPECT_GT(step.think.to_seconds(), 0.0);
    EXPECT_GT(step.manipulation.to_seconds(), 0.0);
  }
}

TEST_F(GeneratorFixture, TimedDurationsScaleWithPace) {
  BehaviorGenerator slow = make(library.tea_making(), 1.0, 7);
  BehaviorGenerator fast = make(library.tea_making(), 0.0, 7);
  double slow_total = 0.0;
  double fast_total = 0.0;
  for (int i = 0; i < 30; ++i) {
    for (const TimedStep& s : slow.timed_episode()) {
      slow_total += s.manipulation.to_seconds();
    }
    for (const TimedStep& s : fast.timed_episode()) {
      fast_total += s.manipulation.to_seconds();
    }
  }
  EXPECT_GT(slow_total, fast_total);
}

TEST_F(GeneratorFixture, DeterministicPerSeed) {
  BehaviorGenerator a = make(library.tea_making(), 0.5, 42);
  BehaviorGenerator b = make(library.tea_making(), 0.5, 42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.noisy_steps(), b.noisy_steps());
  }
}

TEST_F(GeneratorFixture, ManipulationHasDurationFloor) {
  BehaviorGenerator gen = make(library.tea_making(), 0.0, 8);
  for (int i = 0; i < 100; ++i) {
    for (const TimedStep& s : gen.timed_episode()) {
      const auto& tool = library.tools().at(s.tool);
      EXPECT_GE(s.manipulation.to_seconds(),
                tool.typical_usage_mean.to_seconds() * 0.4 - 1e-9);
    }
  }
}

}  // namespace
}  // namespace coreda::patient
