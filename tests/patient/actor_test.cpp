#include "patient/actor.hpp"

#include <gtest/gtest.h>

#include "adl/library.hpp"
#include "sim/scheduler.hpp"

namespace coreda::patient {
namespace {

namespace T = adl::tools;
using Kind = PatientEvent::Kind;
using sim::Duration;
using sim::TimePoint;

struct ActorFixture : ::testing::Test {
  adl::AdlLibrary library;
  sim::Scheduler scheduler;
  sensors::ManipulationWorld world;

  PatientActor make_actor(double severity, std::uint64_t seed = 1) {
    return PatientActor(scheduler, world, library.tools(),
                        PatientProfile::with_severity("T", severity),
                        util::Rng(seed));
  }

  void run(double seconds) {
    scheduler.run_until(TimePoint::origin() + Duration::seconds(seconds));
  }
};

TEST_F(ActorFixture, HealthyPatientCompletesAlone) {
  PatientActor actor = make_actor(0.0);
  actor.begin(library.tea_making().primary_routine());
  run(600.0);
  EXPECT_TRUE(actor.finished());
  EXPECT_EQ(actor.steps_completed(), 4u);
  EXPECT_EQ(actor.events().back().kind, Kind::kFinishedAdl);
}

TEST_F(ActorFixture, ManipulationsAppearInWorld) {
  PatientActor actor = make_actor(0.0);
  actor.begin(library.tea_making().primary_routine());
  bool saw_teabox = false;
  while (!scheduler.empty() && !actor.finished()) {
    scheduler.run(1);
    if (world.in_use(T::kTeaBox, scheduler.now())) saw_teabox = true;
  }
  EXPECT_TRUE(saw_teabox);
}

TEST_F(ActorFixture, FrozenPatientWaitsForHelp) {
  PatientActor actor = make_actor(0.0);
  actor.force_next_decision(Kind::kFroze);
  actor.begin(library.tea_making().primary_routine());
  run(300.0);
  EXPECT_FALSE(actor.finished());
  EXPECT_TRUE(actor.waiting_for_help());
  EXPECT_EQ(actor.steps_completed(), 0u);
}

TEST_F(ActorFixture, PromptUnfreezesCompliantPatient) {
  PatientActor actor = make_actor(0.0);
  actor.force_next_decision(Kind::kFroze);
  actor.begin(library.tea_making().primary_routine());
  run(60.0);
  ASSERT_TRUE(actor.waiting_for_help());
  actor.receive_prompt(T::kTeaBox, planning::RemindingLevel::kSpecific);
  run(700.0);
  EXPECT_TRUE(actor.finished());
}

TEST_F(ActorFixture, NonCompliantPatientIgnoresPrompt) {
  PatientProfile profile = PatientProfile::with_severity("T", 0.0);
  profile.comply_minimal = 0.0;
  PatientActor actor(scheduler, world, library.tools(), profile,
                     util::Rng(2));
  actor.force_next_decision(Kind::kFroze);
  actor.begin(library.tea_making().primary_routine());
  run(60.0);
  actor.receive_prompt(T::kTeaBox, planning::RemindingLevel::kMinimal);
  run(120.0);
  EXPECT_FALSE(actor.finished());
  bool ignored = false;
  for (const PatientEvent& ev : actor.events()) {
    if (ev.kind == Kind::kIgnoredPrompt) ignored = true;
  }
  EXPECT_TRUE(ignored);
}

TEST_F(ActorFixture, WrongToolThenConfusion) {
  PatientActor actor = make_actor(0.0);
  actor.force_next_decision(Kind::kWrongTool, T::kTeaCup);
  actor.begin(library.tea_making().primary_routine());
  run(120.0);
  EXPECT_TRUE(actor.waiting_for_help());
  EXPECT_EQ(actor.steps_completed(), 0u);
  EXPECT_EQ(actor.events()[0].kind, Kind::kWrongTool);
  EXPECT_EQ(actor.events()[0].tool, T::kTeaCup);
}

TEST_F(ActorFixture, PromptDuringWrongManipulationActedOnAfter) {
  // Pin the think time so the wrong manipulation is guaranteed to be in
  // progress when the prompt lands (tea-cup handling lasts >= 2.4 s).
  PatientProfile profile = PatientProfile::with_severity("T", 0.0);
  profile.think_mean = sim::Duration::seconds(2.0);
  profile.think_stddev = sim::Duration::seconds(0.0);
  PatientActor actor(scheduler, world, library.tools(), profile,
                     util::Rng(1));
  actor.force_next_decision(Kind::kWrongTool, T::kTeaCup);
  actor.begin(library.tea_making().primary_routine());
  run(3.0);  // mid-manipulation of the wrong tool
  actor.receive_prompt(T::kTeaBox, planning::RemindingLevel::kSpecific);
  run(900.0);
  EXPECT_TRUE(actor.finished());
}

TEST_F(ActorFixture, ForcedDecisionsConsumeInOrder) {
  PatientActor actor = make_actor(0.0);
  actor.force_next_decision(Kind::kStartedStep);
  actor.force_next_decision(Kind::kFroze);
  actor.begin(library.tea_making().primary_routine());
  run(300.0);
  EXPECT_EQ(actor.steps_completed(), 1u);
  EXPECT_TRUE(actor.waiting_for_help());
}

TEST_F(ActorFixture, BeginResetsState) {
  PatientActor actor = make_actor(0.0);
  actor.begin(library.tea_making().primary_routine());
  run(600.0);
  ASSERT_TRUE(actor.finished());
  actor.begin(library.tooth_brushing().primary_routine());
  EXPECT_FALSE(actor.finished());
  EXPECT_EQ(actor.steps_completed(), 0u);
  EXPECT_TRUE(actor.events().empty());
  run(1200.0);
  EXPECT_TRUE(actor.finished());
}

TEST_F(ActorFixture, SeverePatientEventuallyErrs) {
  PatientActor actor = make_actor(1.0, 3);
  actor.begin(library.tea_making().primary_routine());
  run(3600.0);
  bool erred = false;
  for (const PatientEvent& ev : actor.events()) {
    if (ev.kind == Kind::kFroze || ev.kind == Kind::kWrongTool) erred = true;
  }
  EXPECT_TRUE(erred);
}

TEST_F(ActorFixture, PromptWhileFinishedIsIgnored) {
  PatientActor actor = make_actor(0.0);
  actor.begin(library.tea_making().primary_routine());
  run(600.0);
  ASSERT_TRUE(actor.finished());
  const std::size_t events = actor.events().size();
  actor.receive_prompt(T::kTeaBox, planning::RemindingLevel::kMinimal);
  run(700.0);
  EXPECT_EQ(actor.events().size(), events);
}

}  // namespace
}  // namespace coreda::patient
