#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace coreda::util {
namespace {

TEST(FlagsTest, CommandAndFlags) {
  const Flags f = Flags::parse(
      {"simulate", "--adl=Tea-making", "--severity=0.5", "--transcript"});
  EXPECT_EQ(f.command(), "simulate");
  EXPECT_EQ(f.get("adl"), "Tea-making");
  EXPECT_DOUBLE_EQ(f.get_double("severity", 0.0), 0.5);
  EXPECT_TRUE(f.get_bool("transcript"));
}

TEST(FlagsTest, EmptyInput) {
  const Flags f = Flags::parse(std::vector<std::string>{});
  EXPECT_TRUE(f.command().empty());
  EXPECT_TRUE(f.positional().empty());
}

TEST(FlagsTest, FlagsBeforeCommand) {
  const Flags f = Flags::parse({"--seed=7", "train"});
  EXPECT_EQ(f.command(), "train");
  EXPECT_EQ(f.get_int("seed", 0), 7);
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = Flags::parse({"prompt", "a.policy", "b.policy"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "a.policy");
}

TEST(FlagsTest, DoubleDashEndsFlagParsing) {
  const Flags f = Flags::parse({"cmd", "--", "--not-a-flag"});
  EXPECT_FALSE(f.has("not-a-flag"));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "--not-a-flag");
}

TEST(FlagsTest, Fallbacks) {
  const Flags f = Flags::parse({"cmd"});
  EXPECT_EQ(f.get("missing", "x"), "x");
  EXPECT_DOUBLE_EQ(f.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(f.get_int("missing", 9), 9);
  EXPECT_FALSE(f.get_bool("missing"));
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(FlagsTest, BadNumbersThrow) {
  const Flags f = Flags::parse({"cmd", "--n=abc", "--x=1.5z"});
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(f.get_double("x", 0.0), std::invalid_argument);
}

TEST(FlagsTest, BoolSpellings) {
  const Flags f = Flags::parse(
      {"cmd", "--a=true", "--b=false", "--c=1", "--d=no", "--e=maybe"});
  EXPECT_TRUE(f.get_bool("a"));
  EXPECT_FALSE(f.get_bool("b"));
  EXPECT_TRUE(f.get_bool("c"));
  EXPECT_FALSE(f.get_bool("d"));
  EXPECT_THROW(f.get_bool("e"), std::invalid_argument);
}

TEST(FlagsTest, ValueWithEquals) {
  const Flags f = Flags::parse({"cmd", "--expr=a=b"});
  EXPECT_EQ(f.get("expr"), "a=b");
}

TEST(FlagsTest, LastValueWins) {
  const Flags f = Flags::parse({"cmd", "--k=1", "--k=2"});
  EXPECT_EQ(f.get("k"), "2");
}

TEST(FlagsTest, KeysEnumerated) {
  const Flags f = Flags::parse({"cmd", "--b=2", "--a=1"});
  const auto keys = f.keys();
  ASSERT_EQ(keys.size(), 2u);  // sorted by map order
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

TEST(FlagsTest, ArgvOverload) {
  const char* argv[] = {"coreda", "list", "--verbose"};
  const Flags f = Flags::parse(3, argv);
  EXPECT_EQ(f.command(), "list");
  EXPECT_TRUE(f.get_bool("verbose"));
}

}  // namespace
}  // namespace coreda::util
