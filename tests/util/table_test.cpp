#include "util/table.hpp"

#include <gtest/gtest.h>

namespace coreda::util {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t("Title");
  t.set_header({"ADL", "Precision"});
  t.add_row({"Tea-making", "80%"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("ADL"), std::string::npos);
  EXPECT_NE(out.find("Tea-making"), std::string::npos);
  EXPECT_NE(out.find("80%"), std::string::npos);
}

TEST(TextTableTest, ColumnsPadToWidestCell) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"longer-cell", "x"});
  const std::string out = t.render();
  // Every rendered row has the same length.
  std::size_t len = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    const std::size_t row_len = nl - pos;
    if (len == std::string::npos) {
      len = row_len;
    } else {
      EXPECT_EQ(row_len, len);
    }
    pos = nl + 1;
  }
}

TEST(TextTableTest, RaggedRowsTolerated) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.render());
}

TEST(TextTableTest, NoHeaderStillRenders) {
  TextTable t;
  t.add_row({"x", "y"});
  const std::string out = t.render();
  EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(FormatPercentTest, Rounding) {
  EXPECT_EQ(format_percent(0.85), "85%");
  EXPECT_EQ(format_percent(1.0), "100%");
  EXPECT_EQ(format_percent(0.8571, 1), "85.7%");
  EXPECT_EQ(format_percent(0.0), "0%");
}

TEST(FormatFixedTest, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace coreda::util
