// util/plan_text is the single definition of the line-oriented plan-text
// vocabulary shared by faults::FaultPlan and sim::ScenarioPlan. The
// diagnostics here are load-bearing: FaultPlan's messages predate the
// extraction and must not change (satellite contract of the refactor), so
// every assertion below pins the exact text.
#include "util/plan_text.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>

namespace coreda::util {
namespace {

std::string thrown_what(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "<no throw>";
}

TEST(PlanTextTest, TrimStripsEdgesOnly) {
  EXPECT_EQ(trim("  a b \t"), "a b");
  EXPECT_EQ(trim("\r\t  \r"), "");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(leading_ws("  \tx"), 3u);
  EXPECT_EQ(leading_ws("x"), 0u);
  EXPECT_EQ(leading_ws("   "), 3u);
}

TEST(PlanTextTest, ParseFailFormatsLineAndColumn) {
  EXPECT_EQ(thrown_what([] { parse_fail("fault plan", 3, "bad"); }),
            "fault plan line 3: bad");
  EXPECT_EQ(thrown_what([] { parse_fail("scenario plan", 7, 12, "bad"); }),
            "scenario plan line 7 col 12: bad");
}

TEST(PlanTextTest, ParseDoubleMatchesHistoricalFaultPlanMessages) {
  EXPECT_DOUBLE_EQ(parse_double("fault plan", "0.25", 1), 0.25);
  EXPECT_EQ(thrown_what([] { parse_double("fault plan", "abc", 4); }),
            "fault plan line 4: expected a number, got 'abc'");
  EXPECT_EQ(thrown_what([] { parse_double("fault plan", "1.5x", 4); }),
            "fault plan line 4: trailing junk in '1.5x'");
  EXPECT_EQ(thrown_what([] { parse_double("fault plan", "1e999", 4); }),
            "fault plan line 4: number out of range: '1e999'");
}

TEST(PlanTextTest, ParseU64MatchesHistoricalFaultPlanMessages) {
  EXPECT_EQ(parse_u64("fault plan", "42", 1), 42u);
  EXPECT_EQ(thrown_what([] { parse_u64("fault plan", "x", 2); }),
            "fault plan line 2: expected an integer, got 'x'");
  EXPECT_EQ(thrown_what([] { parse_u64("fault plan", "3z", 2); }),
            "fault plan line 2: trailing junk in '3z'");
  EXPECT_EQ(
      thrown_what([] { parse_u64("fault plan", "99999999999999999999999", 2); }),
      "fault plan line 2: integer out of range: '99999999999999999999999'");
}

TEST(PlanTextTest, ColumnCarryingVariantsIncludeCol) {
  EXPECT_EQ(thrown_what([] { parse_double("scenario plan", "abc", 4, 9); }),
            "scenario plan line 4 col 9: expected a number, got 'abc'");
  EXPECT_EQ(thrown_what([] { parse_u64("scenario plan", "x", 2, 8); }),
            "scenario plan line 2 col 8: expected an integer, got 'x'");
}

TEST(PlanTextTest, ParseSectionMatchesHistoricalFaultPlanMessages) {
  EXPECT_EQ(parse_section("fault plan", "[site a.b]", "site", 1), "a.b");
  EXPECT_EQ(parse_section("fault plan", "[ site   spaced  ]", "site", 1),
            "spaced");
  EXPECT_EQ(
      thrown_what([] { parse_section("fault plan", "[site x", "site", 5); }),
      "fault plan line 5: unterminated section");
  EXPECT_EQ(
      thrown_what([] { parse_section("fault plan", "[sote x]", "site", 5); }),
      "fault plan line 5: expected [site NAME], got [sote x]");
  // A nameless section header loses its trailing space to trim(), so it has
  // historically reported the expected-NAME diagnostic, not empty-name.
  EXPECT_EQ(
      thrown_what([] { parse_section("fault plan", "[site  ]", "site", 5); }),
      "fault plan line 5: expected [site NAME], got [site]");
}

TEST(PlanTextTest, SplitKeyValueReportsTokenColumns) {
  const KeyValue kv = split_key_value("scenario plan", "steps  =  3", 1);
  EXPECT_EQ(kv.key, "steps");
  EXPECT_EQ(kv.value, "3");
  EXPECT_EQ(kv.key_col, 1u);
  EXPECT_EQ(kv.value_col, 11u);
  EXPECT_EQ(thrown_what(
                [] { (void)split_key_value("fault plan", "no equals", 9); }),
            "fault plan line 9: expected key = value, got 'no equals'");
}

TEST(PlanTextTest, SplitKeyValueEmptyValueColumnClampsToLineEnd) {
  const KeyValue kv = split_key_value("scenario plan", "hint =", 1);
  EXPECT_EQ(kv.key, "hint");
  EXPECT_EQ(kv.value, "");
  EXPECT_EQ(kv.value_col, 7u);
}

}  // namespace
}  // namespace coreda::util
