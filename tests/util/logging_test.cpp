#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace coreda::util {
namespace {

TEST(LoggerTest, DefaultDiscards) {
  Logger log("test");
  EXPECT_FALSE(log.enabled(LogLevel::kError));
  log.error("never seen");  // must not crash with no sink
}

TEST(LoggerTest, LevelFiltering) {
  std::vector<std::string> messages;
  Logger log("comp", LogLevel::kWarn);
  log.set_sink([&](LogLevel, std::string_view, std::string_view m) {
    messages.emplace_back(m);
  });
  log.debug("dropped");
  log.info("dropped");
  log.warn("kept-1");
  log.error("kept-2");
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0], "kept-1");
  EXPECT_EQ(messages[1], "kept-2");
}

TEST(LoggerTest, OffSilencesEverything) {
  int calls = 0;
  Logger log("comp", LogLevel::kOff);
  log.set_sink([&](LogLevel, std::string_view, std::string_view) { ++calls; });
  log.error("nope");
  EXPECT_EQ(calls, 0);
}

TEST(LoggerTest, FormatsMultipleArgs) {
  std::string captured;
  Logger log("comp", LogLevel::kInfo);
  log.set_sink([&](LogLevel, std::string_view, std::string_view m) {
    captured = std::string(m);
  });
  log.info("x=", 42, " y=", 1.5);
  EXPECT_EQ(captured, "x=42 y=1.5");
}

TEST(LoggerTest, StreamSinkFormat) {
  std::ostringstream out;
  Logger log("radio", LogLevel::kInfo);
  log.set_sink(Logger::stream_sink(out));
  log.info("frame sent");
  EXPECT_EQ(out.str(), "[INFO] radio: frame sent\n");
}

TEST(LogLevelTest, Names) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace coreda::util
