// The latency histogram's accuracy contract: HDR-style log-linear buckets
// (8 sub-buckets per octave) bound the quantile error at ~12.5% of the
// value over the full u64 range, extremes are exact, and merge() equals
// recording everything into one instance — the property the fleet's
// per-shard histograms rely on.

#include "util/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace coreda::util {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, BucketFloorInvertsBucketOf) {
  // Every bucket's floor maps back into that bucket, and floors are
  // strictly increasing — together: buckets tile the range with no gaps.
  for (std::size_t b = 0; b + 1 < LatencyHistogram::kBuckets; ++b) {
    const std::uint64_t floor = LatencyHistogram::bucket_floor(b);
    EXPECT_EQ(LatencyHistogram::bucket_of(floor), b) << "bucket " << b;
    EXPECT_LT(floor, LatencyHistogram::bucket_floor(b + 1)) << "bucket " << b;
    // The last value of the bucket still maps into it.
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_floor(b + 1) - 1),
              b)
        << "bucket " << b;
  }
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_LT(LatencyHistogram::bucket_of(
                std::numeric_limits<std::uint64_t>::max()),
            LatencyHistogram::kBuckets);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // The identity region [0, 8): one value per bucket, so a quantile lands in
  // exactly the bucket of its order statistic (midpoint v + 0.5), and the
  // extremes are exact.
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 8; ++v) h.record(v);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(1.0), 7.0);
  EXPECT_EQ(h.quantile(0.5), 4.5);  // the 4th smallest of 8 lives in bucket 4
}

TEST(LatencyHistogramTest, QuantilesStayWithinTheBucketErrorBound) {
  // Log-uniform samples over [1, 2^40]: for each probed quantile the
  // histogram answer must land within one sub-bucket (12.5%) of the exact
  // order statistic.
  util::Rng rng(2026);
  std::vector<std::uint64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 20000; ++i) {
    const double exponent = rng.uniform(0.0, 40.0);
    const auto v = static_cast<std::uint64_t>(std::pow(2.0, exponent)) + 1;
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(h.count(), values.size());
  EXPECT_EQ(h.min(), values.front());
  EXPECT_EQ(h.max(), values.back());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::uint64_t exact =
        values[static_cast<std::size_t>(q * static_cast<double>(values.size()))];
    const double approx = h.quantile(q);
    EXPECT_GE(approx, static_cast<double>(exact) * (1.0 - 0.125)) << "q=" << q;
    EXPECT_LE(approx, static_cast<double>(exact) * (1.0 + 0.125)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeEqualsRecordingIntoOne) {
  util::Rng rng(7);
  LatencyHistogram all, a, b, merged;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform(1.0, 1e9));
    all.record(v);
    (i % 3 == 0 ? a : b).record(v);
  }
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.min(), all.min());
  EXPECT_EQ(merged.max(), all.max());
  for (const double q : {0.01, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(merged.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, ResetForgetsEverything) {
  LatencyHistogram h;
  h.record(123456);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

}  // namespace
}  // namespace coreda::util
