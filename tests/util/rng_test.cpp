#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace coreda::util {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.uniform_int(4, 4), 4);
  }
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRateMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0;
  double ss = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(41);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(3.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, PickIndexStaysInRange) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.pick_index(7), 7u);
  }
}

TEST(RngTest, PickWeightedHonorsWeights) {
  Rng rng(47);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.pick_weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, PickWeightedNegativeWeightsIgnored) {
  Rng rng(53);
  const std::vector<double> weights{-5.0, 2.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.pick_weighted(weights), 1u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(59);
  Rng child = parent.fork();
  // The child must differ from a fresh copy of the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(61);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and run
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace coreda::util
