#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace coreda::util {
namespace {

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("a").field("b").field(std::int64_t{3});
  csv.end_row();
  EXPECT_EQ(out.str(), "a,b,3\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriterTest, Header) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"x", "y"});
  EXPECT_EQ(out.str(), "x,y\n");
}

TEST(CsvWriterTest, QuotesFieldsWithCommas) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("hello, world").field("plain");
  csv.end_row();
  EXPECT_EQ(out.str(), "\"hello, world\",plain\n");
}

TEST(CsvWriterTest, EscapesEmbeddedQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("say \"hi\"");
  csv.end_row();
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriterTest, QuotesNewlines) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("line1\nline2");
  csv.end_row();
  EXPECT_EQ(out.str(), "\"line1\nline2\"\n");
}

TEST(CsvWriterTest, DoubleRoundTrips) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field(0.1).field(1e-9).field(12345.6789);
  csv.end_row();
  const auto fields = parse_csv_line(out.str().substr(0, out.str().size() - 1));
  EXPECT_DOUBLE_EQ(std::stod(fields[0]), 0.1);
  EXPECT_DOUBLE_EQ(std::stod(fields[1]), 1e-9);
  EXPECT_DOUBLE_EQ(std::stod(fields[2]), 12345.6789);
}

TEST(CsvWriterTest, BoolFormatting) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field(true).field(false);
  csv.end_row();
  EXPECT_EQ(out.str(), "true,false\n");
}

TEST(ParseCsvLineTest, SimpleSplit) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvLineTest, EmptyFields) {
  const auto fields = parse_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(ParseCsvLineTest, QuotedFieldWithComma) {
  const auto fields = parse_csv_line("\"x,y\",z");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "x,y");
  EXPECT_EQ(fields[1], "z");
}

TEST(ParseCsvLineTest, EscapedQuotes) {
  const auto fields = parse_csv_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(ParseCsvLineTest, ToleratesCarriageReturn) {
  const auto fields = parse_csv_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvRoundTripTest, WriterOutputParsesBack) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("normal").field("with, comma").field("with \"quote\"");
  csv.end_row();
  std::string line = out.str();
  line.pop_back();  // trailing newline
  const auto fields = parse_csv_line(line);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "normal");
  EXPECT_EQ(fields[1], "with, comma");
  EXPECT_EQ(fields[2], "with \"quote\"");
}

}  // namespace
}  // namespace coreda::util
