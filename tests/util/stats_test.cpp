#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace coreda::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32 / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesBulk) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSetTest, PercentileEdges) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(SampleSetTest, PercentileClampsOutOfRange) {
  SampleSet s;
  s.add(5.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(-10), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(200), 7.0);
}

TEST(SampleSetTest, EmptyPercentileIsZero) {
  SampleSet s;
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SampleSetTest, AddAfterPercentileInvalidatesCache) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 2.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
}

TEST(PrecisionCounterTest, Basics) {
  PrecisionCounter c;
  EXPECT_EQ(c.precision(), 0.0);
  c.record(true);
  c.record(true);
  c.record(false);
  c.record(true);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_EQ(c.correct(), 3u);
  EXPECT_DOUBLE_EQ(c.precision(), 0.75);
}

TEST(ConfusionMatrixTest, AccuracyAndCells) {
  ConfusionMatrix m;
  m.record(1, 1);
  m.record(1, 1);
  m.record(1, 2);
  m.record(2, 2);
  EXPECT_EQ(m.total(), 4u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
  EXPECT_EQ(m.count(1, 1), 2u);
  EXPECT_EQ(m.count(1, 2), 1u);
  EXPECT_EQ(m.count(3, 3), 0u);
}

TEST(ConfusionMatrixTest, PerClassPrecisionRecall) {
  ConfusionMatrix m;
  // Class 1: 2 actual (1 predicted right, 1 as class 2).
  m.record(1, 1);
  m.record(1, 2);
  // Class 2: 2 actual, both right.
  m.record(2, 2);
  m.record(2, 2);
  EXPECT_DOUBLE_EQ(m.recall_for(1), 0.5);
  EXPECT_DOUBLE_EQ(m.precision_for(1), 1.0);
  EXPECT_DOUBLE_EQ(m.recall_for(2), 1.0);
  EXPECT_DOUBLE_EQ(m.precision_for(2), 2.0 / 3.0);
  // Never-seen class.
  EXPECT_EQ(m.precision_for(9), 0.0);
  EXPECT_EQ(m.recall_for(9), 0.0);
}

}  // namespace
}  // namespace coreda::util
