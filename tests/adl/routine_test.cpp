#include "adl/routine.hpp"

#include <gtest/gtest.h>

namespace coreda::adl {
namespace {

AdlRoutine make_routine() {
  return AdlRoutine("test", {AdlStep{"one", 11}, AdlStep{"two", 12},
                             AdlStep{"three", 13}});
}

TEST(AdlRoutineTest, BasicAccessors) {
  const AdlRoutine r = make_routine();
  EXPECT_EQ(r.name(), "test");
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.first_step(), 11);
  EXPECT_EQ(r.last_step(), 13);
  EXPECT_EQ(r.step(1).name, "two");
}

TEST(AdlRoutineTest, StepIdEqualsToolId) {
  const AdlRoutine r = make_routine();
  for (const AdlStep& s : r.steps()) {
    EXPECT_EQ(s.step_id(), s.tool);
  }
}

TEST(AdlRoutineTest, IndexOfTool) {
  const AdlRoutine r = make_routine();
  EXPECT_EQ(r.index_of_tool(12), 1u);
  EXPECT_FALSE(r.index_of_tool(99).has_value());
}

TEST(AdlRoutineTest, NextAfter) {
  const AdlRoutine r = make_routine();
  EXPECT_EQ(r.next_after(11), 12);
  EXPECT_EQ(r.next_after(12), 13);
  EXPECT_EQ(r.next_after(13), kIdleStep);  // terminal
  EXPECT_EQ(r.next_after(99), kIdleStep);  // unknown
}

TEST(AdlRoutineTest, IsTerminal) {
  const AdlRoutine r = make_routine();
  EXPECT_TRUE(r.is_terminal(13));
  EXPECT_FALSE(r.is_terminal(11));
  EXPECT_FALSE(r.is_terminal(99));
}

TEST(AdlRoutineTest, EmptyThrows) {
  EXPECT_THROW(AdlRoutine("empty", {}), std::invalid_argument);
}

TEST(AdlRoutineTest, ReservedToolThrows) {
  EXPECT_THROW(AdlRoutine("bad", {AdlStep{"x", 0}}), std::invalid_argument);
}

TEST(AdlRoutineTest, RepeatedToolThrows) {
  EXPECT_THROW(
      AdlRoutine("bad", {AdlStep{"a", 5}, AdlStep{"b", 6}, AdlStep{"c", 5}}),
      std::invalid_argument);
}

TEST(AdlTest, SingleRoutine) {
  Adl adl("Tea", {make_routine()});
  EXPECT_FALSE(adl.multi_routine());
  EXPECT_EQ(adl.primary_routine().name(), "test");
  EXPECT_EQ(adl.tools(), (std::vector<ToolId>{11, 12, 13}));
}

TEST(AdlTest, MultiRoutineToolsDeduplicated) {
  AdlRoutine a("a", {AdlStep{"1", 11}, AdlStep{"2", 12}});
  AdlRoutine b("b", {AdlStep{"2", 12}, AdlStep{"1", 11}, AdlStep{"3", 13}});
  Adl adl("Dress", {a, b});
  EXPECT_TRUE(adl.multi_routine());
  EXPECT_EQ(adl.tools(), (std::vector<ToolId>{11, 12, 13}));
}

TEST(AdlTest, NoRoutinesThrows) {
  EXPECT_THROW(Adl("bad", {}), std::invalid_argument);
}

}  // namespace
}  // namespace coreda::adl
