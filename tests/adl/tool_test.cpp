#include "adl/tool.hpp"

#include <gtest/gtest.h>

namespace coreda::adl {
namespace {

Tool tool(ToolId id, std::string name) {
  Tool t;
  t.id = id;
  t.name = std::move(name);
  return t;
}

TEST(ToolRegistryTest, AddAndFind) {
  ToolRegistry reg;
  reg.add(tool(5, "kettle"));
  ASSERT_NE(reg.find(5), nullptr);
  EXPECT_EQ(reg.find(5)->name, "kettle");
  EXPECT_EQ(reg.find(6), nullptr);
  EXPECT_TRUE(reg.contains(5));
  EXPECT_FALSE(reg.contains(6));
}

TEST(ToolRegistryTest, AtThrowsOnMissing) {
  ToolRegistry reg;
  EXPECT_THROW(reg.at(1), std::out_of_range);
  reg.add(tool(1, "x"));
  EXPECT_NO_THROW(reg.at(1));
}

TEST(ToolRegistryTest, RejectsReservedId) {
  ToolRegistry reg;
  EXPECT_THROW(reg.add(tool(0, "bad")), std::invalid_argument);
}

TEST(ToolRegistryTest, RejectsDuplicateId) {
  ToolRegistry reg;
  reg.add(tool(3, "a"));
  EXPECT_THROW(reg.add(tool(3, "b")), std::invalid_argument);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ToolRegistryTest, FindByName) {
  ToolRegistry reg;
  reg.add(tool(1, "kettle"));
  reg.add(tool(2, "tea cup"));
  ASSERT_NE(reg.find_by_name("tea cup"), nullptr);
  EXPECT_EQ(reg.find_by_name("tea cup")->id, 2);
  EXPECT_EQ(reg.find_by_name("Tea Cup"), nullptr);  // case-sensitive
  EXPECT_EQ(reg.find_by_name("missing"), nullptr);
}

TEST(SensorKindTest, Names) {
  EXPECT_EQ(to_string(SensorKind::kAccelerometer), "3-axis accelerometer");
  EXPECT_EQ(to_string(SensorKind::kPressure), "pressure");
  EXPECT_EQ(to_string(SensorKind::kMotion), "motion");
  EXPECT_EQ(to_string(SensorKind::kBrightness), "brightness");
  EXPECT_EQ(to_string(SensorKind::kTemperature), "temperature");
}

TEST(ToolTest, DefaultsAreSane) {
  Tool t;
  EXPECT_EQ(t.id, kNoTool);
  EXPECT_GT(t.typical_usage_mean.to_seconds(), 0.0);
  EXPECT_GT(t.usage_intensity, 0.0);
}

}  // namespace
}  // namespace coreda::adl
