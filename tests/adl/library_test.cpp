#include "adl/library.hpp"

#include <gtest/gtest.h>

namespace coreda::adl {
namespace {

TEST(AdlLibraryTest, HasFourAdls) {
  AdlLibrary lib;
  EXPECT_EQ(lib.adls().size(), 4u);
}

TEST(AdlLibraryTest, PaperTable2ToothBrushing) {
  AdlLibrary lib;
  const Adl& tb = lib.tooth_brushing();
  ASSERT_EQ(tb.primary_routine().size(), 4u);
  const auto& steps = tb.primary_routine().steps();
  EXPECT_EQ(steps[0].name, "Put toothpaste on the brush");
  EXPECT_EQ(steps[1].name, "Brush the teeth");
  EXPECT_EQ(steps[2].name, "Gargle with water");
  EXPECT_EQ(steps[3].name, "Dry with a towel");
  // Table 2: accelerometer on every tooth-brushing tool.
  for (const AdlStep& s : steps) {
    EXPECT_EQ(lib.tools().at(s.tool).sensor, SensorKind::kAccelerometer);
  }
}

TEST(AdlLibraryTest, PaperTable2TeaMaking) {
  AdlLibrary lib;
  const Adl& tea = lib.tea_making();
  ASSERT_EQ(tea.primary_routine().size(), 4u);
  const auto& steps = tea.primary_routine().steps();
  EXPECT_EQ(steps[0].name, "Put tea-leaf into kettle");
  EXPECT_EQ(steps[1].name, "Pour hot water into kettle");
  EXPECT_EQ(steps[2].name, "Pour tea into tea cup");
  EXPECT_EQ(steps[3].name, "Drink a cup of tea");
  // Table 2: pressure sensor on the electronic pot, accelerometer elsewhere.
  EXPECT_EQ(lib.tools().at(steps[1].tool).sensor, SensorKind::kPressure);
  EXPECT_EQ(lib.tools().at(steps[0].tool).sensor,
            SensorKind::kAccelerometer);
}

TEST(AdlLibraryTest, DressingHasTwoRoutines) {
  AdlLibrary lib;
  const Adl& dress = lib.dressing();
  EXPECT_TRUE(dress.multi_routine());
  EXPECT_EQ(dress.routines().size(), 2u);
  // Both routines end with shoes.
  for (const AdlRoutine& r : dress.routines()) {
    EXPECT_EQ(r.last_step(), tools::kShoes);
  }
  // The two routines share the trousers->socks transition but diverge
  // afterwards — the ambiguity the multi-routine experiment exercises.
  EXPECT_EQ(dress.routines()[0].next_after(tools::kSocks), tools::kShoes);
  EXPECT_EQ(dress.routines()[1].next_after(tools::kSocks), tools::kShirt);
}

TEST(AdlLibraryTest, ByNameLookup) {
  AdlLibrary lib;
  EXPECT_EQ(lib.by_name("Tea-making").name(), "Tea-making");
  EXPECT_THROW(lib.by_name("Cooking"), std::out_of_range);
}

TEST(AdlLibraryTest, WeakToolsHaveLowIntensity) {
  // The Table 3 shape depends on these orderings: the towel and pot are the
  // weakest signals of their ADLs.
  AdlLibrary lib;
  const auto& tools = lib.tools();
  EXPECT_LT(tools.at(tools::kTowel).usage_intensity,
            tools.at(tools::kToothbrush).usage_intensity);
  EXPECT_LT(tools.at(tools::kElectricPot).usage_intensity,
            tools.at(tools::kTeaBox).usage_intensity);
}

TEST(AdlLibraryTest, ShortStepsAreShort) {
  AdlLibrary lib;
  const auto& tools = lib.tools();
  // "The duration of these two steps are relatively shorter than other
  // steps" (paper §3.1).
  EXPECT_LT(tools.at(tools::kTowel).typical_usage_mean,
            tools.at(tools::kToothbrush).typical_usage_mean);
  EXPECT_LT(tools.at(tools::kElectricPot).typical_usage_mean,
            tools.at(tools::kKettle).typical_usage_mean);
}

TEST(AdlLibraryTest, AllToolIdsUniqueAndNonzero) {
  AdlLibrary lib;
  for (const Adl& adl : lib.adls()) {
    for (ToolId t : adl.tools()) {
      EXPECT_NE(t, kNoTool);
      EXPECT_TRUE(lib.tools().contains(t));
    }
  }
}

}  // namespace
}  // namespace coreda::adl
