#include "exec/trial_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "adl/library.hpp"
#include "trace/sensing_pipeline.hpp"

namespace coreda::exec {
namespace {

TEST(TrialSeedTest, IsAPureFunctionOfThePair) {
  EXPECT_EQ(trial_seed(42, 7), trial_seed(42, 7));
  EXPECT_NE(trial_seed(42, 7), trial_seed(42, 8));
  EXPECT_NE(trial_seed(42, 7), trial_seed(43, 7));
}

TEST(TrialSeedTest, NeighboringIndicesGetDistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(trial_seed(1, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(TrialRunnerTest, ResultsLandInIndexOrder) {
  TrialRunner runner(4);
  const auto results = runner.run(
      64, 9, [](TrialContext& ctx) { return ctx.index * 10; });
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * 10);
  }
}

TEST(TrialRunnerTest, SerialAndParallelRunsAreIdentical) {
  // The contract the experiment tables rely on: each trial's Rng stream is a
  // pure function of (base_seed, index), so results cannot depend on which
  // worker ran the trial or in what order trials finished.
  auto body = [](TrialContext& ctx) {
    std::vector<double> draws;
    for (int i = 0; i < 16; ++i) draws.push_back(ctx.rng.uniform());
    return draws;
  };
  TrialRunner serial(1);
  TrialRunner parallel(8);
  EXPECT_EQ(serial.run(64, 77, body), parallel.run(64, 77, body));
}

TEST(TrialRunnerTest, LowestIndexExceptionWinsAfterAllTrialsComplete) {
  TrialRunner runner(8);
  std::atomic<int> completed{0};
  try {
    runner.run(16, 1, [&completed](TrialContext& ctx) -> int {
      ++completed;
      if (ctx.index == 11) throw std::runtime_error("trial 11");
      if (ctx.index == 3) throw std::runtime_error("trial 3");
      return 0;
    });
    FAIL() << "expected a trial exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 3");
  }
  EXPECT_EQ(completed.load(), 16);
}

TEST(TrialRunnerTest, ZeroJobsMeansHardwareConcurrency) {
  TrialRunner runner(0);
  EXPECT_EQ(runner.jobs(), ThreadPool::hardware_workers());
}

TEST(TrialRunnerTest, JobsFromFlagsParsesAndValidates) {
  EXPECT_EQ(jobs_from_flags(util::Flags::parse({"--jobs=3"})), 3u);
  EXPECT_EQ(jobs_from_flags(util::Flags::parse({})),
            ThreadPool::hardware_workers());
  EXPECT_THROW(jobs_from_flags(util::Flags::parse({"--jobs=-1"})),
               std::invalid_argument);
}

// The acceptance check of the parallel layer: a 64-trial Table 3 style run
// (real sensing stacks, one per trial) rendered to a table is byte-identical
// at --jobs 1 and --jobs 8.
TEST(TrialRunnerTest, TableThreeStyleRunIsByteIdenticalAcrossJobCounts) {
  adl::AdlLibrary library;
  std::vector<adl::ToolId> tools;
  for (const char* name : {"Tooth-brushing", "Tea-making"}) {
    for (const auto& step : library.by_name(name).primary_routine().steps()) {
      tools.push_back(step.tool);
    }
  }
  ASSERT_EQ(tools.size(), 8u);

  auto trial = [&](TrialContext& ctx) {
    const adl::ToolId tool = tools[ctx.index % tools.size()];
    const adl::Tool& t = library.tools().at(tool);
    trace::SensingPipeline pipeline(library.tools(), {tool},
                                    1000 + tool + 17 * ctx.index);
    int extracted = 0;
    for (int i = 0; i < 4; ++i) {
      const double mean = t.typical_usage_mean.to_seconds();
      const double drawn =
          std::max(mean * 0.4,
                   ctx.rng.normal(mean, t.typical_usage_stddev.to_seconds()));
      extracted +=
          pipeline.single_tool_trial(tool, sim::Duration::seconds(drawn));
    }
    return extracted;
  };

  auto render = [&](std::size_t jobs) {
    TrialRunner runner(jobs);
    const std::vector<int> results = runner.run(64, 4242, trial);
    std::ostringstream table;
    for (std::size_t i = 0; i < results.size(); ++i) {
      table << i << '\t' << tools[i % tools.size()] << '\t' << results[i]
            << '\n';
    }
    return table.str();
  };

  EXPECT_EQ(render(1), render(8));
}

}  // namespace
}  // namespace coreda::exec
