#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace coreda::exec {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingWork) {
  // Queue far more work than the workers can start before shutdown() is
  // called; graceful shutdown must still run every queued task.
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      ++counter;
    });
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.submit([] {});
  pool.shutdown();
  pool.shutdown();  // must not hang or crash
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorJoinsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool == shutdown()
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, HardwareWorkersIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

}  // namespace
}  // namespace coreda::exec
