#include "tools/cli_commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "adl/library.hpp"
#include "planning/serialize.hpp"
#include "serve/policy_store.hpp"
#include "serve/segment_store.hpp"

namespace coreda::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(const std::vector<std::string>& tokens) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_command(util::Flags::parse(tokens), out, err);
  return {code, out.str(), err.str()};
}

TEST(CliTest, NoCommandShowsUsageAndFails) {
  const CliResult r = run({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(CliTest, HelpSucceeds) {
  const CliResult r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("simulate"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  const CliResult r = run({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, ListShowsCatalog) {
  const CliResult r = run({"list"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Tea-making"), std::string::npos);
  EXPECT_NE(r.out.find("electronic pot (22)"), std::string::npos);
  EXPECT_NE(r.out.find("Dressing"), std::string::npos);
}

TEST(CliTest, SimulateRequiresAdl) {
  const CliResult r = run({"simulate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--adl"), std::string::npos);
}

TEST(CliTest, SimulateUnknownAdlFails) {
  const CliResult r = run({"simulate", "--adl=Cooking"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("Cooking"), std::string::npos);
}

TEST(CliTest, SimulateRunsSessions) {
  const CliResult r = run({"simulate", "--adl=Tea-making", "--sessions=2",
                           "--severity=0.3", "--seed=5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("2 sessions completed"), std::string::npos);
}

TEST(CliTest, BadFlagValueReportsCleanError) {
  const CliResult r = run({"simulate", "--adl=Tea-making",
                           "--sessions=two"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--sessions"), std::string::npos);
}

TEST(CliTest, TrainPromptRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cli_tea.policy";
  const CliResult train = run(
      {"train", "--adl=Tea-making", "--out=" + path, "--episodes=80"});
  EXPECT_EQ(train.code, 0) << train.err;
  EXPECT_NE(train.out.find("100%"), std::string::npos);

  const CliResult prompt = run({"prompt", "--adl=Tea-making",
                                "--policy=" + path, "--prev=0", "--cur=21"});
  EXPECT_EQ(prompt.code, 0) << prompt.err;
  EXPECT_NE(prompt.out.find("electronic pot"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, PromptRejectsForeignContext) {
  const std::string path = ::testing::TempDir() + "/cli_tea2.policy";
  run({"train", "--adl=Tea-making", "--out=" + path, "--episodes=40"});
  const CliResult r = run({"prompt", "--adl=Tea-making",
                           "--policy=" + path, "--prev=0", "--cur=99"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("vocabulary"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, PromptMissingPolicyFileFails) {
  const CliResult r = run({"prompt", "--adl=Tea-making",
                           "--policy=/nonexistent/x.policy"});
  EXPECT_EQ(r.code, 2);
}

TEST(CliTest, PolicySaveLoadInspectV2RoundTrip) {
  const std::string path = ::testing::TempDir() + "/cli_v2.policy";
  const CliResult save =
      run({"policy", "save", "--adl=Tea-making", "--out=" + path,
           "--episodes=80", "--version=5"});
  EXPECT_EQ(save.code, 0) << save.err;
  EXPECT_NE(save.out.find("saved v2 snapshot"), std::string::npos);

  const CliResult load =
      run({"policy", "load", "--adl=Tea-making", "--in=" + path});
  EXPECT_EQ(load.code, 0) << load.err;
  EXPECT_NE(load.out.find("v2 (binary)"), std::string::npos);
  EXPECT_NE(load.out.find("user version 5"), std::string::npos);
  EXPECT_NE(load.out.find("100%"), std::string::npos);

  const CliResult inspect = run({"policy", "inspect", "--in=" + path});
  EXPECT_EQ(inspect.code, 0) << inspect.err;
  EXPECT_NE(inspect.out.find("coreda-policy v2"), std::string::npos);
  EXPECT_NE(inspect.out.find("user version: 5"), std::string::npos);
  EXPECT_NE(inspect.out.find("checksum: ok"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, PolicyCommandsHandleV1Format) {
  const std::string path = ::testing::TempDir() + "/cli_v1.policy";
  const CliResult save =
      run({"policy", "save", "--adl=Tea-making", "--out=" + path,
           "--episodes=80", "--format=v1"});
  EXPECT_EQ(save.code, 0) << save.err;

  const CliResult load =
      run({"policy", "load", "--adl=Tea-making", "--in=" + path});
  EXPECT_EQ(load.code, 0) << load.err;
  EXPECT_NE(load.out.find("v1 (text)"), std::string::npos);

  const CliResult inspect = run({"policy", "inspect", "--in=" + path});
  EXPECT_EQ(inspect.code, 0) << inspect.err;
  EXPECT_NE(inspect.out.find("coreda-policy v1"), std::string::npos);
  std::remove(path.c_str());

  // The legacy `prompt` command accepts v1 only; v2 comes in through
  // `policy load` / the serving tier.
  const CliResult bad_format =
      run({"policy", "save", "--adl=Tea-making", "--out=" + path,
           "--format=v9"});
  EXPECT_EQ(bad_format.code, 1);
}

TEST(CliTest, PolicyInspectFlagsCorruption) {
  const std::string path = ::testing::TempDir() + "/cli_bad.policy";
  run({"policy", "save", "--adl=Tea-making", "--out=" + path,
       "--episodes=40"});
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    f.put('\x7f');  // flip bytes deep in the Q block
  }
  const CliResult inspect = run({"policy", "inspect", "--in=" + path});
  EXPECT_EQ(inspect.code, 2);
  EXPECT_NE(inspect.out.find("MISMATCH"), std::string::npos);

  // Loading the corrupt snapshot must fail loudly, not half-apply.
  const CliResult load =
      run({"policy", "load", "--adl=Tea-making", "--in=" + path});
  EXPECT_EQ(load.code, 2);
  std::remove(path.c_str());
}

TEST(CliTest, PolicyMigrateBuildsAnInspectableSegmentStore) {
  const std::string from = ::testing::TempDir() + "/cli_migrate_v2";
  const std::string store = ::testing::TempDir() + "/cli_migrate_store";
  std::filesystem::remove_all(from);
  std::filesystem::remove_all(store);
  std::filesystem::create_directories(from);
  ASSERT_EQ(run({"policy", "save", "--adl=Tea-making",
                 "--out=" + from + "/alice.policy", "--episodes=40",
                 "--version=3"})
                .code,
            0);
  ASSERT_EQ(run({"policy", "save", "--adl=Tea-making",
                 "--out=" + from + "/bob.policy", "--episodes=40",
                 "--version=7", "--seed=43"})
                .code,
            0);

  const CliResult migrate =
      run({"policy", "migrate", "--adl=Tea-making", "--from=" + from,
           "--out=" + store, "--writers=2"});
  EXPECT_EQ(migrate.code, 0) << migrate.err;
  EXPECT_NE(migrate.out.find("Migrated 2/2 v2 snapshots"),
            std::string::npos);

  // The migrated store is a directory: `policy inspect` dispatches to the
  // segment-store summary instead of the per-file header decoder.
  const CliResult inspect = run({"policy", "inspect", "--in=" + store});
  EXPECT_EQ(inspect.code, 0) << inspect.err;
  EXPECT_NE(inspect.out.find("coreda-policy store v1"), std::string::npos);
  EXPECT_NE(inspect.out.find("meta: ok"), std::string::npos);
  EXPECT_NE(inspect.out.find("2 live, 0 dead, 0 corrupt"),
            std::string::npos);
  EXPECT_NE(inspect.out.find("users: 2 (max version 7)"),
            std::string::npos);
  // Chain shape: a user's first record in a segment is always an anchor,
  // so a one-shot migration is all anchors with unit-length chains.
  EXPECT_NE(inspect.out.find("chain shape: 2 anchors, 0 deltas"),
            std::string::npos);
  EXPECT_NE(inspect.out.find("mean chain length 1.00"), std::string::npos);
  EXPECT_NE(inspect.out.find("  seg w"), std::string::npos);
  std::filesystem::remove_all(from);
  std::filesystem::remove_all(store);
}

// Mirror of policy_v3_test's round-trip at store granularity: v2 snapshots
// migrated into a v2-segment store must read back bit-exact — same table,
// same version — through a SegmentPolicyStore opened over the migrated dir.
TEST(CliTest, PolicyMigrateRoundTripsTablesBitExact) {
  const std::string from = ::testing::TempDir() + "/cli_rt_v2";
  const std::string out = ::testing::TempDir() + "/cli_rt_store";
  std::filesystem::remove_all(from);
  std::filesystem::remove_all(out);
  std::filesystem::create_directories(from);
  ASSERT_EQ(run({"policy", "save", "--adl=Tea-making",
                 "--out=" + from + "/alice.policy", "--episodes=40",
                 "--version=3"})
                .code,
            0);
  ASSERT_EQ(run({"policy", "save", "--adl=Tea-making",
                 "--out=" + from + "/bob.policy", "--episodes=40",
                 "--version=7", "--seed=43"})
                .code,
            0);
  ASSERT_EQ(run({"policy", "migrate", "--adl=Tea-making", "--from=" + from,
                 "--out=" + out})
                .code,
            0);

  adl::AdlLibrary library;
  planning::RoutineLearner reference(library.by_name("Tea-making"),
                                     util::Rng(1));
  const auto steps = reference.state_codec().symbols();
  const auto tools = reference.action_codec().tools();

  serve::SegmentPolicyStoreParams params;
  params.dir = out;
  serve::SegmentPolicyStore store(reference, params);
  const serve::UserId alice = store.add_user("alice");
  const serve::UserId bob = store.add_user("bob");

  const auto expect_matches = [&](serve::UserId user,
                                  const std::string& name,
                                  std::uint64_t version) {
    std::ifstream src(from + "/" + name + ".policy", std::ios::binary);
    rl::QTable expect(reference.q().num_states(),
                      reference.q().num_actions());
    ASSERT_EQ(planning::load_policy_v2(src, steps, tools, expect), version);
    ASSERT_EQ(store.restore(user), version);
    const rl::QTable& got = store.q(user);
    for (std::size_t s = 0; s < expect.num_states(); ++s) {
      for (std::size_t a = 0; a < expect.num_actions(); ++a) {
        ASSERT_EQ(got.get(static_cast<rl::StateId>(s),
                          static_cast<rl::ActionId>(a)),
                  expect.get(static_cast<rl::StateId>(s),
                             static_cast<rl::ActionId>(a)))
            << name << " state " << s << " action " << a;
      }
    }
  };
  expect_matches(alice, "alice", 3);
  expect_matches(bob, "bob", 7);
  std::filesystem::remove_all(from);
  std::filesystem::remove_all(out);
}

TEST(CliTest, PolicyMigrateToV3AndChainInspect) {
  const std::string from = ::testing::TempDir() + "/cli_v3_from";
  const std::string out = ::testing::TempDir() + "/cli_v3_out";
  std::filesystem::remove_all(from);
  std::filesystem::remove_all(out);
  std::filesystem::create_directories(from);
  ASSERT_EQ(run({"policy", "save", "--adl=Tea-making",
                 "--out=" + from + "/alice.policy", "--episodes=40",
                 "--version=3"})
                .code,
            0);

  // Per-file v2 -> v3 migration rewrites each snapshot as a v3 anchor,
  // keeping its version.
  const CliResult migrate =
      run({"policy", "migrate", "--adl=Tea-making", "--from=" + from,
           "--out=" + out, "--to=v3"});
  EXPECT_EQ(migrate.code, 0) << migrate.err;
  EXPECT_NE(migrate.out.find("Migrated 1/1 v2 snapshots"),
            std::string::npos);
  EXPECT_NE(migrate.out.find("v3 snapshots"), std::string::npos);

  const std::string path = out + "/alice.policy";
  const CliResult fresh = run({"policy", "inspect", "--in=" + path});
  EXPECT_EQ(fresh.code, 0) << fresh.err;
  EXPECT_NE(fresh.out.find("coreda-policy v3"), std::string::npos);
  EXPECT_NE(fresh.out.find("anchor version: 3"), std::string::npos);
  EXPECT_NE(fresh.out.find("deltas since last full: 0"), std::string::npos);
  EXPECT_NE(fresh.out.find("tail: ok"), std::string::npos);

  const CliResult load =
      run({"policy", "load", "--adl=Tea-making", "--in=" + path});
  EXPECT_EQ(load.code, 0) << load.err;
  EXPECT_NE(load.out.find("v3 (binary, delta chain)"), std::string::npos);
  EXPECT_NE(load.out.find("user version 3"), std::string::npos);
  EXPECT_NE(load.out.find("100%"), std::string::npos);

  // Extend the chain through a v3-mode store: restore the migrated anchor,
  // then flush twice — one full rebase (restore drops the diff base) and
  // one appended delta.
  {
    adl::AdlLibrary library;
    planning::RoutineLearner reference(library.by_name("Tea-making"),
                                       util::Rng(1));
    serve::PolicyStoreParams params;
    params.dir = out;
    params.flush_every = 1;
    params.format = serve::SnapshotFormat::kV3Delta;
    serve::PolicyStore store(reference, params);
    const serve::UserId alice = store.add_user("alice");
    ASSERT_TRUE(store.restore(alice).has_value());
    rl::QTable q = store.q(alice);
    q.set(0, 0, q.get(0, 0) + 1.0);
    store.stage(alice, q);  // version 4: full anchor rewrite
    q.set(0, 1, q.get(0, 1) + 1.0);
    store.stage(alice, q);  // version 5: delta append
  }
  const CliResult chained = run({"policy", "inspect", "--in=" + path});
  EXPECT_EQ(chained.code, 0) << chained.err;
  EXPECT_NE(chained.out.find("anchor version: 4"), std::string::npos);
  EXPECT_NE(chained.out.find("chain version: 5"), std::string::npos);
  EXPECT_NE(chained.out.find("deltas since last full: 1"),
            std::string::npos);
  EXPECT_NE(chained.out.find("tail: ok"), std::string::npos);

  const CliResult reload =
      run({"policy", "load", "--adl=Tea-making", "--in=" + path});
  EXPECT_EQ(reload.code, 0) << reload.err;
  EXPECT_NE(reload.out.find("user version 5"), std::string::npos);

  std::filesystem::remove_all(from);
  std::filesystem::remove_all(out);
}

TEST(CliTest, PolicyMigrateRejectsBadInputs) {
  const CliResult no_flags = run({"policy", "migrate"});
  EXPECT_EQ(no_flags.code, 1);
  EXPECT_NE(no_flags.err.find("--from"), std::string::npos);

  const CliResult bad_dir =
      run({"policy", "migrate", "--adl=Tea-making",
           "--from=/nonexistent/dir", "--out=" + ::testing::TempDir() +
                                          "/cli_migrate_none"});
  EXPECT_EQ(bad_dir.code, 2);

  // An empty source directory is an operator mistake, not a no-op success.
  const std::string empty = ::testing::TempDir() + "/cli_migrate_empty";
  std::filesystem::remove_all(empty);
  std::filesystem::create_directories(empty);
  const CliResult no_snapshots =
      run({"policy", "migrate", "--adl=Tea-making", "--from=" + empty,
           "--out=" + ::testing::TempDir() + "/cli_migrate_none"});
  EXPECT_EQ(no_snapshots.code, 2);
  EXPECT_NE(no_snapshots.err.find("no *.policy"), std::string::npos);
  std::filesystem::remove_all(empty);

  // A directory that is not a segment store fails inspect cleanly too.
  const CliResult not_store =
      run({"policy", "inspect", "--in=" + ::testing::TempDir()});
  EXPECT_EQ(not_store.code, 2);
  EXPECT_NE(not_store.err.find("store.meta"), std::string::npos);
}

TEST(CliTest, PolicyRequiresKnownSubcommand) {
  const CliResult r = run({"policy", "frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("save|load|inspect|migrate"), std::string::npos);
  const CliResult missing = run({"policy", "inspect"});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("--in"), std::string::npos);
  const CliResult absent =
      run({"policy", "inspect", "--in=/nonexistent/x.policy"});
  EXPECT_EQ(absent.code, 2);
}

TEST(CliTest, ScenarioReplaysFigure1) {
  const CliResult r = run({"scenario"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("red LED"), std::string::npos);
  EXPECT_NE(r.out.find("ADL complete"), std::string::npos);
}

TEST(CliTest, ScenarioRunExecutesAPlanFile) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "cli_plan.scenario")
          .string();
  {
    std::ofstream out(path);
    out << "seed = 5\nusers = 2\nhint = Tea-making\n\n"
           "[segment Tea-making]\nsteps = 2\n\n"
           "[segment Tooth-brushing]\n\n"
           "[segment Tea-making]\nresume = true\n";
  }
  const CliResult r = run({"scenario", "run", path, "--jobs=2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("sessions=2"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("checksum="), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, ScenarioCheckPrintsTheCanonicalForm) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "cli_check.scenario")
          .string();
  {
    std::ofstream out(path);
    out << "seed = 9\n\n[segment Hand-washing]\n";
  }
  const CliResult r = run({"scenario", "check", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("# coreda scenario plan v1"), std::string::npos);
  EXPECT_NE(r.out.find("[segment Hand-washing]"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, ScenarioRunAndCheckValidateTheirInputs) {
  EXPECT_EQ(run({"scenario", "run"}).code, 1);
  EXPECT_EQ(run({"scenario", "run", "/no/such/file.scenario"}).code, 1);
  EXPECT_EQ(run({"scenario", "check"}).code, 1);
  EXPECT_EQ(run({"scenario", "wibble"}).code, 1);
}

TEST(CliTest, HomeRunsMultiAdlSessions) {
  const CliResult r = run({"home", "--sessions=3", "--severity=0.3",
                           "--hints"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Multi-ADL home sessions"), std::string::npos);
  EXPECT_NE(r.out.find("Tea-making"), std::string::npos);
}

TEST(CliTest, ReportProducesTable) {
  const CliResult r = run({"report", "--days=2"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Caregiver summary"), std::string::npos);
  EXPECT_NE(r.out.find("Tooth-brushing"), std::string::npos);
}

TEST(CliTest, RetrainClosesTheLoopAndReportsFullRecovery) {
  const CliResult r = run({"retrain", "--users=8", "--slots=2",
                           "--drifted=2", "--rounds=8", "--jobs=2"});
  EXPECT_EQ(r.code, 0) << r.out << r.err;  // 0 iff every drifted recovered
  EXPECT_NE(r.out.find("Closed-loop drift recovery"), std::string::npos);
  EXPECT_NE(r.out.find("2/2 drifted users recovered"), std::string::npos);

  // Same fleet, same rounds, different worker count: the whole report is
  // byte-identical.
  const CliResult serial = run({"retrain", "--users=8", "--slots=2",
                                "--drifted=2", "--rounds=8", "--jobs=1"});
  EXPECT_EQ(serial.code, 0);
  EXPECT_EQ(serial.out, r.out);
}

TEST(CliTest, RetrainValidatesItsFlags) {
  const CliResult r = run({"retrain", "--users=2", "--drifted=5"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--drifted"), std::string::npos);
}

TEST(CliTest, FaultsRequiresASubcommand) {
  const CliResult r = run({"faults"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("plan|replay"), std::string::npos);
}

TEST(CliTest, FaultsPlanDumpsAndReplayConsumesIt) {
  // `faults plan` with no --out writes the plan text to stdout.
  const CliResult dumped = run({"faults", "plan", "--seed=9", "--rounds=2"});
  EXPECT_EQ(dumped.code, 0) << dumped.err;
  EXPECT_NE(dumped.out.find("seed = 9"), std::string::npos);
  EXPECT_NE(dumped.out.find("[site segment_store.pre_publish]"),
            std::string::npos);

  // With --out it lands in a file that `faults replay --plan=` accepts.
  const std::string plan_path = ::testing::TempDir() + "/cli_chaos.plan";
  const std::string dir = ::testing::TempDir() + "/cli_faults_replay";
  std::filesystem::remove_all(dir);
  const CliResult saved = run({"faults", "plan", "--seed=9", "--rounds=2",
                               "--out=" + plan_path});
  EXPECT_EQ(saved.code, 0) << saved.err;

  const CliResult replay =
      run({"faults", "replay", "--plan=" + plan_path, "--users=48",
           "--active=24", "--rounds=2", "--tail-rounds=1", "--jobs=2",
           "--dir=" + dir});
  EXPECT_EQ(replay.code, 0) << replay.out << replay.err;
  // The per-site injection log names the seams and the summary proves the
  // soak both injected faults and held its invariants.
  EXPECT_NE(replay.out.find("Per-site injection log"), std::string::npos);
  EXPECT_NE(replay.out.find("segment_store.pre_publish"), std::string::npos);
  EXPECT_NE(replay.out.find("radio.loss_burst"), std::string::npos);
  EXPECT_NE(replay.out.find("0 invariant violations"), std::string::npos);

  // Replay means replay: the same {seed, plan} at a different job count
  // prints the identical report.
  std::filesystem::remove_all(dir);
  const CliResult serial =
      run({"faults", "replay", "--plan=" + plan_path, "--users=48",
           "--active=24", "--rounds=2", "--tail-rounds=1", "--jobs=1",
           "--dir=" + dir});
  EXPECT_EQ(serial.code, 0);
  EXPECT_EQ(serial.out, replay.out);
}

TEST(CliTest, FaultsReplayRejectsAMalformedPlan) {
  const std::string plan_path = ::testing::TempDir() + "/cli_bad.plan";
  {
    std::ofstream file(plan_path);
    file << "seed = 1\n[site x]\nrate = not-a-number\n";
  }
  const CliResult r = run({"faults", "replay", "--plan=" + plan_path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace coreda::cli
