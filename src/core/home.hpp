#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "recognition/recognizer.hpp"
#include "recognition/tracker.hpp"

namespace coreda::core {

/// Outcome of one multi-ADL session.
struct HomeSessionResult {
  /// What the resident actually attempted.
  std::string actual_adl;
  /// What the tracker announced (empty if never recognized).
  std::string recognized_adl;
  bool recognized_correctly = false;
  /// Sensed steps consumed before the announcement.
  std::size_t steps_to_recognition = 0;
  bool completed = false;
  sim::Duration elapsed;
  std::size_t prompts_total = 0;
  std::size_t praises = 0;
  /// Wrong-tool prompts the resident subsequently corrected (the praise
  /// that closed an outstanding prompt followed a wrong-tool trigger).
  std::size_t wrong_tool_recoveries = 0;
  /// Recognition-gated mid-episode activity switches the deployment acted
  /// on (0 unless switching is enabled via set_tracker_params()).
  std::size_t segment_switches = 0;
};

/// One part of a scripted multi-ADL session: a segment of an ADL
/// (`adl` non-empty) or a caregiver interruption (`adl` empty, `pause` > 0).
struct ScriptPart {
  std::string adl;
  /// Steps to attempt in this segment; 0 = the rest of the routine.
  std::size_t steps = 0;
  /// Continue from this ADL's progress saved by an earlier segment.
  bool resume = false;
  /// Forced freeze decisions injected before the segment's first step.
  std::size_t freeze = 0;
  /// Forced wrong-tool grabs injected before the segment's first step.
  std::size_t wrong_tool = 0;
  /// Tool grabbed by forced wrong-tool decisions (kNoTool = random).
  adl::ToolId wrong_tool_id = adl::kNoTool;
  /// Interruption length (only read when `adl` is empty).
  sim::Duration pause;
};

/// A scripted multi-ADL session: the resident interleaves ADL segments and
/// caregiver interruptions inside ONE continuous session.
struct SessionScript {
  std::vector<ScriptPart> parts;
  /// Schedule hint applied before the first segment (as in run_session).
  std::string hint;
};

/// Outcome of one scripted session.
struct HomeScriptResult {
  /// Counters aggregated across all segments (prompts, praises, switches,
  /// recoveries, elapsed). `actual_adl` holds the last segment's ADL.
  HomeSessionResult session;
  std::size_t segments = 0;
  std::size_t segments_completed = 0;
  /// Episodes the tracker closed on an idle gap during the run (a long
  /// caregiver interruption closes one; a recognition-gated switch or a
  /// short interruption does not).
  std::size_t idle_episodes = 0;
  /// Every segment reached its step target before the deadline.
  bool completed = false;
};

/// A whole-home CoReDA deployment: every tool of every ADL carries a node
/// on one shared radio; the server first *recognizes* which ADL the
/// resident started (recognition::ActivityTracker) and only then routes
/// the StepID stream to that ADL's planner and reminding loop.
///
/// This closes the gap the single-ADL prototype leaves open: the paper's
/// CoReDA assumes the active ADL is known out-of-band. Recognition is the
/// capability its related work cites from Philipose et al. [2].
class HomeDeployment {
 public:
  /// Deploys nodes on every tool of every ADL in `library` (which must
  /// outlive the deployment).
  HomeDeployment(const adl::AdlLibrary& library,
                 SystemConfig config = SystemConfig());

  /// Trains the recognizer and every ADL's planner from sensed recordings
  /// (`episodes_per_adl` processes of each ADL).
  void pretrain(std::size_t episodes_per_adl, std::uint64_t dataset_seed);

  /// Runs one closed-loop session: the resident attempts `adl_name`; the
  /// system recognizes the activity from the usage stream, then assists.
  ///
  /// `schedule_hint` (optional) names the ADL the care plan expects at this
  /// time of day (an Autominder-style temporal prior, Pollack et al. [3]).
  /// With a hint the system provisionally activates that ADL's planner at
  /// session start, so even a resident who freezes before touching any tool
  /// gets a first-step prompt; the recognizer's announcement overrides the
  /// hint if the usage stream says otherwise. Without a hint, assistance
  /// starts only after recognition — a resident who never starts is not
  /// prompted (the un-hinted system cannot know what they intended).
  HomeSessionResult run_session(const std::string& adl_name,
                                const patient::PatientProfile& profile,
                                sim::Duration max_duration,
                                const std::string& schedule_hint = "");

  /// Runs one continuous scripted session: the resident works through the
  /// script's ADL segments and interruptions without the session ever
  /// ending in between — the tracker's episode stays open across segment
  /// boundaries, the recognizer announces mid-episode switches (enable
  /// them via set_tracker_params()), and each ADL's planner context and
  /// step progress are saved when the resident walks away and restored
  /// when a later segment returns to that ADL. This is the serving shape
  /// of interleaved daily life (start the tea, brush teeth while the
  /// kettle heats, come back) that single-ADL run_session() cannot model.
  HomeScriptResult run_script(const SessionScript& script,
                              const patient::PatientProfile& profile,
                              sim::Duration max_duration);

  /// Replaces the activity tracker's parameters (e.g. to enable
  /// recognition-gated switching). Must not be called mid-session; resets
  /// episode/switch counters.
  void set_tracker_params(const recognition::ActivityTracker::Params& params);

  /// Replaces one ADL's policy table (restore from a snapshot/bundle).
  /// Throws std::out_of_range for unknown ADLs, std::invalid_argument on a
  /// dimension mismatch.
  void import_policy(const std::string& adl_name, const rl::QTable& q);

  /// Replaces the recognition model with a pretrained donor's — serving
  /// pools train recognition once and share it across slots instead of
  /// re-training per user. Closes any open tracker episode first.
  void adopt_recognizer(const recognition::AdlRecognizer& donor);

  const recognition::AdlRecognizer& recognizer() const noexcept {
    return recognizer_;
  }
  const planning::RoutineLearner& learner(const std::string& adl) const;
  const reminding::RemindingSubsystem& reminder() const noexcept {
    return *reminder_;
  }
  sim::Scheduler& scheduler() noexcept { return scheduler_; }

 private:
  void on_usage(adl::ToolId tool, sim::TimePoint at);
  void on_activity(const std::string& adl_name, sim::TimePoint at);
  void activate(const std::string& adl_name);
  void on_trigger(reminding::Trigger trigger, adl::ToolId observed);
  void arm_for_next();

  const adl::AdlLibrary* library_;
  SystemConfig config_;
  util::Rng rng_;

  sim::Scheduler scheduler_;
  sensors::ManipulationWorld world_;
  std::unique_ptr<pavenet::RadioChannel> channel_;
  std::unique_ptr<pavenet::BaseStation> station_;
  std::vector<std::unique_ptr<pavenet::PavenetNode>> nodes_;
  std::map<std::string, std::unique_ptr<planning::RoutineLearner>> learners_;
  recognition::AdlRecognizer recognizer_;
  std::unique_ptr<recognition::ActivityTracker> tracker_;
  std::unique_ptr<reminding::RemindingSubsystem> reminder_;
  std::unique_ptr<reminding::TriggerMonitor> trigger_;
  std::unique_ptr<patient::PatientActor> actor_;

  // Per-session state.
  bool session_active_ = false;
  const adl::Adl* active_adl_ = nullptr;        ///< recognized activity
  planning::RoutineLearner* active_learner_ = nullptr;
  /// Non-empty while the active ADL came from the schedule hint and has
  /// not been confirmed or overridden by recognition.
  std::string provisional_hint_;
  adl::StepId prev_ = adl::kIdleStep;
  adl::StepId cur_ = adl::kIdleStep;
  bool prompt_outstanding_ = false;
  /// The outstanding prompt was fired by a wrong-tool trigger; the praise
  /// that clears it counts as a wrong-tool recovery.
  bool wrong_tool_prompted_ = false;
  HomeSessionResult* result_ = nullptr;

  /// Planner context of an ADL the resident switched away from, restored
  /// when a later segment returns to it (scripted sessions only; cleared
  /// per session).
  struct AdlContext {
    adl::StepId prev = adl::kIdleStep;
    adl::StepId cur = adl::kIdleStep;
  };
  std::map<std::string, AdlContext> contexts_;
  /// Steps completed per ADL across this script's segments (resume).
  std::map<std::string, std::size_t> progress_;
};

}  // namespace coreda::core
