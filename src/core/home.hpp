#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "recognition/recognizer.hpp"
#include "recognition/tracker.hpp"

namespace coreda::core {

/// Outcome of one multi-ADL session.
struct HomeSessionResult {
  /// What the resident actually attempted.
  std::string actual_adl;
  /// What the tracker announced (empty if never recognized).
  std::string recognized_adl;
  bool recognized_correctly = false;
  /// Sensed steps consumed before the announcement.
  std::size_t steps_to_recognition = 0;
  bool completed = false;
  sim::Duration elapsed;
  std::size_t prompts_total = 0;
  std::size_t praises = 0;
};

/// A whole-home CoReDA deployment: every tool of every ADL carries a node
/// on one shared radio; the server first *recognizes* which ADL the
/// resident started (recognition::ActivityTracker) and only then routes
/// the StepID stream to that ADL's planner and reminding loop.
///
/// This closes the gap the single-ADL prototype leaves open: the paper's
/// CoReDA assumes the active ADL is known out-of-band. Recognition is the
/// capability its related work cites from Philipose et al. [2].
class HomeDeployment {
 public:
  /// Deploys nodes on every tool of every ADL in `library` (which must
  /// outlive the deployment).
  HomeDeployment(const adl::AdlLibrary& library,
                 SystemConfig config = SystemConfig());

  /// Trains the recognizer and every ADL's planner from sensed recordings
  /// (`episodes_per_adl` processes of each ADL).
  void pretrain(std::size_t episodes_per_adl, std::uint64_t dataset_seed);

  /// Runs one closed-loop session: the resident attempts `adl_name`; the
  /// system recognizes the activity from the usage stream, then assists.
  ///
  /// `schedule_hint` (optional) names the ADL the care plan expects at this
  /// time of day (an Autominder-style temporal prior, Pollack et al. [3]).
  /// With a hint the system provisionally activates that ADL's planner at
  /// session start, so even a resident who freezes before touching any tool
  /// gets a first-step prompt; the recognizer's announcement overrides the
  /// hint if the usage stream says otherwise. Without a hint, assistance
  /// starts only after recognition — a resident who never starts is not
  /// prompted (the un-hinted system cannot know what they intended).
  HomeSessionResult run_session(const std::string& adl_name,
                                const patient::PatientProfile& profile,
                                sim::Duration max_duration,
                                const std::string& schedule_hint = "");

  const recognition::AdlRecognizer& recognizer() const noexcept {
    return recognizer_;
  }
  const planning::RoutineLearner& learner(const std::string& adl) const;
  const reminding::RemindingSubsystem& reminder() const noexcept {
    return *reminder_;
  }
  sim::Scheduler& scheduler() noexcept { return scheduler_; }

 private:
  void on_usage(adl::ToolId tool, sim::TimePoint at);
  void on_activity(const std::string& adl_name, sim::TimePoint at);
  void activate(const std::string& adl_name);
  void on_trigger(reminding::Trigger trigger, adl::ToolId observed);
  void arm_for_next();

  const adl::AdlLibrary* library_;
  SystemConfig config_;
  util::Rng rng_;

  sim::Scheduler scheduler_;
  sensors::ManipulationWorld world_;
  std::unique_ptr<pavenet::RadioChannel> channel_;
  std::unique_ptr<pavenet::BaseStation> station_;
  std::vector<std::unique_ptr<pavenet::PavenetNode>> nodes_;
  std::map<std::string, std::unique_ptr<planning::RoutineLearner>> learners_;
  recognition::AdlRecognizer recognizer_;
  std::unique_ptr<recognition::ActivityTracker> tracker_;
  std::unique_ptr<reminding::RemindingSubsystem> reminder_;
  std::unique_ptr<reminding::TriggerMonitor> trigger_;
  std::unique_ptr<patient::PatientActor> actor_;

  // Per-session state.
  bool session_active_ = false;
  const adl::Adl* active_adl_ = nullptr;        ///< recognized activity
  planning::RoutineLearner* active_learner_ = nullptr;
  /// Non-empty while the active ADL came from the schedule hint and has
  /// not been confirmed or overridden by recognition.
  std::string provisional_hint_;
  adl::StepId prev_ = adl::kIdleStep;
  adl::StepId cur_ = adl::kIdleStep;
  bool prompt_outstanding_ = false;
  HomeSessionResult* result_ = nullptr;
};

}  // namespace coreda::core
