#include "core/home.hpp"

#include <algorithm>
#include <stdexcept>

#include "reminding/catalog.hpp"
#include "trace/dataset.hpp"

namespace coreda::core {

HomeDeployment::HomeDeployment(const adl::AdlLibrary& library,
                               SystemConfig config)
    : library_(&library), config_(std::move(config)), rng_(config_.seed) {
  // Wrong-tool errors draw from the whole registry; provision the world's
  // episode table for every tool so first touches never allocate mid-session.
  adl::ToolId max_tool = 0;
  for (const adl::Tool& tool : library_->tools().tools()) {
    max_tool = std::max(max_tool, tool.id);
  }
  world_.provision(static_cast<std::size_t>(max_tool) + 1);
  channel_ = std::make_unique<pavenet::RadioChannel>(scheduler_, rng_.fork(),
                                                     config_.radio);
  station_ = std::make_unique<pavenet::BaseStation>(scheduler_, *channel_,
                                                    config_.station);
  // One node per tool across the whole catalog.
  for (const adl::Tool& tool : library_->tools().tools()) {
    nodes_.push_back(std::make_unique<pavenet::PavenetNode>(
        tool, scheduler_, world_, *channel_, rng_.fork(),
        config_.firmware));
    nodes_.back()->power_on();
  }
  for (const adl::Adl& adl : library_->adls()) {
    learners_[adl.name()] = std::make_unique<planning::RoutineLearner>(
        adl, rng_.fork(), config_.learner);
  }
  reminder_ = std::make_unique<reminding::RemindingSubsystem>(
      *station_, library_->tools(),
      reminding::MessageCatalog(config_.user_name), config_.reminding);
  // Bind-once hookup, as in CoredaSystem: no per-event std::function hops.
  trigger_ = std::make_unique<reminding::TriggerMonitor>(
      scheduler_,
      reminding::TriggerMonitor::Callback::bind<&HomeDeployment::on_trigger>(
          this),
      config_.trigger);
  tracker_ = std::make_unique<recognition::ActivityTracker>(
      recognizer_,
      recognition::ActivityTracker::ActivityCallback::bind<
          &HomeDeployment::on_activity>(this));
  station_->add_listener(
      pavenet::BaseStation::UsageListener::bind<&HomeDeployment::on_usage>(
          this));
}

void HomeDeployment::pretrain(std::size_t episodes_per_adl,
                              std::uint64_t dataset_seed) {
  for (const adl::Adl& adl : library_->adls()) {
    trace::DatasetBuilder datasets(
        *library_, patient::PatientProfile::with_severity("User", 0.0),
        dataset_seed + std::hash<std::string>{}(adl.name()) % 1000);
    const auto episodes =
        datasets.sensed_training_set(adl, episodes_per_adl);
    planning::RoutineLearner& learner = *learners_.at(adl.name());
    for (const auto& ep : episodes) {
      learner.train_episode(ep);
      recognizer_.train(adl.name(), ep);
    }
  }
}

const planning::RoutineLearner& HomeDeployment::learner(
    const std::string& adl) const {
  const auto it = learners_.find(adl);
  if (it == learners_.end()) {
    throw std::out_of_range("HomeDeployment: unknown ADL '" + adl + "'");
  }
  return *it->second;
}

HomeSessionResult HomeDeployment::run_session(
    const std::string& adl_name, const patient::PatientProfile& profile,
    sim::Duration max_duration, const std::string& schedule_hint) {
  const adl::Adl& attempted = library_->by_name(adl_name);
  if (!schedule_hint.empty()) {
    library_->by_name(schedule_hint);  // validate before starting
  }

  if (actor_ == nullptr) {
    actor_ = std::make_unique<patient::PatientActor>(
        scheduler_, world_, library_->tools(), profile, rng_.fork());
  } else {
    actor_->reset(profile, rng_.fork());
  }

  HomeSessionResult result;
  result.actual_adl = adl_name;
  result_ = &result;
  session_active_ = true;
  active_adl_ = nullptr;
  active_learner_ = nullptr;
  prev_ = adl::kIdleStep;
  cur_ = adl::kIdleStep;
  prompt_outstanding_ = false;
  wrong_tool_prompted_ = false;
  contexts_.clear();
  progress_.clear();
  tracker_->close_episode();
  station_->reset_usage_history();
  reminder_->begin_session();
  for (const auto& node : nodes_) {
    node->led().all_off();
    node->led().clear_history();
  }

  const sim::TimePoint start = scheduler_.now();
  const sim::TimePoint deadline = start + max_duration;

  actor_->begin(attempted.primary_routine());
  provisional_hint_.clear();
  if (!schedule_hint.empty()) {
    // Provisional activation from the care schedule: prompts can flow
    // before (or without) recognition. Recognition overrides it, but only
    // on solid evidence (see on_activity).
    activate(schedule_hint);
    provisional_hint_ = schedule_hint;
    arm_for_next();
  }
  while (!actor_->finished() && scheduler_.now() < deadline &&
         !scheduler_.empty()) {
    scheduler_.run(1);
  }

  trigger_->disarm();
  session_active_ = false;
  result_ = nullptr;

  result.completed = actor_->finished();
  result.elapsed = scheduler_.now() - start;
  return result;
}

HomeScriptResult HomeDeployment::run_script(
    const SessionScript& script, const patient::PatientProfile& profile,
    sim::Duration max_duration) {
  // Validate every named ADL before touching any session state.
  std::size_t total_segments = 0;
  for (const ScriptPart& part : script.parts) {
    if (!part.adl.empty()) {
      library_->by_name(part.adl);
      ++total_segments;
    }
  }
  if (!script.hint.empty()) library_->by_name(script.hint);

  if (actor_ == nullptr) {
    actor_ = std::make_unique<patient::PatientActor>(
        scheduler_, world_, library_->tools(), profile, rng_.fork());
  } else {
    actor_->reset(profile, rng_.fork());
  }

  HomeScriptResult out;
  HomeSessionResult session;
  result_ = &session;
  session_active_ = true;
  active_adl_ = nullptr;
  active_learner_ = nullptr;
  provisional_hint_.clear();
  prev_ = adl::kIdleStep;
  cur_ = adl::kIdleStep;
  prompt_outstanding_ = false;
  wrong_tool_prompted_ = false;
  contexts_.clear();
  progress_.clear();
  tracker_->close_episode();
  station_->reset_usage_history();
  reminder_->begin_session();
  for (const auto& node : nodes_) {
    node->led().all_off();
    node->led().clear_history();
  }

  const sim::TimePoint start = scheduler_.now();
  const sim::TimePoint deadline = start + max_duration;
  const std::size_t episodes_before = tracker_->episodes_seen();

  bool first_segment = true;
  for (const ScriptPart& part : script.parts) {
    if (scheduler_.now() >= deadline) break;

    if (part.adl.empty()) {
      // Caregiver interruption: the resident stops acting while simulated
      // time advances. A pause longer than the tracker's idle gap closes
      // the episode (the next segment is a fresh recognition); a short one
      // keeps the episode — and the active planner context — alive.
      actor_->pause();
      trigger_->disarm();
      prompt_outstanding_ = false;
      const sim::TimePoint resume_at =
          std::min(scheduler_.now() + part.pause, deadline);
      // Anchor event so the drain below reaches resume_at even when the
      // node sampling queue would otherwise run dry.
      scheduler_.schedule_at(resume_at, [] {});
      while (scheduler_.now() < resume_at && !scheduler_.empty()) {
        scheduler_.run(1);
      }
      continue;
    }

    const adl::Adl& attempted = library_->by_name(part.adl);
    const adl::AdlRoutine& routine = attempted.primary_routine();
    const std::size_t from =
        part.resume ? std::min(progress_[part.adl], routine.size()) : 0;
    const std::size_t target =
        part.steps == 0 ? routine.size()
                        : std::min(from + part.steps, routine.size());
    ++out.segments;
    session.actual_adl = part.adl;  // the ADL currently attempted
    for (std::size_t i = 0; i < part.freeze; ++i) {
      actor_->force_next_decision(patient::PatientEvent::Kind::kFroze);
    }
    for (std::size_t i = 0; i < part.wrong_tool; ++i) {
      actor_->force_next_decision(patient::PatientEvent::Kind::kWrongTool,
                                  part.wrong_tool_id);
    }
    actor_->begin(routine, from);
    if (first_segment) {
      first_segment = false;
      if (!script.hint.empty()) {
        activate(script.hint);
        provisional_hint_ = script.hint;
        arm_for_next();
      }
    }
    while (!actor_->finished() && actor_->steps_completed() < target &&
           scheduler_.now() < deadline && !scheduler_.empty()) {
      scheduler_.run(1);
    }
    progress_[part.adl] = actor_->steps_completed();
    actor_->pause();
    // A trigger armed for this segment must not fire into the next one.
    trigger_->disarm();
    prompt_outstanding_ = false;
    if (actor_->steps_completed() >= target) ++out.segments_completed;
  }

  trigger_->disarm();
  session_active_ = false;
  result_ = nullptr;

  session.elapsed = scheduler_.now() - start;
  out.completed = out.segments_completed == total_segments;
  session.completed = out.completed;
  // episodes_seen counts episode *opens*; the first open of the run is the
  // session starting, every further one means an idle gap closed the
  // previous episode mid-script.
  const std::size_t opened = tracker_->episodes_seen() - episodes_before;
  out.idle_episodes = opened > 0 ? opened - 1 : 0;
  out.session = session;
  return out;
}

void HomeDeployment::set_tracker_params(
    const recognition::ActivityTracker::Params& params) {
  tracker_ = std::make_unique<recognition::ActivityTracker>(
      recognizer_,
      recognition::ActivityTracker::ActivityCallback::bind<
          &HomeDeployment::on_activity>(this),
      params);
}

void HomeDeployment::import_policy(const std::string& adl_name,
                                   const rl::QTable& q) {
  const auto it = learners_.find(adl_name);
  if (it == learners_.end()) {
    throw std::out_of_range("HomeDeployment: unknown ADL '" + adl_name +
                            "'");
  }
  it->second->import_q(q);
}

void HomeDeployment::adopt_recognizer(
    const recognition::AdlRecognizer& donor) {
  // The tracker's announced activity points into the old model table.
  tracker_->close_episode();
  recognizer_ = donor;
}

void HomeDeployment::on_usage(adl::ToolId tool, sim::TimePoint at) {
  if (!session_active_ || result_ == nullptr) return;

  // Recognition first: the tracker announces the activity via
  // on_activity() once confident.
  tracker_->observe(tool, at);

  if (active_learner_ == nullptr) return;  // not recognized yet

  // From here on, the single-ADL CoReDA loop (see CoredaSystem) applies,
  // except that StepIDs outside the recognized ADL's vocabulary are
  // ignored (another room's sensor noise must not derail the session).
  const auto vocabulary = active_adl_->tools();
  if (std::find(vocabulary.begin(), vocabulary.end(), tool) ==
      vocabulary.end()) {
    return;
  }

  if (trigger_->armed()) {
    if (trigger_->notify_usage(tool)) {
      if (prompt_outstanding_) {
        reminder_->praise(scheduler_.now(), tool);
        ++result_->praises;
        if (wrong_tool_prompted_) {
          ++result_->wrong_tool_recoveries;
          wrong_tool_prompted_ = false;
        }
        prompt_outstanding_ = false;
      }
      prev_ = cur_;
      cur_ = tool;
      if (!active_adl_->primary_routine().is_terminal(tool)) arm_for_next();
    }
    return;
  }

  if (cur_ == adl::kIdleStep) {
    cur_ = tool;
    arm_for_next();
  }
}

void HomeDeployment::activate(const std::string& adl_name) {
  active_adl_ = &library_->by_name(adl_name);
  active_learner_ = learners_.at(adl_name).get();
  prev_ = adl::kIdleStep;
  cur_ = adl::kIdleStep;
  prompt_outstanding_ = false;
  wrong_tool_prompted_ = false;
}

void HomeDeployment::on_activity(const std::string& adl_name,
                                 sim::TimePoint /*at*/) {
  if (!session_active_ || result_ == nullptr) return;

  const bool was_provisional = !provisional_hint_.empty();
  if (was_provisional && adl_name != provisional_hint_) {
    // Overriding the care schedule needs more than one observation: a
    // single off-activity tool is exactly what the wrong-tool error mode
    // produces, and prompting the wrong ADL is self-reinforcing (the
    // compliant resident follows the prompts, manufacturing evidence).
    const auto vocabulary = library_->by_name(adl_name).tools();
    std::size_t supporting = 0;
    for (adl::StepId s : tracker_->episode_steps()) {
      if (std::find(vocabulary.begin(), vocabulary.end(), s) !=
          vocabulary.end()) {
        ++supporting;
      }
    }
    if (supporting < 2) {
      tracker_->retract();  // re-announce when more evidence accumulates
      return;
    }
  }
  provisional_hint_.clear();

  result_->recognized_adl = adl_name;
  result_->recognized_correctly = adl_name == result_->actual_adl;
  result_->steps_to_recognition = tracker_->episode_steps().size();

  if (!was_provisional && active_adl_ != nullptr &&
      adl_name != active_adl_->name()) {
    // Recognition-gated mid-episode switch: park the outgoing ADL's
    // planner context so a later return to it resumes exactly where the
    // resident left off. (A hint override is recognition *correcting* a
    // provisional guess, not a switch; its context is speculative.)
    ++result_->segment_switches;
    contexts_[active_adl_->name()] = AdlContext{prev_, cur_};
  }

  activate(adl_name);

  if (const auto it = contexts_.find(adl_name); it != contexts_.end()) {
    // Returning to an ADL served earlier this session: its saved context
    // beats re-deriving one from episode steps, which by now are dominated
    // by the *other* activity's tools.
    prev_ = it->second.prev;
    cur_ = it->second.cur;
    arm_for_next();
    return;
  }

  // Seed the planner context from the steps observed so far (the tracker
  // kept them while recognition was pending), restricted to the announced
  // ADL's vocabulary — wrong-tool intrusions must not poison the context.
  const auto vocabulary = active_adl_->tools();
  std::vector<adl::StepId> in_vocab;
  for (adl::StepId s : tracker_->episode_steps()) {
    if (std::find(vocabulary.begin(), vocabulary.end(), s) !=
        vocabulary.end()) {
      in_vocab.push_back(s);
    }
  }
  prev_ = in_vocab.size() >= 2 ? in_vocab[in_vocab.size() - 2]
                               : adl::kIdleStep;
  cur_ = in_vocab.empty() ? adl::kIdleStep : in_vocab.back();
  arm_for_next();
}

void HomeDeployment::arm_for_next() {
  if (active_learner_ == nullptr) return;
  const auto prompt = active_learner_->predict(prev_, cur_);
  if (!prompt) return;
  sim::Duration timeout{};
  if (cur_ != adl::kIdleStep) {
    timeout = trigger_->timeout_for(library_->tools().at(cur_));
  }
  trigger_->arm(prompt->action.tool, timeout);
}

void HomeDeployment::on_trigger(reminding::Trigger trigger,
                                adl::ToolId observed) {
  if (!session_active_ || active_learner_ == nullptr ||
      result_ == nullptr) {
    return;
  }
  const auto prompt = active_learner_->predict(prev_, cur_);
  if (!prompt) return;

  planning::RemindingLevel level = prompt->action.level;
  if (config_.escalate_reprompts && prompt_outstanding_) {
    level = planning::RemindingLevel::kSpecific;
  }
  reminder_->remind(scheduler_.now(), trigger, prompt->action.tool, level,
                    trigger == reminding::Trigger::kWrongTool
                        ? std::optional<adl::ToolId>(observed)
                        : std::nullopt);
  ++result_->prompts_total;
  prompt_outstanding_ = true;
  wrong_tool_prompted_ = trigger == reminding::Trigger::kWrongTool;
  actor_->receive_prompt(prompt->action.tool, level);
}

}  // namespace coreda::core
