#include "core/system.hpp"

#include <algorithm>

#include "reminding/catalog.hpp"

namespace coreda::core {

CoredaSystem::CoredaSystem(const adl::AdlLibrary& library,
                           const adl::Adl& adl, SystemConfig config)
    : library_(&library),
      adl_(&adl),
      config_(std::move(config)),
      rng_(config_.seed) {
  // The patient can grab any registered tool (wrong-tool errors draw from
  // the whole registry), so provision the world's episode table for all of
  // them — first touches then never allocate at serving time.
  adl::ToolId max_tool = 0;
  for (const adl::Tool& tool : library_->tools().tools()) {
    max_tool = std::max(max_tool, tool.id);
  }
  world_.provision(static_cast<std::size_t>(max_tool) + 1);
  // Same rationale for every lazily-grown simulation container: pay the
  // high-water capacity here, once, instead of inside a slot's first timed
  // session. 256 pending events / 16 in-flight frames sit well above what
  // the busiest session of any bench or test reaches.
  scheduler_.reserve(256);
  channel_ = std::make_unique<pavenet::RadioChannel>(scheduler_, rng_.fork(),
                                                     config_.radio);
  channel_->reserve(16);
  station_ = std::make_unique<pavenet::BaseStation>(scheduler_, *channel_,
                                                    config_.station);
  station_->provision_tools(static_cast<std::size_t>(max_tool) + 1);
  for (adl::ToolId id : adl_->tools()) {
    nodes_.push_back(std::make_unique<pavenet::PavenetNode>(
        library_->tools().at(id), scheduler_, world_, *channel_, rng_.fork(),
        config_.firmware));
    nodes_.back()->power_on();
  }
  learner_ = std::make_unique<planning::RoutineLearner>(*adl_, rng_.fork(),
                                                        config_.learner);
  reminder_ = std::make_unique<reminding::RemindingSubsystem>(
      *station_, library_->tools(),
      reminding::MessageCatalog(config_.user_name), config_.reminding);
  // Bind-once hookup: FnRefs straight at the member functions, so the
  // per-event dispatch chain never re-wraps a std::function.
  trigger_ = std::make_unique<reminding::TriggerMonitor>(
      scheduler_,
      reminding::TriggerMonitor::Callback::bind<&CoredaSystem::on_trigger>(
          this),
      config_.trigger);
  station_->add_listener(
      pavenet::BaseStation::UsageListener::bind<&CoredaSystem::on_usage>(
          this));
  // Build the actor warm with a placeholder profile and a throwaway Rng —
  // NOT rng_.fork(), which would shift every downstream stream. Every
  // session (including the very first) then takes the reset path below with
  // exactly one fork, so construction order cannot change any outcome, and
  // a slot's first serve inside a timed drain no longer pays the actor's
  // allocations (the dedicated-slot allocs_per_session artifact).
  actor_ = std::make_unique<patient::PatientActor>(
      scheduler_, world_, library_->tools(), patient::PatientProfile{},
      util::Rng());
}

const pavenet::PavenetNode& CoredaSystem::node(adl::ToolId tool) const {
  for (const auto& n : nodes_) {
    if (n->uid() == tool) return *n;
  }
  throw std::out_of_range("CoredaSystem: no node on tool " +
                          std::to_string(tool));
}

void CoredaSystem::pretrain(
    std::span<const std::vector<adl::StepId>> episodes) {
  for (const auto& ep : episodes) learner_->train_episode(ep);
}

void CoredaSystem::import_policy(const rl::QTable& q) {
  learner_->import_q(q);
}

SessionResult CoredaSystem::run_session(
    const patient::PatientProfile& profile, sim::Duration max_duration) {
  return run_session(profile, max_duration, {});
}

SessionResult CoredaSystem::run_session(
    const patient::PatientProfile& profile, sim::Duration max_duration,
    const std::function<void(patient::PatientActor&)>& setup) {
  run_session_inplace(profile, max_duration, setup, scratch_result_);
  return scratch_result_;
}

void CoredaSystem::run_session_inplace(
    const patient::PatientProfile& profile, sim::Duration max_duration,
    const std::function<void(patient::PatientActor&)>& setup,
    SessionResult& result) {
  // Reset, don't rebuild: the actor keeps its event buffer, the station its
  // episode table, the reminder its string pools. Only the RNG stream moves
  // forward (one fork per session, exactly as before).
  actor_->reset(profile, rng_.fork());
  if (setup) setup(*actor_);

  result.completed = false;
  result.elapsed = sim::Duration{};
  result.steps_completed = 0;
  result.prompts_total = 0;
  result.prompts_idle = 0;
  result.prompts_wrong_tool = 0;
  result.prompts_minimal = 0;
  result.prompts_specific = 0;
  result.praises = 0;
  result.observed_steps.clear();
  // Step counts vary session to session; pre-size past the worst realistic
  // session once so recording steps never reallocates a warm result buffer.
  if (result.observed_steps.capacity() < kMaxSessionSteps) {
    result.observed_steps.reserve(kMaxSessionSteps);
  }

  result_ = &result;
  session_active_ = true;
  prev_ = adl::kIdleStep;
  cur_ = adl::kIdleStep;
  prompt_outstanding_ = false;
  station_->reset_usage_history();
  reminder_->begin_session();
  // LED state and transcripts are per-session, like the reminder log:
  // all_off() cancels any blink series still running from the previous
  // session (otherwise leftover toggles pile into the next session's event
  // queue and history), and clearing keeps the history vectors' capacity,
  // so a warm session records for free.
  for (const auto& node : nodes_) {
    node->led().all_off();
    node->led().clear_history();
  }

  const sim::TimePoint start = scheduler_.now();
  const sim::TimePoint deadline = start + max_duration;

  actor_->begin(adl_->primary_routine());
  // The planner knows the first step from the <idle, idle> context, so a
  // user who freezes before touching anything still gets prompted.
  arm_for_next();
  while (!actor_->finished() && scheduler_.now() < deadline &&
         !scheduler_.empty()) {
    scheduler_.run(1);
  }

  trigger_->disarm();
  session_active_ = false;
  result_ = nullptr;

  result.completed = actor_->finished();
  result.elapsed = scheduler_.now() - start;
  result.steps_completed = actor_->steps_completed();

  if (config_.learn_from_sessions && result.completed) {
    learner_->train_episode(result.observed_steps);
  }
}

void CoredaSystem::on_usage(adl::ToolId tool, sim::TimePoint /*at*/) {
  if (!session_active_ || result_ == nullptr) return;
  result_->observed_steps.push_back(tool);

  if (trigger_->armed()) {
    if (trigger_->notify_usage(tool)) {
      // Expected tool: progress. Praise if it answered a prompt (Fig. 1).
      if (prompt_outstanding_) {
        reminder_->praise(scheduler_.now(), tool);
        ++result_->praises;
        prompt_outstanding_ = false;
      }
      prev_ = cur_;
      cur_ = tool;
      if (!adl_->primary_routine().is_terminal(tool)) arm_for_next();
    }
    // Wrong tool: on_trigger already fired synchronously via notify_usage;
    // the context does not advance.
    return;
  }

  if (cur_ == adl::kIdleStep) {
    // Unarmed session start (no usable prediction): the first observed
    // step simply starts the prediction chain (the paper's Table 4 note).
    cur_ = tool;
    arm_for_next();
  }
  // Otherwise unarmed (terminal reached): record only.
}

void CoredaSystem::arm_for_next() {
  const auto prompt = learner_->predict(prev_, cur_);
  if (!prompt) return;
  // Footnote 1 of the paper: the waiting period is derived from how long
  // the user typically keeps using the *current* tool. The timer starts at
  // the sensed start of the current step, so it must cover that step's own
  // duration before declaring the user stuck. At session start (no current
  // tool) the default waiting period applies — the 30 s of Figure 1.
  sim::Duration timeout{};  // 0 = TriggerMonitor default
  if (cur_ != adl::kIdleStep) {
    timeout = trigger_->timeout_for(library_->tools().at(cur_));
  }
  trigger_->arm(prompt->action.tool, timeout);
}

void CoredaSystem::on_trigger(reminding::Trigger trigger,
                              adl::ToolId observed) {
  if (!session_active_) return;
  issue_prompt(trigger, trigger == reminding::Trigger::kWrongTool
                            ? std::optional<adl::ToolId>(observed)
                            : std::nullopt);
}

void CoredaSystem::issue_prompt(reminding::Trigger trigger,
                                std::optional<adl::ToolId> wrong_tool) {
  const auto prompt = learner_->predict(prev_, cur_);
  if (!prompt || result_ == nullptr) return;

  // An unanswered prompt firing again means the minimal nudge was not
  // enough; escalate to the specific level.
  planning::RemindingLevel level = prompt->action.level;
  if (config_.escalate_reprompts && prompt_outstanding_) {
    level = planning::RemindingLevel::kSpecific;
  }

  reminder_->remind(scheduler_.now(), trigger, prompt->action.tool, level,
                    wrong_tool);
  ++result_->prompts_total;
  if (trigger == reminding::Trigger::kIdleTimeout) {
    ++result_->prompts_idle;
  } else {
    ++result_->prompts_wrong_tool;
  }
  if (level == planning::RemindingLevel::kMinimal) {
    ++result_->prompts_minimal;
  } else {
    ++result_->prompts_specific;
  }
  prompt_outstanding_ = true;

  // The display and LEDs reach the user; the simulated patient perceives
  // the prompt directly (the radio-borne LED command is cosmetic for the
  // nodes' state, display delivery is wired).
  actor_->receive_prompt(prompt->action.tool, level);
}

}  // namespace coreda::core
