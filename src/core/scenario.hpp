#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace coreda::core {

/// One line of a replayed scenario timeline.
struct ScenarioEvent {
  sim::TimePoint at;
  std::string description;
};

/// Replays the paper's Figure 1 tea-making scenario deterministically:
///
///   * Mr. Tanaka puts tea-leaf into the kettle (step 1, correct);
///   * he then incorrectly takes the tea cup — CoReDA prompts for the
///     electronic pot (text + picture + green LED on pot + red LED on cup);
///   * he uses the pot and is praised ("Excellent!");
///   * he pours tea into the cup (step 3, correct);
///   * he does nothing for the waiting period — CoReDA prompts him to drink
///     (text + picture + green LED);
///   * he drinks and is praised; the ADL completes.
///
/// The player pre-trains the planner on clean tea-making processes, runs
/// the closed loop with a scripted decision sequence, and merges patient
/// events, delivered reminders and praises into one timeline.
class ScenarioPlayer {
 public:
  explicit ScenarioPlayer(const adl::AdlLibrary& library);
  ScenarioPlayer(const adl::AdlLibrary& library, SystemConfig config);

  /// Runs the scenario. When `out` is non-null, the timeline is printed to
  /// it as it is produced.
  std::vector<ScenarioEvent> play_figure1(std::ostream* out = nullptr);

  /// The session result of the last play (valid after play_figure1()).
  const SessionResult& last_result() const noexcept { return result_; }

 private:
  const adl::AdlLibrary* library_;
  SystemConfig config_;
  SessionResult result_;
};

}  // namespace coreda::core
