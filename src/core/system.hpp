#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "adl/library.hpp"
#include "patient/actor.hpp"
#include "patient/profile.hpp"
#include "pavenet/base_station.hpp"
#include "pavenet/node.hpp"
#include "planning/learner.hpp"
#include "reminding/reminder.hpp"
#include "reminding/trigger.hpp"
#include "sensors/world.hpp"
#include "sim/scheduler.hpp"
#include "trace/episode.hpp"

namespace coreda::core {

/// Everything that parameterizes a CoReDA deployment.
struct SystemConfig {
  std::string user_name = "Tanaka";
  std::uint64_t seed = 42;
  pavenet::FirmwareConfig firmware{};
  pavenet::RadioChannel::Params radio{};
  pavenet::BaseStation::Params station{};
  planning::LearnerConfig learner{};
  reminding::TriggerMonitor::Params trigger{};
  reminding::RemindingSubsystem::Params reminding{};
  /// When true, every completed closed-loop session is fed back into the
  /// learner so the policy keeps tracking the user (the always-learning
  /// mode §3.2 mentions and rejects for worsening dementia; off by
  /// default, like the paper).
  bool learn_from_sessions = false;
  /// When a prompt goes unanswered and the trigger fires again, escalate
  /// the re-prompt to the specific level (long personalized message, more
  /// blinks). The converged policy prefers minimal prompts — the paper's
  /// "exercise their brains" principle — but a user who did not react to a
  /// minimal prompt needs the stronger one.
  bool escalate_reprompts = true;
};

/// Provisioning bound on recorded steps per session: run_session_inplace
/// pre-sizes SessionResult::observed_steps to this capacity so a warm
/// session records allocation-free, and the serving tier's per-user
/// transcript rings size their fixed slots to the same bound — a transcript
/// that fits a session result always fits its ring slot.
inline constexpr std::size_t kMaxSessionSteps = 256;

/// Outcome of one closed-loop session (one attempt at one ADL).
struct SessionResult {
  bool completed = false;
  sim::Duration elapsed;
  std::size_t steps_completed = 0;
  std::size_t prompts_total = 0;
  std::size_t prompts_idle = 0;
  std::size_t prompts_wrong_tool = 0;
  std::size_t prompts_minimal = 0;
  std::size_t prompts_specific = 0;
  std::size_t praises = 0;
  std::vector<adl::StepId> observed_steps;
};

/// The full CoReDA loop of Figure 2: sensing subsystem (PAVENET nodes ->
/// radio -> base station), planning subsystem (TD(λ) Q-Learning), and
/// reminding subsystem (display + LEDs), wired on one discrete-event
/// scheduler, closed by a simulated patient.
///
/// The system is a *serving engine*: one construction serves any number of
/// back-to-back sessions. run_session resets component state (station
/// episode table, reminder log, trigger, actor) instead of rebuilding the
/// stack, and run_session_inplace reuses a caller-owned SessionResult so a
/// warm system serves a whole session without allocating.
class CoredaSystem {
 public:
  /// Deploys nodes on every tool of `adl`. `library` and `adl` must outlive
  /// the system.
  CoredaSystem(const adl::AdlLibrary& library, const adl::Adl& adl,
               SystemConfig config = SystemConfig());

  /// Offline training from recorded StepId sequences (the 120-sample
  /// training phase of §3.2).
  void pretrain(std::span<const std::vector<adl::StepId>> episodes);

  /// Adopts a pre-trained policy (Q-table) wholesale — the serving-side
  /// half of a train-once / deploy-many split: train one learner offline,
  /// then stamp its table into every serving system.
  void import_policy(const rl::QTable& q);

  /// Runs one closed-loop session with a patient of the given profile:
  /// the patient attempts the ADL's primary routine; CoReDA watches,
  /// prompts on the two trigger situations, and praises correct steps.
  SessionResult run_session(const patient::PatientProfile& profile,
                            sim::Duration max_duration);

  /// Like run_session(), but calls `setup` on the fresh actor before the
  /// session starts — the hook the deterministic scenario player uses to
  /// queue forced decisions (Figure 1 replay).
  SessionResult run_session(
      const patient::PatientProfile& profile, sim::Duration max_duration,
      const std::function<void(patient::PatientActor&)>& setup);

  /// The allocation-free serving entry point: like run_session(), but the
  /// outcome lands in the caller-owned `result`, whose buffers (notably
  /// observed_steps) are reused across calls. At steady state a session
  /// runs with zero heap allocations.
  void run_session_inplace(
      const patient::PatientProfile& profile, sim::Duration max_duration,
      const std::function<void(patient::PatientActor&)>& setup,
      SessionResult& result);

  /// The actor of the most recent session (constructed warm at startup;
  /// meaningful only after a session has run).
  const patient::PatientActor* last_actor() const noexcept {
    return actor_.get();
  }

  const planning::RoutineLearner& learner() const noexcept {
    return *learner_;
  }
  const reminding::RemindingSubsystem& reminder() const noexcept {
    return *reminder_;
  }
  const pavenet::RadioChannel& channel() const noexcept { return *channel_; }
  /// Mutable channel access for the fault-injection layer: the channel
  /// persists across reset-don't-rebuild sessions, so an armed burst chain
  /// keeps its state for the slot's whole lifetime.
  pavenet::RadioChannel& channel_mut() noexcept { return *channel_; }
  const pavenet::BaseStation& station() const noexcept { return *station_; }
  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  const adl::Adl& adl() const noexcept { return *adl_; }
  const SystemConfig& config() const noexcept { return config_; }

  /// The node attached to `tool`; throws std::out_of_range when absent.
  const pavenet::PavenetNode& node(adl::ToolId tool) const;

 private:
  void on_usage(adl::ToolId tool, sim::TimePoint at);
  void on_trigger(reminding::Trigger trigger, adl::ToolId observed);
  void issue_prompt(reminding::Trigger trigger,
                    std::optional<adl::ToolId> wrong_tool);
  void arm_for_next();

  const adl::AdlLibrary* library_;
  const adl::Adl* adl_;
  SystemConfig config_;
  util::Rng rng_;

  sim::Scheduler scheduler_;
  sensors::ManipulationWorld world_;
  std::unique_ptr<pavenet::RadioChannel> channel_;
  std::unique_ptr<pavenet::BaseStation> station_;
  std::vector<std::unique_ptr<pavenet::PavenetNode>> nodes_;
  std::unique_ptr<planning::RoutineLearner> learner_;
  std::unique_ptr<reminding::RemindingSubsystem> reminder_;
  std::unique_ptr<reminding::TriggerMonitor> trigger_;
  std::unique_ptr<patient::PatientActor> actor_;

  // Per-session state.
  adl::StepId prev_ = adl::kIdleStep;
  adl::StepId cur_ = adl::kIdleStep;
  bool session_active_ = false;
  bool prompt_outstanding_ = false;
  SessionResult* result_ = nullptr;
  /// Reused by the by-value run_session overloads so their sessions also
  /// run against warm buffers (the return itself still copies).
  SessionResult scratch_result_;
};

}  // namespace coreda::core
