#include "core/scenario.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "trace/dataset.hpp"
#include "util/table.hpp"

namespace coreda::core {

ScenarioPlayer::ScenarioPlayer(const adl::AdlLibrary& library)
    : ScenarioPlayer(library, SystemConfig{}) {}

ScenarioPlayer::ScenarioPlayer(const adl::AdlLibrary& library,
                               SystemConfig config)
    : library_(&library), config_(std::move(config)) {}

std::vector<ScenarioEvent> ScenarioPlayer::play_figure1(std::ostream* out) {
  const adl::Adl& tea = library_->tea_making();
  CoredaSystem system(*library_, tea, config_);

  // Learn Mr. Tanaka's routine from clean recorded processes first, as the
  // paper does before deployment.
  trace::DatasetBuilder datasets(*library_,
                                 patient::PatientProfile::with_severity(
                                     config_.user_name, 0.0),
                                 config_.seed + 1);
  const auto training = datasets.clean_training_set(tea, 120);
  system.pretrain(training);

  // A mildly impaired profile; the script below forces the Figure 1 error
  // pattern regardless of the stochastic error rates.
  patient::PatientProfile profile =
      patient::PatientProfile::with_severity(config_.user_name, 0.4);
  profile.comply_minimal = 1.0;
  profile.comply_specific = 1.0;

  const SessionResult result = system.run_session(
      profile, sim::Duration::minutes(10.0),
      [](patient::PatientActor& actor) {
        using Kind = patient::PatientEvent::Kind;
        actor.force_next_decision(Kind::kStartedStep);  // tea box
        actor.force_next_decision(Kind::kWrongTool,
                                  adl::tools::kTeaCup);  // cup instead of pot
        actor.force_next_decision(Kind::kStartedStep);   // kettle
        actor.force_next_decision(Kind::kFroze);         // forgets to drink
      });
  result_ = result;

  // Merge patient events and reminder deliveries into one timeline.
  std::vector<ScenarioEvent> timeline;
  const auto describe_tool = [this](adl::ToolId id) {
    return library_->tools().at(id).name;
  };

  const patient::PatientActor* actor = system.last_actor();
  for (const patient::PatientEvent& ev : actor->events()) {
    std::ostringstream os;
    using Kind = patient::PatientEvent::Kind;
    switch (ev.kind) {
      case Kind::kStartedStep:
        os << "patient starts using " << describe_tool(ev.tool);
        break;
      case Kind::kWrongTool:
        os << "patient incorrectly takes " << describe_tool(ev.tool);
        break;
      case Kind::kFroze:
        os << "patient does nothing (forgets the next step)";
        break;
      case Kind::kCompliedPrompt:
        os << "patient follows the prompt toward "
           << describe_tool(ev.tool);
        break;
      case Kind::kIgnoredPrompt:
        os << "patient does not notice the prompt";
        break;
      case Kind::kFinishedAdl:
        os << "ADL complete (" << describe_tool(ev.tool) << " was the last "
           << "step)";
        break;
    }
    timeline.push_back(ScenarioEvent{ev.at, os.str()});
  }

  for (const reminding::DeliveredReminder& r : system.reminder().log()) {
    std::ostringstream os;
    os << "CoReDA reminds (" << to_string(r.trigger) << ", "
       << planning::to_string(r.level) << "): \"" << r.text << "\" + picture "
       << r.picture << " + green LED x" << static_cast<int>(r.green_blinks)
       << " on " << describe_tool(r.target_tool);
    if (r.wrong_tool) {
      os << " + red LED x" << static_cast<int>(r.red_blinks) << " on "
         << describe_tool(*r.wrong_tool);
    }
    timeline.push_back(ScenarioEvent{r.at, os.str()});
  }

  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.at < b.at;
                   });

  if (out != nullptr) {
    for (const ScenarioEvent& ev : timeline) {
      *out << "[" << util::format_fixed(ev.at.to_seconds(), 1) << "s] "
           << ev.description << '\n';
    }
  }
  return timeline;
}

}  // namespace coreda::core
