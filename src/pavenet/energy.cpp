#include "pavenet/energy.hpp"

namespace coreda::pavenet {

EnergyReport estimate_energy(const PavenetNode& node, sim::Duration elapsed,
                             const EnergyProfile& profile) {
  EnergyReport report;
  const double samples = static_cast<double>(node.samples());
  const double windows =
      samples / static_cast<double>(node.config().vote_window);
  report.sampling_j =
      (samples * profile.sample_uj + windows * profile.vote_uj) * 1e-6;
  report.radio_j =
      static_cast<double>(node.announcements()) * profile.tx_uj * 1e-6;
  report.eeprom_j = static_cast<double>(node.eeprom().total_writes()) *
                    profile.eeprom_write_uj * 1e-6;
  const double blinks =
      static_cast<double>(node.led().blink_count(LedColor::kGreen) +
                          node.led().blink_count(LedColor::kRed));
  report.led_j = blinks * profile.led_blink_uj * 1e-6;
  report.sleep_j = profile.sleep_uw * 1e-6 * elapsed.to_seconds();
  return report;
}

}  // namespace coreda::pavenet
