#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace coreda::pavenet {

/// A usage record the firmware appends to its external EEPROM each time the
/// detector decides "in use" — the node's local audit trail, recoverable by
/// caregivers even across radio outages.
struct EepromRecord {
  sim::TimePoint at;
  std::uint16_t uid = 0;
  std::uint8_t hits = 0;  ///< vote hits in the deciding window
};

/// Fixed-capacity circular log emulating the node's 16 KB external EEPROM.
///
/// Capacity is expressed in records (record size is fixed at 16 bytes on the
/// device, so 16 KB holds 1024 records). When full, the oldest record is
/// overwritten — the device keeps the most recent history.
class Eeprom {
 public:
  static constexpr std::size_t kRecordBytes = 16;

  /// Throws std::invalid_argument when capacity_bytes < kRecordBytes.
  explicit Eeprom(std::uint32_t capacity_bytes = 16 * 1024);

  void append(const EepromRecord& record);

  std::size_t capacity_records() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return size_; }
  std::uint64_t total_writes() const noexcept { return writes_; }
  bool wrapped() const noexcept { return writes_ > capacity_; }

  /// Records from oldest to newest.
  std::vector<EepromRecord> dump() const;

  /// Most recent record, if any.
  std::optional<EepromRecord> last() const;

 private:
  std::size_t capacity_;
  std::vector<EepromRecord> ring_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t size_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace coreda::pavenet
