#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "adl/types.hpp"
#include "pavenet/radio.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace coreda::pavenet {

/// A tool-usage episode as seen by the server: the first announcement of a
/// usage plus any re-announcements merged into it.
struct ToolUsageEvent {
  adl::ToolId tool = adl::kNoTool;
  sim::TimePoint first_seen;
  sim::TimePoint last_seen;
  std::uint32_t reports = 0;
};

/// The server-side radio endpoint of the sensing subsystem.
///
/// Nodes announce their uid whenever a detector window votes "in use";
/// the base station merges announcement bursts into usage episodes (a new
/// episode starts when a tool has been silent for `merge_gap`) and notifies
/// listeners of each episode's *start* — the edge the planning subsystem
/// consumes as "the user started using tool X".
class BaseStation {
 public:
  using UsageListener =
      std::function<void(adl::ToolId tool, sim::TimePoint at)>;

  struct Params {
    /// Silence gap after which the next announcement opens a new episode.
    sim::Duration merge_gap = sim::Duration::seconds(3.0);
    /// Serialization spacing between consecutive downlink commands. The
    /// single-frequency CC1000 medium has no MAC, so the base station
    /// firmware staggers its own transmissions to avoid self-collision
    /// (e.g. the green+red LED pair of a wrong-tool reminder).
    sim::Duration downlink_spacing = sim::Duration::millis(20);
  };

  BaseStation(sim::Scheduler& scheduler, RadioChannel& channel);
  BaseStation(sim::Scheduler& scheduler, RadioChannel& channel,
              Params params);

  /// Adds a listener invoked at the start of every usage episode.
  void add_listener(UsageListener listener);

  /// Sends a blink command to the node on `tool` (blink_count 0 = all off).
  void send_led_command(adl::ToolId tool, LedColor color,
                        std::uint8_t blink_count);

  /// All episodes observed so far, in start order (open episodes included).
  const std::vector<ToolUsageEvent>& episodes() const noexcept {
    return episodes_;
  }

  std::uint64_t packets_received() const noexcept { return packets_; }

 private:
  void handle_uplink(const Packet& packet);

  sim::Scheduler* scheduler_;
  RadioChannel* channel_;
  Params params_;
  std::vector<UsageListener> listeners_;
  std::vector<ToolUsageEvent> episodes_;
  std::map<adl::ToolId, std::size_t> open_episode_;  ///< tool -> index
  std::uint64_t packets_ = 0;
  sim::TimePoint next_downlink_slot_;
};

}  // namespace coreda::pavenet
