#pragma once

#include <cstdint>
#include <vector>

#include "adl/types.hpp"
#include "pavenet/radio.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/fn_ref.hpp"

namespace coreda::pavenet {

/// A tool-usage episode as seen by the server: the first announcement of a
/// usage plus any re-announcements merged into it.
struct ToolUsageEvent {
  adl::ToolId tool = adl::kNoTool;
  sim::TimePoint first_seen;
  sim::TimePoint last_seen;
  std::uint32_t reports = 0;
};

/// The server-side radio endpoint of the sensing subsystem.
///
/// Nodes announce their uid whenever a detector window votes "in use";
/// the base station merges announcement bursts into usage episodes (a new
/// episode starts when a tool has been silent for `merge_gap`) and notifies
/// listeners of each episode's *start* — the edge the planning subsystem
/// consumes as "the user started using tool X".
///
/// Per-event state is allocation-free at steady state: the open-episode
/// table is a dense array keyed by ToolId, listeners are non-owning FnRefs
/// bound once at hookup, and deferred downlink commands park their packet
/// in a reusable slot pool instead of a heap-allocated closure.
class BaseStation {
 public:
  /// Non-owning: the callable (or the object a member function is bound to)
  /// must outlive the station. Bound once; invoking it never allocates.
  using UsageListener = util::FnRef<void(adl::ToolId, sim::TimePoint)>;

  struct Params {
    /// Silence gap after which the next announcement opens a new episode.
    sim::Duration merge_gap = sim::Duration::seconds(3.0);
    /// Serialization spacing between consecutive downlink commands. The
    /// single-frequency CC1000 medium has no MAC, so the base station
    /// firmware staggers its own transmissions to avoid self-collision
    /// (e.g. the green+red LED pair of a wrong-tool reminder).
    sim::Duration downlink_spacing = sim::Duration::millis(20);
  };

  BaseStation(sim::Scheduler& scheduler, RadioChannel& channel);
  BaseStation(sim::Scheduler& scheduler, RadioChannel& channel,
              Params params);

  /// Adds a listener invoked at the start of every usage episode.
  void add_listener(UsageListener listener);

  /// Pre-sizes the tool -> open-episode map for tool ids below `count`, so
  /// the first uplink from each tool never grows it mid-session. Purely a
  /// capacity hint; unknown higher ids still work (and grow it lazily).
  void provision_tools(std::size_t count);

  /// Sends a blink command to the node on `tool` (blink_count 0 = all off).
  void send_led_command(adl::ToolId tool, LedColor color,
                        std::uint8_t blink_count);

  /// All episodes observed so far, in start order (open episodes included).
  const std::vector<ToolUsageEvent>& episodes() const noexcept {
    return episodes_;
  }

  std::uint64_t packets_received() const noexcept { return packets_; }

  /// Forgets all recorded episodes and open-episode state (capacity kept),
  /// so the next serving session starts from a clean slate without
  /// reconstructing the station. Cumulative packet stats are retained.
  void reset_usage_history() noexcept;

 private:
  static constexpr std::uint32_t kNoEpisode = 0xffffffffu;
  /// Episode-table pre-size: comfortably above the busiest realistic
  /// session (one episode per report burst, a few hundred per session).
  static constexpr std::size_t kEpisodeReserve = 512;
  /// Downlink-pool pre-size: more deferred commands than ever wait at once
  /// in practice (commands drain every downlink_spacing).
  static constexpr std::size_t kDownlinkReserve = 16;

  void handle_uplink(const Packet& packet);

  sim::Scheduler* scheduler_;
  RadioChannel* channel_;
  Params params_;
  std::vector<UsageListener> listeners_;
  std::vector<ToolUsageEvent> episodes_;
  /// tool -> index into episodes_ (kNoEpisode when none), dense by ToolId.
  std::vector<std::uint32_t> open_episode_;
  std::uint64_t packets_ = 0;
  sim::TimePoint next_downlink_slot_;

  /// Deferred downlink commands awaiting their serialization slot; pooled
  /// so the scheduled callback captures only {this, index}.
  std::vector<Packet> pending_downlinks_;
  std::vector<std::size_t> free_downlinks_;
};

}  // namespace coreda::pavenet
