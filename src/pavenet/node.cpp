#include "pavenet/node.hpp"

namespace coreda::pavenet {

namespace {

ThresholdDetector make_detector(const adl::Tool& tool,
                                const sensors::SensorModel& model,
                                const FirmwareConfig& config) {
  const double threshold = config.excitation_threshold > 0.0
                               ? config.excitation_threshold
                               : model.recommended_threshold();
  (void)tool;
  return ThresholdDetector(threshold, config.vote_window,
                           config.vote_threshold);
}

}  // namespace

PavenetNode::PavenetNode(const adl::Tool& tool, sim::Scheduler& scheduler,
                         sensors::ManipulationWorld& world,
                         RadioChannel& channel, util::Rng rng,
                         FirmwareConfig config)
    : tool_(tool),
      scheduler_(&scheduler),
      world_(&world),
      channel_(&channel),
      rng_(rng),
      config_(config),
      sensor_(sensors::make_sensor_model(tool.sensor)),
      detector_(make_detector(tool, *sensor_, config)),
      led_(scheduler),
      eeprom_(kPavenetHardware.eeprom_bytes) {
  channel_->attach_receiver(
      uid(), [this](const Packet& p) { handle_downlink(p); });
}

void PavenetNode::power_on() {
  if (powered_) return;
  powered_ = true;
  const auto period =
      sim::Duration::micros(1'000'000 / config_.sampling_hz);
  tick_ = scheduler_->schedule_periodic(period, [this] { firmware_tick(); });
}

void PavenetNode::power_off() {
  if (!powered_) return;
  powered_ = false;
  tick_.cancel();
  detector_.reset();
}

void PavenetNode::firmware_tick() {
  ++samples_;
  const sim::TimePoint now = scheduler_->now();
  const double activation = world_->activation(tool_.id, now);
  const double excitation =
      sensor_->sample(now, activation, tool_.usage_intensity, rng_);
  const std::uint32_t hits_before = detector_.pending_hits();
  if (!detector_.add_sample(excitation)) return;

  // A window voted "in use".
  eeprom_.append(EepromRecord{
      now, uid(),
      static_cast<std::uint8_t>(
          hits_before + (excitation > detector_.threshold() ? 1 : 0))});

  if (announced_once_ &&
      now - last_announce_ < config_.reannounce_interval) {
    return;
  }
  announced_once_ = true;
  last_announce_ = now;
  ++announcements_;

  Packet packet;
  packet.kind = Packet::Kind::kToolUsage;
  packet.source_uid = uid();
  packet.dest_uid = 0;  // base station
  packet.vote_hits = eeprom_.last()->hits;
  channel_->transmit(packet);
}

void PavenetNode::handle_downlink(const Packet& packet) {
  if (packet.kind != Packet::Kind::kLedCommand) return;
  if (packet.blink_count == 0) {
    led_.all_off();
    return;
  }
  led_.blink(packet.led_color, packet.blink_count);
}

}  // namespace coreda::pavenet
