#include "pavenet/node.hpp"

namespace coreda::pavenet {

namespace {

ThresholdDetector make_detector(const adl::Tool& tool,
                                const sensors::SensorModel& model,
                                const FirmwareConfig& config) {
  const double threshold = config.excitation_threshold > 0.0
                               ? config.excitation_threshold
                               : model.recommended_threshold();
  (void)tool;
  return ThresholdDetector(threshold, config.vote_window,
                           config.vote_threshold);
}

}  // namespace

PavenetNode::PavenetNode(const adl::Tool& tool, sim::Scheduler& scheduler,
                         sensors::ManipulationWorld& world,
                         RadioChannel& channel, util::Rng rng,
                         FirmwareConfig config)
    : tool_(tool),
      scheduler_(&scheduler),
      world_(&world),
      channel_(&channel),
      rng_(rng),
      config_(config),
      sensor_(sensors::make_sensor_model(tool.sensor)),
      detector_(make_detector(tool, *sensor_, config)),
      led_(scheduler),
      eeprom_(kPavenetHardware.eeprom_bytes) {
  channel_->attach_receiver(
      uid(), [this](const Packet& p) { handle_downlink(p); });
}

void PavenetNode::power_on() {
  if (powered_) return;
  powered_ = true;
  const sim::Duration period = sample_period();
  if (config_.batch_sampling) {
    // Wake once per full vote window; the detector tumbles, so the only
    // instants firmware-visible behavior can change are window boundaries —
    // exactly the wake times. Samples inside the window are synthesized
    // retroactively at their true tick times from the world's history.
    next_sample_time_ = scheduler_->now() + period;
    activation_buf_.reserve(config_.vote_window);
    const sim::Duration batch = sim::Duration::micros(
        period.total_micros() * static_cast<std::int64_t>(config_.vote_window));
    tick_ = scheduler_->schedule_periodic(batch, [this] { firmware_batch(); });
  } else {
    tick_ = scheduler_->schedule_periodic(period, [this] { firmware_tick(); });
  }
}

void PavenetNode::power_off() {
  if (!powered_) return;
  powered_ = false;
  tick_.cancel();
  if (config_.batch_sampling) {
    // Take the partial window the cancelled wake-up would have covered, so
    // samples() and energy accounting match the per-tick loop exactly.
    synthesize_until(scheduler_->now());
  }
  detector_.reset();
}

void PavenetNode::firmware_tick() {
  const sim::TimePoint now = scheduler_->now();
  process_sample(now, world_->activation(tool_.id, now));
}

void PavenetNode::firmware_batch() { synthesize_until(scheduler_->now()); }

void PavenetNode::synthesize_until(sim::TimePoint limit) {
  if (next_sample_time_ > limit) return;
  const sim::Duration period = sample_period();
  const std::size_t count =
      static_cast<std::size_t>((limit - next_sample_time_).total_micros() /
                               period.total_micros()) +
      1;
  activation_buf_.resize(count);
  world_->activation_block(tool_.id, next_sample_time_, period, count,
                           activation_buf_.data());
  // One virtual dispatch for the whole window; the buffer is overwritten
  // in place with the excitations (sample_block reads each activation
  // before writing the slot).
  sensor_->sample_block(next_sample_time_, period, activation_buf_.data(),
                        count, tool_.usage_intensity, rng_,
                        activation_buf_.data());
  sim::TimePoint at = next_sample_time_;
  for (std::size_t i = 0; i < count; ++i, at = at + period) {
    ++samples_;
    process_excitation(at, activation_buf_[i]);
  }
  next_sample_time_ = at;
}

void PavenetNode::process_sample(sim::TimePoint at, double activation) {
  ++samples_;
  process_excitation(
      at, sensor_->sample(at, activation, tool_.usage_intensity, rng_));
}

void PavenetNode::process_excitation(sim::TimePoint at, double excitation) {
  const std::uint32_t hits_before = detector_.pending_hits();
  if (!detector_.add_sample(excitation)) return;

  // A window voted "in use". In batch mode this can only happen on the last
  // sample of a wake-up, i.e. `at` == the current scheduler time.
  eeprom_.append(EepromRecord{
      at, uid(),
      static_cast<std::uint8_t>(
          hits_before + (excitation > detector_.threshold() ? 1 : 0))});

  if (announced_once_ && at - last_announce_ < config_.reannounce_interval) {
    return;
  }
  announced_once_ = true;
  last_announce_ = at;
  ++announcements_;

  Packet packet;
  packet.kind = Packet::Kind::kToolUsage;
  packet.source_uid = uid();
  packet.dest_uid = 0;  // base station
  packet.vote_hits = eeprom_.last()->hits;
  channel_->transmit(packet);
}

void PavenetNode::handle_downlink(const Packet& packet) {
  if (packet.kind != Packet::Kind::kLedCommand) return;
  if (packet.blink_count == 0) {
    led_.all_off();
    return;
  }
  led_.blink(packet.led_color, packet.blink_count);
}

}  // namespace coreda::pavenet
