#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace coreda::pavenet {

/// Hardware description of a PAVENET module (paper Table 1). We carry it as
/// data both for documentation (bench headers print it) and because a few
/// values — EEPROM size, sampling rate — parameterize the simulation.
struct HardwareSpec {
  std::string_view cpu = "Microchip PIC18LF4620";
  std::uint32_t ram_bytes = 4 * 1024;
  std::uint32_t rom_bytes = 64 * 1024;
  std::string_view wireless = "ChipCon CC1000";
  std::string_view io = "UART, GPIO, I2C";
  std::string_view peripherals =
      "Four LEDs, Real Time Clock, External EEPROM (16 KB)";
  std::string_view sensors =
      "3-axis accelerometer, Pressure, Brightness, Temperature, Motion";
  std::uint32_t eeprom_bytes = 16 * 1024;
};

inline constexpr HardwareSpec kPavenetHardware{};

/// Firmware parameters of the sensing subsystem (paper §2.1).
struct FirmwareConfig {
  /// "The sampling rate of each sensor is 10 times in one second."
  std::uint32_t sampling_hz = 10;

  /// "If three of these 10 samples surpass a pre-defined threshold, the tool
  /// will be considered is using" — the vote that rejects accidental bumps.
  std::uint32_t vote_window = 10;
  std::uint32_t vote_threshold = 3;

  /// Excitation threshold; when <= 0 the node uses its sensor model's
  /// recommended_threshold().
  double excitation_threshold = -1.0;

  /// While a tool stays in use, re-announce its ID at most once per this
  /// interval (the server only needs edges, not a packet flood).
  sim::Duration reannounce_interval = sim::Duration::seconds(1.0);

  /// When true the firmware task wakes once per vote window instead of once
  /// per sample and synthesizes the window's samples retroactively — a pure
  /// scheduling optimization that is bit-identical to per-tick sampling
  /// because the tumbling detector only acts at window boundaries (see
  /// DESIGN.md §5). Set false to force the literal per-tick loop.
  bool batch_sampling = true;
};

}  // namespace coreda::pavenet
