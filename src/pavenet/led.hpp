#pragma once

#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace coreda::pavenet {

enum class LedColor : std::uint8_t { kGreen, kRed };

/// One observable LED transition, for tests and the scenario player.
struct LedEvent {
  sim::TimePoint at;
  LedColor color;
  bool on;
};

/// Blink pattern driver for a node's green/red LEDs.
///
/// The reminding subsystem uses the green LED for "use this tool" and the
/// red LED for "you are using the wrong tool"; the number of blinks encodes
/// the reminding level (minimal = fewer blinks, specific = more).
///
/// The blink series runs off member state and a {this}-capturing callback
/// (inline in std::function's buffer), so driving LEDs never touches the
/// heap — only the event history grows, and it is cleared per session.
class Led {
 public:
  explicit Led(sim::Scheduler& scheduler) : scheduler_(&scheduler) {
    // Transcript lengths vary session to session (stochastic patients), so
    // a warm capacity learned from early sessions can still be outgrown
    // later. Pre-size for the worst realistic session instead: a prompt
    // roughly every 30 s of a 15-minute session, each driving a full blink
    // series, stays well under this.
    history_.reserve(kHistoryReserve);
  }

  /// Blinks `color` `count` times with the given on/off half-period.
  /// A new command preempts any blink series still in progress.
  void blink(LedColor color, std::uint32_t count,
             sim::Duration half_period = sim::Duration::millis(250));

  /// Immediately turns both LEDs off and cancels pending blinks.
  void all_off();

  bool is_on(LedColor color) const noexcept;
  const std::vector<LedEvent>& history() const noexcept { return history_; }
  void clear_history() { history_.clear(); }

  /// Total completed blink cycles per color since construction.
  std::uint64_t blink_count(LedColor color) const noexcept;

 private:
  static constexpr std::size_t kHistoryReserve = 1024;

  void set(LedColor color, bool on);
  void on_toggle();

  sim::Scheduler* scheduler_;
  sim::EventHandle pending_;
  bool green_on_ = false;
  bool red_on_ = false;
  std::uint64_t green_blinks_ = 0;
  std::uint64_t red_blinks_ = 0;
  std::vector<LedEvent> history_;

  // Active blink series (valid while pending_ is live).
  LedColor blink_color_ = LedColor::kGreen;
  sim::Duration half_period_;
  std::uint32_t toggles_done_ = 0;
  std::uint32_t total_toggles_ = 0;
};

}  // namespace coreda::pavenet
