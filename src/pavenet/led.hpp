#pragma once

#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace coreda::pavenet {

enum class LedColor : std::uint8_t { kGreen, kRed };

/// One observable LED transition, for tests and the scenario player.
struct LedEvent {
  sim::TimePoint at;
  LedColor color;
  bool on;
};

/// Blink pattern driver for a node's green/red LEDs.
///
/// The reminding subsystem uses the green LED for "use this tool" and the
/// red LED for "you are using the wrong tool"; the number of blinks encodes
/// the reminding level (minimal = fewer blinks, specific = more).
class Led {
 public:
  explicit Led(sim::Scheduler& scheduler) : scheduler_(&scheduler) {}

  /// Blinks `color` `count` times with the given on/off half-period.
  /// A new command preempts any blink series still in progress.
  void blink(LedColor color, std::uint32_t count,
             sim::Duration half_period = sim::Duration::millis(250));

  /// Immediately turns both LEDs off and cancels pending blinks.
  void all_off();

  bool is_on(LedColor color) const noexcept;
  const std::vector<LedEvent>& history() const noexcept { return history_; }
  void clear_history() { history_.clear(); }

  /// Total completed blink cycles per color since construction.
  std::uint64_t blink_count(LedColor color) const noexcept;

 private:
  void set(LedColor color, bool on);

  sim::Scheduler* scheduler_;
  sim::EventHandle pending_;
  bool green_on_ = false;
  bool red_on_ = false;
  std::uint64_t green_blinks_ = 0;
  std::uint64_t red_blinks_ = 0;
  std::vector<LedEvent> history_;
};

}  // namespace coreda::pavenet
