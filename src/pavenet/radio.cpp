#include "pavenet/radio.hpp"

namespace coreda::pavenet {

RadioChannel::RadioChannel(sim::Scheduler& scheduler, util::Rng rng)
    : RadioChannel(scheduler, rng, Params{}) {}

RadioChannel::RadioChannel(sim::Scheduler& scheduler, util::Rng rng,
                           Params params)
    : scheduler_(&scheduler), rng_(rng), params_(params) {}

void RadioChannel::attach_receiver(std::uint16_t uid, Receiver receiver) {
  receivers_[uid] = std::move(receiver);
}

void RadioChannel::transmit(Packet packet) {
  ++stats_.sent;
  packet.seq = next_seq_++;
  packet.sent_at = scheduler_->now();

  if (rng_.bernoulli(params_.loss_probability)) {
    ++stats_.lost_noise;
    return;
  }

  const sim::TimePoint start = scheduler_->now();
  const sim::TimePoint end = start + params_.airtime;
  bool collided = false;

  if (params_.model_collisions) {
    for (auto& [seq, other] : in_flight_) {
      if (other.end <= start) continue;  // already off the air
      // Overlapping airtime: both frames are corrupted.
      collided = true;
      if (!other.collided) {
        other.collided = true;
        other.delivery.cancel();
        ++stats_.lost_collision;
      }
    }
  }

  if (collided) {
    ++stats_.lost_collision;
    in_flight_[packet.seq] = InFlight{start, end, sim::EventHandle{}, true};
    // Keep the entry until airtime ends so later frames also collide with it.
    scheduler_->schedule_at(end, [this, seq = packet.seq] {
      in_flight_.erase(seq);
    });
    return;
  }

  const sim::Duration latency =
      params_.latency +
      params_.latency_jitter * rng_.uniform(0.0, 1.0);
  InFlight entry{start, end, sim::EventHandle{}, false};
  entry.delivery = scheduler_->schedule_at(
      start + latency, [this, packet] { deliver(packet); });
  in_flight_[packet.seq] = std::move(entry);
  scheduler_->schedule_at(end + latency, [this, seq = packet.seq] {
    in_flight_.erase(seq);
  });
}

void RadioChannel::deliver(const Packet& packet) {
  const auto it = receivers_.find(packet.dest_uid);
  if (it == receivers_.end() || !it->second) {
    ++stats_.undeliverable;
    return;
  }
  ++stats_.delivered;
  it->second(packet);
}

}  // namespace coreda::pavenet
