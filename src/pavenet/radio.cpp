#include "pavenet/radio.hpp"

namespace coreda::pavenet {

RadioChannel::RadioChannel(sim::Scheduler& scheduler, util::Rng rng)
    : RadioChannel(scheduler, rng, Params{}) {}

RadioChannel::RadioChannel(sim::Scheduler& scheduler, util::Rng rng,
                           Params params)
    : scheduler_(&scheduler), rng_(rng), params_(params) {}

void RadioChannel::attach_receiver(std::uint16_t uid, Receiver receiver) {
  if (uid >= receivers_.size()) receivers_.resize(uid + 1);
  receivers_[uid] = std::move(receiver);
}

void RadioChannel::reserve(std::size_t frames) {
  slots_.reserve(frames);
  free_slots_.reserve(frames);
}

std::size_t RadioChannel::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::size_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  slots_.emplace_back();
  // Grown here so release_slot() (steady-state path) never reallocates: at
  // most slots_.size() slots can be free at once.
  if (free_slots_.capacity() < slots_.size()) {
    free_slots_.reserve(slots_.capacity());
  }
  return slots_.size() - 1;
}

void RadioChannel::release_slot(std::size_t index) noexcept {
  slots_[index].active = false;
  slots_[index].delivery = sim::EventHandle{};
  free_slots_.push_back(index);
}

void RadioChannel::transmit(Packet packet) {
  ++stats_.sent;
  packet.seq = next_seq_++;
  packet.sent_at = scheduler_->now();

  // Injected burst fade first: radio-silence windows trump the independent
  // noise model (and draw from their own stream, so arming a fault plan
  // cannot shift the channel's fading RNG).
  if (fault_burst_.drop_frame()) {
    ++stats_.lost_fault;
    return;
  }

  if (rng_.bernoulli(params_.loss_probability)) {
    ++stats_.lost_noise;
    return;
  }

  const sim::TimePoint start = scheduler_->now();
  const sim::TimePoint end = start + params_.airtime;
  bool collided = false;

  if (params_.model_collisions) {
    for (Slot& other : slots_) {
      if (!other.active || other.end <= start) continue;  // off the air
      // Overlapping airtime: both frames are corrupted.
      collided = true;
      if (!other.collided) {
        other.collided = true;
        other.delivery.cancel();
        ++stats_.lost_collision;
      }
    }
  }

  if (collided) {
    ++stats_.lost_collision;
    const std::size_t index = acquire_slot();
    Slot& slot = slots_[index];
    slot.packet = packet;
    slot.start = start;
    slot.end = end;
    slot.collided = true;
    slot.active = true;
    // Keep the slot until airtime ends so later frames also collide with it.
    scheduler_->schedule_at(end, [this, index] { release_slot(index); });
    return;
  }

  const sim::Duration latency =
      params_.latency +
      params_.latency_jitter * rng_.uniform(0.0, 1.0);
  const std::size_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.packet = packet;
  slot.start = start;
  slot.end = end;
  slot.collided = false;
  slot.active = true;
  slot.delivery = scheduler_->schedule_at(start + latency, [this, index] {
    // Copy out first: the receiver may transmit, which can grow the slot
    // pool and invalidate references into it.
    const Packet delivered = slots_[index].packet;
    deliver(delivered);
  });
  scheduler_->schedule_at(end + latency, [this, index] {
    release_slot(index);
  });
}

void RadioChannel::deliver(const Packet& packet) {
  if (packet.dest_uid >= receivers_.size() ||
      !receivers_[packet.dest_uid]) {
    ++stats_.undeliverable;
    return;
  }
  ++stats_.delivered;
  receivers_[packet.dest_uid](packet);
}

}  // namespace coreda::pavenet
