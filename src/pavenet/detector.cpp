#include "pavenet/detector.hpp"

namespace coreda::pavenet {

ThresholdDetector::ThresholdDetector(double excitation_threshold,
                                     std::uint32_t vote_window,
                                     std::uint32_t vote_threshold)
    : threshold_(excitation_threshold),
      window_(vote_window),
      votes_(vote_threshold) {
  if (window_ == 0) {
    throw std::invalid_argument("ThresholdDetector: window must be > 0");
  }
  if (votes_ == 0 || votes_ > window_) {
    throw std::invalid_argument(
        "ThresholdDetector: vote threshold must be in [1, window]");
  }
}

void ThresholdDetector::reset() noexcept {
  filled_ = 0;
  hits_ = 0;
}

}  // namespace coreda::pavenet
