#pragma once

#include "pavenet/node.hpp"
#include "sim/time.hpp"

namespace coreda::pavenet {

/// Per-operation energy costs of a PAVENET-class node (PIC18LF4620 MCU +
/// CC1000 radio, coin/AA-cell powered). Values are order-of-magnitude
/// figures from the component datasheets; the *relative* costs are what
/// the energy ablation depends on (radio ≫ sampling ≫ sleep).
struct EnergyProfile {
  double sample_uj = 12.0;        ///< MCU wake + ADC read, per sample
  double vote_uj = 1.5;           ///< window evaluation, per window
  double tx_uj = 260.0;           ///< one CC1000 uplink frame
  double eeprom_write_uj = 25.0;  ///< one 16-byte record
  double led_blink_uj = 90.0;     ///< one on/off cycle at ~2 mA
  double sleep_uw = 30.0;         ///< sleep-mode draw (microwatts)
  /// Usable charge of the power source in joules (2x AA ≈ 18 kJ; the
  /// original module ran on smaller cells — default 6 kJ).
  double battery_j = 6000.0;
};

/// Where a node's energy went, per accounting category (joules).
struct EnergyReport {
  double sampling_j = 0.0;
  double radio_j = 0.0;
  double eeprom_j = 0.0;
  double led_j = 0.0;
  double sleep_j = 0.0;

  double total_j() const noexcept {
    return sampling_j + radio_j + eeprom_j + led_j + sleep_j;
  }

  /// Projected battery lifetime in days, extrapolating the observed
  /// average power over `elapsed`. Returns 0 for a zero-length window.
  double projected_lifetime_days(double battery_j,
                                 sim::Duration elapsed) const noexcept {
    const double seconds = elapsed.to_seconds();
    if (seconds <= 0.0 || total_j() <= 0.0) return 0.0;
    const double average_w = total_j() / seconds;
    return battery_j / average_w / 86400.0;
  }
};

/// Books the node's observable activity (samples taken, frames sent,
/// EEPROM writes, LED blinks, elapsed time) against an EnergyProfile.
EnergyReport estimate_energy(const PavenetNode& node, sim::Duration elapsed,
                             const EnergyProfile& profile = {});

}  // namespace coreda::pavenet
