#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace coreda::pavenet {

/// The paper's k-of-n usage vote: a sample "hits" when its excitation
/// surpasses the threshold, and the tool is considered in use when at least
/// `vote_threshold` of the last `vote_window` samples hit.
///
/// The window is evaluated per full batch (the firmware buffers one second
/// of samples at 10 Hz, then votes), matching "if three of these 10 samples
/// surpass a pre-defined threshold".
class ThresholdDetector {
 public:
  /// Throws std::invalid_argument when window is 0 or votes > window.
  ThresholdDetector(double excitation_threshold, std::uint32_t vote_window,
                    std::uint32_t vote_threshold);

  /// Feeds one excitation sample. Returns true when this sample completed a
  /// window whose vote passed (i.e. "tool is in use" was decided now).
  /// Inline: the firmware path calls this once per synthesized sample.
  bool add_sample(double excitation) noexcept {
    if (excitation > threshold_) ++hits_;
    ++filled_;
    if (filled_ < window_) return false;
    const bool in_use = hits_ >= votes_;
    filled_ = 0;
    hits_ = 0;
    return in_use;
  }

  /// Hits in the current (incomplete) window.
  std::uint32_t pending_hits() const noexcept { return hits_; }
  std::uint32_t samples_in_window() const noexcept { return filled_; }

  double threshold() const noexcept { return threshold_; }
  std::uint32_t window() const noexcept { return window_; }
  std::uint32_t votes_needed() const noexcept { return votes_; }

  /// Discards the current partial window.
  void reset() noexcept;

 private:
  double threshold_;
  std::uint32_t window_;
  std::uint32_t votes_;
  std::uint32_t filled_ = 0;
  std::uint32_t hits_ = 0;
};

}  // namespace coreda::pavenet
