#include "pavenet/led.hpp"

#include <memory>

namespace coreda::pavenet {

void Led::blink(LedColor color, std::uint32_t count,
                sim::Duration half_period) {
  pending_.cancel();
  if (count == 0) return;
  set(color, true);
  // The initial "on" is followed by 2*count - 1 toggles (off, on, off, ...)
  // completing `count` full on/off cycles.
  const std::uint32_t total_toggles = 2 * count - 1;
  auto done = std::make_shared<std::uint32_t>(0);
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, color, half_period, total_toggles, done, step]() {
    ++*done;
    set(color, *done % 2 == 0);
    if (*done < total_toggles) {
      pending_ = scheduler_->schedule_after(half_period, *step);
    }
  };
  pending_ = scheduler_->schedule_after(half_period, *step);
}

void Led::all_off() {
  pending_.cancel();
  if (green_on_) set(LedColor::kGreen, false);
  if (red_on_) set(LedColor::kRed, false);
}

bool Led::is_on(LedColor color) const noexcept {
  return color == LedColor::kGreen ? green_on_ : red_on_;
}

std::uint64_t Led::blink_count(LedColor color) const noexcept {
  return color == LedColor::kGreen ? green_blinks_ : red_blinks_;
}

void Led::set(LedColor color, bool on) {
  bool& state = color == LedColor::kGreen ? green_on_ : red_on_;
  if (state == on) return;
  state = on;
  if (!on) {
    // A completed on->off transition closes one blink cycle.
    auto& counter = color == LedColor::kGreen ? green_blinks_ : red_blinks_;
    ++counter;
  }
  history_.push_back(LedEvent{scheduler_->now(), color, on});
}

}  // namespace coreda::pavenet
