#include "pavenet/led.hpp"

namespace coreda::pavenet {

void Led::blink(LedColor color, std::uint32_t count,
                sim::Duration half_period) {
  pending_.cancel();
  if (count == 0) return;
  set(color, true);
  // The initial "on" is followed by 2*count - 1 toggles (off, on, off, ...)
  // completing `count` full on/off cycles.
  blink_color_ = color;
  half_period_ = half_period;
  toggles_done_ = 0;
  total_toggles_ = 2 * count - 1;
  pending_ = scheduler_->schedule_after(half_period, [this] { on_toggle(); });
}

void Led::on_toggle() {
  ++toggles_done_;
  set(blink_color_, toggles_done_ % 2 == 0);
  if (toggles_done_ < total_toggles_) {
    pending_ =
        scheduler_->schedule_after(half_period_, [this] { on_toggle(); });
  }
}

void Led::all_off() {
  pending_.cancel();
  if (green_on_) set(LedColor::kGreen, false);
  if (red_on_) set(LedColor::kRed, false);
}

bool Led::is_on(LedColor color) const noexcept {
  return color == LedColor::kGreen ? green_on_ : red_on_;
}

std::uint64_t Led::blink_count(LedColor color) const noexcept {
  return color == LedColor::kGreen ? green_blinks_ : red_blinks_;
}

void Led::set(LedColor color, bool on) {
  bool& state = color == LedColor::kGreen ? green_on_ : red_on_;
  if (state == on) return;
  state = on;
  if (!on) {
    // A completed on->off transition closes one blink cycle.
    auto& counter = color == LedColor::kGreen ? green_blinks_ : red_blinks_;
    ++counter;
  }
  history_.push_back(LedEvent{scheduler_->now(), color, on});
}

}  // namespace coreda::pavenet
