#pragma once

#include <memory>
#include <vector>

#include "adl/tool.hpp"
#include "pavenet/detector.hpp"
#include "pavenet/eeprom.hpp"
#include "pavenet/led.hpp"
#include "pavenet/node_config.hpp"
#include "pavenet/radio.hpp"
#include "sensors/models.hpp"
#include "sensors/world.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace coreda::pavenet {

/// A simulated PAVENET module attached to one tool.
///
/// The firmware loop runs at FirmwareConfig::sampling_hz on the shared
/// discrete-event scheduler: read the sensor, feed the k-of-n detector, and
/// when a window votes "in use", append an EEPROM record and announce the
/// tool's ID (the node uid) over the radio — throttled to one announcement
/// per reannounce_interval while usage continues. Downlink LED commands
/// drive the green/red indicator LEDs.
///
/// With FirmwareConfig::batch_sampling (the default) the task wakes once
/// per vote window rather than once per sample and synthesizes the window's
/// samples retroactively from the world's episode history — 10× fewer
/// scheduler events at identical sampled values, since the tumbling
/// detector can only vote at window boundaries, which is exactly when the
/// batched task wakes. power_off() flushes the partial window so samples()
/// and detector state match the per-tick loop at any stopping point.
class PavenetNode {
 public:
  /// The node reads its tool's activation from `world` and transmits over
  /// `channel`; all three referenced objects must outlive the node.
  PavenetNode(const adl::Tool& tool, sim::Scheduler& scheduler,
              sensors::ManipulationWorld& world, RadioChannel& channel,
              util::Rng rng, FirmwareConfig config = {});

  PavenetNode(const PavenetNode&) = delete;
  PavenetNode& operator=(const PavenetNode&) = delete;

  /// Begins the periodic firmware task. Idempotent.
  void power_on();

  /// Stops sampling (battery pulled); LED state is retained.
  void power_off();

  std::uint16_t uid() const noexcept { return tool_.id; }
  const adl::Tool& tool() const noexcept { return tool_; }
  const Led& led() const noexcept { return led_; }
  Led& led() noexcept { return led_; }
  const Eeprom& eeprom() const noexcept { return eeprom_; }
  const FirmwareConfig& config() const noexcept { return config_; }
  double threshold() const noexcept { return detector_.threshold(); }

  std::uint64_t announcements() const noexcept { return announcements_; }
  /// Sensor samples taken since construction (energy accounting).
  std::uint64_t samples() const noexcept { return samples_; }

 private:
  void firmware_tick();
  void firmware_batch();
  void synthesize_until(sim::TimePoint limit);
  void process_sample(sim::TimePoint at, double activation);
  void process_excitation(sim::TimePoint at, double excitation);
  void handle_downlink(const Packet& packet);
  sim::Duration sample_period() const noexcept {
    return sim::Duration::micros(1'000'000 / config_.sampling_hz);
  }

  adl::Tool tool_;
  sim::Scheduler* scheduler_;
  sensors::ManipulationWorld* world_;
  RadioChannel* channel_;
  util::Rng rng_;
  FirmwareConfig config_;
  std::unique_ptr<sensors::SensorModel> sensor_;
  ThresholdDetector detector_;
  Led led_;
  Eeprom eeprom_;
  sim::EventHandle tick_;
  bool powered_ = false;
  sim::TimePoint next_sample_time_;      ///< batch mode: next tick to synthesize
  std::vector<double> activation_buf_;   ///< batch mode: per-wake scratch
  sim::TimePoint last_announce_;
  bool announced_once_ = false;
  std::uint64_t announcements_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace coreda::pavenet
