#include "pavenet/eeprom.hpp"

#include <stdexcept>

namespace coreda::pavenet {

Eeprom::Eeprom(std::uint32_t capacity_bytes)
    : capacity_(capacity_bytes / kRecordBytes) {
  if (capacity_ == 0) {
    throw std::invalid_argument("Eeprom: capacity below one record");
  }
  ring_.resize(capacity_);
}

void Eeprom::append(const EepromRecord& record) {
  ring_[head_] = record;
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++writes_;
}

std::vector<EepromRecord> Eeprom::dump() const {
  std::vector<EepromRecord> out;
  out.reserve(size_);
  // Oldest record sits at head_ when wrapped, else at 0.
  const std::size_t start = size_ == capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::optional<EepromRecord> Eeprom::last() const {
  if (size_ == 0) return std::nullopt;
  return ring_[(head_ + capacity_ - 1) % capacity_];
}

}  // namespace coreda::pavenet
