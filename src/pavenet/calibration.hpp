#pragma once

#include "sensors/models.hpp"
#include "util/rng.hpp"

namespace coreda::pavenet {

/// How a deployment arrives at the paper's "pre-defined threshold" without
/// hand-tuning: record the sensor while the tool is untouched, take a high
/// quantile of the idle excitation, and add a safety margin. Anything
/// above that is treated as manipulation.
struct CalibrationConfig {
  std::size_t idle_samples = 2000;  ///< ~3 min of idle recording at 10 Hz
  /// Idle-noise percentile kept below the threshold. 99.0 leaves head-room
  /// for the handful of accidental-bump samples a few minutes of idle
  /// recording contains (~0.4 % of samples): a higher quantile would
  /// occasionally land ON a bump and inflate the threshold past the weak
  /// tools' signals.
  double quantile = 99.0;
  double margin = 1.8;  ///< multiplier above the quantile
};

/// Result of calibrating one node.
struct CalibrationResult {
  double threshold = 0.0;
  double idle_mean = 0.0;
  double idle_quantile = 0.0;
};

/// Runs the idle recording against `model` and derives the threshold.
/// The model's bump artifacts are part of the recording — the quantile
/// (not the max) keeps rare accidental knocks from inflating the
/// threshold. Throws std::invalid_argument on a non-positive sample count
/// or out-of-range quantile/margin.
CalibrationResult calibrate_threshold(sensors::SensorModel& model,
                                      util::Rng& rng,
                                      CalibrationConfig config = {});

}  // namespace coreda::pavenet
