#include "pavenet/base_station.hpp"

#include <algorithm>

namespace coreda::pavenet {

BaseStation::BaseStation(sim::Scheduler& scheduler, RadioChannel& channel)
    : BaseStation(scheduler, channel, Params{}) {}

BaseStation::BaseStation(sim::Scheduler& scheduler, RadioChannel& channel,
                         Params params)
    : scheduler_(&scheduler), channel_(&channel), params_(params) {
  channel_->attach_receiver(0,
                            [this](const Packet& p) { handle_uplink(p); });
  // Sessions vary in episode count, so a capacity learned from early
  // sessions can still be outgrown later; pre-size for the worst realistic
  // session so the per-report path stays allocation-free once warm.
  episodes_.reserve(kEpisodeReserve);
  pending_downlinks_.reserve(kDownlinkReserve);
  free_downlinks_.reserve(kDownlinkReserve);
}

void BaseStation::add_listener(UsageListener listener) {
  listeners_.push_back(listener);
}

void BaseStation::provision_tools(std::size_t count) {
  if (open_episode_.size() < count) open_episode_.resize(count, kNoEpisode);
}

void BaseStation::send_led_command(adl::ToolId tool, LedColor color,
                                   std::uint8_t blink_count) {
  Packet packet;
  packet.kind = Packet::Kind::kLedCommand;
  packet.source_uid = 0;
  packet.dest_uid = tool;
  packet.led_color = color;
  packet.blink_count = blink_count;

  // Serialize our own transmissions: back-to-back commands (green + red of
  // one reminder) would otherwise collide on the shared channel.
  const sim::TimePoint now = scheduler_->now();
  const sim::TimePoint slot =
      next_downlink_slot_ > now ? next_downlink_slot_ : now;
  next_downlink_slot_ = slot + params_.downlink_spacing;
  if (slot == now) {
    channel_->transmit(packet);
    return;
  }
  // Park the packet in the pool so the deferred callback captures only
  // {this, index} — small enough to stay in std::function's inline buffer.
  std::size_t index;
  if (!free_downlinks_.empty()) {
    index = free_downlinks_.back();
    free_downlinks_.pop_back();
  } else {
    pending_downlinks_.emplace_back();
    index = pending_downlinks_.size() - 1;
    // Keep the free list big enough that the deferred callback's
    // free_downlinks_.push_back below can never reallocate.
    if (free_downlinks_.capacity() < pending_downlinks_.size()) {
      free_downlinks_.reserve(pending_downlinks_.capacity());
    }
  }
  pending_downlinks_[index] = packet;
  scheduler_->schedule_at(slot, [this, index] {
    const Packet queued = pending_downlinks_[index];
    free_downlinks_.push_back(index);
    channel_->transmit(queued);
  });
}

void BaseStation::handle_uplink(const Packet& packet) {
  if (packet.kind != Packet::Kind::kToolUsage) return;
  ++packets_;
  const auto tool = static_cast<adl::ToolId>(packet.source_uid);
  const sim::TimePoint now = scheduler_->now();

  if (tool < open_episode_.size() && open_episode_[tool] != kNoEpisode) {
    ToolUsageEvent& ep = episodes_[open_episode_[tool]];
    if (now - ep.last_seen <= params_.merge_gap) {
      ep.last_seen = now;
      ++ep.reports;
      return;
    }
  }

  // New episode: record it and notify listeners of the usage edge.
  episodes_.push_back(ToolUsageEvent{tool, now, now, 1});
  if (tool >= open_episode_.size()) {
    open_episode_.resize(tool + 1, kNoEpisode);
  }
  open_episode_[tool] = static_cast<std::uint32_t>(episodes_.size() - 1);
  for (const UsageListener& listener : listeners_) listener(tool, now);
}

void BaseStation::reset_usage_history() noexcept {
  episodes_.clear();
  std::fill(open_episode_.begin(), open_episode_.end(), kNoEpisode);
}

}  // namespace coreda::pavenet
