#include "pavenet/base_station.hpp"

namespace coreda::pavenet {

BaseStation::BaseStation(sim::Scheduler& scheduler, RadioChannel& channel)
    : BaseStation(scheduler, channel, Params{}) {}

BaseStation::BaseStation(sim::Scheduler& scheduler, RadioChannel& channel,
                         Params params)
    : scheduler_(&scheduler), channel_(&channel), params_(params) {
  channel_->attach_receiver(0,
                            [this](const Packet& p) { handle_uplink(p); });
}

void BaseStation::add_listener(UsageListener listener) {
  listeners_.push_back(std::move(listener));
}

void BaseStation::send_led_command(adl::ToolId tool, LedColor color,
                                   std::uint8_t blink_count) {
  Packet packet;
  packet.kind = Packet::Kind::kLedCommand;
  packet.source_uid = 0;
  packet.dest_uid = tool;
  packet.led_color = color;
  packet.blink_count = blink_count;

  // Serialize our own transmissions: back-to-back commands (green + red of
  // one reminder) would otherwise collide on the shared channel.
  const sim::TimePoint now = scheduler_->now();
  const sim::TimePoint slot =
      next_downlink_slot_ > now ? next_downlink_slot_ : now;
  next_downlink_slot_ = slot + params_.downlink_spacing;
  if (slot == now) {
    channel_->transmit(packet);
  } else {
    scheduler_->schedule_at(slot,
                            [this, packet] { channel_->transmit(packet); });
  }
}

void BaseStation::handle_uplink(const Packet& packet) {
  if (packet.kind != Packet::Kind::kToolUsage) return;
  ++packets_;
  const auto tool = static_cast<adl::ToolId>(packet.source_uid);
  const sim::TimePoint now = scheduler_->now();

  const auto it = open_episode_.find(tool);
  if (it != open_episode_.end()) {
    ToolUsageEvent& ep = episodes_[it->second];
    if (now - ep.last_seen <= params_.merge_gap) {
      ep.last_seen = now;
      ++ep.reports;
      return;
    }
  }

  // New episode: record it and notify listeners of the usage edge.
  episodes_.push_back(ToolUsageEvent{tool, now, now, 1});
  open_episode_[tool] = episodes_.size() - 1;
  for (const auto& listener : listeners_) listener(tool, now);
}

}  // namespace coreda::pavenet
