#include "pavenet/calibration.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace coreda::pavenet {

CalibrationResult calibrate_threshold(sensors::SensorModel& model,
                                      util::Rng& rng,
                                      CalibrationConfig config) {
  if (config.idle_samples == 0) {
    throw std::invalid_argument("calibrate_threshold: no idle samples");
  }
  if (config.quantile <= 0.0 || config.quantile > 100.0) {
    throw std::invalid_argument("calibrate_threshold: quantile range");
  }
  if (config.margin <= 0.0) {
    throw std::invalid_argument("calibrate_threshold: margin must be > 0");
  }

  util::SampleSet idle;
  for (std::size_t i = 0; i < config.idle_samples; ++i) {
    idle.add(model.sample(sim::TimePoint::origin(), /*activation=*/0.0,
                          /*intensity=*/1.0, rng));
  }

  CalibrationResult result;
  result.idle_mean = idle.mean();
  result.idle_quantile = idle.percentile(config.quantile);
  result.threshold = result.idle_quantile * config.margin;
  return result;
}

}  // namespace coreda::pavenet
