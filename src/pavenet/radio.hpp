#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "faults/faults.hpp"
#include "pavenet/led.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace coreda::pavenet {

/// On-air message. PAVENET's CC1000 payloads are tiny; we model exactly the
/// two frames CoReDA needs: uplink tool-usage announcements and downlink LED
/// commands from the reminding subsystem.
struct Packet {
  enum class Kind : std::uint8_t { kToolUsage, kLedCommand };

  Kind kind = Kind::kToolUsage;
  std::uint16_t source_uid = 0;  ///< 0 = base station
  std::uint16_t dest_uid = 0;    ///< 0 = base station
  std::uint64_t seq = 0;
  sim::TimePoint sent_at;

  // kToolUsage payload.
  std::uint8_t vote_hits = 0;

  // kLedCommand payload.
  LedColor led_color = LedColor::kGreen;
  std::uint8_t blink_count = 0;
};

/// Delivery statistics of a RadioChannel.
struct ChannelStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost_noise = 0;      ///< independent random loss
  std::uint64_t lost_collision = 0;  ///< overlapping transmissions
  std::uint64_t lost_fault = 0;      ///< injected Gilbert–Elliott burst loss
  std::uint64_t undeliverable = 0;   ///< no receiver registered for dest

  double delivery_ratio() const noexcept {
    return sent > 0 ? static_cast<double>(delivered) / sent : 1.0;
  }
};

/// Single-frequency broadcast medium in the spirit of the CC1000: no MAC
/// beyond "transmit and hope", so overlapping transmissions collide and
/// independent fading drops a configurable fraction of frames.
///
/// The collision model is pessimistic-simple: any two frames whose airtime
/// windows overlap are both lost. Airtime is fixed per frame.
///
/// In-flight bookkeeping lives in a reusable slot pool and the scheduled
/// delivery/cleanup callbacks capture only {channel, slot index} — small
/// enough for std::function's inline buffer — so a warm channel transmits
/// without touching the heap (the packet itself is stored in the slot, never
/// in a callback capture).
class RadioChannel {
 public:
  struct Params {
    double loss_probability = 0.0;  ///< independent per-frame loss
    sim::Duration latency = sim::Duration::millis(5);
    sim::Duration latency_jitter = sim::Duration::millis(2);
    sim::Duration airtime = sim::Duration::millis(4);
    bool model_collisions = true;
  };

  using Receiver = std::function<void(const Packet&)>;

  RadioChannel(sim::Scheduler& scheduler, util::Rng rng);
  RadioChannel(sim::Scheduler& scheduler, util::Rng rng, Params params);

  /// Registers the receiver for a uid (0 = base station). Replaces any
  /// previous registration.
  void attach_receiver(std::uint16_t uid, Receiver receiver);

  /// Pre-sizes the in-flight slot pool for `frames` simultaneous frames.
  /// Capacity hint only — the pool still grows on demand past it.
  void reserve(std::size_t frames);

  /// Queues a frame for transmission at the current virtual time.
  void transmit(Packet packet);

  const ChannelStats& stats() const noexcept { return stats_; }
  const Params& params() const noexcept { return params_; }
  void set_loss_probability(double p) noexcept {
    params_.loss_probability = p;
  }

  /// Arms the injected Gilbert–Elliott burst-loss chain against `site`
  /// (typically a fleet-wide "radio.loss_burst" handle) with this channel's
  /// global lane id. The chain advances once per transmitted frame from its
  /// own per-lane stream, so it never perturbs the channel's fading RNG and
  /// stays deterministic at any --jobs (each channel is driven by exactly
  /// one shard's serial frame sequence).
  void arm_fault_burst(faults::Site& site, std::uint64_t lane) noexcept {
    fault_burst_.arm(site, lane);
  }
  const faults::BurstState& fault_burst() const noexcept {
    return fault_burst_;
  }

 private:
  /// One frame on the air. Slots are pool-allocated and recycled when the
  /// frame's airtime (plus delivery latency) has passed.
  struct Slot {
    Packet packet;
    sim::TimePoint start;
    sim::TimePoint end;
    sim::EventHandle delivery;
    bool collided = false;
    bool active = false;
  };

  std::size_t acquire_slot();
  void release_slot(std::size_t index) noexcept;
  void deliver(const Packet& packet);

  sim::Scheduler* scheduler_;
  util::Rng rng_;
  faults::BurstState fault_burst_;
  Params params_;
  ChannelStats stats_;
  std::uint64_t next_seq_ = 0;
  std::vector<Receiver> receivers_;  ///< dense, indexed by uid
  std::vector<Slot> slots_;
  std::vector<std::size_t> free_slots_;
};

}  // namespace coreda::pavenet
