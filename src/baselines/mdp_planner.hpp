#pragma once

#include <map>
#include <vector>

#include "baselines/predictor.hpp"
#include "planning/codec.hpp"
#include "planning/reward.hpp"

namespace coreda::baselines {

/// Model-based planner in the spirit of Boger et al. [1] (the hand-washing
/// MDP system the paper compares itself against conceptually).
///
/// It estimates a transition model P(next | prev, cur) by counting, then
/// solves the finite-horizon prompting MDP by value iteration with the same
/// reward structure CoReDA uses. With a correct model this is the Bayes-
/// optimal prompter; its cost is that the model must be (re)fit and the MDP
/// (re)solved after new data — the paper's criticism that pre-planned
/// models do not track individual users cheaply.
class MdpPlanner final : public NextStepPredictor {
 public:
  struct Config {
    double gamma = 0.9;
    double epsilon = 1e-6;     ///< value-iteration stop criterion
    std::size_t max_sweeps = 1000;
    planning::RewardConfig reward{};
  };

  /// `adl` must outlive the planner.
  explicit MdpPlanner(const adl::Adl& adl);
  MdpPlanner(const adl::Adl& adl, Config config);

  void train(std::span<const adl::StepId> episode) override;
  std::optional<adl::ToolId> predict(adl::StepId prev,
                                     adl::StepId cur) const override;
  std::string_view name() const override { return "mdp-vi"; }

  /// Re-solves the MDP from the current counts. Called lazily by predict();
  /// exposed for benchmarking the planning cost.
  void solve() const;

  std::size_t sweeps_last_solve() const noexcept { return sweeps_; }

 private:
  const adl::Adl* adl_;
  Config config_;
  planning::StateCodec states_;
  planning::ActionCodec actions_;
  planning::CoredaRewardFunction reward_;

  /// counts_[s][next_symbol_index] — estimated environment dynamics.
  std::map<rl::StateId, std::map<adl::StepId, std::uint64_t>> counts_;
  std::map<rl::StateId, bool> terminal_after_;  ///< episodes ended in s

  mutable std::vector<double> value_;
  mutable std::vector<rl::ActionId> policy_;
  mutable bool solved_ = false;
  mutable std::size_t sweeps_ = 0;
};

}  // namespace coreda::baselines
