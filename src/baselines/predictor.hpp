#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "adl/routine.hpp"
#include "adl/types.hpp"

namespace coreda::baselines {

/// Common face of every next-step predictor in the comparison benches:
/// the paper's TD(λ) planner, the MDP planner of Boger et al. [1], simple
/// frequency models, and the oracle upper bound.
class NextStepPredictor {
 public:
  virtual ~NextStepPredictor() = default;

  /// Consumes one complete ADL process (a StepId sequence).
  virtual void train(std::span<const adl::StepId> episode) = 0;

  /// The tool the user should use next given the <prev, cur> context;
  /// nullopt when the model has no opinion (unseen context).
  virtual std::optional<adl::ToolId> predict(adl::StepId prev,
                                             adl::StepId cur) const = 0;

  virtual std::string_view name() const = 0;
};

/// Upper bound: reads the next step straight out of the reference routine.
class OraclePredictor final : public NextStepPredictor {
 public:
  /// `routine` must outlive the predictor.
  explicit OraclePredictor(const adl::AdlRoutine& routine)
      : routine_(&routine) {}

  void train(std::span<const adl::StepId>) override {}

  std::optional<adl::ToolId> predict(adl::StepId /*prev*/,
                                     adl::StepId cur) const override {
    const adl::StepId next = routine_->next_after(cur);
    if (next == adl::kIdleStep) return std::nullopt;
    return next;
  }

  std::string_view name() const override { return "oracle"; }

 private:
  const adl::AdlRoutine* routine_;
};

}  // namespace coreda::baselines
