#pragma once

#include <cstdint>
#include <map>

#include "baselines/predictor.hpp"

namespace coreda::baselines {

/// First-order frequency model: predicts argmax_next count(cur -> next).
///
/// Cheap and surprisingly strong on single-routine ADLs; its weakness —
/// no second-order context — shows up on multi-routine data, which is what
/// the comparison bench demonstrates.
class MarkovChainPredictor final : public NextStepPredictor {
 public:
  void train(std::span<const adl::StepId> episode) override;
  std::optional<adl::ToolId> predict(adl::StepId prev,
                                     adl::StepId cur) const override;
  std::string_view name() const override { return "markov-1"; }

  std::uint64_t transitions_seen() const noexcept { return total_; }

 private:
  std::map<adl::StepId, std::map<adl::StepId, std::uint64_t>> counts_;
  std::uint64_t total_ = 0;
};

/// Second-order frequency model over the same <prev, cur> context the
/// paper's planner uses, but fit by counting instead of TD-learning.
/// Separates "is TD-learning needed?" from "is the context enough?" in the
/// baseline comparison.
class BigramPredictor final : public NextStepPredictor {
 public:
  void train(std::span<const adl::StepId> episode) override;
  std::optional<adl::ToolId> predict(adl::StepId prev,
                                     adl::StepId cur) const override;
  std::string_view name() const override { return "bigram"; }

 private:
  using Context = std::pair<adl::StepId, adl::StepId>;
  std::map<Context, std::map<adl::StepId, std::uint64_t>> counts_;
};

}  // namespace coreda::baselines
