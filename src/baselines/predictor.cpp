#include "baselines/predictor.hpp"

// Interface + oracle are header-only; this TU anchors the library target.
