#include "baselines/markov.hpp"

namespace coreda::baselines {

namespace {

template <typename CountMap>
std::optional<adl::ToolId> argmax_count(const CountMap& counts) {
  if (counts.empty()) return std::nullopt;
  adl::StepId best = 0;
  std::uint64_t best_count = 0;
  for (const auto& [next, count] : counts) {
    // Strict > keeps the lowest id on ties, matching the deterministic
    // tie-breaks used elsewhere.
    if (count > best_count) {
      best_count = count;
      best = next;
    }
  }
  return static_cast<adl::ToolId>(best);
}

}  // namespace

void MarkovChainPredictor::train(std::span<const adl::StepId> episode) {
  for (std::size_t i = 1; i < episode.size(); ++i) {
    ++counts_[episode[i - 1]][episode[i]];
    ++total_;
  }
}

std::optional<adl::ToolId> MarkovChainPredictor::predict(
    adl::StepId /*prev*/, adl::StepId cur) const {
  const auto it = counts_.find(cur);
  if (it == counts_.end()) return std::nullopt;
  return argmax_count(it->second);
}

void BigramPredictor::train(std::span<const adl::StepId> episode) {
  adl::StepId prev = adl::kIdleStep;
  for (std::size_t i = 1; i < episode.size(); ++i) {
    ++counts_[{prev, episode[i - 1]}][episode[i]];
    prev = episode[i - 1];
  }
}

std::optional<adl::ToolId> BigramPredictor::predict(adl::StepId prev,
                                                    adl::StepId cur) const {
  const auto it = counts_.find({prev, cur});
  if (it == counts_.end()) return std::nullopt;
  return argmax_count(it->second);
}

}  // namespace coreda::baselines
