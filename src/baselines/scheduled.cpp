#include "baselines/scheduled.hpp"

#include <algorithm>

namespace coreda::baselines {

ScheduledReminderPlan::ScheduledReminderPlan(const adl::AdlRoutine& routine,
                                             double slack)
    : routine_(&routine), slack_(slack) {}

void ScheduledReminderPlan::observe_step(adl::ToolId tool,
                                         sim::Duration offset) {
  if (!routine_->index_of_tool(tool)) return;
  offsets_[tool].add(offset.to_seconds());
  ++observations_;
}

std::vector<ScheduledReminderPlan::Entry> ScheduledReminderPlan::schedule()
    const {
  std::vector<Entry> out;
  double last_known = 0.0;
  for (const adl::AdlStep& step : routine_->steps()) {
    const auto it = offsets_.find(step.tool);
    double at;
    if (it != offsets_.end() && it->second.count() > 0) {
      at = it->second.mean() + slack_ * it->second.stddev();
      last_known = at;
    } else {
      // Untrained step: space it a nominal 30 s after the previous one.
      at = last_known + 30.0;
      last_known = at;
    }
    out.push_back(Entry{step.tool, sim::Duration::seconds(at)});
  }
  // Offsets must be non-decreasing even if the training data was odd.
  for (std::size_t i = 1; i < out.size(); ++i) {
    out[i].at = std::max(out[i].at, out[i - 1].at);
  }
  return out;
}

}  // namespace coreda::baselines
