#pragma once

#include <map>
#include <vector>

#include "adl/routine.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

namespace coreda::baselines {

/// Time-based reminding, after Pollack et al.'s Autominder [3] — the
/// "pre-planned routines" approach the paper's introduction criticizes:
/// prompts fire when the *clock* says a step is due, not when the user's
/// observed context says they are stuck.
///
/// The plan learns each step's mean start offset (from activity start) and
/// a dispersion allowance from recorded sessions, then emits one prompt
/// per step at `mean + slack * stddev`. No sensing is consulted at
/// delivery time; that blindness — premature prompts, prompts for steps
/// already done — is exactly what the scheduled-vs-context bench
/// quantifies.
class ScheduledReminderPlan {
 public:
  /// `routine` must outlive the plan. `slack` scales the per-step stddev
  /// added to the mean offset (0 = prompt at the mean).
  explicit ScheduledReminderPlan(const adl::AdlRoutine& routine,
                                 double slack = 1.0);

  /// Records one observed step start: `tool` began `offset` after the
  /// activity started. Tools outside the routine are ignored.
  void observe_step(adl::ToolId tool, sim::Duration offset);

  /// One planned prompt.
  struct Entry {
    adl::ToolId tool = adl::kNoTool;
    sim::Duration at;  ///< offset from activity start
  };

  /// The prompt schedule, in firing order. Steps never observed during
  /// training fall back to evenly spaced defaults after the last trained
  /// step.
  std::vector<Entry> schedule() const;

  std::size_t observations() const noexcept { return observations_; }
  const adl::AdlRoutine& routine() const noexcept { return *routine_; }

 private:
  const adl::AdlRoutine* routine_;
  double slack_;
  std::map<adl::ToolId, util::RunningStats> offsets_;
  std::size_t observations_ = 0;
};

}  // namespace coreda::baselines
