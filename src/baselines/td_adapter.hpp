#pragma once

#include "baselines/predictor.hpp"
#include "planning/learner.hpp"

namespace coreda::baselines {

/// Wraps the paper's TD(λ) RoutineLearner behind the common predictor
/// interface so the comparison benches treat every method uniformly.
class TdLambdaPredictor final : public NextStepPredictor {
 public:
  TdLambdaPredictor(const adl::Adl& adl, util::Rng rng,
                    planning::LearnerConfig config = planning::LearnerConfig())
      : learner_(adl, rng, config) {}

  void train(std::span<const adl::StepId> episode) override {
    learner_.train_episode(episode);
  }

  std::optional<adl::ToolId> predict(adl::StepId prev,
                                     adl::StepId cur) const override {
    const auto prompt = learner_.predict(prev, cur);
    if (!prompt) return std::nullopt;
    return prompt->action.tool;
  }

  std::string_view name() const override { return "td-lambda"; }

  const planning::RoutineLearner& learner() const noexcept {
    return learner_;
  }

 private:
  planning::RoutineLearner learner_;
};

}  // namespace coreda::baselines
