#include "baselines/mdp_planner.hpp"

#include <algorithm>
#include <limits>
#include <cmath>

namespace coreda::baselines {

namespace {

std::vector<adl::StepId> step_vocabulary(const adl::Adl& adl) {
  std::vector<adl::StepId> out;
  for (adl::ToolId t : adl.tools()) out.push_back(t);
  return out;
}

}  // namespace

MdpPlanner::MdpPlanner(const adl::Adl& adl) : MdpPlanner(adl, Config{}) {}

MdpPlanner::MdpPlanner(const adl::Adl& adl, Config config)
    : adl_(&adl),
      config_(config),
      states_(step_vocabulary(adl)),
      actions_(adl.tools()),
      reward_(config.reward) {}

void MdpPlanner::train(std::span<const adl::StepId> episode) {
  adl::StepId prev = adl::kIdleStep;
  for (std::size_t i = 1; i < episode.size(); ++i) {
    const auto s =
        states_.encode(planning::PlannerState{prev, episode[i - 1]});
    if (s) {
      ++counts_[*s][episode[i]];
      // Mark a state terminal only when the episode genuinely completed an
      // ADL there — a recording truncated by sensing loss merely *ends*.
      if (i + 1 == episode.size()) {
        bool completes = false;
        for (const adl::AdlRoutine& r : adl_->routines()) {
          if (r.is_terminal(episode[i])) completes = true;
        }
        if (completes) {
          const auto s_term = states_.encode(
              planning::PlannerState{episode[i - 1], episode[i]});
          if (s_term) terminal_after_[*s_term] = true;
        }
      }
    }
    prev = episode[i - 1];
  }
  solved_ = false;
}

void MdpPlanner::solve() const {
  const std::size_t n = states_.num_states();
  value_.assign(n, 0.0);
  policy_.assign(n, 0);

  sweeps_ = 0;
  double delta = config_.epsilon + 1.0;
  while (delta > config_.epsilon && sweeps_ < config_.max_sweeps) {
    delta = 0.0;
    ++sweeps_;
    for (const auto& [s, outgoing] : counts_) {
      std::uint64_t total = 0;
      for (const auto& [next, c] : outgoing) total += c;
      if (total == 0) continue;

      double best_q = -std::numeric_limits<double>::infinity();
      rl::ActionId best_a = 0;
      for (rl::ActionId a = 0; a < actions_.num_actions(); ++a) {
        const planning::PlannerAction action = actions_.decode(a);
        double q = 0.0;
        for (const auto& [next, c] : outgoing) {
          const double p = static_cast<double>(c) / static_cast<double>(total);
          const planning::PlannerState cur = states_.decode(s);
          const auto s_next =
              states_.encode(planning::PlannerState{cur.cur, next});
          const bool is_terminal =
              s_next && terminal_after_.count(*s_next) > 0;
          const double r = reward_(action, next, is_terminal);
          const double v_next =
              (s_next && !is_terminal) ? value_[*s_next] : 0.0;
          q += p * (r + config_.gamma * v_next);
        }
        if (q > best_q) {
          best_q = q;
          best_a = a;
        }
      }
      delta = std::max(delta, std::abs(best_q - value_[s]));
      value_[s] = best_q;
      policy_[s] = best_a;
    }
  }
  solved_ = true;
}

std::optional<adl::ToolId> MdpPlanner::predict(adl::StepId prev,
                                               adl::StepId cur) const {
  const auto s = states_.encode(planning::PlannerState{prev, cur});
  if (!s || counts_.find(*s) == counts_.end()) return std::nullopt;
  if (!solved_) solve();
  return actions_.decode(policy_[*s]).tool;
}

}  // namespace coreda::baselines
