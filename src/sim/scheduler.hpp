#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace coreda::sim {

class Scheduler;

/// Handle to a scheduled event; lets the owner cancel it before it fires.
///
/// Copyable (copies refer to the same scheduler slot, so a cancel() through
/// any copy stops the event). A default-constructed handle refers to nothing
/// and is inert. Handles must not be used after their Scheduler is
/// destroyed; they hold a (slot, generation) ticket, not ownership.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing (again, for periodic series). Safe to
  /// call repeatedly and after the event has already fired.
  void cancel() noexcept;

  bool valid() const noexcept { return scheduler_ != nullptr; }

  /// True when the event will never fire again: it was cancelled, it was a
  /// one-shot that already fired, or it was a periodic series that ended
  /// (cancelled or killed by a throwing callback).
  bool cancelled() const noexcept;

 private:
  friend class Scheduler;
  EventHandle(Scheduler* scheduler, std::uint32_t slot,
              std::uint64_t generation) noexcept
      : scheduler_(scheduler), slot_(slot), generation_(generation) {}

  Scheduler* scheduler_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

/// Deterministic single-threaded discrete-event scheduler.
///
/// Events at equal timestamps fire in insertion order (a monotonically
/// increasing sequence number breaks ties), which keeps co-scheduled
/// periodic tasks — e.g. many PAVENET firmware ticks — deterministic.
///
/// Cancellation is tracked in a generation-counted slot pool instead of a
/// heap-allocated flag per event: scheduling, firing and rescheduling a
/// periodic series allocate nothing on the steady-state path (the slot and
/// the event's callback are reused across periods), which matters when many
/// trial simulations run concurrently and each fires millions of 10 Hz
/// ticks. A Scheduler instance is single-threaded by design; parallel
/// experiments give every trial its own Scheduler (see exec::TrialRunner).
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  TimePoint now() const noexcept { return now_; }

  /// Pre-sizes the event heap and the slot pool for `events` simultaneously
  /// pending events. Purely a capacity hint: a cold system's first session
  /// otherwise pays the growth allocations mid-run, which shows up in the
  /// serving benches' allocs_per_session.
  void reserve(std::size_t events);

  /// Schedules `fn` at absolute time `when`. Scheduling in the past is a
  /// programming error and throws std::invalid_argument.
  EventHandle schedule_at(TimePoint when, Callback fn);

  /// Schedules `fn` `delay` after the current virtual time.
  EventHandle schedule_after(Duration delay, Callback fn);

  /// Schedules `fn` every `period`, first firing at now + period. Cancel
  /// via the returned handle to stop the series. A callback that throws
  /// ends the series: the exception propagates to the run() caller and the
  /// handle observes cancelled() == true.
  EventHandle schedule_periodic(Duration period, Callback fn);

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events fired.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamps <= deadline, then advances the clock to the
  /// deadline. Returns the number of events fired.
  std::size_t run_until(TimePoint deadline);

  /// Runs for `span` of virtual time from the current instant.
  std::size_t run_for(Duration span) { return run_until(now_ + span); }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

 private:
  friend class EventHandle;

  struct Event {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
    Duration period;  ///< zero duration = one-shot
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Cancellation state of one live event. Freed slots bump `generation`,
  /// so stale handles (whose generation no longer matches) read as "event
  /// is gone" rather than touching an unrelated event.
  struct Slot {
    std::uint64_t generation = 0;
    bool cancelled = false;
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;
  bool slot_cancelled(std::uint32_t slot, std::uint64_t generation) const
      noexcept;
  void cancel_slot(std::uint32_t slot, std::uint64_t generation) noexcept;

  void push_event(Event event);
  Event pop_event();
  bool fire_next();

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> heap_;  ///< binary heap ordered by Later
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace coreda::sim
