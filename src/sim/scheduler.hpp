#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace coreda::sim {

/// Handle to a scheduled event; lets the owner cancel it before it fires.
///
/// Copyable (shared ownership of the cancellation flag). A default-
/// constructed handle refers to nothing and is inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call repeatedly and after the
  /// event has already fired.
  void cancel() noexcept {
    if (cancelled_) *cancelled_ = true;
  }

  bool valid() const noexcept { return cancelled_ != nullptr; }
  bool cancelled() const noexcept { return cancelled_ && *cancelled_; }

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> flag)
      : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

/// Deterministic single-threaded discrete-event scheduler.
///
/// Events at equal timestamps fire in insertion order (a monotonically
/// increasing sequence number breaks ties), which keeps co-scheduled
/// periodic tasks — e.g. many PAVENET firmware ticks — deterministic.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  TimePoint now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `when`. Scheduling in the past is a
  /// programming error and throws std::invalid_argument.
  EventHandle schedule_at(TimePoint when, Callback fn);

  /// Schedules `fn` `delay` after the current virtual time.
  EventHandle schedule_after(Duration delay, Callback fn);

  /// Schedules `fn` every `period`, first firing at now + period.
  /// Cancel via the returned handle to stop the series.
  EventHandle schedule_periodic(Duration period, Callback fn);

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events fired.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamps <= deadline, then advances the clock to the
  /// deadline. Returns the number of events fired.
  std::size_t run_until(TimePoint deadline);

  /// Runs for `span` of virtual time from the current instant.
  std::size_t run_for(Duration span) { return run_until(now_ + span); }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    std::shared_ptr<bool> cancelled;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool fire_next();

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace coreda::sim
