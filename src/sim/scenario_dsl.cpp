#include "sim/scenario_dsl.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <string_view>

#include "util/plan_text.hpp"

namespace coreda::sim {
namespace {

constexpr std::string_view kContext = "scenario plan";

/// Shortest decimal form that parses back to exactly the same double —
/// what makes parse(save(p)) == p hold for arbitrary fuzzed values, not
/// just pretty ones.
std::string format_double(double d) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
  return std::string(buf, end);
}

bool parse_bool(const std::string& v, std::size_t line_no, std::size_t col) {
  if (v == "true") return true;
  if (v == "false") return false;
  util::parse_fail(kContext, line_no, col,
                   "expected true|false, got '" + v + "'");
}

double parse_unit_interval(const std::string& v, std::size_t line_no,
                           std::size_t col, const std::string& key) {
  const double d = util::parse_double(kContext, v, line_no, col);
  if (d < 0.0 || d > 1.0) {
    util::parse_fail(kContext, line_no, col,
                     key + " must be in [0, 1], got '" + v + "'");
  }
  return d;
}

}  // namespace

ScenarioPlan ScenarioPlan::parse(std::istream& in) {
  ScenarioPlan plan;
  ScenarioPart* current = nullptr;
  std::size_t part_line = 0;  // header line of the part being filled
  std::string line;
  std::size_t line_no = 0;

  const auto finalize_part = [&] {
    if (current != nullptr && current->is_interrupt() &&
        current->pause_s <= 0.0) {
      util::parse_fail(kContext, part_line, 1,
                       "[interrupt] needs pause_s > 0");
    }
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string text = util::trim(line);
    if (text.empty() || text[0] == '#') continue;
    const std::size_t lead = util::leading_ws(line);
    if (text.front() == '[') {
      finalize_part();
      if (text.back() != ']') {
        util::parse_fail(kContext, line_no, lead + 1, "unterminated section");
      }
      const std::string header = util::trim(text.substr(1, text.size() - 2));
      if (header == "interrupt") {
        plan.parts.emplace_back();
      } else if (header.rfind("segment ", 0) == 0) {
        // trim() already guarantees the tail is non-empty: a nameless
        // "[segment ]" loses its trailing space and lands in the
        // expected-ADL diagnostic below, as FaultPlan's sections do.
        plan.parts.emplace_back();
        plan.parts.back().adl = util::trim(header.substr(8));
      } else {
        util::parse_fail(
            kContext, line_no, lead + 1,
            "expected [segment ADL] or [interrupt], got [" + header + "]");
      }
      current = &plan.parts.back();
      part_line = line_no;
      continue;
    }
    if (text.find('=') == std::string::npos) {
      util::parse_fail(kContext, line_no, lead + 1,
                       "expected key = value, got '" + text + "'");
    }
    const util::KeyValue kv = util::split_key_value(kContext, text, line_no);
    const std::string& key = kv.key;
    const std::string& value = kv.value;
    const std::size_t vcol = lead + kv.value_col;
    const std::size_t kcol = lead + kv.key_col;
    if (current == nullptr) {
      if (key == "seed") {
        plan.seed = util::parse_u64(kContext, value, line_no, vcol);
      } else if (key == "users") {
        plan.users = util::parse_u64(kContext, value, line_no, vcol);
        if (plan.users == 0) {
          util::parse_fail(kContext, line_no, vcol, "users must be >= 1");
        }
      } else if (key == "rounds") {
        plan.rounds = util::parse_u64(kContext, value, line_no, vcol);
        if (plan.rounds == 0) {
          util::parse_fail(kContext, line_no, vcol, "rounds must be >= 1");
        }
      } else if (key == "severity") {
        plan.severity =
            parse_unit_interval(value, line_no, vcol, "severity");
      } else if (key == "severity_drift") {
        plan.severity_drift =
            parse_unit_interval(value, line_no, vcol, "severity_drift");
      } else if (key == "compliance_decay") {
        plan.compliance_decay =
            parse_unit_interval(value, line_no, vcol, "compliance_decay");
      } else if (key == "arrivals") {
        if (value != "all" && value != "roundrobin") {
          util::parse_fail(kContext, line_no, vcol,
                           "arrivals must be all|roundrobin, got '" + value +
                               "'");
        }
        plan.arrivals = value;
      } else if (key == "active") {
        plan.active = util::parse_u64(kContext, value, line_no, vcol);
      } else if (key == "hint") {
        plan.hint = value;
      } else if (key == "max_minutes") {
        plan.max_minutes = util::parse_double(kContext, value, line_no, vcol);
        if (plan.max_minutes <= 0.0) {
          util::parse_fail(kContext, line_no, vcol, "max_minutes must be > 0");
        }
      } else {
        util::parse_fail(kContext, line_no, kcol,
                         "unknown top-level key '" + key + "'");
      }
      continue;
    }
    if (current->is_interrupt()) {
      if (key == "pause_s") {
        current->pause_s = util::parse_double(kContext, value, line_no, vcol);
      } else {
        util::parse_fail(kContext, line_no, kcol,
                         "unknown interrupt key '" + key + "'");
      }
      continue;
    }
    if (key == "steps") {
      current->steps = util::parse_u64(kContext, value, line_no, vcol);
    } else if (key == "resume") {
      current->resume = parse_bool(value, line_no, vcol);
      if (current->resume) {
        bool seen_before = false;
        for (std::size_t i = 0; i + 1 < plan.parts.size(); ++i) {
          if (plan.parts[i].adl == current->adl) seen_before = true;
        }
        if (!seen_before) {
          util::parse_fail(kContext, line_no, vcol,
                           "resume of '" + current->adl +
                               "' without an earlier segment");
        }
      }
    } else if (key == "freeze") {
      current->freeze = util::parse_u64(kContext, value, line_no, vcol);
    } else if (key == "wrong_tool") {
      current->wrong_tool = util::parse_u64(kContext, value, line_no, vcol);
    } else {
      util::parse_fail(kContext, line_no, kcol,
                       "unknown segment key '" + key + "'");
    }
  }
  finalize_part();
  bool any_segment = false;
  for (const ScenarioPart& part : plan.parts) {
    if (!part.is_interrupt()) any_segment = true;
  }
  if (!any_segment) {
    util::parse_fail(kContext, line_no + 1, "plan has no [segment] sections");
  }
  return plan;
}

void ScenarioPlan::save(std::ostream& out) const {
  out << "# coreda scenario plan v1\n";
  out << "seed = " << seed << '\n';
  out << "users = " << users << '\n';
  out << "rounds = " << rounds << '\n';
  out << "severity = " << format_double(severity) << '\n';
  if (severity_drift != 0.0) {
    out << "severity_drift = " << format_double(severity_drift) << '\n';
  }
  if (compliance_decay != 0.0) {
    out << "compliance_decay = " << format_double(compliance_decay) << '\n';
  }
  out << "arrivals = " << arrivals << '\n';
  if (active != 0) out << "active = " << active << '\n';
  if (!hint.empty()) out << "hint = " << hint << '\n';
  out << "max_minutes = " << format_double(max_minutes) << '\n';
  for (const ScenarioPart& part : parts) {
    if (part.is_interrupt()) {
      out << "\n[interrupt]\n";
      out << "pause_s = " << format_double(part.pause_s) << '\n';
      continue;
    }
    out << "\n[segment " << part.adl << "]\n";
    if (part.steps != 0) out << "steps = " << part.steps << '\n';
    if (part.resume) out << "resume = true\n";
    if (part.freeze != 0) out << "freeze = " << part.freeze << '\n';
    if (part.wrong_tool != 0) out << "wrong_tool = " << part.wrong_tool << '\n';
  }
}

}  // namespace coreda::sim
