#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace coreda::sim {

/// One part of a scripted session: either an ADL segment the resident
/// works on, or a caregiver interruption that pauses them.
///
/// A segment with `steps == 0` runs its ADL to completion; otherwise the
/// resident performs `steps` routine steps and is then pulled away (by the
/// script's next part). `resume == true` continues the ADL from the
/// progress saved when a previous segment of the same ADL was left —
/// that is what makes "start the tea, brush teeth, come back to the tea"
/// expressible. `freeze` / `wrong_tool` queue that many forced decision
/// outcomes at the segment's start (deterministic error injection, the
/// scenario-level analogue of PatientActor::force_next_decision).
///
/// An interruption (`adl` empty) advances simulated time by `pause_s`
/// seconds with the resident idle. A pause longer than the tracker's idle
/// gap closes the recognition episode — exactly the boundary the corpus
/// scenarios probe from both sides.
struct ScenarioPart {
  std::string adl;              ///< empty = caregiver interruption
  std::uint64_t steps = 0;      ///< routine steps to perform (0 = all)
  bool resume = false;          ///< continue from saved per-ADL progress
  std::uint64_t freeze = 0;     ///< forced freezes at segment start
  std::uint64_t wrong_tool = 0; ///< forced wrong-tool grabs at start
  double pause_s = 0.0;         ///< interruption length, seconds

  bool is_interrupt() const noexcept { return adl.empty(); }
  bool operator==(const ScenarioPart&) const = default;
};

/// A scenario plan is pure data, in the same line-oriented text format as
/// faults::FaultPlan (util/plan_text): top-level `key = value` lines, then
/// an ordered list of `[segment ADL-NAME]` / `[interrupt]` sections that
/// every served session plays through. One seed makes the whole scenario —
/// arrivals, per-user severity, every in-session decision — a pure
/// function of the file, byte-identical at any `--jobs`.
///
///   # coreda scenario plan v1
///   seed = 42
///   users = 8
///   rounds = 3
///   severity = 0.4
///   severity_drift = 0.05      # added to severity each round
///   compliance_decay = 0.02    # comply_* multiplied by (1-decay) each round
///   arrivals = all             # all | roundrobin
///   hint = Tea-making          # schedule hint for the first segment
///   max_minutes = 45
///
///   [segment Tea-making]
///   steps = 3
///
///   [interrupt]
///   pause_s = 30
///
///   [segment Tooth-brushing]
///
///   [segment Tea-making]
///   resume = true
struct ScenarioPlan {
  std::uint64_t seed = 1;
  std::uint64_t users = 1;
  std::uint64_t rounds = 1;
  /// Baseline dementia severity of every user in [0, 1]; user u is offset
  /// deterministically by the runner so the fleet is not homogeneous.
  double severity = 0.3;
  /// Added to the baseline severity each round (progression).
  double severity_drift = 0.0;
  /// Per-round multiplicative decay of prompt compliance:
  /// comply *= (1 - compliance_decay) each round.
  double compliance_decay = 0.0;
  /// "all": every user arrives every round. "roundrobin": round r serves
  /// the `active` users starting at (r * active) % users.
  std::string arrivals = "all";
  std::uint64_t active = 0;  ///< users per roundrobin round (0 = all)
  std::string hint;          ///< schedule hint for the first segment
  double max_minutes = 45.0; ///< per-session deadline
  std::vector<ScenarioPart> parts;

  bool operator==(const ScenarioPlan&) const = default;

  /// Parses the text format. Malformed input throws std::runtime_error
  /// with "scenario plan line N col C: ..." diagnostics (column of the
  /// offending token in the raw line); plans that parse but make no sense
  /// (no segments, bad arrivals mode, severity outside [0,1], resume of an
  /// ADL no earlier segment started) are rejected the same way.
  static ScenarioPlan parse(std::istream& in);

  /// Writes the canonical text form; parse(save(p)) == p for any valid p.
  void save(std::ostream& out) const;
};

}  // namespace coreda::sim
