#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace coreda::sim {

void EventHandle::cancel() noexcept {
  if (scheduler_) scheduler_->cancel_slot(slot_, generation_);
}

bool EventHandle::cancelled() const noexcept {
  return scheduler_ && scheduler_->slot_cancelled(slot_, generation_);
}

void Scheduler::reserve(std::size_t events) {
  heap_.reserve(events);
  slots_.reserve(events);
  free_slots_.reserve(events);
}

std::uint32_t Scheduler::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.push_back(Slot{});
  // Keep the free list's capacity pegged to the slot table: at most
  // slots_.size() slots can ever be free at once, so release_slot() below
  // can stay allocation-free (it runs on the steady-state firing path; the
  // only growth allocations happen here, when the high-water mark rises).
  if (free_slots_.capacity() < slots_.size()) {
    free_slots_.reserve(slots_.capacity());  // grow geometrically, in step
  }
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t slot) noexcept {
  ++slots_[slot].generation;
  slots_[slot].cancelled = false;
  free_slots_.push_back(slot);
}

bool Scheduler::slot_cancelled(std::uint32_t slot,
                               std::uint64_t generation) const noexcept {
  // A generation mismatch means the event died (fired, series ended, or was
  // cancelled and reaped); either way it will never fire again.
  if (slots_[slot].generation != generation) return true;
  return slots_[slot].cancelled;
}

void Scheduler::cancel_slot(std::uint32_t slot,
                            std::uint64_t generation) noexcept {
  if (slots_[slot].generation == generation) slots_[slot].cancelled = true;
}

void Scheduler::push_event(Event event) {
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Scheduler::Event Scheduler::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

EventHandle Scheduler::schedule_at(TimePoint when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler::schedule_at: time is in the past");
  }
  const std::uint32_t slot = acquire_slot();
  push_event(Event{when, next_seq_++, slot, Duration(), std::move(fn)});
  return EventHandle(this, slot, slots_[slot].generation);
}

EventHandle Scheduler::schedule_after(Duration delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Scheduler::schedule_periodic(Duration period, Callback fn) {
  if (period <= Duration()) {
    throw std::invalid_argument(
        "Scheduler::schedule_periodic: period must be positive");
  }
  const std::uint32_t slot = acquire_slot();
  push_event(Event{now_ + period, next_seq_++, slot, period, std::move(fn)});
  return EventHandle(this, slot, slots_[slot].generation);
}

bool Scheduler::fire_next() {
  while (!heap_.empty()) {
    Event ev = pop_event();
    if (slots_[ev.slot].cancelled) {
      release_slot(ev.slot);
      continue;
    }
    now_ = ev.when;
    if (ev.period > Duration()) {
      // Periodic: the slot stays alive across reschedules, so the whole
      // series costs one slot and one callback, reused every period. A
      // throwing callback ends the series observably (the slot dies, so
      // the handle reads cancelled() == true) and propagates.
      try {
        ev.fn();
      } catch (...) {
        release_slot(ev.slot);
        throw;
      }
      if (slots_[ev.slot].cancelled) {
        release_slot(ev.slot);
      } else {
        push_event(Event{now_ + ev.period, next_seq_++, ev.slot, ev.period,
                         std::move(ev.fn)});
      }
    } else {
      // One-shot: the event is spent the moment it fires; release before
      // the callback so a reentrant schedule_* can reuse the slot (stale
      // handles are protected by the generation counter).
      release_slot(ev.slot);
      ev.fn();
    }
    return true;
  }
  return false;
}

std::size_t Scheduler::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && fire_next()) ++fired;
  return fired;
}

std::size_t Scheduler::run_until(TimePoint deadline) {
  std::size_t fired = 0;
  while (!heap_.empty()) {
    // Reap cancelled events without advancing the clock.
    const Event& top = heap_.front();
    if (slots_[top.slot].cancelled) {
      release_slot(pop_event().slot);
      continue;
    }
    if (top.when > deadline) break;
    if (fire_next()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace coreda::sim
