#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace coreda::sim {

EventHandle Scheduler::schedule_at(TimePoint when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler::schedule_at: time is in the past");
  }
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, flag, std::move(fn)});
  return EventHandle(std::move(flag));
}

EventHandle Scheduler::schedule_after(Duration delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Scheduler::schedule_periodic(Duration period, Callback fn) {
  if (period <= Duration()) {
    throw std::invalid_argument(
        "Scheduler::schedule_periodic: period must be positive");
  }
  auto flag = std::make_shared<bool>(false);
  // The repeater reschedules itself unless the shared flag was set. Each
  // iteration registers a fresh queue entry guarded by the same flag, so one
  // cancel() stops the whole series.
  auto repeat = std::make_shared<std::function<void()>>();
  *repeat = [this, period, flag, fn = std::move(fn), repeat]() {
    fn();
    if (!*flag) {
      queue_.push(Event{now_ + period, next_seq_++, flag, *repeat});
    }
  };
  queue_.push(Event{now_ + period, next_seq_++, flag, *repeat});
  return EventHandle(std::move(flag));
}

bool Scheduler::fire_next() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.when;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Scheduler::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && fire_next()) ++fired;
  return fired;
}

std::size_t Scheduler::run_until(TimePoint deadline) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Skip cancelled events without advancing the clock.
    const Event& top = queue_.top();
    if (*top.cancelled) {
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    if (fire_next()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace coreda::sim
