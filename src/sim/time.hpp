#pragma once

#include <compare>
#include <cstdint>

namespace coreda::sim {

/// Virtual-time duration with microsecond resolution.
///
/// The simulation kernel runs entirely in virtual time so experiment results
/// never depend on host scheduling. A dedicated type (rather than
/// std::chrono) keeps the arithmetic explicit and the event queue POD-cheap.
class Duration {
 public:
  constexpr Duration() noexcept = default;

  static constexpr Duration micros(std::int64_t us) noexcept {
    return Duration(us);
  }
  static constexpr Duration millis(std::int64_t ms) noexcept {
    return Duration(ms * 1000);
  }
  static constexpr Duration seconds(double s) noexcept {
    return Duration(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr Duration minutes(double m) noexcept {
    return seconds(m * 60.0);
  }

  constexpr std::int64_t total_micros() const noexcept { return us_; }
  constexpr double to_seconds() const noexcept {
    return static_cast<double>(us_) * 1e-6;
  }

  constexpr auto operator<=>(const Duration&) const noexcept = default;

  constexpr Duration operator+(Duration d) const noexcept {
    return Duration(us_ + d.us_);
  }
  constexpr Duration operator-(Duration d) const noexcept {
    return Duration(us_ - d.us_);
  }
  constexpr Duration operator*(double k) const noexcept {
    return Duration(static_cast<std::int64_t>(static_cast<double>(us_) * k));
  }
  constexpr Duration operator/(std::int64_t k) const noexcept {
    return Duration(us_ / k);
  }
  constexpr Duration& operator+=(Duration d) noexcept {
    us_ += d.us_;
    return *this;
  }
  constexpr Duration& operator-=(Duration d) noexcept {
    us_ -= d.us_;
    return *this;
  }

 private:
  constexpr explicit Duration(std::int64_t us) noexcept : us_(us) {}
  std::int64_t us_ = 0;
};

/// Virtual-time instant (microseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() noexcept = default;

  static constexpr TimePoint origin() noexcept { return TimePoint(); }
  static constexpr TimePoint from_micros(std::int64_t us) noexcept {
    TimePoint t;
    t.us_ = us;
    return t;
  }
  static constexpr TimePoint from_seconds(double s) noexcept {
    return from_micros(static_cast<std::int64_t>(s * 1e6));
  }

  constexpr std::int64_t total_micros() const noexcept { return us_; }
  constexpr double to_seconds() const noexcept {
    return static_cast<double>(us_) * 1e-6;
  }

  constexpr auto operator<=>(const TimePoint&) const noexcept = default;

  constexpr TimePoint operator+(Duration d) const noexcept {
    return from_micros(us_ + d.total_micros());
  }
  constexpr TimePoint operator-(Duration d) const noexcept {
    return from_micros(us_ - d.total_micros());
  }
  constexpr Duration operator-(TimePoint other) const noexcept {
    return Duration::micros(us_ - other.us_);
  }

 private:
  std::int64_t us_ = 0;
};

}  // namespace coreda::sim
