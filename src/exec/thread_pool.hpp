#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coreda::exec {

/// Fixed-size worker pool with a mutex/condvar task queue.
///
/// The pool exists to fan out *independent trials* (each with its own
/// Scheduler, Rng, and pipeline objects — see TrialRunner); tasks must not
/// touch shared mutable state. shutdown() is graceful: queued tasks still
/// run to completion before the workers join. Tasks are executed in FIFO
/// submission order per worker pick-up, but completion order is
/// host-dependent — anything order-sensitive must index into pre-sized
/// output storage rather than append.
class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Equivalent to shutdown().
  ~ThreadPool();

  /// Enqueues a task. Throws std::runtime_error after shutdown().
  void submit(std::function<void()> task);

  /// Drains the queue (already-submitted tasks run to completion), then
  /// joins all workers. Idempotent; safe to call concurrently with running
  /// tasks but not from inside one.
  void shutdown();

  std::size_t size() const noexcept { return workers_.size(); }

  /// std::thread::hardware_concurrency clamped to at least 1.
  static std::size_t hardware_workers() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  bool stopping_ = false;
};

}  // namespace coreda::exec
