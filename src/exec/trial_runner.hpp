#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "exec/thread_pool.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace coreda::exec {

/// Seed for trial `index` of an experiment seeded with `base_seed`.
///
/// SplitMix64 finalization over the (base, index) pair: statistically
/// independent streams for neighboring indices, and — crucially — a pure
/// function of the pair, so trial i draws the same stream whether it runs
/// first, last, serially, or on any worker thread.
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t index) noexcept;

/// Everything a trial body receives: its index (for configuration lookup)
/// and a private Rng derived from (base_seed, index).
struct TrialContext {
  std::size_t index = 0;
  util::Rng rng;
};

/// Fans independent experiment trials across a worker pool with results that
/// are byte-identical at any job count.
///
/// Each trial gets its own TrialContext; the body must build its own
/// Scheduler / world / pipeline objects from it and may only read shared
/// state (e.g. a pre-generated training set passed by const reference).
/// Results land in a pre-sized vector indexed by trial, so the reduction —
/// and any table printed from it — is independent of completion order.
///
/// jobs == 1 bypasses the pool entirely (pure serial loop, the reference
/// behavior the parallel path is tested against); jobs == 0 means
/// ThreadPool::hardware_workers(). The pool is created lazily on the first
/// parallel run() and reused across calls.
class TrialRunner {
 public:
  explicit TrialRunner(std::size_t jobs = 0)
      : jobs_(jobs == 0 ? ThreadPool::hardware_workers() : jobs) {}

  std::size_t jobs() const noexcept { return jobs_; }

  /// Runs `fn(TrialContext&)` for trial indices [0, count) and returns the
  /// results in index order. If any trial throws, every trial still runs to
  /// completion, then the exception of the lowest-index failing trial is
  /// rethrown (deterministic error reporting). The result type must be
  /// default-constructible; `fn` is invoked concurrently from pool threads
  /// when jobs > 1.
  template <typename Fn>
  auto run(std::size_t count, std::uint64_t base_seed, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, TrialContext&>> {
    using Result = std::invoke_result_t<Fn&, TrialContext&>;
    std::vector<Result> results(count);
    if (count == 0) return results;
    if (jobs_ == 1 || count == 1) {
      for (std::size_t i = 0; i < count; ++i) {
        TrialContext ctx{i, util::Rng(trial_seed(base_seed, i))};
        results[i] = fn(ctx);
      }
      return results;
    }

    std::vector<std::exception_ptr> errors(count);
    std::mutex done_mutex;
    std::condition_variable done;
    std::size_t remaining = count;
    ThreadPool& workers = pool();
    for (std::size_t i = 0; i < count; ++i) {
      workers.submit([&, i] {
        try {
          TrialContext ctx{i, util::Rng(trial_seed(base_seed, i))};
          results[i] = fn(ctx);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        // Notify under the lock: the waiter cannot wake and tear down the
        // condvar while we still hold it, so the notify never dangles.
        std::lock_guard<std::mutex> lock(done_mutex);
        if (--remaining == 0) done.notify_one();
      });
    }
    {
      std::unique_lock<std::mutex> lock(done_mutex);
      done.wait(lock, [&] { return remaining == 0; });
    }
    for (std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    return results;
  }

 private:
  ThreadPool& pool() {
    if (!pool_) pool_ = std::make_unique<ThreadPool>(jobs_);
    return *pool_;
  }

  std::size_t jobs_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Reads `--jobs=N` (0 or absent ⇒ hardware concurrency) for the bench CLIs.
std::size_t jobs_from_flags(const util::Flags& flags);

/// Appends one JSON-lines timing record to `path` — the raw material of
/// BENCH_parallel.json / BENCH_fleet.json. Timing goes to a side file,
/// never stdout, so bench tables stay byte-identical across job counts.
/// Every record carries `hardware_concurrency` so a jobs-vs-cores mismatch
/// (the usual cause of parallel slowdown) is visible in the data itself.
/// `extra` is spliced verbatim into the object as additional fields, e.g.
/// `"episodes_per_sec": 1234.5` (empty = none). No-op when `path` is empty.
void append_timing_record(const std::string& path, const std::string& bench,
                          std::size_t jobs, std::size_t trials, double seconds,
                          const std::string& extra = "");

/// Monotonic wall-clock stopwatch for the timing records.
class Stopwatch {
 public:
  Stopwatch();
  /// Seconds elapsed since construction.
  double seconds() const;

 private:
  std::uint64_t start_ns_;
};

}  // namespace coreda::exec
