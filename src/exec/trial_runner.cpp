#include "exec/trial_runner.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace coreda::exec {

std::uint64_t trial_seed(std::uint64_t base_seed,
                         std::uint64_t index) noexcept {
  // SplitMix64 finalizer over the mixed pair. The golden-ratio increment
  // decorrelates index from base_seed before the avalanche rounds.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t jobs_from_flags(const util::Flags& flags) {
  const std::int64_t jobs = flags.get_int("jobs", 0);
  if (jobs < 0) {
    throw std::invalid_argument("--jobs must be >= 0 (0 = hardware)");
  }
  return jobs == 0 ? ThreadPool::hardware_workers()
                   : static_cast<std::size_t>(jobs);
}

void append_timing_record(const std::string& path, const std::string& bench,
                          std::size_t jobs, std::size_t trials, double seconds,
                          const std::string& extra) {
  if (path.empty()) return;
  std::ostringstream line;
  line << "{\"bench\": \"" << bench << "\", \"jobs\": " << jobs
       << ", \"hardware_concurrency\": " << ThreadPool::hardware_workers()
       << ", \"trials\": " << trials << ", \"seconds\": " << seconds
       << ", \"trials_per_sec\": "
       << (seconds > 0.0 ? static_cast<double>(trials) / seconds : 0.0);
  if (!extra.empty()) line << ", " << extra;
  line << "}\n";
  std::ofstream out(path, std::ios::app);
  out << line.str();
}

Stopwatch::Stopwatch()
    : start_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

double Stopwatch::seconds() const {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return static_cast<double>(now - start_ns_) * 1e-9;
}

}  // namespace coreda::exec
