#include "exec/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace coreda::exec {

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(std::max<std::size_t>(workers, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(workers, 1); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit: pool is shut down");
    }
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // A second caller must still not return before the workers are gone,
      // but joining them twice is the first caller's job; the destructor is
      // the only double-call site in practice and runs after the first
      // shutdown() completed.
      return;
    }
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t ThreadPool::hardware_workers() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace coreda::exec
