#include "util/logging.hpp"

namespace coreda::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel level, std::string_view message) const {
  if (!enabled(level)) return;
  sink_(level, component_, message);
}

Logger::Sink Logger::stream_sink(std::ostream& out) {
  return [&out](LogLevel level, std::string_view component,
                std::string_view message) {
    out << '[' << to_string(level) << "] " << component << ": " << message
        << '\n';
  };
}

}  // namespace coreda::util
