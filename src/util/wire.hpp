#pragma once

// Little-endian wire helpers + FNV-1a 64, shared by every binary format in
// the repo (coreda-policy v2/v3 snapshot files, the fleet tier's segment
// store). One definition keeps the formats' byte-level conventions —
// integers little-endian u64, doubles as LE IEEE-754 bit patterns, FNV-1a
// over "every preceding byte" — in one place instead of three anonymous
// namespaces drifting apart.

#include <cstdint>
#include <cstring>

namespace coreda::util::wire {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a(const unsigned char* data, std::size_t n) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

inline void store_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

inline void store_f64(unsigned char* p, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, 8);
  store_u64(p, bits);
}

inline double load_f64(const unsigned char* p) {
  const std::uint64_t bits = load_u64(p);
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

}  // namespace coreda::util::wire
