#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace coreda::util {

/// ASCII table renderer used by the benchmark harnesses to print
/// paper-style tables (Tables 1-4) to stdout.
///
/// Columns are sized to fit the widest cell; the first row added via
/// set_header() is separated from the body by a rule.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);

  /// Renders the table, including the optional title line.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a fraction in [0, 1] as a percentage like "95%" or "87.5%".
std::string format_percent(double fraction, int decimals = 0);

/// Formats a double with fixed decimals (no trailing-zero stripping).
std::string format_fixed(double value, int decimals);

}  // namespace coreda::util
