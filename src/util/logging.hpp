#pragma once

#include <functional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace coreda::util {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level) noexcept;

/// Lightweight leveled logger. Each subsystem holds its own Logger tagged
/// with a component name; output goes to a caller-provided sink (default:
/// discard — the simulators are run inside benchmarks where stdout noise
/// would corrupt the tables, so logging is opt-in).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  explicit Logger(std::string component, LogLevel level = LogLevel::kOff)
      : component_(std::move(component)), level_(level) {}

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  bool enabled(LogLevel level) const noexcept {
    return sink_ && level >= level_ && level_ != LogLevel::kOff;
  }

  void log(LogLevel level, std::string_view message) const;

  template <typename... Args>
  void logf(LogLevel level, const Args&... args) const {
    if (!enabled(level)) return;
    std::ostringstream os;
    (os << ... << args);
    log(level, os.str());
  }

  template <typename... Args>
  void info(const Args&... args) const {
    logf(LogLevel::kInfo, args...);
  }
  template <typename... Args>
  void debug(const Args&... args) const {
    logf(LogLevel::kDebug, args...);
  }
  template <typename... Args>
  void warn(const Args&... args) const {
    logf(LogLevel::kWarn, args...);
  }
  template <typename... Args>
  void error(const Args&... args) const {
    logf(LogLevel::kError, args...);
  }

  /// A sink that writes "[LEVEL] component: message" lines to a stream.
  /// The stream must outlive every logger using the sink.
  static Sink stream_sink(std::ostream& out);

 private:
  std::string component_;
  LogLevel level_;
  Sink sink_;
};

}  // namespace coreda::util
