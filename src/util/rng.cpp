#include "util/rng.hpp"

#include <cmath>

namespace coreda::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::exponential(double mean) noexcept {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::pick_index(std::size_t size) noexcept {
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

std::size_t Rng::pick_weighted(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numeric tail: last positive-weight bucket
}

Rng Rng::fork() noexcept { return Rng((*this)()); }

}  // namespace coreda::util
