#include "util/rng.hpp"

#include <cmath>

namespace coreda::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::exponential(double mean) noexcept {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::pick_index(std::size_t size) noexcept {
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

std::size_t Rng::pick_weighted(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numeric tail: last positive-weight bucket
}

Rng Rng::fork() noexcept { return Rng((*this)()); }

}  // namespace coreda::util
