#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace coreda::util {

/// Shared helpers for the line-oriented plan-text format used by
/// faults::FaultPlan and sim::ScenarioPlan:
///
///   # comment
///   key = value
///   [keyword NAME]
///   key = value
///
/// Both parsers walk the stream line by line, trim each line, skip blanks
/// and comments, and report malformed input as std::runtime_error carrying
/// the plan kind ("fault plan", "scenario plan"), the 1-based line number
/// and — when the caller tracks it — the 1-based column of the offending
/// token. The helpers here are the single definition of that trim/number
/// parse/diagnostic vocabulary so the two formats cannot drift apart.

/// Strips leading/trailing spaces, tabs and carriage returns.
std::string trim(const std::string& s);

/// Number of leading whitespace characters stripped by trim() — the offset
/// that maps positions inside the trimmed text back to raw-line columns.
std::size_t leading_ws(const std::string& raw) noexcept;

/// Throws std::runtime_error("<context> line <line_no>: <what>").
[[noreturn]] void parse_fail(std::string_view context, std::size_t line_no,
                             const std::string& what);

/// Throws std::runtime_error("<context> line <line_no> col <col>: <what>").
[[noreturn]] void parse_fail(std::string_view context, std::size_t line_no,
                             std::size_t col, const std::string& what);

/// Parses a full-token double; diagnostics match the historical FaultPlan
/// messages ("expected a number, got '...'" / "trailing junk in '...'" /
/// "number out of range: '...'").
double parse_double(std::string_view context, const std::string& v,
                    std::size_t line_no);
/// Column-carrying flavor for parsers that track token positions.
double parse_double(std::string_view context, const std::string& v,
                    std::size_t line_no, std::size_t col);

/// Parses a full-token unsigned integer ("expected an integer, got '...'").
std::uint64_t parse_u64(std::string_view context, const std::string& v,
                        std::size_t line_no);
std::uint64_t parse_u64(std::string_view context, const std::string& v,
                        std::size_t line_no, std::size_t col);

/// Parses a `[keyword NAME]` section header from a trimmed line that is
/// known to start with '['. Returns the trimmed NAME. Diagnostics match the
/// historical FaultPlan messages: "unterminated section",
/// "expected [<keyword> NAME], got [<header>]", "empty <keyword> name".
std::string parse_section(std::string_view context, const std::string& text,
                          std::string_view keyword, std::size_t line_no);

/// A `key = value` line split into trimmed tokens, with the 1-based column
/// of each token's first character *within the trimmed text* (add
/// leading_ws(raw) to map back to the raw line).
struct KeyValue {
  std::string key;
  std::string value;
  std::size_t key_col = 1;
  std::size_t value_col = 1;
};

/// Splits a trimmed `key = value` line. Throws the historical
/// "expected key = value, got '<text>'" diagnostic when there is no '='.
KeyValue split_key_value(std::string_view context, const std::string& text,
                         std::size_t line_no);

}  // namespace coreda::util
