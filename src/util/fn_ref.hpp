#pragma once

#include <type_traits>
#include <utility>

namespace coreda::util {

/// Non-owning, never-allocating callable reference (two words: a context
/// pointer plus a trampoline function pointer).
///
/// The closed-loop serving path wires BaseStation -> CoredaSystem ->
/// TriggerMonitor callbacks once at construction. std::function would heap-
/// allocate for any capture larger than the small-buffer optimisation and
/// re-wrap on every copy; FnRef stores nothing, so hooking components
/// together costs zero allocations and dispatch is one indirect call.
///
/// Lifetime contract: FnRef does NOT extend the life of what it points to.
/// Bind member functions of objects that outlive the reference (the System
/// owns every component it wires, so construction-time binds are safe), or
/// pass lvalue callables that outlive the callee.
template <typename Signature>
class FnRef;

template <typename R, typename... Args>
class FnRef<R(Args...)> {
 public:
  /// Empty reference; calling it is undefined. Test with operator bool.
  constexpr FnRef() noexcept = default;

  /// Binds an lvalue callable (lambda, functor, std::function). The callable
  /// must outlive this FnRef. Rvalues are rejected at compile time: binding
  /// a temporary would dangle immediately.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FnRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FnRef(F& callable) noexcept  // NOLINT(google-explicit-constructor)
      : context_(const_cast<void*>(static_cast<const void*>(&callable))),
        trampoline_(+[](void* ctx, Args... args) -> R {
          return (*static_cast<F*>(ctx))(std::forward<Args>(args)...);
        }) {}

  /// Binds a member function to an object: FnRef::bind<&Class::method>(obj).
  template <auto Method, typename T>
  static FnRef bind(T* object) noexcept {
    FnRef ref;
    ref.context_ = object;
    ref.trampoline_ = +[](void* ctx, Args... args) -> R {
      return (static_cast<T*>(ctx)->*Method)(std::forward<Args>(args)...);
    };
    return ref;
  }

  /// Binds a free function (or captureless lambda decayed to one).
  static FnRef bind(R (*fn)(Args...)) noexcept {
    FnRef ref;
    ref.context_ = reinterpret_cast<void*>(fn);
    ref.trampoline_ = +[](void* ctx, Args... args) -> R {
      return reinterpret_cast<R (*)(Args...)>(ctx)(
          std::forward<Args>(args)...);
    };
    return ref;
  }

  R operator()(Args... args) const {
    return trampoline_(context_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return trampoline_ != nullptr; }

 private:
  void* context_ = nullptr;
  R (*trampoline_)(void*, Args...) = nullptr;
};

}  // namespace coreda::util
