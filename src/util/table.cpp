#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace coreda::util {

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  const auto grow = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out << ' ' << cell << std::string(widths[i] - cell.size(), ' ')
          << " |";
    }
    out << '\n';
  };
  const auto emit_rule = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  emit_rule();
  if (!header_.empty()) {
    emit_row(header_);
    emit_rule();
  }
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace coreda::util
