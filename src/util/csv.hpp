#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace coreda::util {

/// Minimal RFC-4180-ish CSV writer over an std::ostream the caller owns.
///
/// Fields containing commas, quotes, or newlines are quoted; embedded quotes
/// are doubled. Numeric overloads format with enough precision to round-trip.
class CsvWriter {
 public:
  /// The stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes a header row from column names.
  void header(std::initializer_list<std::string_view> columns);

  CsvWriter& field(std::string_view value);
  /// Without this overload a string literal would prefer the bool overload
  /// (pointer-to-bool is a standard conversion; to string_view is not).
  CsvWriter& field(const char* value) {
    return field(std::string_view(value));
  }
  CsvWriter& field(double value);
  CsvWriter& field(std::int64_t value);
  CsvWriter& field(std::uint64_t value);
  CsvWriter& field(int value) { return field(static_cast<std::int64_t>(value)); }
  CsvWriter& field(unsigned value) {
    return field(static_cast<std::uint64_t>(value));
  }
  CsvWriter& field(bool value) {
    return field(std::string_view(value ? "true" : "false"));
  }

  /// Terminates the current row.
  void end_row();

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void separator();

  std::ostream* out_;
  bool row_open_ = false;
  std::size_t rows_ = 0;
};

/// Splits one CSV line into unescaped fields (for loading recorded traces).
std::vector<std::string> parse_csv_line(std::string_view line);

}  // namespace coreda::util
