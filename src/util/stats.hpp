#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace coreda::util {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains all samples; supports exact percentiles.
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  /// Exact percentile by linear interpolation; p in [0, 100].
  /// Returns 0 for an empty set.
  double percentile(double p) const;
  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Binary-outcome counter with precision/recall/accuracy accessors.
///
/// Used for detector hit rates (Table 3) and prediction precision (Table 4).
class PrecisionCounter {
 public:
  void record(bool correct) noexcept {
    ++total_;
    if (correct) ++correct_;
  }

  std::size_t total() const noexcept { return total_; }
  std::size_t correct() const noexcept { return correct_; }
  /// Fraction correct in [0, 1]; 0 when empty.
  double precision() const noexcept {
    return total_ > 0 ? static_cast<double>(correct_) / total_ : 0.0;
  }

 private:
  std::size_t total_ = 0;
  std::size_t correct_ = 0;
};

/// Multi-class confusion matrix keyed by integer labels.
class ConfusionMatrix {
 public:
  void record(std::uint32_t actual, std::uint32_t predicted);
  std::size_t count(std::uint32_t actual, std::uint32_t predicted) const;
  std::size_t total() const noexcept { return total_; }
  double accuracy() const noexcept;
  /// Per-class precision: TP / (TP + FP). 0 when the class was never
  /// predicted.
  double precision_for(std::uint32_t label) const;
  /// Per-class recall: TP / (TP + FN). 0 when the class never occurred.
  double recall_for(std::uint32_t label) const;

 private:
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> cells_;
  std::size_t total_ = 0;
  std::size_t diagonal_ = 0;
};

}  // namespace coreda::util
