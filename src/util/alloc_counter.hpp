#pragma once

// Global operator-new counter for zero-allocation assertions.
//
// Including this header replaces the global allocation functions of the
// whole binary with counting variants, so it must be included in exactly
// ONE translation unit per executable (a second inclusion is a duplicate-
// symbol link error by design — replacement allocation functions must not
// be inline). Used by bench/perf_micro.cpp, bench/fleet_throughput.cpp and
// tests/planning/learner_alloc_test.cpp to pin the "0 allocations per
// episode / event at steady state" contracts.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace coreda::util {

namespace alloc_counter_detail {
inline std::atomic<std::uint64_t> g_allocations{0};
}  // namespace alloc_counter_detail

/// Number of operator-new calls since process start (monotonic).
inline std::uint64_t allocation_count() noexcept {
  return alloc_counter_detail::g_allocations.load(std::memory_order_relaxed);
}

}  // namespace coreda::util

// GCC pairs new/delete lexically and flags std::free on a new-ed pointer;
// here free IS the matching deallocator because the replacement new above
// allocates with std::malloc.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  coreda::util::alloc_counter_detail::g_allocations.fetch_add(
      1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
