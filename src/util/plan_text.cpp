#include "util/plan_text.hpp"

#include <sstream>
#include <stdexcept>

namespace coreda::util {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::size_t leading_ws(const std::string& raw) noexcept {
  const std::size_t b = raw.find_first_not_of(" \t\r");
  return b == std::string::npos ? raw.size() : b;
}

void parse_fail(std::string_view context, std::size_t line_no,
                const std::string& what) {
  std::ostringstream msg;
  msg << context << " line " << line_no << ": " << what;
  throw std::runtime_error(msg.str());
}

void parse_fail(std::string_view context, std::size_t line_no,
                std::size_t col, const std::string& what) {
  std::ostringstream msg;
  msg << context << " line " << line_no << " col " << col << ": " << what;
  throw std::runtime_error(msg.str());
}

namespace {

/// One implementation behind the col-less and col-carrying diagnostics.
[[noreturn]] void fail_at(std::string_view context, std::size_t line_no,
                          std::size_t col, const std::string& what) {
  if (col == 0) parse_fail(context, line_no, what);
  parse_fail(context, line_no, col, what);
}

double parse_double_at(std::string_view context, const std::string& v,
                       std::size_t line_no, std::size_t col) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) {
      fail_at(context, line_no, col, "trailing junk in '" + v + "'");
    }
    return d;
  } catch (const std::invalid_argument&) {
    fail_at(context, line_no, col, "expected a number, got '" + v + "'");
  } catch (const std::out_of_range&) {
    fail_at(context, line_no, col, "number out of range: '" + v + "'");
  }
}

std::uint64_t parse_u64_at(std::string_view context, const std::string& v,
                           std::size_t line_no, std::size_t col) {
  try {
    std::size_t pos = 0;
    const unsigned long long u = std::stoull(v, &pos);
    if (pos != v.size()) {
      fail_at(context, line_no, col, "trailing junk in '" + v + "'");
    }
    return static_cast<std::uint64_t>(u);
  } catch (const std::invalid_argument&) {
    fail_at(context, line_no, col, "expected an integer, got '" + v + "'");
  } catch (const std::out_of_range&) {
    fail_at(context, line_no, col, "integer out of range: '" + v + "'");
  }
}

}  // namespace

double parse_double(std::string_view context, const std::string& v,
                    std::size_t line_no) {
  return parse_double_at(context, v, line_no, 0);
}

double parse_double(std::string_view context, const std::string& v,
                    std::size_t line_no, std::size_t col) {
  return parse_double_at(context, v, line_no, col);
}

std::uint64_t parse_u64(std::string_view context, const std::string& v,
                        std::size_t line_no) {
  return parse_u64_at(context, v, line_no, 0);
}

std::uint64_t parse_u64(std::string_view context, const std::string& v,
                        std::size_t line_no, std::size_t col) {
  return parse_u64_at(context, v, line_no, col);
}

std::string parse_section(std::string_view context, const std::string& text,
                          std::string_view keyword, std::size_t line_no) {
  if (text.back() != ']') parse_fail(context, line_no, "unterminated section");
  const std::string header = trim(text.substr(1, text.size() - 2));
  const std::string prefix = std::string(keyword) + " ";
  if (header.rfind(prefix, 0) != 0) {
    parse_fail(context, line_no,
               "expected [" + std::string(keyword) + " NAME], got [" + header +
                   "]");
  }
  const std::string name = trim(header.substr(prefix.size()));
  if (name.empty()) {
    parse_fail(context, line_no, "empty " + std::string(keyword) + " name");
  }
  return name;
}

KeyValue split_key_value(std::string_view context, const std::string& text,
                         std::size_t line_no) {
  const std::size_t eq = text.find('=');
  if (eq == std::string::npos) {
    parse_fail(context, line_no, "expected key = value, got '" + text + "'");
  }
  KeyValue kv;
  kv.key = trim(text.substr(0, eq));
  kv.value = trim(text.substr(eq + 1));
  kv.key_col = text.find_first_not_of(" \t\r") + 1;
  const std::size_t vpos = text.find_first_not_of(" \t\r", eq + 1);
  kv.value_col = (vpos == std::string::npos ? text.size() : vpos) + 1;
  return kv;
}

}  // namespace coreda::util
