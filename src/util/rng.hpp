#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace coreda::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in CoReDA draws from an explicitly seeded Rng
/// so that experiments are reproducible bit-for-bit. The generator satisfies
/// the C++ UniformRandomBitGenerator concept and additionally offers the
/// distribution helpers the simulators need (uniform, normal, bernoulli,
/// exponential, pick).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential deviate with the given mean (mean = 1 / rate).
  double exponential(double mean) noexcept;

  /// Uniformly picks an index in [0, size). Requires size > 0.
  std::size_t pick_index(std::size_t size) noexcept;

  /// Picks an index with probability proportional to weights[i].
  /// Requires a non-empty weight vector with a positive sum.
  std::size_t pick_weighted(const std::vector<double>& weights) noexcept;

  /// Derives an independent child generator (for per-component streams).
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace coreda::util
