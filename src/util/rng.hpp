#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace coreda::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in CoReDA draws from an explicitly seeded Rng
/// so that experiments are reproducible bit-for-bit. The generator satisfies
/// the C++ UniformRandomBitGenerator concept and additionally offers the
/// distribution helpers the simulators need (uniform, normal, bernoulli,
/// exponential, pick).
///
/// The draw methods on the closed-loop serving hot path (raw output,
/// uniform, bernoulli, normal) are defined inline: the sensor synthesis
/// stack calls them tens of millions of times per simulated fleet session
/// and the cross-TU call overhead dominates otherwise.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return mean + stddev * cached_normal_;
    }
    // Marsaglia polar method.
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return mean + stddev * u * factor;
  }

  /// Exponential deviate with the given mean (mean = 1 / rate).
  double exponential(double mean) noexcept;

  /// Uniformly picks an index in [0, size). Requires size > 0.
  std::size_t pick_index(std::size_t size) noexcept;

  /// Picks an index with probability proportional to weights[i].
  /// Requires a non-empty weight vector with a positive sum.
  std::size_t pick_weighted(const std::vector<double>& weights) noexcept;

  /// Derives an independent child generator (for per-component streams).
  Rng fork() noexcept;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace coreda::util
