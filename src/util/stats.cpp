#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace coreda::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double x : samples_) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

void ConfusionMatrix::record(std::uint32_t actual, std::uint32_t predicted) {
  ++cells_[{actual, predicted}];
  ++total_;
  if (actual == predicted) ++diagonal_;
}

std::size_t ConfusionMatrix::count(std::uint32_t actual,
                                   std::uint32_t predicted) const {
  const auto it = cells_.find({actual, predicted});
  return it != cells_.end() ? it->second : 0;
}

double ConfusionMatrix::accuracy() const noexcept {
  return total_ > 0 ? static_cast<double>(diagonal_) / total_ : 0.0;
}

double ConfusionMatrix::precision_for(std::uint32_t label) const {
  std::size_t tp = 0;
  std::size_t predicted = 0;
  for (const auto& [key, n] : cells_) {
    if (key.second == label) {
      predicted += n;
      if (key.first == label) tp += n;
    }
  }
  return predicted > 0 ? static_cast<double>(tp) / predicted : 0.0;
}

double ConfusionMatrix::recall_for(std::uint32_t label) const {
  std::size_t tp = 0;
  std::size_t actual = 0;
  for (const auto& [key, n] : cells_) {
    if (key.first == label) {
      actual += n;
      if (key.second == label) tp += n;
    }
  }
  return actual > 0 ? static_cast<double>(tp) / actual : 0.0;
}

}  // namespace coreda::util
