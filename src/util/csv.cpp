#include "util/csv.hpp"

#include <charconv>

namespace coreda::util {

namespace {

bool needs_quoting(std::string_view value) {
  return value.find_first_of(",\"\n\r") != std::string_view::npos;
}

void write_escaped(std::ostream& out, std::string_view value) {
  if (!needs_quoting(value)) {
    out << value;
    return;
  }
  out << '"';
  for (char c : value) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  for (std::string_view c : columns) field(c);
  end_row();
}

CsvWriter& CsvWriter::field(std::string_view value) {
  separator();
  write_escaped(*out_, value);
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return field(std::string_view(buf, res.ptr - buf));
}

CsvWriter& CsvWriter::field(std::int64_t value) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return field(std::string_view(buf, res.ptr - buf));
}

CsvWriter& CsvWriter::field(std::uint64_t value) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return field(std::string_view(buf, res.ptr - buf));
}

void CsvWriter::separator() {
  if (row_open_) {
    *out_ << ',';
  } else {
    row_open_ = true;
  }
}

void CsvWriter::end_row() {
  *out_ << '\n';
  row_open_ = false;
  ++rows_;
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace coreda::util
