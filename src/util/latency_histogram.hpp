#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <limits>

namespace coreda::util {

/// Fixed-bucket log-linear latency histogram for the serving hot path.
///
/// Buckets are HDR-style: 8 linear sub-buckets per power of two, giving a
/// worst-case quantile error of ~12.5% of the value — plenty for p50/p99/
/// p999 serve-latency gating — over the full u64 nanosecond range. The
/// whole state is one inline std::array, so record() is noexcept and
/// allocation-free (the zero-allocation contract the serve tier's session
/// loop keeps), and merge() makes per-shard histograms safe: each shard
/// records into its own instance during a drain and the engine folds them
/// together afterwards, no atomics on the hot path.
///
/// Values are nanoseconds by convention, but nothing depends on the unit.
class LatencyHistogram {
 public:
  static constexpr std::size_t kSubBits = 3;  ///< 8 sub-buckets per octave
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  /// Identity region [0, 8) + one kSub group per remaining exponent.
  static constexpr std::size_t kBuckets = kSub + (64 - kSubBits) * kSub;

  void record(std::uint64_t value) noexcept {
    counts_[bucket_of(value)] += 1;
    ++count_;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void reset() noexcept { *this = LatencyHistogram{}; }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }

  /// Value at quantile `q` in [0, 1]: the midpoint of the bucket holding
  /// the ceil(q * count)-th smallest sample, clamped into [min, max] so the
  /// extremes are exact. 0 when the histogram is empty.
  double quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return static_cast<double>(min_);
    if (q >= 1.0) return static_cast<double>(max_);
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (rank >= count_) rank = count_ - 1;  // 0-based index of the sample
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen > rank) {
        const double lo = static_cast<double>(bucket_floor(b));
        const double hi = static_cast<double>(bucket_floor(b + 1));
        double mid = lo + (hi - lo) / 2.0;
        if (mid < static_cast<double>(min_)) mid = static_cast<double>(min_);
        if (mid > static_cast<double>(max_)) mid = static_cast<double>(max_);
        return mid;
      }
    }
    return static_cast<double>(max_);  // unreachable when counts are coherent
  }

  /// Smallest value mapping into bucket `b` (inverse of bucket_of).
  static constexpr std::uint64_t bucket_floor(std::size_t b) noexcept {
    if (b < kSub) return b;
    const std::size_t group = (b - kSub) >> kSubBits;
    const std::size_t sub = (b - kSub) & (kSub - 1);
    return (kSub + sub) << group;
  }

  static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    if (value < kSub) return static_cast<std::size_t>(value);
    const int exponent = 63 - std::countl_zero(value);  // value in [2^e, 2^e+1)
    const std::size_t group = static_cast<std::size_t>(exponent) - kSubBits;
    const std::size_t sub =
        static_cast<std::size_t>(value >> group) & (kSub - 1);
    return kSub + (group << kSubBits) + sub;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

}  // namespace coreda::util
