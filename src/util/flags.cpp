#include "util/flags.hpp"

#include <stdexcept>

namespace coreda::util {

Flags Flags::parse(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse(tokens);
}

Flags Flags::parse(const std::vector<std::string>& tokens) {
  Flags flags;
  bool flags_done = false;
  for (const std::string& token : tokens) {
    if (!flags_done && token == "--") {
      flags_done = true;
      continue;
    }
    if (!flags_done && token.rfind("--", 0) == 0) {
      const std::string body = token.substr(2);
      const auto eq = body.find('=');
      if (eq == std::string::npos) {
        flags.values_[body] = "true";
      } else {
        flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      }
      continue;
    }
    if (flags.command_.empty()) {
      flags.command_ = token;
    } else {
      flags.positional_.push_back(token);
    }
  }
  return flags;
}

std::string Flags::get(const std::string& key,
                       const std::string& fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(key);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

std::int64_t Flags::get_int(const std::string& key,
                            std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(key);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes") {
    return true;
  }
  if (it->second == "false" || it->second == "0" || it->second == "no") {
    return false;
  }
  throw std::invalid_argument("flag --" + key + " expects a boolean, got '" +
                              it->second + "'");
}

std::vector<std::string> Flags::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

}  // namespace coreda::util
