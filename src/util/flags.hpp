#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace coreda::util {

/// Minimal command-line parser for the CLI tools:
///
///   coreda simulate --adl=Tea-making --severity=0.5 --transcript
///
/// Grammar: the first non-flag token is the command; `--key=value` sets a
/// value, `--key` alone sets "true"; remaining non-flag tokens are
/// positional arguments. Unknown flags are kept (the command validates its
/// own set); `--` ends flag parsing.
class Flags {
 public:
  /// Parses argv (argv[0] is skipped).
  static Flags parse(int argc, const char* const* argv);

  /// Parses a pre-split token list (for tests).
  static Flags parse(const std::vector<std::string>& tokens);

  const std::string& command() const noexcept { return command_; }
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  bool has(const std::string& key) const noexcept {
    return values_.count(key) > 0;
  }

  /// String value of `key`, or `fallback` when absent.
  std::string get(const std::string& key,
                  const std::string& fallback = "") const;

  /// Typed accessors; throw std::invalid_argument when present but
  /// unparsable.
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Every flag key that was supplied (for unknown-flag validation).
  std::vector<std::string> keys() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace coreda::util
