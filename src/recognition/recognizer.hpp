#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "adl/types.hpp"

namespace coreda::recognition {

/// One candidate activity with its log-likelihood score.
struct AdlScore {
  std::string adl;
  double log_likelihood = 0.0;
};

/// Identifies *which* ADL a tool-usage sequence belongs to.
///
/// CoReDA as published assumes the active ADL is known; a real home runs
/// many ADLs over one base station, so the server must first recognize the
/// activity from the usage stream before routing StepIDs to the right
/// planner — the capability the paper's related work attributes to
/// Philipose et al. [2] ("inferring activities from interactions with
/// objects").
///
/// The model is a per-ADL first-order Markov chain over StepIDs (with an
/// initial-step distribution and Laplace smoothing), fit from the same
/// recorded processes the planners train on. Classification scores a
/// sequence by its log-likelihood under each ADL's chain; tools that never
/// appear in an ADL's training data give strong negative evidence through
/// the smoothed floor.
class AdlRecognizer {
 public:
  /// `smoothing` is the Laplace pseudo-count; must be positive.
  explicit AdlRecognizer(double smoothing = 0.5);

  /// Adds one recorded process of `adl_name` to that ADL's model.
  void train(const std::string& adl_name,
             std::span<const adl::StepId> episode);

  /// All candidate ADLs, best first. Empty when nothing was trained or
  /// the sequence is empty.
  std::vector<AdlScore> rank(std::span<const adl::StepId> sequence) const;

  /// The best candidate, or nullopt when nothing can be said.
  std::optional<std::string> classify(
      std::span<const adl::StepId> sequence) const;

  /// Normalized posterior of the best candidate in [0, 1] (softmax over
  /// the per-ADL log-likelihoods); 0 when nothing can be said.
  double confidence(std::span<const adl::StepId> sequence) const;

  /// classify() + confidence() fused into one allocation-free query — the
  /// form the online tracker uses on every usage event. `adl` points at
  /// this recognizer's stable model key (valid until the next train()),
  /// or is nullptr when nothing can be said.
  struct Best {
    const std::string* adl = nullptr;
    double confidence = 0.0;
  };
  Best best(std::span<const adl::StepId> sequence) const;

  std::size_t known_adls() const noexcept { return models_.size(); }

 private:
  struct ChainModel {
    std::map<adl::StepId, std::map<adl::StepId, std::uint64_t>> transitions;
    std::map<adl::StepId, std::uint64_t> occurrences;  ///< unigram counts
    std::uint64_t episodes = 0;
    std::uint64_t total_steps = 0;
  };

  double log_likelihood(const ChainModel& model,
                        std::span<const adl::StepId> sequence) const;

  double smoothing_;
  std::map<std::string, ChainModel> models_;
  /// Vocabulary across all ADLs, for the smoothing denominator.
  std::map<adl::StepId, bool> vocabulary_;
};

}  // namespace coreda::recognition
