#include "recognition/tracker.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

namespace coreda::recognition {

ActivityTracker::ActivityTracker(const AdlRecognizer& recognizer,
                                 ActivityCallback on_start)
    : ActivityTracker(recognizer, on_start, Params{}) {}

ActivityTracker::ActivityTracker(const AdlRecognizer& recognizer,
                                 ActivityCallback on_start, Params params)
    : recognizer_(&recognizer),
      on_start_(on_start),
      params_(params) {
  if (!on_start_) {
    throw std::invalid_argument("ActivityTracker: null callback");
  }
}

void ActivityTracker::observe(adl::ToolId tool, sim::TimePoint at) {
  if (episode_open_ && at - last_event_ > params_.idle_gap) {
    close_episode();
  }
  if (!episode_open_) {
    episode_open_ = true;
    ++episodes_;
    current_ = nullptr;
    steps_.clear();
  }
  last_event_ = at;
  if (steps_.empty() || steps_.back() != tool) {
    steps_.push_back(tool);
  }

  if (current_ == nullptr) {
    const AdlRecognizer::Best best = recognizer_->best(steps_);
    if (best.adl != nullptr &&
        best.confidence >= params_.confidence_threshold) {
      current_ = best.adl;
      on_start_(*best.adl, at);
    }
    return;
  }

  // Recognition-gated switching: re-score the trailing window and hand the
  // episode to a challenger ADL once it has won convincingly for
  // switch_patience consecutive observations. Allocation-free: the window
  // is a span over the tail of the reused step buffer.
  if (params_.switch_window == 0) return;
  const std::size_t window = std::min(params_.switch_window, steps_.size());
  const std::span<const adl::StepId> tail(steps_.data() +
                                              (steps_.size() - window),
                                          window);
  const AdlRecognizer::Best best = recognizer_->best(tail);
  if (best.adl == nullptr || best.adl == current_ ||
      best.confidence < params_.switch_threshold) {
    challenger_ = nullptr;
    challenger_streak_ = 0;
    return;
  }
  if (best.adl != challenger_) {
    challenger_ = best.adl;
    challenger_streak_ = 0;
  }
  if (++challenger_streak_ >= params_.switch_patience) {
    current_ = challenger_;
    challenger_ = nullptr;
    challenger_streak_ = 0;
    ++switches_;
    on_start_(*current_, at);
  }
}

void ActivityTracker::retract() {
  current_ = nullptr;
  challenger_ = nullptr;
  challenger_streak_ = 0;
}

void ActivityTracker::close_episode() {
  episode_open_ = false;
  current_ = nullptr;
  challenger_ = nullptr;
  challenger_streak_ = 0;
  steps_.clear();
}

}  // namespace coreda::recognition
