#include "recognition/tracker.hpp"

#include <stdexcept>

namespace coreda::recognition {

ActivityTracker::ActivityTracker(const AdlRecognizer& recognizer,
                                 ActivityCallback on_start)
    : ActivityTracker(recognizer, std::move(on_start), Params{}) {}

ActivityTracker::ActivityTracker(const AdlRecognizer& recognizer,
                                 ActivityCallback on_start, Params params)
    : recognizer_(&recognizer),
      on_start_(std::move(on_start)),
      params_(params) {
  if (!on_start_) {
    throw std::invalid_argument("ActivityTracker: null callback");
  }
}

void ActivityTracker::observe(adl::ToolId tool, sim::TimePoint at) {
  if (episode_open_ && at - last_event_ > params_.idle_gap) {
    close_episode();
  }
  if (!episode_open_) {
    episode_open_ = true;
    ++episodes_;
    current_.reset();
    steps_.clear();
  }
  last_event_ = at;
  if (steps_.empty() || steps_.back() != tool) {
    steps_.push_back(tool);
  }

  if (!current_) {
    const double confidence = recognizer_->confidence(steps_);
    if (confidence >= params_.confidence_threshold) {
      const auto best = recognizer_->classify(steps_);
      if (best) {
        current_ = best;
        on_start_(*best, at);
      }
    }
  }
}

void ActivityTracker::retract() { current_.reset(); }

void ActivityTracker::close_episode() {
  episode_open_ = false;
  current_.reset();
  steps_.clear();
}

}  // namespace coreda::recognition
