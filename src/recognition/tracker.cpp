#include "recognition/tracker.hpp"

#include <stdexcept>

namespace coreda::recognition {

ActivityTracker::ActivityTracker(const AdlRecognizer& recognizer,
                                 ActivityCallback on_start)
    : ActivityTracker(recognizer, on_start, Params{}) {}

ActivityTracker::ActivityTracker(const AdlRecognizer& recognizer,
                                 ActivityCallback on_start, Params params)
    : recognizer_(&recognizer),
      on_start_(on_start),
      params_(params) {
  if (!on_start_) {
    throw std::invalid_argument("ActivityTracker: null callback");
  }
}

void ActivityTracker::observe(adl::ToolId tool, sim::TimePoint at) {
  if (episode_open_ && at - last_event_ > params_.idle_gap) {
    close_episode();
  }
  if (!episode_open_) {
    episode_open_ = true;
    ++episodes_;
    current_ = nullptr;
    steps_.clear();
  }
  last_event_ = at;
  if (steps_.empty() || steps_.back() != tool) {
    steps_.push_back(tool);
  }

  if (current_ == nullptr) {
    const AdlRecognizer::Best best = recognizer_->best(steps_);
    if (best.adl != nullptr &&
        best.confidence >= params_.confidence_threshold) {
      current_ = best.adl;
      on_start_(*best.adl, at);
    }
  }
}

void ActivityTracker::retract() { current_ = nullptr; }

void ActivityTracker::close_episode() {
  episode_open_ = false;
  current_ = nullptr;
  steps_.clear();
}

}  // namespace coreda::recognition
