#include "recognition/recognizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace coreda::recognition {

AdlRecognizer::AdlRecognizer(double smoothing) : smoothing_(smoothing) {
  if (smoothing <= 0.0) {
    throw std::invalid_argument("AdlRecognizer: smoothing must be > 0");
  }
}

void AdlRecognizer::train(const std::string& adl_name,
                          std::span<const adl::StepId> episode) {
  if (episode.empty()) return;
  ChainModel& model = models_[adl_name];
  ++model.episodes;
  for (std::size_t i = 0; i < episode.size(); ++i) {
    ++model.occurrences[episode[i]];
    ++model.total_steps;
    vocabulary_[episode[i]] = true;
    if (i > 0) ++model.transitions[episode[i - 1]][episode[i]];
  }
}

double AdlRecognizer::log_likelihood(
    const ChainModel& model, std::span<const adl::StepId> sequence) const {
  const double v = static_cast<double>(vocabulary_.size());

  const auto smoothed = [this, v](std::uint64_t count,
                                  std::uint64_t total) {
    return std::log((static_cast<double>(count) + smoothing_) /
                    (static_cast<double>(total) + smoothing_ * v));
  };

  // The first observation is scored by the step's *occurrence* frequency
  // in the ADL, not its initial-position frequency: recognition regularly
  // starts mid-activity (a missed first-step extraction, or the tracker
  // joining late), and a mid-routine tool would otherwise look equally
  // alien to every model.
  const auto first_it = model.occurrences.find(sequence.front());
  double ll = smoothed(
      first_it != model.occurrences.end() ? first_it->second : 0,
      model.total_steps);

  for (std::size_t i = 1; i < sequence.size(); ++i) {
    const auto row = model.transitions.find(sequence[i - 1]);
    std::uint64_t count = 0;
    std::uint64_t total = 0;
    if (row != model.transitions.end()) {
      const auto cell = row->second.find(sequence[i]);
      if (cell != row->second.end()) count = cell->second;
      for (const auto& [next, n] : row->second) total += n;
    }
    ll += smoothed(count, total);
  }
  return ll;
}

std::vector<AdlScore> AdlRecognizer::rank(
    std::span<const adl::StepId> sequence) const {
  std::vector<AdlScore> out;
  if (sequence.empty() || models_.empty()) return out;
  for (const auto& [name, model] : models_) {
    out.push_back(AdlScore{name, log_likelihood(model, sequence)});
  }
  std::sort(out.begin(), out.end(),
            [](const AdlScore& a, const AdlScore& b) {
              return a.log_likelihood > b.log_likelihood;
            });
  return out;
}

std::optional<std::string> AdlRecognizer::classify(
    std::span<const adl::StepId> sequence) const {
  const auto ranked = rank(sequence);
  if (ranked.empty()) return std::nullopt;
  return ranked.front().adl;
}

double AdlRecognizer::confidence(
    std::span<const adl::StepId> sequence) const {
  const auto ranked = rank(sequence);
  if (ranked.empty()) return 0.0;
  // Softmax over log-likelihoods, shifted by the max for stability.
  const double best = ranked.front().log_likelihood;
  double denominator = 0.0;
  for (const AdlScore& s : ranked) {
    denominator += std::exp(s.log_likelihood - best);
  }
  return 1.0 / denominator;
}

AdlRecognizer::Best AdlRecognizer::best(
    std::span<const adl::StepId> sequence) const {
  Best out;
  if (sequence.empty() || models_.empty()) return out;
  // Two passes over the (few) models instead of a ranked vector: find the
  // winner, then the softmax denominator relative to it.
  double best_ll = 0.0;
  for (const auto& [name, model] : models_) {
    const double ll = log_likelihood(model, sequence);
    if (out.adl == nullptr || ll > best_ll) {
      out.adl = &name;
      best_ll = ll;
    }
  }
  double denominator = 0.0;
  for (const auto& [name, model] : models_) {
    denominator += std::exp(log_likelihood(model, sequence) - best_ll);
  }
  out.confidence = 1.0 / denominator;
  return out;
}

}  // namespace coreda::recognition
