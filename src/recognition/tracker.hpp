#pragma once

#include <string>
#include <vector>

#include "adl/types.hpp"
#include "recognition/recognizer.hpp"
#include "sim/time.hpp"
#include "util/fn_ref.hpp"

namespace coreda::recognition {

/// Online activity segmentation + recognition over the base station's
/// usage stream.
///
/// An activity episode opens with the first usage after a long idle gap
/// and closes when the stream goes idle for `idle_gap` (or when the
/// tracker is told the activity completed). The tracker re-classifies
/// after every observed step and announces the activity once the
/// recognizer's posterior clears `confidence_threshold` — typically after
/// one or two steps, since most tools are ADL-specific.
///
/// The per-event path is allocation-free at steady state: the step buffer
/// is reused across episodes, classification uses the recognizer's fused
/// best() query, and the recognized activity is a pointer into the
/// recognizer's stable model table.
class ActivityTracker {
 public:
  struct Params {
    /// Idle time that closes an activity episode.
    sim::Duration idle_gap = sim::Duration::minutes(3.0);
    /// Posterior required before announcing the activity.
    double confidence_threshold = 0.7;
    /// Recognition-gated mid-episode switching. 0 disables it (the legacy
    /// announce-once behavior). When > 0, an announced episode keeps being
    /// re-scored over its trailing `switch_window` steps; when a *different*
    /// ADL wins that window at confidence >= `switch_threshold` for
    /// `switch_patience` consecutive observations, the tracker announces
    /// the new ADL through the same callback without closing the episode —
    /// segmentation beyond the single idle-gap close, for residents who
    /// interleave ADLs with no idle time between them.
    std::size_t switch_window = 0;
    /// Posterior the challenger must reach over the trailing window.
    double switch_threshold = 0.85;
    /// Consecutive winning observations required before switching; > 1
    /// keeps a lone wrong-tool intrusion from flapping the activity.
    std::size_t switch_patience = 2;
  };

  /// Invoked once per episode when the activity is first recognized.
  /// Non-owning: the callable (or bound object) must outlive the tracker.
  using ActivityCallback =
      util::FnRef<void(const std::string& adl, sim::TimePoint at)>;

  /// `recognizer` must outlive the tracker.
  ActivityTracker(const AdlRecognizer& recognizer, ActivityCallback on_start);
  ActivityTracker(const AdlRecognizer& recognizer, ActivityCallback on_start,
                  Params params);

  /// Feeds one sensed usage event.
  void observe(adl::ToolId tool, sim::TimePoint at);

  /// Forces the current episode closed (ADL completed / session ended).
  void close_episode();

  /// Withdraws the current announcement without closing the episode: the
  /// consumer rejected it (e.g. it contradicted a schedule hint on thin
  /// evidence) and wants a re-announcement once more steps accumulate.
  void retract();

  bool episode_open() const noexcept { return episode_open_; }
  /// The recognized activity of the current episode, or nullptr while none
  /// is announced. Points into the recognizer's model table.
  const std::string* current_activity() const noexcept { return current_; }
  /// Steps observed in the current episode.
  const std::vector<adl::StepId>& episode_steps() const noexcept {
    return steps_;
  }
  std::size_t episodes_seen() const noexcept { return episodes_; }
  /// Mid-episode activity switches announced (recognition-gated; 0 when
  /// switching is disabled).
  std::size_t switches() const noexcept { return switches_; }

 private:
  const AdlRecognizer* recognizer_;
  ActivityCallback on_start_;
  Params params_;
  bool episode_open_ = false;
  const std::string* current_ = nullptr;
  std::vector<adl::StepId> steps_;
  sim::TimePoint last_event_;
  std::size_t episodes_ = 0;
  std::size_t switches_ = 0;
  /// Challenger ADL currently winning the trailing window, and for how
  /// many consecutive observations (the switch_patience counter).
  const std::string* challenger_ = nullptr;
  std::size_t challenger_streak_ = 0;
};

}  // namespace coreda::recognition
