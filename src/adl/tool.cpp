#include "adl/tool.hpp"

#include <stdexcept>

namespace coreda::adl {

std::string_view to_string(SensorKind kind) noexcept {
  switch (kind) {
    case SensorKind::kAccelerometer:
      return "3-axis accelerometer";
    case SensorKind::kPressure:
      return "pressure";
    case SensorKind::kBrightness:
      return "brightness";
    case SensorKind::kTemperature:
      return "temperature";
    case SensorKind::kMotion:
      return "motion";
  }
  return "?";
}

void ToolRegistry::add(Tool tool) {
  if (tool.id == kNoTool) {
    throw std::invalid_argument("ToolRegistry: tool id 0 is reserved");
  }
  if (contains(tool.id)) {
    throw std::invalid_argument("ToolRegistry: duplicate tool id " +
                                std::to_string(tool.id));
  }
  tools_.push_back(std::move(tool));
}

const Tool* ToolRegistry::find(ToolId id) const noexcept {
  for (const Tool& t : tools_) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

const Tool& ToolRegistry::at(ToolId id) const {
  const Tool* t = find(id);
  if (t == nullptr) {
    throw std::out_of_range("ToolRegistry: unknown tool id " +
                            std::to_string(id));
  }
  return *t;
}

const Tool* ToolRegistry::find_by_name(std::string_view name) const noexcept {
  for (const Tool& t : tools_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace coreda::adl
