#pragma once

#include <optional>
#include <string>
#include <vector>

#include "adl/types.hpp"
#include "sim/time.hpp"

namespace coreda::adl {

/// A household tool instrumented with a PAVENET node.
struct Tool {
  ToolId id = kNoTool;
  std::string name;
  SensorKind sensor = SensorKind::kAccelerometer;

  /// Typical time a user actively manipulates the tool during its step.
  /// These statistics drive both the synthetic sensor envelopes and the
  /// reminding subsystem's idle timeouts (the paper's footnote 1: the prompt
  /// timeout "should be determined from the statistical data of how long a
  /// user will use this tool").
  sim::Duration typical_usage_mean = sim::Duration::seconds(8.0);
  sim::Duration typical_usage_stddev = sim::Duration::seconds(2.0);

  /// Relative vigor of the motion signature while the tool is in use;
  /// 1.0 = a comfortably detectable manipulation. Short, gentle steps
  /// (drying with a towel; pressing the pot lever) sit below 1.0, which is
  /// what produces the lower extract precision the paper reports in Table 3.
  double usage_intensity = 1.0;
};

/// Registry of all instrumented tools in a deployment.
///
/// Tool IDs must be unique and nonzero (0 is the reserved idle pseudo-tool).
class ToolRegistry {
 public:
  /// Adds a tool; throws std::invalid_argument on id 0 or a duplicate id.
  void add(Tool tool);

  const Tool* find(ToolId id) const noexcept;

  /// Like find() but throws std::out_of_range when absent.
  const Tool& at(ToolId id) const;

  bool contains(ToolId id) const noexcept { return find(id) != nullptr; }
  std::size_t size() const noexcept { return tools_.size(); }
  const std::vector<Tool>& tools() const noexcept { return tools_; }

  /// Finds a tool by (case-sensitive) name; nullptr when absent.
  const Tool* find_by_name(std::string_view name) const noexcept;

 private:
  std::vector<Tool> tools_;
};

}  // namespace coreda::adl
