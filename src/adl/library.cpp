#include "adl/library.hpp"

#include <stdexcept>

namespace coreda::adl {

namespace {

Tool make_tool(ToolId id, std::string name, SensorKind sensor,
               double usage_mean_s, double usage_stddev_s, double intensity) {
  Tool t;
  t.id = id;
  t.name = std::move(name);
  t.sensor = sensor;
  t.typical_usage_mean = sim::Duration::seconds(usage_mean_s);
  t.typical_usage_stddev = sim::Duration::seconds(usage_stddev_s);
  t.usage_intensity = intensity;
  return t;
}

}  // namespace

AdlLibrary::AdlLibrary() {
  using enum SensorKind;
  namespace T = tools;

  // --- Tooth-brushing tools -------------------------------------------
  // Squeezing the tube is brief but crisp; brushing is long and vigorous;
  // gargling is medium; drying the face with a towel is the shortest and
  // softest motion of the set (paper: 85 % extract precision).
  tools_.add(make_tool(T::kPasteTube, "toothpaste tube", kAccelerometer,
                       5.0, 1.2, 0.46));
  tools_.add(make_tool(T::kToothbrush, "toothbrush", kAccelerometer,
                       60.0, 12.0, 1.40));
  tools_.add(make_tool(T::kGargleCup, "gargle cup", kAccelerometer,
                       10.0, 2.5, 1.20));
  tools_.add(make_tool(T::kTowel, "towel", kAccelerometer,
                       3.0, 0.8, 0.50));

  // --- Tea-making tools -----------------------------------------------
  // Pressing the electronic pot's lever barely moves anything — the paper
  // instruments it with a pressure sensor and still reports the lowest
  // extract precision of the ADL (80 %).
  tools_.add(make_tool(T::kTeaBox, "tea box", kAccelerometer,
                       7.0, 1.5, 1.25));
  tools_.add(make_tool(T::kElectricPot, "electronic pot", kPressure,
                       2.5, 0.7, 0.31));
  tools_.add(make_tool(T::kKettle, "kettle", kAccelerometer,
                       8.0, 1.8, 1.25));
  tools_.add(make_tool(T::kTeaCup, "tea cup", kAccelerometer,
                       6.0, 1.5, 0.44));

  // --- Hand-washing tools (extension) ---------------------------------
  tools_.add(make_tool(T::kFaucet, "faucet", kMotion, 4.0, 1.0, 1.10));
  tools_.add(make_tool(T::kSoap, "soap", kAccelerometer, 9.0, 2.0, 1.15));
  tools_.add(make_tool(T::kHandTowel, "hand towel", kAccelerometer,
                       3.5, 0.9, 0.75));

  // --- Dressing tools (multi-routine extension) -----------------------
  tools_.add(make_tool(T::kShirt, "shirt", kAccelerometer, 25.0, 6.0, 1.10));
  tools_.add(make_tool(T::kTrousers, "trousers", kAccelerometer,
                       20.0, 5.0, 1.10));
  tools_.add(make_tool(T::kSocks, "socks", kAccelerometer, 15.0, 4.0, 1.00));
  tools_.add(make_tool(T::kShoes, "shoes", kAccelerometer, 12.0, 3.0, 1.05));

  // --- ADLs ------------------------------------------------------------
  adls_.emplace_back(
      "Tooth-brushing",
      std::vector<AdlRoutine>{AdlRoutine(
          "standard",
          {AdlStep{"Put toothpaste on the brush", T::kPasteTube},
           AdlStep{"Brush the teeth", T::kToothbrush},
           AdlStep{"Gargle with water", T::kGargleCup},
           AdlStep{"Dry with a towel", T::kTowel}})});

  adls_.emplace_back(
      "Tea-making",
      std::vector<AdlRoutine>{AdlRoutine(
          "standard",
          {AdlStep{"Put tea-leaf into kettle", T::kTeaBox},
           AdlStep{"Pour hot water into kettle", T::kElectricPot},
           AdlStep{"Pour tea into tea cup", T::kKettle},
           AdlStep{"Drink a cup of tea", T::kTeaCup}})});

  adls_.emplace_back(
      "Hand-washing",
      std::vector<AdlRoutine>{AdlRoutine(
          "standard",
          {AdlStep{"Turn on the faucet", T::kFaucet},
           AdlStep{"Lather with soap", T::kSoap},
           AdlStep{"Dry hands with towel", T::kHandTowel}})});

  // Dressing has two acceptable routines for the same user — the case the
  // paper's future-work section calls out as unsupported by the prototype.
  adls_.emplace_back(
      "Dressing",
      std::vector<AdlRoutine>{
          AdlRoutine("shirt-first",
                     {AdlStep{"Put on shirt", T::kShirt},
                      AdlStep{"Put on trousers", T::kTrousers},
                      AdlStep{"Put on socks", T::kSocks},
                      AdlStep{"Put on shoes", T::kShoes}}),
          AdlRoutine("trousers-first",
                     {AdlStep{"Put on trousers", T::kTrousers},
                      AdlStep{"Put on socks", T::kSocks},
                      AdlStep{"Put on shirt", T::kShirt},
                      AdlStep{"Put on shoes", T::kShoes}})});
}

const Adl& AdlLibrary::by_name(std::string_view name) const {
  for (const Adl& a : adls_) {
    if (a.name() == name) return a;
  }
  throw std::out_of_range("AdlLibrary: unknown ADL '" + std::string(name) +
                          "'");
}

}  // namespace coreda::adl
