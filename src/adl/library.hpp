#pragma once

#include <vector>

#include "adl/routine.hpp"
#include "adl/tool.hpp"

namespace coreda::adl {

/// Stable tool/uid assignments for the deployment we reproduce.
///
/// In CoReDA a tool's ID is the uid of the PAVENET node attached to it, so
/// these constants double as node uids throughout the system.
namespace tools {
// Tooth-brushing (paper Table 2, accelerometer on every tool).
inline constexpr ToolId kPasteTube = 11;
inline constexpr ToolId kToothbrush = 12;
inline constexpr ToolId kGargleCup = 13;
inline constexpr ToolId kTowel = 14;
// Tea-making (paper Table 2; pressure sensor on the electronic pot).
inline constexpr ToolId kTeaBox = 21;
inline constexpr ToolId kElectricPot = 22;
inline constexpr ToolId kKettle = 23;
inline constexpr ToolId kTeaCup = 24;
// Hand-washing (extension ADL, after Boger et al. [1]).
inline constexpr ToolId kFaucet = 31;
inline constexpr ToolId kSoap = 32;
inline constexpr ToolId kHandTowel = 33;
// Dressing (multi-routine extension ADL, paper future-work #1).
inline constexpr ToolId kShirt = 41;
inline constexpr ToolId kTrousers = 42;
inline constexpr ToolId kSocks = 43;
inline constexpr ToolId kShoes = 44;
}  // namespace tools

/// The deployment catalog: every instrumented tool plus the ADLs the
/// experiments use.
///
/// The two paper ADLs (tooth-brushing, tea-making) carry usage-duration and
/// intensity parameters calibrated so the sensing pipeline reproduces the
/// *shape* of Table 3: "Dry with a towel" and "Pour hot water into kettle"
/// are the shortest, gentlest manipulations and therefore the hardest to
/// detect.
class AdlLibrary {
 public:
  AdlLibrary();

  const ToolRegistry& tools() const noexcept { return tools_; }
  const std::vector<Adl>& adls() const noexcept { return adls_; }

  const Adl& tooth_brushing() const { return adls_[0]; }
  const Adl& tea_making() const { return adls_[1]; }
  const Adl& hand_washing() const { return adls_[2]; }
  const Adl& dressing() const { return adls_[3]; }

  /// Finds an ADL by name; throws std::out_of_range when absent.
  const Adl& by_name(std::string_view name) const;

 private:
  ToolRegistry tools_;
  std::vector<Adl> adls_;
};

}  // namespace coreda::adl
