#pragma once

#include <cstdint>
#include <string_view>

namespace coreda::adl {

/// Identifier of a household tool. Mirrors the paper: the uid of the PAVENET
/// node attached to a tool *is* the tool's ID, and the StepID of an ADL step
/// is the ID of the tool mainly used in that step.
using ToolId = std::uint16_t;

/// StepID of an ADL step. StepID 0 is reserved: "nothing is done for a long
/// time" (the idle pseudo-step the paper defines in section 2.1).
using StepId = std::uint16_t;

inline constexpr StepId kIdleStep = 0;
inline constexpr ToolId kNoTool = 0;

/// The sensor families PAVENET carries (paper Table 1). Each tool is
/// instrumented with exactly one primary sensor (paper Table 2: accelerometer
/// on most tools, pressure on the electronic pot).
enum class SensorKind : std::uint8_t {
  kAccelerometer,
  kPressure,
  kBrightness,
  kTemperature,
  kMotion,
};

std::string_view to_string(SensorKind kind) noexcept;

}  // namespace coreda::adl
