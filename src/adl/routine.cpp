#include "adl/routine.hpp"

#include <algorithm>
#include <stdexcept>

namespace coreda::adl {

AdlRoutine::AdlRoutine(std::string name, std::vector<AdlStep> steps)
    : name_(std::move(name)), steps_(std::move(steps)) {
  if (steps_.empty()) {
    throw std::invalid_argument("AdlRoutine '" + name_ + "' has no steps");
  }
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].tool == kNoTool) {
      throw std::invalid_argument("AdlRoutine '" + name_ +
                                  "': step uses reserved tool id 0");
    }
    for (std::size_t j = i + 1; j < steps_.size(); ++j) {
      if (steps_[i].tool == steps_[j].tool) {
        throw std::invalid_argument(
            "AdlRoutine '" + name_ + "': tool id " +
            std::to_string(steps_[i].tool) +
            " appears twice; StepIDs would alias");
      }
    }
  }
}

std::optional<std::size_t> AdlRoutine::index_of_tool(
    ToolId tool) const noexcept {
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].tool == tool) return i;
  }
  return std::nullopt;
}

StepId AdlRoutine::next_after(ToolId tool) const noexcept {
  const auto idx = index_of_tool(tool);
  if (!idx || *idx + 1 >= steps_.size()) return kIdleStep;
  return steps_[*idx + 1].step_id();
}

bool AdlRoutine::is_terminal(ToolId tool) const noexcept {
  return steps_.back().tool == tool;
}

Adl::Adl(std::string name, std::vector<AdlRoutine> routines)
    : name_(std::move(name)), routines_(std::move(routines)) {
  if (routines_.empty()) {
    throw std::invalid_argument("Adl '" + name_ + "' has no routines");
  }
}

std::vector<ToolId> Adl::tools() const {
  std::vector<ToolId> out;
  for (const AdlRoutine& r : routines_) {
    for (const AdlStep& s : r.steps()) {
      if (std::find(out.begin(), out.end(), s.tool) == out.end()) {
        out.push_back(s.tool);
      }
    }
  }
  return out;
}

}  // namespace coreda::adl
