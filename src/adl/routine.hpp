#pragma once

#include <optional>
#include <string>
#include <vector>

#include "adl/tool.hpp"
#include "adl/types.hpp"

namespace coreda::adl {

/// One step of an ADL: a named action carried out with one primary tool.
/// The StepId of a step equals the ToolId of its primary tool (paper §2.1).
struct AdlStep {
  std::string name;
  ToolId tool = kNoTool;

  StepId step_id() const noexcept { return tool; }
};

/// An ordered routine for completing one ADL — e.g. the four tea-making
/// steps of the paper's Figure 1. A routine visits each tool at most once
/// (the StepID doubles as the step identity, so repeated tools would alias).
class AdlRoutine {
 public:
  /// Validates and stores the steps. Throws std::invalid_argument if the
  /// routine is empty, uses tool id 0, or repeats a tool.
  AdlRoutine(std::string name, std::vector<AdlStep> steps);

  const std::string& name() const noexcept { return name_; }
  const std::vector<AdlStep>& steps() const noexcept { return steps_; }
  std::size_t size() const noexcept { return steps_.size(); }
  const AdlStep& step(std::size_t index) const { return steps_.at(index); }

  /// Index of the step whose primary tool is `tool`, if any.
  std::optional<std::size_t> index_of_tool(ToolId tool) const noexcept;

  /// StepId of the step following the one using `tool`; kIdleStep when
  /// `tool` is the terminal step or not part of the routine.
  StepId next_after(ToolId tool) const noexcept;

  bool is_terminal(ToolId tool) const noexcept;
  StepId first_step() const noexcept { return steps_.front().step_id(); }
  StepId last_step() const noexcept { return steps_.back().step_id(); }

 private:
  std::string name_;
  std::vector<AdlStep> steps_;
};

/// An ADL together with one or more acceptable routines.
///
/// The paper's prototype learns a single routine per ADL and lists
/// multi-routine support as future work; we carry the general shape so the
/// extension experiment (A5, dressing with two routines) is expressible.
class Adl {
 public:
  Adl(std::string name, std::vector<AdlRoutine> routines);

  const std::string& name() const noexcept { return name_; }
  const std::vector<AdlRoutine>& routines() const noexcept {
    return routines_;
  }
  const AdlRoutine& primary_routine() const noexcept { return routines_[0]; }
  bool multi_routine() const noexcept { return routines_.size() > 1; }

  /// Every tool used by any routine of this ADL, in first-seen order.
  std::vector<ToolId> tools() const;

 private:
  std::string name_;
  std::vector<AdlRoutine> routines_;
};

}  // namespace coreda::adl
