#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adl/types.hpp"
#include "rl/types.hpp"

namespace coreda::planning {

/// The reminding level attached to a prompt (paper §2.3): minimal keeps the
/// user exercising their own memory; specific spells everything out.
enum class RemindingLevel : std::uint8_t { kMinimal = 0, kSpecific = 1 };

std::string to_string(RemindingLevel level);

/// The planner's state, s_i = <StepID_{i-1}, StepID_i> (paper §2.2).
struct PlannerState {
  adl::StepId prev = adl::kIdleStep;
  adl::StepId cur = adl::kIdleStep;

  bool operator==(const PlannerState&) const = default;
};

/// The planner's action, a_i = <ToolID_{i+1}, Level_{i+1}> — the prompt sent
/// to the reminding subsystem.
struct PlannerAction {
  adl::ToolId tool = adl::kNoTool;
  RemindingLevel level = RemindingLevel::kMinimal;

  bool operator==(const PlannerAction&) const = default;
};

/// Maps <prev, cur> StepId pairs onto a dense rl::StateId range.
///
/// Built from the step vocabulary of one ADL (its StepIds plus the reserved
/// idle StepId 0): with n+1 symbols there are (n+1)^2 states. The spaces
/// involved are tiny — tea-making has 25 states — so density costs nothing
/// and keeps the QTable flat.
class StateCodec {
 public:
  /// `step_ids` is the ADL's step vocabulary, without the idle id (which is
  /// always included). Throws std::invalid_argument on duplicates or id 0.
  explicit StateCodec(std::vector<adl::StepId> step_ids);

  std::size_t num_states() const noexcept {
    return symbols_.size() * symbols_.size();
  }

  /// Encoding fails (nullopt) when either component is outside the
  /// vocabulary — e.g. a usage report from a tool of a different ADL.
  std::optional<rl::StateId> encode(PlannerState state) const noexcept;

  /// Throws std::out_of_range on an invalid id.
  PlannerState decode(rl::StateId id) const;

  const std::vector<adl::StepId>& symbols() const noexcept { return symbols_; }

 private:
  std::optional<std::size_t> symbol_index(adl::StepId id) const noexcept;

  std::vector<adl::StepId> symbols_;  ///< [0] is always kIdleStep
};

/// Maps <ToolId, RemindingLevel> pairs onto a dense rl::ActionId range.
///
/// Minimal precedes specific for the same tool, so deterministic greedy
/// tie-breaks (lowest ActionId) prefer the minimal prompt — the design
/// principle the reward function also encodes.
class ActionCodec {
 public:
  /// `tool_ids` are the promptable tools of one ADL. Throws
  /// std::invalid_argument on duplicates or id 0.
  explicit ActionCodec(std::vector<adl::ToolId> tool_ids);

  std::size_t num_actions() const noexcept { return tools_.size() * 2; }

  std::optional<rl::ActionId> encode(PlannerAction action) const noexcept;

  /// Throws std::out_of_range on an invalid id.
  PlannerAction decode(rl::ActionId id) const;

  const std::vector<adl::ToolId>& tools() const noexcept { return tools_; }

 private:
  std::vector<adl::ToolId> tools_;
};

}  // namespace coreda::planning
