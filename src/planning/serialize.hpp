#pragma once

#include <iosfwd>

#include "planning/learner.hpp"

namespace coreda::planning {

/// Writes a trained policy snapshot — the Q table plus the state/action
/// vocabularies that give its indices meaning — as a line-oriented text
/// format ("coreda-policy v1"). A deployment saves after the training
/// phase so a server restart does not cost the user their learned routine.
void save_policy(std::ostream& out, const RoutineLearner& learner);

/// Restores a snapshot produced by save_policy into `learner`.
///
/// The learner must be built over the same ADL: step and tool
/// vocabularies are validated and a std::runtime_error is thrown on any
/// mismatch (or on a malformed/truncated snapshot), leaving the learner
/// unchanged on failure.
void load_policy(std::istream& in, RoutineLearner& learner);

}  // namespace coreda::planning
