#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "planning/learner.hpp"

namespace coreda::planning {

/// Writes a trained policy snapshot — the Q table plus the state/action
/// vocabularies that give its indices meaning — as a line-oriented text
/// format ("coreda-policy v1"). A deployment saves after the training
/// phase so a server restart does not cost the user their learned routine.
void save_policy(std::ostream& out, const RoutineLearner& learner);

/// Restores a snapshot produced by save_policy into `learner`.
///
/// The learner must be built over the same ADL: step and tool
/// vocabularies are validated and a std::runtime_error is thrown on any
/// mismatch (or on a malformed/truncated snapshot), leaving the learner
/// unchanged on failure.
void load_policy(std::istream& in, RoutineLearner& learner);

// ---------------------------------------------------------------------------
// "coreda-policy v2" — the compact binary snapshot the serving tier uses
// (serve::PolicyStore). Layout, all integers little-endian u64, doubles as
// little-endian IEEE-754 bit patterns:
//
//   magic     8 bytes  "CRDAPOL2"
//   version   u64      monotonically increasing per write-back
//   n_steps   u64      |step vocabulary|
//   n_tools   u64      |tool vocabulary|
//   n_states  u64      Q rows
//   n_actions u64      Q columns
//   steps     n_steps  x u64
//   tools     n_tools  x u64
//   q         n_states x n_actions x f64, row-major
//   checksum  u64      FNV-1a 64 over every preceding byte
//
// The trailing checksum rejects torn or bit-flipped files; the vocabularies
// reject a snapshot from a different ADL. Loads stage into a scratch table
// and only commit on full validation, so the destination is never left
// half-written — the same contract as the v1 text loader.
// ---------------------------------------------------------------------------

/// The 8 magic bytes opening every v2 snapshot.
inline constexpr char kPolicyV2Magic[8] = {'C', 'R', 'D', 'A',
                                           'P', 'O', 'L', '2'};

/// Header + integrity summary of a v2 snapshot, readable without a learner
/// (the CLI `policy inspect` path).
struct PolicyV2Info {
  std::uint64_t version = 0;
  std::vector<adl::StepId> steps;
  std::vector<adl::ToolId> tools;
  std::size_t num_states = 0;
  std::size_t num_actions = 0;
  bool checksum_ok = false;
};

/// Writes a v2 snapshot of `q` stamped with `version` under the given
/// vocabularies (the PolicyStore write-back path, which owns the vocab and
/// the per-user table but no learner).
void save_policy_v2(std::ostream& out, std::span<const adl::StepId> steps,
                    std::span<const adl::ToolId> tools, const rl::QTable& q,
                    std::uint64_t version);

/// Writes a v2 snapshot of `learner`'s table and vocabularies.
void save_policy_v2(std::ostream& out, const RoutineLearner& learner,
                    std::uint64_t version = 1);

/// Restores a v2 snapshot into `q`, validating magic, checksum, and the
/// expected vocabularies/dimensions. Returns the snapshot version. Throws
/// std::runtime_error on any mismatch or corruption; `q` is only written
/// after full validation (unchanged on failure).
std::uint64_t load_policy_v2(std::istream& in,
                             std::span<const adl::StepId> steps,
                             std::span<const adl::ToolId> tools,
                             rl::QTable& q);

/// Restores a v2 snapshot into `learner` (vocabularies taken from its
/// codecs). Returns the snapshot version; learner unchanged on failure.
std::uint64_t load_policy_v2(std::istream& in, RoutineLearner& learner);

/// Parses a v2 header + integrity check without needing a learner. Throws
/// std::runtime_error when the stream is not a structurally complete v2
/// snapshot; a wrong checksum is reported via `checksum_ok`, not thrown,
/// so operators can inspect a damaged file.
PolicyV2Info inspect_policy_v2(std::istream& in);

/// Snapshot format sniffing for operator tooling: peeks at the stream head
/// and rewinds. kUnknown means neither magic matched.
enum class PolicyFormat { kUnknown, kTextV1, kBinaryV2 };
PolicyFormat detect_policy_format(std::istream& in);

/// Loads either format into `learner` (v1 text snapshots predate versioning
/// and report version 0). Throws std::runtime_error when the stream is
/// neither format or fails its format's validation.
std::uint64_t load_policy_any(std::istream& in, RoutineLearner& learner);

}  // namespace coreda::planning
